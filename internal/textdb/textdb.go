// Package textdb is a miniature keyword-search engine: a synthetic corpus
// with a Zipfian vocabulary, a positional inverted index serialized onto
// disk pages, and the paper's three keyword-based text-search UDFs (simple,
// threshold, proximity) executed through an LRU buffer cache.
//
// It substitutes for the paper's Oracle Text UDFs over the Reuters corpus:
// the cost model only ever sees (model variables -> execution cost), and a
// Zipfian corpus produces the same qualitative cost surface — cost grows
// with posting-list sizes and keyword count, nonlinearly and with skew.
// See DESIGN.md §3.
package textdb

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"mlq/internal/buffercache"
	"mlq/internal/dist"
	"mlq/internal/pagestore"
)

// Posting is one occurrence of a word: the document and the word position
// within it.
type Posting struct {
	Doc uint32
	Pos uint32
}

const postingBytes = 8

// Config parameterizes corpus generation. Zero fields take defaults chosen
// to give posting lists spanning one to hundreds of pages.
type Config struct {
	// NumDocs is the corpus size. Default 4000.
	NumDocs int
	// VocabSize is the number of distinct words. Default 1500.
	VocabSize int
	// MeanDocLen is the average words per document. Default 120.
	MeanDocLen int
	// ZipfS is the word-frequency Zipf exponent. Default 1.
	ZipfS float64
	// PageSize is the disk page size. Default pagestore.DefaultPageSize.
	PageSize int
	// CachePages is the buffer-cache capacity. Default 64.
	CachePages int
	// CachePolicy is the buffer-cache replacement policy (default LRU).
	// The policy shapes the disk-IO cost noise of Experiment 3.
	CachePolicy buffercache.Policy
	// Seed drives corpus generation.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.NumDocs == 0 {
		c.NumDocs = 4000
	}
	if c.VocabSize == 0 {
		c.VocabSize = 1500
	}
	if c.MeanDocLen == 0 {
		c.MeanDocLen = 120
	}
	//lint:ignore floatguard exact zero is the documented unset-field sentinel
	if c.ZipfS == 0 {
		c.ZipfS = 1
	}
	if c.CachePages == 0 {
		c.CachePages = 64
	}
	return c
}

// wordMeta is the per-word catalog entry: document frequency and the pages
// holding the word's posting list.
type wordMeta struct {
	df       int32 // documents containing the word
	postings int32 // total occurrences
	pages    []pagestore.PageID
}

// DB is a loaded text database: corpus statistics plus the on-page inverted
// index, read through a buffer cache.
type DB struct {
	cfg    Config
	store  *pagestore.Store
	cache  *buffercache.Cache
	words  []wordMeta
	nDocs  int
	maxLen int // longest posting list, for sizing model spaces
}

// ExecStats reports one UDF execution's measured costs.
type ExecStats struct {
	// CPU is the work-unit count: postings decoded plus per-candidate
	// evaluation work. Deterministic for a given query and corpus.
	CPU float64
	// IO is the modeled IO cost: physical page reads (buffer-cache misses)
	// plus any retry/slow-disk latency the cache charged, in clean-read
	// equivalents. Depends on cache state, hence noisy across repetitions;
	// equals the plain miss count on a healthy disk.
	IO float64
	// Wall is the real execution time.
	Wall time.Duration
}

// Generate builds a corpus, writes its inverted index to simulated disk, and
// returns the ready-to-query database.
func Generate(cfg Config) (*DB, error) {
	cfg = cfg.withDefaults()
	if cfg.NumDocs < 1 || cfg.VocabSize < 1 || cfg.MeanDocLen < 1 {
		return nil, fmt.Errorf("textdb: NumDocs, VocabSize, MeanDocLen must be >= 1")
	}
	store, err := pagestore.New(cfg.PageSize)
	if err != nil {
		return nil, err
	}
	cache, err := buffercache.NewWithPolicy(store, cfg.CachePages, cfg.CachePolicy)
	if err != nil {
		return nil, err
	}
	zipf, err := dist.NewZipf(cfg.VocabSize, cfg.ZipfS)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Step 1: synthesize documents, accumulating postings per word.
	lists := make([][]Posting, cfg.VocabSize)
	dfSeen := make([]uint32, cfg.VocabSize) // last doc counted, +1
	db := &DB{cfg: cfg, store: store, cache: cache, nDocs: cfg.NumDocs}
	db.words = make([]wordMeta, cfg.VocabSize)
	for doc := 0; doc < cfg.NumDocs; doc++ {
		length := cfg.MeanDocLen/2 + rng.Intn(cfg.MeanDocLen)
		for pos := 0; pos < length; pos++ {
			w := zipf.Sample(rng) - 1 // word IDs are 0-based ranks
			lists[w] = append(lists[w], Posting{Doc: uint32(doc), Pos: uint32(pos)})
			if dfSeen[w] != uint32(doc)+1 {
				dfSeen[w] = uint32(doc) + 1
				db.words[w].df++
			}
		}
	}

	// Step 2: serialize each posting list onto pages.
	perPage := store.PageSize() / postingBytes
	buf := make([]byte, store.PageSize())
	for w, list := range lists {
		db.words[w].postings = int32(len(list))
		if len(list) > db.maxLen {
			db.maxLen = len(list)
		}
		for start := 0; start < len(list); start += perPage {
			end := start + perPage
			if end > len(list) {
				end = len(list)
			}
			for i, p := range list[start:end] {
				binary.LittleEndian.PutUint32(buf[i*postingBytes:], p.Doc)
				binary.LittleEndian.PutUint32(buf[i*postingBytes+4:], p.Pos)
			}
			id := store.Alloc()
			if err := store.Write(id, buf[:(end-start)*postingBytes]); err != nil {
				return nil, err
			}
			db.words[w].pages = append(db.words[w].pages, id)
		}
	}
	return db, nil
}

// NumDocs returns the corpus size.
func (db *DB) NumDocs() int { return db.nDocs }

// VocabSize returns the number of distinct words.
func (db *DB) VocabSize() int { return len(db.words) }

// DocFreq returns how many documents contain word w.
func (db *DB) DocFreq(w int) int {
	if w < 0 || w >= len(db.words) {
		return 0
	}
	return int(db.words[w].df)
}

// Postings returns word w's full posting list, read through the buffer
// cache, charging stats for the pages touched and postings decoded.
func (db *DB) Postings(w int, stats *ExecStats) ([]Posting, error) {
	if w < 0 || w >= len(db.words) {
		return nil, fmt.Errorf("textdb: word %d out of range [0, %d)", w, len(db.words))
	}
	meta := &db.words[w]
	out := make([]Posting, 0, meta.postings)
	remaining := int(meta.postings)
	perPage := db.store.PageSize() / postingBytes
	for _, id := range meta.pages {
		page, err := db.cache.Get(id)
		if err != nil {
			return nil, err
		}
		n := perPage
		if remaining < n {
			n = remaining
		}
		for i := 0; i < n; i++ {
			out = append(out, Posting{
				Doc: binary.LittleEndian.Uint32(page[i*postingBytes:]),
				Pos: binary.LittleEndian.Uint32(page[i*postingBytes+4:]),
			})
		}
		remaining -= n
	}
	stats.CPU += float64(len(out))
	return out, nil
}

// Cache exposes the buffer cache (for experiment setup, e.g. invalidation).
func (db *DB) Cache() *buffercache.Cache { return db.cache }

// Store exposes the underlying page store.
func (db *DB) Store() *pagestore.Store { return db.store }

// run wraps a search body with IO metering and wall-clock timing.
func (db *DB) run(body func(stats *ExecStats) error) (ExecStats, error) {
	var stats ExecStats
	meter := db.cache.NewMeter()
	start := time.Now()
	err := body(&stats)
	stats.Wall = time.Since(start)
	stats.IO = meter.Cost()
	return stats, err
}

// SearchSimple returns the documents containing every one of the given
// words (the paper's "simple" keyword search UDF).
func (db *DB) SearchSimple(words []int) ([]uint32, ExecStats, error) {
	var docs []uint32
	stats, err := db.run(func(stats *ExecStats) error {
		if len(words) == 0 {
			return nil
		}
		counts := make(map[uint32]int)
		for i, w := range words {
			list, err := db.Postings(w, stats)
			if err != nil {
				return err
			}
			seen := make(map[uint32]bool)
			for _, p := range list {
				if !seen[p.Doc] {
					seen[p.Doc] = true
					if counts[p.Doc] == i { // survived all previous words
						counts[p.Doc]++
					}
				}
			}
			stats.CPU += float64(len(list))
		}
		for doc, c := range counts {
			if c == len(words) {
				docs = append(docs, doc)
			}
		}
		stats.CPU += float64(len(counts))
		return nil
	})
	return docs, stats, err
}

// SearchThreshold returns the documents containing at least minMatch of the
// given words (the paper's "threshold" search UDF).
func (db *DB) SearchThreshold(words []int, minMatch int) ([]uint32, ExecStats, error) {
	var docs []uint32
	stats, err := db.run(func(stats *ExecStats) error {
		if minMatch < 1 {
			minMatch = 1
		}
		counts := make(map[uint32]int)
		for _, w := range words {
			list, err := db.Postings(w, stats)
			if err != nil {
				return err
			}
			seen := make(map[uint32]bool)
			for _, p := range list {
				if !seen[p.Doc] {
					seen[p.Doc] = true
					counts[p.Doc]++
				}
			}
			stats.CPU += float64(len(list))
		}
		for doc, c := range counts {
			if c >= minMatch {
				docs = append(docs, doc)
			}
		}
		stats.CPU += float64(len(counts))
		return nil
	})
	return docs, stats, err
}

// SearchProximity returns the documents in which all given words occur
// within a window of the given width (inclusive span of positions; the
// paper's "proximity" search UDF).
func (db *DB) SearchProximity(words []int, window int) ([]uint32, ExecStats, error) {
	var docs []uint32
	stats, err := db.run(func(stats *ExecStats) error {
		if len(words) == 0 {
			return nil
		}
		if window < 1 {
			window = 1
		}
		// positions[doc][i] = sorted positions of words[i] in doc.
		positions := make(map[uint32][][]uint32)
		for i, w := range words {
			list, err := db.Postings(w, stats)
			if err != nil {
				return err
			}
			for _, p := range list {
				slot, ok := positions[p.Doc]
				if !ok {
					slot = make([][]uint32, len(words))
					positions[p.Doc] = slot
				}
				slot[i] = append(slot[i], p.Pos) // postings are in position order
			}
			stats.CPU += float64(len(list))
		}
	candidates:
		for doc, slot := range positions {
			for _, ps := range slot {
				if len(ps) == 0 {
					continue candidates
				}
			}
			if ok, work := minSpanWithin(slot, uint32(window)); ok {
				docs = append(docs, doc)
				stats.CPU += work
			} else {
				stats.CPU += work
			}
		}
		return nil
	})
	return docs, stats, err
}

// SearchPhrase returns the documents containing the given words as a
// contiguous phrase (word i at position p+i for some p). It is the limiting
// case of proximity search and exercises the positional index hardest.
func (db *DB) SearchPhrase(words []int) ([]uint32, ExecStats, error) {
	var docs []uint32
	stats, err := db.run(func(stats *ExecStats) error {
		if len(words) == 0 {
			return nil
		}
		// positions[doc][i] = sorted positions of words[i] in doc.
		positions := make(map[uint32][][]uint32)
		for i, w := range words {
			list, err := db.Postings(w, stats)
			if err != nil {
				return err
			}
			for _, p := range list {
				slot, ok := positions[p.Doc]
				if !ok {
					slot = make([][]uint32, len(words))
					positions[p.Doc] = slot
				}
				slot[i] = append(slot[i], p.Pos)
			}
			stats.CPU += float64(len(list))
		}
	candidates:
		for doc, slot := range positions {
			for _, ps := range slot {
				if len(ps) == 0 {
					continue candidates
				}
			}
			// For each start position of word 0, check the arithmetic
			// progression via binary search in the other lists.
			for _, start := range slot[0] {
				match := true
				for i := 1; i < len(slot); i++ {
					want := start + uint32(i)
					ps := slot[i]
					lo, hi := 0, len(ps)
					for lo < hi {
						mid := (lo + hi) / 2
						if ps[mid] < want {
							lo = mid + 1
						} else {
							hi = mid
						}
						stats.CPU++
					}
					if lo >= len(ps) || ps[lo] != want {
						match = false
						break
					}
				}
				if match {
					docs = append(docs, doc)
					break
				}
			}
		}
		return nil
	})
	return docs, stats, err
}

// minSpanWithin reports whether some choice of one position per word fits in
// a span <= window, using the classic k-way min-span sweep. It also returns
// the number of comparisons performed, charged as CPU work.
func minSpanWithin(slot [][]uint32, window uint32) (bool, float64) {
	idx := make([]int, len(slot))
	var work float64
	for {
		lo, hi := uint32(1<<31), uint32(0)
		loWord := 0
		for w, ps := range slot {
			p := ps[idx[w]]
			if p < lo {
				lo, loWord = p, w
			}
			if p > hi {
				hi = p
			}
			work++
		}
		if hi-lo+1 <= window {
			return true, work
		}
		idx[loWord]++
		if idx[loWord] >= len(slot[loWord]) {
			return false, work
		}
	}
}
