package textdb

import (
	"fmt"

	"mlq/internal/geom"
	"mlq/internal/udf"
)

// This file adapts the three search functions to the udf.UDF interface the
// experiment harness consumes. Each adapter fixes a transformation T from a
// low-dimensional model-variable point to a concrete invocation:
//
//	SIMPLE  (rank, n)       -> n keywords starting at vocabulary rank
//	THRESH  (rank, minMatch)-> 5 keywords starting at rank, threshold
//	PROX    (rank, window)  -> 2 keywords starting at rank, span window
//
// Word rank is the dominant model variable: posting-list length (and hence
// cost) falls off Zipf-style with rank, giving the skewed, nonlinear cost
// surfaces the paper observes for its real UDFs.

// modelSpace returns the model-variable rectangle [(0,1) .. (vocab, hiArg)).
// It is valid by construction — vocab is clamped to at least 1 and every
// hiArg at the call sites is a constant above 1 — so, unlike geom.NewRect,
// no error path exists and Region (which cannot return an error) may call
// it directly.
func modelSpace(vocab, hiArg float64) geom.Rect {
	if vocab < 1 {
		vocab = 1
	}
	return geom.Rect{Lo: geom.Point{0, 1}, Hi: geom.Point{vocab, hiArg}}
}

// wordsFrom materializes n keyword IDs starting at the given rank, spaced by
// a stride so multi-keyword queries mix frequent and rarer words.
func (db *DB) wordsFrom(rank float64, n int) []int {
	if n < 1 {
		n = 1
	}
	stride := len(db.words) / 64
	if stride < 1 {
		stride = 1
	}
	words := make([]int, n)
	for i := range words {
		w := int(rank) + i*stride
		if w >= len(db.words) {
			w = len(db.words) - 1
		}
		if w < 0 {
			w = 0
		}
		words[i] = w
	}
	return words
}

// simpleUDF is the paper's SIMPLE keyword-search UDF.
type simpleUDF struct{ db *DB }

func (u simpleUDF) Name() string { return "SIMPLE" }

func (u simpleUDF) Region() geom.Rect {
	return modelSpace(float64(u.db.VocabSize()), 7)
}

func (u simpleUDF) Execute(p geom.Point) (cpu, io float64, err error) {
	// The index is self-generated, so errors only surface when the page
	// store underneath fails (torn page, injected fault). They are wrapped,
	// not panicked: a failed page read is a failed UDF execution, never a
	// process crash.
	_, stats, err := u.db.SearchSimple(u.db.wordsFrom(p[0], int(p[1])))
	if err != nil {
		return 0, 0, fmt.Errorf("textdb: SIMPLE at %v: %w", p, err)
	}
	if err := udf.CheckCosts(stats.CPU, stats.IO); err != nil {
		return 0, 0, fmt.Errorf("textdb: SIMPLE at %v: %w", p, err)
	}
	return stats.CPU, stats.IO, nil
}

// threshUDF is the paper's THRESHOLD keyword-search UDF.
type threshUDF struct{ db *DB }

func (u threshUDF) Name() string { return "THRESH" }

func (u threshUDF) Region() geom.Rect {
	return modelSpace(float64(u.db.VocabSize()), 6)
}

func (u threshUDF) Execute(p geom.Point) (cpu, io float64, err error) {
	_, stats, err := u.db.SearchThreshold(u.db.wordsFrom(p[0], 5), int(p[1]))
	if err != nil {
		return 0, 0, fmt.Errorf("textdb: THRESH at %v: %w", p, err)
	}
	if err := udf.CheckCosts(stats.CPU, stats.IO); err != nil {
		return 0, 0, fmt.Errorf("textdb: THRESH at %v: %w", p, err)
	}
	return stats.CPU, stats.IO, nil
}

// proxUDF is the paper's PROXIMITY keyword-search UDF.
type proxUDF struct{ db *DB }

func (u proxUDF) Name() string { return "PROX" }

func (u proxUDF) Region() geom.Rect {
	return modelSpace(float64(u.db.VocabSize()), 60)
}

func (u proxUDF) Execute(p geom.Point) (cpu, io float64, err error) {
	_, stats, err := u.db.SearchProximity(u.db.wordsFrom(p[0], 2), int(p[1]))
	if err != nil {
		return 0, 0, fmt.Errorf("textdb: PROX at %v: %w", p, err)
	}
	if err := udf.CheckCosts(stats.CPU, stats.IO); err != nil {
		return 0, 0, fmt.Errorf("textdb: PROX at %v: %w", p, err)
	}
	return stats.CPU, stats.IO, nil
}

// UDFs returns the three text-search UDFs bound to this database, in the
// paper's order: SIMPLE, THRESH, PROX.
func (db *DB) UDFs() []udf.UDF {
	return []udf.UDF{simpleUDF{db}, threshUDF{db}, proxUDF{db}}
}
