package textdb

import (
	"math/rand"
	"sort"
	"testing"

	"mlq/internal/geom"
)

// smallDB builds a compact corpus for fast tests.
func smallDB(t *testing.T) *DB {
	t.Helper()
	db, err := Generate(Config{
		NumDocs:    300,
		VocabSize:  200,
		MeanDocLen: 40,
		PageSize:   256,
		CachePages: 8,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{NumDocs: -1}); err == nil {
		t.Error("negative NumDocs accepted")
	}
	if _, err := Generate(Config{PageSize: 4}); err == nil {
		t.Error("tiny page size accepted")
	}
}

func TestCorpusShape(t *testing.T) {
	db := smallDB(t)
	if db.NumDocs() != 300 || db.VocabSize() != 200 {
		t.Fatalf("docs=%d vocab=%d", db.NumDocs(), db.VocabSize())
	}
	// Zipf: document frequency must broadly decrease with rank.
	if db.DocFreq(0) <= db.DocFreq(150) {
		t.Errorf("df(0)=%d <= df(150)=%d; vocabulary not Zipfian", db.DocFreq(0), db.DocFreq(150))
	}
	if db.DocFreq(-1) != 0 || db.DocFreq(10000) != 0 {
		t.Error("out-of-range DocFreq must be 0")
	}
	if db.Store().NumPages() == 0 {
		t.Error("index not serialized to pages")
	}
}

func TestPostingsMatchDocFreq(t *testing.T) {
	db := smallDB(t)
	for _, w := range []int{0, 5, 50, 199} {
		var stats ExecStats
		list, err := db.Postings(w, &stats)
		if err != nil {
			t.Fatal(err)
		}
		docs := make(map[uint32]bool)
		for _, p := range list {
			docs[p.Doc] = true
		}
		if len(docs) != db.DocFreq(w) {
			t.Errorf("word %d: %d distinct docs in postings, df=%d", w, len(docs), db.DocFreq(w))
		}
		if stats.CPU != float64(len(list)) {
			t.Errorf("word %d: CPU %g != postings %d", w, stats.CPU, len(list))
		}
		// Postings must be grouped by doc with ascending positions.
		for i := 1; i < len(list); i++ {
			if list[i].Doc < list[i-1].Doc {
				t.Fatalf("word %d: postings not in doc order", w)
			}
			if list[i].Doc == list[i-1].Doc && list[i].Pos <= list[i-1].Pos {
				t.Fatalf("word %d: positions not ascending within doc", w)
			}
		}
	}
	if _, err := db.Postings(-1, &ExecStats{}); err == nil {
		t.Error("negative word accepted")
	}
}

// bruteDocs recomputes the documents containing word w from raw postings.
func bruteDocs(t *testing.T, db *DB, w int) map[uint32]bool {
	t.Helper()
	var stats ExecStats
	list, err := db.Postings(w, &stats)
	if err != nil {
		t.Fatal(err)
	}
	docs := make(map[uint32]bool)
	for _, p := range list {
		docs[p.Doc] = true
	}
	return docs
}

func TestSearchSimpleCorrectness(t *testing.T) {
	db := smallDB(t)
	words := []int{0, 3, 10}
	got, stats, err := db.SearchSimple(words)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteDocs(t, db, words[0])
	for _, w := range words[1:] {
		next := bruteDocs(t, db, w)
		for d := range want {
			if !next[d] {
				delete(want, d)
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d docs, want %d", len(got), len(want))
	}
	for _, d := range got {
		if !want[d] {
			t.Fatalf("doc %d not in brute-force result", d)
		}
	}
	if stats.CPU <= 0 || stats.Wall <= 0 {
		t.Errorf("stats not recorded: %+v", stats)
	}
	// Empty query.
	docs, _, err := db.SearchSimple(nil)
	if err != nil || docs != nil {
		t.Error("empty query must return no docs, no error")
	}
}

func TestSearchThresholdCorrectness(t *testing.T) {
	db := smallDB(t)
	words := []int{1, 4, 9, 20}
	for _, minMatch := range []int{1, 2, 4} {
		got, _, err := db.SearchThreshold(words, minMatch)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[uint32]int)
		for _, w := range words {
			for d := range bruteDocs(t, db, w) {
				counts[d]++
			}
		}
		want := 0
		for _, c := range counts {
			if c >= minMatch {
				want++
			}
		}
		if len(got) != want {
			t.Errorf("minMatch=%d: got %d docs, want %d", minMatch, len(got), want)
		}
	}
	// Threshold 1 over one word = that word's doc list.
	got, _, _ := db.SearchThreshold([]int{7}, 0) // clamped to 1
	if len(got) != db.DocFreq(7) {
		t.Errorf("single-word threshold: %d docs, df=%d", len(got), db.DocFreq(7))
	}
}

func TestSearchThresholdSupersetsSimple(t *testing.T) {
	db := smallDB(t)
	words := []int{0, 2, 5}
	simple, _, _ := db.SearchSimple(words)
	thresh, _, _ := db.SearchThreshold(words, len(words))
	sortU32 := func(xs []uint32) {
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	}
	sortU32(simple)
	sortU32(thresh)
	if len(simple) != len(thresh) {
		t.Fatalf("ALL-threshold (%d) must equal simple AND (%d)", len(thresh), len(simple))
	}
	for i := range simple {
		if simple[i] != thresh[i] {
			t.Fatal("ALL-threshold diverged from simple AND")
		}
	}
}

func TestSearchProximityCorrectness(t *testing.T) {
	db := smallDB(t)
	words := []int{0, 1}
	// A huge window degenerates to simple AND.
	prox, _, err := db.SearchProximity(words, 100000)
	if err != nil {
		t.Fatal(err)
	}
	simple, _, _ := db.SearchSimple(words)
	if len(prox) != len(simple) {
		t.Errorf("infinite-window proximity %d docs, simple %d", len(prox), len(simple))
	}
	// Window monotonicity: a narrower window can only drop documents.
	narrow, _, _ := db.SearchProximity(words, 3)
	wide, _, _ := db.SearchProximity(words, 30)
	if len(narrow) > len(wide) {
		t.Errorf("narrow window found more docs (%d) than wide (%d)", len(narrow), len(wide))
	}
	// Verify each narrow hit truly has a span <= 3 somewhere.
	var s ExecStats
	l0, _ := db.Postings(0, &s)
	l1, _ := db.Postings(1, &s)
	posOf := func(list []Posting, doc uint32) []uint32 {
		var out []uint32
		for _, p := range list {
			if p.Doc == doc {
				out = append(out, p.Pos)
			}
		}
		return out
	}
	for _, d := range narrow {
		found := false
		for _, a := range posOf(l0, d) {
			for _, b := range posOf(l1, d) {
				span := int64(a) - int64(b)
				if span < 0 {
					span = -span
				}
				if span+1 <= 3 {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("doc %d reported within window 3 but brute force disagrees", d)
		}
	}
	if _, _, err := db.SearchProximity(nil, 5); err != nil {
		t.Error("empty proximity query must not error")
	}
}

func TestMinSpanWithin(t *testing.T) {
	cases := []struct {
		slot   [][]uint32
		window uint32
		want   bool
	}{
		{[][]uint32{{1, 10}, {3}}, 3, true},   // 1..3 spans 3
		{[][]uint32{{1, 10}, {5}}, 3, false},  // best span 5..10 = 6
		{[][]uint32{{1, 10}, {5}}, 6, true},   // 5..10 = 6
		{[][]uint32{{7}, {7}}, 1, true},       // identical positions
		{[][]uint32{{0}, {100}}, 50, false},   // far apart
		{[][]uint32{{0, 99}, {100}}, 2, true}, // 99..100
	}
	for i, c := range cases {
		got, work := minSpanWithin(c.slot, c.window)
		if got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
		if work <= 0 {
			t.Errorf("case %d: no work recorded", i)
		}
	}
}

func TestIOCostsDependOnCacheState(t *testing.T) {
	db := smallDB(t)
	// Rare words have one-page posting lists, so the whole query fits in
	// the 8-page cache and the repeat run is served from memory.
	words := []int{150, 160, 170}
	db.Cache().Invalidate()
	_, cold, _ := db.SearchSimple(words)
	_, warm, _ := db.SearchSimple(words)
	if cold.IO == 0 {
		t.Fatal("cold run performed no IO")
	}
	if warm.IO >= cold.IO {
		t.Errorf("warm IO %g not below cold IO %g", warm.IO, cold.IO)
	}
	if cold.CPU != warm.CPU {
		t.Errorf("CPU must be deterministic: %g vs %g", cold.CPU, warm.CPU)
	}
}

func TestUDFAdapters(t *testing.T) {
	db := smallDB(t)
	udfs := db.UDFs()
	if len(udfs) != 3 {
		t.Fatalf("got %d UDFs", len(udfs))
	}
	names := []string{"SIMPLE", "THRESH", "PROX"}
	for i, u := range udfs {
		if u.Name() != names[i] {
			t.Errorf("UDF %d name %q, want %q", i, u.Name(), names[i])
		}
		region := u.Region()
		if region.Dims() != 2 {
			t.Errorf("%s: model space has %d dims, want 2", u.Name(), region.Dims())
		}
		rng := rand.New(rand.NewSource(int64(i)))
		for q := 0; q < 20; q++ {
			p := make(geom.Point, 2)
			for j := range p {
				p[j] = region.Lo[j] + rng.Float64()*(region.Hi[j]-region.Lo[j])
			}
			cpu, io, err := u.Execute(p)
			if err != nil {
				t.Fatalf("%s: execution failed: %v", u.Name(), err)
			}
			if cpu < 0 || io < 0 {
				t.Fatalf("%s: negative costs (%g, %g)", u.Name(), cpu, io)
			}
		}
	}
}

func TestUDFCostDecreasesWithRank(t *testing.T) {
	// Posting lists shrink with rank, so SIMPLE's CPU cost at low rank
	// must exceed the cost at high rank.
	db := smallDB(t)
	u := db.UDFs()[0]
	cheapRank := float64(db.VocabSize() - 10)
	cpuLow, _, errLow := u.Execute(geom.Point{0, 2})
	cpuHigh, _, errHigh := u.Execute(geom.Point{cheapRank, 2})
	if errLow != nil || errHigh != nil {
		t.Fatalf("execution failed: %v, %v", errLow, errHigh)
	}
	if cpuLow <= cpuHigh {
		t.Errorf("cost at rank 0 (%g) not above cost at rank %g (%g)", cpuLow, cheapRank, cpuHigh)
	}
}

func TestWordsFromClamping(t *testing.T) {
	db := smallDB(t)
	words := db.wordsFrom(-5, 0) // n clamped to 1, rank clamped to 0
	if len(words) != 1 || words[0] != 0 {
		t.Errorf("wordsFrom(-5, 0) = %v", words)
	}
	words = db.wordsFrom(1e9, 3)
	for _, w := range words {
		if w != db.VocabSize()-1 {
			t.Errorf("over-range rank not clamped: %v", words)
		}
	}
}

func TestSearchPhraseCorrectness(t *testing.T) {
	db := smallDB(t)
	words := []int{0, 1}
	got, stats, err := db.SearchPhrase(words)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CPU <= 0 {
		t.Error("no CPU work recorded")
	}
	// Brute force: reconstruct per-doc positions and look for pos, pos+1.
	var s ExecStats
	l0, _ := db.Postings(0, &s)
	l1, _ := db.Postings(1, &s)
	pos := func(list []Posting) map[uint32]map[uint32]bool {
		m := make(map[uint32]map[uint32]bool)
		for _, p := range list {
			if m[p.Doc] == nil {
				m[p.Doc] = make(map[uint32]bool)
			}
			m[p.Doc][p.Pos] = true
		}
		return m
	}
	p0, p1 := pos(l0), pos(l1)
	want := make(map[uint32]bool)
	for doc, ps := range p0 {
		for pp := range ps {
			if p1[doc] != nil && p1[doc][pp+1] {
				want[doc] = true
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("phrase found %d docs, brute force %d", len(got), len(want))
	}
	for _, d := range got {
		if !want[d] {
			t.Fatalf("doc %d not a brute-force phrase match", d)
		}
	}
	// A phrase hit is always a proximity hit at window = len(words).
	prox, _, _ := db.SearchProximity(words, len(words))
	proxSet := make(map[uint32]bool, len(prox))
	for _, d := range prox {
		proxSet[d] = true
	}
	for _, d := range got {
		if !proxSet[d] {
			t.Fatalf("phrase hit %d missing from proximity superset", d)
		}
	}
	// Single-word phrase = that word's documents; empty phrase = nothing.
	one, _, _ := db.SearchPhrase([]int{7})
	if len(one) != db.DocFreq(7) {
		t.Errorf("single-word phrase: %d docs, df=%d", len(one), db.DocFreq(7))
	}
	none, _, err := db.SearchPhrase(nil)
	if err != nil || none != nil {
		t.Error("empty phrase must return nothing, no error")
	}
}
