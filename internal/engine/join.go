package engine

import (
	"fmt"

	"mlq/internal/optimizer"
)

// This file implements the second plan decision the paper's introduction
// raises: "whether a join should be performed before UDF execution depends
// on the cost of the UDFs and the selectivity of the UDF predicates" (§1).
// A query joins two tables and filters the left side with expensive UDF
// predicates; the executor either runs the UDFs first (shrinking the join
// input) or the join first (shrinking the UDF input), and the cost-based
// policy picks between them using the UDF cost models.

// Join describes an equi-join between two tables on one column each.
type Join struct {
	Left, Right       *Table
	LeftCol, RightCol int
}

// JoinPolicy selects the plan for a join-plus-UDF query.
type JoinPolicy int

const (
	// UDFFirst evaluates the UDF predicates on every left row, then
	// joins the survivors.
	UDFFirst JoinPolicy = iota
	// JoinFirst joins first, then evaluates the UDF predicates only on
	// left rows that found at least one join partner.
	JoinFirst
	// CostBased picks UDFFirst or JoinFirst by comparing the two plans'
	// expected costs from the UDF cost models, observed selectivities,
	// and the join's estimated match rate.
	CostBased
)

// String names the policy.
func (p JoinPolicy) String() string {
	switch p {
	case UDFFirst:
		return "udf-first"
	case JoinFirst:
		return "join-first"
	case CostBased:
		return "cost-based"
	default:
		return fmt.Sprintf("JoinPolicy(%d)", int(p))
	}
}

// JoinResult summarizes a join query execution.
type JoinResult struct {
	// Pairs is the number of joined (left, right) row pairs passing all
	// predicates.
	Pairs int
	// UDFCost is the summed actual cost of every UDF execution.
	UDFCost float64
	// ProbeCost is the number of hash probes performed (join work).
	ProbeCost float64
	// Chosen is the plan actually executed (resolves CostBased).
	Chosen JoinPolicy
}

// TotalCost returns the plan's total charged cost; each hash probe is
// charged one work unit against the UDFs' measured work units.
func (r JoinResult) TotalCost() float64 { return r.UDFCost + r.ProbeCost }

// ExecuteJoin runs SELECT * FROM L JOIN R ON L.c = R.c WHERE p1(L) AND ...
// under the given policy, feeding every actual UDF cost back into its model
// (the Fig. 1 loop). UDF predicates apply to left rows only.
func ExecuteJoin(j Join, preds []*Predicate, policy JoinPolicy) (JoinResult, error) {
	if j.Left == nil || j.Right == nil {
		return JoinResult{}, fmt.Errorf("engine: join requires both tables")
	}
	for i, p := range preds {
		if p == nil || p.Exec == nil {
			return JoinResult{}, fmt.Errorf("engine: predicate %d is missing its Exec", i)
		}
	}
	// Build the hash side once; both plans probe it.
	hash := make(map[float64][]Row, len(j.Right.Rows))
	for _, row := range j.Right.Rows {
		if j.RightCol >= len(row) {
			return JoinResult{}, fmt.Errorf("engine: right column %d out of range", j.RightCol)
		}
		k := row[j.RightCol]
		hash[k] = append(hash[k], row)
	}

	chosen := policy
	if policy == CostBased {
		chosen = chooseJoinPlan(j, preds, hash)
	}

	var res JoinResult
	res.Chosen = chosen
	evalPreds := func(row Row) (bool, error) {
		for _, p := range preds {
			ok, cost := p.Exec(row)
			p.evaluated++
			p.costSum += cost
			if ok {
				p.passed++
			}
			res.UDFCost += cost
			if p.Model != nil && p.Point != nil {
				if err := p.Model.Observe(p.Point(row), cost); err != nil {
					return false, fmt.Errorf("engine: feedback for %s: %w", p.Name, err)
				}
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}

	for _, row := range j.Left.Rows {
		if j.LeftCol >= len(row) {
			return res, fmt.Errorf("engine: left column %d out of range", j.LeftCol)
		}
		switch chosen {
		case UDFFirst:
			pass, err := evalPreds(row)
			if err != nil {
				return res, err
			}
			if !pass {
				continue
			}
			res.ProbeCost++
			res.Pairs += len(hash[row[j.LeftCol]])
		case JoinFirst:
			res.ProbeCost++
			matches := hash[row[j.LeftCol]]
			if len(matches) == 0 {
				continue
			}
			pass, err := evalPreds(row)
			if err != nil {
				return res, err
			}
			if pass {
				res.Pairs += len(matches)
			}
		default:
			return res, fmt.Errorf("engine: unknown join policy %d", int(chosen))
		}
	}
	return res, nil
}

// chooseJoinPlan compares the two plans' expected per-left-row costs.
//
//	UDF-first:  udfChainCost                + udfSel · probeCost
//	Join-first: probeCost + matchRate · udfChainCost
//
// where udfChainCost and udfSel come from the rank-ordered predicate chain
// (optimizer.PlanCost semantics) with per-predicate costs predicted by the
// UDF cost models at the table's centroid, and matchRate is the fraction of
// left join keys present on the hash side.
func chooseJoinPlan(j Join, preds []*Predicate, hash map[float64][]Row) JoinPolicy {
	const probeCost = 1.0
	// Sample the left table to estimate model-predicted UDF costs and the
	// join match rate without executing anything.
	sample := j.Left.Rows
	const maxSample = 200
	if len(sample) > maxSample {
		sample = sample[:maxSample]
	}
	if len(sample) == 0 {
		return UDFFirst
	}
	matched := 0
	cands := make([]optimizer.Candidate, len(preds))
	for i, p := range preds {
		cost := p.MeanCost()
		if p.Model != nil && p.Point != nil {
			var sum float64
			n := 0
			for _, row := range sample {
				if v, ok := p.Model.Predict(p.Point(row)); ok {
					sum += v
					n++
				}
			}
			if n > 0 {
				cost = sum / float64(n)
			}
		}
		cands[i] = optimizer.Candidate{Cost: cost, Selectivity: p.Selectivity()}
	}
	for _, row := range sample {
		if len(hash[row[j.LeftCol]]) > 0 {
			matched++
		}
	}
	matchRate := float64(matched) / float64(len(sample))

	order := optimizer.Order(cands)
	chainCost, err := optimizer.PlanCost(cands, order)
	if err != nil {
		return UDFFirst
	}
	chainSel := 1.0
	for _, c := range cands {
		chainSel *= clamp01(c.Selectivity)
	}

	udfFirst := chainCost + chainSel*probeCost
	joinFirst := probeCost + matchRate*chainCost
	if joinFirst < udfFirst {
		return JoinFirst
	}
	return UDFFirst
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
