package engine

import "mlq/internal/telemetry"

// GuardMetrics mirrors one Guard's counters into a telemetry registry under
// mlq_engine_*. A model="cost"/"sel" label conventionally distinguishes the
// two guards of a predicate; harnesses driving a Guard directly (e.g. the
// chaos experiment) reuse the same series names with their own labels.
// Publishing a nil *GuardMetrics is a no-op.
type GuardMetrics struct {
	fed         *telemetry.Counter
	quarantined *telemetry.Counter
	rejected    *telemetry.Counter
	skipped     *telemetry.Counter
	censored    *telemetry.Counter
	trips       *telemetry.Counter
	open        *telemetry.Gauge
}

// NewGuardMetrics registers the guard series under the given labels. A nil
// registry returns nil (publishing stays a no-op).
func NewGuardMetrics(reg *telemetry.Registry, labels ...telemetry.Label) *GuardMetrics {
	if reg == nil {
		return nil
	}
	return &GuardMetrics{
		fed:         reg.Counter("mlq_engine_observations_total", "observations accepted by the model", labels...),
		quarantined: reg.Counter("mlq_engine_quarantined_total", "invalid observed values (NaN/Inf/negative) stopped before the model", labels...),
		rejected:    reg.Counter("mlq_engine_rejected_observations_total", "model Observe errors absorbed by the guard", labels...),
		skipped:     reg.Counter("mlq_engine_skipped_observations_total", "observations dropped while the breaker was open", labels...),
		censored:    reg.Counter("mlq_engine_censored_observations_total", "deadline-aborted executions whose cost is known only as a lower bound", labels...),
		trips:       reg.Counter("mlq_engine_breaker_trips_total", "times the circuit breaker opened", labels...),
		open:        reg.Gauge("mlq_engine_breaker_open", "1 while the breaker is open and the planner falls back to running averages", labels...),
	}
}

// Publish mirrors a guard's cumulative stats. Must run on the goroutine that
// owns the guard (Guard is not concurrency-safe; the metrics are).
func (gt *GuardMetrics) Publish(s GuardStats) {
	if gt == nil {
		return
	}
	gt.fed.Store(s.Fed)
	gt.quarantined.Store(s.Quarantined)
	gt.rejected.Store(s.Rejected)
	gt.skipped.Store(s.Skipped)
	gt.censored.Store(s.Censored)
	gt.trips.Store(s.Trips)
	if s.Open {
		gt.open.Set(1)
	} else {
		gt.open.Set(0)
	}
}

// predTelemetry mirrors a predicate's execution and fault-handling counters
// into the registry. The predicate publishes after every execution from the
// query's goroutine; scrapes read the atomic metric values only.
type predTelemetry struct {
	evaluations  *telemetry.Counter
	passed       *telemetry.Counter
	execFailures *telemetry.Counter
	deadlines    *telemetry.Counter
	costPreds    *telemetry.Counter
	selPreds     *telemetry.Counter

	meanCost    *telemetry.Gauge
	selectivity *telemetry.Gauge

	cost *GuardMetrics
	sel  *GuardMetrics
}

// Instrument registers the predicate's metrics under mlq_engine_* labeled
// udf=<Name> (plus any extra labels) and begins publishing them after every
// execution. Guard metrics carry an additional model="cost"/"sel" label.
// Passing a nil registry detaches the predicate from telemetry again.
//
// The rank loop's Predict calls stay free of telemetry work; predictions are
// counted with plain int64 increments and only mirrored into atomics after
// the (much more expensive) UDF execution.
func (p *Predicate) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	if reg == nil {
		p.tel = nil
		return
	}
	base := append([]telemetry.Label{telemetry.L("udf", p.Name)}, labels...)
	costL := append([]telemetry.Label{telemetry.L("model", "cost")}, base...)
	selL := append([]telemetry.Label{telemetry.L("model", "sel")}, base...)
	tel := &predTelemetry{
		evaluations:  reg.Counter("mlq_engine_evaluations_total", "UDF executions, including recovered panics", base...),
		passed:       reg.Counter("mlq_engine_passed_total", "rows that passed the predicate", base...),
		execFailures: reg.Counter("mlq_engine_exec_failures_total", "UDF executions that panicked and were recovered", base...),
		deadlines:    reg.Counter("mlq_engine_deadline_exceeded_total", "UDF executions aborted by the predicate's cost deadline", base...),
		costPreds:    reg.Counter("mlq_engine_predictions_total", "model Predict calls made while planning", costL...),
		selPreds:     reg.Counter("mlq_engine_predictions_total", "model Predict calls made while planning", selL...),

		meanCost:    reg.Gauge("mlq_engine_mean_cost", "observed average execution cost", base...),
		selectivity: reg.Gauge("mlq_engine_selectivity", "observed pass fraction", base...),

		cost: NewGuardMetrics(reg, costL...),
		sel:  NewGuardMetrics(reg, selL...),
	}
	p.tel = tel
	tel.publish(p)
}

// publish mirrors the predicate's current counters into the registry. Must be
// called from the goroutine executing the query.
func (tel *predTelemetry) publish(p *Predicate) {
	tel.evaluations.Store(p.evaluated)
	tel.passed.Store(p.passed)
	tel.execFailures.Store(p.execFailures)
	tel.deadlines.Store(p.deadlineExceeded)
	tel.costPreds.Store(p.costPredictions)
	tel.selPreds.Store(p.selPredictions)
	tel.meanCost.Set(p.MeanCost())
	tel.selectivity.Set(p.Selectivity())
	tel.cost.Publish(p.costGuard.Stats())
	tel.sel.Publish(p.selGuard.Stats())
}

// ExecuteQueryTraced is ExecuteQuery wrapped in a "query" span. The tracer's
// clock is injected (telemetry.Clock), so this package still never reads the
// wall clock itself; a nil tracer makes this exactly ExecuteQuery.
func ExecuteQueryTraced(table *Table, preds []*Predicate, policy OrderPolicy, tr *telemetry.Tracer) (Result, error) {
	sp := tr.Start("query", telemetry.L("policy", policy.String()))
	res, err := ExecuteQuery(table, preds, policy)
	sp.End()
	return res, err
}
