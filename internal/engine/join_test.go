package engine

import (
	"math/rand"
	"testing"

	"mlq/internal/geom"
)

// joinFixture builds a left table of n rows (col 0: udf input, col 1: join
// key) and a right table whose keys cover matchFrac of the left keys.
func joinFixture(seed int64, n int, matchFrac float64) (left, right *Table) {
	rng := rand.New(rand.NewSource(seed))
	left = &Table{Name: "L"}
	right = &Table{Name: "R"}
	for i := 0; i < n; i++ {
		key := float64(i)
		left.Rows = append(left.Rows, Row{rng.Float64() * 99, key})
		if rng.Float64() < matchFrac {
			right.Rows = append(right.Rows, Row{key, rng.Float64()})
		}
	}
	return left, right
}

func joinOf(left, right *Table) Join {
	return Join{Left: left, Right: right, LeftCol: 1, RightCol: 0}
}

func TestExecuteJoinValidation(t *testing.T) {
	l, r := joinFixture(1, 10, 1)
	if _, err := ExecuteJoin(Join{Left: l}, nil, UDFFirst); err == nil {
		t.Error("missing right table accepted")
	}
	if _, err := ExecuteJoin(joinOf(l, r), []*Predicate{nil}, UDFFirst); err == nil {
		t.Error("nil predicate accepted")
	}
	if _, err := ExecuteJoin(Join{Left: l, Right: r, LeftCol: 9}, nil, UDFFirst); err == nil {
		t.Error("out-of-range left column accepted")
	}
	if _, err := ExecuteJoin(Join{Left: l, Right: r, RightCol: 9}, nil, UDFFirst); err == nil {
		t.Error("out-of-range right column accepted")
	}
	if _, err := ExecuteJoin(joinOf(l, r), nil, JoinPolicy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestJoinPlansAgreeOnResults(t *testing.T) {
	mkPred := func() *Predicate {
		return &Predicate{
			Name: "p",
			Exec: func(row Row) (bool, float64) { return row[0] < 60, 10 },
		}
	}
	l, r := joinFixture(2, 500, 0.3)
	a, err := ExecuteJoin(joinOf(l, r), []*Predicate{mkPred()}, UDFFirst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteJoin(joinOf(l, r), []*Predicate{mkPred()}, JoinFirst)
	if err != nil {
		t.Fatal(err)
	}
	if a.Pairs != b.Pairs {
		t.Fatalf("plans disagree: udf-first %d pairs, join-first %d", a.Pairs, b.Pairs)
	}
	if a.Pairs == 0 {
		t.Fatal("fixture produced no joined pairs")
	}
	// Brute-force check.
	want := 0
	keys := map[float64]int{}
	for _, row := range r.Rows {
		keys[row[0]]++
	}
	for _, row := range l.Rows {
		if row[0] < 60 {
			want += keys[row[1]]
		}
	}
	if a.Pairs != want {
		t.Errorf("pairs = %d, brute force %d", a.Pairs, want)
	}
	if a.Chosen != UDFFirst || b.Chosen != JoinFirst {
		t.Error("Chosen must echo the executed plan")
	}
}

func TestJoinPlanCostTradeoff(t *testing.T) {
	// Expensive unselective UDF + low join match rate: join-first is far
	// cheaper because most rows never reach the UDF.
	mkPred := func() *Predicate {
		return &Predicate{
			Name: "expensive",
			Exec: func(row Row) (bool, float64) { return true, 100 },
		}
	}
	l, r := joinFixture(3, 1000, 0.05)
	uf, err := ExecuteJoin(joinOf(l, r), []*Predicate{mkPred()}, UDFFirst)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := ExecuteJoin(joinOf(l, r), []*Predicate{mkPred()}, JoinFirst)
	if err != nil {
		t.Fatal(err)
	}
	if jf.TotalCost() >= uf.TotalCost()/2 {
		t.Errorf("join-first (%g) not clearly cheaper than udf-first (%g) at 5%% match",
			jf.TotalCost(), uf.TotalCost())
	}
}

func TestCostBasedPicksJoinFirstOnLowMatchRate(t *testing.T) {
	model := newModel(t)
	// Warm the model so CostBased has predictions: expensive everywhere.
	for i := 0; i < 200; i++ {
		model.Observe(geom.Point{float64(i % 100)}, 100)
	}
	pred := &Predicate{
		Name:  "expensive",
		Exec:  func(row Row) (bool, float64) { return true, 100 },
		Point: func(row Row) geom.Point { return geom.Point{row[0]} },
		Model: model,
	}
	pred.evaluated, pred.passed = 100, 95 // observed: unselective
	l, r := joinFixture(4, 800, 0.05)
	res, err := ExecuteJoin(joinOf(l, r), []*Predicate{pred}, CostBased)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen != JoinFirst {
		t.Errorf("cost-based chose %v; want join-first for a 100-unit unselective UDF at 5%% match", res.Chosen)
	}
}

func TestCostBasedPicksUDFFirstOnCheapSelectiveUDF(t *testing.T) {
	model := newModel(t)
	for i := 0; i < 200; i++ {
		model.Observe(geom.Point{float64(i % 100)}, 0.01)
	}
	pred := &Predicate{
		Name:  "cheap",
		Exec:  func(row Row) (bool, float64) { return row[0] < 5, 0.01 },
		Point: func(row Row) geom.Point { return geom.Point{row[0]} },
		Model: model,
	}
	pred.evaluated, pred.passed = 100, 5 // observed: very selective
	l, r := joinFixture(5, 800, 0.95)
	res, err := ExecuteJoin(joinOf(l, r), []*Predicate{pred}, CostBased)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen != UDFFirst {
		t.Errorf("cost-based chose %v; want udf-first for a near-free selective UDF at 95%% match", res.Chosen)
	}
}

func TestJoinFeedbackTrainsModel(t *testing.T) {
	model := newModel(t)
	pred := &Predicate{
		Name:  "p",
		Exec:  func(row Row) (bool, float64) { return true, 3 * row[0] },
		Point: func(row Row) geom.Point { return geom.Point{row[0]} },
		Model: model,
	}
	l, r := joinFixture(6, 400, 1)
	if _, err := ExecuteJoin(joinOf(l, r), []*Predicate{pred}, UDFFirst); err != nil {
		t.Fatal(err)
	}
	got, ok := model.Predict(geom.Point{50})
	if !ok {
		t.Fatal("model untrained after join execution")
	}
	if got < 75 || got > 225 {
		t.Errorf("prediction at 50 = %g, want ~150", got)
	}
}

func TestJoinPolicyString(t *testing.T) {
	if UDFFirst.String() != "udf-first" || JoinFirst.String() != "join-first" || CostBased.String() != "cost-based" {
		t.Error("policy names wrong")
	}
	if JoinPolicy(9).String() == "" {
		t.Error("unknown policy must render")
	}
}

func TestJoinEmptyLeftTable(t *testing.T) {
	res, err := ExecuteJoin(Join{Left: &Table{}, Right: &Table{}}, nil, CostBased)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 0 || res.TotalCost() != 0 {
		t.Errorf("empty join produced %+v", res)
	}
}
