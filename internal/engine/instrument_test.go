package engine

import (
	"errors"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/telemetry"
)

// TestPredicateInstrumentPublishes runs a ranked query over an instrumented
// predicate and checks the mlq_engine_* series match the predicate's own
// counters.
func TestPredicateInstrumentPublishes(t *testing.T) {
	tb := randomTable(11, 200)
	p := costlyPred(t, "p1", 0, 1, 50, 1)
	reg := telemetry.New()
	p.Instrument(reg)

	res, err := ExecuteQuery(tb, []*Predicate{p}, OrderByRank)
	if err != nil {
		t.Fatal(err)
	}

	udf := telemetry.L("udf", "p1")
	if got := reg.Counter("mlq_engine_evaluations_total", "", udf).Value(); got != p.Evaluated() {
		t.Errorf("evaluations series = %d, predicate says %d", got, p.Evaluated())
	}
	if got := reg.Counter("mlq_engine_passed_total", "", udf).Value(); got != int64(res.Selected) {
		t.Errorf("passed series = %d, query selected %d", got, res.Selected)
	}
	costL := []telemetry.Label{telemetry.L("model", "cost"), udf}
	preds := reg.Counter("mlq_engine_predictions_total", "", costL...).Value()
	if preds != p.costPredictions {
		t.Errorf("predictions series = %d, predicate says %d", preds, p.costPredictions)
	}
	if preds == 0 {
		t.Error("ranked query made no predictions")
	}
	fed := reg.Counter("mlq_engine_observations_total", "", costL...).Value()
	if want := p.costGuard.Stats().Fed; fed != want {
		t.Errorf("observations series = %d, guard says %d", fed, want)
	}
	if fed != int64(len(tb.Rows)) {
		t.Errorf("observations = %d, want one per row (%d)", fed, len(tb.Rows))
	}
	if got := reg.Gauge("mlq_engine_mean_cost", "", udf).Value(); got != p.MeanCost() {
		t.Errorf("mean cost gauge = %g, predicate says %g", got, p.MeanCost())
	}
	if got := reg.Gauge("mlq_engine_selectivity", "", udf).Value(); got != p.Selectivity() {
		t.Errorf("selectivity gauge = %g, predicate says %g", got, p.Selectivity())
	}
	if got := reg.Gauge("mlq_engine_breaker_open", "", costL...).Value(); got != 0 {
		t.Errorf("healthy breaker gauge = %g, want 0", got)
	}
}

// TestInstrumentBreakerAndFailures drives a predicate whose model rejects
// every observation and whose UDF panics on some rows, and checks the fault
// series: exec failures, rejected observations, breaker trips, breaker open.
func TestInstrumentBreakerAndFailures(t *testing.T) {
	tb := randomTable(12, 100)
	p := &Predicate{
		Name: "bad",
		Exec: func(row Row) (bool, float64) {
			if row[1] < 10 { // ~10% of rows
				panic("udf crash")
			}
			return true, 1 + row[0]
		},
		Point:    func(row Row) geom.Point { return geom.Point{row[0]} },
		Model:    &flakyModel{observeErr: errors.New("full"), predict: 1, predictOK: true},
		BreakerK: 4,
	}
	reg := telemetry.New()
	p.Instrument(reg)

	res, err := ExecuteQuery(tb, []*Predicate{p}, OrderByRank)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.ExecFailures == 0 {
		t.Fatal("workload did not trigger any UDF panics")
	}

	udf := telemetry.L("udf", "bad")
	costL := []telemetry.Label{telemetry.L("model", "cost"), udf}
	if got := reg.Counter("mlq_engine_exec_failures_total", "", udf).Value(); got != res.Faults.ExecFailures {
		t.Errorf("exec failures series = %d, query says %d", got, res.Faults.ExecFailures)
	}
	gs := p.costGuard.Stats()
	if !gs.Open {
		t.Fatal("breaker did not open under constant rejection")
	}
	if got := reg.Gauge("mlq_engine_breaker_open", "", costL...).Value(); got != 1 {
		t.Errorf("breaker gauge = %g, want 1", got)
	}
	if got := reg.Counter("mlq_engine_breaker_trips_total", "", costL...).Value(); got != gs.Trips {
		t.Errorf("trips series = %d, guard says %d", got, gs.Trips)
	}
	if got := reg.Counter("mlq_engine_rejected_observations_total", "", costL...).Value(); got != gs.Rejected {
		t.Errorf("rejected series = %d, guard says %d", got, gs.Rejected)
	}
	if got := reg.Counter("mlq_engine_skipped_observations_total", "", costL...).Value(); got != gs.Skipped {
		t.Errorf("skipped series = %d, guard says %d", got, gs.Skipped)
	}
}

// TestInstrumentDetach checks a nil registry stops publishing.
func TestInstrumentDetach(t *testing.T) {
	tb := randomTable(13, 20)
	p := costlyPred(t, "p1", 0, 1, 50, 1)
	reg := telemetry.New()
	p.Instrument(reg)
	p.Instrument(nil)
	if _, err := ExecuteQuery(tb, []*Predicate{p}, OrderAsGiven); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("mlq_engine_evaluations_total", "", telemetry.L("udf", "p1")).Value(); got != 0 {
		t.Errorf("detached predicate still publishing: %d", got)
	}
}

// TestExecuteQueryTraced checks the query span is recorded and that a nil
// tracer degrades to plain ExecuteQuery.
func TestExecuteQueryTraced(t *testing.T) {
	tb := randomTable(14, 50)
	p := costlyPred(t, "p1", 0, 1, 50, 1)
	reg := telemetry.New()
	var clk telemetry.FakeClock
	tr := telemetry.NewTracer(reg, &clk, nil)

	res, err := ExecuteQueryTraced(tb, []*Predicate{p}, OrderByRank, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations["p1"] != int64(len(tb.Rows)) {
		t.Errorf("traced query evaluations = %d", res.Evaluations["p1"])
	}
	h := reg.Histogram("mlq_trace_span_seconds", "", telemetry.L("span", "query"), telemetry.L("policy", "rank"))
	if h.Count() != 1 {
		t.Errorf("query span count = %d, want 1", h.Count())
	}

	p2 := costlyPred(t, "p2", 0, 1, 50, 1)
	if _, err := ExecuteQueryTraced(tb, []*Predicate{p2}, OrderAsGiven, nil); err != nil {
		t.Fatalf("nil tracer: %v", err)
	}
}
