package engine

import (
	"mlq/internal/core"
	"mlq/internal/events"
	"mlq/internal/geom"
)

// Defaults for Guard; overridable per Guard instance.
const (
	// DefaultBreakerK is the consecutive-rejection count that opens the
	// circuit breaker.
	DefaultBreakerK = 8
	// DefaultProbeEvery is how many skipped observations an open breaker
	// waits between probe attempts.
	DefaultProbeEvery = 32
)

// FeedResult classifies what Guard.Feed did with one observation.
type FeedResult int

const (
	// FedOK: the observation reached the model.
	FedOK FeedResult = iota
	// FedQuarantined: the value was invalid (NaN/Inf/negative) and never
	// reached the model.
	FedQuarantined
	// FedRejected: the model's Observe returned an error.
	FedRejected
	// FedSkipped: the breaker is open and this observation was dropped
	// without touching the model.
	FedSkipped
)

// GuardStats are a Guard's cumulative counters.
type GuardStats struct {
	Fed         int64 // observations the model accepted
	Quarantined int64 // invalid values stopped before the model
	Rejected    int64 // model Observe errors
	Skipped     int64 // dropped while the breaker was open
	Censored    int64 // deadline-aborted observations (subset of Quarantined)
	Trips       int64 // times the breaker opened
	Open        bool  // current breaker state
}

// Guard hardens the Observe side of a model's feedback loop: invalid
// observed values (NaN/Inf/negative) are quarantined before they can poison
// the model, and a circuit breaker stops feeding the model entirely after K
// consecutive Observe rejections — a model that rejects everything it is fed
// is broken, and hammering it per row buys nothing. While open, the breaker
// still probes the model with every ProbeEvery-th observation; one accepted
// probe closes it again. The zero value is ready to use with the default
// thresholds. Guard is not safe for concurrent use.
type Guard struct {
	// K overrides DefaultBreakerK when positive.
	K int
	// ProbeEvery overrides DefaultProbeEvery when positive.
	ProbeEvery int
	// Events, when non-nil, receives the guard's fault events: a breaker
	// open and every censored observation fire the flight recorder, since
	// both mean the feedback loop is degrading and the spine's recent
	// history explains why.
	Events *events.Recorder

	consecutive int
	open        bool
	sinceProbe  int
	stats       GuardStats
}

func (g *Guard) k() int {
	if g.K > 0 {
		return g.K
	}
	return DefaultBreakerK
}

func (g *Guard) probeEvery() int {
	if g.ProbeEvery > 0 {
		return g.ProbeEvery
	}
	return DefaultProbeEvery
}

// Feed validates one observation and routes it to the model under the
// breaker's control.
func (g *Guard) Feed(m core.Model, p geom.Point, actual float64) FeedResult {
	if !core.ValidCost(actual) {
		g.stats.Quarantined++
		return FedQuarantined
	}
	if g.open {
		g.sinceProbe++
		if g.sinceProbe < g.probeEvery() {
			g.stats.Skipped++
			return FedSkipped
		}
		g.sinceProbe = 0 // probe: fall through to one real attempt
	}
	if err := m.Observe(p, actual); err != nil {
		g.stats.Rejected++
		g.consecutive++
		if !g.open && g.consecutive >= g.k() {
			g.open = true
			g.stats.Trips++
			g.Events.Emit(events.SubEngine, events.KindBreakerOpen, 0, uint64(g.consecutive), 0)
			g.Events.Trigger("breaker-open")
		}
		return FedRejected
	}
	g.stats.Fed++
	g.consecutive = 0
	g.open = false
	return FedOK
}

// Censor records an observation whose true value is unknown because the
// execution was aborted (e.g. by a predicate's CostDeadline): only a lower
// bound on the cost exists. Feeding the truncated value would bias the model
// low, so censored observations are quarantined — kept away from the model
// entirely — and additionally counted in GuardStats.Censored. The breaker
// state is untouched: a censored execution says the UDF is slow, not that
// the model is broken.
func (g *Guard) Censor() {
	g.stats.Quarantined++
	g.stats.Censored++
	g.Events.Emit(events.SubEngine, events.KindCensor, 0, uint64(g.stats.Censored), 0)
	g.Events.Trigger("deadline-censor")
}

// Stats returns the guard's counters.
func (g *Guard) Stats() GuardStats {
	s := g.stats
	s.Open = g.open
	return s
}

// Open reports whether the breaker is currently open (the model is cut off
// from feedback and the planner should fall back to running averages).
func (g *Guard) Open() bool { return g.open }
