// Package engine is a miniature ORDBMS execution engine demonstrating the
// paper's Figure 1 end to end: a query with expensive UDF predicates is
// planned using the cost estimators, executed with short-circuit AND
// semantics, and every UDF execution's actual cost is fed back into its
// model — so the plans improve as the system runs.
package engine

import (
	"fmt"

	"mlq/internal/budget"
	"mlq/internal/core"
	"mlq/internal/events"
	"mlq/internal/geom"
	"mlq/internal/optimizer"
)

// Row is one tuple of a table; columns are numeric for simplicity.
type Row []float64

// Table is a named collection of rows.
type Table struct {
	Name string
	Rows []Row
}

// Predicate is one UDF predicate of a conjunctive WHERE clause.
type Predicate struct {
	// Name labels the UDF in results.
	Name string
	// Exec executes the UDF against a row, returning whether the row
	// passes and the measured execution cost.
	Exec func(row Row) (pass bool, cost float64)
	// Point maps a row to the UDF's model variables (the transformation
	// T applied to this invocation's arguments).
	Point func(row Row) geom.Point
	// Model predicts per-invocation cost; its feedback loop is driven by
	// the engine. Nil disables cost modeling for this predicate.
	Model core.Model
	// SelModel, when set, predicts per-invocation selectivity with the
	// same feedback machinery: every execution observes 1 (pass) or 0
	// (fail) at the row's point, so the block averages the quadtree
	// maintains are exactly regional pass rates. This lets the rank
	// ordering react to predicates whose selectivity varies across the
	// data space, not just their global average.
	SelModel core.Model
	// BreakerK overrides the circuit breakers' consecutive-rejection
	// threshold (default DefaultBreakerK).
	BreakerK int
	// CostDeadline is the per-execution cost budget, in the same units Exec
	// reports. An execution whose actual cost exceeds it is treated as
	// timed out: the row fails this predicate, TotalCost is charged the
	// deadline (the abort point — mirroring buffercache's deadline
	// semantics), and the observation is censored into the guards'
	// quarantine machinery because only a lower bound on the true cost is
	// known. Zero disables the deadline. The budget is cost units, not wall
	// time: the engine never reads a clock, so deadline behavior stays
	// deterministic and replayable.
	CostDeadline float64
	// Events, when non-nil, is the causal event spine: a recovered UDF
	// panic emits a fault event and fires the flight recorder, and the
	// predicate's guards inherit the recorder for their breaker-open and
	// censoring triggers.
	Events *events.Recorder

	evaluated int64
	passed    int64
	costSum   float64

	deadlineExceeded int64 // executions aborted by CostDeadline

	costPredictions int64 // Model.Predict calls made while planning
	selPredictions  int64 // SelModel.Predict calls made while planning

	execFailures int64 // panicking executions, recovered
	costGuard    Guard
	selGuard     Guard

	tel *predTelemetry // nil unless Instrument was called
}

// Health reports the predicate's fault-handling counters: recovered
// execution panics and the state of the two observation guards.
type Health struct {
	// ExecFailures counts UDF executions that panicked and were recovered;
	// each marked its row failed for this predicate.
	ExecFailures int64
	// DeadlineExceeded counts executions aborted by CostDeadline; each
	// marked its row failed and censored its observation.
	DeadlineExceeded int64
	// Cost is the cost-model observation guard's state.
	Cost GuardStats
	// Sel is the selectivity-model observation guard's state.
	Sel GuardStats
}

// Health returns the predicate's fault counters.
func (p *Predicate) Health() Health {
	return Health{
		ExecFailures:     p.execFailures,
		DeadlineExceeded: p.deadlineExceeded,
		Cost:             p.costGuard.Stats(),
		Sel:              p.selGuard.Stats(),
	}
}

// exec runs the UDF with panic isolation: a panicking UDF is recovered and
// reported as a failed execution instead of crashing the query.
func (p *Predicate) exec(row Row) (ok bool, cost float64, failed bool) {
	defer func() {
		if r := recover(); r != nil {
			p.execFailures++
			p.Events.Emit(events.SubEngine, events.KindPanic, 0, uint64(p.execFailures), 0)
			p.Events.Trigger("udf-panic")
			ok, cost, failed = false, 0, true
		}
	}()
	ok, cost = p.Exec(row)
	return ok, cost, false
}

// Selectivity returns the observed pass fraction, or 0.5 before any
// evaluation (the optimizer's uninformed prior).
func (p *Predicate) Selectivity() float64 {
	if p.evaluated == 0 {
		return 0.5
	}
	return float64(p.passed) / float64(p.evaluated)
}

// MeanCost returns the observed average execution cost, or 1 before any
// evaluation.
func (p *Predicate) MeanCost() float64 {
	if p.evaluated == 0 {
		return 1
	}
	return p.costSum / float64(p.evaluated)
}

// Evaluated returns how many times the predicate has executed.
func (p *Predicate) Evaluated() int64 { return p.evaluated }

// OrderPolicy selects how the executor orders predicates.
type OrderPolicy int

const (
	// OrderAsGiven evaluates predicates in the order supplied — the
	// naive plan a cost-model-less optimizer produces.
	OrderAsGiven OrderPolicy = iota
	// OrderByRank re-plans per row: each predicate's cost is predicted
	// by its model at that row's point and predicates run in ascending
	// rank (selectivity−1)/cost. This is the paper's motivating use.
	OrderByRank
)

// String names the policy.
func (o OrderPolicy) String() string {
	switch o {
	case OrderAsGiven:
		return "as-given"
	case OrderByRank:
		return "rank"
	default:
		return fmt.Sprintf("OrderPolicy(%d)", int(o))
	}
}

// FaultStats aggregates the fault handling of one query execution.
type FaultStats struct {
	// ExecFailures counts UDF executions that panicked and were recovered.
	ExecFailures int64
	// Quarantined counts invalid observed values (NaN/Inf/negative) kept
	// away from the models.
	Quarantined int64
	// Rejected counts model Observe errors absorbed without aborting.
	Rejected int64
	// Skipped counts observations dropped by open circuit breakers.
	Skipped int64
	// DeadlineExceeded counts executions aborted by a predicate's
	// CostDeadline; their observations are censored (also counted in
	// Quarantined via the guards).
	DeadlineExceeded int64
}

// Any reports whether any fault handling happened.
func (f FaultStats) Any() bool {
	return f.ExecFailures != 0 || f.Quarantined != 0 || f.Rejected != 0 ||
		f.Skipped != 0 || f.DeadlineExceeded != 0
}

// Result summarizes one query execution.
type Result struct {
	// Selected is the number of rows passing every predicate.
	Selected int
	// Rows are the selected rows, in table order. They alias the table's
	// rows; callers must not mutate them.
	Rows []Row
	// TotalCost is the summed actual cost of every UDF execution.
	TotalCost float64
	// Evaluations counts UDF executions per predicate name, including
	// failed (panicked) ones.
	Evaluations map[string]int64
	// Faults aggregates the fault handling of this execution. A query over
	// healthy UDFs and models reports all zeros.
	Faults FaultStats
}

// ExecuteQuery runs SELECT * FROM table WHERE p1 AND p2 AND ... with the
// given ordering policy, feeding every actual UDF cost back into the
// predicate's model.
//
// The feedback loop is hardened for long-lived operation: a panicking UDF
// marks its row failed for that predicate (counted in Health and
// Result.Faults) instead of crashing the query; invalid observed costs are
// quarantined before reaching any model; model Observe errors are absorbed
// and counted, with a per-predicate circuit breaker that stops feeding a
// model after K consecutive rejections (the rank ordering then falls back to
// the MeanCost/Selectivity running averages). ExecuteQuery only returns an
// error for malformed input, never for UDF or model misbehavior.
func ExecuteQuery(table *Table, preds []*Predicate, policy OrderPolicy) (Result, error) {
	return executeQuery(table, preds, policy, nil)
}

// ExecuteQueryArbitrated is ExecuteQuery under the global memory wall: after
// every `every` rows (minimum 1) the budget arbiter runs one cycle, so the
// byte split between the predicate models and the buffer cache re-tunes
// while the query streams. Arbitration failures are absorbed — the arbiter
// counts them in its own stats and telemetry — keeping the promise that
// execution only errors on malformed input.
func ExecuteQueryArbitrated(table *Table, preds []*Predicate, policy OrderPolicy, arb *budget.Arbiter, every int) (Result, error) {
	if arb == nil {
		return Result{}, fmt.Errorf("engine: arbiter is required")
	}
	if every < 1 {
		every = 1
	}
	return executeQuery(table, preds, policy, func(row int) {
		if (row+1)%every == 0 {
			arb.Cycle() //nolint:errcheck // absorbed by design; counted in arbiter stats
		}
	})
}

// executeQuery is the shared executor; rowHook, when non-nil, runs after
// each row completes (all orderings, feedback and fault handling included).
func executeQuery(table *Table, preds []*Predicate, policy OrderPolicy, rowHook func(rowIndex int)) (Result, error) {
	if table == nil {
		return Result{}, fmt.Errorf("engine: table is required")
	}
	for i, p := range preds {
		if p == nil || p.Exec == nil {
			return Result{}, fmt.Errorf("engine: predicate %d is missing its Exec", i)
		}
		if p.BreakerK > 0 {
			p.costGuard.K = p.BreakerK
			p.selGuard.K = p.BreakerK
		}
		if p.Events != nil {
			p.costGuard.Events = p.Events
			p.selGuard.Events = p.Events
		}
	}
	res := Result{Evaluations: make(map[string]int64, len(preds))}
	order := make([]int, len(preds))
	for i := range order {
		order[i] = i
	}
	cands := make([]optimizer.Candidate, len(preds))
	for rowIndex, row := range table.Rows {
		if policy == OrderByRank {
			for i, p := range preds {
				cost := p.MeanCost()
				sel := p.Selectivity()
				if p.Point != nil {
					pt := p.Point(row)
					// An open breaker means the model is cut off from
					// feedback and stale; plan from the running averages
					// instead. Predictions are also sanitized — a model
					// emitting NaN/Inf/negative must not poison the rank.
					if p.Model != nil && !p.costGuard.Open() {
						p.costPredictions++
						if v, ok := p.Model.Predict(pt); ok && core.ValidCost(v) {
							cost = v
						}
					}
					if p.SelModel != nil && !p.selGuard.Open() {
						p.selPredictions++
						if v, ok := p.SelModel.Predict(pt); ok && core.ValidCost(v) {
							sel = clamp01(v)
						}
					}
				}
				cands[i] = optimizer.Candidate{Cost: cost, Selectivity: sel}
			}
			order = optimizer.Order(cands)
		}
		pass := true
		for _, i := range order {
			p := preds[i]
			ok, cost, failed := p.exec(row)
			res.Evaluations[p.Name]++
			if failed {
				// The UDF panicked: the row fails this predicate, nothing
				// is observed, and the query carries on.
				res.Faults.ExecFailures++
				if p.tel != nil {
					p.tel.publish(p)
				}
				pass = false
				break
			}
			if p.CostDeadline > 0 && cost > p.CostDeadline {
				// The UDF overran its budget: in a real engine the
				// invocation would have been aborted at the deadline, so
				// the row fails, exactly the budget is charged (the abort
				// point, not the never-observed full cost), and the guards
				// censor the observation — only a lower bound on the true
				// cost is known, and feeding a truncated value would bias
				// the model low.
				p.deadlineExceeded++
				res.Faults.DeadlineExceeded++
				res.TotalCost += p.CostDeadline
				if p.Point != nil {
					if p.Model != nil {
						p.costGuard.Censor()
					}
					if p.SelModel != nil {
						p.selGuard.Censor()
					}
				}
				if p.tel != nil {
					p.tel.publish(p)
				}
				pass = false
				break
			}
			p.evaluated++
			p.costSum += cost
			if ok {
				p.passed++
			}
			res.TotalCost += cost
			if p.Point != nil {
				pt := p.Point(row)
				if p.Model != nil {
					res.Faults.count(p.costGuard.Feed(p.Model, pt, cost))
				}
				if p.SelModel != nil {
					outcome := 0.0
					if ok {
						outcome = 1
					}
					res.Faults.count(p.selGuard.Feed(p.SelModel, pt, outcome))
				}
			}
			if p.tel != nil {
				p.tel.publish(p)
			}
			if !ok {
				pass = false
				break
			}
		}
		if pass {
			res.Selected++
			res.Rows = append(res.Rows, row)
		}
		if rowHook != nil {
			rowHook(rowIndex)
		}
	}
	return res, nil
}

// count folds one guard outcome into the aggregate.
func (f *FaultStats) count(r FeedResult) {
	switch r {
	case FedQuarantined:
		f.Quarantined++
	case FedRejected:
		f.Rejected++
	case FedSkipped:
		f.Skipped++
	}
}
