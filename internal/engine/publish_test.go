package engine

import (
	"sync"
	"testing"

	"mlq/internal/core"
	"mlq/internal/geom"
)

// The engine needs no special case for the epoch/snapshot publisher: it
// implements core.Model, so a predicate backed by one gets lock-free
// prediction during planning and batched feedback after execution. These
// tests pin that wiring end to end.

func newPublisher(t *testing.T) *core.Publisher {
	t.Helper()
	pub, err := core.NewPublisher(newModel(t), core.PublisherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pub.Close() })
	return pub
}

func TestPublisherBackedPredicateTrains(t *testing.T) {
	tb := randomTable(5, 300)
	pub := newPublisher(t)
	p := &Predicate{
		Name:  "p",
		Exec:  func(row Row) (bool, float64) { return true, 3 * (1 + row[0]) },
		Point: func(row Row) geom.Point { return geom.Point{row[0]} },
		Model: pub,
	}
	if _, err := ExecuteQuery(tb, []*Predicate{p}, OrderByRank); err != nil {
		t.Fatal(err)
	}
	// Feedback flows through the batching writer; after a flush the published
	// snapshot must have learned the cost surface cost(x) = 3(1+x).
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{10, 50, 90} {
		got, ok := pub.Predict(geom.Point{x})
		if !ok {
			t.Fatalf("publisher-backed model untrained at %g", x)
		}
		want := 3 * (1 + x)
		if got < want*0.5 || got > want*1.5 {
			t.Errorf("prediction at %g = %g, want ~%g", x, got, want)
		}
	}
}

func TestPublisherBackedConcurrentQueries(t *testing.T) {
	// Many sessions planning and executing against one shared cost model:
	// the scenario the epoch/snapshot design exists for. Each goroutine gets
	// its own Predicate (per-predicate planning counters are not shared
	// state) but all of them feed and read the same publisher.
	pub := newPublisher(t)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tb := randomTable(seed, 200)
			p := &Predicate{
				Name:  "p",
				Exec:  func(row Row) (bool, float64) { return row[1] < 50, 1 + row[0] },
				Point: func(row Row) geom.Point { return geom.Point{row[0]} },
				Model: pub,
			}
			for i := 0; i < 5; i++ {
				if _, err := ExecuteQuery(tb, []*Predicate{p}, OrderByRank); err != nil {
					errs <- err
					return
				}
			}
		}(int64(g + 10))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := pub.Predict(geom.Point{50}); !ok {
		t.Error("shared model learned nothing from concurrent sessions")
	}
}
