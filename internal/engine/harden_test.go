package engine

import (
	"errors"
	"math"
	"testing"

	"mlq/internal/geom"
)

// flakyModel rejects or mangles feedback on demand.
type flakyModel struct {
	observeErr  error   // returned by Observe when non-nil
	predict     float64 // value returned by Predict
	predictOK   bool
	observed    int64 // successful observations
	observeSeen int64 // total Observe calls
}

func (m *flakyModel) Predict(geom.Point) (float64, bool) { return m.predict, m.predictOK }

func (m *flakyModel) Observe(geom.Point, float64) error {
	m.observeSeen++
	if m.observeErr != nil {
		return m.observeErr
	}
	m.observed++
	return nil
}

func (m *flakyModel) Name() string { return "flaky" }

func TestGuardQuarantinesInvalidValues(t *testing.T) {
	var g Guard
	m := &flakyModel{}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -3} {
		if r := g.Feed(m, geom.Point{0}, v); r != FedQuarantined {
			t.Errorf("Feed(%g) = %v, want FedQuarantined", v, r)
		}
	}
	if m.observeSeen != 0 {
		t.Errorf("invalid values reached the model %d times", m.observeSeen)
	}
	if s := g.Stats(); s.Quarantined != 4 || s.Open {
		t.Errorf("stats = %+v", s)
	}
	// Quarantined values must not trip the breaker: they never touched the
	// model, so they say nothing about its health.
	for i := 0; i < 100; i++ {
		g.Feed(m, geom.Point{0}, math.NaN())
	}
	if g.Open() {
		t.Error("quarantine alone opened the breaker")
	}
}

func TestGuardBreakerOpensAfterKRejections(t *testing.T) {
	g := Guard{K: 3}
	m := &flakyModel{observeErr: errors.New("full")}
	for i := 0; i < 2; i++ {
		if r := g.Feed(m, geom.Point{0}, 1); r != FedRejected {
			t.Fatalf("feed %d = %v, want FedRejected", i, r)
		}
		if g.Open() {
			t.Fatalf("breaker open after %d rejections, K=3", i+1)
		}
	}
	if r := g.Feed(m, geom.Point{0}, 1); r != FedRejected {
		t.Fatalf("third feed = %v", r)
	}
	if !g.Open() {
		t.Fatal("breaker closed after K consecutive rejections")
	}
	// Open breaker: observations skipped without touching the model.
	seen := m.observeSeen
	for i := 0; i < 10; i++ {
		if r := g.Feed(m, geom.Point{0}, 1); r != FedSkipped {
			t.Fatalf("open-breaker feed = %v, want FedSkipped", r)
		}
	}
	if m.observeSeen != seen {
		t.Error("open breaker still fed the model")
	}
	if s := g.Stats(); s.Trips != 1 || s.Skipped != 10 {
		t.Errorf("stats = %+v", s)
	}
}

func TestGuardSuccessResetsConsecutiveCount(t *testing.T) {
	g := Guard{K: 3}
	m := &flakyModel{}
	bad := errors.New("bad")
	for i := 0; i < 10; i++ {
		m.observeErr = bad
		g.Feed(m, geom.Point{0}, 1)
		g.Feed(m, geom.Point{0}, 1)
		m.observeErr = nil
		g.Feed(m, geom.Point{0}, 1) // success: resets the streak
	}
	if g.Open() {
		t.Error("interleaved successes still tripped the breaker")
	}
}

func TestGuardProbesAndRecloses(t *testing.T) {
	g := Guard{K: 2, ProbeEvery: 5}
	m := &flakyModel{observeErr: errors.New("down")}
	g.Feed(m, geom.Point{0}, 1)
	g.Feed(m, geom.Point{0}, 1)
	if !g.Open() {
		t.Fatal("breaker not open")
	}
	// The model recovers; the guard must notice via a probe and re-close.
	m.observeErr = nil
	var reclosed bool
	for i := 0; i < 20; i++ {
		r := g.Feed(m, geom.Point{0}, 1)
		if r == FedOK {
			reclosed = true
			break
		}
		if r != FedSkipped {
			t.Fatalf("unexpected result %v", r)
		}
	}
	if !reclosed || g.Open() {
		t.Fatalf("breaker never re-closed via probe (open=%v)", g.Open())
	}
}

func TestPanickingUDFDoesNotCrashQuery(t *testing.T) {
	tb := randomTable(21, 200)
	calls := 0
	p := &Predicate{
		Name: "explosive",
		Exec: func(row Row) (bool, float64) {
			calls++
			if calls%10 == 0 {
				panic("injected UDF bug")
			}
			return row[1] < 50, 1
		},
		Point: func(row Row) geom.Point { return geom.Point{row[0]} },
		Model: newModel(t),
	}
	res, err := ExecuteQuery(tb, []*Predicate{p}, OrderAsGiven)
	if err != nil {
		t.Fatalf("panicking UDF aborted the query: %v", err)
	}
	if res.Faults.ExecFailures != 20 {
		t.Errorf("ExecFailures = %d, want 20", res.Faults.ExecFailures)
	}
	if h := p.Health(); h.ExecFailures != 20 {
		t.Errorf("Health().ExecFailures = %d, want 20", h.ExecFailures)
	}
	// Panicked rows fail the predicate: none of them may be selected.
	want := 0
	n := 0
	for _, row := range tb.Rows {
		n++
		if n%10 != 0 && row[1] < 50 {
			want++
		}
	}
	if res.Selected != want {
		t.Errorf("Selected = %d, want %d", res.Selected, want)
	}
	// All 200 attempts count as evaluations; only the 180 completed ones
	// feed the running averages.
	if res.Evaluations["explosive"] != 200 {
		t.Errorf("Evaluations = %d, want 200", res.Evaluations["explosive"])
	}
	if p.Evaluated() != 180 {
		t.Errorf("Evaluated() = %d, want 180", p.Evaluated())
	}
}

// TestObserveErrorDoesNotAbortMidRow pins the regression fixed by the
// quarantine path: ExecuteQuery used to return mid-row on the first
// Model.Observe error, leaving some predicates' counters updated, the row's
// outcome undefined, and the query dead. Now the error is absorbed, counted,
// and every row completes.
func TestObserveErrorDoesNotAbortMidRow(t *testing.T) {
	tb := randomTable(22, 300)
	rejecting := &flakyModel{observeErr: errors.New("model full")}
	p1 := &Predicate{
		Name:  "first",
		Exec:  func(row Row) (bool, float64) { return true, 1 },
		Point: func(row Row) geom.Point { return geom.Point{row[0]} },
		Model: rejecting,
	}
	p2 := &Predicate{
		Name:  "second",
		Exec:  func(row Row) (bool, float64) { return row[1] < 50, 1 },
		Point: func(row Row) geom.Point { return geom.Point{row[0]} },
		Model: newModel(t),
	}
	res, err := ExecuteQuery(tb, []*Predicate{p1, p2}, OrderAsGiven)
	if err != nil {
		t.Fatalf("Observe error aborted the query: %v", err)
	}
	// The old code died on row 1: p1 evaluated once, p2 never, zero rows
	// selected, and the caller got an error. Pin the repaired behavior.
	if res.Evaluations["first"] != 300 {
		t.Errorf(`p1 evaluated %d times, want 300`, res.Evaluations["first"])
	}
	if res.Evaluations["second"] != 300 {
		t.Errorf(`p2 evaluated %d times, want 300 (p1 always passes)`, res.Evaluations["second"])
	}
	want := 0
	for _, row := range tb.Rows {
		if row[1] < 50 {
			want++
		}
	}
	if res.Selected != want {
		t.Errorf("Selected = %d, want %d — row outcomes must stay defined", res.Selected, want)
	}
	if res.Faults.Rejected == 0 {
		t.Error("rejections not counted")
	}
	// The breaker must have opened and cut the rejecting model off: far
	// fewer than 300 Observe attempts reached it.
	if !p1.Health().Cost.Open {
		t.Error("breaker never opened on a permanently rejecting model")
	}
	if rejecting.observeSeen >= 300 {
		t.Errorf("rejecting model was fed %d times — breaker ineffective", rejecting.observeSeen)
	}
}

func TestQuarantineKeepsInvalidCostsFromModels(t *testing.T) {
	tb := randomTable(23, 100)
	m := newModel(t)
	calls := 0
	p := &Predicate{
		Name: "nan-cost",
		Exec: func(row Row) (bool, float64) {
			calls++
			if calls%4 == 0 {
				return true, math.NaN() // a torn measurement
			}
			return true, 2
		},
		Point: func(row Row) geom.Point { return geom.Point{row[0]} },
		Model: m,
	}
	res, err := ExecuteQuery(tb, []*Predicate{p}, OrderAsGiven)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Quarantined != 25 {
		t.Errorf("Quarantined = %d, want 25", res.Faults.Quarantined)
	}
	// The model saw only the 75 valid samples.
	if n := m.Costs().Inserts; n != 75 {
		t.Errorf("model inserts = %d, want 75", n)
	}
	if p.Health().Cost.Open {
		t.Error("quarantine opened the breaker")
	}
}

func TestRankPlanningSurvivesPoisonedPredictions(t *testing.T) {
	// A model emitting NaN predictions must not corrupt the rank ordering
	// or the query result.
	tb := randomTable(24, 200)
	p1 := &Predicate{
		Name:  "poisoned",
		Exec:  func(row Row) (bool, float64) { return row[1] < 50, 5 },
		Point: func(row Row) geom.Point { return geom.Point{row[0]} },
		Model: &flakyModel{predict: math.NaN(), predictOK: true},
	}
	p2 := &Predicate{
		Name:  "healthy",
		Exec:  func(row Row) (bool, float64) { return row[2] < 50, 1 },
		Point: func(row Row) geom.Point { return geom.Point{row[0]} },
		Model: newModel(t),
	}
	res, err := ExecuteQuery(tb, []*Predicate{p1, p2}, OrderByRank)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, row := range tb.Rows {
		if row[1] < 50 && row[2] < 50 {
			want++
		}
	}
	if res.Selected != want {
		t.Errorf("Selected = %d, want %d", res.Selected, want)
	}
	if math.IsNaN(res.TotalCost) {
		t.Error("NaN leaked into TotalCost")
	}
}

func TestHealthyQueryReportsNoFaults(t *testing.T) {
	tb := randomTable(25, 200)
	p := costlyPred(t, "p", 0, 1, 50, 1)
	res, err := ExecuteQuery(tb, []*Predicate{p}, OrderByRank)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Any() {
		t.Errorf("healthy query reported faults: %+v", res.Faults)
	}
}
