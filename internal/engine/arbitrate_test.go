package engine

import (
	"testing"

	"mlq/internal/budget"
	"mlq/internal/buffercache"
	"mlq/internal/core"
	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/pagestore"
	"mlq/internal/quadtree"
)

func arbitratedFixture(t *testing.T) (*core.MLQ, *buffercache.Cache, *budget.Arbiter) {
	t.Helper()
	m, err := core.NewMLQ(quadtree.Config{
		Region:      geomtest.MustRect(geom.Point{0}, geom.Point{100}),
		MemoryLimit: 12 * quadtree.DefaultNodeBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := pagestore.New(quadtree.DefaultNodeBytes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		id := s.Alloc()
		if err := s.Write(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := buffercache.New(s, 32)
	if err != nil {
		t.Fatal(err)
	}
	arb, err := budget.New(budget.Config{StepBytes: 2 * quadtree.DefaultNodeBytes, Cooldown: -1},
		budget.NewModelHolder("model", m, 0),
		budget.NewCacheHolder("cache", c, 2))
	if err != nil {
		t.Fatal(err)
	}
	return m, c, arb
}

func TestExecuteQueryArbitratedValidation(t *testing.T) {
	if _, err := ExecuteQueryArbitrated(randomTable(1, 5), nil, OrderAsGiven, nil, 10); err == nil {
		t.Error("nil arbiter accepted")
	}
}

func TestExecuteQueryArbitratedMatchesSemanticsAndCycles(t *testing.T) {
	m, c, arb := arbitratedFixture(t)
	tb := randomTable(3, 400)
	pred := &Predicate{
		Name: "udf",
		Exec: func(row Row) (bool, float64) {
			// The UDF touches a page keyed by the row, so executions drive
			// the cache while costs drive the model.
			if _, err := c.Get(pagestore.PageID(int(row[0]) % 64)); err != nil {
				t.Fatal(err)
			}
			return row[1] < 50, 1 + row[0]
		},
		Point: func(row Row) geom.Point { return geom.Point{row[0]} },
		Model: m,
	}
	res, err := ExecuteQueryArbitrated(tb, []*Predicate{pred}, OrderByRank, arb, 25)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, row := range tb.Rows {
		if row[1] < 50 {
			want++
		}
	}
	if res.Selected != want {
		t.Errorf("Selected = %d, want %d — arbitration must not change query results", res.Selected, want)
	}
	st := arb.Stats()
	if st.Cycles != 400/25 {
		t.Errorf("arbiter ran %d cycles, want %d (every 25 of 400 rows)", st.Cycles, 400/25)
	}
	if got := st.TotalBytes(); got != 12*quadtree.DefaultNodeBytes+32*quadtree.DefaultNodeBytes {
		t.Errorf("wall total %d bytes after query, arbitration leaked", got)
	}
}

func TestExecuteQueryArbitratedEveryFloor(t *testing.T) {
	m, _, arb := arbitratedFixture(t)
	_ = m
	tb := randomTable(4, 10)
	pred := &Predicate{
		Name: "cheap",
		Exec: func(row Row) (bool, float64) { return true, 1 },
	}
	if _, err := ExecuteQueryArbitrated(tb, []*Predicate{pred}, OrderAsGiven, arb, 0); err != nil {
		t.Fatal(err)
	}
	if got := arb.Stats().Cycles; got != 10 {
		t.Errorf("arbiter ran %d cycles with every=0, want one per row (10)", got)
	}
}
