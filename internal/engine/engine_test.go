package engine

import (
	"math/rand"
	"testing"

	"mlq/internal/core"
	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/quadtree"
)

func newModel(t *testing.T) *core.MLQ {
	t.Helper()
	m, err := core.NewMLQ(quadtree.Config{
		Region:      geomtest.MustRect(geom.Point{0}, geom.Point{100}),
		MemoryLimit: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// costlyPred builds a predicate whose cost depends on the row's col value
// and whose pass/fail is thresholded on another column.
func costlyPred(t *testing.T, name string, costCol, selCol int, selThresh float64, costScale float64) *Predicate {
	t.Helper()
	return &Predicate{
		Name: name,
		Exec: func(row Row) (bool, float64) {
			return row[selCol] < selThresh, costScale * (1 + row[costCol])
		},
		Point: func(row Row) geom.Point { return geom.Point{row[costCol]} },
		Model: newModel(t),
	}
}

func randomTable(seed int64, n int) *Table {
	rng := rand.New(rand.NewSource(seed))
	tb := &Table{Name: "t"}
	for i := 0; i < n; i++ {
		tb.Rows = append(tb.Rows, Row{rng.Float64() * 99, rng.Float64() * 99, rng.Float64() * 99})
	}
	return tb
}

func TestExecuteQueryValidation(t *testing.T) {
	if _, err := ExecuteQuery(nil, nil, OrderAsGiven); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := ExecuteQuery(&Table{}, []*Predicate{nil}, OrderAsGiven); err == nil {
		t.Error("nil predicate accepted")
	}
	if _, err := ExecuteQuery(&Table{}, []*Predicate{{Name: "x"}}, OrderAsGiven); err == nil {
		t.Error("predicate without Exec accepted")
	}
}

func TestExecuteQuerySemantics(t *testing.T) {
	tb := randomTable(1, 500)
	// p1 passes rows with col1 < 50 (about half); p2 passes col2 < 20.
	p1 := costlyPred(t, "p1", 0, 1, 50, 1)
	p2 := costlyPred(t, "p2", 0, 2, 20, 1)
	res, err := ExecuteQuery(tb, []*Predicate{p1, p2}, OrderAsGiven)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, row := range tb.Rows {
		if row[1] < 50 && row[2] < 20 {
			want++
		}
	}
	if res.Selected != want {
		t.Errorf("Selected = %d, want %d", res.Selected, want)
	}
	// Short-circuit: p2 runs only on rows p1 passed.
	if res.Evaluations["p1"] != 500 {
		t.Errorf("p1 evaluated %d times, want 500", res.Evaluations["p1"])
	}
	if res.Evaluations["p2"] != p1.passed {
		t.Errorf("p2 evaluated %d times, want %d (rows surviving p1)", res.Evaluations["p2"], p1.passed)
	}
	if res.TotalCost <= 0 {
		t.Error("no cost recorded")
	}
	// Observed selectivity approximates the true pass rate.
	if s := p1.Selectivity(); s < 0.4 || s > 0.6 {
		t.Errorf("p1 selectivity %g, want ~0.5", s)
	}
}

func TestFeedbackTrainsModels(t *testing.T) {
	tb := randomTable(2, 300)
	p := costlyPred(t, "p", 0, 1, 200, 3) // always passes; cost = 3*(1+col0)
	if _, err := ExecuteQuery(tb, []*Predicate{p}, OrderAsGiven); err != nil {
		t.Fatal(err)
	}
	// The model must now predict the cost surface cost(x) = 3(1+x).
	m := p.Model.(*core.MLQ)
	for _, x := range []float64{10, 50, 90} {
		got, ok := m.Predict(geom.Point{x})
		if !ok {
			t.Fatalf("model untrained at %g", x)
		}
		want := 3 * (1 + x)
		if got < want*0.5 || got > want*1.5 {
			t.Errorf("prediction at %g = %g, want ~%g", x, got, want)
		}
	}
}

func TestRankOrderingBeatsNaiveOrder(t *testing.T) {
	// An expensive unselective predicate listed first: the naive plan
	// pays its cost on every row; the self-tuned rank plan learns to run
	// the cheap selective predicate first.
	mk := func() []*Predicate {
		expensive := &Predicate{
			Name:  "expensive",
			Exec:  func(row Row) (bool, float64) { return true, 100 },
			Point: func(row Row) geom.Point { return geom.Point{row[0]} },
			Model: newModel(t),
		}
		cheap := &Predicate{
			Name:  "cheap",
			Exec:  func(row Row) (bool, float64) { return row[1] < 10, 1 },
			Point: func(row Row) geom.Point { return geom.Point{row[0]} },
			Model: newModel(t),
		}
		return []*Predicate{expensive, cheap}
	}
	tb := randomTable(3, 2000)

	naive, err := ExecuteQuery(tb, mk(), OrderAsGiven)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := ExecuteQuery(tb, mk(), OrderByRank)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Selected != tuned.Selected {
		t.Fatalf("plans disagree on results: %d vs %d", naive.Selected, tuned.Selected)
	}
	// Naive: 2000*100 + pass1*1. Tuned should approach 2000*1 + ~200*100,
	// far cheaper. Allow slack for the warm-up rows.
	if tuned.TotalCost >= naive.TotalCost*0.5 {
		t.Errorf("tuned cost %g not well below naive %g", tuned.TotalCost, naive.TotalCost)
	}
}

func TestPredicateDefaults(t *testing.T) {
	p := &Predicate{}
	if p.Selectivity() != 0.5 {
		t.Errorf("prior selectivity = %g, want 0.5", p.Selectivity())
	}
	if p.MeanCost() != 1 {
		t.Errorf("prior mean cost = %g, want 1", p.MeanCost())
	}
	if p.Evaluated() != 0 {
		t.Error("fresh predicate has evaluations")
	}
}

func TestOrderPolicyString(t *testing.T) {
	if OrderAsGiven.String() != "as-given" || OrderByRank.String() != "rank" {
		t.Error("policy names wrong")
	}
	if OrderPolicy(9).String() == "" {
		t.Error("unknown policy must render")
	}
}

func TestQueryWithoutModels(t *testing.T) {
	// Predicates without models must still execute under both policies.
	tb := randomTable(4, 100)
	mk := func() []*Predicate {
		return []*Predicate{{
			Name: "plain",
			Exec: func(row Row) (bool, float64) { return row[0] < 50, 2 },
		}}
	}
	for _, policy := range []OrderPolicy{OrderAsGiven, OrderByRank} {
		res, err := ExecuteQuery(tb, mk(), policy)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if res.Evaluations["plain"] != 100 {
			t.Errorf("%v: evaluated %d, want 100", policy, res.Evaluations["plain"])
		}
	}
}

func TestSelectivityModelLearnsRegionalPassRates(t *testing.T) {
	tb := randomTable(7, 2000)
	p := &Predicate{
		Name: "regional",
		// Passes only in the right half of the space.
		Exec:     func(row Row) (bool, float64) { return row[0] > 50, 1 },
		Point:    func(row Row) geom.Point { return geom.Point{row[0]} },
		SelModel: newModel(t),
	}
	if _, err := ExecuteQuery(tb, []*Predicate{p}, OrderAsGiven); err != nil {
		t.Fatal(err)
	}
	left, okL := p.SelModel.Predict(geom.Point{20})
	right, okR := p.SelModel.Predict(geom.Point{80})
	if !okL || !okR {
		t.Fatal("selectivity model untrained")
	}
	if left > 0.2 {
		t.Errorf("left-half selectivity = %g, want ~0", left)
	}
	if right < 0.8 {
		t.Errorf("right-half selectivity = %g, want ~1", right)
	}
}

func TestPerRowSelectivityImprovesOrdering(t *testing.T) {
	// Two equal-cost predicates. p1's selectivity depends on region: it
	// kills every left-half row and passes every right-half row. p2
	// passes half the rows everywhere. Globally both look ~50% selective
	// (a tie for the rank order), but per-row selectivity lets the
	// engine run p1 first on left-half rows (free kill) and p2 first on
	// right-half rows.
	mk := func(withSelModel bool) []*Predicate {
		p1 := &Predicate{
			Name:  "regional",
			Exec:  func(row Row) (bool, float64) { return row[0] > 50, 10 },
			Point: func(row Row) geom.Point { return geom.Point{row[0]} },
			Model: newModel(t),
		}
		p2 := &Predicate{
			Name:  "coin",
			Exec:  func(row Row) (bool, float64) { return row[1] < 50, 10 },
			Point: func(row Row) geom.Point { return geom.Point{row[0]} },
			Model: newModel(t),
		}
		if withSelModel {
			p1.SelModel = newModel(t)
			p2.SelModel = newModel(t)
		}
		return []*Predicate{p1, p2}
	}
	tb := randomTable(8, 4000)
	global, err := ExecuteQuery(tb, mk(false), OrderByRank)
	if err != nil {
		t.Fatal(err)
	}
	perRow, err := ExecuteQuery(tb, mk(true), OrderByRank)
	if err != nil {
		t.Fatal(err)
	}
	if global.Selected != perRow.Selected {
		t.Fatalf("plans disagree: %d vs %d", global.Selected, perRow.Selected)
	}
	if perRow.TotalCost >= global.TotalCost {
		t.Errorf("per-row selectivity cost %g not below global-selectivity cost %g",
			perRow.TotalCost, global.TotalCost)
	}
}

func TestResultRowsMatchSelected(t *testing.T) {
	tb := randomTable(9, 400)
	p := costlyPred(t, "p", 0, 1, 50, 1)
	for _, policy := range []OrderPolicy{OrderAsGiven, OrderByRank} {
		res, err := ExecuteQuery(tb, []*Predicate{p}, policy)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != res.Selected {
			t.Fatalf("%v: %d rows vs Selected=%d", policy, len(res.Rows), res.Selected)
		}
		for _, row := range res.Rows {
			if row[1] >= 50 {
				t.Fatalf("%v: selected row %v fails the predicate", policy, row)
			}
		}
	}
}
