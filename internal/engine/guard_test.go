package engine

import (
	"errors"
	"testing"

	"mlq/internal/geom"
)

// These tests pin down the breaker's full state machine transition by
// transition: the exact opening boundary, the exact probe cadence while
// open, the failed-probe path (stays open, no double-counted trip), and a
// full recover-then-relapse cycle. harden_test.go covers the happy paths;
// here the timing is asserted feed by feed.

func TestGuardOpensAtExactlyKRejections(t *testing.T) {
	const k = 5
	g := Guard{K: k}
	m := &flakyModel{observeErr: errors.New("full")}
	for i := 1; i <= k; i++ {
		if r := g.Feed(m, geom.Point{0}, 1); r != FedRejected {
			t.Fatalf("feed %d = %v, want FedRejected", i, r)
		}
		if open := g.Open(); open != (i == k) {
			t.Fatalf("after %d rejections open=%v, want %v (K=%d)", i, open, i == k, k)
		}
	}
	if s := g.Stats(); s.Trips != 1 || s.Rejected != k {
		t.Errorf("stats = %+v, want Trips=1 Rejected=%d", s, k)
	}
}

func TestGuardProbeCadenceWhileOpen(t *testing.T) {
	const probeEvery = 4
	g := Guard{K: 1, ProbeEvery: probeEvery}
	m := &flakyModel{observeErr: errors.New("down")}
	if r := g.Feed(m, geom.Point{0}, 1); r != FedRejected || !g.Open() {
		t.Fatalf("feed = %v open=%v, want FedRejected with open breaker", r, g.Open())
	}
	// While the model stays broken, exactly every probeEvery-th observation
	// is a probe (FedRejected, reaching the model); the rest are skipped.
	seen := m.observeSeen
	for i := 1; i <= 3*probeEvery; i++ {
		r := g.Feed(m, geom.Point{0}, 1)
		if i%probeEvery == 0 {
			if r != FedRejected {
				t.Fatalf("observation %d = %v, want FedRejected probe", i, r)
			}
		} else if r != FedSkipped {
			t.Fatalf("observation %d = %v, want FedSkipped", i, r)
		}
	}
	if got := m.observeSeen - seen; got != 3 {
		t.Errorf("model saw %d probe attempts, want 3", got)
	}
}

func TestGuardFailedProbeStaysOpen(t *testing.T) {
	g := Guard{K: 2, ProbeEvery: 3}
	m := &flakyModel{observeErr: errors.New("down")}
	g.Feed(m, geom.Point{0}, 1)
	g.Feed(m, geom.Point{0}, 1)
	if !g.Open() {
		t.Fatal("breaker not open after K rejections")
	}
	// Drive through several failed probes: the breaker must remain open the
	// whole time, and the original trip must not be recounted.
	for i := 0; i < 10; i++ {
		g.Feed(m, geom.Point{0}, 1)
		if !g.Open() {
			t.Fatalf("failed probe re-closed the breaker (observation %d)", i+1)
		}
	}
	if s := g.Stats(); s.Trips != 1 {
		t.Errorf("Trips = %d, want 1: a failed probe is the same outage, not a new trip", s.Trips)
	}
}

func TestGuardProbeSuccessClosesThenRelapseReopens(t *testing.T) {
	g := Guard{K: 2, ProbeEvery: 3}
	m := &flakyModel{observeErr: errors.New("down")}
	g.Feed(m, geom.Point{0}, 1)
	g.Feed(m, geom.Point{0}, 1)
	if !g.Open() {
		t.Fatal("breaker not open")
	}
	// Recovery: the next probe (3rd open observation) must close it.
	m.observeErr = nil
	for i := 1; i <= 2; i++ {
		if r := g.Feed(m, geom.Point{0}, 1); r != FedSkipped {
			t.Fatalf("pre-probe observation %d = %v, want FedSkipped", i, r)
		}
	}
	if r := g.Feed(m, geom.Point{0}, 1); r != FedOK {
		t.Fatalf("probe = %v, want FedOK", r)
	}
	if g.Open() {
		t.Fatal("accepted probe did not close the breaker")
	}
	// Closed again: observations flow to the model immediately.
	if r := g.Feed(m, geom.Point{0}, 1); r != FedOK {
		t.Fatalf("post-close feed = %v, want FedOK", r)
	}
	// Relapse: a fresh run of K consecutive rejections is a second trip.
	m.observeErr = errors.New("down again")
	g.Feed(m, geom.Point{0}, 1)
	if g.Open() {
		t.Fatal("breaker opened one rejection early after re-close")
	}
	g.Feed(m, geom.Point{0}, 1)
	if !g.Open() {
		t.Fatal("breaker did not re-open after K fresh rejections")
	}
	if s := g.Stats(); s.Trips != 2 {
		t.Errorf("Trips = %d, want 2", s.Trips)
	}
}

func TestGuardZeroValueUsesDefaults(t *testing.T) {
	var g Guard
	m := &flakyModel{observeErr: errors.New("full")}
	for i := 1; i <= DefaultBreakerK; i++ {
		g.Feed(m, geom.Point{0}, 1)
		if open := g.Open(); open != (i == DefaultBreakerK) {
			t.Fatalf("after %d rejections open=%v, want %v (default K=%d)",
				i, open, i == DefaultBreakerK, DefaultBreakerK)
		}
	}
	// The first probe lands on the DefaultProbeEvery-th open observation.
	seen := m.observeSeen
	for i := 1; i < DefaultProbeEvery; i++ {
		if r := g.Feed(m, geom.Point{0}, 1); r != FedSkipped {
			t.Fatalf("observation %d = %v, want FedSkipped", i, r)
		}
	}
	if r := g.Feed(m, geom.Point{0}, 1); r != FedRejected {
		t.Fatalf("default probe = %v, want FedRejected", r)
	}
	if got := m.observeSeen - seen; got != 1 {
		t.Errorf("model saw %d attempts while open, want exactly the probe", got)
	}
}
