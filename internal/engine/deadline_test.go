package engine

import (
	"testing"

	"mlq/internal/geom"
)

// deadlineTable yields rows whose first column directly sets the UDF cost.
func deadlineTable(costs ...float64) *Table {
	tb := &Table{Name: "t"}
	for _, c := range costs {
		tb.Rows = append(tb.Rows, Row{c})
	}
	return tb
}

func TestCostDeadlineAbortsSlowExecutions(t *testing.T) {
	model := newModel(t)
	sel := newModel(t)
	p := &Predicate{
		Name:         "slow",
		Exec:         func(row Row) (bool, float64) { return true, row[0] },
		Point:        func(row Row) geom.Point { return geom.Point{row[0]} },
		Model:        model,
		SelModel:     sel,
		CostDeadline: 10,
	}
	// Costs 3 and 7 complete; 50 and 80 overrun the 10-unit budget.
	tb := deadlineTable(3, 50, 7, 80)
	res, err := ExecuteQuery(tb, []*Predicate{p}, OrderAsGiven)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 2 {
		t.Fatalf("selected %d rows, want 2 (deadline-aborted rows fail the predicate)", res.Selected)
	}
	if res.Faults.DeadlineExceeded != 2 {
		t.Fatalf("faults %+v, want 2 deadline exceeded", res.Faults)
	}
	if !res.Faults.Any() {
		t.Fatal("FaultStats.Any must report deadline aborts")
	}
	// Completed rows charge their cost; aborted rows charge exactly the
	// budget: 3 + 7 + 10 + 10.
	if res.TotalCost != 30 {
		t.Fatalf("total cost %g, want 30", res.TotalCost)
	}
	h := p.Health()
	if h.DeadlineExceeded != 2 {
		t.Fatalf("health %+v, want 2 deadline exceeded", h)
	}
	// Censored observations are quarantined on both guards and never reach
	// the models.
	if h.Cost.Censored != 2 || h.Cost.Quarantined != 2 || h.Sel.Censored != 2 {
		t.Fatalf("guard stats cost=%+v sel=%+v, want 2 censored each", h.Cost, h.Sel)
	}
	if h.Cost.Open {
		t.Fatal("censoring must not trip the breaker")
	}
	if got := model.Tree().Inserts(); got != 2 {
		t.Fatalf("cost model holds %d observations, want only the 2 completed", got)
	}
	// Running averages see only completed executions.
	if p.Evaluated() != 2 {
		t.Fatalf("evaluated %d, want 2", p.Evaluated())
	}
	if p.MeanCost() != 5 {
		t.Fatalf("mean cost %g, want 5 (censored costs excluded)", p.MeanCost())
	}
}

func TestCostDeadlineZeroDisables(t *testing.T) {
	p := &Predicate{
		Name: "any",
		Exec: func(row Row) (bool, float64) { return true, row[0] },
	}
	tb := deadlineTable(3, 50, 7, 80)
	res, err := ExecuteQuery(tb, []*Predicate{p}, OrderAsGiven)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 4 || res.Faults.Any() {
		t.Fatalf("zero deadline changed behavior: %+v", res)
	}
	if res.TotalCost != 140 {
		t.Fatalf("total cost %g, want 140", res.TotalCost)
	}
}

func TestCostDeadlineWithRankOrdering(t *testing.T) {
	// A deadline-aborted predicate must not derail per-row planning: the
	// query keeps re-planning, later rows still execute, and the counters
	// stay exact. Cost grows with the row value, so the first rows complete
	// (teaching the model) and the rest overrun the budget.
	slow := &Predicate{
		Name:         "slow",
		Exec:         func(row Row) (bool, float64) { return true, 4 * row[0] },
		Point:        func(row Row) geom.Point { return geom.Point{row[0]} },
		Model:        newModel(t),
		CostDeadline: 10,
	}
	fast := &Predicate{
		Name:  "fast",
		Exec:  func(row Row) (bool, float64) { return true, 1 },
		Point: func(row Row) geom.Point { return geom.Point{row[0]} },
		Model: newModel(t),
	}
	tb := deadlineTable(1, 2, 3, 4, 5) // slow costs 4, 8, 12, 16, 20
	res, err := ExecuteQuery(tb, []*Predicate{slow, fast}, OrderByRank)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 2 {
		t.Fatalf("selected %d, want 2 (rows 3..5 hit the deadline)", res.Selected)
	}
	if res.Faults.DeadlineExceeded != 3 {
		t.Fatalf("faults %+v, want 3 deadline exceeded", res.Faults)
	}
	if got := slow.Health().DeadlineExceeded; got != 3 {
		t.Fatalf("slow health reports %d deadline aborts, want 3", got)
	}
	if slow.Evaluated() != 2 {
		t.Fatalf("slow evaluated %d completed executions, want 2", slow.Evaluated())
	}
	if fast.Evaluated() != 2 {
		t.Fatalf("fast evaluated %d, want 2 (runs only on rows surviving slow)", fast.Evaluated())
	}
}
