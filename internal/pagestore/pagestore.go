// Package pagestore simulates the page-addressed disk underneath the text
// and spatial databases. It stands in for Oracle's data files in the paper's
// setup: every index and data structure is serialized onto fixed-size pages,
// and physical reads are counted so disk-IO cost can be measured per query.
package pagestore

import (
	"fmt"
	"sync/atomic"
)

// PageID addresses one page in a store.
type PageID uint32

// DefaultPageSize matches a small DBMS page (2 KB).
const DefaultPageSize = 2048

// ReadFault is a hook consulted on every physical page read; a non-nil
// return fails the read. Fault-injection harnesses install one to simulate a
// failing or stalling disk.
type ReadFault func(PageID) error

// Store is an append-allocated collection of fixed-size pages with physical
// read accounting. It is safe for concurrent reads after loading.
type Store struct {
	pageSize  int
	pages     [][]byte
	reads     atomic.Int64
	readFault atomic.Pointer[ReadFault]
}

// New returns an empty store with the given page size (0 means
// DefaultPageSize).
func New(pageSize int) (*Store, error) {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < 16 {
		return nil, fmt.Errorf("pagestore: page size must be >= 16 bytes, got %d", pageSize)
	}
	return &Store{pageSize: pageSize}, nil
}

// PageSize returns the store's page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// NumPages returns the number of allocated pages.
func (s *Store) NumPages() int { return len(s.pages) }

// Alloc allocates a new zeroed page and returns its ID.
func (s *Store) Alloc() PageID {
	s.pages = append(s.pages, make([]byte, s.pageSize))
	return PageID(len(s.pages) - 1)
}

// Write replaces the contents of page id. The data must fit in one page.
func (s *Store) Write(id PageID, data []byte) error {
	if int(id) >= len(s.pages) {
		return fmt.Errorf("pagestore: write to unallocated page %d (have %d)", id, len(s.pages))
	}
	if len(data) > s.pageSize {
		return fmt.Errorf("pagestore: %d bytes exceed page size %d", len(data), s.pageSize)
	}
	page := s.pages[id]
	copy(page, data)
	for i := len(data); i < s.pageSize; i++ {
		page[i] = 0
	}
	return nil
}

// SetReadFault installs (or, with nil, removes) the read-fault hook. It is
// safe to call concurrently with readers; the default is no hook.
func (s *Store) SetReadFault(f ReadFault) {
	if f == nil {
		s.readFault.Store(nil)
		return
	}
	s.readFault.Store(&f)
}

// Read performs a physical page read: it counts toward Reads and returns the
// page contents. The returned slice is the store's own buffer; callers must
// not modify it.
func (s *Store) Read(id PageID) ([]byte, error) {
	if int(id) >= len(s.pages) {
		return nil, fmt.Errorf("pagestore: read of unallocated page %d (have %d)", id, len(s.pages))
	}
	if fp := s.readFault.Load(); fp != nil {
		if err := (*fp)(id); err != nil {
			return nil, fmt.Errorf("pagestore: page %d: %w", id, err)
		}
	}
	s.reads.Add(1)
	return s.pages[id], nil
}

// Reads returns the number of physical page reads performed.
func (s *Store) Reads() int64 { return s.reads.Load() }

// ResetReads zeroes the physical read counter.
func (s *Store) ResetReads() { s.reads.Store(0) }
