package pagestore

import (
	"bytes"
	"errors"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(8); err == nil {
		t.Error("tiny page size accepted")
	}
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.PageSize() != DefaultPageSize {
		t.Errorf("default page size = %d", s.PageSize())
	}
}

func TestAllocWriteRead(t *testing.T) {
	s, _ := New(64)
	id := s.Alloc()
	if s.NumPages() != 1 {
		t.Fatalf("NumPages = %d", s.NumPages())
	}
	payload := []byte("hello pages")
	if err := s.Write(id, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(payload)], payload) {
		t.Errorf("read back %q", got[:len(payload)])
	}
	if len(got) != 64 {
		t.Errorf("page length %d, want full page", len(got))
	}
	if s.Reads() != 1 {
		t.Errorf("Reads = %d, want 1", s.Reads())
	}
}

func TestWriteClearsStalePageTail(t *testing.T) {
	s, _ := New(32)
	id := s.Alloc()
	s.Write(id, bytes.Repeat([]byte{0xff}, 32))
	s.Write(id, []byte{1, 2})
	got, _ := s.Read(id)
	if got[0] != 1 || got[1] != 2 {
		t.Error("prefix wrong")
	}
	for i := 2; i < 32; i++ {
		if got[i] != 0 {
			t.Fatalf("stale byte at %d", i)
		}
	}
}

func TestBoundsErrors(t *testing.T) {
	s, _ := New(32)
	if err := s.Write(0, nil); err == nil {
		t.Error("write to unallocated page accepted")
	}
	if _, err := s.Read(5); err == nil {
		t.Error("read of unallocated page accepted")
	}
	id := s.Alloc()
	if err := s.Write(id, make([]byte, 33)); err == nil {
		t.Error("oversized write accepted")
	}
}

func TestReadCounting(t *testing.T) {
	s, _ := New(32)
	id := s.Alloc()
	for i := 0; i < 10; i++ {
		s.Read(id)
	}
	if s.Reads() != 10 {
		t.Errorf("Reads = %d", s.Reads())
	}
	s.ResetReads()
	if s.Reads() != 0 {
		t.Error("ResetReads did not zero the counter")
	}
}

func TestReadFaultHook(t *testing.T) {
	s, _ := New(32)
	id := s.Alloc()
	calls := 0
	s.SetReadFault(func(got PageID) error {
		calls++
		if got != id {
			t.Errorf("hook saw page %d, want %d", got, id)
		}
		if calls == 2 {
			return errors.New("boom")
		}
		return nil
	})
	if _, err := s.Read(id); err != nil {
		t.Fatalf("unfaulted read failed: %v", err)
	}
	if _, err := s.Read(id); err == nil {
		t.Fatal("faulted read succeeded")
	}
	// A failed read must not count as a physical read.
	if s.Reads() != 1 {
		t.Errorf("Reads = %d, want 1 (failed read must not count)", s.Reads())
	}
	s.SetReadFault(nil)
	if _, err := s.Read(id); err != nil {
		t.Fatalf("read after removing hook failed: %v", err)
	}
}
