package histogram

import (
	"math"
	"math/rand"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
)

func region2() geom.Rect {
	return geomtest.MustRect(geom.Point{0, 0}, geom.Point{100, 100})
}

func TestKindString(t *testing.T) {
	if EquiWidth.String() != "SH-W" || EquiHeight.String() != "SH-H" {
		t.Error("kind names must match the paper")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(EquiWidth, Config{}, nil); err == nil {
		t.Error("missing region accepted")
	}
	if _, err := Train(Kind(9), Config{Region: region2()}, nil); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Train(EquiWidth, Config{Region: region2()},
		[]Sample{{Point: geom.Point{1}, Value: 1}}); err == nil {
		t.Error("dimension-mismatched sample accepted")
	}
	if _, err := Train(EquiWidth, Config{Region: region2()},
		[]Sample{{Point: geom.Point{1, 1}, Value: math.NaN()}}); err == nil {
		t.Error("NaN sample accepted")
	}
}

func TestUntrainedPredict(t *testing.T) {
	h, err := Train(EquiWidth, Config{Region: region2()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Predict(geom.Point{50, 50}); ok {
		t.Error("untrained histogram must report ok=false")
	}
	if h.Observe(geom.Point{50, 50}, 1) != nil {
		t.Error("Observe must be a nil-error no-op")
	}
}

func TestEquiWidthBucketAverages(t *testing.T) {
	// Two intervals per dimension: 4 buckets over [0,100)^2.
	h, err := Train(EquiWidth, Config{Region: region2(), Intervals: 2}, []Sample{
		{Point: geom.Point{10, 10}, Value: 100},
		{Point: geom.Point{20, 20}, Value: 200},
		{Point: geom.Point{80, 10}, Value: 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 4 || h.Intervals() != 2 {
		t.Fatalf("buckets=%d intervals=%d", h.Buckets(), h.Intervals())
	}
	if got, _ := h.Predict(geom.Point{30, 30}); got != 150 {
		t.Errorf("lower-left bucket = %g, want 150", got)
	}
	if got, _ := h.Predict(geom.Point{90, 40}); got != 400 {
		t.Errorf("lower-right bucket = %g, want 400", got)
	}
	// Empty bucket falls back to the global average (700/3).
	if got, _ := h.Predict(geom.Point{90, 90}); !almostEq(got, 700.0/3) {
		t.Errorf("empty bucket = %g, want global avg %g", got, 700.0/3)
	}
	if h.TrainingSize() != 3 {
		t.Errorf("TrainingSize = %d", h.TrainingSize())
	}
}

func TestEquiWidthBoundaryClamping(t *testing.T) {
	h, err := Train(EquiWidth, Config{Region: region2(), Intervals: 4}, []Sample{
		{Point: geom.Point{99.999, 99.999}, Value: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Querying at and beyond the upper corner must hit the last bucket.
	if got, _ := h.Predict(geom.Point{100, 100}); got != 7 {
		t.Errorf("corner query = %g, want 7", got)
	}
	if got, _ := h.Predict(geom.Point{150, 150}); got != 7 {
		t.Errorf("out-of-range query = %g, want 7", got)
	}
}

func TestEquiHeightBoundsFollowData(t *testing.T) {
	// 90% of the mass in [0,10): equi-height boundaries must concentrate
	// there, giving that region finer resolution than equi-width.
	rng := rand.New(rand.NewSource(2))
	var samples []Sample
	for i := 0; i < 1000; i++ {
		var x float64
		if i%10 != 0 {
			x = rng.Float64() * 10
		} else {
			x = 10 + rng.Float64()*90
		}
		samples = append(samples, Sample{Point: geom.Point{x, 50}, Value: x})
	}
	h, err := Train(EquiHeight, Config{Region: region2(), Intervals: 4}, samples)
	if err != nil {
		t.Fatal(err)
	}
	inHot := 0
	for _, b := range h.bounds[0] {
		if b < 10 {
			inHot++
		}
	}
	if inHot < 2 {
		t.Errorf("only %d of 3 dim-0 boundaries inside the hot region", inHot)
	}
}

func TestEquiHeightEmptyTrainingDegeneratesToEquiWidth(t *testing.T) {
	h, err := Train(EquiHeight, Config{Region: region2(), Intervals: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{25, 50, 75}
	for dim := 0; dim < 2; dim++ {
		for i, b := range h.bounds[dim] {
			if !almostEq(b, want[i]) {
				t.Errorf("dim %d boundary %d = %g, want %g", dim, i, b, want[i])
			}
		}
	}
}

func TestIntervalsDerivedFromMemory(t *testing.T) {
	// d=4, bucket 12 bytes: 2^4*12=192 fits in 1.8KB; 3^4*12=972 fits;
	// 4^4*12=3072 does not. So SH-W gets 3 intervals per dim.
	region := geomtest.MustRect(geom.Point{0, 0, 0, 0}, geom.Point{1, 1, 1, 1})
	h, err := Train(EquiWidth, Config{Region: region}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Intervals() != 3 {
		t.Errorf("SH-W intervals = %d, want 3 under 1.8KB", h.Intervals())
	}
	if h.MemoryUsed() > 1843 {
		t.Errorf("memory %d exceeds limit", h.MemoryUsed())
	}
	hh, err := Train(EquiHeight, Config{Region: region}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hh.MemoryUsed() > 1843 {
		t.Errorf("SH-H memory %d exceeds limit", hh.MemoryUsed())
	}
	if hh.Intervals() > h.Intervals() {
		t.Error("SH-H cannot afford more intervals than SH-W at equal memory")
	}
}

func TestTinyMemoryStillWorks(t *testing.T) {
	h, err := Train(EquiWidth, Config{Region: region2(), MemoryLimit: 1},
		[]Sample{{Point: geom.Point{1, 1}, Value: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if h.Intervals() != 1 || h.Buckets() != 1 {
		t.Errorf("intervals=%d buckets=%d, want 1,1", h.Intervals(), h.Buckets())
	}
	if got, _ := h.Predict(geom.Point{99, 99}); got != 5 {
		t.Errorf("single-bucket predict = %g, want 5", got)
	}
}

// Property: on uniformly distributed training data, both histogram kinds
// approximate a smooth linear surface with small error.
func TestApproximatesSmoothSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cost := func(p geom.Point) float64 { return 3*p[0] + 2*p[1] }
	var samples []Sample
	for i := 0; i < 5000; i++ {
		p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		samples = append(samples, Sample{Point: p, Value: cost(p)})
	}
	for _, kind := range []Kind{EquiWidth, EquiHeight} {
		h, err := Train(kind, Config{Region: region2(), Intervals: 8}, samples)
		if err != nil {
			t.Fatal(err)
		}
		var absErr, total float64
		for i := 0; i < 1000; i++ {
			p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
			pred, ok := h.Predict(p)
			if !ok {
				t.Fatal("trained histogram refused to predict")
			}
			absErr += math.Abs(pred - cost(p))
			total += cost(p)
		}
		if nae := absErr / total; nae > 0.1 {
			t.Errorf("%v NAE = %g on a smooth surface, want < 0.1", kind, nae)
		}
	}
}

// Property: equi-height matches or beats equi-width on heavily skewed data,
// the advantage the paper attributes to SH-H.
func TestEquiHeightBeatsEquiWidthOnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Cost varies rapidly in [0,5), flat elsewhere; queries live in [0,5).
	cost := func(p geom.Point) float64 {
		if p[0] < 5 {
			return 1000 * math.Sin(p[0])
		}
		return 50
	}
	var samples []Sample
	for i := 0; i < 4000; i++ {
		x := rng.Float64() * 5
		p := geom.Point{x, rng.Float64() * 100}
		samples = append(samples, Sample{Point: p, Value: cost(p)})
	}
	nae := func(kind Kind) float64 {
		h, err := Train(kind, Config{Region: region2(), Intervals: 4}, samples)
		if err != nil {
			t.Fatal(err)
		}
		var absErr, total float64
		for i := 0; i < 1000; i++ {
			p := geom.Point{rng.Float64() * 5, rng.Float64() * 100}
			pred, _ := h.Predict(p)
			absErr += math.Abs(pred - cost(p))
			total += math.Abs(cost(p))
		}
		return absErr / total
	}
	w, hgt := nae(EquiWidth), nae(EquiHeight)
	if hgt > w*1.05 {
		t.Errorf("SH-H NAE %g worse than SH-W %g on skewed workload", hgt, w)
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
