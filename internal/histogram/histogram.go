// Package histogram implements the static-histogram (SH) UDF cost models of
// Jihad and Kinji (SIGMOD Record 1999) that the paper uses as its baseline:
// multi-dimensional equi-width (SH-W) and equi-height (SH-H) histograms,
// trained a-priori on a collected sample of UDF executions and frozen
// afterwards. Both respect the same memory budget as MLQ so the comparison
// is apples-to-apples.
package histogram

import (
	"fmt"
	"math"
	"sort"

	"mlq/internal/geom"
)

// Kind selects the bucket-boundary policy.
type Kind int

const (
	// EquiWidth divides every dimension into intervals of equal length
	// (the paper's SH-W).
	EquiWidth Kind = iota
	// EquiHeight divides every dimension so each interval holds the same
	// number of training points (the paper's SH-H).
	EquiHeight
)

// String returns the paper's name for the method.
func (k Kind) String() string {
	switch k {
	case EquiWidth:
		return "SH-W"
	case EquiHeight:
		return "SH-H"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Sample is one training observation: a UDF executed at Point cost Value.
type Sample struct {
	Point geom.Point
	Value float64
}

// Config parameterizes histogram construction.
type Config struct {
	// Region is the full data space.
	Region geom.Rect
	// MemoryLimit is the byte budget; the number of intervals per
	// dimension is derived from it. Default 1843 (1.8 KB), as in §5.1.
	MemoryLimit int
	// BucketBytes is the memory charged per bucket (sum 8 + count 4).
	// Default 12.
	BucketBytes int
	// BoundaryBytes is the memory charged per stored interval boundary
	// (equi-height only). Default 8.
	BoundaryBytes int
	// Intervals forces the per-dimension interval count, bypassing the
	// memory-based derivation. Zero derives it from MemoryLimit.
	Intervals int
}

func (c Config) withDefaults() Config {
	if c.MemoryLimit == 0 {
		c.MemoryLimit = 1843
	}
	if c.BucketBytes == 0 {
		c.BucketBytes = 12
	}
	if c.BoundaryBytes == 0 {
		c.BoundaryBytes = 8
	}
	return c
}

// Histogram is a trained, immutable multi-dimensional histogram cost model.
type Histogram struct {
	kind      Kind
	region    geom.Rect
	n         int         // intervals per dimension
	bounds    [][]float64 // per dim: n-1 interior boundaries (equi-height only)
	sums      []float64
	counts    []int32
	global    float64 // global average, the empty-bucket fallback
	seen      int64
	bucketB   int
	boundaryB int
}

// intervalsFor returns the largest per-dimension interval count that fits in
// the memory budget for the given kind, at least 1.
func intervalsFor(kind Kind, cfg Config, dims int) int {
	best := 1
	for n := 1; ; n++ {
		buckets := 1
		overflow := false
		for i := 0; i < dims; i++ {
			buckets *= n
			if buckets > cfg.MemoryLimit { // early exit; cost only grows
				overflow = true
				break
			}
		}
		if overflow {
			break
		}
		cost := buckets * cfg.BucketBytes
		if kind == EquiHeight {
			cost += (n - 1) * dims * cfg.BoundaryBytes
		}
		if cost > cfg.MemoryLimit {
			break
		}
		best = n
	}
	return best
}

// Train builds a histogram of the given kind from the training samples.
// Training is the a-priori step the paper's SH methods require; the result
// never changes afterwards.
func Train(kind Kind, cfg Config, samples []Sample) (*Histogram, error) {
	cfg = cfg.withDefaults()
	if cfg.Region.Dims() == 0 {
		return nil, fmt.Errorf("histogram: Config.Region must be set")
	}
	if kind != EquiWidth && kind != EquiHeight {
		return nil, fmt.Errorf("histogram: unknown kind %d", int(kind))
	}
	d := cfg.Region.Dims()
	n := cfg.Intervals
	if n <= 0 {
		n = intervalsFor(kind, cfg, d)
	}
	buckets := 1
	for i := 0; i < d; i++ {
		buckets *= n
	}
	h := &Histogram{
		kind:      kind,
		region:    cfg.Region.Clone(),
		n:         n,
		sums:      make([]float64, buckets),
		counts:    make([]int32, buckets),
		bucketB:   cfg.BucketBytes,
		boundaryB: cfg.BoundaryBytes,
	}
	if kind == EquiHeight {
		h.bounds = equiHeightBounds(cfg.Region, n, samples)
	}
	var gSum float64
	for _, s := range samples {
		if len(s.Point) != d {
			return nil, fmt.Errorf("histogram: sample has %d dims, region has %d", len(s.Point), d)
		}
		if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			return nil, fmt.Errorf("histogram: sample value must be finite, got %g", s.Value)
		}
		i := h.bucketIndex(cfg.Region.Clamp(s.Point))
		h.sums[i] += s.Value
		h.counts[i]++
		gSum += s.Value
	}
	h.seen = int64(len(samples))
	if h.seen > 0 {
		h.global = gSum / float64(h.seen)
	}
	return h, nil
}

// equiHeightBounds computes, for each dimension, the n-1 interior boundaries
// that split the training sample's marginal distribution into n equal-count
// intervals.
func equiHeightBounds(region geom.Rect, n int, samples []Sample) [][]float64 {
	d := region.Dims()
	bounds := make([][]float64, d)
	for dim := 0; dim < d; dim++ {
		bounds[dim] = make([]float64, n-1)
		if len(samples) == 0 {
			// Degenerate to equi-width boundaries.
			w := (region.Hi[dim] - region.Lo[dim]) / float64(n)
			for i := 0; i < n-1; i++ {
				bounds[dim][i] = region.Lo[dim] + w*float64(i+1)
			}
			continue
		}
		coords := make([]float64, len(samples))
		for i, s := range samples {
			coords[i] = s.Point[dim]
		}
		sort.Float64s(coords)
		for i := 0; i < n-1; i++ {
			q := float64(i+1) / float64(n)
			idx := int(q * float64(len(coords)))
			if idx >= len(coords) {
				idx = len(coords) - 1
			}
			bounds[dim][i] = coords[idx]
		}
	}
	return bounds
}

// intervalOf returns which interval along dim the coordinate falls into.
func (h *Histogram) intervalOf(dim int, x float64) int {
	if h.kind == EquiWidth {
		lo, hi := h.region.Lo[dim], h.region.Hi[dim]
		i := int(float64(h.n) * (x - lo) / (hi - lo))
		if i < 0 {
			i = 0
		}
		if i >= h.n {
			i = h.n - 1
		}
		return i
	}
	// Equi-height: the interval index is the number of boundaries <= x
	// (intervals are [b[i-1], b[i]) with b[-1]=Lo and b[n-1]=Hi).
	b := h.bounds[dim]
	return sort.Search(len(b), func(i int) bool { return b[i] > x })
}

// bucketIndex linearizes the per-dimension interval indices.
func (h *Histogram) bucketIndex(p geom.Point) int {
	idx := 0
	for dim := len(p) - 1; dim >= 0; dim-- {
		idx = idx*h.n + h.intervalOf(dim, p[dim])
	}
	return idx
}

// Predict returns the average training cost of the bucket containing p,
// falling back to the global training average for empty buckets. ok is
// false only for an untrained (empty) histogram.
func (h *Histogram) Predict(p geom.Point) (float64, bool) {
	if h.seen == 0 {
		return 0, false
	}
	i := h.bucketIndex(h.region.Clamp(p))
	v := h.global
	if h.counts[i] != 0 {
		v = h.sums[i] / float64(h.counts[i])
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		// Train rejects non-finite samples, so this means summary
		// corruption; report "untrained" rather than emit the value.
		return 0, false
	}
	return v, true
}

// Observe is a no-op: SH models are static and do not self-tune. It exists
// so histograms satisfy the same cost-model interface as MLQ in the
// experiment harness.
func (h *Histogram) Observe(geom.Point, float64) error { return nil }

// Kind returns the histogram's construction policy.
func (h *Histogram) Kind() Kind { return h.kind }

// Name returns the paper's name for the method ("SH-W" or "SH-H").
func (h *Histogram) Name() string { return h.kind.String() }

// Intervals returns the number of intervals per dimension.
func (h *Histogram) Intervals() int { return h.n }

// Buckets returns the total bucket count (Intervals^dims).
func (h *Histogram) Buckets() int { return len(h.sums) }

// MemoryUsed returns the bytes charged to the histogram under the paper's
// accounting (buckets plus stored boundaries).
func (h *Histogram) MemoryUsed() int {
	mem := len(h.sums) * h.bucketB
	if h.kind == EquiHeight {
		for _, b := range h.bounds {
			mem += len(b) * h.boundaryB
		}
	}
	return mem
}

// TrainingSize returns the number of samples the histogram was trained on.
func (h *Histogram) TrainingSize() int64 { return h.seen }
