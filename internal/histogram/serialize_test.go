package histogram

import (
	"bytes"
	"math/rand"
	"testing"

	"mlq/internal/geom"
)

func trainedHist(t *testing.T, kind Kind) *Histogram {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	var samples []Sample
	for i := 0; i < 800; i++ {
		p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		samples = append(samples, Sample{Point: p, Value: p[0] + 2*p[1]})
	}
	h, err := Train(kind, Config{Region: region2()}, samples)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHistogramSerializeRoundTrip(t *testing.T) {
	for _, kind := range []Kind{EquiWidth, EquiHeight} {
		t.Run(kind.String(), func(t *testing.T) {
			h := trainedHist(t, kind)
			var buf bytes.Buffer
			n, err := h.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind() != h.Kind() || got.Intervals() != h.Intervals() ||
				got.Buckets() != h.Buckets() || got.TrainingSize() != h.TrainingSize() {
				t.Fatal("shape lost in round trip")
			}
			if got.MemoryUsed() != h.MemoryUsed() {
				t.Errorf("memory accounting changed: %d vs %d", got.MemoryUsed(), h.MemoryUsed())
			}
			rng := rand.New(rand.NewSource(10))
			for i := 0; i < 300; i++ {
				p := geom.Point{rng.Float64() * 120, rng.Float64() * 120}
				a, aok := h.Predict(p)
				b, bok := got.Predict(p)
				if a != b || aok != bok {
					t.Fatalf("prediction diverged at %v: (%g,%v) vs (%g,%v)", p, a, aok, b, bok)
				}
			}
		})
	}
}

func TestHistogramSerializeEmpty(t *testing.T) {
	h, err := Train(EquiWidth, Config{Region: region2()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Predict(geom.Point{1, 1}); ok {
		t.Error("empty histogram must stay untrained after round trip")
	}
}

func TestHistogramReadRejectsCorruptInput(t *testing.T) {
	h := trainedHist(t, EquiHeight)
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] ^= 0xff
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[4] = 77
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Error("bad version accepted")
		}
	})
	t.Run("bad kind", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[8] = 9
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Error("bad kind accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 10, len(good) / 2, len(good) - 2} {
			if _, err := Read(bytes.NewReader(good[:cut])); err == nil {
				t.Errorf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("huge intervals", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[16], b[17], b[18], b[19] = 0xff, 0xff, 0xff, 0x7f
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Error("implausible interval count accepted")
		}
	})
}
