package histogram

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mlq/internal/geom"
)

// Serialization mirrors internal/quadtree's: a trained SH model persists in
// the catalog and reloads at optimizer startup. Little-endian, versioned.

const (
	serialMagic   = 0x4d4c5148 // "MLQH"
	serialVersion = 1
)

// WriteTo serializes the histogram. It implements io.WriterTo.
func (h *Histogram) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
			n += int64(binary.Size(v))
		}
		return nil
	}
	d := h.region.Dims()
	if err := write(
		uint32(serialMagic), uint32(serialVersion),
		uint32(h.kind), uint32(d), uint32(h.n),
		uint32(h.bucketB), uint32(h.boundaryB),
		h.global, h.seen,
	); err != nil {
		return n, err
	}
	for i := 0; i < d; i++ {
		if err := write(h.region.Lo[i], h.region.Hi[i]); err != nil {
			return n, err
		}
	}
	if h.kind == EquiHeight {
		for _, bounds := range h.bounds {
			for _, b := range bounds {
				if err := write(b); err != nil {
					return n, err
				}
			}
		}
	}
	for i := range h.sums {
		if err := write(h.sums[i], h.counts[i]); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read deserializes a histogram previously written with WriteTo.
func Read(r io.Reader) (*Histogram, error) {
	br := bufio.NewReader(r)
	read := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	var magic, version, kind, dims, n, bucketB, boundaryB uint32
	var global float64
	var seen int64
	if err := read(&magic, &version, &kind, &dims, &n, &bucketB, &boundaryB, &global, &seen); err != nil {
		return nil, fmt.Errorf("histogram: reading header: %w", err)
	}
	if magic != serialMagic {
		return nil, fmt.Errorf("histogram: bad magic %#x", magic)
	}
	if version != serialVersion {
		return nil, fmt.Errorf("histogram: unsupported version %d", version)
	}
	if Kind(kind) != EquiWidth && Kind(kind) != EquiHeight {
		return nil, fmt.Errorf("histogram: corrupt kind %d", kind)
	}
	if dims == 0 || dims > 20 || n == 0 || n > 1<<20 {
		return nil, fmt.Errorf("histogram: corrupt shape dims=%d n=%d", dims, n)
	}
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for i := range lo {
		if err := read(&lo[i], &hi[i]); err != nil {
			return nil, fmt.Errorf("histogram: reading region: %w", err)
		}
	}
	region, err := geom.NewRect(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("histogram: corrupt region: %w", err)
	}
	buckets := 1
	for i := uint32(0); i < dims; i++ {
		buckets *= int(n)
		if buckets > 1<<28 {
			return nil, fmt.Errorf("histogram: implausible bucket count")
		}
	}
	h := &Histogram{
		kind:      Kind(kind),
		region:    region,
		n:         int(n),
		sums:      make([]float64, buckets),
		counts:    make([]int32, buckets),
		global:    global,
		seen:      seen,
		bucketB:   int(bucketB),
		boundaryB: int(boundaryB),
	}
	if h.kind == EquiHeight {
		h.bounds = make([][]float64, dims)
		for dim := range h.bounds {
			h.bounds[dim] = make([]float64, n-1)
			for i := range h.bounds[dim] {
				if err := read(&h.bounds[dim][i]); err != nil {
					return nil, fmt.Errorf("histogram: reading bounds: %w", err)
				}
			}
		}
	}
	for i := range h.sums {
		if err := read(&h.sums[i], &h.counts[i]); err != nil {
			return nil, fmt.Errorf("histogram: reading buckets: %w", err)
		}
		if h.counts[i] < 0 {
			return nil, fmt.Errorf("histogram: negative bucket count at %d", i)
		}
	}
	return h, nil
}
