package histogram

import (
	"bytes"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
)

// FuzzRead feeds arbitrary bytes to the histogram decoder: it must never
// panic, and anything it accepts must predict without crashing.
func FuzzRead(f *testing.F) {
	h, err := Train(EquiHeight, Config{Region: geomtest.MustRect(geom.Point{0, 0}, geom.Point{10, 10})},
		[]Sample{
			{Point: geom.Point{1, 1}, Value: 5},
			{Point: geom.Point{9, 9}, Value: 50},
		})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := h.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:10])

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		got.Predict(geom.Point{5, 5})
		got.Predict(geom.Point{-100, 100})
	})
}
