// Package leo implements a LEO-style learning optimizer component (Stillger
// et al., VLDB 2001), the second self-tuning system the paper discusses
// (§2.2). LEO logs each execution's estimated and actual statistics,
// computes adjustment factors in the background, and applies them to future
// estimates.
//
// Here the "statistic" is UDF execution cost: the model wraps a base
// estimator (by default the running global average), keeps a log of
// (point, estimate, actual) records, and periodically folds the log into an
// adjustment table keyed by a coarse grid over the model-variable space.
// Predictions multiply the base estimate by the cell's learned ratio.
//
// The paper's claim — "MLQ is more storage efficient than LEO since it uses
// a quadtree to store summary information ... and applies the feedback
// information directly" (§2.2) — is quantified by harness.LEOComparison:
// LEO must retain a log between analysis passes, so its working-set memory
// for equal accuracy is a multiple of MLQ's.
package leo

import (
	"fmt"
	"math"

	"mlq/internal/geom"
)

// Config parameterizes the LEO-style model.
type Config struct {
	// Region is the model-variable space.
	Region geom.Rect
	// GridSize is the per-dimension resolution of the adjustment table.
	// Default 3 (comparable to SH-W's bucket count at 1.8 KB).
	GridSize int
	// AnalyzeEvery folds the log into the adjustment table after this
	// many logged executions (LEO's background analysis). Default 200.
	AnalyzeEvery int
}

func (c Config) withDefaults() Config {
	if c.GridSize == 0 {
		c.GridSize = 3
	}
	if c.AnalyzeEvery == 0 {
		c.AnalyzeEvery = 200
	}
	return c
}

// record is one logged execution: LEO keeps the full (plan estimate, actual)
// pair until the next analysis pass.
type record struct {
	point    geom.Point
	estimate float64
	actual   float64
}

// Model is a LEO-style self-tuning cost estimator. It satisfies core.Model.
type Model struct {
	cfg Config

	// Base estimator state: running global average.
	sum   float64
	count int64

	// Adjustment table: per grid cell, the learned ratio actual/estimate
	// (1 = no adjustment) and how many records contributed.
	ratio   []float64
	weight  []int64
	log     []record
	logged  int64
	analyze int64 // analysis passes run
}

// New returns an empty LEO-style model.
func New(cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if cfg.Region.Dims() == 0 {
		return nil, fmt.Errorf("leo: Config.Region must be set")
	}
	if cfg.GridSize < 1 || cfg.AnalyzeEvery < 1 {
		return nil, fmt.Errorf("leo: GridSize and AnalyzeEvery must be >= 1")
	}
	cells := 1
	for i := 0; i < cfg.Region.Dims(); i++ {
		cells *= cfg.GridSize
		if cells > 1<<24 {
			return nil, fmt.Errorf("leo: adjustment table too large (%d^%d cells)", cfg.GridSize, cfg.Region.Dims())
		}
	}
	m := &Model{
		cfg:    cfg,
		ratio:  make([]float64, cells),
		weight: make([]int64, cells),
	}
	for i := range m.ratio {
		m.ratio[i] = 1
	}
	return m, nil
}

// cell maps a point to its adjustment-table index.
func (m *Model) cell(p geom.Point) int {
	p = m.cfg.Region.Clamp(p)
	idx := 0
	for dim := len(p) - 1; dim >= 0; dim-- {
		lo, hi := m.cfg.Region.Lo[dim], m.cfg.Region.Hi[dim]
		i := int(float64(m.cfg.GridSize) * (p[dim] - lo) / (hi - lo))
		if i < 0 {
			i = 0
		}
		if i >= m.cfg.GridSize {
			i = m.cfg.GridSize - 1
		}
		idx = idx*m.cfg.GridSize + i
	}
	return idx
}

// base returns the base estimator's prediction (the running global mean).
func (m *Model) base() float64 {
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}

// Predict implements core.Model: base estimate times the cell's adjustment.
func (m *Model) Predict(p geom.Point) (float64, bool) {
	if m.count == 0 {
		return 0, false
	}
	v := m.base() * m.ratio[m.cell(p)]
	if math.IsNaN(v) || math.IsInf(v, 0) {
		// Observe rejects non-finite costs, so a non-finite product can
		// only come from a corrupted adjustment ratio; report "no
		// information" instead of poisoning the plan.
		return 0, false
	}
	return v, true
}

// Observe implements core.Model: it logs the execution (with the estimate
// the optimizer would have used) and periodically runs the analysis pass.
func (m *Model) Observe(p geom.Point, actual float64) error {
	if len(p) != m.cfg.Region.Dims() {
		return fmt.Errorf("leo: point has %d dims, model has %d", len(p), m.cfg.Region.Dims())
	}
	if math.IsNaN(actual) || math.IsInf(actual, 0) {
		return fmt.Errorf("leo: cost must be finite, got %g", actual)
	}
	est, _ := m.Predict(p)
	m.log = append(m.log, record{point: m.cfg.Region.Clamp(p), estimate: est, actual: actual})
	m.logged++
	m.sum += actual
	m.count++
	if len(m.log) >= m.cfg.AnalyzeEvery {
		m.runAnalysis()
	}
	return nil
}

// runAnalysis is LEO's background pass: compare logged estimates against
// actuals per cell and update the adjustment ratios, then clear the log.
func (m *Model) runAnalysis() {
	type agg struct {
		actual float64
		n      int64
	}
	perCell := make(map[int]*agg)
	for _, r := range m.log {
		c := m.cell(r.point)
		a := perCell[c]
		if a == nil {
			a = &agg{}
			perCell[c] = a
		}
		a.actual += r.actual
		a.n++
	}
	base := m.base()
	for c, a := range perCell {
		if base <= 0 {
			continue
		}
		newRatio := (a.actual / float64(a.n)) / base
		// Blend with the existing ratio in proportion to evidence.
		w := m.weight[c]
		m.ratio[c] = (m.ratio[c]*float64(w) + newRatio*float64(a.n)) / float64(w+a.n)
		m.weight[c] += a.n
	}
	m.log = m.log[:0]
	m.analyze++
}

// Name implements core.Model.
func (m *Model) Name() string { return "LEO" }

// MemoryUsed returns the model's current memory charge: the adjustment
// table (ratio 8 + weight 8 per cell) plus the retained log (8 bytes per
// stored float: d coordinates + estimate + actual per record). The log is
// what makes LEO's working set larger than MLQ's at equal accuracy.
func (m *Model) MemoryUsed() int {
	table := len(m.ratio) * 16
	rec := (m.cfg.Region.Dims() + 2) * 8
	return table + len(m.log)*rec
}

// PeakLogRecords returns the log capacity implied by AnalyzeEvery (the
// records retained just before an analysis pass).
func (m *Model) PeakLogRecords() int { return m.cfg.AnalyzeEvery }

// PeakMemory returns the model's worst-case memory: table plus a full log.
func (m *Model) PeakMemory() int {
	rec := (m.cfg.Region.Dims() + 2) * 8
	return len(m.ratio)*16 + m.cfg.AnalyzeEvery*rec
}

// Analyses returns how many background analysis passes have run.
func (m *Model) Analyses() int64 { return m.analyze }
