package leo

import (
	"math"
	"math/rand"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
)

func region2() geom.Rect { return geomtest.MustRect(geom.Point{0, 0}, geom.Point{100, 100}) }

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing region accepted")
	}
	if _, err := New(Config{Region: region2(), GridSize: -1}); err == nil {
		t.Error("negative grid accepted")
	}
	if _, err := New(Config{Region: geom.UnitCube(16), GridSize: 10}); err == nil {
		t.Error("10^16-cell table accepted")
	}
}

func TestObserveValidation(t *testing.T) {
	m, err := New(Config{Region: region2()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(geom.Point{1}, 1); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := m.Observe(geom.Point{1, 1}, math.NaN()); err == nil {
		t.Error("NaN cost accepted")
	}
	if _, ok := m.Predict(geom.Point{1, 1}); ok {
		t.Error("empty model predicted")
	}
}

func TestLearnsRegionalAdjustments(t *testing.T) {
	m, err := New(Config{Region: region2(), GridSize: 2, AnalyzeEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Left half costs 10, right half costs 1000.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		cost := 10.0
		if x >= 50 {
			cost = 1000
		}
		if err := m.Observe(geom.Point{x, y}, cost); err != nil {
			t.Fatal(err)
		}
	}
	if m.Analyses() == 0 {
		t.Fatal("no analysis passes ran")
	}
	left, _ := m.Predict(geom.Point{10, 50})
	right, _ := m.Predict(geom.Point{90, 50})
	if left > 100 {
		t.Errorf("left prediction %g, want ~10", left)
	}
	if right < 500 {
		t.Errorf("right prediction %g, want ~1000", right)
	}
}

func TestMemoryAccounting(t *testing.T) {
	m, err := New(Config{Region: region2(), GridSize: 3, AnalyzeEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	table := 9 * 16
	if m.MemoryUsed() != table {
		t.Errorf("empty model memory %d, want table-only %d", m.MemoryUsed(), table)
	}
	for i := 0; i < 49; i++ {
		m.Observe(geom.Point{1, 1}, 5)
	}
	// 49 records x (2 dims + 2) x 8 bytes on top of the table.
	want := table + 49*4*8
	if m.MemoryUsed() != want {
		t.Errorf("memory %d, want %d with a 49-record log", m.MemoryUsed(), want)
	}
	if m.PeakMemory() != table+50*4*8 {
		t.Errorf("peak memory %d", m.PeakMemory())
	}
	if m.PeakLogRecords() != 50 {
		t.Errorf("peak log records %d", m.PeakLogRecords())
	}
	// The analysis pass drains the log.
	m.Observe(geom.Point{1, 1}, 5)
	if m.MemoryUsed() != table {
		t.Errorf("memory %d after analysis, want %d", m.MemoryUsed(), table)
	}
}

func TestAdjustmentsBlendWithEvidence(t *testing.T) {
	m, err := New(Config{Region: region2(), GridSize: 1, AnalyzeEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.Observe(geom.Point{50, 50}, 10)
	}
	// With one cell and constant costs, ratio converges to 1 and the
	// prediction to the true constant.
	got, ok := m.Predict(geom.Point{50, 50})
	if !ok || math.Abs(got-10) > 0.5 {
		t.Errorf("constant-cost prediction %g, want ~10", got)
	}
	if m.Name() != "LEO" {
		t.Errorf("Name = %q", m.Name())
	}
}
