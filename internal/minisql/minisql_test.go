package minisql

import (
	"math/rand"
	"strings"
	"testing"

	"mlq/internal/core"
	"mlq/internal/engine"
	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/quadtree"
)

func TestLex(t *testing.T) {
	toks, err := lex("SELECT * FROM t WHERE f(a, b) <= -1.5e2 AND c != 3")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	want := []tokenKind{
		tokIdent, tokStar, tokIdent, tokIdent, tokIdent,
		tokIdent, tokLParen, tokIdent, tokComma, tokIdent, tokRParen, tokOp, tokNumber,
		tokIdent, tokIdent, tokOp, tokNumber, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: kind %d, want %d (%q)", i, kinds[i], want[i], toks[i].text)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"a ! b", "x @ y", "n 1.2.3"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) accepted", bad)
		}
	}
}

func TestParse(t *testing.T) {
	q, err := Parse("select * from Map where Contained(x, y) = 1 and SnowCoverage(img) < 20 and size >= 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "Map" || len(q.Preds) != 3 {
		t.Fatalf("parsed %+v", q)
	}
	p0 := q.Preds[0]
	if p0.UDF != "Contained" || len(p0.Args) != 2 || p0.Op != "=" || p0.Value != 1 {
		t.Errorf("pred 0: %+v", p0)
	}
	p2 := q.Preds[2]
	if p2.UDF != "" || p2.Col != "size" || p2.Op != ">=" || p2.Value != 5 {
		t.Errorf("pred 2: %+v", p2)
	}
	if !strings.Contains(p0.String(), "Contained(x, y)") {
		t.Errorf("String = %q", p0.String())
	}
	// No WHERE clause is fine.
	q, err = Parse("SELECT * FROM t")
	if err != nil || len(q.Preds) != 0 {
		t.Errorf("bare select: %+v, %v", q, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DELETE * FROM t",
		"SELECT x FROM t",
		"SELECT * t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE f(",
		"SELECT * FROM t WHERE f(a",
		"SELECT * FROM t WHERE f(a) <",
		"SELECT * FROM t WHERE f(a) < x",
		"SELECT * FROM t WHERE a < 1 OR b < 2",
		"SELECT * FROM t WHERE a < 1 AND",
		"SELECT * FROM t WHERE f(a,) < 1",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	rng := rand.New(rand.NewSource(1))
	table := &engine.Table{Name: "images"}
	for i := 0; i < 1000; i++ {
		table.Rows = append(table.Rows, engine.Row{
			rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100,
		})
	}
	if err := db.AddTable(table, "size", "snow", "sim"); err != nil {
		t.Fatal(err)
	}
	model, err := core.NewMLQ(quadtree.Config{
		Region:      geomtest.MustRect(geom.Point{0}, geom.Point{100}),
		MemoryLimit: 1843,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddFunc(&Func{
		Name:  "SnowCoverage",
		Arity: 1,
		Eval: func(args []float64) (float64, float64) {
			return args[0], 5 + args[0] // value = snow column; cost grows with it
		},
		Model: model,
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddFunc(&Func{
		Name:  "SimilarityDistance",
		Arity: 1,
		Eval: func(args []float64) (float64, float64) {
			return args[0], 100 // expensive constant cost
		},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRegistrationValidation(t *testing.T) {
	db := NewDB()
	if err := db.AddTable(nil); err == nil {
		t.Error("nil table accepted")
	}
	if err := db.AddTable(&engine.Table{Name: "t"}); err == nil {
		t.Error("table without columns accepted")
	}
	if err := db.AddTable(&engine.Table{Name: "t"}, "a", "A"); err == nil {
		t.Error("duplicate (case-folded) columns accepted")
	}
	if err := db.AddTable(&engine.Table{Name: "t"}, "a"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(&engine.Table{Name: "T"}, "a"); err == nil {
		t.Error("duplicate table accepted")
	}
	if err := db.AddFunc(nil); err == nil {
		t.Error("nil func accepted")
	}
	if err := db.AddFunc(&Func{Name: "f"}); err == nil {
		t.Error("func without Eval accepted")
	}
	f := func(args []float64) (float64, float64) { return 0, 0 }
	if err := db.AddFunc(&Func{Name: "f", Arity: -1, Eval: f}); err == nil {
		t.Error("negative arity accepted")
	}
	if err := db.AddFunc(&Func{Name: "f", Eval: f}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddFunc(&Func{Name: "F", Eval: f}); err == nil {
		t.Error("duplicate func accepted")
	}
}

func TestExecCorrectness(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT * FROM images WHERE SnowCoverage(snow) < 20 AND size >= 50", engine.OrderAsGiven)
	if err != nil {
		t.Fatal(err)
	}
	table := db.tables["images"]
	want := 0
	for _, row := range table.Rows {
		if row[1] < 20 && row[0] >= 50 {
			want++
		}
	}
	if len(res.Rows) != want || res.Stats.Selected != want {
		t.Fatalf("selected %d rows, want %d", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		if !(row[1] < 20 && row[0] >= 50) {
			t.Fatalf("row %v does not satisfy the query", row)
		}
	}
	if len(res.Plan) != 2 {
		t.Errorf("plan: %v", res.Plan)
	}
	if res.Stats.TotalCost <= 0 {
		t.Error("no cost recorded")
	}
}

func TestExecErrors(t *testing.T) {
	db := newTestDB(t)
	bad := []string{
		"garbage",
		"SELECT * FROM nope",
		"SELECT * FROM images WHERE missing > 1",
		"SELECT * FROM images WHERE NoSuchUDF(size) > 1",
		"SELECT * FROM images WHERE SnowCoverage(size, snow) > 1", // wrong arity
		"SELECT * FROM images WHERE SnowCoverage(missing) > 1",
	}
	for _, s := range bad {
		if _, err := db.Exec(s, engine.OrderAsGiven); err == nil {
			t.Errorf("Exec(%q) accepted", s)
		}
	}
}

func TestRankOrderingThroughSQL(t *testing.T) {
	// The intro's scenario: an expensive unselective UDF written first and
	// a cheap selective one second. Rank ordering must recover the cheap
	// plan; both plans agree on results.
	query := "SELECT * FROM images WHERE SimilarityDistance(sim) >= 0 AND SnowCoverage(snow) < 10"
	naiveDB := newTestDB(t)
	naive, err := naiveDB.Exec(query, engine.OrderAsGiven)
	if err != nil {
		t.Fatal(err)
	}
	tunedDB := newTestDB(t)
	tuned, err := tunedDB.Exec(query, engine.OrderByRank)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive.Rows) != len(tuned.Rows) {
		t.Fatalf("plans disagree: %d vs %d rows", len(naive.Rows), len(tuned.Rows))
	}
	if tuned.Stats.TotalCost >= naive.Stats.TotalCost*0.7 {
		t.Errorf("rank-ordered cost %.0f not well below naive %.0f",
			tuned.Stats.TotalCost, naive.Stats.TotalCost)
	}
	// The UDF's cost model learned the surface cost(x) = 5 + x.
	// (SnowCoverage carries the model in newTestDB.)
	f := tunedDB.funcs["snowcoverage"]
	if v, ok := f.Model.Predict(geom.Point{50}); !ok || v < 30 || v > 80 {
		t.Errorf("model prediction at 50 = %g, want ~55", v)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("select * from IMAGES where snowcoverage(SNOW) < 50", engine.OrderAsGiven)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("case-insensitive query selected nothing")
	}
}

func TestCompareOperators(t *testing.T) {
	cases := []struct {
		op   string
		l, r float64
		want bool
	}{
		{"<", 1, 2, true}, {"<=", 2, 2, true}, {">", 3, 2, true},
		{">=", 2, 3, false}, {"=", 2, 2, true}, {"!=", 2, 2, false},
	}
	for _, c := range cases {
		got, err := compare(c.l, c.op, c.r)
		if err != nil || got != c.want {
			t.Errorf("compare(%g %s %g) = %v, %v", c.l, c.op, c.r, got, err)
		}
	}
	if _, err := compare(1, "~", 2); err == nil {
		t.Error("unknown operator accepted")
	}
}
