// Package minisql is a small SQL dialect for the engine: conjunctive
// single-table SELECTs whose WHERE clause mixes UDF predicates and plain
// column comparisons — the query shape of the paper's introduction, e.g.
//
//	SELECT * FROM map
//	WHERE Contained(x, y) AND SnowCoverage(img) < 20
//
// Parsed queries compile to engine predicates; registered UDFs carry their
// MLQ cost models, so execution plans predicates by rank and feeds actual
// costs back (Fig. 1).
package minisql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokStar
	tokComma
	tokLParen
	tokRParen
	tokOp // < <= > >= = !=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits the input into tokens. SQL keywords come out as tokIdent and
// are matched case-insensitively by the parser.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '*':
			out = append(out, token{tokStar, "*", i})
			i++
		case c == ',':
			out = append(out, token{tokComma, ",", i})
			i++
		case c == '(':
			out = append(out, token{tokLParen, "(", i})
			i++
		case c == ')':
			out = append(out, token{tokRParen, ")", i})
			i++
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(input) && input[i+1] == '=' {
				op += "="
				i++
			}
			out = append(out, token{tokOp, op, i})
			i++
		case c == '=':
			out = append(out, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 >= len(input) || input[i+1] != '=' {
				return nil, fmt.Errorf("minisql: stray '!' at position %d", i)
			}
			out = append(out, token{tokOp, "!=", i})
			i += 2
		case unicode.IsDigit(c) || c == '-' || c == '.':
			start := i
			i++
			for i < len(input) && (unicode.IsDigit(rune(input[i])) || input[i] == '.' || input[i] == 'e' ||
				input[i] == 'E' || ((input[i] == '+' || input[i] == '-') && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			text := input[start:i]
			if _, err := strconv.ParseFloat(text, 64); err != nil {
				return nil, fmt.Errorf("minisql: bad number %q at position %d", text, start)
			}
			out = append(out, token{tokNumber, text, start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			out = append(out, token{tokIdent, input[start:i], start})
		default:
			return nil, fmt.Errorf("minisql: unexpected character %q at position %d", c, i)
		}
	}
	out = append(out, token{tokEOF, "", len(input)})
	return out, nil
}

// isKeyword matches an identifier token against a keyword,
// case-insensitively.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
