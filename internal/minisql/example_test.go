package minisql_test

import (
	"fmt"
	"log"

	"mlq/internal/core"
	"mlq/internal/engine"
	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/minisql"
	"mlq/internal/quadtree"
)

// Example runs a UDF-predicate query with a self-tuning cost model bound to
// the UDF, the way the paper's Figure 1 wires an optimizer.
func Example() {
	table := &engine.Table{Name: "images"}
	for i := 0; i < 100; i++ {
		table.Rows = append(table.Rows, engine.Row{float64(i), float64(i % 10)})
	}
	db := minisql.NewDB()
	if err := db.AddTable(table, "size", "quality"); err != nil {
		log.Fatal(err)
	}
	model, err := core.NewMLQ(quadtree.Config{
		Region:      geomtest.MustRect(geom.Point{0}, geom.Point{100}),
		MemoryLimit: 1843,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.AddFunc(&minisql.Func{
		Name:  "SnowCoverage",
		Arity: 1,
		Eval: func(args []float64) (float64, float64) {
			return args[0] / 2, 1 + args[0] // value, measured cost
		},
		Model: model,
	}); err != nil {
		log.Fatal(err)
	}
	res, err := db.Exec("SELECT * FROM images WHERE SnowCoverage(size) < 20 AND quality >= 5", engine.OrderByRank)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d rows\n", len(res.Rows))
	pred, _ := model.Predict(geom.Point{50})
	fmt.Printf("learned cost at size=50 is near 51: %t\n", pred > 40 && pred < 62)
	// Output:
	// selected 20 rows
	// learned cost at size=50 is near 51: true
}
