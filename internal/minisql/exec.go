package minisql

import (
	"fmt"
	"strings"

	"mlq/internal/core"
	"mlq/internal/engine"
	"mlq/internal/geom"
)

// Func is a registered UDF: a scalar function over numeric arguments whose
// execution reports its cost, optionally carrying self-tuning cost and
// selectivity models (fed back by the executor on every call).
type Func struct {
	// Name is the SQL-visible function name (case-insensitive).
	Name string
	// Arity is the required argument count.
	Arity int
	// Eval executes the UDF, returning its value and its measured
	// execution cost.
	Eval func(args []float64) (value, cost float64)
	// Model predicts execution cost at the argument point; optional.
	Model core.Model
	// SelModel predicts the enclosing predicate's selectivity at the
	// argument point; optional.
	SelModel core.Model
}

// DB binds tables and UDFs for query execution.
type DB struct {
	tables  map[string]*engine.Table
	columns map[string]map[string]int // table -> column name -> index
	funcs   map[string]*Func
}

// NewDB returns an empty minisql database.
func NewDB() *DB {
	return &DB{
		tables:  make(map[string]*engine.Table),
		columns: make(map[string]map[string]int),
		funcs:   make(map[string]*Func),
	}
}

// AddTable registers a table with named columns (index i names row[i]).
func (db *DB) AddTable(t *engine.Table, columns ...string) error {
	if t == nil || t.Name == "" {
		return fmt.Errorf("minisql: table must be non-nil and named")
	}
	if len(columns) == 0 {
		return fmt.Errorf("minisql: table %s needs at least one column name", t.Name)
	}
	key := strings.ToLower(t.Name)
	if _, dup := db.tables[key]; dup {
		return fmt.Errorf("minisql: duplicate table %s", t.Name)
	}
	cols := make(map[string]int, len(columns))
	for i, c := range columns {
		lc := strings.ToLower(c)
		if _, dup := cols[lc]; dup {
			return fmt.Errorf("minisql: duplicate column %s in table %s", c, t.Name)
		}
		cols[lc] = i
	}
	db.tables[key] = t
	db.columns[key] = cols
	return nil
}

// AddFunc registers a UDF.
func (db *DB) AddFunc(f *Func) error {
	if f == nil || f.Name == "" || f.Eval == nil {
		return fmt.Errorf("minisql: func must be named and have Eval")
	}
	if f.Arity < 0 {
		return fmt.Errorf("minisql: %s: negative arity", f.Name)
	}
	key := strings.ToLower(f.Name)
	if _, dup := db.funcs[key]; dup {
		return fmt.Errorf("minisql: duplicate function %s", f.Name)
	}
	db.funcs[key] = f
	return nil
}

// compile turns a parsed predicate into an engine predicate over the table.
func (db *DB) compile(table string, p Pred) (*engine.Predicate, error) {
	cols := db.columns[table]
	if p.UDF == "" {
		idx, ok := cols[strings.ToLower(p.Col)]
		if !ok {
			return nil, fmt.Errorf("minisql: unknown column %q in table %s", p.Col, table)
		}
		op, value := p.Op, p.Value
		return &engine.Predicate{
			Name: p.String(),
			Exec: func(row engine.Row) (bool, float64) {
				ok, _ := compare(row[idx], op, value)
				return ok, 0 // plain comparisons are free
			},
		}, nil
	}
	f, ok := db.funcs[strings.ToLower(p.UDF)]
	if !ok {
		return nil, fmt.Errorf("minisql: unknown function %q", p.UDF)
	}
	if len(p.Args) != f.Arity {
		return nil, fmt.Errorf("minisql: %s takes %d argument(s), got %d", f.Name, f.Arity, len(p.Args))
	}
	argIdx := make([]int, len(p.Args))
	for i, a := range p.Args {
		idx, ok := cols[strings.ToLower(a)]
		if !ok {
			return nil, fmt.Errorf("minisql: unknown column %q in table %s", a, table)
		}
		argIdx[i] = idx
	}
	op, value := p.Op, p.Value
	argsOf := func(row engine.Row) []float64 {
		args := make([]float64, len(argIdx))
		for i, idx := range argIdx {
			args[i] = row[idx]
		}
		return args
	}
	return &engine.Predicate{
		Name: p.String(),
		Exec: func(row engine.Row) (bool, float64) {
			v, cost := f.Eval(argsOf(row))
			ok, _ := compare(v, op, value)
			return ok, cost
		},
		Point:    func(row engine.Row) geom.Point { return geom.Point(argsOf(row)) },
		Model:    f.Model,
		SelModel: f.SelModel,
	}, nil
}

// Result is a query execution result.
type Result struct {
	// Rows are the selected rows (aliases into the table; do not mutate).
	Rows []engine.Row
	// Stats is the engine's execution summary.
	Stats engine.Result
	// Plan lists the predicates in the order the optimizer would run
	// them for an average row (informational; rank ordering is per-row).
	Plan []string
}

// Exec parses and runs a query with rank-ordered UDF predicates and
// cost-model feedback. policy selects naive or rank ordering.
func (db *DB) Exec(sql string, policy engine.OrderPolicy) (*Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	key := strings.ToLower(q.Table)
	table, ok := db.tables[key]
	if !ok {
		return nil, fmt.Errorf("minisql: unknown table %q", q.Table)
	}
	preds := make([]*engine.Predicate, len(q.Preds))
	for i, p := range q.Preds {
		if preds[i], err = db.compile(key, p); err != nil {
			return nil, err
		}
	}

	res, err := engine.ExecuteQuery(table, preds, policy)
	if err != nil {
		return nil, err
	}
	plan := make([]string, len(preds))
	for i, p := range preds {
		plan[i] = p.Name
	}
	return &Result{Rows: res.Rows, Stats: res, Plan: plan}, nil
}
