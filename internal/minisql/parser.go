package minisql

import (
	"fmt"
	"strconv"
)

// Query is a parsed conjunctive SELECT.
type Query struct {
	// Table is the FROM table name.
	Table string
	// Preds are the AND-ed WHERE predicates in source order.
	Preds []Pred
}

// Pred is one predicate: either a UDF call compared to a constant
// (UDF != "") or a plain column comparison.
type Pred struct {
	// UDF is the called function's name, empty for a plain comparison.
	UDF string
	// Args are the column names passed to the UDF.
	Args []string
	// Col is the compared column for a plain comparison.
	Col string
	// Op is one of < <= > >= = !=.
	Op string
	// Value is the right-hand constant.
	Value float64
}

// String renders the predicate back to SQL-ish text.
func (p Pred) String() string {
	lhs := p.Col
	if p.UDF != "" {
		lhs = p.UDF + "("
		for i, a := range p.Args {
			if i > 0 {
				lhs += ", "
			}
			lhs += a
		}
		lhs += ")"
	}
	return fmt.Sprintf("%s %s %g", lhs, p.Op, p.Value)
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expectKeyword(kw string) error {
	if !p.cur().isKeyword(kw) {
		return fmt.Errorf("minisql: expected %s at position %d, got %q", kw, p.cur().pos, p.cur().text)
	}
	p.pos++
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.cur().kind != kind {
		return token{}, fmt.Errorf("minisql: expected %s at position %d, got %q", what, p.cur().pos, p.cur().text)
	}
	return p.next(), nil
}

// Parse parses "SELECT * FROM <table> [WHERE <pred> [AND <pred>]...]".
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokStar, "'*'"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "table name")
	if err != nil {
		return nil, err
	}
	q := &Query{Table: tbl.text}
	if p.cur().kind == tokEOF {
		return q, nil
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	for {
		pred, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		q.Preds = append(q.Preds, pred)
		if p.cur().kind == tokEOF {
			return q, nil
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
	}
}

// parsePred parses "ident(...) op number" or "ident op number".
func (p *parser) parsePred() (Pred, error) {
	name, err := p.expect(tokIdent, "column or UDF name")
	if err != nil {
		return Pred{}, err
	}
	var pred Pred
	if p.cur().kind == tokLParen {
		p.next()
		pred.UDF = name.text
		for {
			if p.cur().kind == tokRParen && len(pred.Args) == 0 {
				break // zero-arg UDF
			}
			arg, err := p.expect(tokIdent, "column name")
			if err != nil {
				return Pred{}, err
			}
			pred.Args = append(pred.Args, arg.text)
			if p.cur().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return Pred{}, err
		}
	} else {
		pred.Col = name.text
	}
	op, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return Pred{}, err
	}
	pred.Op = op.text
	num, err := p.expect(tokNumber, "numeric constant")
	if err != nil {
		return Pred{}, err
	}
	pred.Value, err = strconv.ParseFloat(num.text, 64)
	if err != nil {
		return Pred{}, err
	}
	return pred, nil
}

// compare applies a parsed operator.
func compare(lhs float64, op string, rhs float64) (bool, error) {
	switch op {
	case "<":
		return lhs < rhs, nil
	case "<=":
		return lhs <= rhs, nil
	case ">":
		return lhs > rhs, nil
	case ">=":
		return lhs >= rhs, nil
	case "=":
		//lint:ignore floatguard SQL = is an exact comparison by language semantics
		return lhs == rhs, nil
	case "!=":
		//lint:ignore floatguard SQL != is an exact comparison by language semantics
		return lhs != rhs, nil
	default:
		return false, fmt.Errorf("minisql: unknown operator %q", op)
	}
}
