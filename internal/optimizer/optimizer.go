// Package optimizer implements the query-optimization decision the paper's
// cost models exist to serve (§1): ordering expensive UDF predicates in a
// conjunctive WHERE clause. It uses the classic rank-ordering result of
// predicate migration (Hellerstein & Stonebraker): evaluating predicates in
// ascending rank = (selectivity − 1) / cost-per-tuple minimizes the expected
// total evaluation cost per tuple.
package optimizer

import (
	"fmt"
	"sort"
)

// Candidate describes one UDF predicate for ordering purposes.
type Candidate struct {
	// Cost is the predicted execution cost per tuple (from a core.Model).
	Cost float64
	// Selectivity is the predicted fraction of tuples that pass, in [0,1].
	Selectivity float64
}

// Rank returns the predicate's rank metric (selectivity − 1) / cost.
// Cheaper and more selective predicates have more negative ranks and should
// run earlier. A non-positive cost is treated as a tiny epsilon so free
// predicates sort first without dividing by zero.
func (c Candidate) Rank() float64 {
	cost := c.Cost
	if cost <= 0 {
		cost = 1e-12
	}
	return (c.Selectivity - 1) / cost
}

// Order returns the indices of cands in optimal evaluation order
// (ascending rank).
func Order(cands []Candidate) []int {
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return cands[idx[a]].Rank() < cands[idx[b]].Rank()
	})
	return idx
}

// PlanCost returns the expected per-tuple cost of evaluating the predicates
// in the given order with short-circuit AND semantics: each predicate's cost
// is paid only by the tuples that survived all earlier predicates.
func PlanCost(cands []Candidate, order []int) (float64, error) {
	if len(order) != len(cands) {
		return 0, fmt.Errorf("optimizer: order has %d entries for %d candidates", len(order), len(cands))
	}
	seen := make([]bool, len(cands))
	survive := 1.0
	var total float64
	for _, i := range order {
		if i < 0 || i >= len(cands) || seen[i] {
			return 0, fmt.Errorf("optimizer: order is not a permutation (index %d)", i)
		}
		seen[i] = true
		total += survive * cands[i].Cost
		s := cands[i].Selectivity
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		survive *= s
	}
	return total, nil
}
