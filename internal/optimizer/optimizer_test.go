package optimizer

import (
	"math"
	"math/rand"
	"testing"
)

func TestRank(t *testing.T) {
	// Selective & cheap -> very negative; unselective & expensive -> near 0.
	a := Candidate{Cost: 1, Selectivity: 0.1}
	b := Candidate{Cost: 100, Selectivity: 0.9}
	if a.Rank() >= b.Rank() {
		t.Errorf("rank(a)=%g should be below rank(b)=%g", a.Rank(), b.Rank())
	}
	// Zero cost must not divide by zero and sorts first.
	free := Candidate{Cost: 0, Selectivity: 0.5}
	if math.IsInf(free.Rank(), 0) == false && free.Rank() > a.Rank() {
		t.Errorf("free predicate rank %g should not sort after %g", free.Rank(), a.Rank())
	}
}

func TestOrderSimple(t *testing.T) {
	cands := []Candidate{
		{Cost: 100, Selectivity: 0.9}, // expensive, unselective: last
		{Cost: 1, Selectivity: 0.1},   // cheap, selective: first
		{Cost: 10, Selectivity: 0.5},
	}
	order := Order(cands)
	if order[0] != 1 || order[2] != 0 {
		t.Errorf("order = %v, want [1 2 0]", order)
	}
}

func TestPlanCostShortCircuit(t *testing.T) {
	cands := []Candidate{
		{Cost: 10, Selectivity: 0.5},
		{Cost: 20, Selectivity: 0.1},
	}
	// Order [0,1]: 10 + 0.5*20 = 20. Order [1,0]: 20 + 0.1*10 = 21.
	c01, err := PlanCost(cands, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	c10, _ := PlanCost(cands, []int{1, 0})
	if c01 != 20 || c10 != 21 {
		t.Errorf("plan costs %g, %g; want 20, 21", c01, c10)
	}
}

func TestPlanCostValidation(t *testing.T) {
	cands := []Candidate{{Cost: 1, Selectivity: 0.5}}
	if _, err := PlanCost(cands, []int{0, 0}); err == nil {
		t.Error("wrong-length order accepted")
	}
	if _, err := PlanCost(cands, []int{5}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := PlanCost([]Candidate{{Cost: 1}, {Cost: 2}}, []int{0, 0}); err == nil {
		t.Error("duplicate index accepted")
	}
}

// permutations generates all permutations of 0..n-1.
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, p := range permutations(n - 1) {
		for pos := 0; pos <= len(p); pos++ {
			q := make([]int, 0, n)
			q = append(q, p[:pos]...)
			q = append(q, n-1)
			q = append(q, p[pos:]...)
			out = append(out, q)
		}
	}
	return out
}

// Property: rank ordering is optimal — for random candidate sets, no
// permutation has lower plan cost than the rank order (the predicate
// migration theorem, verified exhaustively for small n).
func TestRankOrderIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		cands := make([]Candidate, n)
		for i := range cands {
			cands[i] = Candidate{
				Cost:        0.1 + rng.Float64()*100,
				Selectivity: rng.Float64(),
			}
		}
		rankCost, err := PlanCost(cands, Order(cands))
		if err != nil {
			t.Fatal(err)
		}
		for _, perm := range permutations(n) {
			c, err := PlanCost(cands, perm)
			if err != nil {
				t.Fatal(err)
			}
			if c < rankCost-1e-9 {
				t.Fatalf("trial %d: permutation %v costs %g < rank order %g (cands %+v)",
					trial, perm, c, rankCost, cands)
			}
		}
	}
}

func TestOrderEmpty(t *testing.T) {
	if got := Order(nil); len(got) != 0 {
		t.Errorf("Order(nil) = %v", got)
	}
	if c, err := PlanCost(nil, nil); err != nil || c != 0 {
		t.Errorf("PlanCost(nil) = %g, %v", c, err)
	}
}
