// Package geom provides the multi-dimensional geometry primitives shared by
// the MLQ quadtree, the histogram baselines, and the workload generators:
// points, axis-aligned hyper-rectangles ("blocks"), and the child-index
// arithmetic that recursively partitions a block into 2^d equal sub-blocks.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a location in a d-dimensional data space. Each coordinate is one
// model variable of a UDF cost model.
type Point []float64

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// String renders the point as "(x1, x2, ...)" with compact precision.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Rect is an axis-aligned hyper-rectangle [Lo, Hi) in d dimensions. It is the
// region ("block") indexed by one quadtree node. The half-open convention
// makes the 2^d children of a block an exact tiling of it.
type Rect struct {
	Lo, Hi Point
}

// NewRect returns a rectangle spanning [lo, hi) and validates that the bounds
// are well formed.
func NewRect(lo, hi Point) (Rect, error) {
	if len(lo) != len(hi) {
		return Rect{}, fmt.Errorf("geom: bound dimensionality mismatch: %d vs %d", len(lo), len(hi))
	}
	if len(lo) == 0 {
		return Rect{}, fmt.Errorf("geom: zero-dimensional rectangle")
	}
	for i := range lo {
		if !(lo[i] < hi[i]) { // also rejects NaN
			return Rect{}, fmt.Errorf("geom: dimension %d: lo=%g must be < hi=%g", i, lo[i], hi[i])
		}
		if math.IsInf(lo[i], 0) || math.IsInf(hi[i], 0) || math.IsInf(hi[i]-lo[i], 0) {
			// Infinite spans break midpoint subdivision (Inf/2 - Inf = NaN).
			return Rect{}, fmt.Errorf("geom: dimension %d: bounds [%g, %g) must have a finite span", i, lo[i], hi[i])
		}
	}
	return Rect{Lo: lo.Clone(), Hi: hi.Clone()}, nil
}

// UnitCube returns the rectangle [0,1)^d.
func UnitCube(d int) Rect {
	lo := make(Point, d)
	hi := make(Point, d)
	for i := range hi {
		hi[i] = 1
	}
	return Rect{Lo: lo, Hi: hi}
}

// Dims returns the dimensionality of the rectangle.
func (r Rect) Dims() int { return len(r.Lo) }

// Clone returns an independent copy of r.
func (r Rect) Clone() Rect { return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()} }

// Contains reports whether p lies inside [Lo, Hi). Points exactly on an upper
// bound of the root region are treated as inside by Clamp before insertion,
// so Contains is strict here.
func (r Rect) Contains(p Point) bool {
	if len(p) != len(r.Lo) {
		return false
	}
	for i, v := range p {
		if v < r.Lo[i] || v >= r.Hi[i] {
			return false
		}
	}
	return true
}

// Clamp returns a copy of p moved to the nearest representable location
// strictly inside the rectangle. Coordinates at or beyond Hi are pulled just
// below it; coordinates below Lo are raised to Lo. This lets callers insert
// boundary points (e.g. an argument at its documented maximum) without
// special-casing the half-open convention.
func (r Rect) Clamp(p Point) Point {
	q := p.Clone()
	for i := range q {
		if q[i] < r.Lo[i] {
			q[i] = r.Lo[i]
		}
		if q[i] >= r.Hi[i] {
			q[i] = math.Nextafter(r.Hi[i], math.Inf(-1))
			if q[i] < r.Lo[i] {
				q[i] = r.Lo[i]
			}
		}
	}
	return q
}

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for i := range c {
		c[i] = r.Lo[i] + (r.Hi[i]-r.Lo[i])/2
	}
	return c
}

// Diagonal returns the Euclidean distance between the two extreme corners.
func (r Rect) Diagonal() float64 {
	var s float64
	for i := range r.Lo {
		d := r.Hi[i] - r.Lo[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// ChildIndex returns which of the 2^d children of this block the point maps
// into. Bit i of the index is set when p's i-th coordinate lies in the upper
// half of the block along dimension i.
func (r Rect) ChildIndex(p Point) uint32 {
	var idx uint32
	for i, v := range p {
		mid := r.Lo[i] + (r.Hi[i]-r.Lo[i])/2
		if v >= mid {
			idx |= 1 << uint(i)
		}
	}
	return idx
}

// Child returns the sub-block with the given index produced by halving the
// block along every dimension.
func (r Rect) Child(idx uint32) Rect {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		mid := r.Lo[i] + (r.Hi[i]-r.Lo[i])/2
		if idx&(1<<uint(i)) != 0 {
			lo[i], hi[i] = mid, r.Hi[i]
		} else {
			lo[i], hi[i] = r.Lo[i], mid
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// String renders the rectangle as "[lo .. hi)".
func (r Rect) String() string {
	return fmt.Sprintf("[%v .. %v)", r.Lo, r.Hi)
}

// Dist returns the Euclidean distance between two points of equal dimension.
func Dist(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
