// Package geomtest provides test-support helpers for building geometry
// values from literals without error plumbing. It is imported only by
// _test.go files; library and command code must use geom.NewRect and handle
// the error (the nopanic analyzer pins this: geomtest is the one allowlisted
// panic site besides the fault injector).
package geomtest

import "mlq/internal/geom"

// MustRect is geom.NewRect that panics on malformed bounds. Test fixtures
// use compile-time-constant bounds, so a panic here is a bug in the test
// itself, never a runtime condition.
func MustRect(lo, hi geom.Point) geom.Rect {
	r, err := geom.NewRect(lo, hi)
	if err != nil {
		panic(err)
	}
	return r
}
