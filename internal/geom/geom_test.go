package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectValidation(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi Point
		ok     bool
	}{
		{"valid 1d", Point{0}, Point{1}, true},
		{"valid 3d", Point{0, -5, 2}, Point{1, 5, 3}, true},
		{"dim mismatch", Point{0, 0}, Point{1}, false},
		{"empty", Point{}, Point{}, false},
		{"inverted", Point{1}, Point{0}, false},
		{"degenerate", Point{1}, Point{1}, false},
		{"nan lo", Point{math.NaN()}, Point{1}, false},
		{"nan hi", Point{0}, Point{math.NaN()}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewRect(c.lo, c.hi)
			if (err == nil) != c.ok {
				t.Errorf("NewRect(%v, %v) err=%v, want ok=%v", c.lo, c.hi, err, c.ok)
			}
		})
	}
}

// MustRect is a fixture helper: geomtest.MustRect cannot be used here
// because this is an in-package test (geomtest imports geom).
func MustRect(lo, hi Point) Rect {
	r, err := NewRect(lo, hi)
	if err != nil {
		panic(err)
	}
	return r
}

func TestMustRectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRect on inverted bounds did not panic")
		}
	}()
	MustRect(Point{1}, Point{0})
}

func TestNewRectClonesBounds(t *testing.T) {
	lo, hi := Point{0, 0}, Point{1, 1}
	r, err := NewRect(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	lo[0] = 99
	if r.Lo[0] != 0 {
		t.Error("NewRect aliases caller's lo slice")
	}
}

func TestUnitCube(t *testing.T) {
	r := UnitCube(3)
	if r.Dims() != 3 {
		t.Fatalf("Dims = %d, want 3", r.Dims())
	}
	if !r.Contains(Point{0, 0, 0}) {
		t.Error("unit cube should contain origin")
	}
	if r.Contains(Point{1, 0, 0}) {
		t.Error("unit cube is half-open; must exclude upper bound")
	}
}

func TestContainsDimensionMismatch(t *testing.T) {
	r := UnitCube(2)
	if r.Contains(Point{0.5}) {
		t.Error("Contains must reject points of wrong dimensionality")
	}
}

func TestClamp(t *testing.T) {
	r := MustRect(Point{0, 0}, Point{10, 10})
	p := r.Clamp(Point{-1, 10})
	if !r.Contains(p) {
		t.Fatalf("Clamp result %v not contained in %v", p, r)
	}
	if p[0] != 0 {
		t.Errorf("low clamp: got %g, want 0", p[0])
	}
	if p[1] >= 10 || p[1] < 9.999 {
		t.Errorf("high clamp: got %g, want just below 10", p[1])
	}
	// Interior points are unchanged.
	q := r.Clamp(Point{5, 5})
	if q[0] != 5 || q[1] != 5 {
		t.Errorf("interior point moved by Clamp: %v", q)
	}
}

func TestCenterAndDiagonal(t *testing.T) {
	r := MustRect(Point{0, 0}, Point{4, 3})
	c := r.Center()
	if c[0] != 2 || c[1] != 1.5 {
		t.Errorf("Center = %v, want (2, 1.5)", c)
	}
	if got := r.Diagonal(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Diagonal = %g, want 5", got)
	}
}

func TestChildIndexCorners(t *testing.T) {
	r := MustRect(Point{0, 0}, Point{2, 2})
	cases := []struct {
		p    Point
		want uint32
	}{
		{Point{0.5, 0.5}, 0},
		{Point{1.5, 0.5}, 1},
		{Point{0.5, 1.5}, 2},
		{Point{1.5, 1.5}, 3},
		{Point{1, 1}, 3}, // midpoints belong to the upper half
	}
	for _, c := range cases {
		if got := r.ChildIndex(c.p); got != c.want {
			t.Errorf("ChildIndex(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

// Property: for any point inside a block, the child block selected by
// ChildIndex contains the point, and no other child does.
func TestChildPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		d := 1 + rng.Intn(5)
		lo := make(Point, d)
		hi := make(Point, d)
		for i := 0; i < d; i++ {
			lo[i] = rng.Float64()*20 - 10
			hi[i] = lo[i] + rng.Float64()*10 + 0.001
		}
		r := MustRect(lo, hi)
		p := make(Point, d)
		for i := 0; i < d; i++ {
			p[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])*0.999999
		}
		idx := r.ChildIndex(p)
		owners := 0
		for c := uint32(0); c < 1<<uint(d); c++ {
			child := r.Child(c)
			if child.Contains(p) {
				owners++
				if c != idx {
					t.Fatalf("point %v owned by child %d but ChildIndex says %d", p, c, idx)
				}
			}
		}
		if owners != 1 {
			t.Fatalf("point %v contained in %d children, want exactly 1", p, owners)
		}
	}
}

// Property: children tile the parent — their measure sums to the parent's
// measure and they are pairwise disjoint at sampled points.
func TestChildrenTileParent(t *testing.T) {
	r := MustRect(Point{-3, 2, 0}, Point{5, 6, 1})
	volume := func(x Rect) float64 {
		v := 1.0
		for i := range x.Lo {
			v *= x.Hi[i] - x.Lo[i]
		}
		return v
	}
	var sum float64
	for c := uint32(0); c < 8; c++ {
		sum += volume(r.Child(c))
	}
	if math.Abs(sum-volume(r)) > 1e-9 {
		t.Errorf("child volumes sum to %g, parent volume %g", sum, volume(r))
	}
}

func TestDistSymmetry(t *testing.T) {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e6)
	}
	f := func(ax, ay, bx, by float64) bool {
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		return math.Abs(Dist(a, b)-Dist(b, a)) < 1e-9 && Dist(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistKnown(t *testing.T) {
	if got := Dist(Point{0, 0}, Point{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %g, want 5", got)
	}
}

func TestPointString(t *testing.T) {
	p := Point{1, 2.5}
	if got := p.String(); got != "(1, 2.5)" {
		t.Errorf("String = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 9
	if p[0] != 1 {
		t.Error("Clone shares backing array")
	}
	r := UnitCube(2)
	rc := r.Clone()
	rc.Lo[0] = 9
	if r.Lo[0] != 0 {
		t.Error("Rect.Clone shares backing array")
	}
}

func TestNewRectRejectsInfiniteSpans(t *testing.T) {
	cases := [][2]Point{
		{{math.Inf(-1)}, {0}},
		{{0}, {math.Inf(1)}},
		{{math.Inf(-1)}, {math.Inf(1)}},
		{{-math.MaxFloat64}, {math.MaxFloat64}}, // span overflows to +Inf
	}
	for i, c := range cases {
		if _, err := NewRect(c[0], c[1]); err == nil {
			t.Errorf("case %d: infinite-span bounds accepted", i)
		}
	}
}
