package buffercache

import (
	"testing"

	"mlq/internal/pagestore"
)

func mustGet(t *testing.T, c *Cache, id pagestore.PageID) {
	t.Helper()
	if _, err := c.Get(id); err != nil {
		t.Fatal(err)
	}
}

func TestResizeValidation(t *testing.T) {
	c, err := New(newStore(t, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Resize(0); err == nil {
		t.Error("zero-page Resize accepted")
	}
	if err := c.Resize(2); err != nil {
		t.Errorf("Resize to current capacity: %v", err)
	}
	if c.Resizes() != 0 {
		t.Error("Resize to current capacity counted as a change")
	}
}

func TestResizeShrinkEvictsLRUOrder(t *testing.T) {
	c, err := New(newStore(t, 6), 4)
	if err != nil {
		t.Fatal(err)
	}
	for id := pagestore.PageID(0); id < 4; id++ {
		mustGet(t, c, id)
	}
	// Touch 0 so recency order (most to least recent) is 0, 3, 2, 1.
	mustGet(t, c, 0)
	if err := c.Resize(2); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Capacity() != 2 {
		t.Fatalf("len=%d cap=%d after shrink, want 2,2", c.Len(), c.Capacity())
	}
	if c.Evictions() != 2 {
		t.Errorf("evictions = %d, want 2", c.Evictions())
	}
	hits, misses := c.Hits(), c.Misses()
	// The two most recently used pages survive...
	mustGet(t, c, 0)
	mustGet(t, c, 3)
	if c.Hits() != hits+2 {
		t.Error("most recently used pages did not survive the shrink")
	}
	// ...and the least recently used ones were the victims.
	mustGet(t, c, 1)
	if c.Misses() != misses+1 {
		t.Error("least recently used page survived a shrink that should evict it")
	}
	if c.Resizes() != 1 {
		t.Errorf("resizes = %d, want 1", c.Resizes())
	}
}

func TestResizeGrowKeepsContents(t *testing.T) {
	c, err := New(newStore(t, 8), 2)
	if err != nil {
		t.Fatal(err)
	}
	mustGet(t, c, 0)
	mustGet(t, c, 1)
	if err := c.Resize(6); err != nil {
		t.Fatal(err)
	}
	if c.Evictions() != 0 || c.Len() != 2 {
		t.Error("grow touched cache contents")
	}
	// The new headroom fills without evicting.
	for id := pagestore.PageID(2); id < 6; id++ {
		mustGet(t, c, id)
	}
	if c.Evictions() != 0 || c.Len() != 6 {
		t.Errorf("evictions=%d len=%d after filling grown cache, want 0,6", c.Evictions(), c.Len())
	}
	mustGet(t, c, 0)
	if c.Hits() != 1 {
		t.Errorf("hits = %d, want 1 (page 0 survived the grow)", c.Hits())
	}
}

func TestResizeExactAccountingAcrossTransition(t *testing.T) {
	c, err := New(newStore(t, 6), 3)
	if err != nil {
		t.Fatal(err)
	}
	// 3 misses, 1 hit before the transition.
	mustGet(t, c, 0)
	mustGet(t, c, 1)
	mustGet(t, c, 2)
	mustGet(t, c, 2)
	if err := c.Resize(1); err != nil {
		t.Fatal(err)
	}
	// Post-shrink: 2 survives; 0 and 1 are gone.
	mustGet(t, c, 2) // hit
	mustGet(t, c, 0) // miss (evicts 2)
	mustGet(t, c, 2) // miss
	if c.Hits() != 2 || c.Misses() != 5 {
		t.Errorf("hits=%d misses=%d across transition, want 2,5", c.Hits(), c.Misses())
	}
	if got := c.HitRatio(); got != 2.0/7.0 {
		t.Errorf("hit ratio %g, want 2/7", got)
	}
}

func TestCapacityBytes(t *testing.T) {
	s, err := pagestore.New(512)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		id := s.Alloc()
		if err := s.Write(id, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := New(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.CapacityBytes() != 8*512 {
		t.Errorf("CapacityBytes = %d, want %d", c.CapacityBytes(), 8*512)
	}
	if err := c.Resize(3); err != nil {
		t.Fatal(err)
	}
	if c.CapacityBytes() != 3*512 {
		t.Errorf("CapacityBytes after Resize = %d, want %d", c.CapacityBytes(), 3*512)
	}
}

func TestGhostHits(t *testing.T) {
	c, err := New(newStore(t, 6), 2)
	if err != nil {
		t.Fatal(err)
	}
	mustGet(t, c, 0)
	mustGet(t, c, 1)
	mustGet(t, c, 2) // evicts 0 into the ghost list
	if c.GhostHits() != 0 {
		t.Error("ghost hit counted before any re-reference")
	}
	mustGet(t, c, 0) // miss on a freshly evicted page: the capacity signal
	if c.GhostHits() != 1 {
		t.Errorf("ghost hits = %d, want 1", c.GhostHits())
	}
	// The entry is consumed: an immediate repeat is a plain hit.
	mustGet(t, c, 0)
	if c.GhostHits() != 1 {
		t.Error("plain hit moved the ghost counter")
	}
	// A long scan pushes old evictions out of the bounded ghost window, so
	// a far-future miss on a long-gone page does not count: page 1 was
	// evicted four misses ago against a 2-entry window.
	for id := pagestore.PageID(2); id < 6; id++ {
		mustGet(t, c, id)
	}
	mustGet(t, c, 1)
	if c.GhostHits() != 1 {
		t.Errorf("ghost hits = %d after scan, want still 1 (window is bounded)", c.GhostHits())
	}
}

func TestGhostThrashSignal(t *testing.T) {
	// Ghost bookkeeping must not perturb replacement: a 2-page LRU scanned
	// cyclically over 4 pages never hits, exactly as without a ghost list.
	c, err := New(newStore(t, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for id := pagestore.PageID(0); id < 4; id++ {
			mustGet(t, c, id)
		}
	}
	if c.Hits() != 0 || c.Misses() != 12 {
		t.Errorf("hits=%d misses=%d, want 0,12 (pure LRU thrash)", c.Hits(), c.Misses())
	}
	// Meanwhile the thrash shows up loudly in the capacity signal: from the
	// second round on, every page re-read was evicted within the 2-entry
	// ghost window (4 ghost hits per round).
	if c.GhostHits() != 8 {
		t.Errorf("ghost hits = %d, want 8", c.GhostHits())
	}
}
