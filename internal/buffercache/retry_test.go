package buffercache

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mlq/internal/pagestore"
)

// retryFixture builds a cache over a small store with a controllable
// per-read fault script: failures[i] fails the i-th physical read attempt.
func retryFixture(t *testing.T, capacity int) (*Cache, *pagestore.Store) {
	t.Helper()
	store, err := pagestore.New(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		id := store.Alloc()
		if err := store.Write(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := New(store, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return c, store
}

// failN makes the next n physical reads fail, then heal.
func failN(store *pagestore.Store, n int) *int {
	left := n
	store.SetReadFault(func(pagestore.PageID) error {
		if left > 0 {
			left--
			return fmt.Errorf("transient fault")
		}
		return nil
	})
	return &left
}

func TestRetryAbsorbsTransientFault(t *testing.T) {
	c, store := retryFixture(t, 4)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, UnitLatency: time.Millisecond})
	failN(store, 2)
	data, err := c.Get(0)
	if err != nil {
		t.Fatalf("retries did not absorb a 2-failure fault: %v", err)
	}
	if data[0] != 0 {
		t.Fatalf("wrong page contents %v", data)
	}
	st := c.RetryStats()
	if st.Retries != 2 || st.Exhausted != 0 {
		t.Fatalf("stats %+v, want 2 retries, 0 exhausted", st)
	}
	// Backoff 1ms then 2ms: 3ms modeled latency = 3 IO cost units charged.
	if st.Latency != 3*time.Millisecond {
		t.Fatalf("latency %v, want 3ms", st.Latency)
	}
	if c.ChargedUnits() != 3 {
		t.Fatalf("charged %g units, want 3", c.ChargedUnits())
	}
	if c.Faults() != 0 {
		t.Fatalf("a retried-and-recovered lookup counted as a fault")
	}
}

func TestRetryExhaustion(t *testing.T) {
	c, store := retryFixture(t, 4)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, UnitLatency: time.Millisecond})
	failN(store, 99)
	if _, err := c.Get(0); err == nil {
		t.Fatal("permanently failing read succeeded")
	}
	st := c.RetryStats()
	if st.Retries != 2 || st.Exhausted != 1 {
		t.Fatalf("stats %+v, want 2 retries, 1 exhausted", st)
	}
	if c.Faults() != 1 {
		t.Fatalf("faults %d, want 1", c.Faults())
	}
	// The failed lookup still charged its backoff: the client really waited.
	if c.ChargedUnits() != 3 {
		t.Fatalf("charged %g units, want 3", c.ChargedUnits())
	}
}

func TestRetryDeadlineStopsBackoff(t *testing.T) {
	c, store := retryFixture(t, 4)
	c.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 10, BaseDelay: time.Millisecond, Multiplier: 2,
		Deadline: 5 * time.Millisecond, UnitLatency: time.Millisecond,
	})
	failN(store, 99)
	_, err := c.Get(0)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err %v, want ErrDeadlineExceeded", err)
	}
	st := c.RetryStats()
	// Backoffs 1+2=3ms fit the 5ms budget; the 4ms third backoff would not.
	if st.Retries != 2 || st.DeadlineExceeded != 1 || st.Exhausted != 0 {
		t.Fatalf("stats %+v, want 2 retries, 1 deadline, 0 exhausted", st)
	}
	if st.Latency != 3*time.Millisecond {
		t.Fatalf("latency %v, want 3ms (the waited backoff)", st.Latency)
	}
}

func TestInjectedLatencyCharged(t *testing.T) {
	c, _ := retryFixture(t, 4)
	c.SetRetryPolicy(RetryPolicy{UnitLatency: time.Millisecond})
	slow := 5 * time.Millisecond
	c.SetReadLatency(func(pagestore.PageID) time.Duration { return slow })
	meter := c.NewMeter()
	if _, err := c.Get(0); err != nil {
		t.Fatal(err)
	}
	// One miss + 5 units of injected latency.
	if got := meter.Cost(); got != 6 {
		t.Fatalf("Cost %g, want 6 (1 read + 5 latency units)", got)
	}
	if meter.Delta() != 1 {
		t.Fatalf("Delta %d, want 1", meter.Delta())
	}
	// A hit performs no physical read: no latency consulted, no charge.
	meter = c.NewMeter()
	if _, err := c.Get(0); err != nil {
		t.Fatal(err)
	}
	if got := meter.Cost(); got != 0 {
		t.Fatalf("hit charged %g, want 0", got)
	}
	if st := c.RetryStats(); st.SlowReads != 1 {
		t.Fatalf("slow reads %d, want 1", st.SlowReads)
	}
}

func TestStallBeyondDeadlineFailsLookup(t *testing.T) {
	c, _ := retryFixture(t, 4)
	c.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond,
		Deadline: 10 * time.Millisecond, UnitLatency: time.Millisecond,
	})
	c.SetReadLatency(func(pagestore.PageID) time.Duration { return time.Second })
	meter := c.NewMeter()
	_, err := c.Get(0)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("stalled read: err %v, want ErrDeadlineExceeded", err)
	}
	// The client abandoned the lookup at the deadline: exactly the budget is
	// charged, not the full stall.
	if got := meter.Cost(); got != 10 {
		t.Fatalf("Cost %g, want 10 (the deadline)", got)
	}
	if st := c.RetryStats(); st.DeadlineExceeded != 1 {
		t.Fatalf("stats %+v, want 1 deadline exceeded", st)
	}
}

func TestZeroPolicyIsTransparent(t *testing.T) {
	// Identical access patterns with and without an (idle) retry policy must
	// produce identical counters and costs — the resilience layer is free
	// until a fault fires.
	run := func(withPolicy bool) (int64, int64, float64) {
		c, _ := retryFixture(t, 2)
		if withPolicy {
			c.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Deadline: 50 * time.Millisecond})
		}
		meter := c.NewMeter()
		for _, id := range []pagestore.PageID{0, 1, 2, 0, 1, 3, 0} {
			if _, err := c.Get(id); err != nil {
				t.Fatal(err)
			}
		}
		return c.Hits(), c.Misses(), meter.Cost()
	}
	h0, m0, cost0 := run(false)
	h1, m1, cost1 := run(true)
	if h0 != h1 || m0 != m1 || cost0 != cost1 {
		t.Fatalf("policy not transparent: (%d,%d,%g) vs (%d,%d,%g)", h0, m0, cost0, h1, m1, cost1)
	}
	if cost0 != float64(m0) {
		t.Fatalf("fault-free Cost %g != miss count %d", cost0, m0)
	}
}
