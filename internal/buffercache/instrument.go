package buffercache

import "mlq/internal/telemetry"

// cacheTelemetry mirrors the cache's counters into a telemetry registry. The
// cache publishes after every Get from its owning goroutine; scrapes read the
// atomic metric values without touching the (not concurrency-safe) cache.
type cacheTelemetry struct {
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
	faults    *telemetry.Counter
	ghostHits *telemetry.Counter
	resizes   *telemetry.Counter
	pages     *telemetry.Gauge
	capacity  *telemetry.Gauge
	capBytes  *telemetry.Gauge
	hitRatio  *telemetry.Gauge

	retries   *telemetry.Counter
	exhausted *telemetry.Counter
	deadlines *telemetry.Counter
	slowReads *telemetry.Counter
	charged   *telemetry.Gauge
}

// Instrument registers the cache's metrics under mlq_buffercache_* with the
// given labels (typically db="text"/"spatial") and begins publishing them on
// every lookup. Passing a nil registry detaches the cache from telemetry.
func (c *Cache) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	if reg == nil {
		c.tel = nil
		return
	}
	tel := &cacheTelemetry{
		hits:      reg.Counter("mlq_buffercache_hits_total", "lookups served from the cache", labels...),
		misses:    reg.Counter("mlq_buffercache_misses_total", "lookups that performed a physical read", labels...),
		evictions: reg.Counter("mlq_buffercache_evictions_total", "pages evicted to make room", labels...),
		faults:    reg.Counter("mlq_buffercache_read_faults_total", "physical reads that returned an error", labels...),
		ghostHits: reg.Counter("mlq_buffercache_ghost_hits_total", "misses on pages evicted within the last capacity window", labels...),
		resizes:   reg.Counter("mlq_buffercache_resizes_total", "capacity changes applied by Resize", labels...),
		pages:     reg.Gauge("mlq_buffercache_pages", "pages currently cached", labels...),
		capacity:  reg.Gauge("mlq_buffercache_capacity_pages", "live cache capacity in pages (moves with Resize)", labels...),
		capBytes:  reg.Gauge("mlq_buffercache_capacity_bytes", "live cache capacity in bytes at the store's page size", labels...),
		hitRatio:  reg.Gauge("mlq_buffercache_hit_ratio", "hits / (hits + misses) over the cache's lifetime", labels...),

		retries:   reg.Counter("mlq_buffercache_retries_total", "repeated physical read attempts under the retry policy", labels...),
		exhausted: reg.Counter("mlq_buffercache_retry_exhausted_total", "lookups that failed after the full retry budget", labels...),
		deadlines: reg.Counter("mlq_buffercache_read_deadline_exceeded_total", "lookups abandoned by the per-read latency deadline", labels...),
		slowReads: reg.Counter("mlq_buffercache_slow_reads_total", "physical read attempts charged injected latency", labels...),
		charged:   reg.Gauge("mlq_buffercache_latency_charged_units", "modeled latency charged into IO cost, in clean-read equivalents", labels...),
	}
	c.tel = tel
	tel.publish(c)
}

// publish pushes the cache's current counters into the registered metrics.
// It must be called from the goroutine that owns the cache.
func (tel *cacheTelemetry) publish(c *Cache) {
	tel.hits.Store(c.hits)
	tel.misses.Store(c.misses)
	tel.evictions.Store(c.evictions)
	tel.faults.Store(c.faults)
	tel.ghostHits.Store(c.ghostHits)
	tel.resizes.Store(c.resizes)
	tel.pages.SetInt(int64(c.order.Len()))
	tel.capacity.SetInt(int64(c.capacity))
	tel.capBytes.SetInt(int64(c.CapacityBytes()))
	tel.hitRatio.Set(c.HitRatio())
	tel.retries.Store(c.retryStats.Retries)
	tel.exhausted.Store(c.retryStats.Exhausted)
	tel.deadlines.Store(c.retryStats.DeadlineExceeded)
	tel.slowReads.Store(c.retryStats.SlowReads)
	tel.charged.Set(c.charged)
}
