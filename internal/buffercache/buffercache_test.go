package buffercache

import (
	"testing"

	"mlq/internal/pagestore"
)

func newStore(t *testing.T, pages int) *pagestore.Store {
	t.Helper()
	s, err := pagestore.New(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		id := s.Alloc()
		if err := s.Write(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestNewValidation(t *testing.T) {
	s := newStore(t, 1)
	if _, err := New(nil, 4); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := New(s, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestHitMissAccounting(t *testing.T) {
	s := newStore(t, 3)
	c, err := New(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(0); err != nil {
		t.Fatal(err)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 1,1", c.Hits(), c.Misses())
	}
	if s.Reads() != 1 {
		t.Errorf("physical reads = %d, want 1", s.Reads())
	}
	data, _ := c.Get(0)
	if data[0] != 0 {
		t.Error("wrong page content")
	}
}

func TestLRUEviction(t *testing.T) {
	s := newStore(t, 3)
	c, _ := New(s, 2)
	c.Get(0)
	c.Get(1)
	c.Get(0) // page 0 now MRU; page 1 is LRU
	c.Get(2) // evicts page 1
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	before := c.Misses()
	c.Get(0) // should still be cached
	if c.Misses() != before {
		t.Error("page 0 was evicted but should have been retained")
	}
	c.Get(1) // must be a miss
	if c.Misses() != before+1 {
		t.Error("page 1 should have been evicted")
	}
}

func TestGetPropagatesStoreErrors(t *testing.T) {
	s := newStore(t, 1)
	c, _ := New(s, 2)
	if _, err := c.Get(99); err == nil {
		t.Error("unallocated page accepted")
	}
}

func TestInvalidate(t *testing.T) {
	s := newStore(t, 2)
	c, _ := New(s, 2)
	c.Get(0)
	c.Get(1)
	c.Invalidate()
	if c.Len() != 0 {
		t.Errorf("Len = %d after invalidate", c.Len())
	}
	before := c.Misses()
	c.Get(0)
	if c.Misses() != before+1 {
		t.Error("invalidated page served from cache")
	}
}

func TestMeter(t *testing.T) {
	s := newStore(t, 4)
	c, _ := New(s, 4)
	c.Get(0)
	m := c.NewMeter()
	c.Get(0) // hit: free
	c.Get(1) // miss
	c.Get(2) // miss
	if m.Delta() != 2 {
		t.Errorf("meter delta = %d, want 2", m.Delta())
	}
}

// The noise property the paper relies on: the same query costs different IO
// depending on cache state left by interleaved queries.
func TestIOCostFluctuatesWithCacheState(t *testing.T) {
	s := newStore(t, 10)
	c, _ := New(s, 3)
	query := func(pages ...pagestore.PageID) int64 {
		m := c.NewMeter()
		for _, p := range pages {
			if _, err := c.Get(p); err != nil {
				t.Fatal(err)
			}
		}
		return m.Delta()
	}
	cold := query(0, 1, 2)
	warm := query(0, 1, 2)
	if cold != 3 || warm != 0 {
		t.Fatalf("cold=%d warm=%d, want 3,0", cold, warm)
	}
	query(7, 8, 9) // pollute the cache
	again := query(0, 1, 2)
	if again != 3 {
		t.Errorf("post-pollution cost = %d, want 3", again)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Clock.String() != "clock" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy must render")
	}
}

func TestNewWithPolicyValidation(t *testing.T) {
	s := newStore(t, 1)
	if _, err := NewWithPolicy(s, 4, Policy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
	c, err := NewWithPolicy(s, 4, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if c.Policy() != FIFO {
		t.Errorf("Policy = %v", c.Policy())
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	s := newStore(t, 4)
	c, _ := NewWithPolicy(s, 2, FIFO)
	c.Get(0) // oldest
	c.Get(1)
	c.Get(0) // hit: FIFO does not refresh page 0's age
	c.Get(2) // evicts page 0 (oldest-loaded) despite its recent hit
	before := c.Misses()
	c.Get(1) // still cached
	if c.Misses() != before {
		t.Error("page 1 evicted; FIFO should have evicted page 0")
	}
	c.Get(0) // must miss
	if c.Misses() != before+1 {
		t.Error("page 0 retained; FIFO ignored load order")
	}
}

func TestClockGrantsSecondChance(t *testing.T) {
	s := newStore(t, 4)
	c, _ := NewWithPolicy(s, 2, Clock)
	c.Get(0)
	c.Get(1)
	c.Get(0) // sets page 0's reference bit
	c.Get(2) // sweep: page 0 gets a second chance, page 1 evicted
	before := c.Misses()
	c.Get(0)
	if c.Misses() != before {
		t.Error("referenced page 0 was evicted; Clock must grant a second chance")
	}
	c.Get(1)
	if c.Misses() != before+1 {
		t.Error("page 1 survived; Clock should have evicted it")
	}
}

// All policies must still enforce capacity and produce identical hit rates
// on a strictly sequential scan (no reuse: every access misses).
func TestPoliciesOnSequentialScan(t *testing.T) {
	for _, p := range []Policy{LRU, FIFO, Clock} {
		s := newStore(t, 20)
		c, err := NewWithPolicy(s, 4, p)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			for id := 0; id < 20; id++ {
				if _, err := c.Get(pagestore.PageID(id)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if c.Len() > 4 {
			t.Errorf("%v: cache grew to %d pages", p, c.Len())
		}
		if c.Hits() != 0 {
			t.Errorf("%v: %d hits on a capacity-busting sequential scan, want 0", p, c.Hits())
		}
	}
}
