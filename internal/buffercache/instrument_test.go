package buffercache

import (
	"errors"
	"testing"

	"mlq/internal/pagestore"
	"mlq/internal/telemetry"
)

func newTestStore(t *testing.T, pages int) (*pagestore.Store, []pagestore.PageID) {
	t.Helper()
	s, err := pagestore.New(64)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]pagestore.PageID, pages)
	for i := range ids {
		ids[i] = s.Alloc()
		if err := s.Write(ids[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return s, ids
}

// TestInstrumentPublishes walks a hit/miss/eviction sequence and checks the
// registry series track the cache's own counters exactly.
func TestInstrumentPublishes(t *testing.T) {
	store, ids := newTestStore(t, 3)
	c, err := New(store, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	c.Instrument(reg, telemetry.L("db", "test"))

	lbl := telemetry.L("db", "test")
	if got := reg.Gauge("mlq_buffercache_capacity_pages", "", lbl).Value(); got != 2 {
		t.Errorf("capacity gauge = %g, want 2", got)
	}

	mustGet := func(id pagestore.PageID) {
		t.Helper()
		if _, err := c.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(ids[0]) // miss
	mustGet(ids[0]) // hit
	mustGet(ids[1]) // miss
	mustGet(ids[2]) // miss + eviction

	if got := reg.Counter("mlq_buffercache_hits_total", "", lbl).Value(); got != 1 {
		t.Errorf("hits series = %d, want 1", got)
	}
	if got := reg.Counter("mlq_buffercache_misses_total", "", lbl).Value(); got != 3 {
		t.Errorf("misses series = %d, want 3", got)
	}
	if got := reg.Counter("mlq_buffercache_evictions_total", "", lbl).Value(); got != 1 {
		t.Errorf("evictions series = %d, want 1", got)
	}
	if got := reg.Gauge("mlq_buffercache_pages", "", lbl).Value(); got != 2 {
		t.Errorf("pages gauge = %g, want 2", got)
	}
	if got := reg.Gauge("mlq_buffercache_hit_ratio", "", lbl).Value(); got != 0.25 {
		t.Errorf("hit ratio gauge = %g, want 0.25", got)
	}
}

// TestInstrumentReadFaults injects page-read errors through the pagestore
// fault hook and checks they surface as mlq_buffercache_read_faults_total —
// the registry-visible signal the chaos harness watches.
func TestInstrumentReadFaults(t *testing.T) {
	store, ids := newTestStore(t, 2)
	c, err := New(store, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	c.Instrument(reg, telemetry.L("db", "test"))
	lbl := telemetry.L("db", "test")

	faultErr := errors.New("injected read fault")
	store.SetReadFault(func(pagestore.PageID) error { return faultErr })
	for i := 0; i < 3; i++ {
		if _, err := c.Get(ids[0]); !errors.Is(err, faultErr) {
			t.Fatalf("faulted Get returned %v, want injected fault", err)
		}
	}
	if got := reg.Counter("mlq_buffercache_read_faults_total", "", lbl).Value(); got != 3 {
		t.Errorf("fault series = %d, want 3", got)
	}
	// Faults are neither hits nor misses: the ratio gauge must not move.
	if got := reg.Gauge("mlq_buffercache_hit_ratio", "", lbl).Value(); got != 0 {
		t.Errorf("hit ratio after faults only = %g, want 0", got)
	}

	// Clearing the hook resumes normal reads and publishing.
	store.SetReadFault(nil)
	if _, err := c.Get(ids[0]); err != nil {
		t.Fatalf("recovered read failed: %v", err)
	}
	if got := reg.Counter("mlq_buffercache_misses_total", "", lbl).Value(); got != 1 {
		t.Errorf("misses after recovery = %d, want 1", got)
	}
	if got := reg.Counter("mlq_buffercache_read_faults_total", "", lbl).Value(); got != 3 {
		t.Errorf("fault series moved after recovery: %d", got)
	}
}

// TestInstrumentDetach checks a nil registry detaches publishing.
func TestInstrumentDetach(t *testing.T) {
	store, ids := newTestStore(t, 1)
	c, err := New(store, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	c.Instrument(reg, telemetry.L("db", "test"))
	c.Instrument(nil)
	if _, err := c.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("mlq_buffercache_misses_total", "", telemetry.L("db", "test")).Value(); got != 0 {
		t.Errorf("detached cache still publishing: misses = %d", got)
	}
}
