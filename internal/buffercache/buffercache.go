// Package buffercache implements the LRU database buffer cache between query
// execution and the simulated disk. It reproduces the mechanism the paper
// identifies as the source of disk-IO cost noise (§4.3, Experiment 3): the
// number of physical reads a query performs depends on what earlier queries
// left in the cache, so identical queries observe fluctuating IO costs.
package buffercache

import (
	"container/list"
	"errors"
	"fmt"
	"time"

	"mlq/internal/events"
	"mlq/internal/pagestore"
)

// Policy selects the cache's replacement algorithm. The policy shapes the
// *noise characteristics* of disk-IO costs (which pages survive between
// repeated queries), so it is configurable for experiments.
type Policy int

const (
	// LRU evicts the least recently used page (the default; what the
	// paper's Oracle setup approximates).
	LRU Policy = iota
	// FIFO evicts the oldest-loaded page regardless of use.
	FIFO
	// Clock is the second-chance approximation of LRU.
	Clock
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Clock:
		return "clock"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ErrDeadlineExceeded reports a read abandoned because its retry schedule
// would overrun the policy's per-read latency Deadline. It wraps the last
// physical read error; test with errors.Is.
var ErrDeadlineExceeded = errors.New("buffercache: read deadline exceeded")

// RetryPolicy makes physical page reads resilient to transient faults: a
// failed read is retried up to MaxAttempts times with exponential backoff,
// and the whole schedule is bounded by a per-read Deadline. All delay in the
// policy is *modeled*, never slept — the cache runs on virtual time, so a
// degraded disk changes measured IO cost deterministically instead of making
// test runs slow and flaky. The accumulated backoff (plus any injected
// slow-read latency) is charged into the IO cost a Meter reports, which is
// the point: under a flaky disk the feedback loop observes inflated IO costs
// and the self-tuning models absorb the degradation instead of diverging.
//
// The zero value disables retries and charges latency at DefaultUnitLatency.
type RetryPolicy struct {
	// MaxAttempts is the total number of physical read attempts per lookup.
	// Values <= 1 mean a single attempt (no retry).
	MaxAttempts int
	// BaseDelay is the modeled backoff before the second attempt.
	BaseDelay time.Duration
	// Multiplier grows the backoff per attempt (values < 1 mean 2).
	Multiplier float64
	// Deadline bounds the modeled latency (injected + backoff) of one
	// lookup; a retry that would overrun it fails with ErrDeadlineExceeded
	// instead. Zero means unbounded.
	Deadline time.Duration
	// UnitLatency converts modeled latency into IO cost units: the nominal
	// service time of one clean physical read. Zero means
	// DefaultUnitLatency.
	UnitLatency time.Duration
}

// DefaultUnitLatency is the assumed service time of one clean physical read
// when RetryPolicy.UnitLatency is unset: 1ms, a spinning-disk-era page read,
// matching the paper's Oracle setup where IO cost is counted in page reads.
const DefaultUnitLatency = time.Millisecond

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts > 1 {
		return p.MaxAttempts
	}
	return 1
}

func (p RetryPolicy) multiplier() float64 {
	if p.Multiplier >= 1 {
		return p.Multiplier
	}
	return 2
}

func (p RetryPolicy) unit() time.Duration {
	if p.UnitLatency > 0 {
		return p.UnitLatency
	}
	return DefaultUnitLatency
}

// RetryStats are the cache's cumulative resilience counters.
type RetryStats struct {
	// Retries counts repeated physical read attempts (attempt 2 and up).
	Retries int64
	// Exhausted counts lookups that failed after the full attempt budget.
	Exhausted int64
	// DeadlineExceeded counts lookups abandoned by the latency deadline.
	DeadlineExceeded int64
	// SlowReads counts physical attempts that were charged injected latency.
	SlowReads int64
	// Latency is the total modeled latency charged (injected + backoff).
	Latency time.Duration
}

// Cache is a fixed-capacity page cache over a pagestore.Store.
// It is not safe for concurrent use.
type Cache struct {
	store    *pagestore.Store
	capacity int
	policy   Policy
	order    *list.List // front = most recent (LRU) / newest (FIFO, Clock)
	byID     map[pagestore.PageID]*list.Element

	hits      int64
	misses    int64
	evictions int64
	faults    int64 // physical reads that returned an error
	resizes   int64 // capacity changes applied by Resize

	// The ghost list remembers the IDs (never the data) of the last
	// `capacity` evicted pages, ARC-B1 style. A miss on a remembered page is
	// a ghost hit: a physical read that one more capacity window of pages
	// would have avoided. Ghost bookkeeping never influences replacement
	// decisions, so cache behavior is bit-identical with the list in place.
	ghost     *list.List // evicted-page IDs, most recently evicted first
	ghostByID map[pagestore.PageID]*list.Element
	ghostHits int64

	retry      RetryPolicy
	latencyFor func(pagestore.PageID) time.Duration // nil = no injected latency
	retryStats RetryStats
	charged    float64 // modeled latency in IO cost units (Latency / UnitLatency)

	tel *cacheTelemetry  // nil unless Instrument was called
	ev  *events.Recorder // causal event spine; nil = recording off
}

type entry struct {
	id   pagestore.PageID
	data []byte
	ref  bool // Clock's second-chance bit
}

// New returns an LRU cache holding up to capacity pages.
func New(store *pagestore.Store, capacity int) (*Cache, error) {
	return NewWithPolicy(store, capacity, LRU)
}

// NewWithPolicy returns a cache with an explicit replacement policy.
func NewWithPolicy(store *pagestore.Store, capacity int, policy Policy) (*Cache, error) {
	if store == nil {
		return nil, fmt.Errorf("buffercache: store is required")
	}
	if capacity < 1 {
		return nil, fmt.Errorf("buffercache: capacity must be >= 1 page, got %d", capacity)
	}
	switch policy {
	case LRU, FIFO, Clock:
	default:
		return nil, fmt.Errorf("buffercache: unknown policy %d", int(policy))
	}
	return &Cache{
		store:     store,
		capacity:  capacity,
		policy:    policy,
		order:     list.New(),
		byID:      make(map[pagestore.PageID]*list.Element, capacity),
		ghost:     list.New(),
		ghostByID: make(map[pagestore.PageID]*list.Element, capacity),
	}, nil
}

// Policy returns the cache's replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// SetRetryPolicy installs the read retry/backoff/deadline policy. The zero
// policy restores the default single-attempt behavior.
func (c *Cache) SetRetryPolicy(p RetryPolicy) { c.retry = p }

// SetEvents installs (or, with nil, removes) the causal event spine:
// retry-budget exhaustion and deadline abandonment emit fault events, so a
// flight-recorder dump shows the IO distress that preceded a trigger.
func (c *Cache) SetEvents(rec *events.Recorder) { c.ev = rec }

// Retry returns the installed retry policy.
func (c *Cache) Retry() RetryPolicy { return c.retry }

// SetReadLatency installs (or, with nil, removes) the injected-latency hook,
// consulted once per physical read attempt. The returned delay is modeled —
// charged, never slept; wire it to faults.Injector.PageReadDelay to simulate
// a slow disk.
func (c *Cache) SetReadLatency(f func(pagestore.PageID) time.Duration) { c.latencyFor = f }

// RetryStats returns the cache's cumulative resilience counters.
func (c *Cache) RetryStats() RetryStats { return c.retryStats }

// ChargedUnits returns the total modeled latency charged so far, expressed
// in IO cost units (clean-read equivalents). Zero whenever no latency was
// injected and no retry backed off — the fault-free path's IO costs are
// bit-identical with or without a policy installed.
func (c *Cache) ChargedUnits() float64 { return c.charged }

// charge folds one lookup's modeled latency into the cost accounting.
func (c *Cache) charge(lat time.Duration) {
	if lat <= 0 {
		return
	}
	c.retryStats.Latency += lat
	c.charged += float64(lat) / float64(c.retry.unit())
}

// readThrough performs one physical read under the retry policy, charging
// all modeled latency (injected slow-read delays plus retry backoff) of the
// lookup. Virtual time only: nothing here sleeps.
func (c *Cache) readThrough(id pagestore.PageID) ([]byte, error) {
	var lat time.Duration
	backoff := c.retry.BaseDelay
	attempts := c.retry.attempts()
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			c.retryStats.Retries++
		}
		if c.latencyFor != nil {
			if d := c.latencyFor(id); d > 0 {
				c.retryStats.SlowReads++
				lat += d
			}
		}
		if c.retry.Deadline > 0 && lat > c.retry.Deadline {
			// The modeled completion time overran the client's patience:
			// the lookup is abandoned at the deadline (that much latency
			// was really spent waiting) regardless of what the disk would
			// eventually have returned.
			c.retryStats.DeadlineExceeded++
			c.charge(c.retry.Deadline)
			c.ev.Emit(events.SubBufferCache, events.KindReadDeadline, 0, uint64(id), uint64(attempt))
			return nil, fmt.Errorf("%w: page %d stalled %v against a %v deadline",
				ErrDeadlineExceeded, id, lat, c.retry.Deadline)
		}
		data, err := c.store.Read(id)
		if err == nil {
			c.charge(lat)
			return data, nil
		}
		if attempt >= attempts {
			if attempts > 1 {
				c.retryStats.Exhausted++
				c.ev.Emit(events.SubBufferCache, events.KindRetryExhausted, 0, uint64(id), uint64(attempt))
			}
			c.charge(lat)
			return nil, err
		}
		if c.retry.Deadline > 0 && lat+backoff > c.retry.Deadline {
			// Waited lat so far; the next backoff would bust the budget, so
			// give up now and charge only the time actually waited.
			c.retryStats.DeadlineExceeded++
			c.charge(lat)
			c.ev.Emit(events.SubBufferCache, events.KindReadDeadline, 0, uint64(id), uint64(attempt))
			return nil, fmt.Errorf("%w: page %d still failing after %d attempts and %v of %v budget: %v",
				ErrDeadlineExceeded, id, attempt, lat, c.retry.Deadline, err)
		}
		lat += backoff
		backoff = time.Duration(float64(backoff) * c.retry.multiplier())
	}
}

// Get returns the contents of page id, reading through the cache. A hit
// costs nothing; a miss performs one physical read and may evict a page
// per the replacement policy. The returned slice must not be modified.
func (c *Cache) Get(id pagestore.PageID) ([]byte, error) {
	if el, ok := c.byID[id]; ok {
		c.hits++
		e := el.Value.(*entry)
		switch c.policy {
		case LRU:
			c.order.MoveToFront(el)
		case Clock:
			e.ref = true
		}
		if c.tel != nil {
			c.tel.publish(c)
		}
		return e.data, nil
	}
	data, err := c.readThrough(id)
	if err != nil {
		c.faults++
		if c.tel != nil {
			c.tel.publish(c)
		}
		return nil, err
	}
	c.misses++
	if el, ok := c.ghostByID[id]; ok {
		// This physical read would have been a hit with one more capacity
		// window of pages — the signal the memory arbiter's hit-ratio
		// gradient is built from. Each eviction can contribute at most one
		// ghost hit: the entry is consumed.
		c.ghostHits++
		c.ghost.Remove(el)
		delete(c.ghostByID, id)
	}
	if c.order.Len() >= c.capacity {
		c.evict()
	}
	c.byID[id] = c.order.PushFront(&entry{id: id, data: data})
	if c.tel != nil {
		c.tel.publish(c)
	}
	return data, nil
}

// evict removes one page per the replacement policy.
func (c *Cache) evict() {
	c.evictions++
	switch c.policy {
	case LRU, FIFO:
		// LRU keeps recency order by moving hits to the front, so the
		// back is the least recently used; under FIFO the back is
		// simply the oldest-loaded page.
		back := c.order.Back()
		c.order.Remove(back)
		id := back.Value.(*entry).id
		delete(c.byID, id)
		c.remember(id)
	case Clock:
		// Sweep from the oldest end, granting one second chance to
		// referenced pages.
		for {
			back := c.order.Back()
			e := back.Value.(*entry)
			if e.ref {
				e.ref = false
				c.order.MoveToFront(back)
				continue
			}
			c.order.Remove(back)
			delete(c.byID, e.id)
			c.remember(e.id)
			return
		}
	}
}

// remember records an evicted page ID in the ghost list, bounded to one
// capacity window of history.
func (c *Cache) remember(id pagestore.PageID) {
	if el, ok := c.ghostByID[id]; ok {
		c.ghost.Remove(el)
	}
	c.ghostByID[id] = c.ghost.PushFront(id)
	c.trimGhost()
}

// trimGhost bounds the ghost list to the current capacity.
func (c *Cache) trimGhost() {
	for c.ghost.Len() > c.capacity {
		back := c.ghost.Back()
		c.ghost.Remove(back)
		delete(c.ghostByID, back.Value.(pagestore.PageID))
	}
}

// Hits returns the number of cache hits served.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of physical reads performed (the IO cost unit).
func (c *Cache) Misses() int64 { return c.misses }

// Evictions returns the number of pages evicted to make room.
func (c *Cache) Evictions() int64 { return c.evictions }

// Faults returns the number of physical reads that returned an error (the
// page never entered the cache and the error propagated to the caller).
func (c *Cache) Faults() int64 { return c.faults }

// HitRatio returns hits/(hits+misses), or 0 before any lookup. Faulted reads
// are neither hits nor misses — they never produced a page.
func (c *Cache) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// GhostHits returns how many misses landed on a page evicted within the
// last capacity window — physical reads a bigger cache would have served
// from memory. The ratio of ghost hits to the ghost window's byte size is
// the cache's marginal hit-ratio gradient.
func (c *Cache) GhostHits() int64 { return c.ghostHits }

// Len returns the number of cached pages.
func (c *Cache) Len() int { return c.order.Len() }

// Capacity returns the cache capacity in pages.
func (c *Cache) Capacity() int { return c.capacity }

// CapacityBytes returns the cache capacity in bytes — capacity pages at the
// backing store's page size — so budget arbitration and dashboards speak
// the same unit as the model memory limits.
func (c *Cache) CapacityBytes() int { return c.capacity * c.store.PageSize() }

// Resizes returns how many times Resize changed the capacity.
func (c *Cache) Resizes() int64 { return c.resizes }

// Resize moves the cache's live capacity to the given number of pages.
// Growing only raises the ceiling: nothing is read or dropped, and later
// misses fill the new room. Shrinking evicts in replacement-policy order —
// least recently used first under the default policy — until the cache
// fits, charging each removal to the same eviction counter Get uses.
// Hit/miss accounting is exact across the transition: lookups before and
// after a Resize are classified and counted identically.
func (c *Cache) Resize(pages int) error {
	if pages < 1 {
		return fmt.Errorf("buffercache: capacity must be >= 1 page, got %d", pages)
	}
	if pages == c.capacity {
		return nil
	}
	old := c.capacity
	c.capacity = pages
	for c.order.Len() > c.capacity {
		c.evict()
	}
	c.trimGhost()
	c.resizes++
	c.ev.Emit(events.SubBufferCache, events.KindResize, 0, uint64(old), uint64(pages))
	if c.tel != nil {
		c.tel.publish(c)
	}
	return nil
}

// Invalidate drops every cached page, as after a restart; counters persist.
// The ghost list is dropped too: after a cold restart an early miss says
// nothing about capacity.
func (c *Cache) Invalidate() {
	c.order.Init()
	c.byID = make(map[pagestore.PageID]*list.Element, c.capacity)
	c.ghost.Init()
	c.ghostByID = make(map[pagestore.PageID]*list.Element, c.capacity)
}

// Meter measures the IO cost of one query: snapshot before, Delta/Cost after.
type Meter struct {
	cache   *Cache
	misses  int64
	charged float64
}

// NewMeter snapshots the cache's miss and latency-charge counters.
func (c *Cache) NewMeter() Meter {
	return Meter{cache: c, misses: c.misses, charged: c.charged}
}

// Delta returns the physical reads performed since the snapshot.
func (m Meter) Delta() int64 { return m.cache.misses - m.misses }

// Cost returns the modeled IO cost since the snapshot: physical reads plus
// the latency charged by the retry policy and any injected slow reads,
// expressed in clean-read equivalents. On a healthy disk Cost equals
// float64(Delta()) exactly, so feeding Cost to the IO cost models changes
// nothing until a fault makes the disk slow — at which point predictions
// self-tune to the degraded service time instead of diverging from it.
func (m Meter) Cost() float64 {
	return float64(m.Delta()) + m.cache.charged - m.charged
}
