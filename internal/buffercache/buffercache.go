// Package buffercache implements the LRU database buffer cache between query
// execution and the simulated disk. It reproduces the mechanism the paper
// identifies as the source of disk-IO cost noise (§4.3, Experiment 3): the
// number of physical reads a query performs depends on what earlier queries
// left in the cache, so identical queries observe fluctuating IO costs.
package buffercache

import (
	"container/list"
	"fmt"

	"mlq/internal/pagestore"
)

// Policy selects the cache's replacement algorithm. The policy shapes the
// *noise characteristics* of disk-IO costs (which pages survive between
// repeated queries), so it is configurable for experiments.
type Policy int

const (
	// LRU evicts the least recently used page (the default; what the
	// paper's Oracle setup approximates).
	LRU Policy = iota
	// FIFO evicts the oldest-loaded page regardless of use.
	FIFO
	// Clock is the second-chance approximation of LRU.
	Clock
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Clock:
		return "clock"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Cache is a fixed-capacity page cache over a pagestore.Store.
// It is not safe for concurrent use.
type Cache struct {
	store    *pagestore.Store
	capacity int
	policy   Policy
	order    *list.List // front = most recent (LRU) / newest (FIFO, Clock)
	byID     map[pagestore.PageID]*list.Element

	hits      int64
	misses    int64
	evictions int64
	faults    int64 // physical reads that returned an error

	tel *cacheTelemetry // nil unless Instrument was called
}

type entry struct {
	id   pagestore.PageID
	data []byte
	ref  bool // Clock's second-chance bit
}

// New returns an LRU cache holding up to capacity pages.
func New(store *pagestore.Store, capacity int) (*Cache, error) {
	return NewWithPolicy(store, capacity, LRU)
}

// NewWithPolicy returns a cache with an explicit replacement policy.
func NewWithPolicy(store *pagestore.Store, capacity int, policy Policy) (*Cache, error) {
	if store == nil {
		return nil, fmt.Errorf("buffercache: store is required")
	}
	if capacity < 1 {
		return nil, fmt.Errorf("buffercache: capacity must be >= 1 page, got %d", capacity)
	}
	switch policy {
	case LRU, FIFO, Clock:
	default:
		return nil, fmt.Errorf("buffercache: unknown policy %d", int(policy))
	}
	return &Cache{
		store:    store,
		capacity: capacity,
		policy:   policy,
		order:    list.New(),
		byID:     make(map[pagestore.PageID]*list.Element, capacity),
	}, nil
}

// Policy returns the cache's replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Get returns the contents of page id, reading through the cache. A hit
// costs nothing; a miss performs one physical read and may evict a page
// per the replacement policy. The returned slice must not be modified.
func (c *Cache) Get(id pagestore.PageID) ([]byte, error) {
	if el, ok := c.byID[id]; ok {
		c.hits++
		e := el.Value.(*entry)
		switch c.policy {
		case LRU:
			c.order.MoveToFront(el)
		case Clock:
			e.ref = true
		}
		if c.tel != nil {
			c.tel.publish(c)
		}
		return e.data, nil
	}
	data, err := c.store.Read(id)
	if err != nil {
		c.faults++
		if c.tel != nil {
			c.tel.publish(c)
		}
		return nil, err
	}
	c.misses++
	if c.order.Len() >= c.capacity {
		c.evict()
	}
	c.byID[id] = c.order.PushFront(&entry{id: id, data: data})
	if c.tel != nil {
		c.tel.publish(c)
	}
	return data, nil
}

// evict removes one page per the replacement policy.
func (c *Cache) evict() {
	c.evictions++
	switch c.policy {
	case LRU, FIFO:
		// LRU keeps recency order by moving hits to the front, so the
		// back is the least recently used; under FIFO the back is
		// simply the oldest-loaded page.
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.byID, back.Value.(*entry).id)
	case Clock:
		// Sweep from the oldest end, granting one second chance to
		// referenced pages.
		for {
			back := c.order.Back()
			e := back.Value.(*entry)
			if e.ref {
				e.ref = false
				c.order.MoveToFront(back)
				continue
			}
			c.order.Remove(back)
			delete(c.byID, e.id)
			return
		}
	}
}

// Hits returns the number of cache hits served.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of physical reads performed (the IO cost unit).
func (c *Cache) Misses() int64 { return c.misses }

// Evictions returns the number of pages evicted to make room.
func (c *Cache) Evictions() int64 { return c.evictions }

// Faults returns the number of physical reads that returned an error (the
// page never entered the cache and the error propagated to the caller).
func (c *Cache) Faults() int64 { return c.faults }

// HitRatio returns hits/(hits+misses), or 0 before any lookup. Faulted reads
// are neither hits nor misses — they never produced a page.
func (c *Cache) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Len returns the number of cached pages.
func (c *Cache) Len() int { return c.order.Len() }

// Capacity returns the cache capacity in pages.
func (c *Cache) Capacity() int { return c.capacity }

// Invalidate drops every cached page, as after a restart; counters persist.
func (c *Cache) Invalidate() {
	c.order.Init()
	c.byID = make(map[pagestore.PageID]*list.Element, c.capacity)
}

// Meter measures the IO cost of one query: snapshot before, Delta after.
type Meter struct {
	cache  *Cache
	misses int64
}

// NewMeter snapshots the cache's miss counter.
func (c *Cache) NewMeter() Meter { return Meter{cache: c, misses: c.misses} }

// Delta returns the physical reads performed since the snapshot.
func (m Meter) Delta() int64 { return m.cache.misses - m.misses }
