// Package metrics implements the paper's evaluation metrics: the normalized
// absolute error (NAE, Eq. 10) used for all accuracy comparisons, a windowed
// error series for the learning curves of Experiment 4, and general
// mean/variance accumulators.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NAE accumulates the normalized absolute error of Eq. 10:
//
//	NAE(Q) = Σ |PC(q) − AC(q)| / Σ AC(q)
//
// The paper chose NAE over relative error (not robust when costs are low)
// and over unnormalized absolute error (not comparable across datasets).
type NAE struct {
	absErr float64
	actual float64
	n      int64
}

// Add records one prediction/actual pair.
func (e *NAE) Add(predicted, actual float64) {
	e.absErr += math.Abs(predicted - actual)
	e.actual += math.Abs(actual)
	e.n++
}

// Value returns the accumulated NAE. It returns 0 before any observation and
// +Inf when predictions erred against an all-zero actual stream.
func (e *NAE) Value() float64 {
	if e.n == 0 {
		return 0
	}
	//lint:ignore floatguard exact-zero accumulator test distinguishes the all-zero actual stream
	if e.actual == 0 {
		//lint:ignore floatguard exact-zero accumulator test distinguishes the error-free case
		if e.absErr == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return e.absErr / e.actual
}

// Count returns the number of observations.
func (e *NAE) Count() int64 { return e.n }

// Reset clears the accumulator.
func (e *NAE) Reset() { *e = NAE{} }

// String renders the current value compactly.
func (e *NAE) String() string { return fmt.Sprintf("NAE=%.4f (n=%d)", e.Value(), e.n) }

// CurvePoint is one sample of a learning curve: the windowed NAE measured
// after processing N query points.
type CurvePoint struct {
	N   int64
	NAE float64
}

// Curve builds the Experiment 4 learning curves: it maintains a tumbling
// window of the last Window observations and emits one CurvePoint per full
// window, showing how prediction error falls as the model sees more data.
type Curve struct {
	window int
	cur    NAE
	total  int64
	points []CurvePoint
}

// NewCurve returns a curve with the given tumbling-window size.
func NewCurve(window int) (*Curve, error) {
	if window <= 0 {
		return nil, fmt.Errorf("metrics: window must be > 0, got %d", window)
	}
	return &Curve{window: window}, nil
}

// Add records one prediction/actual pair, closing the window if full.
func (c *Curve) Add(predicted, actual float64) {
	c.cur.Add(predicted, actual)
	c.total++
	if c.cur.Count() >= int64(c.window) {
		c.points = append(c.points, CurvePoint{N: c.total, NAE: c.cur.Value()})
		c.cur.Reset()
	}
}

// Points returns the completed windows' curve points.
func (c *Curve) Points() []CurvePoint { return c.points }

// Flush closes a partially filled final window, if any.
func (c *Curve) Flush() {
	if c.cur.Count() > 0 {
		c.points = append(c.points, CurvePoint{N: c.total, NAE: c.cur.Value()})
		c.cur.Reset()
	}
}

// Welford accumulates running mean and variance with Welford's algorithm,
// used by tests and the harness for summarizing repeated trials.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add records one value.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Mean returns the running mean (0 before any value).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Count returns the number of values seen.
func (w *Welford) Count() int64 { return w.n }

// Quantiles accumulates a bounded sample of absolute prediction errors and
// reports order statistics (median, tail quantiles). NAE summarizes the
// error mass; quantiles reveal its distribution — a model can have a fine
// NAE yet a terrible p95, which matters to an optimizer that must not pick
// catastrophic plans. Uses reservoir sampling, so memory is bounded no
// matter how long the stream runs.
type Quantiles struct {
	cap    int
	sample []float64
	seen   int64
	rng    *rand.Rand
	sorted bool
}

// NewQuantiles returns an accumulator keeping at most capacity samples.
func NewQuantiles(capacity int, seed int64) (*Quantiles, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("metrics: capacity must be >= 1, got %d", capacity)
	}
	return &Quantiles{
		cap: capacity,
		rng: rand.New(rand.NewSource(seed)),
	}, nil
}

// Add records one prediction/actual pair's absolute error.
func (q *Quantiles) Add(predicted, actual float64) {
	q.AddValue(math.Abs(predicted - actual))
}

// AddValue records a raw value.
func (q *Quantiles) AddValue(v float64) {
	q.seen++
	q.sorted = false
	if len(q.sample) < q.cap {
		q.sample = append(q.sample, v)
		return
	}
	// Compare in int64: int(j) truncates on 32-bit platforms once seen
	// exceeds 2^31, which would admit out-of-range indices into the sample.
	if j := q.rng.Int63n(q.seen); j < int64(q.cap) {
		q.sample[int(j)] = v
	}
}

// Quantile returns the p-quantile (p in [0, 1]) of the sampled values,
// or 0 before any observation.
func (q *Quantiles) Quantile(p float64) float64 {
	if len(q.sample) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if !q.sorted {
		sort.Float64s(q.sample)
		q.sorted = true
	}
	idx := int(p * float64(len(q.sample)-1))
	return q.sample[idx]
}

// Count returns the number of observations seen (not the sample size).
func (q *Quantiles) Count() int64 { return q.seen }
