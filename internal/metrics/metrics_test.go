package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNAEKnownValue(t *testing.T) {
	var e NAE
	e.Add(10, 20) // |err| 10
	e.Add(30, 20) // |err| 10
	// total abs err 20, total actual 40 -> 0.5
	if got := e.Value(); got != 0.5 {
		t.Errorf("NAE = %g, want 0.5", got)
	}
	if e.Count() != 2 {
		t.Errorf("Count = %d", e.Count())
	}
}

func TestNAEPerfectPrediction(t *testing.T) {
	var e NAE
	for i := 1; i <= 10; i++ {
		e.Add(float64(i), float64(i))
	}
	if got := e.Value(); got != 0 {
		t.Errorf("perfect NAE = %g, want 0", got)
	}
}

func TestNAEEdgeCases(t *testing.T) {
	var e NAE
	if e.Value() != 0 {
		t.Error("empty NAE must be 0")
	}
	e.Add(5, 0)
	if !math.IsInf(e.Value(), 1) {
		t.Error("error against all-zero actuals must be +Inf")
	}
	e.Reset()
	e.Add(0, 0)
	if e.Value() != 0 {
		t.Error("zero error against zero actuals must be 0")
	}
	if !strings.Contains(e.String(), "NAE=") {
		t.Errorf("String = %q", e.String())
	}
}

// Property: NAE is invariant under a positive scaling of both predictions
// and actuals — the point of normalization.
func TestNAEScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b NAE
		k := 1 + rng.Float64()*100
		for i := 0; i < 50; i++ {
			p := rng.Float64() * 100
			v := 1 + rng.Float64()*100
			a.Add(p, v)
			b.Add(p*k, v*k)
		}
		return math.Abs(a.Value()-b.Value()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve(0); err == nil {
		t.Error("window 0 accepted")
	}
}

func TestCurveWindows(t *testing.T) {
	c, err := NewCurve(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		c.Add(0, 10) // constant NAE of 1
	}
	pts := c.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2 full windows", len(pts))
	}
	if pts[0].N != 10 || pts[1].N != 20 {
		t.Errorf("window boundaries: %+v", pts)
	}
	for _, p := range pts {
		if p.NAE != 1 {
			t.Errorf("window NAE = %g, want 1", p.NAE)
		}
	}
	c.Flush()
	pts = c.Points()
	if len(pts) != 3 || pts[2].N != 25 {
		t.Errorf("after flush: %+v", pts)
	}
	c.Flush() // idempotent on empty window
	if len(c.Points()) != 3 {
		t.Error("Flush on empty window added a point")
	}
}

func TestCurveShowsImprovement(t *testing.T) {
	c, _ := NewCurve(100)
	// Error shrinks by half each window.
	errScale := 1.0
	for w := 0; w < 5; w++ {
		for i := 0; i < 100; i++ {
			c.Add(100+100*errScale, 100)
		}
		errScale /= 2
	}
	pts := c.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].NAE >= pts[i-1].NAE {
			t.Errorf("curve not decreasing: %+v", pts)
		}
	}
}

func TestWelfordAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var w Welford
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 7
		xs = append(xs, x)
		w.Add(x)
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var variance float64
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Errorf("mean %g, want %g", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-9 {
		t.Errorf("variance %g, want %g", w.Variance(), variance)
	}
	if math.Abs(w.StdDev()-math.Sqrt(variance)) > 1e-9 {
		t.Errorf("stddev %g", w.StdDev())
	}
	if w.Count() != 1000 {
		t.Errorf("count %d", w.Count())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("empty Welford must be all zeros")
	}
}

func TestNewQuantilesValidation(t *testing.T) {
	if _, err := NewQuantiles(0, 1); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestQuantilesExactSmallSample(t *testing.T) {
	q, err := NewQuantiles(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Quantile(0.5) != 0 {
		t.Error("empty accumulator must return 0")
	}
	// Errors 1..100 (fits entirely in the sample: exact quantiles).
	for i := 1; i <= 100; i++ {
		q.Add(float64(i), 0)
	}
	if got := q.Quantile(0); got != 1 {
		t.Errorf("p0 = %g, want 1", got)
	}
	if got := q.Quantile(1); got != 100 {
		t.Errorf("p1 = %g, want 100", got)
	}
	med := q.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Errorf("median = %g, want ~50", med)
	}
	p95 := q.Quantile(0.95)
	if p95 < 90 || p95 > 100 {
		t.Errorf("p95 = %g, want ~95", p95)
	}
	if q.Count() != 100 {
		t.Errorf("Count = %d", q.Count())
	}
	// Out-of-range p clamps.
	if q.Quantile(-1) != 1 || q.Quantile(2) != 100 {
		t.Error("p clamping broken")
	}
}

func TestQuantilesReservoirApproximation(t *testing.T) {
	q, _ := NewQuantiles(500, 2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		q.AddValue(rng.Float64()) // uniform [0,1): p-quantile ~= p
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		got := q.Quantile(p)
		if math.Abs(got-p) > 0.08 {
			t.Errorf("quantile(%g) = %g, want ~%g", p, got, p)
		}
	}
	if q.Count() != 100000 {
		t.Errorf("Count = %d", q.Count())
	}
	// Interleaving adds after a quantile read must keep working.
	q.AddValue(0.5)
	if q.Quantile(0.5) == 0 {
		t.Error("accumulator broke after interleaved add")
	}
}
