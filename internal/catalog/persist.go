package catalog

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// BackupSuffix is appended to a catalog path to name its previous generation,
// rotated aside by SaveFile.
const BackupSuffix = ".bak"

// saveConfig carries SaveFile options.
type saveConfig struct {
	wrap func(io.Writer) io.Writer
}

// SaveOption configures SaveFile.
type SaveOption func(*saveConfig)

// WithWriterWrapper interposes wrap between the catalog encoder and the
// destination file. It exists for fault injection (e.g. faults.TearWriter) so
// crash-safety can be tested against real torn writes.
func WithWriterWrapper(wrap func(io.Writer) io.Writer) SaveOption {
	return func(c *saveConfig) { c.wrap = wrap }
}

// SaveFile persists the catalog to path crash-safely: the stream is written
// to a temp file in the same directory and fsynced, the current file (if any)
// is rotated to path+BackupSuffix, and the temp file is renamed into place.
// A write failure at any point removes the temp file and leaves the previous
// generation untouched — an interrupted save never leaves the primary
// unreadable.
func SaveFile(path string, c *Catalog, opts ...SaveOption) error {
	var cfg saveConfig
	for _, o := range opts {
		o(&cfg)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("catalog: creating temp file: %w", err)
	}
	w := io.Writer(tmp)
	if cfg.wrap != nil {
		w = cfg.wrap(tmp)
	}
	_, werr := c.WriteTo(w)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		persistCounters.saveFailures.Add(1)
		return fmt.Errorf("catalog: writing %s: %w", path, werr)
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+BackupSuffix); err != nil {
			os.Remove(tmp.Name())
			persistCounters.saveFailures.Add(1)
			return fmt.Errorf("catalog: rotating backup of %s: %w", path, err)
		}
		persistCounters.bakRotations.Add(1)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		persistCounters.saveFailures.Add(1)
		return fmt.Errorf("catalog: installing %s: %w", path, err)
	}
	persistCounters.saves.Add(1)
	return nil
}

// LoadReport describes where LoadFile got its catalog and what, if anything,
// was lost on the way.
type LoadReport struct {
	// Source is "primary", "backup", or "primary+backup" (a damaged primary
	// merged with the previous generation).
	Source string
	// Restored lists entries missing or damaged in the primary that the
	// backup supplied.
	Restored []string
	// Dropped lists entries that could not be recovered from either file.
	Dropped []string
}

// Degraded reports whether the load was anything other than a clean primary
// read.
func (r *LoadReport) Degraded() bool {
	return r.Source != "primary" || len(r.Dropped) > 0 || len(r.Restored) > 0
}

// LoadFile loads the catalog at path, falling back on path+BackupSuffix when
// the primary is damaged or missing. A partially damaged primary is salvaged
// and its gaps filled from the backup (primary entries win — they are newer).
// LoadFile returns an error only when no catalog at all could be produced;
// degraded loads succeed and describe the degradation in the report. A
// missing primary with a missing backup returns an error wrapping
// fs.ErrNotExist.
func LoadFile(path string) (*Catalog, *LoadReport, error) {
	c, rep, err := loadFile(path)
	if err == nil {
		persistCounters.loads.Add(1)
		if rep.Degraded() {
			persistCounters.degraded.Add(1)
		}
		persistCounters.restored.Add(int64(len(rep.Restored)))
		persistCounters.dropped.Add(int64(len(rep.Dropped)))
	}
	return c, rep, err
}

func loadFile(path string) (*Catalog, *LoadReport, error) {
	primary, perr := readCatalogFile(path)
	if perr == nil {
		return primary, &LoadReport{Source: "primary"}, nil
	}
	var pcorr *CorruptionError
	partial := errors.As(perr, &pcorr) && primary != nil

	backup, berr := readCatalogFile(path + BackupSuffix)
	var bcorr *CorruptionError
	if berr != nil && !(errors.As(berr, &bcorr) && backup != nil) {
		backup = nil // backup unusable even partially
	}

	switch {
	case partial && backup != nil:
		rep := &LoadReport{Source: "primary+backup"}
		for _, name := range backup.Names() {
			if _, ok := primary.Get(name); !ok {
				e, _ := backup.Get(name)
				primary.entries[name] = e
				rep.Restored = append(rep.Restored, name)
			}
		}
		for _, d := range pcorr.Dropped {
			if _, ok := primary.Get(d); !ok {
				rep.Dropped = append(rep.Dropped, d)
			}
		}
		return primary, rep, nil
	case partial:
		return primary, &LoadReport{Source: "primary", Dropped: pcorr.Dropped}, nil
	case backup != nil:
		rep := &LoadReport{Source: "backup"}
		if bcorr != nil {
			rep.Dropped = bcorr.Dropped
		}
		return backup, rep, nil
	default:
		return nil, nil, fmt.Errorf("catalog: loading %s (backup also unusable): %w", path, perr)
	}
}

// readCatalogFile opens and decodes one catalog file; the Read contract (a
// salvaged catalog may accompany a *CorruptionError) passes through.
func readCatalogFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
