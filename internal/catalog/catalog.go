// Package catalog stores the cost models of many UDFs the way a DBMS
// catalog would: keyed by UDF name, one CPU-cost and one IO-cost model per
// UDF (§1: "the query optimizer needs to keep two cost estimators for each
// UDF"), persisted to a single stream so the optimizer's accumulated
// knowledge survives restarts.
//
// Both model families of this library serialize: self-tuning MLQ models
// (*core.MLQ, or *core.Publisher persisting its published snapshot) and
// static histograms (*histogram.Histogram).
package catalog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"mlq/internal/core"
	"mlq/internal/histogram"
)

// Entry holds one UDF's pair of cost models. Either slot may be nil.
type Entry struct {
	CPU core.Model
	IO  core.Model
}

// Catalog is an in-memory model catalog with stream persistence. It is not
// safe for concurrent use; wrap accesses with a lock in a multi-session
// server.
type Catalog struct {
	entries map[string]*Entry
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{entries: make(map[string]*Entry)}
}

// persistable verifies that a model is of a serializable concrete type. A
// *core.Publisher persists as its current published snapshot (an MLQ blob),
// so a concurrent feedback loop can be cataloged without stopping it.
func persistable(m core.Model) error {
	switch m.(type) {
	case nil, *core.MLQ, *core.Publisher, *histogram.Histogram:
		return nil
	default:
		return fmt.Errorf("catalog: model type %T is not serializable (want *core.MLQ, *core.Publisher or *histogram.Histogram)", m)
	}
}

// Put registers (or replaces) a UDF's models. Models must be persistable.
func (c *Catalog) Put(name string, cpu, io core.Model) error {
	if name == "" {
		return fmt.Errorf("catalog: UDF name must be non-empty")
	}
	if err := persistable(cpu); err != nil {
		return err
	}
	if err := persistable(io); err != nil {
		return err
	}
	c.entries[name] = &Entry{CPU: cpu, IO: io}
	return nil
}

// Get returns a UDF's entry.
func (c *Catalog) Get(name string) (*Entry, bool) {
	e, ok := c.entries[name]
	return e, ok
}

// Delete removes a UDF's entry, if present.
func (c *Catalog) Delete(name string) { delete(c.entries, name) }

// Len returns the number of registered UDFs.
func (c *Catalog) Len() int { return len(c.entries) }

// Names returns the registered UDF names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

const (
	catalogMagic   = 0x4d4c5143 // "MLQC"
	catalogVersion = 2          // CRC32-framed entries; v1 streams still load

	catalogVersionV1 = 1

	slotNil       = 0
	slotMLQ       = 1
	slotHistogram = 2

	// maxStream bounds how much of an untrusted stream Read buffers.
	maxStream = 1 << 30
	// maxModelSize bounds one serialized model blob.
	maxModelSize = 1 << 28
	// maxNameLen bounds one UDF name.
	maxNameLen = 4096
	// maxEntries bounds the header's entry count.
	maxEntries = 1 << 20
)

// entryMagic frames every v2 entry. Recovery resynchronizes on it after
// damage, so a corrupt entry costs only itself, not the rest of the stream.
var entryMagic = []byte("MQE2")

// encodeModel renders one model slot as (tag, length, blob).
func encodeModel(w io.Writer, m core.Model) error {
	var tag uint8
	var blob bytes.Buffer
	switch v := m.(type) {
	case nil:
		tag = slotNil
	case *core.MLQ:
		tag = slotMLQ
		if _, err := v.WriteTo(&blob); err != nil {
			return err
		}
	case *core.Publisher:
		// Persist the published snapshot: the same MLQ frame an unwrapped
		// model would write, so the entry decodes as *core.MLQ and can be
		// re-wrapped (or not) at load time. Callers wanting zero staleness
		// in the saved state should Flush first.
		tag = slotMLQ
		if _, err := v.Snapshot().WriteTo(&blob); err != nil {
			return err
		}
	case *histogram.Histogram:
		tag = slotHistogram
		if _, err := v.WriteTo(&blob); err != nil {
			return err
		}
	default:
		return fmt.Errorf("catalog: model type %T is not serializable", m)
	}
	if err := binary.Write(w, binary.LittleEndian, tag); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(blob.Len())); err != nil {
		return err
	}
	_, err := w.Write(blob.Bytes())
	return err
}

// decodeModel parses one model slot.
func decodeModel(r *bufio.Reader) (core.Model, error) {
	var tag uint8
	var size uint32
	if err := binary.Read(r, binary.LittleEndian, &tag); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
		return nil, err
	}
	if size > maxModelSize {
		return nil, fmt.Errorf("catalog: implausible model size %d", size)
	}
	blob := make([]byte, size)
	if _, err := io.ReadFull(r, blob); err != nil {
		return nil, err
	}
	switch tag {
	case slotNil:
		if size != 0 {
			return nil, fmt.Errorf("catalog: nil slot with %d payload bytes", size)
		}
		return nil, nil
	case slotMLQ:
		return core.ReadMLQ(bytes.NewReader(blob))
	case slotHistogram:
		return histogram.Read(bytes.NewReader(blob))
	default:
		return nil, fmt.Errorf("catalog: unknown model tag %d", tag)
	}
}

// WriteTo persists the whole catalog in the v2 format: a 12-byte header
// (magic, version, entry count) followed by one self-describing frame per
// entry — entry magic, payload length, CRC32 (IEEE) of the payload, payload.
// The whole stream is assembled in memory and issued as a single Write, so a
// failed write never leaves a half-written destination behind the caller's
// back. It implements io.WriterTo.
func (c *Catalog) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	write := func(vs ...interface{}) {
		for _, v := range vs {
			binary.Write(&buf, binary.LittleEndian, v) // bytes.Buffer never errors
		}
	}
	write(uint32(catalogMagic), uint32(catalogVersion), uint32(len(c.entries)))
	for _, name := range c.Names() {
		var payload bytes.Buffer
		binary.Write(&payload, binary.LittleEndian, uint32(len(name)))
		payload.WriteString(name)
		e := c.entries[name]
		if err := encodeModel(&payload, e.CPU); err != nil {
			return 0, err
		}
		if err := encodeModel(&payload, e.IO); err != nil {
			return 0, err
		}
		buf.Write(entryMagic)
		write(uint32(payload.Len()), crc32.ChecksumIEEE(payload.Bytes()))
		buf.Write(payload.Bytes())
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// Read loads a catalog previously written with WriteTo (either stream
// version). Damage in a v2 stream is contained per entry: Read salvages every
// intact entry and reports the rest in a *CorruptionError, returning BOTH the
// partial catalog and the error. Callers that can live with partial knowledge
// (a cost model catalog can — a dropped entry merely means re-learning one
// UDF) should check for *CorruptionError with errors.As before treating the
// load as failed.
func Read(r io.Reader) (*Catalog, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxStream+1))
	if err != nil {
		return nil, fmt.Errorf("catalog: reading stream: %w", err)
	}
	if len(data) > maxStream {
		return nil, fmt.Errorf("catalog: stream exceeds %d bytes", maxStream)
	}
	if len(data) < 12 {
		return nil, fmt.Errorf("catalog: stream too short for header (%d bytes)", len(data))
	}
	magic := binary.LittleEndian.Uint32(data[0:4])
	version := binary.LittleEndian.Uint32(data[4:8])
	count := binary.LittleEndian.Uint32(data[8:12])
	switch {
	case magic != catalogMagic:
		// A damaged header must not cost the whole catalog: v2 entries are
		// self-framing, so scan the entire stream for them. v1 streams and
		// plain garbage have no frames and keep the hard error.
		c, drops := scanEntries(data, -1)
		if c.Len() > 0 {
			drops = append([]string{"header (bad magic)"}, drops...)
			return c, &CorruptionError{Dropped: drops}
		}
		return nil, fmt.Errorf("catalog: bad magic %#x", magic)
	case version == catalogVersionV1:
		return readV1(data[12:], count)
	case version == catalogVersion:
		want := int64(count)
		if count > maxEntries {
			want = -1 // corrupt count: recover whatever is there
		}
		c, drops := scanEntries(data[12:], want)
		if len(drops) > 0 {
			return c, &CorruptionError{Dropped: drops}
		}
		return c, nil
	default:
		return nil, fmt.Errorf("catalog: unsupported version %d", version)
	}
}

// readV1 decodes the legacy unframed stream strictly: without per-entry CRCs
// there is no way to tell damage from drift, so any inconsistency fails the
// whole load.
func readV1(body []byte, count uint32) (*Catalog, error) {
	if count > maxEntries {
		return nil, fmt.Errorf("catalog: implausible entry count %d", count)
	}
	br := bufio.NewReader(bytes.NewReader(body))
	c := New()
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, err)
		}
		if nameLen == 0 || nameLen > maxNameLen {
			return nil, fmt.Errorf("catalog: entry %d: implausible name length %d", i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, err)
		}
		cpu, err := decodeModel(br)
		if err != nil {
			return nil, fmt.Errorf("catalog: entry %q cpu: %w", name, err)
		}
		ioModel, err := decodeModel(br)
		if err != nil {
			return nil, fmt.Errorf("catalog: entry %q io: %w", name, err)
		}
		c.entries[string(name)] = &Entry{CPU: cpu, IO: ioModel}
	}
	return c, nil
}
