package catalog

import (
	"bytes"
	"testing"

	"mlq/internal/core"
	"mlq/internal/geom"
	"mlq/internal/quadtree"
)

// FuzzRead feeds arbitrary bytes to the catalog decoder: it must never
// panic, and anything it accepts must be usable.
func FuzzRead(f *testing.F) {
	m, err := core.NewMLQ(quadtree.Config{Region: geom.UnitCube(2), MemoryLimit: 1843})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.Observe(geom.Point{float64(i%10) / 10, float64(i%7) / 7}, float64(i))
	}
	c := New()
	if err := c.Put("U", m, nil); err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := c.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:12])

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, name := range got.Names() {
			e, ok := got.Get(name)
			if !ok || e == nil {
				t.Fatal("Names/Get inconsistent after decode")
			}
			if e.CPU != nil {
				e.CPU.Predict(geom.Point{0.5, 0.5})
			}
		}
	})
}
