package catalog

import (
	"sync/atomic"

	"mlq/internal/telemetry"
)

// persistCounters are package-level because SaveFile/LoadFile are free
// functions: every catalog save and recovery in the process counts here,
// whatever path it targets. They are atomics so telemetry can read them from
// the exposition goroutine while saves run elsewhere.
var persistCounters struct {
	saves        atomic.Int64
	saveFailures atomic.Int64
	bakRotations atomic.Int64
	loads        atomic.Int64
	degraded     atomic.Int64
	restored     atomic.Int64
	dropped      atomic.Int64
}

// PersistStats is a snapshot of the process-wide persistence counters.
type PersistStats struct {
	// Saves counts successful SaveFile calls; SaveFailures the failed ones.
	Saves, SaveFailures int64
	// BakRotations counts primaries rotated to the .bak generation.
	BakRotations int64
	// Loads counts successful LoadFile calls; DegradedLoads the subset that
	// were anything other than a clean primary read.
	Loads, DegradedLoads int64
	// RestoredEntries and DroppedEntries total the per-load report lists.
	RestoredEntries, DroppedEntries int64
}

// Stats returns the current process-wide persistence counters.
func Stats() PersistStats {
	return PersistStats{
		Saves:           persistCounters.saves.Load(),
		SaveFailures:    persistCounters.saveFailures.Load(),
		BakRotations:    persistCounters.bakRotations.Load(),
		Loads:           persistCounters.loads.Load(),
		DegradedLoads:   persistCounters.degraded.Load(),
		RestoredEntries: persistCounters.restored.Load(),
		DroppedEntries:  persistCounters.dropped.Load(),
	}
}

// Instrument registers the persistence counters under mlq_catalog_* as
// pull-based metrics: the registry reads the package atomics at exposition
// time, so there is no publish step and no goroutine constraint.
func Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	if reg == nil {
		return
	}
	cf := func(name, help string, v *atomic.Int64) {
		reg.CounterFunc(name, help, func() float64 { return float64(v.Load()) }, labels...)
	}
	cf("mlq_catalog_saves_total", "successful crash-safe catalog saves", &persistCounters.saves)
	cf("mlq_catalog_save_failures_total", "catalog saves that failed and were rolled back", &persistCounters.saveFailures)
	cf("mlq_catalog_bak_rotations_total", "primary catalogs rotated to the .bak generation", &persistCounters.bakRotations)
	cf("mlq_catalog_loads_total", "successful catalog loads", &persistCounters.loads)
	cf("mlq_catalog_degraded_loads_total", "loads that fell back to the backup or salvaged a damaged primary", &persistCounters.degraded)
	cf("mlq_catalog_restored_entries_total", "entries recovered from the backup generation", &persistCounters.restored)
	cf("mlq_catalog_dropped_entries_total", "entries lost to corruption in both generations", &persistCounters.dropped)
}
