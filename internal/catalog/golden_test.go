package catalog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mlq/internal/core"
	"mlq/internal/geom"
	"mlq/internal/quadtree"
)

// The testdata catalogs were written by a one-shot generator (cmd/gengolden, removed after use) against the pre-arena
// (pointer-linked) quadtree: prearena.catalog is the second SaveFile
// generation and prearena.catalog.bak the first, both committed permanently.
// They prove that catalogs persisted before the arena refactor keep loading
// through the crash-safe loader, models intact. Do not regenerate them.

func copyGolden(t *testing.T, dir, name string) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "prearena.catalog"+filepath.Ext(name))
	if name == "prearena.catalog" {
		dst = filepath.Join(dir, "prearena.catalog")
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

func checkPrearenaModels(t *testing.T, c *Catalog, wantRange bool) {
	t.Helper()
	win, ok := c.Get("WIN")
	if !ok {
		t.Fatal("WIN entry missing")
	}
	cpu, okCPU := win.CPU.(*core.MLQ)
	ioM, okIO := win.IO.(*core.MLQ)
	if !okCPU || !okIO {
		t.Fatalf("WIN models decoded as %T/%T, want *core.MLQ", win.CPU, win.IO)
	}
	if cpu.Tree().Config().Strategy != quadtree.Eager || ioM.Tree().Config().Strategy != quadtree.Lazy {
		t.Error("WIN strategies wrong after decode")
	}
	if err := cpu.Tree().Validate(); err != nil {
		t.Errorf("WIN cpu tree invalid: %v", err)
	}
	if err := ioM.Tree().Validate(); err != nil {
		t.Errorf("WIN io tree invalid: %v", err)
	}
	if _, ok := cpu.Predict(geom.Point{4, 4, 4}); !ok {
		t.Error("WIN cpu model cannot predict after decode")
	}
	rng, haveRange := c.Get("RANGE")
	if haveRange != wantRange {
		t.Fatalf("RANGE present=%v, want %v", haveRange, wantRange)
	}
	if wantRange {
		if _, ok := rng.CPU.(*core.MLQ); !ok {
			t.Fatalf("RANGE cpu decoded as %T", rng.CPU)
		}
		if rng.IO != nil {
			t.Error("RANGE io slot should be nil")
		}
	}
}

func TestPrearenaCatalogLoads(t *testing.T) {
	dir := t.TempDir()
	path := copyGolden(t, dir, "prearena.catalog")
	copyGolden(t, dir, "prearena.catalog.bak")
	c, rep, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded() {
		t.Errorf("clean pre-arena primary loaded degraded: %+v", rep)
	}
	// Second generation: WIN plus RANGE.
	checkPrearenaModels(t, c, true)
}

func TestPrearenaBackupStillRecovers(t *testing.T) {
	// Destroy the primary: the loader must fall back to the pre-arena .bak
	// (the first generation, WIN only).
	dir := t.TempDir()
	path := filepath.Join(dir, "prearena.catalog")
	if err := os.WriteFile(path, []byte("garbage, not a catalog"), 0o644); err != nil {
		t.Fatal(err)
	}
	copyGolden(t, dir, "prearena.catalog.bak")
	c, rep, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Source != "backup" {
		t.Errorf("load source %q, want backup", rep.Source)
	}
	checkPrearenaModels(t, c, false)
}

func TestPrearenaCatalogRoundTripsByteIdentical(t *testing.T) {
	// Decoding pre-arena models into arena trees and re-encoding the catalog
	// must reproduce the stream byte for byte: entry order is sorted by
	// name, and each MLQ blob round-trips through the creation-order
	// invariant.
	raw, err := os.ReadFile(filepath.Join("testdata", "prearena.catalog"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatalf("re-encoded catalog (%d bytes) differs from pre-arena stream (%d bytes)", buf.Len(), len(raw))
	}
}

func TestPublisherPersistsAsMLQ(t *testing.T) {
	m, err := core.NewMLQ(quadtree.Config{Region: geom.UnitCube(2), MemoryLimit: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := core.NewPublisher(m, core.PublisherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for i := 0; i < 200; i++ {
		if err := pub.Observe(geom.Point{float64(i%10) / 10, 0.5}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	c := New()
	if err := c.Put("F", pub, nil); err != nil {
		t.Fatalf("publisher not persistable: %v", err)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := got.Get("F")
	if !ok {
		t.Fatal("entry missing after round trip")
	}
	mlq, ok := e.CPU.(*core.MLQ)
	if !ok {
		t.Fatalf("publisher entry decoded as %T, want *core.MLQ", e.CPU)
	}
	if mlq.Tree().Inserts() != 200 {
		t.Errorf("decoded tree has %d inserts, want 200 (flushed state)", mlq.Tree().Inserts())
	}
}
