package catalog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
)

// CorruptionError reports a partial catalog load: Read salvaged every intact
// entry and lists what it had to drop. Callers receive the salvaged catalog
// alongside this error.
type CorruptionError struct {
	// Dropped names what was lost — a UDF name where the damaged frame still
	// carried a readable one, otherwise a description of the region.
	Dropped []string
}

// Error implements error.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("catalog: recovered around %d damaged region(s): %s",
		len(e.Dropped), strings.Join(e.Dropped, "; "))
}

// frameHeader is entry magic + payload length + CRC32.
const frameHeader = 12

// scanEntries walks a v2 entry stream salvaging every intact frame. Damage is
// contained by resynchronizing on the next entry magic; each skipped region
// is described (by the entry's name when it survived) in the returned drop
// list. want is the header's entry count, or -1 when unknown; it only adds a
// truncation note when fewer regions than promised exist at all.
func scanEntries(data []byte, want int64) (*Catalog, []string) {
	c := New()
	var drops []string
	pos := 0
	for pos < len(data) {
		idx := bytes.Index(data[pos:], entryMagic)
		if idx < 0 {
			// No frame ahead: the tail is one damaged region.
			drops = append(drops, describeRegion(data[pos:], pos))
			break
		}
		if idx > 0 {
			// Garbage before the next frame — an entry whose own magic was
			// destroyed.
			drops = append(drops, describeRegion(data[pos:pos+idx], pos))
		}
		start := pos + idx
		name, entry, frameLen, err := parseFrame(data[start:])
		if err != nil {
			// Broken frame: drop it and resynchronize at the next magic.
			// (A magic-like byte pattern inside the broken frame's payload
			// may cause extra failed parses; each only shrinks the skipped
			// region, never an intact neighbor.)
			end := len(data)
			if next := bytes.Index(data[start+len(entryMagic):], entryMagic); next >= 0 {
				end = start + len(entryMagic) + next
			}
			drops = append(drops, describeRegion(data[start:end], start))
			pos = end
			continue
		}
		c.entries[name] = entry
		pos = start + frameLen
	}
	if want >= 0 {
		if missing := want - int64(c.Len()) - int64(len(drops)); missing > 0 {
			drops = append(drops, fmt.Sprintf("%d entr(ies) lost to truncation", missing))
		}
	}
	return c, drops
}

// parseFrame decodes one entry frame at the start of b, verifying length
// bounds and the payload CRC before trusting any of it.
func parseFrame(b []byte) (name string, e *Entry, frameLen int, err error) {
	if len(b) < frameHeader {
		return "", nil, 0, fmt.Errorf("catalog: truncated entry frame")
	}
	payloadLen := binary.LittleEndian.Uint32(b[4:8])
	sum := binary.LittleEndian.Uint32(b[8:12])
	if payloadLen > maxModelSize {
		return "", nil, 0, fmt.Errorf("catalog: implausible entry size %d", payloadLen)
	}
	if frameHeader+int(payloadLen) > len(b) {
		return "", nil, 0, fmt.Errorf("catalog: entry frame extends past the stream")
	}
	payload := b[frameHeader : frameHeader+int(payloadLen)]
	if crc32.ChecksumIEEE(payload) != sum {
		return "", nil, 0, fmt.Errorf("catalog: entry checksum mismatch")
	}
	name, e, err = decodeEntryPayload(payload)
	if err != nil {
		return "", nil, 0, err
	}
	return name, e, frameHeader + int(payloadLen), nil
}

// decodeEntryPayload parses a CRC-verified entry payload: name, CPU slot, IO
// slot, nothing else.
func decodeEntryPayload(payload []byte) (string, *Entry, error) {
	br := bufio.NewReader(bytes.NewReader(payload))
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return "", nil, fmt.Errorf("catalog: entry name length: %w", err)
	}
	if nameLen == 0 || nameLen > maxNameLen {
		return "", nil, fmt.Errorf("catalog: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return "", nil, fmt.Errorf("catalog: entry name: %w", err)
	}
	cpu, err := decodeModel(br)
	if err != nil {
		return "", nil, fmt.Errorf("catalog: entry %q cpu: %w", name, err)
	}
	ioModel, err := decodeModel(br)
	if err != nil {
		return "", nil, fmt.Errorf("catalog: entry %q io: %w", name, err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return "", nil, fmt.Errorf("catalog: entry %q has trailing bytes", name)
	}
	return string(name), &Entry{CPU: cpu, IO: ioModel}, nil
}

// describeRegion labels one damaged region for the drop list. The entry's
// name sits right after the frame header, so it usually survives payload
// damage (a CRC can fail because of a single flipped cost byte); when the
// name itself is unreadable the region is identified by offset.
func describeRegion(region []byte, off int) string {
	if len(region) >= frameHeader+4 {
		nameLen := binary.LittleEndian.Uint32(region[frameHeader : frameHeader+4])
		if nameLen > 0 && nameLen <= maxNameLen && frameHeader+4+int(nameLen) <= len(region) {
			name := region[frameHeader+4 : frameHeader+4+int(nameLen)]
			if plausibleName(name) {
				return string(name)
			}
		}
	}
	return fmt.Sprintf("unrecognizable entry at offset %d", off)
}

// plausibleName filters the best-effort name guess to printable ASCII so a
// random byte soup is never reported as a UDF name.
func plausibleName(b []byte) bool {
	for _, c := range b {
		if c < 0x20 || c > 0x7e {
			return false
		}
	}
	return len(b) > 0
}
