package catalog

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"mlq/internal/faults"
)

func catalogWith(t *testing.T, names ...string) *Catalog {
	t.Helper()
	c := New()
	for _, name := range names {
		if err := c.Put(name, trainedMLQ(t), nil); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.cat")
	c := catalogWith(t, "WIN", "KNN")
	if err := SaveFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, rep, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded() {
		t.Errorf("clean load reported degraded: %+v", rep)
	}
	if got.Len() != 2 {
		t.Errorf("Len = %d", got.Len())
	}
}

func TestLoadFileMissing(t *testing.T) {
	_, _, err := LoadFile(filepath.Join(t.TempDir(), "nope.cat"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

func TestSaveRotatesBackup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.cat")
	if err := SaveFile(path, catalogWith(t, "OLD")); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(path, catalogWith(t, "NEW")); err != nil {
		t.Fatal(err)
	}
	bak, err := readCatalogFile(path + BackupSuffix)
	if err != nil {
		t.Fatalf("backup unreadable: %v", err)
	}
	if _, ok := bak.Get("OLD"); !ok {
		t.Error("backup does not hold the previous generation")
	}
	cur, _, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Get("NEW"); !ok {
		t.Error("primary does not hold the new generation")
	}
}

// TestTornSaveNeverLosesTheCatalog is the crash-safety acceptance test: a
// SaveFile interrupted by a torn write (in either mode the injector produces)
// must never leave the catalog unloadable — either the old primary or the
// .bak survives intact.
func TestTornSaveNeverLosesTheCatalog(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "models.cat")
		if err := SaveFile(path, catalogWith(t, "GEN1")); err != nil {
			t.Fatal(err)
		}
		inj := faults.New(seed)
		inj.Enable(faults.CatalogTear, faults.SiteConfig{Probability: 1})
		saveErr := SaveFile(path, catalogWith(t, "GEN2"),
			WithWriterWrapper(inj.TearWriter))

		got, rep, err := LoadFile(path)
		if err != nil {
			t.Fatalf("seed %d: catalog lost after torn save: %v", seed, err)
		}
		_, hasGen1 := got.Get("GEN1")
		_, hasGen2 := got.Get("GEN2")
		if !hasGen1 && !hasGen2 {
			t.Fatalf("seed %d: neither generation survived (report %+v)", seed, rep)
		}
		if saveErr == nil && !hasGen2 {
			// A save that reported success must actually be durable... unless
			// the tear was a silent bit-flip, in which case LoadFile falls
			// back. Either generation is acceptable; full loss is not.
			if !hasGen1 {
				t.Fatalf("seed %d: successful save lost both generations", seed)
			}
		}
	}
}

func TestLoadMergesBackupIntoDamagedPrimary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "models.cat")
	// Backup generation holds WIN+KNN; primary holds WIN+KNN+PROX but its
	// KNN frame gets damaged on disk.
	if err := SaveFile(path, catalogWith(t, "WIN", "KNN")); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(path, catalogWith(t, "WIN", "KNN", "PROX")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damaged := false
	pos := 12
	for pos+frameHeader < len(raw) {
		payloadLen := int(uint32(raw[pos+4]) | uint32(raw[pos+5])<<8 | uint32(raw[pos+6])<<16 | uint32(raw[pos+7])<<24)
		name := string(raw[pos+frameHeader+4 : pos+frameHeader+4+3])
		if name == "KNN" {
			raw[pos+frameHeader+30] ^= 0x40 // flip a payload bit
			damaged = true
			break
		}
		pos += frameHeader + payloadLen
	}
	if !damaged {
		t.Fatal("KNN frame not found")
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	got, rep, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Source != "primary+backup" {
		t.Errorf("Source = %q, want primary+backup", rep.Source)
	}
	for _, name := range []string{"WIN", "KNN", "PROX"} {
		if _, ok := got.Get(name); !ok {
			t.Errorf("entry %s missing after merge", name)
		}
	}
	if len(rep.Restored) != 1 || rep.Restored[0] != "KNN" {
		t.Errorf("Restored = %v, want [KNN]", rep.Restored)
	}
	if len(rep.Dropped) != 0 {
		t.Errorf("Dropped = %v, want none (backup covered the damage)", rep.Dropped)
	}
}

func TestLoadFallsBackToBackupWhenPrimaryDestroyed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "models.cat")
	if err := SaveFile(path, catalogWith(t, "WIN")); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(path, catalogWith(t, "WIN", "KNN")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("total garbage, no frames"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, rep, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Source != "backup" {
		t.Errorf("Source = %q, want backup", rep.Source)
	}
	if _, ok := got.Get("WIN"); !ok {
		t.Error("backup entry lost")
	}
}

func TestWriterWrapperTransparentWhenIdle(t *testing.T) {
	// An injector whose CatalogTear site never fires must leave SaveFile
	// byte-identical to an unwrapped save.
	dir := t.TempDir()
	c := catalogWith(t, "WIN", "KNN")
	plain := filepath.Join(dir, "plain.cat")
	wrapped := filepath.Join(dir, "wrapped.cat")
	if err := SaveFile(plain, c); err != nil {
		t.Fatal(err)
	}
	inj := faults.New(1)
	inj.Enable(faults.CatalogTear, faults.SiteConfig{Probability: 0})
	if err := SaveFile(wrapped, c, WithWriterWrapper(inj.TearWriter)); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(plain)
	b, _ := os.ReadFile(wrapped)
	if !bytes.Equal(a, b) {
		t.Error("idle injector perturbed the saved stream")
	}
}
