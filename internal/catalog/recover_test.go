package catalog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"mlq/internal/core"
	"mlq/internal/geom"
	"mlq/internal/quadtree"
)

// fourEntryCatalog builds a catalog with four distinct entries and returns it
// with its serialized v2 stream.
func fourEntryCatalog(t *testing.T) (*Catalog, []byte) {
	t.Helper()
	c := New()
	for _, name := range []string{"KNN", "PROX", "SIMPLE", "WIN"} {
		if err := c.Put(name, trainedMLQ(t), nil); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return c, buf.Bytes()
}

// frameOffsets locates every entry frame in a v2 stream.
func frameOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var offs []int
	pos := 12
	for pos < len(data) {
		if !bytes.HasPrefix(data[pos:], entryMagic) {
			t.Fatalf("no entry magic at offset %d", pos)
		}
		offs = append(offs, pos)
		payloadLen := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
		pos += frameHeader + int(payloadLen)
	}
	return offs
}

func readBytes(t *testing.T, data []byte) (*Catalog, error) {
	t.Helper()
	return Read(bytes.NewReader(data))
}

// TestRecoverSingleCorruptEntry is the headline acceptance test: corrupt any
// single entry of a 4-entry stream — payload bit-flip, CRC flip, oversized
// length prefix, destroyed frame magic — and Read must recover the other
// three and name the dropped one.
func TestRecoverSingleCorruptEntry(t *testing.T) {
	orig, good := fourEntryCatalog(t)
	offs := frameOffsets(t, good)
	names := orig.Names() // KNN, PROX, SIMPLE, WIN — same order as the stream

	corruptions := []struct {
		kind string
		do   func(b []byte, off int)
	}{
		{"payload bit-flip", func(b []byte, off int) { b[off+frameHeader+20] ^= 0x10 }},
		{"crc flip", func(b []byte, off int) { b[off+8] ^= 0xff }},
		{"oversized length prefix", func(b []byte, off int) {
			binary.LittleEndian.PutUint32(b[off+4:off+8], 0xffffffff)
		}},
		{"frame magic destroyed", func(b []byte, off int) { copy(b[off:off+4], "XXXX") }},
	}
	for _, corr := range corruptions {
		for i, off := range offs {
			t.Run(fmt.Sprintf("%s/entry%d", corr.kind, i), func(t *testing.T) {
				b := append([]byte(nil), good...)
				corr.do(b, off)
				got, err := readBytes(t, b)
				var ce *CorruptionError
				if !errors.As(err, &ce) {
					t.Fatalf("err = %v, want *CorruptionError", err)
				}
				if got == nil || got.Len() != 3 {
					t.Fatalf("salvaged %v entries, want 3", got.Len())
				}
				for j, name := range names {
					if _, ok := got.Get(name); ok == (j == i) {
						t.Errorf("entry %s present=%v after corrupting entry %d", name, ok, i)
					}
				}
				// The dropped entry must be named. Oversized-length and
				// magic damage leave the name bytes intact in the region;
				// so does a CRC/payload flip elsewhere in the frame.
				found := false
				for _, d := range ce.Dropped {
					if d == names[i] {
						found = true
					}
				}
				if !found {
					t.Errorf("dropped list %v does not name %s", ce.Dropped, names[i])
				}
			})
		}
	}
}

func TestRecoverTruncatedStream(t *testing.T) {
	_, good := fourEntryCatalog(t)
	offs := frameOffsets(t, good)
	// Cut mid-way through the third entry: the first two survive.
	cut := offs[2] + frameHeader + 5
	got, err := readBytes(t, good[:cut])
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptionError", err)
	}
	if got.Len() != 2 {
		t.Fatalf("salvaged %d entries, want 2", got.Len())
	}
	for _, name := range []string{"KNN", "PROX"} {
		if _, ok := got.Get(name); !ok {
			t.Errorf("entry %s lost", name)
		}
	}
	if len(ce.Dropped) == 0 {
		t.Error("truncation not reported")
	}
}

func TestRecoverHeaderDamage(t *testing.T) {
	_, good := fourEntryCatalog(t)
	b := append([]byte(nil), good...)
	b[1] ^= 0xff // header magic
	got, err := readBytes(t, b)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptionError", err)
	}
	if got.Len() != 4 {
		t.Errorf("salvaged %d entries after header damage, want all 4", got.Len())
	}
}

func TestRecoverEverythingDamaged(t *testing.T) {
	// All frames destroyed: Read must fail outright, not hand back an empty
	// catalog as if the file were fine.
	_, good := fourEntryCatalog(t)
	b := append([]byte(nil), good...)
	for _, off := range frameOffsets(t, good) {
		b[off+8] ^= 0xff // break every CRC
	}
	got, err := readBytes(t, b)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptionError", err)
	}
	if got.Len() != 0 || len(ce.Dropped) != 4 {
		t.Errorf("salvaged %d, dropped %d — want 0 and 4", got.Len(), len(ce.Dropped))
	}
}

func TestReadV1Stream(t *testing.T) {
	// Legacy unframed catalogs (version 1) must still load.
	m := trainedMLQ(t)
	var buf bytes.Buffer
	le := binary.LittleEndian
	binary.Write(&buf, le, uint32(catalogMagic))
	binary.Write(&buf, le, uint32(catalogVersionV1))
	binary.Write(&buf, le, uint32(1))
	binary.Write(&buf, le, uint32(3))
	buf.WriteString("WIN")
	if err := encodeModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	if err := encodeModel(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := readBytes(t, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	e, ok := got.Get("WIN")
	if !ok || e.CPU == nil || e.IO != nil {
		t.Fatal("v1 entry mangled")
	}
	p := geom.Point{42, 17}
	a, _ := m.Predict(p)
	b, _ := e.CPU.Predict(p)
	if a != b {
		t.Errorf("v1 prediction diverged: %g vs %g", a, b)
	}
	// v1 has no frames: damage stays a hard error, not a silent empty load.
	raw := buf.Bytes()
	raw[20] ^= 0xff
	if _, err := readBytes(t, raw); err == nil {
		t.Error("corrupt v1 stream accepted")
	}
}

// FuzzRecover flips one bit anywhere in a valid 3-entry v2 stream: Read must
// never panic, must pair any CorruptionError with a usable salvaged catalog,
// and every salvaged entry must answer predictions.
func FuzzRecover(f *testing.F) {
	m, err := core.NewMLQ(quadtree.Config{Region: geom.UnitCube(2), MemoryLimit: 1843})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		m.Observe(geom.Point{float64(i%10) / 10, float64(i%7) / 7}, float64(i%31))
	}
	c := New()
	for _, name := range []string{"A", "B", "C"} {
		if err := c.Put(name, m, nil); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(uint32(0), uint8(0))
	f.Add(uint32(4), uint8(1))  // version field
	f.Add(uint32(12), uint8(7)) // first entry magic
	f.Add(uint32(20), uint8(3)) // first entry CRC
	f.Add(uint32(len(valid)-1), uint8(2))
	f.Fuzz(func(t *testing.T, off uint32, bit uint8) {
		data := append([]byte(nil), valid...)
		data[int(off)%len(data)] ^= 1 << (bit % 8)
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			var ce *CorruptionError
			if errors.As(err, &ce) {
				if got == nil {
					t.Fatal("CorruptionError without salvaged catalog")
				}
				if len(ce.Dropped) == 0 && got.Len() >= 3 {
					t.Fatal("CorruptionError with nothing dropped and nothing missing")
				}
			} else if got != nil {
				t.Fatalf("hard error %v paired with a catalog", err)
			}
		}
		if got == nil {
			return
		}
		for _, name := range got.Names() {
			e, ok := got.Get(name)
			if !ok || e == nil {
				t.Fatal("Names/Get inconsistent after recovery")
			}
			if e.CPU != nil {
				e.CPU.Predict(geom.Point{0.5, 0.5})
			}
		}
	})
}
