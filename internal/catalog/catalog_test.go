package catalog

import (
	"bytes"
	"testing"

	"mlq/internal/core"
	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/histogram"
	"mlq/internal/quadtree"
)

func trainedMLQ(t *testing.T) *core.MLQ {
	t.Helper()
	m, err := core.NewMLQ(quadtree.Config{
		Region:      geomtest.MustRect(geom.Point{0, 0}, geom.Point{100, 100}),
		MemoryLimit: 1843,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		m.Observe(geom.Point{float64(i % 100), float64((i * 13) % 100)}, float64(i%77))
	}
	return m
}

func trainedSH(t *testing.T) *histogram.Histogram {
	t.Helper()
	h, err := histogram.Train(histogram.EquiWidth, histogram.Config{
		Region: geomtest.MustRect(geom.Point{0, 0}, geom.Point{100, 100}),
	}, []histogram.Sample{
		{Point: geom.Point{10, 10}, Value: 5},
		{Point: geom.Point{90, 90}, Value: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

type fakeModel struct{}

func (fakeModel) Predict(geom.Point) (float64, bool) { return 0, false }
func (fakeModel) Observe(geom.Point, float64) error  { return nil }
func (fakeModel) Name() string                       { return "fake" }

func TestPutValidation(t *testing.T) {
	c := New()
	if err := c.Put("", trainedMLQ(t), nil); err == nil {
		t.Error("empty name accepted")
	}
	if err := c.Put("f", fakeModel{}, nil); err == nil {
		t.Error("unserializable model accepted")
	}
	if err := c.Put("f", nil, fakeModel{}); err == nil {
		t.Error("unserializable io model accepted")
	}
}

func TestCatalogCRUD(t *testing.T) {
	c := New()
	if err := c.Put("WIN", trainedMLQ(t), trainedMLQ(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("SIMPLE", trainedSH(t), nil); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "SIMPLE" || names[1] != "WIN" {
		t.Errorf("Names = %v", names)
	}
	e, ok := c.Get("WIN")
	if !ok || e.CPU == nil || e.IO == nil {
		t.Fatal("Get(WIN) broken")
	}
	if _, ok := c.Get("NOPE"); ok {
		t.Error("missing entry found")
	}
	c.Delete("WIN")
	if c.Len() != 1 {
		t.Error("Delete failed")
	}
	c.Delete("WIN") // idempotent
}

func TestCatalogRoundTrip(t *testing.T) {
	c := New()
	mlqCPU := trainedMLQ(t)
	mlqIO := trainedMLQ(t)
	sh := trainedSH(t)
	if err := c.Put("WIN", mlqCPU, mlqIO); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("SIMPLE", sh, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d after reload", got.Len())
	}
	win, ok := got.Get("WIN")
	if !ok {
		t.Fatal("WIN lost")
	}
	p := geom.Point{42, 17}
	a, _ := mlqCPU.Predict(p)
	b, _ := win.CPU.Predict(p)
	if a != b {
		t.Errorf("WIN cpu prediction diverged: %g vs %g", a, b)
	}
	if win.CPU.Name() != "MLQ-E" {
		t.Errorf("cpu model name %q", win.CPU.Name())
	}
	simple, _ := got.Get("SIMPLE")
	if simple.IO != nil {
		t.Error("nil IO slot became non-nil")
	}
	if simple.CPU.Name() != "SH-W" {
		t.Errorf("histogram slot name %q", simple.CPU.Name())
	}
	sp, _ := sh.Predict(geom.Point{10, 10})
	gp, _ := simple.CPU.Predict(geom.Point{10, 10})
	if sp != gp {
		t.Errorf("histogram prediction diverged: %g vs %g", sp, gp)
	}
}

func TestCatalogEmptyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Error("empty catalog grew entries")
	}
}

func TestReadRejectsCorruptCatalog(t *testing.T) {
	c := New()
	if err := c.Put("X", trainedMLQ(t), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] ^= 0xff
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[4] = 9
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Error("bad version accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 8, 14, len(good) / 2, len(good) - 1} {
			if _, err := Read(bytes.NewReader(good[:cut])); err == nil {
				t.Errorf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("garbage", func(t *testing.T) {
		if _, err := Read(bytes.NewReader([]byte("hello world, not a catalog"))); err == nil {
			t.Error("garbage accepted")
		}
	})
}
