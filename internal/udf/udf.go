// Package udf defines the common shape of an instrumented user-defined
// function: something the experiment harness can execute at a point of its
// model-variable space and get back measured CPU and disk-IO costs. The
// text-search and spatial-search engines expose their six UDFs through this
// interface, mirroring the paper's six "real" UDFs.
package udf

import (
	"fmt"
	"math"

	"mlq/internal/geom"
)

// UDF is one instrumented user-defined function.
type UDF interface {
	// Name returns the paper's label for the UDF
	// (SIMPLE, THRESH, PROX, KNN, WIN, RANGE).
	Name() string
	// Region is the UDF's model-variable space: the domain the cost
	// models partition. Each coordinate of a query point is one model
	// variable (§3).
	Region() geom.Rect
	// Execute runs the UDF for the invocation described by the model
	// point p and returns its measured execution costs: CPU in abstract
	// work units (deterministic, reproducible) and IO in physical page
	// reads (noisy: it depends on the buffer-cache state). A non-nil
	// error means the execution failed (e.g. an unreadable index page)
	// and produced no costs; a production engine treats that as a failed
	// predicate evaluation, never as a reason to crash.
	Execute(p geom.Point) (cpu, io float64, err error)
}

// CheckCosts validates the measured costs of one execution against the
// finite-cost invariant: the SSE/SSEG bookkeeping of §4.2 corrupts silently
// once a NaN or Inf reaches a model, so every Execute implementation guards
// its return path with this check and reports a failed measurement as an
// error instead.
func CheckCosts(cpu, io float64) error {
	if math.IsNaN(cpu) || math.IsInf(cpu, 0) || cpu < 0 {
		return fmt.Errorf("udf: measured CPU cost %g is not a finite non-negative value", cpu)
	}
	if math.IsNaN(io) || math.IsInf(io, 0) || io < 0 {
		return fmt.Errorf("udf: measured IO cost %g is not a finite non-negative value", io)
	}
	return nil
}
