package synthetic

import (
	"math"
	"math/rand"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{NumPeaks: -1}); err == nil {
		t.Error("negative NumPeaks accepted")
	}
	if _, err := Generate(Config{MaxCost: -5}); err == nil {
		t.Error("negative MaxCost accepted")
	}
	if _, err := Generate(Config{DecayFraction: 2}); err == nil {
		t.Error("DecayFraction > 1 accepted")
	}
}

func TestGenerateDefaults(t *testing.T) {
	s, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Region().Dims() != 4 {
		t.Errorf("default dims = %d, want 4", s.Region().Dims())
	}
	if len(s.Peaks()) != 50 {
		t.Errorf("default peaks = %d, want 50", len(s.Peaks()))
	}
	if s.MaxCost() != 10000 {
		t.Errorf("default MaxCost = %g", s.MaxCost())
	}
	wantD := 0.1 * s.Region().Diagonal()
	if math.Abs(s.DecayRadius()-wantD) > 1e-9 {
		t.Errorf("DecayRadius = %g, want %g", s.DecayRadius(), wantD)
	}
}

func TestCostAtPeakAndBeyondD(t *testing.T) {
	s, err := Generate(Config{Seed: 7, NumPeaks: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, pk := range s.Peaks() {
		got := s.Cost(pk.Center)
		// At a peak's own center the cost is at least that peak's height
		// (another overlapping peak can only raise the max).
		if got < pk.Height-1e-9 {
			t.Errorf("peak %d: cost %g below own height %g", i, got, pk.Height)
		}
	}
	// Rank-1 peak attains exactly MaxCost unless overshadowed (it cannot
	// be, since it is the tallest).
	if got := s.Cost(s.Peaks()[0].Center); math.Abs(got-10000) > 1e-9 {
		t.Errorf("tallest peak cost = %g, want 10000", got)
	}
}

func TestCostZeroFarFromAllPeaks(t *testing.T) {
	// A single peak in a corner: the opposite corner is ~1 diagonal away,
	// far beyond D = 0.1 diagonal.
	region := geomtest.MustRect(geom.Point{0, 0}, geom.Point{100, 100})
	s, err := Generate(Config{Region: region, NumPeaks: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.peaks = []Peak{{Center: geom.Point{0, 0}, Height: 10000, Decay: DecayLinear}}
	if got := s.Cost(geom.Point{99, 99}); got != 0 {
		t.Errorf("cost far from peak = %g, want 0", got)
	}
}

func TestZipfHeights(t *testing.T) {
	s, err := Generate(Config{Seed: 3, NumPeaks: 4, ZipfS: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10000, 5000, 10000.0 / 3, 2500}
	for i, pk := range s.Peaks() {
		if math.Abs(pk.Height-want[i]) > 1e-9 {
			t.Errorf("peak %d height = %g, want %g", i, pk.Height, want[i])
		}
	}
}

func TestDecayShapes(t *testing.T) {
	const sigma = 0.2
	for k := DecayKind(0); k < numDecayKinds; k++ {
		if got := k.shape(0, sigma); math.Abs(got-1) > 1e-12 {
			t.Errorf("%v: g(0) = %g, want 1", k, got)
		}
		if got := k.shape(1, sigma); got != 0 {
			t.Errorf("%v: g(1) = %g, want 0", k, got)
		}
		if got := k.shape(1.5, sigma); got != 0 {
			t.Errorf("%v: g(1.5) = %g, want 0", k, got)
		}
		// Monotone non-increasing on [0, 1].
		prev := math.Inf(1)
		for u := 0.0; u <= 1.0; u += 0.01 {
			g := k.shape(u, sigma)
			if g > prev+1e-12 {
				t.Errorf("%v: shape increased at u=%g", k, u)
				break
			}
			if g < 0 {
				t.Errorf("%v: shape negative at u=%g", k, u)
				break
			}
			prev = g
		}
	}
}

func TestDecayKindString(t *testing.T) {
	names := map[DecayKind]string{
		DecayUniform: "uniform", DecayLinear: "linear", DecayGaussian: "gaussian",
		DecayLog2: "log2", DecayQuadratic: "quadratic",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if DecayKind(99).String() != "DecayKind(99)" {
		t.Error("unknown kind should render value")
	}
}

func TestSurfaceDeterministic(t *testing.T) {
	a, _ := Generate(Config{Seed: 5, NumPeaks: 20})
	b, _ := Generate(Config{Seed: 5, NumPeaks: 20})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		p := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
		if a.Cost(p) != b.Cost(p) {
			t.Fatal("same seed produced different surfaces")
		}
	}
	c, _ := Generate(Config{Seed: 6, NumPeaks: 20})
	same := true
	for i := 0; i < 100; i++ {
		p := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
		if a.Cost(p) != c.Cost(p) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical surfaces")
	}
}

func TestCostBoundedByMax(t *testing.T) {
	s, _ := Generate(Config{Seed: 8, NumPeaks: 100})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		p := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
		c := s.Cost(p)
		if c < 0 || c > s.MaxCost() {
			t.Fatalf("cost %g outside [0, %g]", c, s.MaxCost())
		}
	}
}

func TestNoisyValidation(t *testing.T) {
	s, _ := Generate(Config{Seed: 1, NumPeaks: 5})
	if _, err := NewNoisy(s, -0.1, 1); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := NewNoisy(s, 1.1, 1); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestNoisyZeroProbabilityIsExact(t *testing.T) {
	s, _ := Generate(Config{Seed: 2, NumPeaks: 10})
	n, err := NewNoisy(s, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		p := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
		if n.Cost(p) != s.Cost(p) {
			t.Fatal("p=0 noise changed a cost")
		}
		if n.TrueCost(p) != s.Cost(p) {
			t.Fatal("TrueCost diverged from inner surface")
		}
	}
	if n.MaxCost() != s.MaxCost() || n.Region().Dims() != s.Region().Dims() {
		t.Error("Noisy must forward Region/MaxCost")
	}
}

func TestNoisyCorruptionRate(t *testing.T) {
	s, _ := Generate(Config{Seed: 2, NumPeaks: 10})
	n, _ := NewNoisy(s, 0.3, 5)
	rng := rand.New(rand.NewSource(6))
	corrupted, nonzero := 0, 0
	var obsSum, trueSum float64
	const trials = 60000
	for i := 0; i < trials; i++ {
		p := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
		truth := s.Cost(p)
		obs := n.Cost(p)
		obsSum += obs
		trueSum += truth
		if truth == 0 {
			continue // scale-preserving noise cannot corrupt a zero cost
		}
		nonzero++
		if obs != truth {
			corrupted++
		}
	}
	if nonzero == 0 {
		t.Fatal("no nonzero-cost sample points")
	}
	rate := float64(corrupted) / float64(nonzero)
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("corruption rate %g, want ~0.3", rate)
	}
	// The noise is mean-preserving: average observed cost stays close to
	// the average true cost.
	if obsSum < trueSum*0.93 || obsSum > trueSum*1.07 {
		t.Errorf("observed mean drifted: sum %g vs true %g", obsSum, trueSum)
	}
}

func TestZeroNumPeaksMeansDefault(t *testing.T) {
	s, err := Generate(Config{Seed: 1, NumPeaks: 0, MaxCost: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Peaks()) != 50 {
		t.Errorf("NumPeaks=0 generated %d peaks, want the default 50", len(s.Peaks()))
	}
}
