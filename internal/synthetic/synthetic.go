// Package synthetic generates the paper's synthetic UDFs/datasets (§5.1):
// cost surfaces built from N randomly placed peaks whose heights follow a
// Zipf distribution and whose costs decay to zero with Euclidean distance
// from the peak under one of five randomly assigned decay functions —
// uniform, linear, Gaussian, log base 2, and quadratic — "reflecting the
// various computational complexities common to UDFs".
//
// It also provides the noise wrapper of Experiment 3: with a configurable
// probability a query observes a random cost instead of the true one.
package synthetic

import (
	"fmt"
	"math"
	"math/rand"

	"mlq/internal/dist"
	"mlq/internal/geom"
)

// CostFunc is a deterministic UDF cost surface: the "true" execution cost at
// any point of the model-variable space.
type CostFunc interface {
	// Cost returns the execution cost at p.
	Cost(p geom.Point) float64
	// Region returns the surface's domain.
	Region() geom.Rect
	// MaxCost returns the largest cost the surface can produce.
	MaxCost() float64
}

// DecayKind names one of the paper's five decay shapes.
type DecayKind int

// The five decay functions of §5.1. Each is normalized so the contribution
// is the full peak height at distance 0 and zero at distance D.
const (
	DecayUniform DecayKind = iota
	DecayLinear
	DecayGaussian
	DecayLog2
	DecayQuadratic
	numDecayKinds
)

// String returns a short label for the decay shape.
func (k DecayKind) String() string {
	switch k {
	case DecayUniform:
		return "uniform"
	case DecayLinear:
		return "linear"
	case DecayGaussian:
		return "gaussian"
	case DecayLog2:
		return "log2"
	case DecayQuadratic:
		return "quadratic"
	default:
		return fmt.Sprintf("DecayKind(%d)", int(k))
	}
}

// shape evaluates the normalized decay g(u) for u = dist/D in [0, 1],
// with g(0) = 1 and g(1) = 0 (except uniform, a step function).
func (k DecayKind) shape(u, sigma float64) float64 {
	if u >= 1 {
		return 0
	}
	switch k {
	case DecayUniform:
		return 1
	case DecayLinear:
		return 1 - u
	case DecayGaussian:
		// Shifted and rescaled so the tail reaches exactly zero at u=1.
		g := math.Exp(-u * u / (2 * sigma * sigma))
		g1 := math.Exp(-1 / (2 * sigma * sigma))
		return (g - g1) / (1 - g1)
	case DecayLog2:
		return math.Log2(2 - u)
	case DecayQuadratic:
		return 1 - u*u
	default:
		return 0
	}
}

// Peak is one extreme point of the synthetic surface.
type Peak struct {
	Center geom.Point
	Height float64
	Decay  DecayKind
}

// Config parameterizes surface generation. Zero fields default to the
// paper's values.
type Config struct {
	// Region is the data space. Default: [0,1000)^4 (the paper's d=4,
	// 0–1000 ranges).
	Region geom.Rect
	// NumPeaks is N, the number of peaks. Default 50.
	NumPeaks int
	// MaxCost is the height of the tallest (rank-1) peak. Default 10000.
	MaxCost float64
	// ZipfS is the Zipf exponent for peak heights. Default 1.
	ZipfS float64
	// DecayFraction sets D as a fraction of the space diagonal.
	// Default 0.1 (the paper's 10%).
	DecayFraction float64
	// GaussianSigma is the Gaussian decay's standard deviation in
	// normalized distance units. Default 0.2.
	GaussianSigma float64
	// Seed drives all random choices.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Region.Dims() == 0 {
		// Built literally rather than via NewRect: the bounds are
		// compile-time constants with 0 < 1000 in every dimension, so no
		// error path exists.
		c.Region = geom.Rect{
			Lo: geom.Point{0, 0, 0, 0}, Hi: geom.Point{1000, 1000, 1000, 1000}}
	}
	if c.NumPeaks == 0 {
		c.NumPeaks = 50
	}
	//lint:ignore floatguard exact zero is the documented unset-field sentinel
	if c.MaxCost == 0 {
		c.MaxCost = 10000
	}
	//lint:ignore floatguard exact zero is the documented unset-field sentinel
	if c.ZipfS == 0 {
		c.ZipfS = 1
	}
	//lint:ignore floatguard exact zero is the documented unset-field sentinel
	if c.DecayFraction == 0 {
		c.DecayFraction = 0.1
	}
	//lint:ignore floatguard exact zero is the documented unset-field sentinel
	if c.GaussianSigma == 0 {
		c.GaussianSigma = 0.2
	}
	return c
}

// Surface is a generated synthetic UDF cost surface. The cost at a point is
// the maximum contribution over all peaks (so the rank-1 peak attains
// exactly MaxCost), and zero outside every decay region.
type Surface struct {
	region  geom.Rect
	peaks   []Peak
	d       float64 // decay radius
	sigma   float64
	maxCost float64
}

var _ CostFunc = (*Surface)(nil)

// Generate builds a surface per the paper's two-step recipe: draw N peak
// locations uniformly, assign Zipf-distributed heights (rank i gets
// MaxCost/i^s), and attach a uniformly random decay function to each peak.
func Generate(cfg Config) (*Surface, error) {
	cfg = cfg.withDefaults()
	if cfg.NumPeaks < 0 {
		return nil, fmt.Errorf("synthetic: NumPeaks must be >= 0, got %d", cfg.NumPeaks)
	}
	if cfg.MaxCost <= 0 || math.IsNaN(cfg.MaxCost) {
		return nil, fmt.Errorf("synthetic: MaxCost must be positive, got %g", cfg.MaxCost)
	}
	if cfg.DecayFraction <= 0 || cfg.DecayFraction > 1 {
		return nil, fmt.Errorf("synthetic: DecayFraction must be in (0,1], got %g", cfg.DecayFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	z, err := dist.NewZipf(max(cfg.NumPeaks, 1), cfg.ZipfS)
	if err != nil {
		return nil, err
	}
	s := &Surface{
		region:  cfg.Region.Clone(),
		d:       cfg.DecayFraction * cfg.Region.Diagonal(),
		sigma:   cfg.GaussianSigma,
		maxCost: cfg.MaxCost,
	}
	for i := 0; i < cfg.NumPeaks; i++ {
		center := make(geom.Point, cfg.Region.Dims())
		for j := range center {
			center[j] = cfg.Region.Lo[j] + rng.Float64()*(cfg.Region.Hi[j]-cfg.Region.Lo[j])
		}
		s.peaks = append(s.peaks, Peak{
			Center: center,
			Height: z.Height(i+1, cfg.MaxCost),
			Decay:  DecayKind(rng.Intn(int(numDecayKinds))),
		})
	}
	return s, nil
}

// Cost implements CostFunc: the maximum peak contribution at p.
func (s *Surface) Cost(p geom.Point) float64 {
	var best float64
	for i := range s.peaks {
		pk := &s.peaks[i]
		u := geom.Dist(p, pk.Center) / s.d
		if v := pk.Height * pk.Decay.shape(u, s.sigma); v > best {
			best = v
		}
	}
	return best
}

// Region implements CostFunc.
func (s *Surface) Region() geom.Rect { return s.region }

// MaxCost implements CostFunc.
func (s *Surface) MaxCost() float64 { return s.maxCost }

// Peaks returns the generated peaks (read-only by convention).
func (s *Surface) Peaks() []Peak { return s.peaks }

// DecayRadius returns D, the distance at which every peak's cost reaches 0.
func (s *Surface) DecayRadius() float64 { return s.d }

// Noisy wraps a surface so that with probability P an observation returns a
// random cost instead of the true cost — the Experiment 3 noise model
// simulating buffer-cache effects on IO cost. The paper leaves the random
// value's distribution to its technical report; we draw it uniformly from
// [0, 2·true), which is mean-preserving and scales with the query's own
// cost, matching how cache effects perturb a query's page count around its
// footprint. The noise is applied per call, so the same point can observe
// different costs — exactly the fluctuation the β parameter is designed to
// absorb.
type Noisy struct {
	inner CostFunc
	p     float64
	rng   *rand.Rand
}

var _ CostFunc = (*Noisy)(nil)

// NewNoisy wraps inner with noise probability p in [0, 1].
func NewNoisy(inner CostFunc, p float64, seed int64) (*Noisy, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("synthetic: noise probability must be in [0,1], got %g", p)
	}
	return &Noisy{inner: inner, p: p, rng: rand.New(rand.NewSource(seed))}, nil
}

// Cost implements CostFunc with randomized corruption.
func (n *Noisy) Cost(p geom.Point) float64 {
	if n.rng.Float64() < n.p {
		return n.rng.Float64() * 2 * n.inner.Cost(p)
	}
	return n.inner.Cost(p)
}

// TrueCost returns the uncorrupted cost, used when scoring prediction
// accuracy against ground truth.
func (n *Noisy) TrueCost(p geom.Point) float64 { return n.inner.Cost(p) }

// Region implements CostFunc.
func (n *Noisy) Region() geom.Rect { return n.inner.Region() }

// MaxCost implements CostFunc.
func (n *Noisy) MaxCost() float64 { return n.inner.MaxCost() }
