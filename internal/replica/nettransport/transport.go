package nettransport

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mlq/internal/events"
	"mlq/internal/faults"
	"mlq/internal/replica"
	"mlq/internal/telemetry"
)

// Config parameterizes a NetTransport. The zero value is usable: wall
// clock, no chaos, defaults tuned for loopback test fleets.
type Config struct {
	// Injector, when non-nil, wraps every endpoint's listener in a
	// ChaosListener wired to the net.{reset,trunc,delay} fault sites.
	Injector *faults.Injector
	// Clock drives backoff, heartbeat cadence, watchdogs and read-deadline
	// anchoring. Nil means Wall.
	Clock Clock
	// Seed feeds the backoff jitter stream, so a chaos run's reconnect
	// timing is as reproducible as its fault placement.
	Seed int64
	// Events, when non-nil, receives conn-up/conn-down/bootstrap events on
	// the causal spine (actor = destination endpoint ordinal + 1).
	Events *events.Recorder
	// QueueCapacity bounds each destination's outbound frame queue; a full
	// queue overflows (counted), never blocks the sender. Default 4096.
	QueueCapacity int
	// ChunkBytes is the bootstrap chunk payload size. Default 32 KiB.
	ChunkBytes int
	// DialTimeout bounds one connection attempt. Default 500ms.
	DialTimeout time.Duration
	// HeartbeatEvery is the liveness probe cadence on an established
	// connection. Default 100ms.
	HeartbeatEvery time.Duration
	// HeartbeatMiss is how many consecutive unanswered probe windows
	// declare the connection dead. Default 3.
	HeartbeatMiss int
	// ReadIdleTimeout is the accept side's per-read deadline; a connection
	// silent this long is torn down (the dialer re-establishes it).
	// Default max(2s, 6×HeartbeatEvery).
	ReadIdleTimeout time.Duration
	// BarrierTimeout bounds how long a barrier may ride the socket before
	// the watchdog delivers it locally (a damaged barrier frame must not
	// wedge a failover). Default 2s.
	BarrierTimeout time.Duration
	// BackoffBase and BackoffCap shape the reconnect backoff: attempt k
	// waits base·2^k capped at BackoffCap, halved and re-widened by seeded
	// jitter. Defaults 5ms / 500ms.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BootstrapAttempts bounds a Bootstrap call's connection attempts
	// (resumes included). Default 16.
	BootstrapAttempts int
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = Wall
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 4096
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 32 << 10
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 500 * time.Millisecond
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 100 * time.Millisecond
	}
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 3
	}
	if c.ReadIdleTimeout <= 0 {
		c.ReadIdleTimeout = 6 * c.HeartbeatEvery
		if c.ReadIdleTimeout < 2*time.Second {
			c.ReadIdleTimeout = 2 * time.Second
		}
	}
	if c.BarrierTimeout <= 0 {
		c.BarrierTimeout = 2 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 500 * time.Millisecond
	}
	if c.BootstrapAttempts <= 0 {
		c.BootstrapAttempts = 16
	}
	return c
}

// NetTransport is replica.Transport over real TCP loopback sockets. Each
// registered replica gets a listening endpoint feeding its inbox; each
// destination gets a lazily dialed outbound connection manager. The loss
// model is the MemTransport contract: sends never block the caller, a down
// or overflowing link loses messages and counts them (Dropped/Overflowed),
// and journal catch-up repairs the stream.
type NetTransport struct {
	cfg Config
	inj *faults.Injector
	clk Clock
	ev  *events.Recorder

	rngMu sync.Mutex
	rng   *rand.Rand

	mu         sync.Mutex
	closed     bool
	eps        map[string]*endpoint
	mgrs       map[string]*connMgr
	cut        map[string]bool
	healCh     chan struct{} // closed and replaced by Heal; wakes parked dialers
	barriers   map[uint64]*pendingBarrier
	barrierSeq uint64
	boot       map[string]*bootState

	closeCh chan struct{}
	wg      sync.WaitGroup

	sent, delivered, dropped, partitioned, overflowed atomic.Int64
	reconnects, heartbeatsMissed, framesDamaged       atomic.Int64
	bootstrapChunks, bootstrapResumes                 atomic.Int64
}

// New builds an empty transport; endpoints appear as replicas Register.
func New(cfg Config) *NetTransport {
	cfg = cfg.withDefaults()
	return &NetTransport{
		cfg:      cfg,
		inj:      cfg.Injector,
		clk:      cfg.Clock,
		ev:       cfg.Events,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		eps:      make(map[string]*endpoint),
		mgrs:     make(map[string]*connMgr),
		cut:      make(map[string]bool),
		healCh:   make(chan struct{}),
		barriers: make(map[uint64]*pendingBarrier),
		boot:     make(map[string]*bootState),
		closeCh:  make(chan struct{}),
	}
}

var _ replica.Transport = (*NetTransport)(nil)

var errClosed = fmt.Errorf("nettransport: transport is closed")

// pendingBarrier is one in-flight drain barrier. It lives in the
// transport's claim table until exactly one party — the receiving endpoint
// (wire delivery), a dead connection's sweep, the watchdog, or Close —
// claims it; the claim makes delivery (and the eventual close of done by
// the receiving pump) exactly-once.
type pendingBarrier struct {
	id   uint64
	dst  string
	msg  replica.Msg
	done chan struct{}
	gen  uint64 // connection generation it was written on (0 = not written)
}

// Register creates the destination's listening endpoint and inbox, and
// returns the receive side. Re-registering an id swaps in a fresh inbox on
// the same listener (a rejoining replica starts with an empty queue).
func (t *NetTransport) Register(id string, capacity int) <-chan replica.Msg {
	if capacity <= 0 {
		capacity = 4096
	}
	ch := make(chan replica.Msg, capacity)
	t.mu.Lock()
	if ep := t.eps[id]; ep != nil {
		ep.mu.Lock()
		ep.inbox = ch
		ep.mu.Unlock()
		t.mu.Unlock()
		return ch
	}
	idx := len(t.eps)
	closed := t.closed
	ep := &endpoint{t: t, id: id, idx: idx, inbox: ch, done: make(chan struct{})}
	t.eps[id] = ep
	t.mu.Unlock()
	if closed {
		return ch
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		// Loopback listen essentially cannot fail; if it does, the endpoint
		// exists but is unreachable and every send to it reports the error.
		ep.mu.Lock()
		ep.lnErr = err
		ep.mu.Unlock()
		return ch
	}
	if t.inj != nil {
		ln = NewChaosListener(ln, t.inj)
	}
	ep.mu.Lock()
	ep.ln = ln
	ep.addr = ln.Addr().String()
	ep.mu.Unlock()
	t.wg.Add(1)
	go ep.acceptLoop()
	return ch
}

// addrOf resolves a destination's dial address.
func (t *NetTransport) addrOf(id string) (string, error) {
	t.mu.Lock()
	ep := t.eps[id]
	t.mu.Unlock()
	if ep == nil {
		return "", fmt.Errorf("nettransport: unknown destination %q", id)
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.lnErr != nil {
		return "", fmt.Errorf("nettransport: destination %q has no listener: %w", id, ep.lnErr)
	}
	return ep.addr, nil
}

// Send frames m and hands it to the destination's outbound queue. It never
// blocks: a full queue (a disconnected or slow link) overflows, counted —
// the sender may believe delivery happened, exactly like a lossy network
// lies to a fire-and-forget streamer. Journal catch-up repairs the gap.
func (t *NetTransport) Send(to string, m replica.Msg) error {
	if _, isBarrier := m.BarrierChan(); isBarrier {
		return fmt.Errorf("nettransport: barrier messages travel via Barrier, not Send")
	}
	t.sent.Add(1)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errClosed
	}
	ep := t.eps[to]
	if ep == nil {
		t.mu.Unlock()
		return fmt.Errorf("nettransport: unknown destination %q", to)
	}
	if t.cut[to] {
		t.partitioned.Add(1)
		t.mu.Unlock()
		return replica.ErrPartitioned
	}
	mgr := t.mgrLocked(to, ep.idx)
	t.mu.Unlock()
	frame := appendFrame(nil, encodeMsg(m))
	select {
	case mgr.queue <- outItem{frame: frame}:
	default:
		t.overflowed.Add(1)
	}
	return nil
}

// Barrier enqueues a drain marker behind everything already sent to the
// destination. On a live link the marker rides the socket (TCP keeps it
// behind every queued frame); on a down or partitioned link it is delivered
// locally — nothing of ours is ahead of it on a wire that is not carrying
// traffic, and barriers must never be lost. A watchdog backstops the socket
// path: a barrier frame lost to connection chaos is re-delivered locally
// after BarrierTimeout.
func (t *NetTransport) Barrier(to string) (chan struct{}, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errClosed
	}
	ep := t.eps[to]
	if ep == nil {
		t.mu.Unlock()
		return nil, fmt.Errorf("nettransport: unknown destination %q", to)
	}
	msg, done := replica.NewBarrierMsg()
	t.barrierSeq++
	pb := &pendingBarrier{id: t.barrierSeq, dst: to, msg: msg, done: done}
	t.barriers[pb.id] = pb
	cut := t.cut[to]
	mgr := t.mgrLocked(to, ep.idx)
	t.mu.Unlock()

	if cut || mgr.suspect() {
		// The link is known dead: the drain pattern's preceding FlushHeld
		// already turned the queue into counted losses, so nothing of ours
		// is ahead of the marker and local delivery preserves its meaning.
		if p := t.claimBarrier(pb.id); p != nil {
			t.deliverBarrierLocal(p)
		}
		return done, nil
	}
	// Live (or still-dialing) link: the marker rides the outbound queue
	// behind every frame already enqueued; TCP keeps it behind them on the
	// wire. A full queue means the link is losing data anyway — deliver
	// locally rather than block.
	select {
	case mgr.queue <- outItem{barrier: pb}:
	default:
		if p := t.claimBarrier(pb.id); p != nil {
			t.deliverBarrierLocal(p)
		}
		return done, nil
	}
	t.wg.Add(1)
	go t.barrierWatchdog(pb)
	return done, nil
}

// barrierWatchdog re-delivers a socket-path barrier locally if the wire
// never does: a reset or torn write may eat the marker frame, and a lost
// barrier would wedge the group's drain pattern forever.
func (t *NetTransport) barrierWatchdog(pb *pendingBarrier) {
	defer t.wg.Done()
	select {
	case <-pb.done:
	case <-t.closeCh:
		if p := t.claimBarrier(pb.id); p != nil {
			//lint:ignore chanowner the claim table hands each barrier to exactly one closer; a successful claim owns p
			close(p.done)
		}
	case <-t.clk.After(t.cfg.BarrierTimeout):
		if p := t.claimBarrier(pb.id); p != nil {
			t.deliverBarrierLocal(p)
		}
	}
}

// claimBarrier removes a pending barrier from the table; the caller that
// gets a non-nil result owns its (single) delivery.
func (t *NetTransport) claimBarrier(id uint64) *pendingBarrier {
	t.mu.Lock()
	defer t.mu.Unlock()
	pb := t.barriers[id]
	if pb != nil {
		delete(t.barriers, id)
	}
	return pb
}

// stampBarrier records the connection generation a barrier frame was
// written on, so that connection's death sweep can find it.
func (t *NetTransport) stampBarrier(pb *pendingBarrier, gen uint64) {
	t.mu.Lock()
	if _, pending := t.barriers[pb.id]; pending {
		pb.gen = gen
	}
	t.mu.Unlock()
}

// sweepBarriers locally delivers every unclaimed barrier written on a now
// dead connection (dst, gen): the wire lost them, the contract must not.
func (t *NetTransport) sweepBarriers(dst string, gen uint64) {
	t.mu.Lock()
	var dead []*pendingBarrier
	for id, pb := range t.barriers {
		if pb.dst == dst && pb.gen == gen && gen != 0 {
			dead = append(dead, pb)
			delete(t.barriers, id)
		}
	}
	t.mu.Unlock()
	for _, pb := range dead {
		t.deliverBarrierLocal(pb)
	}
}

// deliverBarrierLocal enqueues a claimed barrier straight into the
// destination endpoint's inbox.
func (t *NetTransport) deliverBarrierLocal(pb *pendingBarrier) {
	t.mu.Lock()
	ep := t.eps[pb.dst]
	t.mu.Unlock()
	if ep == nil {
		//lint:ignore chanowner the claim table hands each barrier to exactly one closer; callers pass only claimed barriers here
		close(pb.done)
		return
	}
	ep.deliverBarrier(pb)
}

// FlushHeld releases everything the transport is voluntarily holding for
// the destination: on a live link it blocks until the writer has pushed the
// queued frames to the socket; on a down or partitioned link the queue is
// drained as counted losses. Either way, after FlushHeld returns nothing is
// parked inside the transport — the flush-then-barrier-then-assert drain
// pattern (Failover, Converge) relies on it.
func (t *NetTransport) FlushHeld(to string) {
	t.mu.Lock()
	mgr := t.mgrs[to]
	closed := t.closed
	cut := t.cut[to]
	t.mu.Unlock()
	if mgr == nil || closed {
		return
	}
	if cut || mgr.suspect() {
		mgr.drainQueue()
		return
	}
	done := make(chan struct{})
	select {
	case mgr.queue <- outItem{flush: done}:
	case <-t.closeCh:
		return
	}
	select {
	case <-done:
	case <-t.closeCh:
	case <-t.clk.After(t.cfg.BarrierTimeout):
		// The link died under the marker; whatever is still queued is a
		// counted loss, like any other disconnect.
		mgr.drainQueue()
	}
}

// LinkUp reports whether the outbound connection to a destination is
// currently established. Harnesses use it to settle a freshly built fleet
// before scheduling faults: a partition injected while the lazy dialer is
// still racing the first connection tears down nothing, which makes a
// "chaos against live links" experiment vacuous.
func (t *NetTransport) LinkUp(to string) bool {
	t.mu.Lock()
	mgr := t.mgrs[to]
	t.mu.Unlock()
	return mgr != nil && mgr.up()
}

// Cut reports whether the destination is unreachable: administratively
// partitioned, or suspected down by the dialer's liveness evidence
// (consecutive failed dials after heartbeat loss severed the connection).
func (t *NetTransport) Cut(id string) bool {
	t.mu.Lock()
	cut := t.cut[id]
	mgr := t.mgrs[id]
	t.mu.Unlock()
	if cut {
		return true
	}
	if mgr == nil {
		return false
	}
	return mgr.suspect()
}

// Partition administratively severs the destination: sends fail with
// ErrPartitioned and the live connection (if any) is cut under the peer.
func (t *NetTransport) Partition(id string) {
	t.mu.Lock()
	t.cut[id] = true
	mgr := t.mgrs[id]
	t.mu.Unlock()
	if mgr != nil {
		mgr.closeConn()
	}
}

// Heal lifts a partition and wakes every dialer parked on one, so the link
// re-establishes immediately rather than on the next partition poll.
func (t *NetTransport) Heal(id string) {
	t.mu.Lock()
	delete(t.cut, id)
	close(t.healCh)
	t.healCh = make(chan struct{})
	t.mu.Unlock()
}

// healSignal returns the channel the next Heal call closes.
func (t *NetTransport) healSignal() chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.healCh
}

// Stats returns cumulative delivery accounting in MemTransport's terms.
// Duplicated and Reordered stay zero: TCP neither duplicates nor reorders,
// socket chaos loses bytes instead.
func (t *NetTransport) Stats() replica.TransportStats {
	return replica.TransportStats{
		Sent:        t.sent.Load(),
		Delivered:   t.delivered.Load(),
		Dropped:     t.dropped.Load(),
		Partitioned: t.partitioned.Load(),
		Overflowed:  t.overflowed.Load(),
	}
}

// NetStats is the socket layer's own accounting, on top of TransportStats.
type NetStats struct {
	Reconnects       int64 // links re-established after a loss
	HeartbeatsMissed int64 // liveness probe windows that went unanswered
	FramesDamaged    int64 // frames discarded by CRC/decode (and torn tails)
	BootstrapChunks  int64 // snapshot chunks received (re-received included)
	BootstrapResumes int64 // bootstrap transfers resumed after a mid-kill
}

// NetStats returns the socket-layer counters.
func (t *NetTransport) NetStats() NetStats {
	return NetStats{
		Reconnects:       t.reconnects.Load(),
		HeartbeatsMissed: t.heartbeatsMissed.Load(),
		FramesDamaged:    t.framesDamaged.Load(),
		BootstrapChunks:  t.bootstrapChunks.Load(),
		BootstrapResumes: t.bootstrapResumes.Load(),
	}
}

// Instrument mirrors the socket-layer counters into a telemetry registry
// under the mlq_net_* namespace. Labels distinguish transports when several
// instrument the same registry (e.g. one per chaos scenario).
func (t *NetTransport) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	if reg == nil {
		return
	}
	reg.CounterFunc("mlq_net_reconnects_total", "network transport links re-established after a loss",
		func() float64 { return float64(t.reconnects.Load()) }, labels...)
	reg.CounterFunc("mlq_net_heartbeats_missed_total", "liveness probe windows that went unanswered",
		func() float64 { return float64(t.heartbeatsMissed.Load()) }, labels...)
	reg.CounterFunc("mlq_net_frames_damaged_total", "wire frames discarded by CRC or decode failure",
		func() float64 { return float64(t.framesDamaged.Load()) }, labels...)
	reg.CounterFunc("mlq_net_bootstrap_chunks_total", "snapshot bootstrap chunks received",
		func() float64 { return float64(t.bootstrapChunks.Load()) }, labels...)
	reg.CounterFunc("mlq_net_bootstrap_resumes_total", "snapshot bootstrap transfers resumed after a connection kill",
		func() float64 { return float64(t.bootstrapResumes.Load()) }, labels...)
}

// Close tears the fabric down: pending barriers unblock, writers and accept
// loops exit, every inbox closes. Idempotent.
func (t *NetTransport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	close(t.closeCh)
	barriers := t.barriers
	t.barriers = make(map[uint64]*pendingBarrier)
	mgrs := make([]*connMgr, 0, len(t.mgrs))
	for _, m := range t.mgrs {
		mgrs = append(mgrs, m)
	}
	eps := make([]*endpoint, 0, len(t.eps))
	for _, ep := range t.eps {
		eps = append(eps, ep)
	}
	t.mu.Unlock()
	for _, pb := range barriers {
		//lint:ignore chanowner Close swapped the claim table empty above, so it is the sole owner of every barrier still in it
		close(pb.done)
	}
	for _, m := range mgrs {
		m.closeConn()
	}
	for _, ep := range eps {
		ep.close()
	}
	t.wg.Wait()
}

func (t *NetTransport) isClosed() bool {
	select {
	case <-t.closeCh:
		return true
	default:
		return false
	}
}

func (t *NetTransport) frameDamaged() {
	t.framesDamaged.Add(1)
}

// jitter draws a uniform duration in [0, d] from the seeded stream.
func (t *NetTransport) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	return time.Duration(t.rng.Int63n(int64(d) + 1))
}

// backoff returns the wait before reconnect attempt k (0-based): half of
// the capped exponential base·2^k, re-widened by seeded jitter — the
// standard decorrelated shape that keeps a reconnect storm from
// synchronizing while staying fully reproducible under one seed.
func (t *NetTransport) backoff(attempt int) time.Duration {
	d := t.cfg.BackoffBase
	for i := 0; i < attempt && d < t.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > t.cfg.BackoffCap {
		d = t.cfg.BackoffCap
	}
	return d/2 + t.jitter(d/2)
}

// emitConn puts a link state change on the causal spine.
func (t *NetTransport) emitConn(kind events.Kind, epIdx int, a, b uint64) {
	t.ev.EmitActor(events.SubReplica, kind, 0, epIdx+1, a, b)
}
