package nettransport

import (
	"testing"
	"time"

	"mlq/internal/faults"
	"mlq/internal/geom"
	"mlq/internal/replica"
)

func rec(seq uint64) replica.Msg {
	return replica.Msg{Kind: replica.KindRecord, Rec: replica.Record{
		Seq: seq, Term: 1, Point: geom.Point{float64(seq), 2}, Value: float64(seq), Cause: seq,
	}}
}

func waitFor(t *testing.T, what string, within time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func recv(t *testing.T, inbox <-chan replica.Msg, within time.Duration) replica.Msg {
	t.Helper()
	select {
	case m := <-inbox:
		return m
	case <-time.After(within):
		t.Fatal("timed out waiting for a delivery")
		return replica.Msg{}
	}
}

// TestHeartbeatLivenessTearsDownDeafLink mutes an endpoint's heartbeat acks
// — the TCP connection stays open but goes silently deaf, the exact failure
// heartbeats exist to detect — and expects the ack reader to declare the
// link dead and the dialer to re-establish it once the peer recovers.
func TestHeartbeatLivenessTearsDownDeafLink(t *testing.T) {
	tr := New(Config{
		Seed:           7,
		HeartbeatEvery: 10 * time.Millisecond,
		HeartbeatMiss:  2,
	})
	defer tr.Close()
	tr.Register("a", 64)
	inbox := tr.Register("b", 64)

	if err := tr.Send("b", rec(1)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if m := recv(t, inbox, 5*time.Second); m.Rec.Seq != 1 {
		t.Fatalf("first delivery seq %d, want 1", m.Rec.Seq)
	}

	tr.MuteEndpoint("b", true)
	waitFor(t, "missed heartbeats to kill and redial the link", 10*time.Second, func() bool {
		ns := tr.NetStats()
		return ns.HeartbeatsMissed >= 2 && ns.Reconnects >= 1
	})
	tr.MuteEndpoint("b", false)

	if err := tr.Send("b", rec(2)); err != nil {
		t.Fatalf("Send after recovery: %v", err)
	}
	waitFor(t, "post-recovery delivery", 10*time.Second, func() bool {
		select {
		case m := <-inbox:
			return m.Rec.Seq == 2
		default:
			return false
		}
	})
}

// TestDeadDestinationOverflowsAndCuts kills a destination's listener: sends
// must keep returning instantly (queued up to capacity, then counted as
// overflow), and the dialer's consecutive failures must surface through
// Cut so a failover skips the unreachable peer.
func TestDeadDestinationOverflowsAndCuts(t *testing.T) {
	tr := New(Config{Seed: 7, QueueCapacity: 8, DialTimeout: 50 * time.Millisecond,
		BackoffBase: time.Millisecond, BackoffCap: 5 * time.Millisecond})
	defer tr.Close()
	tr.Register("a", 64)
	tr.Register("b", 64)
	tr.mu.Lock()
	ln := tr.eps["b"].ln
	tr.mu.Unlock()
	_ = ln.Close()

	start := time.Now()
	const n = 64
	for i := uint64(1); i <= n; i++ {
		if err := tr.Send("b", rec(i)); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("sends to a dead destination took %v; they must never block", elapsed)
	}
	waitFor(t, "overflow accounting", 5*time.Second, func() bool {
		return tr.Stats().Overflowed >= n-8
	})
	waitFor(t, "liveness evidence to surface via Cut", 5*time.Second, func() bool {
		return tr.Cut("b")
	})
}

// TestFlushHeldDrainsDeadLinkAsCountedLosses parks frames on a dead link's
// queue and expects FlushHeld to return promptly with everything accounted:
// after it, nothing may still be parked inside the transport.
func TestFlushHeldDrainsDeadLinkAsCountedLosses(t *testing.T) {
	tr := New(Config{Seed: 7, QueueCapacity: 64, DialTimeout: 50 * time.Millisecond,
		BackoffBase: time.Millisecond, BackoffCap: 5 * time.Millisecond})
	defer tr.Close()
	tr.Register("a", 64)
	tr.Register("b", 64)
	tr.mu.Lock()
	ln := tr.eps["b"].ln
	tr.mu.Unlock()
	_ = ln.Close()

	const n = 16
	for i := uint64(1); i <= n; i++ {
		if err := tr.Send("b", rec(i)); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	waitFor(t, "dialer to notice the dead link", 5*time.Second, func() bool { return tr.Cut("b") })
	tr.FlushHeld("b")
	st := tr.Stats()
	if st.Dropped+st.Overflowed < n {
		t.Fatalf("after FlushHeld on a dead link: dropped %d + overflowed %d < %d sent; frames still parked",
			st.Dropped, st.Overflowed, n)
	}
}

// TestBackoffCappedExponentialSeeded pins the reconnect backoff shape:
// reproducible for one seed, divergent across seeds, never above the cap,
// and growing toward it.
func TestBackoffCappedExponentialSeeded(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		tr := New(Config{Seed: seed, BackoffBase: 5 * time.Millisecond, BackoffCap: 500 * time.Millisecond})
		defer tr.Close()
		out := make([]time.Duration, 12)
		for i := range out {
			out[i] = tr.backoff(i)
		}
		return out
	}
	a, b, c := mk(1), mk(1), mk(2)
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: same seed gave %v then %v; backoff must be reproducible", i, a[i], b[i])
		}
		if a[i] != c[i] {
			diverged = true
		}
		if a[i] > 500*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v exceeds the cap", i, a[i])
		}
		if a[i] < 5*time.Millisecond/2 {
			t.Fatalf("attempt %d: backoff %v below base/2", i, a[i])
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical jitter streams")
	}
	if a[11] < 250*time.Millisecond {
		t.Fatalf("late attempt backoff %v; expected the capped region (>= cap/2)", a[11])
	}
}

// TestFakeClockDrivesReconnectMachinery runs the dial/backoff loop entirely
// on a FakeClock: with the destination's listener dead, the writer parks on
// fake timers and only advances when the test advances time.
func TestFakeClockDrivesReconnectMachinery(t *testing.T) {
	clk := NewFakeClock()
	tr := New(Config{Seed: 7, Clock: clk, DialTimeout: 20 * time.Millisecond,
		BackoffBase: 10 * time.Millisecond, BackoffCap: 100 * time.Millisecond})
	defer tr.Close()
	tr.Register("a", 64)
	tr.Register("b", 64)
	tr.mu.Lock()
	ln := tr.eps["b"].ln
	tr.mu.Unlock()
	_ = ln.Close()

	if err := tr.Send("b", rec(1)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	waitFor(t, "writer to park on a fake backoff timer", 5*time.Second, func() bool {
		return clk.Pending() > 0
	})
	deadline := time.Now().Add(10 * time.Second)
	for !tr.Cut("b") {
		if time.Now().After(deadline) {
			t.Fatal("advancing the fake clock never produced liveness evidence")
		}
		clk.Advance(200 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
}

// TestChaosTruncDamagesFramesWithoutDesync drives the stream through the
// chaos plane with byte-flip/torn-write truncation enabled: damaged frames
// must be counted and skipped (or the connection torn down and redialed),
// never decoded into a message, and the stream must keep delivering.
func TestChaosTruncDamagesFramesWithoutDesync(t *testing.T) {
	inj := faults.New(11)
	inj.Enable(faults.NetTrunc, faults.SiteConfig{Probability: 0.05})
	tr := New(Config{Seed: 11, Injector: inj, HeartbeatEvery: 20 * time.Millisecond,
		BackoffBase: time.Millisecond, BackoffCap: 10 * time.Millisecond})
	defer tr.Close()
	tr.Register("a", 64)
	inbox := tr.Register("b", 4096)

	var delivered int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for m := range inbox {
			if m.Kind == replica.KindRecord {
				delivered++
			}
		}
	}()

	const n = 400
	for i := uint64(1); i <= n; i++ {
		if err := tr.Send("b", rec(i)); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if i%50 == 0 {
			time.Sleep(5 * time.Millisecond) // let the wire catch chaos mid-stream
		}
	}
	waitFor(t, "chaos to damage at least one frame", 10*time.Second, func() bool {
		ns := tr.NetStats()
		return ns.FramesDamaged >= 1 || ns.Reconnects >= 1
	})
	waitFor(t, "stream to keep delivering through damage", 10*time.Second, func() bool {
		return tr.Stats().Delivered >= 1
	})
	tr.Close()
	<-done
	if delivered < 1 {
		t.Fatal("no records survived the chaos stream")
	}
}
