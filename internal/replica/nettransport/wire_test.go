package nettransport

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/replica"
)

func TestMsgCodecRoundTrip(t *testing.T) {
	msgs := []replica.Msg{
		{Kind: replica.KindRecord, Rec: replica.Record{
			Seq: 7, Term: 3, Point: geom.Point{1.5, -2.25, 1e300}, Value: 42.125, Cause: 99, MintNS: 123456789,
		}},
		{Kind: replica.KindRecord, Rec: replica.Record{Seq: 1, Term: 1, Point: geom.Point{}, Value: math.Inf(1)}},
		{Kind: replica.KindEpoch, Term: 5, Seq: 1000, Epoch: 17},
		{Kind: replica.KindTerm, Term: 6, Seq: 2000},
	}
	for i, m := range msgs {
		p := encodeMsg(m)
		got, err := decodeMsg(p)
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if got.Kind != m.Kind || got.Term != m.Term || got.Seq != m.Seq || got.Epoch != m.Epoch {
			t.Fatalf("msg %d: control fields drifted: got %+v want %+v", i, got, m)
		}
		if m.Kind == replica.KindRecord {
			if got.Rec.Seq != m.Rec.Seq || got.Rec.Term != m.Rec.Term || got.Rec.Value != m.Rec.Value ||
				got.Rec.Cause != m.Rec.Cause || got.Rec.MintNS != m.Rec.MintNS || len(got.Rec.Point) != len(m.Rec.Point) {
				t.Fatalf("msg %d: record drifted: got %+v want %+v", i, got.Rec, m.Rec)
			}
			for d := range m.Rec.Point {
				if got.Rec.Point[d] != m.Rec.Point[d] {
					t.Fatalf("msg %d: point dim %d drifted", i, d)
				}
			}
		}
	}
}

func TestFrameReaderSkipsDamagedKeepsAlignment(t *testing.T) {
	m1 := appendFrame(nil, encodeMsg(replica.Msg{Kind: replica.KindTerm, Term: 1, Seq: 1}))
	m2 := appendFrame(nil, encodeMsg(replica.Msg{Kind: replica.KindTerm, Term: 2, Seq: 2}))
	m3 := appendFrame(nil, encodeMsg(replica.Msg{Kind: replica.KindTerm, Term: 3, Seq: 3}))
	m2[frameHeaderLen+3] ^= 0xFF // corrupt frame 2's payload; CRC must catch it

	fr := &frameReader{r: bytes.NewReader(append(append(append([]byte(nil), m1...), m2...), m3...))}
	p, err := fr.next()
	if err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	if m, _ := decodeMsg(p); m.Term != 1 {
		t.Fatalf("frame 1 decoded term %d, want 1", m.Term)
	}
	if _, err := fr.next(); err != errDamagedFrame {
		t.Fatalf("frame 2: got %v, want errDamagedFrame", err)
	}
	p, err = fr.next()
	if err != nil {
		t.Fatalf("frame 3 after damage: %v — damage must not desynchronize the stream", err)
	}
	if m, _ := decodeMsg(p); m.Term != 3 {
		t.Fatalf("frame 3 decoded term %d, want 3", m.Term)
	}
	if _, err := fr.next(); err != io.EOF {
		t.Fatalf("tail: got %v, want EOF", err)
	}
}

func TestFrameReaderKillsStreamOnImplausibleLength(t *testing.T) {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxFramePayload+1)
	fr := &frameReader{r: bytes.NewReader(hdr[:])}
	_, err := fr.next()
	if err == nil || err == errDamagedFrame {
		t.Fatalf("implausible length: got %v, want an unrecoverable stream error", err)
	}
}

func TestPreambleRejectsStrangers(t *testing.T) {
	var buf bytes.Buffer
	if err := writePreamble(&buf, purposeBootstrap); err != nil {
		t.Fatal(err)
	}
	purpose, err := readPreamble(bytes.NewReader(buf.Bytes()))
	if err != nil || purpose != purposeBootstrap {
		t.Fatalf("round trip: purpose %d err %v", purpose, err)
	}
	if _, err := readPreamble(bytes.NewReader([]byte("GET / HTTP/1.1\r\n"))); err == nil {
		t.Fatal("foreign protocol accepted")
	}
	bad := append([]byte(nil), buf.Bytes()...)
	bad[4] = 99 // future version
	if _, err := readPreamble(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown wire version accepted")
	}
}

// FuzzWireDecode pins the decoder's two safety properties: it never panics
// on arbitrary bytes, and it never yields a Msg from a corrupt frame — any
// payload it accepts must be exactly the canonical encoding of the message
// it returns (acceptance implies canonical round-trip).
func FuzzWireDecode(f *testing.F) {
	f.Add(encodeMsg(replica.Msg{Kind: replica.KindRecord, Rec: replica.Record{
		Seq: 1, Term: 1, Point: geom.Point{3.5, -1}, Value: 2, Cause: 4, MintNS: 5,
	}}))
	f.Add(encodeMsg(replica.Msg{Kind: replica.KindEpoch, Term: 2, Seq: 3, Epoch: 4}))
	f.Add(encodeMsg(replica.Msg{Kind: replica.KindTerm, Term: 9, Seq: 8}))
	f.Add([]byte{fmMsg})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeMsg(data)
		if err == nil {
			if again := encodeMsg(m); !bytes.Equal(again, data) {
				t.Fatalf("decoder accepted a non-canonical payload: %x decoded to %+v which re-encodes as %x", data, m, again)
			}
		}
		// The framed path must also never panic, whatever the bytes.
		fr := &frameReader{r: bytes.NewReader(data)}
		for i := 0; i < 4; i++ {
			p, ferr := fr.next()
			if ferr == errDamagedFrame {
				continue
			}
			if ferr != nil {
				break
			}
			_, _ = decodeMsg(p)
		}
	})
}
