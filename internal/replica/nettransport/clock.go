package nettransport

import (
	"sort"
	"sync"
	"time"
)

// Clock is the transport's injected time source: reconnect backoff, barrier
// watchdogs and heartbeat cadence all wait through After, so tests drive the
// whole retry machinery with a FakeClock instead of wall-clock sleeps. Read
// deadlines on sockets are anchored at Now.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// wall is the production clock.
type wall struct{}

func (wall) Now() time.Time                         { return time.Now() }
func (wall) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Wall is the production Clock.
var Wall Clock = wall{}

// FakeClock is a manually advanced Clock for deterministic tests: After
// registers a timer that fires when Advance moves the clock past its
// deadline. Safe for concurrent use.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock starts a fake clock at an arbitrary fixed origin.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_000_000, 0)}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock. A non-positive d fires immediately.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := c.now.Add(d)
	if d <= 0 {
		//lint:ignore chanowner capacity-1 channel written exactly once: an immediate fire never blocks
		ch <- at
		return ch
	}
	c.timers = append(c.timers, fakeTimer{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward, firing every timer whose deadline is
// reached, in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var due []fakeTimer
	keep := c.timers[:0]
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			due = append(due, t)
		} else {
			keep = append(keep, t)
		}
	}
	c.timers = keep
	now := c.now
	c.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, t := range due {
		//lint:ignore chanowner capacity-1 channel written exactly once: a timer fires once and is removed from the list first
		t.ch <- now
	}
}

// Pending reports how many timers are waiting, so tests can advance until
// the machinery under test has parked.
func (c *FakeClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}
