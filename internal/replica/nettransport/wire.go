// Package nettransport carries the replication stream over real TCP
// sockets: a drop-in replica.Transport whose loss model matches the
// in-process MemTransport contract — sends never block the primary's accept
// path, a disconnected or overflowing link loses messages and counts them,
// and journal catch-up repairs whatever the stream lost.
//
// The wire format follows the repo's journal/blackbox framing discipline:
// a versioned magic preamble per connection, then length-prefixed frames
// each carrying a CRC32 of its payload. A frame whose CRC fails (but whose
// length was plausible) is counted as damaged and skipped; an implausible
// length means the byte stream itself is lost, so the connection is torn
// down and the reconnect machinery takes over. Connections dial lazily and
// reconnect under capped exponential backoff with seeded jitter; heartbeat
// acks under a read deadline feed liveness into Cut(). A cold follower can
// bootstrap over the same socket: a chunked, CRC-verified snapshot RPC that
// resumes from the last good chunk after a mid-transfer kill.
package nettransport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"mlq/internal/geom"
	"mlq/internal/replica"
)

// Wire constants. The magic distinguishes a nettransport socket from any
// other listener a misconfigured peer might dial; the version gates codec
// evolution the same way the journal and blackbox headers do.
const (
	wireMagic   = "MLQN"
	wireVersion = 1

	// purposeStream carries the replication stream; purposeBootstrap carries
	// one snapshot-shipping RPC. Declared in the connection preamble.
	purposeStream    = byte(0)
	purposeBootstrap = byte(1)

	// maxFramePayload bounds a frame's declared payload length. A header
	// whose length exceeds it cannot be trusted (the stream is desynchronized
	// or hostile), and the connection is unrecoverable: unlike a CRC failure,
	// there is no frame boundary left to skip to.
	maxFramePayload = 1 << 20

	// frameHeaderLen is [u32 payloadLen][u32 crc32(payload)].
	frameHeaderLen = 8
)

// Frame kinds, the first payload byte of every frame.
const (
	fmMsg            = byte(1) // one replica.Msg (record / term / epoch)
	fmBarrier        = byte(2) // drain barrier marker, u64 barrier id
	fmHeartbeat      = byte(3) // liveness probe, u64 seq; peer echoes an ack
	fmHeartbeatAck   = byte(4) // echo of fmHeartbeat
	fmBootstrapReq   = byte(5) // client: u64 token, u32 fromChunk
	fmBootstrapMeta  = byte(6) // server: u64 token, u32 chunks, u64 blobLen, u64 ckptLen, u32 blobCRC
	fmBootstrapChunk = byte(7) // server: u64 token, u32 idx, data
	fmBootstrapErr   = byte(8) // server: u8 code, message text
)

// Bootstrap error codes carried by fmBootstrapErr.
const (
	bootErrCompacted   = byte(1) // snapshot regenerated; resume impossible, full resync
	bootErrUnavailable = byte(2) // no snapshot source installed for the endpoint
)

// errDamagedFrame reports a frame whose payload failed its CRC or decoded to
// garbage: the frame is lost but the stream is still aligned, so the reader
// counts it and continues — the same posture the journal takes on a torn
// record.
var errDamagedFrame = fmt.Errorf("nettransport: damaged frame (CRC or payload mismatch)")

// errStreamLost reports an unrecoverable framing error (implausible length,
// bad preamble): no frame boundary survives, the connection must die.
var errStreamLost = fmt.Errorf("nettransport: byte stream lost framing")

// writePreamble stamps a fresh connection with magic, version and purpose.
func writePreamble(w io.Writer, purpose byte) error {
	var b [6]byte
	copy(b[:4], wireMagic)
	b[4] = wireVersion
	b[5] = purpose
	_, err := w.Write(b[:])
	return err
}

// readPreamble validates the peer's preamble and returns its purpose.
func readPreamble(r io.Reader) (byte, error) {
	var b [6]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	if string(b[:4]) != wireMagic {
		return 0, fmt.Errorf("%w: bad magic %q", errStreamLost, b[:4])
	}
	if b[4] != wireVersion {
		return 0, fmt.Errorf("%w: unsupported version %d", errStreamLost, b[4])
	}
	return b[5], nil
}

// appendFrame frames a payload: [u32 len][u32 crc][payload].
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// frameReader decodes frames off a connection, reusing one buffer.
type frameReader struct {
	r   io.Reader
	buf []byte
}

// next reads one frame payload. It returns errDamagedFrame for a CRC
// mismatch (the caller may continue reading), a wrapped errStreamLost for an
// unrecoverable header, and the underlying IO error when the connection
// dies. The returned slice is valid until the next call.
func (fr *frameReader) next() ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxFramePayload {
		return nil, fmt.Errorf("%w: frame length %d", errStreamLost, n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	payload := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, errDamagedFrame
	}
	return payload, nil
}

// encodeMsg serializes a stream message as an fmMsg frame payload. Barrier
// messages are not data-plane traffic and have their own frame kind.
func encodeMsg(m replica.Msg) []byte {
	switch m.Kind {
	case replica.KindRecord:
		rec := m.Rec
		b := make([]byte, 0, 2+8*5+2+8*len(rec.Point))
		b = append(b, fmMsg, byte(replica.KindRecord))
		b = appendU64(b, rec.Seq)
		b = appendU64(b, rec.Term)
		b = appendU64(b, math.Float64bits(rec.Value))
		b = appendU64(b, rec.Cause)
		b = appendU64(b, uint64(rec.MintNS))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(rec.Point)))
		for _, c := range rec.Point {
			b = appendU64(b, math.Float64bits(c))
		}
		return b
	case replica.KindEpoch:
		b := make([]byte, 0, 2+8*3)
		b = append(b, fmMsg, byte(replica.KindEpoch))
		b = appendU64(b, m.Term)
		b = appendU64(b, m.Seq)
		return appendU64(b, m.Epoch)
	default: // KindTerm
		b := make([]byte, 0, 2+8*2)
		b = append(b, fmMsg, byte(replica.KindTerm))
		b = appendU64(b, m.Term)
		return appendU64(b, m.Seq)
	}
}

// maxPointDims bounds a record's decoded dimensionality: far above any real
// model, low enough that a corrupt-but-CRC-colliding length cannot ask for
// an absurd allocation.
const maxPointDims = 256

// decodeMsg parses an fmMsg frame payload (including the leading frame-kind
// byte). Any structural mismatch is an error: a frame that passed its CRC
// but does not parse exactly is still damage, never a Msg.
func decodeMsg(p []byte) (replica.Msg, error) {
	if len(p) < 2 || p[0] != fmMsg {
		return replica.Msg{}, errDamagedFrame
	}
	kind := replica.MsgKind(p[1])
	body := p[2:]
	switch kind {
	case replica.KindRecord:
		if len(body) < 8*5+2 {
			return replica.Msg{}, errDamagedFrame
		}
		rec := replica.Record{
			Seq:    binary.LittleEndian.Uint64(body[0:8]),
			Term:   binary.LittleEndian.Uint64(body[8:16]),
			Value:  math.Float64frombits(binary.LittleEndian.Uint64(body[16:24])),
			Cause:  binary.LittleEndian.Uint64(body[24:32]),
			MintNS: int64(binary.LittleEndian.Uint64(body[32:40])),
		}
		dims := int(binary.LittleEndian.Uint16(body[40:42]))
		rest := body[42:]
		if dims > maxPointDims || len(rest) != 8*dims {
			return replica.Msg{}, errDamagedFrame
		}
		rec.Point = make(geom.Point, dims)
		for i := 0; i < dims; i++ {
			rec.Point[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i : 8*i+8]))
		}
		return replica.Msg{Kind: replica.KindRecord, Rec: rec}, nil
	case replica.KindEpoch:
		if len(body) != 8*3 {
			return replica.Msg{}, errDamagedFrame
		}
		return replica.Msg{
			Kind:  replica.KindEpoch,
			Term:  binary.LittleEndian.Uint64(body[0:8]),
			Seq:   binary.LittleEndian.Uint64(body[8:16]),
			Epoch: binary.LittleEndian.Uint64(body[16:24]),
		}, nil
	case replica.KindTerm:
		if len(body) != 8*2 {
			return replica.Msg{}, errDamagedFrame
		}
		return replica.Msg{
			Kind: replica.KindTerm,
			Term: binary.LittleEndian.Uint64(body[0:8]),
			Seq:  binary.LittleEndian.Uint64(body[8:16]),
		}, nil
	default:
		return replica.Msg{}, errDamagedFrame
	}
}

// encodeU64Frame builds the one-u64 control frames (barrier, heartbeats).
func encodeU64Frame(kind byte, v uint64) []byte {
	b := make([]byte, 0, 9)
	b = append(b, kind)
	return appendU64(b, v)
}

// decodeU64Frame parses a one-u64 control frame body.
func decodeU64Frame(p []byte) (uint64, error) {
	if len(p) != 9 {
		return 0, errDamagedFrame
	}
	return binary.LittleEndian.Uint64(p[1:9]), nil
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}
