package nettransport

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"mlq/internal/faults"
)

// memSource is a SnapshotSource serving fixed bytes.
type memSource struct {
	ckpt, jnl []byte
}

func (s *memSource) Snapshot() ([]byte, []byte, error) { return s.ckpt, s.jnl, nil }

func patternBytes(n int, stride byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*stride + stride
	}
	return b
}

func newBootstrapPair(t *testing.T, inj *faults.Injector, chunkBytes int) (*NetTransport, *memSource) {
	t.Helper()
	tr := New(Config{
		Seed:              3,
		Injector:          inj,
		ChunkBytes:        chunkBytes,
		BackoffBase:       time.Millisecond,
		BackoffCap:        10 * time.Millisecond,
		BootstrapAttempts: 8,
	})
	t.Cleanup(tr.Close)
	tr.Register("primary", 64)
	src := &memSource{ckpt: patternBytes(5000, 3), jnl: patternBytes(3000, 7)}
	tr.SetSnapshotSource("primary", src)
	return tr, src
}

func TestBootstrapRoundTrip(t *testing.T) {
	tr, src := newBootstrapPair(t, nil, 512)
	res, err := tr.Bootstrap("primary")
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if !bytes.Equal(res.Ckpt, src.ckpt) || !bytes.Equal(res.Journal, src.jnl) {
		t.Fatal("bootstrap bytes drifted from the source snapshot")
	}
	wantChunks := (len(src.ckpt) + len(src.jnl) + 511) / 512
	if res.Chunks != wantChunks || res.Resumes != 0 || res.Restarts != 0 {
		t.Fatalf("clean transfer accounting: chunks %d (want %d) resumes %d restarts %d",
			res.Chunks, wantChunks, res.Resumes, res.Restarts)
	}
}

// TestBootstrapResumesAfterMidTransferKill schedules a connection reset on
// the serving side mid-stream: the client must resume from the last good
// chunk under the same token — no restart, no byte drift, and the chunk
// total unchanged (nothing re-shipped).
func TestBootstrapResumesAfterMidTransferKill(t *testing.T) {
	inj := faults.New(5)
	// Server-conn op order is deterministic for a bootstrap exchange:
	// 3 reads (preamble, request header, request payload), then the meta
	// write, then one write per chunk. Hit 10 kills the stream during
	// chunk 6 of 16.
	inj.Enable(faults.NetReset, faults.SiteConfig{Schedule: []int64{10}})
	tr, src := newBootstrapPair(t, inj, 512)
	res, err := tr.Bootstrap("primary")
	if err != nil {
		t.Fatalf("Bootstrap through a mid-transfer kill: %v", err)
	}
	if !bytes.Equal(res.Ckpt, src.ckpt) || !bytes.Equal(res.Journal, src.jnl) {
		t.Fatal("resumed bootstrap bytes drifted from the source snapshot")
	}
	if res.Resumes < 1 {
		t.Fatalf("Resumes = %d; the transfer should have resumed, not restarted", res.Resumes)
	}
	if res.Restarts != 0 {
		t.Fatalf("Restarts = %d; a resumable kill must not force a full resync", res.Restarts)
	}
	wantChunks := (len(src.ckpt) + len(src.jnl) + 511) / 512
	if res.Chunks != wantChunks {
		t.Fatalf("chunks received %d, want exactly %d (resume must not re-ship verified chunks)",
			res.Chunks, wantChunks)
	}
	if got := tr.NetStats(); got.BootstrapResumes < 1 || got.BootstrapChunks != int64(wantChunks) {
		t.Fatalf("transport counters: %+v", got)
	}
}

// TestBootstrapStaleTokenGetsCompacted invalidates the cached snapshot
// under an in-flight token: the server must answer bootErrCompacted (forcing
// a full resync) rather than stream chunks of a blob that no longer exists.
func TestBootstrapStaleTokenGetsCompacted(t *testing.T) {
	tr, _ := newBootstrapPair(t, nil, 512)
	first, err := tr.Bootstrap("primary")
	if err != nil {
		t.Fatalf("first Bootstrap: %v", err)
	}
	if first.Restarts != 0 {
		t.Fatalf("first transfer restarted %d times", first.Restarts)
	}
	tr.InvalidateBootstrapCache("primary")

	// Resume by hand with the (now stale) token, like a client whose
	// transfer outlived the snapshot.
	addr, err := tr.addrOf("primary")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writePreamble(conn, purposeBootstrap); err != nil {
		t.Fatal(err)
	}
	req := append([]byte{fmBootstrapReq}, make([]byte, 12)...)
	req[1] = 1 // token 1, the generation the first transfer used
	req[9] = 3 // fromChunk 3
	if _, err := conn.Write(appendFrame(nil, req)); err != nil {
		t.Fatal(err)
	}
	fr := &frameReader{r: conn}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	p, err := fr.next()
	if err != nil {
		t.Fatalf("reading compacted reply: %v", err)
	}
	if p[0] != fmBootstrapErr || len(p) < 2 || p[1] != bootErrCompacted {
		t.Fatalf("stale-token resume got frame kind %d code %v, want bootErrCompacted", p[0], p[1:2])
	}

	// The public client turns that into a clean full resync.
	second, err := tr.Bootstrap("primary")
	if err != nil {
		t.Fatalf("post-invalidation Bootstrap: %v", err)
	}
	if !bytes.Equal(second.Ckpt, first.Ckpt) || !bytes.Equal(second.Journal, first.Journal) {
		t.Fatal("full resync bytes drifted")
	}
}

// TestBootstrapClientRestartsOnCompacted drives the client-side restart
// path directly: a resume whose token the server has superseded must come
// back as errRestartBootstrap so Bootstrap discards partials and resyncs.
func TestBootstrapClientRestartsOnCompacted(t *testing.T) {
	tr, _ := newBootstrapPair(t, nil, 512)
	if _, err := tr.Bootstrap("primary"); err != nil { // caches blob at token 1
		t.Fatal(err)
	}
	token := uint64(999)
	var meta *bootMeta
	chunks := [][]byte{patternBytes(512, 1)}
	res := &BootstrapResult{}
	if err := tr.bootstrapOnce("primary", &token, &meta, &chunks, res); err != errRestartBootstrap {
		t.Fatalf("stale-token resume: got %v, want errRestartBootstrap", err)
	}
}

func TestBootstrapWithoutSourceRefused(t *testing.T) {
	tr := New(Config{Seed: 3, BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond, BootstrapAttempts: 2})
	defer tr.Close()
	tr.Register("primary", 64)
	_, err := tr.Bootstrap("primary")
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("bootstrap without a source: %v", err)
	}
}
