package nettransport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"time"

	"mlq/internal/events"
)

// SnapshotSource produces the durable state a cold follower bootstraps
// from: the catalog checkpoint bytes and the current journal suffix.
// replica.Group satisfies it structurally via Group.Snapshot.
type SnapshotSource interface {
	Snapshot() (ckpt, journal []byte, err error)
}

// SetSnapshotSource installs (or, with nil, removes) the snapshot source
// served by an endpoint's bootstrap RPC. Typically the primary's Group.
func (t *NetTransport) SetSnapshotSource(id string, src SnapshotSource) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.boot[id]
	if st == nil {
		st = &bootState{}
		t.boot[id] = st
	}
	st.mu.Lock()
	st.src = src
	st.blob = nil
	st.mu.Unlock()
}

// InvalidateBootstrapCache discards an endpoint's cached snapshot blob, as
// a checkpoint+journal-reset does implicitly: the next bootstrap request —
// including a resume of an in-flight transfer — is told the old snapshot is
// compacted away and must restart as a full resync.
func (t *NetTransport) InvalidateBootstrapCache(id string) {
	t.mu.Lock()
	st := t.boot[id]
	t.mu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	st.blob = nil
	st.mu.Unlock()
}

// bootState is one endpoint's bootstrap serving state: the snapshot source
// and the cached blob a resumable transfer streams from. The token is the
// blob generation; a resume carrying a stale token gets bootErrCompacted.
type bootState struct {
	mu      sync.Mutex
	src     SnapshotSource
	token   uint64
	blob    []byte
	ckptLen uint64
	crc     uint32
}

// bootMeta mirrors the fmBootstrapMeta frame.
type bootMeta struct {
	token   uint64
	chunks  uint32
	blobLen uint64
	ckptLen uint64
	crc     uint32
}

// serveBootstrap handles one snapshot-shipping request on an accepted
// connection: read the request, resolve it against the cached blob (resume)
// or a fresh snapshot (full transfer), stream meta + chunks. The connection
// dies with the transfer; resume means a new connection with the old token.
func (t *NetTransport) serveBootstrap(ep *endpoint, conn net.Conn) {
	_ = conn.SetReadDeadline(time.Now().Add(t.cfg.ReadIdleTimeout))
	fr := &frameReader{r: conn}
	p, err := fr.next()
	if err != nil || len(p) != 13 || p[0] != fmBootstrapReq {
		return
	}
	token := binary.LittleEndian.Uint64(p[1:9])
	fromChunk := binary.LittleEndian.Uint32(p[9:13])

	t.mu.Lock()
	st := t.boot[ep.id]
	t.mu.Unlock()
	if st == nil {
		writeBootErr(conn, bootErrUnavailable, "no snapshot source installed")
		return
	}

	st.mu.Lock()
	if st.src == nil {
		st.mu.Unlock()
		writeBootErr(conn, bootErrUnavailable, "no snapshot source installed")
		return
	}
	if token != 0 && (st.blob == nil || token != st.token) {
		// The blob the client was mid-transfer on is gone (regenerated or
		// invalidated). Resume is impossible; the client must full-resync.
		st.mu.Unlock()
		writeBootErr(conn, bootErrCompacted, "snapshot superseded; restart transfer")
		return
	}
	if token == 0 {
		ckpt, jnl, serr := st.src.Snapshot()
		if serr != nil {
			st.mu.Unlock()
			writeBootErr(conn, bootErrUnavailable, serr.Error())
			return
		}
		blob := make([]byte, 0, len(ckpt)+len(jnl))
		blob = append(blob, ckpt...)
		blob = append(blob, jnl...)
		st.token++
		st.blob = blob
		st.ckptLen = uint64(len(ckpt))
		st.crc = crc32.ChecksumIEEE(blob)
		fromChunk = 0
	}
	meta := bootMeta{
		token:   st.token,
		blobLen: uint64(len(st.blob)),
		ckptLen: st.ckptLen,
		crc:     st.crc,
	}
	blob := st.blob
	st.mu.Unlock()

	chunk := t.cfg.ChunkBytes
	meta.chunks = uint32((len(blob) + chunk - 1) / chunk)
	if meta.chunks == 0 {
		meta.chunks = 1 // an empty blob still ships one empty-tailed chunk table
	}
	mp := make([]byte, 0, 1+8+4+8+8+4)
	mp = append(mp, fmBootstrapMeta)
	mp = appendU64(mp, meta.token)
	mp = binary.LittleEndian.AppendUint32(mp, meta.chunks)
	mp = appendU64(mp, meta.blobLen)
	mp = appendU64(mp, meta.ckptLen)
	mp = binary.LittleEndian.AppendUint32(mp, meta.crc)
	if _, err := conn.Write(appendFrame(nil, mp)); err != nil {
		return
	}
	for i := int(fromChunk); i < int(meta.chunks); i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(blob) {
			hi = len(blob)
		}
		cp := make([]byte, 0, 1+8+4+(hi-lo))
		cp = append(cp, fmBootstrapChunk)
		cp = appendU64(cp, meta.token)
		cp = binary.LittleEndian.AppendUint32(cp, uint32(i))
		cp = append(cp, blob[lo:hi]...)
		if _, err := conn.Write(appendFrame(nil, cp)); err != nil {
			return
		}
	}
}

func writeBootErr(conn net.Conn, code byte, msg string) {
	p := make([]byte, 0, 2+len(msg))
	p = append(p, fmBootstrapErr, code)
	p = append(p, msg...)
	_, _ = conn.Write(appendFrame(nil, p))
}

// BootstrapResult is a completed snapshot transfer: the checkpoint and
// journal bytes, plus the transfer's accounting.
type BootstrapResult struct {
	Ckpt     []byte
	Journal  []byte
	Chunks   int // chunk frames received, re-received ones included
	Resumes  int // connections that continued a partial transfer
	Restarts int // full resyncs forced by a superseded snapshot
}

// errRestartBootstrap signals the server declared our token compacted: drop
// partial progress and full-resync.
var errRestartBootstrap = fmt.Errorf("nettransport: bootstrap snapshot superseded")

// Bootstrap pulls the destination endpoint's snapshot over a dedicated
// socket: chunked, CRC-verified end to end, and resumable — a connection
// killed mid-transfer costs only the tail, the next attempt continues from
// the last good chunk under the same token. A superseded snapshot
// (bootErrCompacted) restarts as a full resync. Attempts are bounded by
// BootstrapAttempts with the same capped backoff the stream dialer uses.
func (t *NetTransport) Bootstrap(from string) (*BootstrapResult, error) {
	res := &BootstrapResult{}
	var (
		token   uint64
		meta    *bootMeta
		chunks  [][]byte
		lastErr error
	)
	for attempt := 0; attempt < t.cfg.BootstrapAttempts; attempt++ {
		if t.isClosed() {
			return nil, errClosed
		}
		if attempt > 0 {
			select {
			case <-t.closeCh:
				return nil, errClosed
			case <-t.clk.After(t.backoff(attempt - 1)):
			}
		}
		if token != 0 && len(chunks) > 0 {
			res.Resumes++
			t.bootstrapResumes.Add(1)
		}
		err := t.bootstrapOnce(from, &token, &meta, &chunks, res)
		if err == errRestartBootstrap {
			token, meta, chunks = 0, nil, nil
			res.Restarts++
			lastErr = err
			continue
		}
		if err != nil {
			lastErr = err
			continue
		}
		blob := bytes.Join(chunks, nil)
		if uint64(len(blob)) != meta.blobLen || crc32.ChecksumIEEE(blob) != meta.crc || meta.ckptLen > uint64(len(blob)) {
			// Assembled transfer fails end-to-end verification: poison the
			// token so the next attempt restarts clean.
			token, meta, chunks = 0, nil, nil
			res.Restarts++
			lastErr = fmt.Errorf("nettransport: bootstrap blob failed verification")
			continue
		}
		res.Ckpt = append([]byte(nil), blob[:meta.ckptLen]...)
		res.Journal = append([]byte(nil), blob[meta.ckptLen:]...)
		t.emitBootstrap(from, res)
		return res, nil
	}
	return nil, fmt.Errorf("nettransport: bootstrap from %q failed after %d attempts: %w",
		from, t.cfg.BootstrapAttempts, lastErr)
}

// bootstrapOnce runs one connection's worth of transfer, appending verified
// chunks in order. On return with nil error, all chunks have arrived.
func (t *NetTransport) bootstrapOnce(from string, token *uint64, meta **bootMeta, chunks *[][]byte, res *BootstrapResult) error {
	addr, err := t.addrOf(from)
	if err != nil {
		return err
	}
	conn, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	if err := writePreamble(conn, purposeBootstrap); err != nil {
		return err
	}
	req := make([]byte, 0, 13)
	req = append(req, fmBootstrapReq)
	req = appendU64(req, *token)
	req = binary.LittleEndian.AppendUint32(req, uint32(len(*chunks)))
	if _, err := conn.Write(appendFrame(nil, req)); err != nil {
		return err
	}
	fr := &frameReader{r: conn}
	next := func() ([]byte, error) {
		_ = conn.SetReadDeadline(time.Now().Add(t.cfg.ReadIdleTimeout))
		return fr.next()
	}
	p, err := next()
	if err != nil {
		return err
	}
	switch p[0] {
	case fmBootstrapErr:
		if len(p) >= 2 && p[1] == bootErrCompacted {
			return errRestartBootstrap
		}
		return fmt.Errorf("nettransport: bootstrap refused: %s", string(p[2:]))
	case fmBootstrapMeta:
		if len(p) != 1+8+4+8+8+4 {
			return errDamagedFrame
		}
		m := &bootMeta{
			token:   binary.LittleEndian.Uint64(p[1:9]),
			chunks:  binary.LittleEndian.Uint32(p[9:13]),
			blobLen: binary.LittleEndian.Uint64(p[13:21]),
			ckptLen: binary.LittleEndian.Uint64(p[21:29]),
			crc:     binary.LittleEndian.Uint32(p[29:33]),
		}
		if *token != 0 && m.token != *token {
			return errRestartBootstrap
		}
		*token = m.token
		*meta = m
	default:
		return errDamagedFrame
	}
	for len(*chunks) < int((*meta).chunks) {
		p, err := next()
		if err != nil {
			// A damaged chunk frame leaves a gap we cannot fill on this
			// connection (chunks are strictly sequential); treat it like a
			// connection loss and resume from the last good chunk.
			return err
		}
		if len(p) < 13 || p[0] != fmBootstrapChunk {
			return errDamagedFrame
		}
		ctok := binary.LittleEndian.Uint64(p[1:9])
		idx := binary.LittleEndian.Uint32(p[9:13])
		if ctok != *token || int(idx) != len(*chunks) {
			return fmt.Errorf("nettransport: bootstrap chunk out of sequence (got %d want %d)", idx, len(*chunks))
		}
		*chunks = append(*chunks, append([]byte(nil), p[13:]...))
		res.Chunks++
		t.bootstrapChunks.Add(1)
	}
	return nil
}

// emitBootstrap puts a completed bootstrap on the causal spine.
func (t *NetTransport) emitBootstrap(from string, res *BootstrapResult) {
	t.mu.Lock()
	ep := t.eps[from]
	t.mu.Unlock()
	idx := -1
	if ep != nil {
		idx = ep.idx
	}
	t.ev.EmitActor(events.SubReplica, events.KindBootstrap, 0, idx+1, uint64(res.Chunks), uint64(res.Resumes))
}
