package nettransport

import (
	"fmt"
	"net"
	"time"

	"mlq/internal/faults"
)

// ChaosListener wraps an endpoint's listener so every accepted connection
// runs through the socket-level fault plane: seeded resets, byte-level
// damage, and delay bursts from the shared faults.Injector, at the
// net.{reset,trunc,delay} sites. Administrative Partition/Heal stay on the
// transport itself; the listener handles only the probabilistic chaos.
type ChaosListener struct {
	net.Listener
	inj *faults.Injector
}

// NewChaosListener wraps ln. A nil injector never fires, so the wrap is
// harmless on a clean run.
func NewChaosListener(ln net.Listener, inj *faults.Injector) *ChaosListener {
	return &ChaosListener{Listener: ln, inj: inj}
}

// Accept wraps the accepted connection in the chaos plane.
func (l *ChaosListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &chaosConn{Conn: c, inj: l.inj}, nil
}

// chaosConn injects faults on the accept side of a connection, which is
// enough to damage both directions: its reads corrupt client→server
// traffic in flight, its writes tear server→client traffic, and a reset
// from either path kills the socket under both peers.
type chaosConn struct {
	net.Conn
	inj *faults.Injector
}

var errInjectedReset = fmt.Errorf("nettransport: injected connection reset")

// Read delays by the injector's burst schedule, dies on an injected reset,
// and flips one byte of delivered data on an injected truncation — silent
// in-flight corruption the decoder must catch by CRC and skip.
func (c *chaosConn) Read(p []byte) (int, error) {
	if d := c.inj.NetReadDelay(); d > 0 {
		time.Sleep(d)
	}
	if c.inj.Fire(faults.NetReset) {
		_ = c.Conn.Close()
		return 0, errInjectedReset
	}
	n, err := c.Conn.Read(p)
	if n > 0 && c.inj.Fire(faults.NetTrunc) {
		p[n/2] ^= 0x10
	}
	return n, err
}

// Write dies on an injected reset, and on an injected truncation tears the
// write: only a prefix reaches the wire before the connection dies, leaving
// a partial frame the peer's framer discards.
func (c *chaosConn) Write(p []byte) (int, error) {
	if c.inj.Fire(faults.NetReset) {
		_ = c.Conn.Close()
		return 0, errInjectedReset
	}
	if len(p) > 1 && c.inj.Fire(faults.NetTrunc) {
		n, _ := c.Conn.Write(p[:(len(p)+1)/2])
		_ = c.Conn.Close()
		return n, fmt.Errorf("nettransport: injected torn write")
	}
	return c.Conn.Write(p)
}
