package nettransport

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mlq/internal/events"
	"mlq/internal/replica"
)

// outItem is one entry in a destination's outbound queue: a pre-framed data
// or control payload, a barrier marker, or a flush marker.
type outItem struct {
	frame   []byte
	barrier *pendingBarrier
	flush   chan struct{}
}

// connMgr owns the single outbound connection to one destination: a bounded
// queue the senders feed without blocking, a writer goroutine that dials
// lazily and reconnects under capped exponential backoff, and an ack reader
// whose heartbeat misses tear a silently dead link down. The queue persists
// across reconnects — frames enqueued while the link is down ride the next
// connection; only overflow and explicit drains (FlushHeld on a dead link,
// Close) lose them, counted.
type connMgr struct {
	t     *NetTransport
	dst   string
	epIdx int
	queue chan outItem

	mu        sync.Mutex
	conn      net.Conn
	gen       uint64
	upFlag    bool
	dialFails int

	lastMisses atomic.Int64
}

// mgrLocked returns (creating on first use) the destination's connection
// manager. Caller holds t.mu. The endpoint for dst must already exist.
func (t *NetTransport) mgrLocked(dst string, epIdx int) *connMgr {
	if m := t.mgrs[dst]; m != nil {
		return m
	}
	m := &connMgr{t: t, dst: dst, epIdx: epIdx, queue: make(chan outItem, t.cfg.QueueCapacity)}
	t.mgrs[dst] = m
	t.wg.Add(1)
	go m.run()
	return m
}

// up reports whether the link is currently established.
func (m *connMgr) up() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.upFlag
}

// suspect is the liveness evidence behind Cut: two consecutive failed dials
// after a connection loss. A single failure (one chaos reset mid-dial) does
// not condemn a peer; an idle, never-dialed destination is reachable.
func (m *connMgr) suspect() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dialFails >= 2
}

// closeConn severs the live connection (if any) out from under the writer;
// its next write fails and the reconnect loop takes over.
func (m *connMgr) closeConn() {
	m.mu.Lock()
	c := m.conn
	m.conn = nil
	m.upFlag = false
	m.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

// run is the writer goroutine: establish, stream, tear down, repeat.
func (m *connMgr) run() {
	defer m.t.wg.Done()
	var hbSeq uint64
	for {
		conn, gen, ok := m.ensureConn()
		if !ok {
			m.drainQueue()
			return
		}
		dead := make(chan struct{})
		m.t.wg.Add(1)
		go m.ackReader(conn, dead)
		m.writeLoop(conn, gen, dead, &hbSeq)
		m.teardown(conn, gen)
		if m.t.isClosed() {
			m.drainQueue()
			return
		}
	}
}

// ensureConn dials the destination until it succeeds, backing off
// exponentially (capped, seeded jitter) between attempts, and parking
// politely while the destination is administratively partitioned. Returns
// ok=false when the transport closes.
func (m *connMgr) ensureConn() (net.Conn, uint64, bool) {
	for attempt := 0; ; attempt++ {
		if m.t.isClosed() {
			return nil, 0, false
		}
		if m.t.partitionedTo(m.dst) {
			select {
			case <-m.t.closeCh:
				return nil, 0, false
			case <-m.t.healSignal():
			case <-m.t.clk.After(m.t.cfg.BackoffBase * 4):
			}
			attempt = 0
			continue
		}
		if conn, gen, ok := m.dialOnce(); ok {
			return conn, gen, true
		}
		select {
		case <-m.t.closeCh:
			return nil, 0, false
		case <-m.t.clk.After(m.t.backoff(attempt)):
		}
	}
}

// dialOnce makes one connection attempt and records the liveness evidence.
func (m *connMgr) dialOnce() (net.Conn, uint64, bool) {
	addr, err := m.t.addrOf(m.dst)
	if err == nil {
		var conn net.Conn
		conn, err = net.DialTimeout("tcp", addr, m.t.cfg.DialTimeout)
		if err == nil {
			if perr := writePreamble(conn, purposeStream); perr == nil {
				m.mu.Lock()
				m.conn = conn
				m.upFlag = true
				m.dialFails = 0
				m.gen++
				gen := m.gen
				m.mu.Unlock()
				if gen > 1 {
					m.t.reconnects.Add(1)
				}
				m.t.emitConn(events.KindConnUp, m.epIdx, uint64(m.t.reconnects.Load()), gen)
				return conn, gen, true
			}
			_ = conn.Close()
		}
	}
	m.mu.Lock()
	m.dialFails++
	m.mu.Unlock()
	return nil, 0, false
}

// writeLoop streams queued frames and periodic heartbeats until the
// connection dies, the ack reader declares it dead, or the transport
// closes. Barrier markers are stamped with the connection generation before
// they hit the wire, so teardown's sweep can recover the ones this exact
// connection loses.
func (m *connMgr) writeLoop(conn net.Conn, gen uint64, dead chan struct{}, hbSeq *uint64) {
	hb := m.t.clk.After(m.t.cfg.HeartbeatEvery)
	for {
		select {
		case it := <-m.queue:
			switch {
			case it.flush != nil:
				//lint:ignore chanowner the flush marker rides the queue exactly once; the single dequeuer (writer or drain) is its one closing owner
				close(it.flush)
			case it.barrier != nil:
				m.t.stampBarrier(it.barrier, gen)
				if _, err := conn.Write(appendFrame(nil, encodeU64Frame(fmBarrier, it.barrier.id))); err != nil {
					return
				}
			default:
				if _, err := conn.Write(it.frame); err != nil {
					return
				}
			}
		case <-hb:
			hb = m.t.clk.After(m.t.cfg.HeartbeatEvery)
			*hbSeq++
			if _, err := conn.Write(appendFrame(nil, encodeU64Frame(fmHeartbeat, *hbSeq))); err != nil {
				return
			}
		case <-dead:
			return
		case <-m.t.closeCh:
			return
		}
	}
}

// ackReader consumes heartbeat acks under a per-read deadline. Each expired
// window without any inbound frame is a miss; HeartbeatMiss consecutive
// misses declare the link silently dead and close it (the writer's next
// write fails and reconnect begins).
func (m *connMgr) ackReader(conn net.Conn, dead chan struct{}) {
	defer m.t.wg.Done()
	defer close(dead)
	fr := &frameReader{r: conn}
	misses := 0
	window := m.t.cfg.HeartbeatEvery * 3 / 2
	for {
		_ = conn.SetReadDeadline(time.Now().Add(window))
		p, err := fr.next()
		if err == errDamagedFrame {
			m.t.frameDamaged()
			continue
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				misses++
				m.t.heartbeatsMissed.Add(1)
				m.lastMisses.Store(int64(misses))
				if misses >= m.t.cfg.HeartbeatMiss {
					_ = conn.Close()
					return
				}
				continue
			}
			return
		}
		if len(p) > 0 && p[0] == fmHeartbeatAck {
			misses = 0
			m.lastMisses.Store(0)
		}
	}
}

// teardown closes a dead connection, sweeps the barriers that died with it,
// and reports the link loss.
func (m *connMgr) teardown(conn net.Conn, gen uint64) {
	_ = conn.Close()
	m.mu.Lock()
	if m.conn == conn {
		m.conn = nil
	}
	m.upFlag = false
	m.mu.Unlock()
	m.t.sweepBarriers(m.dst, gen)
	m.t.emitConn(events.KindConnDown, m.epIdx, uint64(m.lastMisses.Load()), gen)
	m.lastMisses.Store(0)
}

// drainQueue empties the outbound queue as counted losses: data frames are
// Dropped, barriers deliver locally (never lost), flush markers release
// their waiters.
func (m *connMgr) drainQueue() {
	for {
		select {
		case it := <-m.queue:
			switch {
			case it.flush != nil:
				//lint:ignore chanowner the flush marker rides the queue exactly once; the single dequeuer (writer or drain) is its one closing owner
				close(it.flush)
			case it.barrier != nil:
				if pb := m.t.claimBarrier(it.barrier.id); pb != nil {
					m.t.deliverBarrierLocal(pb)
				}
			default:
				m.t.dropped.Add(1)
			}
		default:
			return
		}
	}
}

// partitionedTo reports the administrative cut state for a destination.
func (t *NetTransport) partitionedTo(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cut[id]
}

// endpoint is one replica's receive side: a loopback listener, an accept
// loop, and the inbox Register returned. Inbound stream connections decode
// frames into the inbox; inbound bootstrap connections are served by the
// snapshot RPC.
type endpoint struct {
	t    *NetTransport
	id   string
	idx  int
	done chan struct{}

	mu     sync.Mutex
	ln     net.Listener
	lnErr  error
	addr   string
	inbox  chan replica.Msg
	closed bool
	mute   bool
}

// setMute is a test hook: a muted endpoint stops acking heartbeats, so
// liveness tests can simulate a silently wedged peer without killing the
// TCP connection.
func (ep *endpoint) setMute(v bool) {
	ep.mu.Lock()
	ep.mute = v
	ep.mu.Unlock()
}

// MuteEndpoint silences (or restores) heartbeat acks from an endpoint —
// the connection stays open but goes deaf, exactly the failure heartbeats
// exist to detect. Test hook.
func (t *NetTransport) MuteEndpoint(id string, mute bool) {
	t.mu.Lock()
	ep := t.eps[id]
	t.mu.Unlock()
	if ep != nil {
		ep.setMute(mute)
	}
}

func (ep *endpoint) muted() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.mute
}

func (ep *endpoint) isClosed() bool {
	select {
	case <-ep.done:
		return true
	default:
		return false
	}
}

// acceptLoop admits connections until the listener closes. Transient accept
// errors (a chaos reset racing the handshake) back off briefly and retry.
func (ep *endpoint) acceptLoop() {
	defer ep.t.wg.Done()
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			if ep.isClosed() || ep.t.isClosed() {
				return
			}
			select {
			case <-ep.done:
				return
			case <-ep.t.clk.After(time.Millisecond):
			}
			continue
		}
		ep.t.wg.Add(1)
		go ep.serveConn(conn)
	}
}

// serveConn reads the preamble and dispatches to the stream or bootstrap
// handler. A reaper goroutine severs the connection when the endpoint
// closes, so blocked reads cannot outlive the transport.
func (ep *endpoint) serveConn(conn net.Conn) {
	defer ep.t.wg.Done()
	defer func() { _ = conn.Close() }()
	served := make(chan struct{})
	defer close(served)
	ep.t.wg.Add(1)
	go func() {
		defer ep.t.wg.Done()
		select {
		case <-ep.done:
			_ = conn.Close()
		case <-served:
		}
	}()
	_ = conn.SetReadDeadline(time.Now().Add(ep.t.cfg.ReadIdleTimeout))
	purpose, err := readPreamble(conn)
	if err != nil {
		return
	}
	switch purpose {
	case purposeStream:
		ep.streamLoop(conn)
	case purposeBootstrap:
		ep.t.serveBootstrap(ep, conn)
	}
}

// streamLoop decodes replication frames into the inbox. Damaged frames are
// counted and skipped (the stream stays aligned); a lost stream or an idle
// timeout kills the connection and the dialer re-establishes it.
func (ep *endpoint) streamLoop(conn net.Conn) {
	fr := &frameReader{r: conn}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(ep.t.cfg.ReadIdleTimeout))
		p, err := fr.next()
		if err == errDamagedFrame {
			ep.t.frameDamaged()
			continue
		}
		if err != nil {
			return
		}
		switch p[0] {
		case fmMsg:
			m, derr := decodeMsg(p)
			if derr != nil {
				ep.t.frameDamaged()
				continue
			}
			ep.deliver(m)
		case fmBarrier:
			id, derr := decodeU64Frame(p)
			if derr != nil {
				ep.t.frameDamaged()
				continue
			}
			if pb := ep.t.claimBarrier(id); pb != nil {
				ep.deliverBarrier(pb)
			}
		case fmHeartbeat:
			seq, derr := decodeU64Frame(p)
			if derr != nil {
				ep.t.frameDamaged()
				continue
			}
			if ep.muted() {
				continue
			}
			if _, werr := conn.Write(appendFrame(nil, encodeU64Frame(fmHeartbeatAck, seq))); werr != nil {
				return
			}
		default:
			ep.t.frameDamaged()
		}
	}
}

// deliver enqueues a data-plane message nonblocking: a full inbox overflows
// (counted), a closed endpoint drops — the receiver pump must never be able
// to stall the socket reader into backpressuring the primary.
func (ep *endpoint) deliver(m replica.Msg) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		ep.t.dropped.Add(1)
		return
	}
	select {
	case ep.inbox <- m:
		ep.t.delivered.Add(1)
	default:
		ep.t.overflowed.Add(1)
	}
}

// deliverBarrier enqueues a claimed barrier, blocking: barriers are never
// lost, and the receiving pump is by contract always draining. Holding
// ep.mu across the send keeps a concurrent inbox close from racing the
// enqueue; the pump consumes without ep.mu, so the send terminates.
func (ep *endpoint) deliverBarrier(pb *pendingBarrier) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		//lint:ignore chanowner the claim table hands each barrier to exactly one closer; this path owns pb after claiming it
		close(pb.done)
		return
	}
	//lint:ignore chanowner barrier delivery must block rather than drop; the claim table makes this send exactly-once and the pump drains without ep.mu
	ep.inbox <- pb.msg
	ep.t.delivered.Add(1)
	ep.mu.Unlock()
}

// close shuts the endpoint: inbox closed (pumps drain and exit), listener
// closed (accept loop exits), live server connections reaped.
func (ep *endpoint) close() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.closed = true
	ln := ep.ln
	close(ep.inbox)
	ep.mu.Unlock()
	close(ep.done)
	if ln != nil {
		_ = ln.Close()
	}
}
