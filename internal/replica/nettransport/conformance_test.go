package nettransport_test

import (
	"testing"
	"time"

	"mlq/internal/replica"
	"mlq/internal/replica/nettransport"
	"mlq/internal/replica/transporttest"
)

// TestNetTransportConformance runs the shared Transport contract suite over
// real loopback sockets: the socket implementation must be observationally
// interchangeable with MemTransport wherever the Group relies on it.
func TestNetTransportConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T) replica.Transport {
		return nettransport.New(nettransport.Config{
			Seed:           42,
			HeartbeatEvery: 20 * time.Millisecond,
			BarrierTimeout: 2 * time.Second,
		})
	})
}
