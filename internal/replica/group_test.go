package replica

import (
	"bytes"
	"errors"
	"testing"

	"mlq/internal/core"
	"mlq/internal/faults"
	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/quadtree"
	"mlq/internal/telemetry"
)

// testModel builds the factory every replica (and the single-model
// reference) shares: identical configs are what byte-identical convergence
// is defined over.
func testModel() (*core.MLQ, error) {
	return core.NewMLQ(quadtree.Config{
		Region:      geomtest.MustRect(geom.Point{0, 0}, geom.Point{1, 1}),
		MemoryLimit: 64 * quadtree.DefaultNodeBytes,
	})
}

// obs is the deterministic workload: observation i's point and cost.
func obs(i int) (geom.Point, float64) {
	return geom.Point{float64(i%17) / 17, float64(i%23) / 23}, float64(i%31) + 0.5
}

func newTestGroup(t *testing.T, cfg Config) *Group {
	t.Helper()
	if cfg.Replicas == 0 {
		cfg.Replicas = 3
	}
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.NewModel == nil {
		cfg.NewModel = testModel
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := g.Close(); err != nil {
			t.Errorf("closing group: %v", err)
		}
	})
	return g
}

// referenceBytes applies observations [0, n) to a fresh single model and
// serializes it: the ground truth every replica must match byte for byte.
func referenceBytes(t *testing.T, n int) []byte {
	t.Helper()
	m, err := testModel()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p, v := obs(i)
		if err := m.Observe(p, v); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeN pushes observations [from, to) through the handle, re-acquiring it
// across failovers is the caller's business — here a fenced write is fatal.
func writeN(t *testing.T, h *Handle, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		p, v := obs(i)
		if err := h.Observe(p, v); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
}

// assertConverged converges the group and checks every live replica's model
// serializes byte-identically to the reference of n observations.
func assertConverged(t *testing.T, g *Group, n int) {
	t.Helper()
	if err := g.Converge(); err != nil {
		t.Fatalf("converge: %v", err)
	}
	want := referenceBytes(t, n)
	for _, id := range g.IDs() {
		got, err := g.ModelBytes(id)
		if err != nil {
			if errors.Is(err, ErrNoPrimary) {
				t.Fatalf("%s: %v", id, err)
			}
			continue // down replica
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s diverged: %d bytes vs reference %d bytes", id, len(got), len(want))
		}
	}
	if errs := g.ApplyErrors(); len(errs) != 0 {
		t.Fatalf("apply errors recorded: %v", errs)
	}
}

func TestGroupStreamsToFollowers(t *testing.T) {
	g := newTestGroup(t, Config{})
	h := g.Handle()
	writeN(t, h, 0, 200)
	assertConverged(t, g, 200)

	st := g.Stats()
	if st.Acked != 200 {
		t.Fatalf("acked = %d, want 200", st.Acked)
	}
	for _, rs := range st.Replicas {
		if rs.Applied != 200 {
			t.Fatalf("%s applied %d, want 200", rs.ID, rs.Applied)
		}
		if rs.Role == RoleFollower && rs.LagEpochs != 0 {
			t.Fatalf("%s lag %d epochs after converge, want 0", rs.ID, rs.LagEpochs)
		}
	}
	// Every replica answers the same prediction from its own snapshot.
	probe := geom.Point{0.4, 0.6}
	base, ok := g.Predict(g.PrimaryID(), probe)
	if !ok {
		t.Fatal("primary cannot predict after 200 observations")
	}
	for _, id := range g.IDs() {
		got, ok := g.Predict(id, probe)
		if !ok || got != base {
			t.Fatalf("%s predicts (%g, %v), primary says %g", id, got, ok, base)
		}
	}
}

func TestFollowerViewsReportStaleness(t *testing.T) {
	g := newTestGroup(t, Config{MaxBatch: 8})
	writeN(t, g.Handle(), 0, 100)
	if err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	for _, id := range g.IDs() {
		v := g.View(id)
		if v == nil {
			t.Fatalf("%s has no view", id)
		}
		if v.Seq != 100 {
			t.Fatalf("%s view seq %d, want 100", id, v.Seq)
		}
		if v.Term != 1 {
			t.Fatalf("%s view term %d, want 1", id, v.Term)
		}
	}
}

func TestFailoverFencesOldHandleAndPromotesDeterministically(t *testing.T) {
	g := newTestGroup(t, Config{})
	h1 := g.Handle()
	writeN(t, h1, 0, 150)

	newPrimary, err := g.Failover()
	if err != nil {
		t.Fatal(err)
	}
	// All followers equally caught up: the tie breaks to the smallest id.
	if newPrimary != "r1" {
		t.Fatalf("promoted %s, want r1", newPrimary)
	}
	if g.Term() != 2 || g.PrimaryID() != "r1" {
		t.Fatalf("term %d primary %s, want term 2 primary r1", g.Term(), g.PrimaryID())
	}

	// The demoted lineage's capability is fenced forever.
	p, v := obs(150)
	if err := h1.Observe(p, v); !errors.Is(err, ErrFencedTerm) {
		t.Fatalf("stale handle observe: %v, want ErrFencedTerm", err)
	}

	// A fresh handle writes through the new lineage.
	h2 := g.Handle()
	writeN(t, h2, 150, 250)
	assertConverged(t, g, 250)

	st := g.Stats()
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
	if st.AckedLost != 0 {
		t.Fatalf("acked lost = %d, want 0 (journal recovery)", st.AckedLost)
	}
	if st.FencedWrites == 0 {
		t.Fatal("fenced writes not counted")
	}

	// A second failover can only promote r2 (r0 is down).
	if next, err := g.Failover(); err != nil || next != "r2" {
		t.Fatalf("second failover promoted %q (%v), want r2", next, err)
	}
	writeN(t, g.Handle(), 250, 300)
	assertConverged(t, g, 300)
}

func TestFailoverRecoversDroppedRecordsFromJournal(t *testing.T) {
	inj := faults.New(42)
	inj.Enable(faults.ReplicaDrop, faults.SiteConfig{Probability: 0.3})
	g := newTestGroup(t, Config{Transport: NewMemTransport(inj), MaxBatch: 16})
	writeN(t, g.Handle(), 0, 400)

	if _, err := g.Failover(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	// Every acknowledged observation was on the demoted lineage's durable
	// journal, so promotion recovers all of them regardless of drops.
	if st.AckedLost != 0 {
		t.Fatalf("acked lost = %d, want 0", st.AckedLost)
	}
	if st.Acked != 400 {
		t.Fatalf("acked = %d, want 400", st.Acked)
	}
	writeN(t, g.Handle(), 400, 500)
	assertConverged(t, g, 500)
}

func TestCheckpointCompactionForcesResync(t *testing.T) {
	g := newTestGroup(t, Config{})
	writeN(t, g.Handle(), 0, 50)
	if err := g.Converge(); err != nil {
		t.Fatal(err)
	}

	// r2 misses a stretch of the stream entirely.
	g.Transport().Partition("r2")
	writeN(t, g.Handle(), 50, 200)
	// The checkpoint absorbs the journal: r2's gap is now unfillable from
	// the stream or the journal suffix alone.
	if err := g.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	writeN(t, g.Handle(), 200, 220)
	g.Transport().Heal("r2")
	assertConverged(t, g, 220)

	for _, rs := range g.Stats().Replicas {
		if rs.ID == "r2" && rs.Catchup == 0 {
			t.Fatal("r2 resynced without counting catch-up records")
		}
	}
}

func TestRejoinRebuildsDownReplica(t *testing.T) {
	g := newTestGroup(t, Config{})
	writeN(t, g.Handle(), 0, 120)
	if _, err := g.Failover(); err != nil { // r0 dies
		t.Fatal(err)
	}
	writeN(t, g.Handle(), 120, 260)

	if _, ok := g.Predict("r0", geom.Point{0.5, 0.5}); ok {
		t.Fatal("down replica must not serve reads")
	}
	if err := g.Rejoin("r0"); err != nil {
		t.Fatal(err)
	}
	if err := g.Rejoin("r0"); err == nil {
		t.Fatal("rejoining a live replica must fail")
	}
	assertConverged(t, g, 260)

	var r0 ReplicaStats
	for _, rs := range g.Stats().Replicas {
		if rs.ID == "r0" {
			r0 = rs
		}
	}
	if r0.Role != RoleFollower || r0.Applied != 260 {
		t.Fatalf("r0 after rejoin: role %s applied %d, want follower 260", r0.Role, r0.Applied)
	}
	if r0.Catchup == 0 {
		t.Fatal("rejoin counted no catch-up records")
	}

	// The rejoined replica follows the live stream again.
	writeN(t, g.Handle(), 260, 300)
	assertConverged(t, g, 300)
}

func TestDuplicatesAndReordersDoNotDiverge(t *testing.T) {
	inj := faults.New(7)
	inj.Enable(faults.ReplicaDup, faults.SiteConfig{Probability: 0.15})
	inj.Enable(faults.ReplicaReorder, faults.SiteConfig{Probability: 0.15})
	g := newTestGroup(t, Config{Transport: NewMemTransport(inj)})
	writeN(t, g.Handle(), 0, 500)
	assertConverged(t, g, 500)

	dupSeen := false
	for _, rs := range g.Stats().Replicas {
		if rs.Duplicates > 0 {
			dupSeen = true
		}
	}
	if !dupSeen {
		t.Fatal("duplicate fault at p=0.15 over 500 records deduplicated nothing")
	}
}

func TestTermAnnouncementPurgesStaleRecords(t *testing.T) {
	g := newTestGroup(t, Config{})
	writeN(t, g.Handle(), 0, 60)
	if _, err := g.Failover(); err != nil {
		t.Fatal(err)
	}
	writeN(t, g.Handle(), 60, 130)
	assertConverged(t, g, 130)
	st := g.Stats()
	if st.Term != 2 {
		t.Fatalf("term = %d, want 2", st.Term)
	}
	for _, rs := range st.Replicas {
		if rs.Role != RoleDown && rs.Term != 2 {
			t.Fatalf("%s still on term %d", rs.ID, rs.Term)
		}
	}
}

func TestGroupTelemetryPublishesReplicaSeries(t *testing.T) {
	reg := telemetry.New()
	g := newTestGroup(t, Config{Telemetry: NewGroupTelemetry(reg)})
	writeN(t, g.Handle(), 0, 80)
	if _, err := g.Failover(); err != nil {
		t.Fatal(err)
	}
	writeN(t, g.Handle(), 80, 120)
	if err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	var exp bytes.Buffer
	if err := reg.WritePrometheus(&exp); err != nil {
		t.Fatal(err)
	}
	out := exp.String()
	for _, name := range []string{
		"mlq_replica_lag_epochs",
		"mlq_replica_applied_records",
		"mlq_replica_catchup_records",
		"mlq_replica_failovers",
		"mlq_replica_fenced_writes",
	} {
		if !bytes.Contains(exp.Bytes(), []byte(name)) {
			t.Fatalf("exposition missing %s:\n%s", name, out)
		}
	}
}

func TestGroupCloseIsIdempotentAndFencesWrites(t *testing.T) {
	g := newTestGroup(t, Config{Replicas: 2})
	h := g.Handle()
	writeN(t, h, 0, 10)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	p, v := obs(10)
	if err := h.Observe(p, v); !errors.Is(err, ErrFencedTerm) {
		t.Fatalf("observe after close: %v, want ErrFencedTerm", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dir: t.TempDir()}); err == nil {
		t.Fatal("missing NewModel accepted")
	}
	if _, err := New(Config{NewModel: testModel}); err == nil {
		t.Fatal("missing Dir accepted")
	}
}
