// Package replica turns the single-process feedback loop into a replicated
// primary/follower fleet. The primary is a core.Publisher with its
// crash-safety journal; every observation it accepts is streamed — in the
// exact order the journal records it — over a pluggable in-process transport
// to N followers, which fold it into their own copy of the model through the
// same Observe path ReplayJournal uses. Followers serve lock-free Predict
// reads from immutable snapshots with bounded, observable staleness.
//
// Failover is deterministic and clock-free: there are no heartbeats or
// election timeouts, only monotonic term numbers acting as fencing tokens.
// A demoted primary's writes are rejected with ErrFencedTerm; promotion
// picks the most-caught-up follower; a rejoining stale replica rebuilds from
// the last durable catalog checkpoint plus the primary's journal suffix
// before it serves again. Because the primary applies observations in accept
// order and followers apply the identical sequence, every replica's model
// converges to byte-identical serialization — the chaos experiment
// (mlqbench -exp chaosrepl) asserts exactly that across kills, partitions,
// drops, duplicates and reorders.
package replica

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mlq/internal/core"
	"mlq/internal/events"
	"mlq/internal/geom"
	"mlq/internal/quadtree"
)

// Record is one replicated observation: the model point and observed cost,
// stamped with the group-wide sequence number and the term of the lineage
// that accepted it. Cause and MintNS carry the observation's identity on
// the causal event spine across the wire, so a follower's recv/apply hops
// land on the same trace the primary started; both are zero when no
// recorder is installed and for records recovered via journal catch-up
// (the journal's on-disk format does not carry them).
type Record struct {
	Seq    uint64
	Term   uint64
	Point  geom.Point
	Value  float64
	Cause  uint64
	MintNS int64
}

// Typed replication errors.
var (
	// ErrFencedTerm reports a write through a handle whose term has been
	// superseded by a failover: the writer is a demoted primary (or a
	// client of one) and must re-acquire a handle from the group.
	ErrFencedTerm = fmt.Errorf("replica: write fenced by a newer term")
	// ErrCompacted reports a catch-up fetch below the primary's journal
	// base: the requested records were absorbed into a durable checkpoint,
	// and the follower must resync from it.
	ErrCompacted = fmt.Errorf("replica: requested records are checkpointed away")
	// ErrNoPrimary reports an operation attempted while a failover is mid
	// flight and no lineage is serving.
	ErrNoPrimary = fmt.Errorf("replica: no primary lineage is serving")
	// ErrLagged reports a follower that could not be caught up to the
	// primary's acknowledged sequence within the configured fetch budget.
	ErrLagged = fmt.Errorf("replica: follower could not catch up")
)

// Role is a replica's position in the group.
type Role int

const (
	// RoleFollower applies the replication stream and serves stale-bounded
	// reads.
	RoleFollower Role = iota
	// RolePrimary owns the Publisher and the journal; all writes land here.
	RolePrimary
	// RoleDown is a killed replica: it discards stream traffic and serves
	// nothing until Rejoin resyncs it.
	RoleDown
)

// String names the role for telemetry and rendering.
func (r Role) String() string {
	switch r {
	case RoleFollower:
		return "follower"
	case RolePrimary:
		return "primary"
	case RoleDown:
		return "down"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// View is a replica's published read state: an immutable snapshot plus the
// watermarks a reader needs to reason about staleness. Reads are one atomic
// pointer load; the View never changes after publication.
type View struct {
	Snap  *quadtree.Snapshot
	Seq   uint64 // highest observation sequence folded into Snap
	Epoch uint64 // this replica's own publish generation
	Term  uint64 // lineage term the replica was on when it published
}

// epochMark is a primary publish watermark in flight: epoch covered
// everything up to seq.
type epochMark struct {
	epoch uint64
	seq   uint64
}

// node is one group member.
type node struct {
	id  string
	g   *Group
	idx int // ordinal within the group; idx+1 is the event-spine actor

	mu      sync.Mutex
	role    Role
	mlq     *core.MLQ       // owned model while follower or down (nil when primary: the Publisher owns it)
	pub     *core.Publisher // non-nil while primary
	term    uint64          // highest term adopted
	applied uint64          // highest contiguous sequence folded into mlq
	epoch   uint64          // this replica's own publish count
	pending map[uint64]Record

	// Epoch-lag bookkeeping (follower side of OnPublish watermarks).
	primEpoch uint64
	watermark uint64
	marks     []epochMark

	cur atomic.Pointer[View]

	applRecs  atomic.Int64 // records folded into the model as a follower
	dups      atomic.Int64 // stream records dropped as duplicates
	fenced    atomic.Int64 // stream records dropped by term fencing
	catchup   atomic.Int64 // records recovered via journal catch-up/resync
	fetchFail atomic.Int64 // catch-up rounds abandoned after FetchAttempts

	inbox    <-chan Msg
	pumpDone chan struct{}
}

// Predict serves a lock-free read from the replica's current view. ok is
// false while the replica is down (no view) or its model is still empty.
func (n *node) Predict(p geom.Point) (float64, bool) {
	v := n.cur.Load()
	if v == nil || v.Snap == nil {
		return 0, false
	}
	return v.Snap.Predict(p)
}

// view returns the current read state (nil while down).
func (n *node) view() *View { return n.cur.Load() }

// pump is the follower's apply loop: it drains the inbox for the life of
// the group, applying records in sequence order and answering barriers.
// Catch-up fetches run outside n.mu (they do file IO against the primary's
// journal), triggered by the gap evidence ingest leaves behind.
func (n *node) pump() {
	defer close(n.pumpDone)
	for m := range n.inbox {
		if m.Kind == kindBarrier {
			close(m.barrier)
			continue
		}
		if n.ingest(m) {
			n.catchUpOnce()
		}
	}
}

// ingest folds one stream message into the node and reports whether the
// node is now gapped (a buffered record it cannot apply yet) and should
// attempt a journal catch-up.
func (n *node) ingest(m Msg) (gapped bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch m.Kind {
	case KindTerm:
		n.adoptTermLocked(m.Term)
		return false
	case KindEpoch:
		if n.role != RoleFollower || m.Term < n.term {
			return false
		}
		if m.Term > n.term {
			n.adoptTermLocked(m.Term)
		}
		if m.Epoch > n.primEpoch {
			n.primEpoch = m.Epoch
		}
		n.marks = append(n.marks, epochMark{epoch: m.Epoch, seq: m.Seq})
		n.advanceWatermarkLocked()
		return false
	case KindRecord:
		if n.role != RoleFollower {
			// A primary or a down replica is not an apply target; records
			// reaching one are stale lineage traffic.
			n.fenced.Add(1)
			return false
		}
		// The recv hop marks the record leaving the transport, before any
		// dedup/fencing: wire lag, not apply lag.
		n.g.ev.EmitHop(events.SubReplica, events.KindRecv, m.Rec.Cause, m.Rec.MintNS, n.idx+1, m.Rec.Seq)
		return n.ingestRecordLocked(m.Rec)
	default:
		return false
	}
}

// ingestRecordLocked buffers/applies one record; caller holds n.mu.
func (n *node) ingestRecordLocked(rec Record) (gapped bool) {
	if rec.Term < n.term {
		n.fenced.Add(1)
		if n.g.tel != nil {
			n.g.tel.fencedRecords.Inc()
		}
		return false
	}
	if rec.Term > n.term {
		n.adoptTermLocked(rec.Term)
	}
	if rec.Seq <= n.applied {
		n.dups.Add(1)
		return false
	}
	if _, dup := n.pending[rec.Seq]; dup {
		n.dups.Add(1)
		return false
	}
	n.pending[rec.Seq] = rec
	n.applyReadyLocked()
	return len(n.pending) > 0
}

// applyReadyLocked folds the contiguous run starting at applied+1 into the
// model and publishes a fresh view if anything was applied. Caller holds
// n.mu and the node is a follower with a live model.
func (n *node) applyReadyLocked() {
	count := 0
	//lint:ignore boundedretry drain loop, not a retry: every iteration deletes the pending key it read (bounded by len(pending)), and an Observe error advances the cursor instead of retrying the record
	for {
		rec, ok := n.pending[n.applied+1]
		if !ok {
			break
		}
		delete(n.pending, n.applied+1)
		if err := n.mlq.Observe(rec.Point, rec.Value); err != nil {
			// The stream already passed the publisher's validation; a
			// tree-level failure here is a divergence hazard, recorded for
			// the group to surface rather than silently skipped.
			n.g.recordApplyErr(n.id, rec.Seq, err)
			// The sequence still advances: the primary applied this record
			// (or failed identically); stalling forever on it would wedge
			// the follower behind an unfillable gap.
		}
		n.applied++
		count++
		n.applRecs.Add(1)
		n.g.ev.EmitHop(events.SubReplica, events.KindApply, rec.Cause, rec.MintNS, n.idx+1, rec.Seq)
	}
	if count == 0 {
		return
	}
	n.epoch++
	n.publishViewLocked()
	// The follower's epoch publish covers the whole applied run (cause 0);
	// traces join it by the applied-sequence watermark in B.
	n.g.ev.EmitActor(events.SubReplica, events.KindEpochPublish, 0, n.idx+1, n.epoch, n.applied)
	n.advanceWatermarkLocked()
	if n.g.tel != nil {
		n.g.tel.appliedRecs(n.id, int64(count))
	}
}

// publishViewLocked snapshots the model into a fresh immutable view.
func (n *node) publishViewLocked() {
	n.cur.Store(&View{
		Snap:  n.mlq.Tree().Snapshot(),
		Seq:   n.applied,
		Epoch: n.epoch,
		Term:  n.term,
	})
}

// adoptTermLocked moves the node to a newer term, purging buffered records
// of dead lineages: a sequence number is only meaningful within the lineage
// that assigned it, so records fenced by the new term must never be applied.
func (n *node) adoptTermLocked(term uint64) {
	if term <= n.term {
		return
	}
	n.term = term
	for seq, rec := range n.pending {
		if rec.Term < term {
			delete(n.pending, seq)
			n.fenced.Add(1)
		}
	}
	// Epoch watermarks are per-publisher; a new lineage restarts them.
	n.primEpoch, n.watermark, n.marks = 0, 0, nil
	if n.g.tel != nil {
		n.g.tel.lag(n.id, 0)
	}
}

// advanceWatermarkLocked retires every epoch mark fully covered by the
// applied sequence and updates the epoch-lag gauge.
func (n *node) advanceWatermarkLocked() {
	keep := n.marks[:0]
	for _, m := range n.marks {
		if m.seq <= n.applied {
			if m.epoch > n.watermark {
				n.watermark = m.epoch
			}
		} else {
			keep = append(keep, m)
		}
	}
	n.marks = keep
	if n.g.tel != nil {
		n.g.tel.lag(n.id, n.lagEpochsLocked())
	}
}

func (n *node) lagEpochsLocked() uint64 {
	if n.primEpoch <= n.watermark {
		return 0
	}
	return n.primEpoch - n.watermark
}

// catchUpOnce runs one bounded catch-up round against the primary journal:
// it fetches forward from applied+1 while the gap persists, resetting its
// attempt budget on progress and giving up after FetchAttempts consecutive
// failed fetches (a partition heals later; the next gap evidence or a
// convergence barrier retries).
func (n *node) catchUpOnce() {
	for attempt := 1; ; attempt++ {
		n.mu.Lock()
		from := n.applied + 1
		gapped := n.role == RoleFollower && len(n.pending) > 0
		n.mu.Unlock()
		if !gapped {
			return
		}
		recs, err := n.g.fetch(n.id, from, 0)
		if err == ErrCompacted {
			// A checkpoint absorbed the records this follower is missing:
			// the journal cannot fill the gap, only the checkpoint can.
			if rerr := n.resyncFromCheckpoint(); rerr == nil {
				attempt = 0
				continue
			}
		}
		if err == nil && len(recs) > 0 {
			got := 0
			n.mu.Lock()
			for _, rec := range recs {
				if rec.Seq > n.applied {
					if _, dup := n.pending[rec.Seq]; !dup {
						got++
					}
				}
				n.ingestRecordLocked(rec)
			}
			n.mu.Unlock()
			n.catchup.Add(int64(got))
			if n.g.tel != nil {
				n.g.tel.caughtUp(n.id, int64(got))
			}
			if got > 0 {
				attempt = 0 // progress refills the budget
				continue
			}
		}
		if attempt >= n.g.cfg.FetchAttempts {
			n.fetchFail.Add(1)
			return
		}
	}
}

// catchUpTo drives the node to the target sequence using journal fetches
// (and a checkpoint resync if the journal no longer reaches back far
// enough). It is called with the group quiesced — no concurrent writes, the
// pump idle — by convergence barriers, rejoin, and failover promotion.
// A non-nil lin pins the fetches to an explicit (possibly dead) lineage:
// failover reads the demoted primary's durable journal, which no longer
// appears as the group's serving lineage.
func (n *node) catchUpTo(target uint64, lin *lineage) error {
	for attempt := 1; ; attempt++ {
		n.mu.Lock()
		applied := n.applied
		n.mu.Unlock()
		if applied >= target {
			return nil
		}
		var recs []Record
		var err error
		if lin != nil {
			// A dead lineage's journal never rotates again; read it straight.
			recs, err = n.g.fetchLineage(lin, applied+1, 0)
		} else {
			recs, err = n.g.fetch(n.id, applied+1, 0)
		}
		if err == ErrCompacted {
			if err := n.resyncFromCheckpoint(); err != nil {
				return err
			}
			attempt = 0
			continue
		}
		if err == nil && len(recs) > 0 {
			applied0 := applied
			n.mu.Lock()
			for _, rec := range recs {
				n.ingestRecordLocked(rec)
			}
			applied = n.applied
			n.mu.Unlock()
			if applied > applied0 {
				n.catchup.Add(int64(applied - applied0))
				if n.g.tel != nil {
					n.g.tel.caughtUp(n.id, int64(applied-applied0))
				}
				attempt = 0
				continue
			}
		}
		if attempt >= n.g.cfg.FetchAttempts {
			n.fetchFail.Add(1)
			return fmt.Errorf("%w: %s stuck at seq %d of %d after %d fetch attempts",
				ErrLagged, n.id, applied, target, n.g.cfg.FetchAttempts)
		}
	}
}

// resyncFromCheckpoint rebuilds the node's model from the group's last
// durable catalog checkpoint: the recovery path of a replica so stale the
// journal no longer covers it (and the first step of every rejoin).
func (n *node) resyncFromCheckpoint() error {
	model, seq, term, err := n.g.loadCheckpoint()
	if err != nil {
		return err
	}
	n.mu.Lock()
	prev := n.applied
	n.mlq = model
	n.applied = seq
	n.pending = make(map[uint64]Record)
	n.adoptTermLocked(term)
	// Whatever the new term decided, watermarks from the pre-resync stream
	// are meaningless against the checkpoint's state.
	n.primEpoch, n.watermark, n.marks = 0, 0, nil
	n.epoch++
	n.publishViewLocked()
	n.mu.Unlock()
	if seq > prev {
		n.catchup.Add(int64(seq - prev))
		if n.g.tel != nil {
			n.g.tel.caughtUp(n.id, int64(seq-prev))
		}
	}
	return nil
}

// stats snapshots the node's accounting.
func (n *node) stats() ReplicaStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return ReplicaStats{
		ID:         n.id,
		Role:       n.role,
		Term:       n.term,
		Applied:    n.applied,
		Epoch:      n.epoch,
		LagEpochs:  n.lagEpochsLocked(),
		Pending:    len(n.pending),
		Streamed:   n.applRecs.Load(),
		Duplicates: n.dups.Load(),
		Fenced:     n.fenced.Load(),
		Catchup:    n.catchup.Load(),
		FetchFails: n.fetchFail.Load(),
	}
}

// ReplicaStats is one replica's point-in-time accounting.
type ReplicaStats struct {
	ID         string
	Role       Role
	Term       uint64
	Applied    uint64 // highest contiguous applied sequence
	Epoch      uint64 // replica's own publish generation
	LagEpochs  uint64 // primary publish epochs not yet fully applied
	Pending    int    // buffered out-of-order records
	Streamed   int64  // records applied from the live stream or catch-up
	Duplicates int64  // stream records dropped as duplicates
	Fenced     int64  // records dropped by term fencing
	Catchup    int64  // records recovered via journal catch-up/resync
	FetchFails int64  // catch-up rounds abandoned after the attempt budget
}

// sortStats orders replica stats by id for stable rendering.
func sortStats(s []ReplicaStats) {
	sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
}
