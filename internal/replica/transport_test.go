package replica

import (
	"errors"
	"testing"

	"mlq/internal/faults"
	"mlq/internal/geom"
)

func rec(seq uint64) Msg {
	return Msg{Kind: KindRecord, Rec: Record{Seq: seq, Term: 1, Point: geom.Point{0.5, 0.5}, Value: float64(seq)}}
}

// drainSeqs empties whatever is queued on ch, returning the record seqs.
func drainSeqs(ch <-chan Msg) []uint64 {
	var out []uint64
	for {
		select {
		case m := <-ch:
			if m.Kind == KindRecord {
				out = append(out, m.Rec.Seq)
			}
		default:
			return out
		}
	}
}

func TestTransportDeliversInOrder(t *testing.T) {
	tr := NewMemTransport(nil)
	ch := tr.Register("f", 16)
	for seq := uint64(1); seq <= 4; seq++ {
		if err := tr.Send("f", rec(seq)); err != nil {
			t.Fatal(err)
		}
	}
	got := drainSeqs(ch)
	if len(got) != 4 {
		t.Fatalf("delivered %d records, want 4", len(got))
	}
	for i, s := range got {
		if s != uint64(i+1) {
			t.Fatalf("position %d carried seq %d", i, s)
		}
	}
	st := tr.Stats()
	if st.Sent != 4 || st.Delivered != 4 || st.Dropped+st.Duplicated+st.Reordered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTransportDropFaultIsDeterministic(t *testing.T) {
	inj := faults.New(1)
	inj.Enable(faults.ReplicaDrop, faults.SiteConfig{Schedule: []int64{2}})
	tr := NewMemTransport(inj)
	ch := tr.Register("f", 16)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := tr.Send("f", rec(seq)); err != nil {
			t.Fatal(err)
		}
	}
	got := drainSeqs(ch)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("delivered %v, want [1 3] (seq 2 scheduled to drop)", got)
	}
	if st := tr.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
}

func TestTransportDuplicateFault(t *testing.T) {
	inj := faults.New(1)
	inj.Enable(faults.ReplicaDup, faults.SiteConfig{Schedule: []int64{1}})
	tr := NewMemTransport(inj)
	ch := tr.Register("f", 16)
	if err := tr.Send("f", rec(7)); err != nil {
		t.Fatal(err)
	}
	got := drainSeqs(ch)
	if len(got) != 2 || got[0] != 7 || got[1] != 7 {
		t.Fatalf("delivered %v, want [7 7]", got)
	}
	if st := tr.Stats(); st.Duplicated != 1 {
		t.Fatalf("duplicated = %d, want 1", st.Duplicated)
	}
}

func TestTransportReorderHoldsOneBack(t *testing.T) {
	inj := faults.New(1)
	inj.Enable(faults.ReplicaReorder, faults.SiteConfig{Schedule: []int64{1}})
	tr := NewMemTransport(inj)
	ch := tr.Register("f", 16)
	for seq := uint64(1); seq <= 2; seq++ {
		if err := tr.Send("f", rec(seq)); err != nil {
			t.Fatal(err)
		}
	}
	got := drainSeqs(ch)
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("delivered %v, want [2 1] (seq 1 held back behind its successor)", got)
	}
}

func TestTransportFlushHeldReleasesTheSlot(t *testing.T) {
	inj := faults.New(1)
	inj.Enable(faults.ReplicaReorder, faults.SiteConfig{Schedule: []int64{1}})
	tr := NewMemTransport(inj)
	ch := tr.Register("f", 16)
	if err := tr.Send("f", rec(1)); err != nil {
		t.Fatal(err)
	}
	if got := drainSeqs(ch); len(got) != 0 {
		t.Fatalf("held record leaked early: %v", got)
	}
	tr.FlushHeld("f")
	if got := drainSeqs(ch); len(got) != 1 || got[0] != 1 {
		t.Fatalf("FlushHeld delivered %v, want [1]", got)
	}
}

func TestTransportPartitionBlocksAndHeals(t *testing.T) {
	tr := NewMemTransport(nil)
	ch := tr.Register("f", 16)
	tr.Partition("f")
	if err := tr.Send("f", rec(1)); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("send into partition: %v, want ErrPartitioned", err)
	}
	if !tr.Cut("f") {
		t.Fatal("Cut must report the partition")
	}
	tr.Heal("f")
	if err := tr.Send("f", rec(2)); err != nil {
		t.Fatal(err)
	}
	if got := drainSeqs(ch); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after heal delivered %v, want [2]", got)
	}
	if st := tr.Stats(); st.Partitioned != 1 {
		t.Fatalf("partitioned = %d, want 1", st.Partitioned)
	}
}

func TestTransportOverflowCountsLoss(t *testing.T) {
	tr := NewMemTransport(nil)
	ch := tr.Register("f", 1)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := tr.Send("f", rec(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if got := drainSeqs(ch); len(got) != 1 || got[0] != 1 {
		t.Fatalf("delivered %v, want [1] (rest overflowed)", got)
	}
	if st := tr.Stats(); st.Overflowed != 2 {
		t.Fatalf("overflowed = %d, want 2", st.Overflowed)
	}
}

func TestTransportBarrierDrains(t *testing.T) {
	tr := NewMemTransport(nil)
	ch := tr.Register("f", 16)
	if err := tr.Send("f", rec(1)); err != nil {
		t.Fatal(err)
	}
	done, err := tr.Barrier("f")
	if err != nil {
		t.Fatal(err)
	}
	// Consume in order: the record precedes the barrier.
	m := <-ch
	if m.Kind != KindRecord {
		t.Fatalf("first message kind %d, want record", m.Kind)
	}
	b := <-ch
	if b.Kind != kindBarrier || b.barrier == nil {
		t.Fatalf("second message kind %d, want barrier", b.Kind)
	}
	close(b.barrier)
	<-done
}

func TestTransportSendAfterCloseFails(t *testing.T) {
	tr := NewMemTransport(nil)
	tr.Register("f", 4)
	tr.Close()
	tr.Close() // idempotent
	if err := tr.Send("f", rec(1)); err == nil {
		t.Fatal("send after Close succeeded")
	}
	if _, err := tr.Barrier("f"); err == nil {
		t.Fatal("barrier after Close succeeded")
	}
}
