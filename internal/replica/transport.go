package replica

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mlq/internal/faults"
)

// MsgKind discriminates the replication stream's message types.
type MsgKind uint8

const (
	// KindRecord carries one accepted observation.
	KindRecord MsgKind = iota
	// KindTerm announces a new term after a failover: followers adopt it
	// and purge buffered records fenced by it.
	KindTerm
	// KindEpoch is the primary's publish watermark: epoch E covered every
	// observation up to Seq. Followers use it to report staleness in
	// epochs, the same unit the primary's own snapshot ages in.
	KindEpoch
	// kindBarrier is an internal drain marker: the pump closes the attached
	// channel once everything enqueued before it has been processed.
	kindBarrier
)

// Msg is one replication stream message.
type Msg struct {
	Kind MsgKind
	Rec  Record // KindRecord
	Term uint64 // KindTerm, KindEpoch: the sending lineage's term
	Seq  uint64 // KindTerm: promotion seq; KindEpoch: acked seq at publish

	Epoch uint64 // KindEpoch: the primary's publish epoch

	barrier chan struct{} // kindBarrier only
}

// ErrPartitioned reports a send (or a catch-up fetch) refused because the
// destination is on the wrong side of an injected network partition.
var ErrPartitioned = fmt.Errorf("replica: destination is partitioned away")

// Transport carries the replication stream from the primary to followers.
// MemTransport is the canonical in-process implementation and the chaos
// fault plane; nettransport.NetTransport carries the same contract over
// real sockets (Partition and Heal become administrative link cuts).
//
// FlushHeld is a contract point, not a hint: after FlushHeld(to) returns,
// nothing the transport was voluntarily holding back for that destination —
// a reorder hold-back slot, a buffered-but-unwritten outbound frame — may
// still be parked inside the transport. Everything must be either delivered,
// on the wire, or counted as a loss (Dropped/Overflowed). The group's
// flush-then-barrier-then-assert drain pattern (Failover, Converge) relies
// on it on every implementation; transporttest.Run enforces it.
type Transport interface {
	// Register creates (or replaces) the destination's inbox and returns
	// its receive side. The replica group owns the receive loop.
	Register(id string, capacity int) <-chan Msg
	// Send delivers m to the destination. A nil error is not a delivery
	// guarantee — lossy links may lie; journal catch-up repairs whatever
	// the stream loses.
	Send(to string, m Msg) error
	// Barrier enqueues a drain marker behind everything already sent to
	// the destination and returns a channel the receiver closes once it
	// has processed past the marker. Barriers must never be lost; use
	// NewBarrierMsg to frame one.
	Barrier(to string) (chan struct{}, error)
	// FlushHeld releases any fault-held traffic for the destination.
	FlushHeld(to string)
	// Cut reports whether the destination is currently unreachable.
	Cut(to string) bool
	// Partition severs the destination until Heal restores it.
	Partition(id string)
	Heal(id string)
	// Stats returns cumulative delivery accounting.
	Stats() TransportStats
	// Close shuts every inbox so receive loops exit. Idempotent.
	Close()
}

var _ Transport = (*MemTransport)(nil)

// NewBarrierMsg frames a drain-barrier message plus the channel the
// receiving pump closes once it processes the marker. Transport
// implementations outside this package need it because the barrier
// framing is deliberately not part of the wire-visible Msg surface.
func NewBarrierMsg() (Msg, chan struct{}) {
	done := make(chan struct{})
	return Msg{Kind: kindBarrier, barrier: done}, done
}

// BarrierChan returns the drain channel of a barrier message (ok false for
// data-plane messages). Receive loops outside this package — the transport
// conformance suite, custom pumps over an external transport — need it to
// honor the barrier contract: close the channel once everything enqueued
// before the marker has been processed.
func (m Msg) BarrierChan() (chan struct{}, bool) {
	if m.Kind != kindBarrier || m.barrier == nil {
		return nil, false
	}
	return m.barrier, true
}

// TransportStats is the transport's cumulative delivery accounting.
type TransportStats struct {
	Sent        int64 // messages handed to Send
	Delivered   int64 // messages enqueued on a follower inbox
	Dropped     int64 // silently lost by the drop fault
	Duplicated  int64 // delivered twice by the duplicate fault
	Reordered   int64 // held back and delivered after a successor
	Partitioned int64 // refused because the link was partitioned
	Overflowed  int64 // lost because the destination inbox was full
}

// MemTransport is the in-process replication fabric: per-destination bounded
// inboxes with a fault-injection plane wired into internal/faults. Drop,
// duplicate and reorder fire per data message from the injector's seeded
// stream (sites replica.drop / replica.dup / replica.reorder); partitions
// are topology state flipped explicitly by the chaos harness. Control
// messages (term announcements, epoch watermarks, drain barriers) are
// exempt from the probabilistic faults — they model in-process group
// bookkeeping, not the replicated data plane — but a partition blocks them
// like everything else.
//
// Delivery into a full inbox is counted and dropped, never blocked: a slow
// follower must not backpressure the primary's accept path, and the gap it
// accumulates is exactly what journal catch-up repairs.
type MemTransport struct {
	mu      sync.Mutex
	inj     *faults.Injector
	closed  bool
	inboxes map[string]chan Msg
	cut     map[string]bool
	held    map[string]*Msg // one-slot reorder hold-back per destination

	sent, delivered, dropped, duplicated, reordered, partitioned, overflowed atomic.Int64
}

// NewMemTransport returns an empty transport. inj may be nil (no faults).
func NewMemTransport(inj *faults.Injector) *MemTransport {
	return &MemTransport{
		inj:     inj,
		inboxes: make(map[string]chan Msg),
		cut:     make(map[string]bool),
		held:    make(map[string]*Msg),
	}
}

// Register creates the inbox for a destination and returns its receive side.
// Re-registering an id replaces the inbox (a rejoining replica starts with
// an empty queue).
func (t *MemTransport) Register(id string, capacity int) <-chan Msg {
	if capacity <= 0 {
		capacity = 4096
	}
	ch := make(chan Msg, capacity)
	t.mu.Lock()
	t.inboxes[id] = ch
	delete(t.held, id)
	t.mu.Unlock()
	return ch
}

// Partition cuts a replica off: sends to it (and fetches by it) fail with
// ErrPartitioned until Heal.
func (t *MemTransport) Partition(id string) {
	t.mu.Lock()
	t.cut[id] = true
	t.mu.Unlock()
}

// Heal reconnects a partitioned replica.
func (t *MemTransport) Heal(id string) {
	t.mu.Lock()
	delete(t.cut, id)
	t.mu.Unlock()
}

// Cut reports whether a replica is currently partitioned away.
func (t *MemTransport) Cut(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cut[id]
}

// Send delivers m to the destination's inbox, subject to the fault plane.
// A nil error means the sender may believe it was delivered — the drop
// fault and inbox overflow intentionally lie, because that is what a lossy
// network looks like to a fire-and-forget streamer.
func (t *MemTransport) Send(to string, m Msg) error {
	t.sent.Add(1)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("replica: transport is closed")
	}
	ch, ok := t.inboxes[to]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("replica: unknown destination %q", to)
	}
	if t.cut[to] {
		t.partitioned.Add(1)
		t.mu.Unlock()
		return ErrPartitioned
	}
	if m.Kind == KindRecord {
		if t.inj.Fire(faults.ReplicaDrop) {
			t.dropped.Add(1)
			t.mu.Unlock()
			return nil
		}
		if held := t.held[to]; held == nil && t.inj.Fire(faults.ReplicaReorder) {
			// Hold this message back; it rides behind the next one.
			hm := m
			t.held[to] = &hm
			t.reordered.Add(1)
			t.mu.Unlock()
			return nil
		}
	}
	t.deliverLocked(to, ch, m)
	if m.Kind == KindRecord && t.inj.Fire(faults.ReplicaDup) {
		t.duplicated.Add(1)
		t.deliverLocked(to, ch, m)
	}
	if held := t.held[to]; held != nil {
		delete(t.held, to)
		t.deliverLocked(to, ch, *held)
	}
	t.mu.Unlock()
	return nil
}

// FlushHeld releases a destination's reorder hold-back slot, if occupied.
// Barriers and drains call it so a held record cannot outlive the stream
// that reordered around it.
func (t *MemTransport) FlushHeld(to string) {
	t.mu.Lock()
	if held := t.held[to]; held != nil {
		delete(t.held, to)
		if ch, ok := t.inboxes[to]; ok && !t.cut[to] {
			t.deliverLocked(to, ch, *held)
		}
	}
	t.mu.Unlock()
}

func (t *MemTransport) deliverLocked(to string, ch chan Msg, m Msg) {
	select {
	case ch <- m:
		t.delivered.Add(1)
	default:
		t.overflowed.Add(1)
	}
}

// Barrier enqueues a drain barrier, blocking until there is room: a
// barrier must never be lost, it is the group's synchronization primitive,
// not data-plane traffic.
func (t *MemTransport) Barrier(to string) (chan struct{}, error) {
	t.mu.Lock()
	ch, ok := t.inboxes[to]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("replica: transport is closed")
	}
	if !ok {
		return nil, fmt.Errorf("replica: unknown destination %q", to)
	}
	m, done := NewBarrierMsg()
	//lint:ignore chanowner barriers must never be lost: blocking until the bounded inbox has room is the synchronization contract, and the receiver's pump is always draining
	ch <- m
	return done, nil
}

// Close shuts every inbox: receivers' pumps drain what is queued and exit;
// subsequent sends fail. Idempotent.
func (t *MemTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for _, ch := range t.inboxes {
		close(ch)
	}
}

// Stats returns the transport's cumulative counters.
func (t *MemTransport) Stats() TransportStats {
	return TransportStats{
		Sent:        t.sent.Load(),
		Delivered:   t.delivered.Load(),
		Dropped:     t.dropped.Load(),
		Duplicated:  t.duplicated.Load(),
		Reordered:   t.reordered.Load(),
		Partitioned: t.partitioned.Load(),
		Overflowed:  t.overflowed.Load(),
	}
}
