package replica

import (
	"sync"

	"mlq/internal/telemetry"
)

// GroupTelemetry mirrors a replica group's health into a telemetry
// registry under the mlq_replica_* namespace:
//
//	mlq_replica_lag_epochs{replica}      gauge   primary publish epochs a follower has not fully applied
//	mlq_replica_applied_records{replica} counter records folded into a follower's model
//	mlq_replica_catchup_records{replica} counter records recovered via journal catch-up or checkpoint resync
//	mlq_replica_failovers                counter completed failovers
//	mlq_replica_fenced_writes            counter writes rejected with ErrFencedTerm
//	mlq_replica_fenced_records           counter stale-lineage stream records dropped by followers
//
// Construct one with NewGroupTelemetry and hand it to Config.Telemetry; the
// per-replica series are materialized when the group registers its ids.
type GroupTelemetry struct {
	reg *telemetry.Registry

	failovers     *telemetry.Counter
	fencedWrites  *telemetry.Counter
	fencedRecords *telemetry.Counter

	mu       sync.Mutex
	lagG     map[string]*telemetry.Gauge
	appliedC map[string]*telemetry.Counter
	catchupC map[string]*telemetry.Counter
}

// NewGroupTelemetry binds the group-level series now; per-replica series
// appear when a Group is built with this telemetry.
func NewGroupTelemetry(reg *telemetry.Registry) *GroupTelemetry {
	if reg == nil {
		return nil
	}
	return &GroupTelemetry{
		reg:           reg,
		failovers:     reg.Counter("mlq_replica_failovers", "completed primary failovers"),
		fencedWrites:  reg.Counter("mlq_replica_fenced_writes", "writes rejected by term fencing"),
		fencedRecords: reg.Counter("mlq_replica_fenced_records", "stale-lineage stream records dropped by followers"),
		lagG:          make(map[string]*telemetry.Gauge),
		appliedC:      make(map[string]*telemetry.Counter),
		catchupC:      make(map[string]*telemetry.Counter),
	}
}

// register materializes the per-replica series for a group's ids.
func (t *GroupTelemetry) register(g *Group) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, id := range g.ids {
		l := telemetry.L("replica", id)
		t.lagG[id] = t.reg.Gauge("mlq_replica_lag_epochs", "primary publish epochs not yet fully applied", l)
		t.appliedC[id] = t.reg.Counter("mlq_replica_applied_records", "records folded into the replica's model", l)
		t.catchupC[id] = t.reg.Counter("mlq_replica_catchup_records", "records recovered via journal catch-up or checkpoint resync", l)
	}
}

func (t *GroupTelemetry) lag(id string, v uint64) {
	t.mu.Lock()
	g := t.lagG[id]
	t.mu.Unlock()
	if g != nil {
		g.SetInt(int64(v))
	}
}

func (t *GroupTelemetry) appliedRecs(id string, n int64) {
	t.mu.Lock()
	c := t.appliedC[id]
	t.mu.Unlock()
	if c != nil {
		c.Add(n)
	}
}

func (t *GroupTelemetry) caughtUp(id string, n int64) {
	t.mu.Lock()
	c := t.catchupC[id]
	t.mu.Unlock()
	if c != nil {
		c.Add(n)
	}
}
