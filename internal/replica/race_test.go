package replica

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mlq/internal/geom"
)

// TestGroupConcurrencyHammer runs the group the way production would under
// -race: concurrent lock-free follower reads, a primary write stream, and
// one forced failover mid-stream. It asserts the replication invariants the
// design note promises: terms never regress anywhere, every replica's
// applied sequence and view epoch are monotonic, a fenced handle stays
// fenced, and after convergence every live replica is byte-identical.
func TestGroupConcurrencyHammer(t *testing.T) {
	g := newTestGroup(t, Config{MaxBatch: 8})

	const total = 2000
	var stopReaders atomic.Bool
	var wg sync.WaitGroup

	// Readers: hammer lock-free predictions and view loads on every
	// replica, asserting per-replica monotonicity of term, seq and epoch.
	for _, id := range g.IDs() {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastTerm, lastSeq, lastEpoch uint64
			sawView := false
			for !stopReaders.Load() {
				v := g.View(id)
				if v == nil {
					// A down replica serves nothing; its counters restart
					// from the checkpoint when it returns, so re-baseline.
					lastTerm, lastSeq, lastEpoch, sawView = 0, 0, 0, false
					continue
				}
				if sawView {
					if v.Term < lastTerm {
						t.Errorf("%s term regressed %d -> %d", id, lastTerm, v.Term)
						return
					}
					if v.Term == lastTerm && v.Seq < lastSeq {
						t.Errorf("%s seq regressed %d -> %d in term %d", id, lastSeq, v.Seq, v.Term)
						return
					}
					if v.Term == lastTerm && v.Epoch < lastEpoch {
						t.Errorf("%s epoch regressed %d -> %d in term %d", id, lastEpoch, v.Epoch, v.Term)
						return
					}
				}
				lastTerm, lastSeq, lastEpoch, sawView = v.Term, v.Seq, v.Epoch, true
				g.Predict(id, geom.Point{0.3, 0.7})
			}
		}()
	}

	// Writer: pushes the full workload, surviving exactly one fencing (the
	// forced failover) by re-acquiring a handle.
	var fencedOnce atomic.Bool
	writerDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(writerDone)
		h := g.Handle()
		for i := 0; i < total; i++ {
			p, v := obs(i)
			err := h.Observe(p, v)
			if errors.Is(err, ErrFencedTerm) {
				fencedOnce.Store(true)
				h = g.Handle()
				err = h.Observe(p, v)
			}
			if err != nil {
				t.Errorf("observe %d: %v", i, err)
				return
			}
		}
	}()

	// One failover mid-stream, from a third goroutine so it interleaves
	// arbitrarily with writes and reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := g.Failover(); err != nil {
			t.Errorf("failover: %v", err)
		}
	}()

	<-writerDone
	stopReaders.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	if err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Term != 2 || st.Failovers != 1 {
		t.Fatalf("term %d failovers %d, want 2/1", st.Term, st.Failovers)
	}
	// Acked accounting: everything the writer got acknowledged minus what
	// the failover provably lost must be applied on every live replica.
	if st.AckedLost > uint64(g.cfg.MaxBatch) {
		t.Fatalf("acked lost %d exceeds one batch (%d)", st.AckedLost, g.cfg.MaxBatch)
	}
	var live [][]byte
	for _, id := range g.IDs() {
		b, err := g.ModelBytes(id)
		if err != nil {
			continue // the demoted primary is down
		}
		live = append(live, b)
		for _, rs := range st.Replicas {
			if rs.ID == id && rs.Role != RoleDown && rs.Applied != st.Acked {
				t.Fatalf("%s applied %d, acked %d", id, rs.Applied, st.Acked)
			}
		}
	}
	if len(live) < 2 {
		t.Fatalf("only %d live replicas after one failover of 3", len(live))
	}
	for i := 1; i < len(live); i++ {
		if !bytes.Equal(live[0], live[i]) {
			t.Fatalf("live replicas diverged: %d vs %d bytes", len(live[0]), len(live[i]))
		}
	}
	if errs := g.ApplyErrors(); len(errs) != 0 {
		t.Fatalf("apply errors: %v", errs)
	}
}
