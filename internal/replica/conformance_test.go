package replica_test

import (
	"testing"

	"mlq/internal/replica"
	"mlq/internal/replica/transporttest"
)

// TestMemTransportConformance runs the shared Transport contract suite
// against the canonical in-process implementation. nettransport runs the
// same suite over real sockets; a semantic drift between the two shows up
// here first.
func TestMemTransportConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T) replica.Transport {
		return replica.NewMemTransport(nil)
	})
}
