// Package transporttest is the executable contract of replica.Transport: a
// conformance suite every implementation must pass, run against both the
// in-process MemTransport and the socket-backed nettransport. The subtests
// pin exactly the semantics the Group's drain patterns (Failover, Converge,
// Rejoin) lean on — in-order delivery on a healthy link, barriers that are
// never lost (partitions and dead links included), FlushHeld leaving
// nothing parked, sends that never block, and honest loss accounting.
package transporttest

import (
	"testing"
	"time"

	"mlq/internal/geom"
	"mlq/internal/replica"
)

// Factory builds a fresh transport per subtest. The suite closes it.
type Factory func(t *testing.T) replica.Transport

// rec builds a data-plane record message with a recognizable sequence.
func rec(seq uint64) replica.Msg {
	return replica.Msg{Kind: replica.KindRecord, Rec: replica.Record{
		Seq:   seq,
		Term:  1,
		Point: geom.Point{float64(seq), float64(seq) / 2},
		Value: float64(seq) * 1.5,
		Cause: seq,
	}}
}

// pump drains an inbox, recording record sequences in arrival order and
// closing barrier markers like a real replica's pump does.
type pump struct {
	seqs chan uint64
}

func startPump(inbox <-chan replica.Msg) *pump {
	p := &pump{seqs: make(chan uint64, 4096)}
	go func() {
		defer close(p.seqs)
		for m := range inbox {
			if ch, ok := m.BarrierChan(); ok {
				close(ch)
				continue
			}
			if m.Kind == replica.KindRecord {
				//lint:ignore chanowner test pump: the collector always drains and the buffer outsizes every workload in the suite
				p.seqs <- m.Rec.Seq
			}
		}
	}()
	return p
}

// collect receives up to n sequences, bounded by a deadline.
func (p *pump) collect(n int, within time.Duration) []uint64 {
	var got []uint64
	deadline := time.After(within)
	for len(got) < n {
		select {
		case s, ok := <-p.seqs:
			if !ok {
				return got
			}
			got = append(got, s)
		case <-deadline:
			return got
		}
	}
	return got
}

func waitFor(t *testing.T, what string, within time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Run executes the conformance suite against a transport implementation.
func Run(t *testing.T, factory Factory) {
	t.Run("InOrderDelivery", func(t *testing.T) {
		tr := factory(t)
		defer tr.Close()
		tr.Register("src", 64)
		inbox := tr.Register("dst", 1024)
		p := startPump(inbox)
		const n = 300
		for i := uint64(1); i <= n; i++ {
			if err := tr.Send("dst", rec(i)); err != nil {
				t.Fatalf("Send(%d): %v", i, err)
			}
		}
		got := p.collect(n, 5*time.Second)
		if len(got) != n {
			t.Fatalf("delivered %d of %d records on a healthy link", len(got), n)
		}
		for i, s := range got {
			if s != uint64(i+1) {
				t.Fatalf("out-of-order delivery: position %d holds seq %d", i, s)
			}
		}
	})

	t.Run("BarrierDrainsEverythingAhead", func(t *testing.T) {
		tr := factory(t)
		defer tr.Close()
		tr.Register("src", 64)
		inbox := tr.Register("dst", 1024)
		var ahead int
		drained := make(chan int, 1)
		go func() {
			n := 0
			for m := range inbox {
				if ch, ok := m.BarrierChan(); ok {
					//lint:ignore chanowner capacity-1 channel written once per subtest; the test body always receives it
					drained <- n
					close(ch)
					continue
				}
				n++
			}
		}()
		const n = 100
		for i := uint64(1); i <= n; i++ {
			if err := tr.Send("dst", rec(i)); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		tr.FlushHeld("dst")
		done, err := tr.Barrier("dst")
		if err != nil {
			t.Fatalf("Barrier: %v", err)
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("barrier never drained")
		}
		ahead = <-drained
		if ahead != n {
			t.Fatalf("barrier overtook the stream: %d of %d records ahead of it", ahead, n)
		}
	})

	t.Run("PartitionBlocksHealRestores", func(t *testing.T) {
		tr := factory(t)
		defer tr.Close()
		tr.Register("src", 64)
		inbox := tr.Register("dst", 1024)
		p := startPump(inbox)
		tr.Partition("dst")
		if !tr.Cut("dst") {
			t.Fatal("Cut must report a partitioned destination")
		}
		if err := tr.Send("dst", rec(1)); err != replica.ErrPartitioned {
			t.Fatalf("Send to partitioned destination: got %v, want ErrPartitioned", err)
		}
		if got := tr.Stats().Partitioned; got < 1 {
			t.Fatalf("Partitioned counter = %d, want >= 1", got)
		}
		tr.Heal("dst")
		waitFor(t, "heal to lift Cut", 5*time.Second, func() bool { return !tr.Cut("dst") })
		if err := tr.Send("dst", rec(2)); err != nil {
			t.Fatalf("Send after Heal: %v", err)
		}
		got := p.collect(1, 5*time.Second)
		if len(got) != 1 || got[0] != 2 {
			t.Fatalf("post-heal delivery = %v, want [2]", got)
		}
	})

	t.Run("BarrierSurvivesPartition", func(t *testing.T) {
		tr := factory(t)
		defer tr.Close()
		tr.Register("src", 64)
		inbox := tr.Register("dst", 1024)
		startPump(inbox)
		tr.Partition("dst")
		tr.FlushHeld("dst")
		done, err := tr.Barrier("dst")
		if err != nil {
			t.Fatalf("Barrier across a partition: %v", err)
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("a barrier must never be lost, partition or not")
		}
	})

	t.Run("FlushHeldParksNothing", func(t *testing.T) {
		tr := factory(t)
		defer tr.Close()
		tr.Register("src", 64)
		inbox := tr.Register("dst", 1024)
		startPump(inbox)
		const n = 50
		for i := uint64(1); i <= n; i++ {
			if err := tr.Send("dst", rec(i)); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		tr.FlushHeld("dst")
		done, err := tr.Barrier("dst")
		if err != nil {
			t.Fatalf("Barrier: %v", err)
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("drain barrier never closed")
		}
		// After flush + barrier, every record is out of the transport: either
		// delivered to the pump or honestly counted as a loss.
		waitFor(t, "flush accounting to settle", 5*time.Second, func() bool {
			st := tr.Stats()
			return st.Delivered+st.Dropped+st.Overflowed >= n
		})
	})

	t.Run("SendNeverBlocksOnFullInbox", func(t *testing.T) {
		tr := factory(t)
		defer tr.Close()
		tr.Register("src", 64)
		tr.Register("dst", 4) // tiny inbox, no pump
		const n = 64
		start := time.Now()
		for i := uint64(1); i <= n; i++ {
			if err := tr.Send("dst", rec(i)); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("sends took %v; a full inbox must never block the sender", elapsed)
		}
		waitFor(t, "overflow accounting", 5*time.Second, func() bool {
			st := tr.Stats()
			return st.Delivered == 4 && st.Delivered+st.Overflowed+st.Dropped == n
		})
	})

	t.Run("SendAfterCloseFails", func(t *testing.T) {
		tr := factory(t)
		tr.Register("src", 64)
		inbox := tr.Register("dst", 16)
		tr.Close()
		if err := tr.Send("dst", rec(1)); err == nil {
			t.Fatal("Send after Close must fail")
		}
		if _, err := tr.Barrier("dst"); err == nil {
			t.Fatal("Barrier after Close must fail")
		}
		select {
		case _, ok := <-inbox:
			if ok {
				t.Fatal("closed transport delivered a message")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close must close registered inboxes")
		}
	})
}
