package replica

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"mlq/internal/catalog"
	"mlq/internal/core"
	"mlq/internal/events"
	"mlq/internal/geom"
	"mlq/internal/journal"
)

// Config assembles a replica group. NewModel must build identically
// configured empty models — byte-identical convergence depends on every
// replica folding the same observation sequence into the same tree shape.
type Config struct {
	// Replicas is the total group size including the primary. Minimum 1.
	Replicas int
	// Dir holds the per-term journals and the durable checkpoint file.
	Dir string
	// NewModel builds one replica's empty model. Required.
	NewModel func() (*core.MLQ, error)
	// Transport carries the replication stream. Nil builds a fault-free
	// MemTransport; pass one wired to a faults.Injector for chaos runs,
	// or any other Transport implementation for out-of-process fabrics.
	Transport Transport
	// QueueCapacity and MaxBatch configure each term's Publisher (defaults
	// as in core.PublisherConfig). MaxBatch also bounds the acknowledged
	// observations a failover may lose, so chaos asserts against it.
	QueueCapacity int
	MaxBatch      int
	// InboxCapacity bounds each follower's stream inbox (default 4096).
	InboxCapacity int
	// FetchAttempts bounds consecutive failed journal catch-up fetches
	// before a round gives up. Default 8.
	FetchAttempts int
	// Telemetry, when non-nil, receives the mlq_replica_* metrics.
	Telemetry *GroupTelemetry
	// Events, when non-nil, is the causal event spine shared by every
	// lineage's publisher and every follower: send/recv/apply hops land on
	// it, and a failover fires its flight recorder.
	Events *events.Recorder
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.FetchAttempts <= 0 {
		c.FetchAttempts = 8
	}
	return c
}

// lineage is one term's write path: the Publisher, its journal, and the
// sequence arithmetic that maps journal positions to group-wide sequence
// numbers. It is immutable once stored; a checkpoint installs a fresh value.
type lineage struct {
	term  uint64
	base  uint64 // group seq at promotion: pub-local seq s is group seq base+s
	jbase uint64 // group seq the journal's first record follows (advances at checkpoints)
	jpath string
	pub   *core.Publisher
	jn    *journal.Journal
}

// Group is a replicated model fleet: one primary lineage accepting writes,
// N-1 followers applying the stream. All methods are safe for concurrent
// use; reads (Predict) never block behind writes or failovers.
type Group struct {
	cfg Config
	t   Transport
	tel *GroupTelemetry
	ev  *events.Recorder // causal event spine; nil = recording off

	// lin is the serving lineage (nil mid-failover). linMu makes the pair
	// (lineage value, journal file identity) consistent for fetchers: a
	// checkpoint rotates the journal and installs the new lineage under the
	// write lock, so a fetch holding the read lock never computes sequence
	// numbers with one generation's base against the other's file.
	lin   atomic.Pointer[lineage]
	linMu sync.RWMutex

	mu        sync.Mutex // serializes writes, failover, checkpoint, rejoin
	term      uint64
	primaryID string
	closed    bool

	nodes map[string]*node
	ids   []string // sorted; immutable after New

	ckptMu   sync.Mutex // serializes checkpoint file save/load
	ckptPath string

	fencedWrites atomic.Int64
	failovers    atomic.Int64
	ackedLost    atomic.Uint64

	applyErrMu sync.Mutex
	applyErrs  []string
}

// New builds the group: Replicas nodes, node "r0" promoted as the term-1
// primary, the rest following. The initial promotion writes the first
// durable checkpoint (an empty model at seq 0), so rejoin and deep catch-up
// always have a base to resync from.
func New(cfg Config) (*Group, error) {
	cfg = cfg.withDefaults()
	if cfg.NewModel == nil {
		return nil, fmt.Errorf("replica: Config.NewModel is required")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("replica: Config.Dir is required")
	}
	t := cfg.Transport
	if t == nil {
		t = NewMemTransport(nil)
	}
	g := &Group{
		cfg:      cfg,
		t:        t,
		tel:      cfg.Telemetry,
		ev:       cfg.Events,
		nodes:    make(map[string]*node, cfg.Replicas),
		ckptPath: filepath.Join(cfg.Dir, "checkpoint.mlqc"),
	}
	for i := 0; i < cfg.Replicas; i++ {
		id := fmt.Sprintf("r%d", i)
		m, err := cfg.NewModel()
		if err != nil {
			return nil, fmt.Errorf("replica: building model for %s: %w", id, err)
		}
		n := &node{
			id:       id,
			g:        g,
			idx:      i,
			role:     RoleFollower,
			mlq:      m,
			pending:  make(map[uint64]Record),
			inbox:    t.Register(id, cfg.InboxCapacity),
			pumpDone: make(chan struct{}),
		}
		n.publishViewLocked()
		g.nodes[id] = n
		g.ids = append(g.ids, id)
		go n.pump()
	}
	if g.tel != nil {
		g.tel.register(g)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.promoteLocked(g.ids[0], 0); err != nil {
		g.closeLocked()
		return nil, err
	}
	return g, nil
}

// promoteLocked turns a caught-up node into the primary of a fresh term:
// new journal, new Publisher wrapping the node's model, accepted-stream
// fan-out and epoch watermarks wired to the peers, a term announcement to
// everyone, and a durable checkpoint at the promotion sequence (which is
// what makes a later resync of an arbitrarily stale replica sound).
// Caller holds g.mu; the node's model must reflect exactly seqs 1..acked.
func (g *Group) promoteLocked(id string, acked uint64) error {
	g.term++
	term := g.term
	n := g.nodes[id]

	n.mu.Lock()
	model := n.mlq
	n.mlq = nil
	n.role = RolePrimary
	n.pending = make(map[uint64]Record)
	n.adoptTermLocked(term)
	n.applied = acked
	n.mu.Unlock()

	jpath := filepath.Join(g.cfg.Dir, fmt.Sprintf("term-%04d.mlqj", term))
	jn, err := journal.Create(jpath, journal.WithEvents(g.ev))
	if err != nil {
		return fmt.Errorf("replica: creating term %d journal: %w", term, err)
	}
	pub, err := core.NewPublisher(model, core.PublisherConfig{
		QueueCapacity: g.cfg.QueueCapacity,
		MaxBatch:      g.cfg.MaxBatch,
		Journal:       jn,
		Events:        g.ev,
	})
	if err != nil {
		jn.Close()
		return fmt.Errorf("replica: starting term %d publisher: %w", term, err)
	}

	peers := make([]string, 0, len(g.ids)-1)
	peerIdx := make([]int, 0, len(g.ids)-1)
	for _, pid := range g.ids {
		if pid != id {
			peers = append(peers, pid)
			peerIdx = append(peerIdx, g.nodes[pid].idx)
		}
	}
	base := acked
	tr := g.t
	ev := g.ev
	// Accepted-observation fan-out: runs inside the publisher's accept
	// critical section, so stream order is exactly journal order. Send
	// errors are the data plane's problem (drops and partitions are what
	// journal catch-up repairs), never the accept path's. The send hop is
	// emitted per destination: the spine's replication-lag histograms
	// measure from mint to each peer's wire.
	pub.Subscribe(func(acc core.Accepted) {
		rec := Record{
			Seq: base + acc.Seq, Term: term, Point: acc.Point, Value: acc.Value,
			Cause: acc.Cause, MintNS: acc.MintNS,
		}
		for i, pid := range peers {
			_ = tr.Send(pid, Msg{Kind: KindRecord, Rec: rec})
			ev.EmitHop(events.SubReplica, events.KindSend, rec.Cause, rec.MintNS, peerIdx[i]+1, rec.Seq)
		}
	})
	// Publish watermarks: the primary's own read view plus the epoch marks
	// followers measure their staleness against.
	pub.OnPublish(func(epoch uint64, applied int64) {
		seq := base + uint64(applied)
		n.cur.Store(&View{Snap: pub.Snapshot(), Seq: seq, Epoch: epoch, Term: term})
		n.mu.Lock()
		n.applied = seq
		n.epoch = epoch
		n.mu.Unlock()
		for _, pid := range peers {
			_ = tr.Send(pid, Msg{Kind: KindEpoch, Term: term, Seq: seq, Epoch: epoch})
		}
	})

	n.mu.Lock()
	n.pub = pub
	n.mu.Unlock()
	n.cur.Store(&View{Snap: pub.Snapshot(), Seq: base, Epoch: 0, Term: term})

	for _, pid := range peers {
		_ = g.t.Send(pid, Msg{Kind: KindTerm, Term: term, Seq: base})
	}

	newLin := &lineage{term: term, base: base, jbase: base, jpath: jpath, pub: pub, jn: jn}
	if err := g.saveCheckpoint(pub, base, term); err != nil {
		return err
	}
	g.primaryID = id
	g.linMu.Lock()
	g.lin.Store(newLin)
	g.linMu.Unlock()
	return nil
}

// Handle is a fencing-token write capability: it carries the term it was
// issued under, and every write re-validates that term against the group.
// A handle issued before a failover keeps failing with ErrFencedTerm
// forever — exactly what a demoted primary's clients must see.
type Handle struct {
	g    *Group
	term uint64
}

// Handle issues a write capability for the current term.
func (g *Group) Handle() *Handle {
	g.mu.Lock()
	defer g.mu.Unlock()
	return &Handle{g: g, term: g.term}
}

// Term returns the term this handle was issued under.
func (h *Handle) Term() uint64 { return h.term }

// Observe submits one observation through the handle's term. The write is
// serialized under the group lock so the publisher's accept order — and
// therefore the journal and the replication stream — is also the apply
// order on every replica; that is the invariant byte-identical convergence
// rests on. Superseded terms are fenced with ErrFencedTerm.
func (h *Handle) Observe(p geom.Point, actual float64) error {
	g := h.g
	g.mu.Lock()
	lin := g.lin.Load()
	if g.closed || lin == nil || h.term != g.term {
		g.mu.Unlock()
		g.fencedWrites.Add(1)
		if g.tel != nil {
			g.tel.fencedWrites.Inc()
		}
		return fmt.Errorf("%w: handle term %d, group term %d", ErrFencedTerm, h.term, g.term)
	}
	err := lin.pub.Observe(p, actual)
	g.mu.Unlock()
	if errors.Is(err, core.ErrPublisherClosed) {
		// The lineage died between our term check and the publisher — the
		// caller's capability is stale either way.
		g.fencedWrites.Add(1)
		if g.tel != nil {
			g.tel.fencedWrites.Inc()
		}
		return fmt.Errorf("%w: term %d lineage closed", ErrFencedTerm, h.term)
	}
	return err
}

// Failover demotes the current primary (simulating its death: its publisher
// drains and closes, its node goes down) and promotes the most-caught-up
// reachable follower under the next term. The new primary first recovers
// every acknowledged observation it is missing from the demoted lineage's
// durable journal, so in the common case a failover loses nothing; the
// hard bound is one publisher batch (MaxBatch), reported via AckedLost.
// The promotion is deterministic: max applied sequence, ties to the
// lexicographically smallest id. Returns the new primary's id.
func (g *Group) Failover() (string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return "", fmt.Errorf("replica: group is closed")
	}
	old := g.lin.Load()
	if old == nil {
		return "", ErrNoPrimary
	}

	// Fence first: fetches and writes fail fast while the group is between
	// lineages.
	g.linMu.Lock()
	g.lin.Store(nil)
	g.linMu.Unlock()

	acked := old.base + old.pub.AcceptedSeq()
	if err := old.pub.Close(); err != nil {
		g.recordApplyErr(g.primaryID, acked, err)
	}
	_ = old.jn.Close()

	oldID := g.primaryID
	on := g.nodes[oldID]
	on.mu.Lock()
	on.role = RoleDown
	on.pub = nil
	on.mlq = nil
	on.mu.Unlock()
	on.cur.Store(nil)

	// Drain every follower's inbox so applied counts are final before the
	// promotion decision, and no held-back reordered record outlives the
	// stream that delayed it.
	for _, id := range g.ids {
		n := g.nodes[id]
		n.mu.Lock()
		role := n.role
		n.mu.Unlock()
		if role != RoleFollower {
			continue
		}
		g.t.FlushHeld(id)
		if done, err := g.t.Barrier(id); err == nil {
			<-done
		}
	}

	best, bestApplied := "", uint64(0)
	for _, id := range g.ids {
		n := g.nodes[id]
		n.mu.Lock()
		role, applied := n.role, n.applied
		n.mu.Unlock()
		if role != RoleFollower || g.t.Cut(id) {
			continue
		}
		if best == "" || applied > bestApplied {
			best, bestApplied = id, applied
		}
	}
	if best == "" {
		return "", fmt.Errorf("replica: no reachable follower to promote (term %d)", old.term)
	}

	// Recover the gap from the demoted lineage's durable journal: the
	// process died, its disk did not.
	bn := g.nodes[best]
	if err := bn.catchUpTo(acked, old); err != nil {
		g.recordApplyErr(best, acked, err)
	}
	bn.mu.Lock()
	promoteSeq := bn.applied
	bn.mu.Unlock()
	if acked > promoteSeq {
		g.ackedLost.Add(acked - promoteSeq)
	}

	if err := g.promoteLocked(best, promoteSeq); err != nil {
		return "", err
	}
	g.failovers.Add(1)
	if g.tel != nil {
		g.tel.failovers.Inc()
	}
	// Failover is a flight-recorder trigger: the black-box dump freezes
	// what every subsystem was doing when the primary died.
	g.ev.Emit(events.SubReplica, events.KindFailover, 0, old.term, g.term)
	g.ev.Trigger("failover")
	return best, nil
}

// Rejoin resurrects a down replica as a follower: heal its partition,
// discard its stale inbox, rebuild from the durable checkpoint, then replay
// the journal suffix up to the primary's acknowledged sequence. The replica
// serves reads again only after it is fully caught up.
func (g *Group) Rejoin(id string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("replica: group is closed")
	}
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("replica: unknown replica %q", id)
	}
	n.mu.Lock()
	role := n.role
	n.mu.Unlock()
	if role != RoleDown {
		return fmt.Errorf("replica: %s is %s, only a down replica can rejoin", id, role)
	}
	lin := g.lin.Load()
	if lin == nil {
		return ErrNoPrimary
	}
	g.t.Heal(id)
	// Stale stream traffic queued while the node was down is drained (and
	// discarded by the down-role pump) before the rebuild.
	if done, err := g.t.Barrier(id); err == nil {
		<-done
	}
	if err := n.resyncFromCheckpoint(); err != nil {
		return fmt.Errorf("replica: %s rejoin resync: %w", id, err)
	}
	n.mu.Lock()
	n.role = RoleFollower
	n.mu.Unlock()
	// No writes can interleave here (they need g.mu), so catching up to the
	// current acknowledged sequence leaves the rejoiner fully current.
	acked := lin.base + lin.pub.AcceptedSeq()
	if err := n.catchUpTo(acked, nil); err != nil {
		return fmt.Errorf("replica: %s rejoin catch-up: %w", id, err)
	}
	return nil
}

// Checkpoint persists the primary's current model durably and truncates the
// lineage's journal: every journaled observation is now covered by the
// checkpoint, and followers too stale for the truncated journal resync from
// it (ErrCompacted → checkpoint + suffix). The journal rotation and the
// lineage's new sequence base are installed atomically with respect to
// concurrent catch-up fetches.
func (g *Group) Checkpoint() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("replica: group is closed")
	}
	lin := g.lin.Load()
	if lin == nil {
		return ErrNoPrimary
	}
	if err := lin.pub.Flush(); err != nil {
		return fmt.Errorf("replica: checkpoint flush: %w", err)
	}
	acked := lin.base + lin.pub.AcceptedSeq()
	if err := g.saveCheckpoint(lin.pub, acked, lin.term); err != nil {
		return err
	}
	next := &lineage{term: lin.term, base: lin.base, jbase: acked, jpath: lin.jpath, pub: lin.pub, jn: lin.jn}
	g.linMu.Lock()
	defer g.linMu.Unlock()
	if err := lin.jn.Reset(); err != nil {
		return fmt.Errorf("replica: checkpoint journal reset: %w", err)
	}
	g.lin.Store(next)
	return nil
}

// Converge quiesces the group and drives every live follower to the
// primary's acknowledged sequence: flush the primary, barrier-drain each
// follower's stream inbox, then journal-fetch whatever is still missing.
// After a nil return, every live replica's model reflects exactly the
// acknowledged prefix — the state the chaos experiment compares bytes over.
func (g *Group) Converge() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("replica: group is closed")
	}
	lin := g.lin.Load()
	if lin == nil {
		return ErrNoPrimary
	}
	if err := lin.pub.Flush(); err != nil {
		return fmt.Errorf("replica: converge flush: %w", err)
	}
	acked := lin.base + lin.pub.AcceptedSeq()
	for _, id := range g.ids {
		n := g.nodes[id]
		n.mu.Lock()
		role := n.role
		n.mu.Unlock()
		if role != RoleFollower {
			continue
		}
		g.t.FlushHeld(id)
		if done, err := g.t.Barrier(id); err == nil {
			<-done
		}
		if err := n.catchUpTo(acked, nil); err != nil {
			return fmt.Errorf("replica: converge: %w", err)
		}
	}
	return nil
}

// Snapshot returns the raw bytes a cold follower needs to bootstrap: the
// durable catalog checkpoint file plus the serving lineage's journal suffix.
// It is the structural implementation of nettransport.SnapshotSource — the
// snapshot-shipping RPC chunks exactly this pair over the wire. The journal
// is read while the publisher may still be appending; the copy is a valid
// prefix (the journal format tolerates a torn tail), and whatever it misses
// the stream or a later catch-up delivers.
func (g *Group) Snapshot() (ckpt, jnl []byte, err error) {
	g.ckptMu.Lock()
	ckpt, err = os.ReadFile(g.ckptPath)
	g.ckptMu.Unlock()
	if err != nil {
		return nil, nil, fmt.Errorf("replica: reading checkpoint for bootstrap: %w", err)
	}
	g.linMu.RLock()
	defer g.linMu.RUnlock()
	lin := g.lin.Load()
	if lin == nil {
		return nil, nil, ErrNoPrimary
	}
	jnl, err = os.ReadFile(lin.jpath)
	if err != nil {
		return nil, nil, fmt.Errorf("replica: reading journal for bootstrap: %w", err)
	}
	return ckpt, jnl, nil
}

// fetch serves a follower's catch-up request against the serving lineage's
// journal. The read lock keeps the lineage's sequence base and the journal
// file it describes consistent against a concurrent checkpoint rotation.
func (g *Group) fetch(requester string, from uint64, max int) ([]Record, error) {
	if g.t.Cut(requester) {
		return nil, ErrPartitioned
	}
	g.linMu.RLock()
	defer g.linMu.RUnlock()
	lin := g.lin.Load()
	if lin == nil {
		return nil, ErrNoPrimary
	}
	return g.fetchLineage(lin, from, max)
}

// fetchLineage reads records [from, from+max) from a lineage's journal,
// reconstructing group sequence numbers from the journal position. max <= 0
// means "everything durable so far".
func (g *Group) fetchLineage(lin *lineage, from uint64, max int) ([]Record, error) {
	if from <= lin.jbase {
		return nil, ErrCompacted
	}
	tr, err := journal.OpenTail(lin.jpath)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	skip := int(from - lin.jbase - 1)
	if skip > 0 {
		skipped, err := tr.SkipRecords(skip)
		if skipped < skip {
			if err == journal.ErrRotated {
				// The journal rotated under the path while we were opening
				// it: the records live in the checkpoint now.
				return nil, ErrCompacted
			}
			return nil, nil // the journal does not hold from yet
		}
	}
	if max <= 0 {
		max = 1 << 20
	}
	out := make([]Record, 0, 64)
	for len(out) < max {
		rec, err := tr.Next()
		if err == journal.ErrNoRecord || err == journal.ErrRotated {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, Record{
			Seq:   from + uint64(len(out)),
			Term:  lin.term,
			Point: geom.Point(rec.Point),
			Value: rec.Value,
		})
	}
	return out, nil
}

// saveCheckpoint writes the durable checkpoint: a one-entry catalog whose
// entry name encodes the covered sequence and term, and whose model blob is
// the publisher's current snapshot.
func (g *Group) saveCheckpoint(pub *core.Publisher, seq, term uint64) error {
	cat := catalog.New()
	name := checkpointName(seq, term)
	if err := cat.Put(name, pub, nil); err != nil {
		return fmt.Errorf("replica: assembling checkpoint: %w", err)
	}
	g.ckptMu.Lock()
	defer g.ckptMu.Unlock()
	if err := catalog.SaveFile(g.ckptPath, cat); err != nil {
		return fmt.Errorf("replica: saving checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint reads the durable checkpoint back: the model plus the
// sequence/term it covers.
func (g *Group) loadCheckpoint() (*core.MLQ, uint64, uint64, error) {
	g.ckptMu.Lock()
	defer g.ckptMu.Unlock()
	cat, _, err := catalog.LoadFile(g.ckptPath)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("replica: loading checkpoint: %w", err)
	}
	names := cat.Names()
	if len(names) != 1 {
		return nil, 0, 0, fmt.Errorf("replica: checkpoint holds %d entries, want 1", len(names))
	}
	seq, term, err := parseCheckpointName(names[0])
	if err != nil {
		return nil, 0, 0, err
	}
	e, _ := cat.Get(names[0])
	m, ok := e.CPU.(*core.MLQ)
	if !ok {
		return nil, 0, 0, fmt.Errorf("replica: checkpoint entry is %T, want *core.MLQ", e.CPU)
	}
	return m, seq, term, nil
}

// checkpointName encodes the covered sequence and term into the catalog
// entry name, so the checkpoint is self-describing without a side file.
func checkpointName(seq, term uint64) string {
	return fmt.Sprintf("model@seq=%d;term=%d", seq, term)
}

func parseCheckpointName(name string) (seq, term uint64, err error) {
	n, err := fmt.Sscanf(name, "model@seq=%d;term=%d", &seq, &term)
	if err != nil || n != 2 {
		return 0, 0, fmt.Errorf("replica: malformed checkpoint entry name %q", name)
	}
	return seq, term, nil
}

// recordApplyErr remembers a divergence hazard (a record one replica failed
// to apply) for the harness to surface; the chaos experiment fails the run
// if any were recorded.
func (g *Group) recordApplyErr(id string, seq uint64, err error) {
	g.applyErrMu.Lock()
	defer g.applyErrMu.Unlock()
	if len(g.applyErrs) < 16 {
		g.applyErrs = append(g.applyErrs, fmt.Sprintf("%s@%d: %v", id, seq, err))
	}
}

// ApplyErrors returns the recorded divergence hazards (empty in a healthy
// run).
func (g *Group) ApplyErrors() []string {
	g.applyErrMu.Lock()
	defer g.applyErrMu.Unlock()
	return append([]string(nil), g.applyErrs...)
}

// Predict serves a read from one replica's current view: a single atomic
// load, never blocked by writes, failovers, or other readers. ok is false
// while the replica is down or its model is empty.
func (g *Group) Predict(id string, p geom.Point) (float64, bool) {
	n, ok := g.nodes[id]
	if !ok {
		return 0, false
	}
	return n.Predict(p)
}

// View returns one replica's current read state (nil while down).
func (g *Group) View(id string) *View {
	n, ok := g.nodes[id]
	if !ok {
		return nil
	}
	return n.view()
}

// ModelBytes serializes one replica's model for convergence comparison.
// The primary flushes first, so its bytes cover everything acknowledged.
func (g *Group) ModelBytes(id string) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	n, ok := g.nodes[id]
	if !ok {
		return nil, fmt.Errorf("replica: unknown replica %q", id)
	}
	n.mu.Lock()
	role := n.role
	n.mu.Unlock()
	var buf bytes.Buffer
	switch role {
	case RolePrimary:
		lin := g.lin.Load()
		if lin == nil {
			return nil, ErrNoPrimary
		}
		if err := lin.pub.Flush(); err != nil {
			return nil, err
		}
		if _, err := lin.pub.Snapshot().WriteTo(&buf); err != nil {
			return nil, err
		}
	case RoleFollower:
		n.mu.Lock()
		_, err := n.mlq.WriteTo(&buf)
		n.mu.Unlock()
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("replica: %s is down", id)
	}
	return buf.Bytes(), nil
}

// IDs returns the replica ids, sorted.
func (g *Group) IDs() []string { return append([]string(nil), g.ids...) }

// PrimaryID returns the current primary's id.
func (g *Group) PrimaryID() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.primaryID
}

// Term returns the current term.
func (g *Group) Term() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.term
}

// Transport exposes the group's transport (the chaos harness partitions and
// inspects it).
func (g *Group) Transport() Transport { return g.t }

// GroupStats is the group's point-in-time accounting.
type GroupStats struct {
	Term         uint64
	Primary      string
	Acked        uint64 // acknowledged observation high-water mark
	AckedLost    uint64 // acknowledged observations lost across all failovers
	Failovers    int64
	FencedWrites int64
	Replicas     []ReplicaStats
	Transport    TransportStats
}

// Stats snapshots the group.
func (g *Group) Stats() GroupStats {
	g.mu.Lock()
	term, primary := g.term, g.primaryID
	var acked uint64
	if lin := g.lin.Load(); lin != nil {
		acked = lin.base + lin.pub.AcceptedSeq()
	}
	g.mu.Unlock()
	st := GroupStats{
		Term:         term,
		Primary:      primary,
		Acked:        acked,
		AckedLost:    g.ackedLost.Load(),
		Failovers:    g.failovers.Load(),
		FencedWrites: g.fencedWrites.Load(),
		Transport:    g.t.Stats(),
	}
	for _, id := range g.ids {
		st.Replicas = append(st.Replicas, g.nodes[id].stats())
	}
	sortStats(st.Replicas)
	return st
}

// Close shuts the group down: the lineage's publisher drains and closes,
// the transport closes every inbox, and all pumps exit.
func (g *Group) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closeLocked()
}

func (g *Group) closeLocked() error {
	if g.closed {
		return nil
	}
	g.closed = true
	var first error
	if lin := g.lin.Load(); lin != nil {
		g.linMu.Lock()
		g.lin.Store(nil)
		g.linMu.Unlock()
		if err := lin.pub.Close(); err != nil && first == nil {
			first = err
		}
		if err := lin.jn.Close(); err != nil && first == nil {
			first = err
		}
	}
	g.t.Close()
	for _, id := range g.ids {
		<-g.nodes[id].pumpDone
	}
	return first
}
