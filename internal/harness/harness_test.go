package harness

import (
	"strings"
	"testing"

	"mlq/internal/dist"
	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/histogram"
	"mlq/internal/synthetic"
)

// fastOpts shrinks the workloads so tests run quickly while keeping the
// qualitative shapes intact.
func fastOpts() Options {
	return Options{Queries: 1200, TrainQueries: 1200, Seed: 42}
}

func TestMethodNamesAndSelfTuning(t *testing.T) {
	want := map[Method]string{MLQE: "MLQ-E", MLQL: "MLQ-L", SHH: "SH-H", SHW: "SH-W"}
	for m, name := range want {
		if m.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), name)
		}
	}
	if !MLQE.SelfTuning() || !MLQL.SelfTuning() || SHH.SelfTuning() || SHW.SelfTuning() {
		t.Error("SelfTuning flags wrong")
	}
	if len(Methods()) != 4 {
		t.Error("Methods() must list all four")
	}
	if !strings.Contains(Method(9).String(), "9") {
		t.Error("unknown method must render")
	}
}

func TestNewModelAllMethods(t *testing.T) {
	region := geomtest.MustRect(geom.Point{0, 0}, geom.Point{10, 10})
	training := []histogram.Sample{{Point: geom.Point{1, 1}, Value: 5}}
	for _, m := range Methods() {
		model, err := NewModel(m, region, Options{}, training)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if model.Name() != m.String() {
			t.Errorf("%v: model name %q", m, model.Name())
		}
	}
	if _, err := NewModel(Method(9), region, Options{}, nil); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestRunSyntheticNAEAllMethodsReasonable(t *testing.T) {
	surface, err := synthetic.Generate(synthetic.Config{Seed: 42, NumPeaks: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		// On the clustered workload every method must beat the trivial
		// zero predictor (NAE 1) clearly.
		nae, err := RunSyntheticNAE(m, surface, dist.KindGaussianRandom, fastOpts())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if nae <= 0 || nae >= 1 {
			t.Errorf("%v gauss-rand: NAE = %g, want in (0, 1)", m, nae)
		}
		// The sparse surface under uniform queries is the hardest cell;
		// errors still must stay within a sane band.
		nae, err = RunSyntheticNAE(m, surface, dist.KindUniform, fastOpts())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if nae <= 0 || nae >= 2.5 {
			t.Errorf("%v uniform: NAE = %g, want in (0, 2.5)", m, nae)
		}
	}
}

// The paper's headline (Fig. 8): MLQ-E performs the same as or better than
// the SH methods on synthetic data, despite learning on-line.
func TestMLQECompetitiveWithSHOnSynthetic(t *testing.T) {
	opts := fastOpts()
	for _, peaks := range []int{10, 50} {
		surface, err := synthetic.Generate(synthetic.Config{Seed: 7, NumPeaks: peaks})
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range dist.Kinds() {
			mlqe, err := RunSyntheticNAE(MLQE, surface, kind, opts)
			if err != nil {
				t.Fatal(err)
			}
			shw, err := RunSyntheticNAE(SHW, surface, kind, opts)
			if err != nil {
				t.Fatal(err)
			}
			// Allow a modest margin: the paper reports "same or
			// better"; in our substrate SH is marginally ahead on
			// uniform queries and MLQ ahead on skewed ones (see
			// EXPERIMENTS.md).
			if mlqe > shw+0.3 {
				t.Errorf("peaks=%d %v: MLQ-E NAE %.4f much worse than SH-W %.4f",
					peaks, kind, mlqe, shw)
			}
		}
	}
}

func TestFig8ProducesFullGrid(t *testing.T) {
	opts := fastOpts()
	opts.Queries = 600
	opts.TrainQueries = 600
	rows, err := Fig8([]int{1, 50}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 distributions x 2 peak counts
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if len(r.NAE) != 4 {
			t.Errorf("row %+v missing methods", r)
		}
	}
	var sb strings.Builder
	RenderFig8(&sb, rows)
	if !strings.Contains(sb.String(), "MLQ-E") || !strings.Contains(sb.String(), "GAUSS-SEQ") {
		t.Errorf("render missing columns:\n%s", sb.String())
	}
}

// Fig. 10's qualitative claims: prediction cost is a tiny fraction of UDF
// execution cost, and MLQ-L's update cost is below MLQ-E's.
func TestFig10SyntheticShape(t *testing.T) {
	opts := fastOpts()
	opts.Queries = 3000
	rows, err := Fig10Synthetic(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	byMethod := map[Method]CostBreakdown{}
	for _, r := range rows {
		byMethod[r.Method] = r
		if r.PC <= 0 || r.MUC <= 0 {
			t.Errorf("%v: empty cost breakdown %+v", r.Method, r)
		}
		if r.MUC < r.IC || r.MUC < r.CC {
			t.Errorf("%v: MUC %g below its components IC=%g CC=%g", r.Method, r.MUC, r.IC, r.CC)
		}
		// Modeling overhead must be small relative to execution cost
		// (the paper reports PC ~0.02%, MUC <= 1.2% for real UDFs; give
		// the synthetic surrogate a generous ceiling).
		if r.PC > 0.2 {
			t.Errorf("%v: PC fraction %g implausibly high", r.Method, r.PC)
		}
	}
	if byMethod[MLQL].Compressions >= byMethod[MLQE].Compressions {
		t.Errorf("MLQ-L compressions (%d) not below MLQ-E (%d)",
			byMethod[MLQL].Compressions, byMethod[MLQE].Compressions)
	}
	var sb strings.Builder
	RenderFig10(&sb, "fig10", rows)
	if !strings.Contains(sb.String(), "MUC") {
		t.Error("render missing header")
	}
}

// Fig. 11(b)'s shape per the paper: "SH-H outperforms the MLQ algorithms
// ... irrespective of the amount of noise simulated" — SH-H stays at least
// as good as MLQ under noise, and β=10 keeps MLQ's error bounded (flat-ish)
// rather than exploding with the noise level.
func TestFig11bShape(t *testing.T) {
	opts := fastOpts()
	opts.Queries = 1500
	opts.TrainQueries = 1500
	rows, err := Fig11b([]float64{0, 0.4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, m := range []Method{MLQE, MLQL} {
		drift := rows[1].NAE[m] - rows[0].NAE[m]
		if drift > 0.5 || drift < -0.5 {
			t.Errorf("%v: NAE drifted by %.4f between 0%% and 40%% noise; beta=10 should absorb it", m, drift)
		}
		if rows[1].NAE[SHH] > rows[1].NAE[m]+0.05 {
			t.Errorf("SH-H (%.4f) lost to %v (%.4f) under 40%% noise; paper has SH-H ahead",
				rows[1].NAE[SHH], m, rows[1].NAE[m])
		}
	}
	var sb strings.Builder
	RenderFig11b(&sb, rows)
	if !strings.Contains(sb.String(), "noiseP") {
		t.Error("render missing header")
	}
}

// Fig. 12's shape: learning curves fall as data accumulates, and MLQ-L
// stabilizes at least as fast as MLQ-E (it caps its resolution sooner).
func TestFig12SyntheticLearningCurves(t *testing.T) {
	opts := fastOpts()
	opts.Queries = 4000
	series, err := Fig12Synthetic(8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 8 {
			t.Fatalf("%v: %d points, want 8", s.Method, len(s.Points))
		}
		first, last := s.Points[0].NAE, s.Points[len(s.Points)-1].NAE
		if last >= first {
			t.Errorf("%v: error did not improve (%.4f -> %.4f)", s.Method, first, last)
		}
	}
	var sb strings.Builder
	RenderFig12(&sb, "fig12", series)
	if !strings.Contains(sb.String(), "SYNTH/MLQ-E") {
		t.Errorf("render missing series header:\n%s", sb.String())
	}
}

func TestAblateValidation(t *testing.T) {
	if _, err := Ablate("nonsense", nil, fastOpts()); err == nil {
		t.Error("unknown parameter accepted")
	}
	if len(AblationParams()) != 6 {
		t.Error("expected six sweepable parameters")
	}
	for _, p := range AblationParams() {
		if len(DefaultAblationValues(p)) == 0 {
			t.Errorf("no default values for %q", p)
		}
	}
	if DefaultAblationValues("nope") != nil {
		t.Error("unknown parameter must have no defaults")
	}
}

func TestAblateMemorySweep(t *testing.T) {
	opts := fastOpts()
	opts.Queries = 1500
	rows, err := Ablate("memory", []float64{400, 8192}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 values x 2 methods
		t.Fatalf("got %d rows", len(rows))
	}
	// More memory must not make accuracy dramatically worse, and the
	// small-memory runs must compress more.
	byKey := map[string]AblationRow{}
	for _, r := range rows {
		byKey[r.Method.String()+"/"+f4(r.Value)] = r
	}
	small := byKey["MLQ-E/400.0000"]
	big := byKey["MLQ-E/8192.0000"]
	if small.Compressions <= big.Compressions {
		t.Errorf("small memory compressed %d times, big %d; expected more under pressure",
			small.Compressions, big.Compressions)
	}
	if big.NAE > small.NAE+0.05 {
		t.Errorf("8KB model (NAE %.4f) much worse than 400B model (NAE %.4f)", big.NAE, small.NAE)
	}
	var sb strings.Builder
	RenderAblation(&sb, rows)
	if !strings.Contains(sb.String(), "memory") {
		t.Error("render missing title")
	}
}

func TestAblateAlphaOnlyLazy(t *testing.T) {
	opts := fastOpts()
	opts.Queries = 800
	rows, err := Ablate("alpha", []float64{0.05, 0.5}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Method != MLQL {
			t.Errorf("alpha sweep included %v", r.Method)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("longer", "x")
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "T\n") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "longer") || !strings.Contains(out, "---") {
		t.Errorf("bad table:\n%s", out)
	}
}

func TestCostKindString(t *testing.T) {
	if CPUCost.String() != "CPU" || IOCost.String() != "IO" {
		t.Error("cost kind names wrong")
	}
	if CPUCost.pick(1, 2) != 1 || IOCost.pick(1, 2) != 2 {
		t.Error("pick broken")
	}
}

// The motivation experiment: after the workload shifts, the self-tuning
// methods must clearly beat the statically trained ones.
func TestShiftSelfTuningWinsAfterShift(t *testing.T) {
	opts := fastOpts()
	opts.Queries = 2400
	opts.TrainQueries = 1200
	series, err := Shift(8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series", len(series))
	}
	byMethod := map[Method]ShiftSeries{}
	for _, s := range series {
		byMethod[s.Method] = s
		if len(s.Points) != 8 {
			t.Errorf("%v: %d curve points, want 8", s.Method, len(s.Points))
		}
	}
	// SH-H fits its bucket boundaries to the stale training marginals, so
	// the shift is catastrophic for it; the self-tuning methods must beat
	// it decisively. (SH-W's uniform boundaries are distribution-agnostic
	// — mediocre everywhere rather than catastrophic — so no strong claim
	// holds against it.)
	for _, m := range []Method{MLQE, MLQL} {
		if byMethod[m].After >= byMethod[SHH].After {
			t.Errorf("after shift, %v (%.4f) did not beat SH-H (%.4f)",
				m, byMethod[m].After, byMethod[SHH].After)
		}
		if byMethod[m].After > byMethod[SHW].After+0.5 {
			t.Errorf("after shift, %v (%.4f) far behind even SH-W (%.4f)",
				m, byMethod[m].After, byMethod[SHW].After)
		}
	}
	// Pre-shift, the statically trained models are competitive (they were
	// trained on exactly this distribution).
	if byMethod[SHH].Before > 3*byMethod[MLQE].Before+0.5 {
		t.Errorf("SH-H pre-shift NAE %.4f implausibly bad vs MLQ-E %.4f",
			byMethod[SHH].Before, byMethod[MLQE].Before)
	}
	var sb strings.Builder
	RenderShift(&sb, series)
	if !strings.Contains(sb.String(), "before") {
		t.Error("render missing aggregate table")
	}
}

// The compression-policy ablation: the paper's SSEG ordering must not lose
// to random eviction on a skewed workload.
func TestAblatePolicy(t *testing.T) {
	opts := fastOpts()
	opts.Queries = 1500
	rows, err := Ablate("policy", nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 policies x 2 methods
		t.Fatalf("got %d rows", len(rows))
	}
	var sb strings.Builder
	RenderAblation(&sb, rows)
	if !strings.Contains(sb.String(), "sseg") || !strings.Contains(sb.String(), "random") {
		t.Errorf("render missing policy names:\n%s", sb.String())
	}
}

func TestFig8ReplicatedTrials(t *testing.T) {
	opts := fastOpts()
	opts.Queries = 400
	opts.TrainQueries = 400
	opts.Trials = 3
	rows, err := Fig8([]int{50}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	sawSpread := false
	for _, r := range rows {
		for _, m := range Methods() {
			if r.StdDev[m] < 0 {
				t.Errorf("negative stddev for %v", m)
			}
			if r.StdDev[m] > 0 {
				sawSpread = true
			}
		}
	}
	if !sawSpread {
		t.Error("three independent trials produced identical NAE everywhere; seeds not varied")
	}
	var sb strings.Builder
	RenderFig8(&sb, rows)
	if !strings.Contains(sb.String(), "±") {
		t.Errorf("replicated render missing ± spread:\n%s", sb.String())
	}
}

func TestMemCurve(t *testing.T) {
	opts := fastOpts()
	opts.Queries = 1200
	opts.TrainQueries = 1200
	rows, err := MemCurve([]int{512, 8192}, dist.KindGaussianRandom, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, m := range Methods() {
		small, big := rows[0].NAE[m], rows[1].NAE[m]
		if small <= 0 || big <= 0 {
			t.Errorf("%v: empty NAE cells", m)
		}
		// 16x more memory must not make any method dramatically worse.
		if big > small*1.3+0.05 {
			t.Errorf("%v: NAE worsened with memory (%.4f -> %.4f)", m, small, big)
		}
	}
	// MLQ must improve substantially with a 16x budget on the clustered
	// workload (more nodes where the queries are).
	if rows[1].NAE[MLQE] >= rows[0].NAE[MLQE] {
		t.Errorf("MLQ-E did not improve with memory: %.4f -> %.4f",
			rows[0].NAE[MLQE], rows[1].NAE[MLQE])
	}
	var sb strings.Builder
	RenderMemCurve(&sb, "GAUSS-RAND", rows)
	if !strings.Contains(sb.String(), "bytes") {
		t.Error("render missing header")
	}
}
