package harness

import (
	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/leo"
	"mlq/internal/metrics"
	"mlq/internal/synthetic"
)

// LEORow is one model's result in the LEO comparison.
type LEORow struct {
	Name string
	NAE  float64
	// PeakMemory is the model's worst-case working set in bytes: for MLQ
	// the fixed budget, for LEO the adjustment table plus a full
	// pre-analysis log.
	PeakMemory int
}

// LEOComparison quantifies the paper's §2.2 claim that "MLQ is more storage
// efficient than LEO": both self-tuning approaches run the same clustered
// workload, and the table reports accuracy next to peak working-set memory.
// LEO pays for its log of (estimate, actual) records between analysis
// passes; MLQ folds feedback directly into its summaries.
func LEOComparison(kind dist.Kind, opts Options) ([]LEORow, error) {
	opts = opts.withDefaults()
	surface, err := synthetic.Generate(synthetic.Config{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	region := surface.Region()

	run := func(model core.Model) (float64, error) {
		src, err := dist.NewSourceSeeded(kind, region, opts.Queries, opts.Seed, opts.Seed+1)
		if err != nil {
			return 0, err
		}
		var nae metrics.NAE
		for i := 0; i < opts.Queries; i++ {
			p := src.Next()
			pred, _ := model.Predict(p)
			actual := surface.Cost(p)
			nae.Add(pred, actual)
			if err := model.Observe(p, actual); err != nil {
				return 0, err
			}
		}
		return nae.Value(), nil
	}

	var rows []LEORow

	mlq, err := NewModel(MLQE, region, opts, nil)
	if err != nil {
		return nil, err
	}
	nae, err := run(mlq)
	if err != nil {
		return nil, err
	}
	rows = append(rows, LEORow{Name: "MLQ-E", NAE: nae, PeakMemory: opts.MemoryLimit})

	lm, err := leo.New(leo.Config{Region: region})
	if err != nil {
		return nil, err
	}
	nae, err = run(lm)
	if err != nil {
		return nil, err
	}
	rows = append(rows, LEORow{Name: "LEO", NAE: nae, PeakMemory: lm.PeakMemory()})

	return rows, nil
}
