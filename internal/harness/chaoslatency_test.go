package harness

import (
	"strings"
	"testing"

	"mlq/internal/core"
)

// TestChaosLatencySmall runs the slow-disk sweep on a tiny workload. The
// experiment self-checks its three contracts — severity-0 transparency
// against a plain-loop baseline, journal-replay equivalence per cell, and
// bounded NAE inflation — so the assertions here are about the sweep's shape
// and that the degraded disk actually degraded.
func TestChaosLatencySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full substrates")
	}
	opts := Options{Seed: 1, Queries: 150}
	cfg := ChaosLatencyConfig{Severities: []float64{0, 10}, Dir: t.TempDir()}
	cells, err := ChaosLatency(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	clean, slow := cells[0], cells[1]
	if clean.Severity != 0 || slow.Severity != 10 {
		t.Fatalf("severities %g, %g", clean.Severity, slow.Severity)
	}

	// The clean cell already passed the bit-identity assertion inside
	// ChaosLatency; it must also look fault-free from the outside.
	if clean.SlowReads != 0 || clean.ChargedUnits != 0 || clean.ExecFailures != 0 {
		t.Errorf("clean cell reported latency activity: %+v", clean)
	}
	if !core.ValidCost(clean.NAE) || clean.NAE == 0 {
		t.Errorf("clean NAE = %v", clean.NAE)
	}

	// The 10x cell must have actually slowed the disk and charged for it.
	if slow.SlowReads == 0 {
		t.Error("severity 10 injected no slow reads")
	}
	if slow.ChargedUnits == 0 {
		t.Error("slow reads were never charged into IO cost")
	}
	if !core.ValidCost(slow.NAE) {
		t.Errorf("slow NAE invalid: %v", slow.NAE)
	}
	if slow.Executions != clean.Executions {
		t.Errorf("execution counts diverged: %d vs %d", slow.Executions, clean.Executions)
	}

	// Crash-safety accounting: every accepted observation was journaled and
	// replayed byte-identically (the experiment errors otherwise).
	for _, c := range cells {
		if c.Journaled != c.Pub.Submitted || c.Replayed != c.Journaled {
			t.Errorf("severity %g journal accounting: %+v", c.Severity, c)
		}
		if c.Pub.Applied != c.Pub.Submitted {
			t.Errorf("severity %g publisher left observations behind: %+v", c.Severity, c.Pub)
		}
	}
}

func TestRenderChaosLatency(t *testing.T) {
	var sb strings.Builder
	RenderChaosLatency(&sb, []ChaosLatencyCell{
		{Severity: 0, NAE: 0.12, Executions: 300, Journaled: 300, Replayed: 300},
		{Severity: 10, NAE: 0.19, Executions: 300, SlowReads: 1200, Retries: 4, ChargedUnits: 12345.5, Journaled: 300, Replayed: 300},
	})
	out := sb.String()
	for _, want := range []string{"severity", "10x", "0.1900", "12345.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}
