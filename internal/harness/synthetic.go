package harness

import (
	"fmt"
	"time"

	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/metrics"
	"mlq/internal/synthetic"
	"mlq/internal/telemetry"
	"mlq/internal/workload"
)

// RunSyntheticNAE runs one (method, surface, distribution) cell of the
// synthetic accuracy experiments: the model predicts every query's cost,
// then receives the observed cost as feedback. Accuracy is the NAE against
// the noise-free ground truth (see DESIGN.md §2 on scoring under noise).
func RunSyntheticNAE(m Method, cost synthetic.CostFunc, kind dist.Kind, opts Options) (float64, error) {
	opts = opts.withDefaults()
	training, err := trainingFor(m, kind, cost, opts)
	if err != nil {
		return 0, err
	}
	model, err := NewModel(m, cost.Region(), opts, training)
	if err != nil {
		return 0, err
	}
	src, err := dist.NewSourceSeeded(kind, cost.Region(), opts.Queries, opts.Seed, opts.Seed+1)
	if err != nil {
		return 0, err
	}
	stream, err := workload.New(src, cost, opts.Queries)
	if err != nil {
		return 0, err
	}
	tracker := opts.instrumentModel(model, telemetry.L("model", m.String()))
	var nae metrics.NAE
	for {
		q, ok := stream.Next()
		if !ok {
			break
		}
		pred, _ := model.Predict(q.Point) // untrained models predict 0
		nae.Add(pred, q.True)
		tracker.Observe(pred, q.True)
		if err := model.Observe(q.Point, q.Observed); err != nil {
			return 0, err
		}
	}
	return nae.Value(), nil
}

// Fig8Row is one group of Figure 8: the NAE of every method at one peak
// count under one query distribution. With Options.Trials > 1 the NAE is a
// mean over independent seeds and StdDev carries the spread.
type Fig8Row struct {
	Peaks  int
	Dist   dist.Kind
	NAE    map[Method]float64
	StdDev map[Method]float64
}

// Fig8 reproduces Figure 8: prediction accuracy on synthetic UDFs for a
// varying number of peaks, one panel per query distribution.
func Fig8(peakCounts []int, opts Options) ([]Fig8Row, error) {
	opts = opts.withDefaults()
	if len(peakCounts) == 0 {
		peakCounts = []int{1, 10, 50, 100}
	}
	var rows []Fig8Row
	for _, kind := range dist.Kinds() {
		for _, n := range peakCounts {
			row := Fig8Row{
				Peaks: n, Dist: kind,
				NAE:    make(map[Method]float64, 4),
				StdDev: make(map[Method]float64, 4),
			}
			for _, m := range Methods() {
				mean, std, err := replicate(opts, func(o Options) (float64, error) {
					surface, err := synthetic.Generate(synthetic.Config{NumPeaks: n, Seed: o.Seed + int64(n)})
					if err != nil {
						return 0, err
					}
					return RunSyntheticNAE(m, surface, kind, o)
				})
				if err != nil {
					return nil, fmt.Errorf("fig8 %v peaks=%d %v: %w", kind, n, m, err)
				}
				row.NAE[m] = mean
				row.StdDev[m] = std
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig11bRow is one noise-probability step of Figure 11(b).
type Fig11bRow struct {
	NoiseP float64
	NAE    map[Method]float64
}

// Fig11b reproduces Figure 11(b): prediction accuracy on synthetic data as
// the noise probability grows, under the uniform query distribution and the
// paper's IO-cost β (10).
func Fig11b(noiseLevels []float64, opts Options) ([]Fig11bRow, error) {
	opts = opts.withDefaults()
	if opts.Beta == 1 {
		opts.Beta = 10 // the paper's disk-IO setting
	}
	if len(noiseLevels) == 0 {
		noiseLevels = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	}
	surface, err := synthetic.Generate(synthetic.Config{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	var rows []Fig11bRow
	for _, p := range noiseLevels {
		noisy, err := synthetic.NewNoisy(surface, p, opts.Seed+int64(p*1000))
		if err != nil {
			return nil, err
		}
		row := Fig11bRow{NoiseP: p, NAE: make(map[Method]float64, 4)}
		for _, m := range Methods() {
			v, err := RunSyntheticNAE(m, noisy, dist.KindUniform, opts)
			if err != nil {
				return nil, err
			}
			row.NAE[m] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CostBreakdown is one bar group of Figure 10: the modeling costs of one MLQ
// method, each normalized against the total UDF execution cost.
type CostBreakdown struct {
	Workload string
	Method   Method
	// PC, IC, CC, MUC are fractions of the total UDF execution cost
	// (MUC = IC + CC).
	PC, IC, CC, MUC float64
	Compressions    int64
}

// breakdownFrom normalizes a model's cost counters by the workload's total
// execution time.
func breakdownFrom(name string, m Method, costs core.Costs, totalExec time.Duration) CostBreakdown {
	t := float64(totalExec)
	if t <= 0 {
		t = 1
	}
	return CostBreakdown{
		Workload:     name,
		Method:       m,
		PC:           float64(costs.PredictTime) / t,
		IC:           float64(costs.InsertTime) / t,
		CC:           float64(costs.CompressTime) / t,
		MUC:          float64(costs.UpdateTime()) / t,
		Compressions: costs.Compressions,
	}
}

// SyntheticExecUnit is the simulated execution time per synthetic cost unit,
// used to normalize Figure 10(b): the synthetic surface returns abstract
// cost values, which the paper's setup treats as execution time. One unit
// = one microsecond.
const SyntheticExecUnit = time.Microsecond

// Fig10Synthetic reproduces Figure 10(b): the modeling-cost breakdown of
// MLQ-E and MLQ-L on the synthetic workload under uniform queries.
func Fig10Synthetic(opts Options) ([]CostBreakdown, error) {
	opts = opts.withDefaults()
	surface, err := synthetic.Generate(synthetic.Config{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	var out []CostBreakdown
	for _, m := range []Method{MLQE, MLQL} {
		model, err := NewModel(m, surface.Region(), opts, nil)
		if err != nil {
			return nil, err
		}
		mlq := model.(*core.MLQ)
		src := dist.NewUniform(surface.Region(), opts.Seed)
		var totalExec time.Duration
		for i := 0; i < opts.Queries; i++ {
			p := src.Next()
			mlq.Predict(p)
			actual := surface.Cost(p)
			totalExec += time.Duration(actual * float64(SyntheticExecUnit))
			if err := mlq.Observe(p, actual); err != nil {
				return nil, err
			}
		}
		out = append(out, breakdownFrom("SYNTH", m, mlq.Costs(), totalExec))
	}
	return out, nil
}

// Fig12Series is one learning curve of Figure 12.
type Fig12Series struct {
	Workload string
	Method   Method
	Points   []metrics.CurvePoint
}

// Fig12Synthetic reproduces the synthetic panel of Figure 12: windowed NAE
// of MLQ-E and MLQ-L as the number of processed query points grows, under
// uniform queries.
func Fig12Synthetic(windows int, opts Options) ([]Fig12Series, error) {
	opts = opts.withDefaults()
	if windows <= 0 {
		windows = 25
	}
	surface, err := synthetic.Generate(synthetic.Config{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	var out []Fig12Series
	for _, m := range []Method{MLQE, MLQL} {
		model, err := NewModel(m, surface.Region(), opts, nil)
		if err != nil {
			return nil, err
		}
		curve, err := metrics.NewCurve(opts.Queries / windows)
		if err != nil {
			return nil, err
		}
		src := dist.NewUniform(surface.Region(), opts.Seed)
		for i := 0; i < opts.Queries; i++ {
			p := src.Next()
			pred, _ := model.Predict(p)
			actual := surface.Cost(p)
			curve.Add(pred, actual)
			if err := model.Observe(p, actual); err != nil {
				return nil, err
			}
		}
		curve.Flush()
		out = append(out, Fig12Series{Workload: "SYNTH", Method: m, Points: curve.Points()})
	}
	return out, nil
}
