package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mlq/internal/buffercache"
	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/faults"
	"mlq/internal/journal"
	"mlq/internal/metrics"
	"mlq/internal/pagestore"
	"mlq/internal/spatialdb"
	"mlq/internal/telemetry"
	"mlq/internal/textdb"
	"mlq/internal/udf"
)

// chaosLatencyFaultScale couples a small transient read-fault probability to
// the swept severity, so the retry/backoff path (not just the slow-read
// charge) shapes the observed IO costs.
const chaosLatencyFaultScale = 0.002

// ChaosLatencyConfig parameterizes the slow-disk resilience experiment.
type ChaosLatencyConfig struct {
	// Severities sweeps the injected disk degradation: every physical read
	// is delayed severity clean-read service times (severity 10 = an 11x
	// slower disk), and transient read faults fire at severity *
	// chaosLatencyFaultScale so the retry policy earns its keep. Default
	// {0, 1, 4, 10}. Severity 0 doubles as the transparency assertion: the
	// full resilience layer (armed-but-idle injector, retry policy,
	// Publisher, journal) must reproduce the plain feedback loop's NAE bit
	// for bit.
	Severities []float64
	// Retry is the buffercache policy under test. The zero value means
	// {MaxAttempts: 3, BaseDelay: DefaultUnitLatency, Multiplier: 2}.
	Retry buffercache.RetryPolicy
	// MaxNAEInflation bounds how much worse any severity's NAE may be than
	// the fault-free cell's: the self-tuning models must absorb a slower
	// disk, not diverge from it. Default 2.
	MaxNAEInflation float64
	// Dir is the scratch directory for observation journals. Empty means a
	// fresh temp directory, removed afterwards.
	Dir string
}

func (c ChaosLatencyConfig) withDefaults() ChaosLatencyConfig {
	if len(c.Severities) == 0 {
		c.Severities = []float64{0, 1, 4, 10}
	}
	zero := buffercache.RetryPolicy{}
	if c.Retry == zero {
		c.Retry = buffercache.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   buffercache.DefaultUnitLatency,
			Multiplier:  2,
		}
	}
	//lint:ignore floatguard unset-config sentinel: zero is exact, the field was never written
	if c.MaxNAEInflation == 0 {
		c.MaxNAEInflation = 2
	}
	return c
}

// ChaosLatencyCell is one swept severity's outcome: IO-cost prediction
// accuracy on a degraded disk, plus the resilience accounting that proves
// the latency was absorbed by modeling, not by losing observations.
type ChaosLatencyCell struct {
	Severity float64
	// NAE is IO-cost prediction accuracy against the charged (latency
	// inclusive) cost the executions actually observed.
	NAE float64

	Executions   int64   // UDF executions attempted
	ExecFailures int64   // executions lost to retry-exhausted read faults
	SlowReads    int64   // physical reads charged injected latency
	Retries      int64   // repeated read attempts under the retry policy
	ChargedUnits float64 // modeled latency folded into IO costs, in clean-read units

	Journaled int64 // observations persisted to the crash-safety journals
	Replayed  int64 // journal records replayed for the equivalence check
	Pub       core.PublisherStats
}

// chaosLatencyState is one UDF's resilient feedback loop: an MLQ wrapped in
// a journaled Publisher, predicting and observing latency-inclusive IO cost.
type chaosLatencyState struct {
	u     udf.UDF
	mlq   *core.MLQ
	pub   *core.Publisher
	jn    *journal.Journal
	jpath string
	src   dist.PointSource
}

// ChaosLatency runs the degraded-IO resilience experiment: the Figure-1
// feedback loop on the real UDFs' IO costs while the injector makes the disk
// slow (modeled latency, charged into observations via the buffercache retry
// policy) and transiently faulty (absorbed by retries). Every observation
// flows through a journaled Publisher; each cell ends with a replay
// equivalence check — a fresh model fed the journal must be byte-identical
// to the live one. It returns one cell per severity and errors if severity 0
// is not bit-identical to a run with no resilience layer at all, if any
// journal replay diverges, or if NAE inflates beyond MaxNAEInflation.
func ChaosLatency(cfg ChaosLatencyConfig, opts Options) ([]ChaosLatencyCell, error) {
	opts = opts.withDefaults()
	cfg = cfg.withDefaults()

	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "mlq-chaoslatency-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	// The reference run: the identical workload with no resilience layer —
	// no injector, no retry policy, no Publisher, no journal.
	baseline, err := runChaosLatencyCell(0, false, cfg, opts, filepath.Join(dir, "baseline"))
	if err != nil {
		return nil, fmt.Errorf("chaoslatency: baseline: %w", err)
	}

	var cells []ChaosLatencyCell
	for ci, sev := range cfg.Severities {
		cell, err := runChaosLatencyCell(sev, true, cfg, opts, filepath.Join(dir, fmt.Sprintf("cell%d", ci)))
		if err != nil {
			return nil, fmt.Errorf("chaoslatency: severity %g: %w", sev, err)
		}
		//lint:ignore floatguard the severity grid uses literal 0 as the fault-free cell
		if sev == 0 {
			// Transparency: retry policy installed, injector armed at zero,
			// observations journaled through the Publisher — and not one
			// bit of difference in accuracy.
			//lint:ignore floatguard the transparency check demands bit-exact equality
			if cell.NAE != baseline.NAE {
				return nil, fmt.Errorf("chaoslatency: severity-0 NAE %v != plain-loop baseline %v — resilience layer is not transparent when idle",
					cell.NAE, baseline.NAE)
			}
			//lint:ignore floatguard idle-charge check: zero is exact, nothing was ever added
			if cell.SlowReads+cell.Retries+cell.ExecFailures != 0 || cell.ChargedUnits != 0 {
				return nil, fmt.Errorf("chaoslatency: severity-0 cell reported fault activity: %+v", cell)
			}
		}
		if !core.ValidCost(cell.NAE) {
			return nil, fmt.Errorf("chaoslatency: severity %g produced invalid NAE %v", sev, cell.NAE)
		}
		cells = append(cells, cell)
	}

	// Bounded inflation: a 10x slower disk must not wreck accuracy — the
	// models observe the charged latency and re-tune to the degraded
	// service times.
	var base float64
	for _, c := range cells {
		//lint:ignore floatguard the severity grid uses literal 0 as the fault-free cell
		if c.Severity == 0 {
			base = c.NAE
		}
	}
	if base > 0 {
		for _, c := range cells {
			if c.NAE > cfg.MaxNAEInflation*base {
				return nil, fmt.Errorf("chaoslatency: severity %g NAE %.4f exceeds %gx the fault-free %.4f — self-tuning failed to absorb the slow disk",
					c.Severity, c.NAE, cfg.MaxNAEInflation, base)
			}
		}
	}
	return cells, nil
}

// runChaosLatencyCell drives the feedback loop for both UDFs at one
// severity. resilient=false runs the identical workload with the plain
// (pre-resilience) loop for the transparency baseline.
func runChaosLatencyCell(sev float64, resilient bool, cfg ChaosLatencyConfig, opts Options, dir string) (ChaosLatencyCell, error) {
	cell := ChaosLatencyCell{Severity: sev}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return cell, err
	}

	// Fresh databases per cell: cache state, injected latency, and retry
	// charges must not leak across severities.
	tdb, err := textdb.Generate(textdb.Config{Seed: opts.Seed})
	if err != nil {
		return cell, err
	}
	sdb, err := spatialdb.Generate(spatialdb.Config{Seed: opts.Seed + 1})
	if err != nil {
		return cell, err
	}
	udfs := []udf.UDF{tdb.UDFs()[0], sdb.UDFs()[1]} // SIMPLE and WIN
	caches := []*buffercache.Cache{tdb.Cache(), sdb.Cache()}
	stores := []*pagestore.Store{tdb.Store(), sdb.Store()}

	var inj *faults.Injector
	if resilient {
		inj = faults.New(opts.Seed + int64(sev*1e3) + 7919)
		unit := cfg.Retry.UnitLatency
		if unit <= 0 {
			unit = buffercache.DefaultUnitLatency
		}
		inj.Enable(faults.PageLatency, faults.SiteConfig{
			Probability: 1,
			Delay:       time.Duration(sev * float64(unit)),
		})
		inj.Enable(faults.PageRead, faults.SiteConfig{Probability: sev * chaosLatencyFaultScale})
		for _, c := range caches {
			c.SetRetryPolicy(cfg.Retry)
			c.SetReadLatency(func(pagestore.PageID) time.Duration { return inj.PageReadDelay() })
		}
		for _, st := range stores {
			st.SetReadFault(func(pagestore.PageID) error { return inj.PageReadError() })
		}
		if opts.Telemetry != nil {
			tdb.Cache().Instrument(opts.Telemetry, telemetry.L("db", "text"), telemetry.L("exp", "chaoslatency"))
			sdb.Cache().Instrument(opts.Telemetry, telemetry.L("db", "spatial"), telemetry.L("exp", "chaoslatency"))
		}
	}

	states := make([]*chaosLatencyState, len(udfs))
	for i, u := range udfs {
		model, err := NewModel(MLQE, u.Region(), opts, nil)
		if err != nil {
			return cell, err
		}
		mlq := model.(*core.MLQ)
		src, err := dist.NewSourceSeeded(dist.KindUniform, u.Region(), opts.Queries, opts.Seed, opts.Seed+1)
		if err != nil {
			return cell, err
		}
		st := &chaosLatencyState{u: u, mlq: mlq, src: src}
		if resilient {
			st.jpath = filepath.Join(dir, u.Name()+".mlqj")
			st.jn, err = journal.Create(st.jpath, journal.WithEvents(opts.Events))
			if err != nil {
				return cell, err
			}
			st.pub, err = core.NewPublisher(mlq, core.PublisherConfig{Journal: st.jn, Events: opts.Events})
			if err != nil {
				return cell, err
			}
			if opts.Telemetry != nil {
				st.pub.Instrument(opts.Telemetry, telemetry.L("udf", u.Name()), telemetry.L("exp", "chaoslatency"))
			}
		}
		states[i] = st
	}

	var nae metrics.NAE
	for q := 0; q < opts.Queries; q++ {
		for _, s := range states {
			p := s.src.Next()
			var pred float64
			var ok bool
			if resilient {
				pred, ok = s.pub.Predict(p)
			} else {
				pred, ok = s.mlq.Predict(p)
			}
			cell.Executions++
			_, io, err := s.u.Execute(p)
			if err != nil {
				// A read fault survived every retry: the execution is lost,
				// the loop is not.
				cell.ExecFailures++
				continue
			}
			if ok {
				if !core.ValidCost(pred) {
					return cell, fmt.Errorf("model %s predicted invalid %v", s.u.Name(), pred)
				}
				nae.Add(pred, io)
			}
			if resilient {
				if err := s.pub.Observe(p, io); err != nil {
					return cell, fmt.Errorf("observe through publisher: %w", err)
				}
				// Flush per query: the serial experiment wants the paper's
				// synchronous loop, just routed through the resilient path.
				if err := s.pub.Flush(); err != nil {
					return cell, fmt.Errorf("flush: %w", err)
				}
			} else {
				if err := s.mlq.Observe(p, io); err != nil {
					return cell, fmt.Errorf("observe: %w", err)
				}
			}
		}
	}
	cell.NAE = nae.Value()

	if !resilient {
		return cell, nil
	}
	for _, c := range caches {
		rs := c.RetryStats()
		cell.SlowReads += rs.SlowReads
		cell.Retries += rs.Retries
		cell.ChargedUnits += c.ChargedUnits()
	}
	for _, s := range states {
		if err := s.pub.Close(); err != nil {
			return cell, fmt.Errorf("close publisher: %w", err)
		}
		st := s.pub.Stats()
		cell.Pub.Submitted += st.Submitted
		cell.Pub.Applied += st.Applied
		cell.Pub.Dropped += st.Dropped
		cell.Pub.Rejected += st.Rejected
		cell.Pub.Timeouts += st.Timeouts
		cell.Pub.Journaled += st.Journaled
		cell.Pub.JournalErrors += st.JournalErrors
		cell.Journaled += st.Journaled
		if st.Applied != st.Submitted || st.Dropped+st.Rejected+st.Timeouts+st.JournalErrors != 0 {
			return cell, fmt.Errorf("publisher accounting inconsistent for %s: %+v", s.u.Name(), st)
		}
		if err := s.jn.Close(); err != nil {
			return cell, err
		}
		// Replay equivalence: a fresh model fed the journal must be
		// byte-identical to the live one — proof that a restart loses
		// nothing that was journaled.
		replayModel, err := NewModel(MLQE, s.u.Region(), opts, nil)
		if err != nil {
			return cell, err
		}
		replayed, torn, err := core.ReplayJournal(replayModel.(*core.MLQ), s.jpath)
		if err != nil {
			return cell, fmt.Errorf("replay %s: %w", s.jpath, err)
		}
		if torn != 0 {
			return cell, fmt.Errorf("journal %s torn by %d bytes on a clean run", s.jpath, torn)
		}
		cell.Replayed += int64(replayed)
		var live, rep bytes.Buffer
		if _, err := s.mlq.WriteTo(&live); err != nil {
			return cell, err
		}
		if _, err := replayModel.(*core.MLQ).WriteTo(&rep); err != nil {
			return cell, err
		}
		if !bytes.Equal(live.Bytes(), rep.Bytes()) {
			return cell, fmt.Errorf("journal replay of %s diverged from the live model", s.u.Name())
		}
	}
	return cell, nil
}
