package harness

import (
	"bytes"
	"strings"
	"testing"

	"mlq/internal/telemetry"
)

// TestChaosNetAllScenarios runs the full networked scenario set at a
// reduced workload: the experiment's own assertions (byte-identical
// convergence over sockets, bounded acked loss, reconnects on heal,
// resumable bootstrap) are the test.
func TestChaosNetAllScenarios(t *testing.T) {
	reg := telemetry.New()
	cells, err := ChaosNet(ChaosNetConfig{}, Options{Seed: 1, Queries: 600, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("got %d cells, want 5 (four fault stories + mid-bootstrap-kill)", len(cells))
	}
	byName := map[string]ChaosNetCell{}
	for _, c := range cells {
		byName[c.Scenario] = c
	}
	if clean := byName["clean"]; clean.Failovers != 0 || clean.AckedLost != 0 {
		t.Fatalf("clean cell reported fault activity: %+v", clean)
	}
	if kill := byName["kill-primary"]; kill.Failovers != 1 || kill.FencedWrites == 0 {
		t.Fatalf("kill-primary accounting: %+v", kill)
	}
	if ph := byName["partition-heal"]; ph.Catchup == 0 || ph.Reconnects == 0 {
		t.Fatalf("partition-heal accounting: %+v", ph)
	}
	if nc := byName["net-chaos"]; nc.Reconnects == 0 || nc.Failovers != 1 {
		t.Fatalf("net-chaos accounting: %+v", nc)
	}
	boot := byName["mid-bootstrap-kill"]
	if boot.BootstrapResumes == 0 || boot.BootstrapChunks < 2 {
		t.Fatalf("bootstrap accounting: %+v", boot)
	}

	// The socket-layer telemetry series were published.
	var exp bytes.Buffer
	if err := reg.WritePrometheus(&exp); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"mlq_net_reconnects_total",
		"mlq_net_heartbeats_missed_total",
		"mlq_net_frames_damaged_total",
		"mlq_net_bootstrap_chunks_total",
		"mlq_net_bootstrap_resumes_total",
	} {
		if !strings.Contains(exp.String(), name) {
			t.Fatalf("exposition missing %s", name)
		}
	}

	// The renderer formats every scenario row.
	var out bytes.Buffer
	RenderChaosNet(&out, cells)
	for _, sc := range []string{"clean", "kill-primary", "partition-heal", "net-chaos", "mid-bootstrap-kill"} {
		if !strings.Contains(out.String(), sc) {
			t.Fatalf("render missing scenario %s:\n%s", sc, out.String())
		}
	}
}

// TestChaosNetSingleScenarioQuick keeps a fast path for the CI smoke job.
func TestChaosNetSingleScenarioQuick(t *testing.T) {
	cells, err := ChaosNet(ChaosNetConfig{ChaosReplConfig: ChaosReplConfig{Scenarios: []string{"kill-primary"}}},
		Options{Seed: 3, Queries: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || cells[0].Acked == 0 {
		t.Fatalf("cells = %+v", cells)
	}
}
