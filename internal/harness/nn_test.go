package harness

import (
	"strings"
	"testing"

	"mlq/internal/dist"
)

func TestNNComparison(t *testing.T) {
	opts := fastOpts()
	opts.Queries = 800
	opts.TrainQueries = 800
	rows, err := NNComparison(dist.KindGaussianRandom, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]NNRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.NAE <= 0 || r.NAE > 2 {
			t.Errorf("%s: NAE = %g out of sane range", r.Name, r.NAE)
		}
		if r.RunTime <= 0 {
			t.Errorf("%s: run time not recorded", r.Name)
		}
	}
	nn, sh, mlq := byName["NN"], byName["SH-H"], byName["MLQ-E"]
	// The paper's §2.1 claim: the NN approach is "very slow to train".
	if nn.TrainTime < 10*sh.TrainTime {
		t.Errorf("NN training (%v) not clearly slower than SH-H (%v)", nn.TrainTime, sh.TrainTime)
	}
	if mlq.TrainTime != 0 {
		t.Error("MLQ has no a-priori training; TrainTime must be zero")
	}
	var sb strings.Builder
	RenderNN(&sb, "GAUSS-RAND", rows)
	out := sb.String()
	if !strings.Contains(out, "NN") || !strings.Contains(out, "train time") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestLEOComparison(t *testing.T) {
	opts := fastOpts()
	opts.Queries = 2000
	rows, err := LEOComparison(dist.KindGaussianRandom, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]LEORow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.NAE <= 0 || r.PeakMemory <= 0 {
			t.Errorf("%s: empty row %+v", r.Name, r)
		}
	}
	// The §2.2 storage-efficiency claim: LEO's peak working set (table +
	// log) exceeds MLQ's fixed budget, without being more accurate.
	mlq, leoRow := byName["MLQ-E"], byName["LEO"]
	if leoRow.PeakMemory <= mlq.PeakMemory {
		t.Errorf("LEO peak memory %d not above MLQ's %d", leoRow.PeakMemory, mlq.PeakMemory)
	}
	if leoRow.NAE < mlq.NAE*0.8 {
		t.Errorf("LEO (NAE %.4f) clearly beat MLQ (%.4f); unexpected given coarse grid", leoRow.NAE, mlq.NAE)
	}
	var sb strings.Builder
	RenderLEO(&sb, "GAUSS-RAND", rows)
	if !strings.Contains(sb.String(), "LEO") {
		t.Error("render incomplete")
	}
}

func TestCachePolicies(t *testing.T) {
	opts := fastOpts()
	opts.Queries = 250
	opts.TrainQueries = 250
	rows, err := CachePolicies(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		for m, v := range r.NAE {
			if v <= 0 || v > 2 {
				t.Errorf("%v/%v: NAE %g out of range", r.Policy, m, v)
			}
		}
	}
	var sb strings.Builder
	RenderCachePolicies(&sb, rows)
	if !strings.Contains(sb.String(), "fifo") {
		t.Errorf("render missing policies:\n%s", sb.String())
	}
}
