package harness

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"mlq/internal/catalog"
	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/engine"
	"mlq/internal/faults"
	"mlq/internal/geom"
	"mlq/internal/histogram"
	"mlq/internal/metrics"
	"mlq/internal/pagestore"
	"mlq/internal/spatialdb"
	"mlq/internal/telemetry"
	"mlq/internal/textdb"
	"mlq/internal/udf"
)

// Relative per-site fault intensities: one swept "rate" drives all four
// sites, scaled to each site's consultation frequency. Cost corruption and
// panics are per UDF execution; the page-read site is consulted per physical
// page access (hundreds per execution), so it gets a much smaller scale; the
// tear site is consulted only once per catalog save, so it gets a larger one.
const (
	chaosPanicScale    = 0.25
	chaosPageReadScale = 0.005
	chaosTearScale     = 2.0
)

// ChaosConfig parameterizes the chaos experiment.
type ChaosConfig struct {
	// Rates are the swept fault rates. Default {0, 0.01, 0.05, 0.1, 0.2}.
	// Rate 0 doubles as the transparency assertion: its NAE must equal a
	// run with no injector installed at all, bit for bit.
	Rates []float64
	// BreakerK overrides the observation guards' consecutive-rejection
	// threshold (0 = engine.DefaultBreakerK).
	BreakerK int
	// Saves is how many catalog save/load cycles each cell performs (the
	// torn-write fault site fires inside them). Default 5; negative
	// disables persistence cycling.
	Saves int
	// Dir is the scratch directory for catalog files. Empty means a fresh
	// temp directory, removed afterwards.
	Dir string
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if len(c.Rates) == 0 {
		c.Rates = []float64{0, 0.01, 0.05, 0.1, 0.2}
	}
	if c.Saves == 0 {
		c.Saves = 5
	}
	if c.Saves < 0 {
		c.Saves = 0
	}
	return c
}

// ChaosCell is one swept fault rate's outcome: accuracy under fire plus every
// fault-handling counter that proves the hardening worked instead of silently
// absorbing data loss.
type ChaosCell struct {
	Rate float64
	// NAE is prediction accuracy against the true (uncorrupted) cost;
	// failed executions contribute no sample.
	NAE float64

	Executions   int64 // UDF executions attempted
	ExecFailures int64 // executions lost to injected panics or page faults
	Corrupted    int64 // observed costs the injector corrupted
	Quarantined  int64 // invalid observations stopped before the models
	Rejected     int64 // model-rejected observations absorbed
	Skipped      int64 // observations dropped by open breakers
	BreakerTrips int64 // times a breaker opened
	PageFaults   int64 // injected page-read failures
	Panics       int64 // injected UDF panics
	Tears        int64 // torn catalog writes
	Saves        int64 // catalog save/load cycles
	FailedSaves  int64 // saves that reported an error (truncating tears)
	Degraded     int64 // catalog loads needing salvage or the .bak

	// Health is the per-UDF fault-handling breakdown: which predicate
	// absorbed the panics, quarantines and breaker trips the aggregate
	// counters above sum over.
	Health []ChaosUDFHealth
}

// ChaosUDFHealth is one UDF's fault-handling record within a chaos cell.
type ChaosUDFHealth struct {
	UDF          string
	ExecFailures int64 // executions lost to injected panics or page faults
	Guard        engine.GuardStats
}

// chaosState is one UDF's feedback loop under chaos: a fresh self-tuning MLQ
// fronted by the graceful-degradation chain, fed through an observation
// guard, persisted to (and re-adopted from) the catalog mid-run.
type chaosState struct {
	u     udf.UDF
	mlq   *core.MLQ
	fb    *core.Fallback
	hist  *histogram.Histogram
	prior float64
	guard engine.Guard
	src   dist.PointSource

	execFailures int64 // per-UDF share of the cell's ExecFailures

	// Telemetry handles (all inert when telemetry is disabled).
	label   telemetry.Label
	preds   *telemetry.Counter
	gm      *engine.GuardMetrics
	tracker *telemetry.ErrorTracker
}

// instrument attaches the state's current model tree and feedback counters to
// the options' registry/tracer. Called once per cell and again after a
// catalog reload swaps in an adopted tree — the registry hands back the same
// series for the same labels, so the metrics continue seamlessly.
func (s *chaosState) instrument(opts Options) {
	if opts.Telemetry == nil && opts.Tracer == nil {
		return
	}
	s.label = telemetry.L("udf", s.u.Name())
	s.mlq.Tree().Instrument(opts.Telemetry, opts.Tracer, s.label)
	s.preds = opts.Telemetry.Counter("mlq_engine_predictions_total",
		"model Predict calls made while planning", s.label)
	s.gm = engine.NewGuardMetrics(opts.Telemetry, s.label)
	if s.tracker == nil {
		s.tracker = telemetry.NewErrorTracker(opts.Telemetry, s.label)
	}
}

// Chaos runs the robustness experiment: the full Figure-1 feedback loop —
// predict, execute a real UDF, observe the measured cost, periodically
// persist the models — with the fault injector firing at each swept rate
// across all four sites (corrupted observations, UDF panics, page-read
// failures, torn catalog writes). It reports NAE degradation per rate and
// enforces the hardening contract: no crash at any rate, predictions always
// valid, and a zero-rate injector indistinguishable from no injector at all.
func Chaos(cfg ChaosConfig, opts Options) ([]ChaosCell, error) {
	opts = opts.withDefaults()
	cfg = cfg.withDefaults()

	tdb, err := textdb.Generate(textdb.Config{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	sdb, err := spatialdb.Generate(spatialdb.Config{Seed: opts.Seed + 1})
	if err != nil {
		return nil, err
	}
	udfs := []udf.UDF{tdb.UDFs()[0], sdb.UDFs()[1]} // SIMPLE and WIN
	stores := []*pagestore.Store{tdb.Store(), sdb.Store()}

	if opts.Telemetry != nil {
		// The page caches and the catalog persist across cells, so they are
		// instrumented once; the per-cell model trees and guards re-attach
		// inside runChaosCell.
		tdb.Cache().Instrument(opts.Telemetry, telemetry.L("db", "text"))
		sdb.Cache().Instrument(opts.Telemetry, telemetry.L("db", "spatial"))
		catalog.Instrument(opts.Telemetry)
	}

	// A-priori training for the static fallback level and the constant
	// prior, collected before any fault site is armed.
	hists := make([]*histogram.Histogram, len(udfs))
	priors := make([]float64, len(udfs))
	for i, u := range udfs {
		samples, err := realTraining(u, dist.KindUniform, CPUCost, opts)
		if err != nil {
			return nil, err
		}
		hists[i], err = histogram.Train(histogram.EquiHeight,
			histogram.Config{Region: u.Region(), MemoryLimit: opts.MemoryLimit}, samples)
		if err != nil {
			return nil, err
		}
		var sum float64
		for _, s := range samples {
			sum += s.Value
		}
		priors[i] = sum / float64(len(samples))
	}

	dir := cfg.Dir
	if dir == "" {
		dir, err = os.MkdirTemp("", "mlq-chaos-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	// The non-chaos reference run: no injector installed anywhere.
	baseline, err := runChaosCell(nil, 0, udfs, stores, hists, priors, cfg, opts,
		filepath.Join(dir, "baseline"))
	if err != nil {
		return nil, err
	}

	var cells []ChaosCell
	for ci, rate := range cfg.Rates {
		inj := faults.New(opts.Seed + int64(ci)*7919)
		inj.Enable(faults.ObserveCost, faults.SiteConfig{Probability: rate})
		inj.Enable(faults.UDFPanic, faults.SiteConfig{Probability: rate * chaosPanicScale})
		inj.Enable(faults.PageRead, faults.SiteConfig{Probability: rate * chaosPageReadScale})
		inj.Enable(faults.CatalogTear, faults.SiteConfig{Probability: rate * chaosTearScale})
		cell, err := runChaosCell(inj, rate, udfs, stores, hists, priors, cfg, opts,
			filepath.Join(dir, fmt.Sprintf("cell%d", ci)))
		if err != nil {
			return nil, fmt.Errorf("chaos: rate %g: %w", rate, err)
		}
		//lint:ignore floatguard the rate grid uses literal 0 as the no-fault cell
		if rate == 0 {
			// Transparency: an armed-but-idle injector must not perturb the
			// run by a single bit.
			//lint:ignore floatguard the transparency check demands bit-exact equality
			if cell.NAE != baseline.NAE {
				return nil, fmt.Errorf("chaos: rate-0 NAE %v != non-chaos baseline %v — injector is not transparent when idle",
					cell.NAE, baseline.NAE)
			}
			if cell.ExecFailures+cell.Corrupted+cell.Quarantined+cell.Rejected+
				cell.Skipped+cell.PageFaults+cell.Panics+cell.Tears+cell.FailedSaves+cell.Degraded != 0 {
				return nil, fmt.Errorf("chaos: rate-0 cell reported fault activity: %+v", cell)
			}
		}
		// Bounded loss: the survived run must still have produced a usable
		// accuracy number, not a poisoned one.
		if !core.ValidCost(cell.NAE) {
			return nil, fmt.Errorf("chaos: rate %g produced invalid NAE %v", rate, cell.NAE)
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// runChaosCell drives the feedback loop for every UDF at one fault rate. A
// nil injector runs the identical loop with every fault site transparent.
func runChaosCell(inj *faults.Injector, rate float64, udfs []udf.UDF, stores []*pagestore.Store,
	hists []*histogram.Histogram, priors []float64, cfg ChaosConfig, opts Options, dir string) (ChaosCell, error) {
	cell := ChaosCell{Rate: rate}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return cell, err
	}
	for _, st := range stores {
		st.SetReadFault(func(pagestore.PageID) error { return inj.PageReadError() })
	}
	defer func() {
		for _, st := range stores {
			st.SetReadFault(nil)
		}
	}()

	states := make([]*chaosState, len(udfs))
	for i, u := range udfs {
		model, err := NewModel(MLQE, u.Region(), opts, nil)
		if err != nil {
			return cell, err
		}
		mlq := model.(*core.MLQ)
		fb, err := core.NewFallback(priors[i], mlq, hists[i])
		if err != nil {
			return cell, err
		}
		src, err := dist.NewSourceSeeded(dist.KindUniform, u.Region(), opts.Queries, opts.Seed, opts.Seed+1)
		if err != nil {
			return cell, err
		}
		states[i] = &chaosState{
			u: u, mlq: mlq, fb: fb, hist: hists[i], prior: priors[i],
			guard: engine.Guard{K: cfg.BreakerK}, src: src,
		}
		states[i].instrument(opts)
	}

	saveEvery := 0
	if cfg.Saves > 0 {
		saveEvery = opts.Queries / cfg.Saves
		if saveEvery == 0 {
			saveEvery = 1
		}
	}
	path := filepath.Join(dir, "models.cat")
	var nae metrics.NAE
	for q := 0; q < opts.Queries; q++ {
		for _, s := range states {
			p := s.src.Next()
			sp := opts.Tracer.Start("predict", s.label)
			pred, ok := s.fb.Predict(p)
			sp.End()
			s.preds.Inc()
			if !ok || !core.ValidCost(pred) {
				return cell, fmt.Errorf("model %s answered invalid prediction (%v, %v) — degradation chain broken",
					s.fb.Name(), pred, ok)
			}
			cell.Executions++
			sp = opts.Tracer.Start("execute", s.label)
			actual, failed := chaosExecute(s.u, p, inj)
			sp.End()
			if failed {
				// The execution produced no cost: no sample, no feedback,
				// and — the entire point — no crash.
				cell.ExecFailures++
				s.execFailures++
				continue
			}
			nae.Add(pred, actual)
			s.tracker.Observe(pred, actual)
			obs, corrupted := inj.MaybeCorruptCost(actual)
			if corrupted {
				cell.Corrupted++
			}
			sp = opts.Tracer.Start("observe", s.label)
			fed := s.guard.Feed(s.fb, p, obs)
			sp.End()
			switch fed {
			case engine.FedQuarantined:
				cell.Quarantined++
			case engine.FedRejected:
				cell.Rejected++
			case engine.FedSkipped:
				cell.Skipped++
			}
			s.gm.Publish(s.guard.Stats())
		}
		if saveEvery > 0 && (q+1)%saveEvery == 0 {
			sp := opts.Tracer.Start("save")
			err := chaosSaveLoad(path, states, inj, &cell, opts)
			sp.End()
			if err != nil {
				return cell, err
			}
		}
	}
	cell.NAE = nae.Value()
	for _, s := range states {
		cell.BreakerTrips += s.guard.Stats().Trips
		cell.Health = append(cell.Health, ChaosUDFHealth{
			UDF:          s.u.Name(),
			ExecFailures: s.execFailures,
			Guard:        s.guard.Stats(),
		})
	}
	cell.PageFaults = inj.Stats(faults.PageRead).Fired
	cell.Panics = inj.Stats(faults.UDFPanic).Fired
	cell.Tears = inj.Stats(faults.CatalogTear).Fired
	return cell, nil
}

// chaosExecute runs one UDF invocation with panic isolation, the injector
// supplying both panics (directly) and page faults (via the store hook).
func chaosExecute(u udf.UDF, p geom.Point, inj *faults.Injector) (cost float64, failed bool) {
	defer func() {
		if r := recover(); r != nil {
			cost, failed = 0, true
		}
	}()
	inj.MaybePanic()
	cpu, _, err := u.Execute(p)
	if err != nil {
		return 0, true
	}
	return cpu, false
}

// chaosSaveLoad persists the self-tuning models through the (possibly torn)
// catalog path and adopts whatever survives the load — simulating a restart
// mid-workload. A truncating tear fails the save and the previous generation
// lives on; a bit-flip tear corrupts the primary silently and the load
// salvages around it.
func chaosSaveLoad(path string, states []*chaosState, inj *faults.Injector, cell *ChaosCell, opts Options) error {
	c := catalog.New()
	for _, s := range states {
		if err := c.Put(s.u.Name(), s.mlq, nil); err != nil {
			return err
		}
	}
	cell.Saves++
	if err := catalog.SaveFile(path, c, catalog.WithWriterWrapper(inj.TearWriter)); err != nil {
		cell.FailedSaves++
	}
	got, rep, err := catalog.LoadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// The very first save was torn before anything reached disk;
			// the in-memory models carry on.
			cell.Degraded++
			return nil
		}
		return fmt.Errorf("catalog lost entirely after torn save: %w", err)
	}
	if rep.Degraded() {
		cell.Degraded++
	}
	for _, s := range states {
		e, ok := got.Get(s.u.Name())
		if !ok || e.CPU == nil {
			continue // dropped entry: keep the live model
		}
		mlq, ok := e.CPU.(*core.MLQ)
		if !ok {
			continue
		}
		fb, err := core.NewFallback(s.prior, mlq, s.hist)
		if err != nil {
			return err
		}
		s.mlq, s.fb = mlq, fb
		// The adopted tree replaces the instrumented one; re-attach so its
		// (continuing) series track the model that is actually live.
		s.instrument(opts)
	}
	return nil
}
