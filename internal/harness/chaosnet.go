package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mlq/internal/catalog"
	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/faults"
	"mlq/internal/geom"
	"mlq/internal/journal"
	"mlq/internal/replica"
	"mlq/internal/replica/nettransport"
	"mlq/internal/telemetry"
)

// ChaosNetConfig parameterizes the networked replication chaos experiment:
// the ChaosRepl fault stories re-run over real loopback sockets, plus a
// mid-bootstrap-kill scenario for the resumable snapshot RPC.
type ChaosNetConfig struct {
	ChaosReplConfig
	// HeartbeatEvery is the socket liveness probe cadence. Default 20ms —
	// fast enough that a scenario's worth of chaos exercises the detector.
	HeartbeatEvery time.Duration
	// BarrierTimeout bounds how long a drain barrier may ride a socket
	// before the watchdog delivers it locally. Default 300ms.
	BarrierTimeout time.Duration
	// ChunkBytes is the bootstrap chunk size. Default 1 KiB, small enough
	// that the default workload's snapshot spans dozens of chunks and a
	// mid-transfer kill always lands inside the stream.
	ChunkBytes int
}

func (c ChaosNetConfig) withDefaults() ChaosNetConfig {
	c.ChaosReplConfig = c.ChaosReplConfig.withDefaults()
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 20 * time.Millisecond
	}
	if c.BarrierTimeout <= 0 {
		c.BarrierTimeout = 300 * time.Millisecond
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 1 << 10
	}
	return c
}

// ChaosNetCell is one networked scenario's outcome: the ChaosRepl
// convergence accounting plus the socket layer's own counters.
type ChaosNetCell struct {
	ChaosReplCell
	Reconnects       int64
	HeartbeatsMissed int64
	FramesDamaged    int64
	BootstrapChunks  int64
	BootstrapResumes int64
}

// ChaosNet runs the replicated-fleet chaos suite over real TCP loopback
// sockets: the same kill-primary, partition-heal and chaos scenarios as
// ChaosRepl (same assertions: acked loss bounded by one batch,
// byte-identical convergence after heal), but with the stream carried by
// nettransport — so reconnect/backoff, heartbeat liveness and CRC framing
// are load-bearing, and the net-chaos scenario injects socket-level resets,
// truncation and delay instead of record-level faults. A final
// mid-bootstrap-kill scenario cuts the snapshot-shipping RPC partway
// through and asserts the transfer resumes from the last verified chunk.
func ChaosNet(cfg ChaosNetConfig, opts Options) ([]ChaosNetCell, error) {
	opts = opts.withDefaults()
	cfg = cfg.withDefaults()

	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "mlq-chaosnet-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	region, err := geom.NewRect(geom.Point{0, 0}, geom.Point{100, 100})
	if err != nil {
		return nil, err
	}
	want, err := chaosReplReference(region, opts, cfg.ChaosReplConfig)
	if err != nil {
		return nil, fmt.Errorf("chaosnet: reference run: %w", err)
	}

	var cells []ChaosNetCell
	for si, sc := range cfg.Scenarios {
		var tr *nettransport.NetTransport
		drv := chaosDriver{
			injector: netChaosInjector,
			transport: func(inj *faults.Injector, opts Options) replica.Transport {
				tr = cfg.newTransport(inj, opts)
				tr.Instrument(opts.Telemetry, telemetry.L("scenario", sc))
				return tr
			},
			settle:              func(g *replica.Group) error { return settleLinks(tr, g) },
			relaxCleanStaleness: true,
		}
		cell, err := runChaosScenarioDriver(sc, region, want, cfg.ChaosReplConfig, opts,
			filepath.Join(dir, fmt.Sprintf("s%d", si)), drv)
		if err != nil {
			return nil, fmt.Errorf("chaosnet: scenario %s: %w", sc, err)
		}
		nc := ChaosNetCell{ChaosReplCell: cell}
		if tr != nil {
			nc.fillNetStats(tr.NetStats())
		}
		switch sc {
		case "partition-heal":
			if nc.Reconnects == 0 {
				return nil, fmt.Errorf("chaosnet: %s: healed link never re-dialed", sc)
			}
		case "net-chaos":
			if nc.Reconnects == 0 {
				return nil, fmt.Errorf("chaosnet: %s: socket chaos produced no reconnects", sc)
			}
		}
		cells = append(cells, nc)
	}

	boot, err := runChaosNetBootstrap(region, cfg, opts, filepath.Join(dir, "boot"))
	if err != nil {
		return nil, fmt.Errorf("chaosnet: scenario mid-bootstrap-kill: %w", err)
	}
	return append(cells, boot), nil
}

// settleLinks waits for the primary's stream connections to every follower
// to establish (the term broadcast at group construction starts the lazy
// dials). A fault schedule that fires before the links exist partitions
// nothing and reconnects nothing — the scenarios assert against live links.
func settleLinks(tr *nettransport.NetTransport, g *replica.Group) error {
	primary := g.PrimaryID()
	deadline := time.Now().Add(5 * time.Second)
	for _, id := range g.IDs() {
		if id == primary {
			continue
		}
		for !tr.LinkUp(id) {
			if time.Now().After(deadline) {
				return fmt.Errorf("stream link to %s never established", id)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

func (c *ChaosNetCell) fillNetStats(ns nettransport.NetStats) {
	c.Reconnects = ns.Reconnects
	c.HeartbeatsMissed = ns.HeartbeatsMissed
	c.FramesDamaged = ns.FramesDamaged
	c.BootstrapChunks = ns.BootstrapChunks
	c.BootstrapResumes = ns.BootstrapResumes
}

// netChaosInjector builds the socket-level fault plane: connection resets,
// byte-level truncation/corruption, and read-delay bursts, all seeded. Only
// the net-chaos scenario gets faults; the other stories run over clean
// sockets (their chaos is administrative: kills and partitions).
func netChaosInjector(sc string, opts Options) *faults.Injector {
	if sc != "net-chaos" {
		return nil
	}
	inj := faults.New(opts.Seed + 7919)
	inj.Enable(faults.NetReset, faults.SiteConfig{Probability: 0.0015})
	inj.Enable(faults.NetTrunc, faults.SiteConfig{Probability: 0.004})
	inj.Enable(faults.NetDelay, faults.SiteConfig{Probability: 0.01, Delay: 200 * time.Microsecond, Burst: 4})
	return inj
}

// newTransport builds the experiment's socket transport.
func (cfg ChaosNetConfig) newTransport(inj *faults.Injector, opts Options) *nettransport.NetTransport {
	return nettransport.New(nettransport.Config{
		Injector:       inj,
		Seed:           opts.Seed,
		Events:         opts.Events,
		QueueCapacity:  4096,
		ChunkBytes:     cfg.ChunkBytes,
		HeartbeatEvery: cfg.HeartbeatEvery,
		BarrierTimeout: cfg.BarrierTimeout,
		BackoffBase:    2 * time.Millisecond,
		BackoffCap:     50 * time.Millisecond,
	})
}

// runChaosNetBootstrap is the mid-bootstrap-kill scenario: build a fleet
// over sockets, run the workload with a mid-run checkpoint (so the durable
// snapshot has both a catalog checkpoint and a journal suffix), then pull
// the primary's snapshot over the bootstrap RPC with a connection reset
// scheduled to land mid-transfer. The transfer must resume from the last
// verified chunk — not restart — and the received bytes must be exactly the
// primary's durable state, replayable and loadable.
func runChaosNetBootstrap(region geom.Rect, cfg ChaosNetConfig, opts Options, dir string) (ChaosNetCell, error) {
	cell := ChaosNetCell{ChaosReplCell: ChaosReplCell{Scenario: "mid-bootstrap-kill"}}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return cell, err
	}

	inj := faults.New(opts.Seed + 104729)
	tr := cfg.newTransport(inj, opts)
	tr.Instrument(opts.Telemetry, telemetry.L("scenario", "mid-bootstrap-kill"))
	mlqCfg := opts.mlqConfig(MLQE, region)
	g, err := replica.New(replica.Config{
		Replicas:      cfg.Replicas,
		Dir:           dir,
		NewModel:      func() (*core.MLQ, error) { return core.NewMLQ(mlqCfg) },
		Transport:     tr,
		MaxBatch:      cfg.MaxBatch,
		InboxCapacity: cfg.InboxCapacity,
		Telemetry:     replica.NewGroupTelemetry(opts.Telemetry),
		Events:        opts.Events,
	})
	if err != nil {
		return cell, err
	}
	defer g.Close()

	src, err := dist.NewSourceSeeded(dist.KindUniform, region, opts.Queries, opts.Seed, opts.Seed+1)
	if err != nil {
		return cell, err
	}
	n := opts.Queries
	h := g.Handle()
	for q := 0; q < n; q++ {
		if q == n/2 {
			// Compact mid-run so the snapshot is checkpoint + journal
			// suffix, not just one or the other.
			if err := g.Checkpoint(); err != nil {
				return cell, err
			}
		}
		p := src.Next()
		if err := h.Observe(p, chaosReplCost(p)); err != nil {
			return cell, fmt.Errorf("observe %d: %w", q, err)
		}
	}
	if err := g.Converge(); err != nil {
		return cell, err
	}

	// Quiesce the stream plane: partitioning the followers kills their
	// connections and parks the dialers, so the scheduled reset below is
	// consulted only by the bootstrap socket — fully deterministic.
	primary := g.PrimaryID()
	for _, id := range g.IDs() {
		if id != primary {
			tr.Partition(id)
		}
	}
	tr.SetSnapshotSource(primary, g)

	wantCkpt, wantJnl, err := g.Snapshot()
	if err != nil {
		return cell, err
	}
	chunks := (len(wantCkpt) + len(wantJnl) + cfg.ChunkBytes - 1) / cfg.ChunkBytes
	if chunks < 2 {
		return cell, fmt.Errorf("snapshot spans %d chunk(s); too small for a mid-transfer kill", chunks)
	}
	// The serving connection's fault-site consultations are deterministic:
	// 3 reads (preamble, request header, request payload), the meta write,
	// then one write per chunk. Aim the reset at the middle chunk.
	inj.Enable(faults.NetReset, faults.SiteConfig{Schedule: []int64{int64(4 + chunks/2 + 1)}})

	res, err := tr.Bootstrap(primary)
	if err != nil {
		return cell, fmt.Errorf("bootstrap through mid-transfer kill: %w", err)
	}
	if res.Resumes < 1 {
		return cell, fmt.Errorf("transfer finished with %d resumes; the kill should have forced one", res.Resumes)
	}
	if res.Restarts != 0 {
		return cell, fmt.Errorf("transfer restarted %d times; a resumable kill must not force a full resync", res.Restarts)
	}
	if res.Chunks != chunks {
		return cell, fmt.Errorf("received %d chunks, want exactly %d (no re-shipping of verified chunks)", res.Chunks, chunks)
	}
	if !bytes.Equal(res.Ckpt, wantCkpt) || !bytes.Equal(res.Journal, wantJnl) {
		return cell, fmt.Errorf("bootstrapped bytes differ from the primary's durable state")
	}

	// The shipped state must be usable, not merely byte-equal: the journal
	// suffix replays cleanly and the checkpoint loads as a catalog.
	recs, truncated, err := journal.Replay(bytes.NewReader(res.Journal))
	if err != nil || truncated != 0 {
		return cell, fmt.Errorf("bootstrapped journal does not replay (err %v, truncated %d)", err, truncated)
	}
	if len(recs) == 0 {
		return cell, fmt.Errorf("bootstrapped journal replayed empty; the post-checkpoint suffix is missing")
	}
	ckptPath := filepath.Join(dir, "bootstrapped.mlqc")
	if err := os.WriteFile(ckptPath, res.Ckpt, 0o644); err != nil {
		return cell, err
	}
	if _, _, err := catalog.LoadFile(ckptPath); err != nil {
		return cell, fmt.Errorf("bootstrapped checkpoint does not load: %w", err)
	}

	for _, id := range g.IDs() {
		if id != primary {
			tr.Heal(id)
		}
	}
	if err := g.Converge(); err != nil {
		return cell, fmt.Errorf("converge after heal: %w", err)
	}

	st := g.Stats()
	cell.Acked = st.Acked
	cell.AckedLost = st.AckedLost
	cell.Partitioned = st.Transport.Partitioned
	cell.fillNetStats(tr.NetStats())
	return cell, nil
}
