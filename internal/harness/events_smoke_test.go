package harness

import (
	"path/filepath"
	"testing"

	"mlq/internal/events"
)

// TestChaosReplFailoverBlackbox is the flight-recorder smoke test: a
// kill-primary chaos run with the event spine installed must leave a
// decodable black-box dump (zero CRC errors) whose events reconstruct an
// observation's full causal journey — observe, journal append, transport
// send/receive, follower apply, epoch publish — with per-hop lag.
func TestChaosReplFailoverBlackbox(t *testing.T) {
	dumpDir := t.TempDir()
	// The replica ring sees up to eight events per observation across the
	// fleet; size it so a full journey survives until the failover dump.
	rec := events.New(events.Config{Seed: 42, DumpDir: dumpDir, RingSize: 8192})
	opts := Options{Seed: 1, Queries: 300, Events: rec}
	cells, err := ChaosRepl(ChaosReplConfig{Scenarios: []string{"kill-primary"}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Failovers == 0 {
		t.Fatalf("kill-primary scenario did not fail over: %+v", cells)
	}

	dumps, err := filepath.Glob(filepath.Join(dumpDir, "blackbox-*-failover.mlqbb"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) == 0 {
		t.Fatalf("failover triggered no black-box dump in %s", dumpDir)
	}
	meta, evts, crcErrs, err := events.ReadDumpFile(dumps[0])
	if err != nil {
		t.Fatalf("decoding %s: %v", dumps[0], err)
	}
	if crcErrs != 0 {
		t.Errorf("dump has %d CRC-damaged frame(s), want 0", crcErrs)
	}
	if meta.Reason != "failover" {
		t.Errorf("dump reason = %q, want failover", meta.Reason)
	}
	if len(evts) == 0 {
		t.Fatal("dump decoded zero events")
	}

	// Reconstruct the richest causal journey in the dump and check it spans
	// the whole pipeline.
	var best events.Trace
	for _, c := range events.Causes(evts) {
		if tr := events.BuildTrace(evts, c); len(tr.Hops) > len(best.Hops) {
			best = tr
		}
	}
	if len(best.Hops) == 0 {
		t.Fatal("no causal journey reconstructed from the dump")
	}
	seen := map[events.Kind]bool{}
	var lagged bool
	for _, h := range best.Hops {
		seen[h.Event.Kind] = true
		if (h.Event.Kind == events.KindRecv || h.Event.Kind == events.KindApply) && h.Event.Lag > 0 {
			lagged = true
		}
	}
	for _, k := range []events.Kind{
		events.KindObserve, events.KindJournalAppend, events.KindSend,
		events.KindRecv, events.KindApply, events.KindEpochPublish,
	} {
		if !seen[k] {
			t.Errorf("journey %016x is missing the %s hop (got %d hops: %v)",
				best.Cause, k, len(best.Hops), best.Hops)
		}
	}
	if !lagged {
		t.Error("no transport hop recorded a positive mint-to-hop lag")
	}
}
