// Package harness reproduces the paper's evaluation (§5): it builds the four
// cost-modeling methods (MLQ-E, MLQ-L, SH-H, SH-W) under a common memory
// budget, drives them with the paper's workloads, and regenerates each
// figure's rows — prediction accuracy (Fig. 8, 9), modeling-cost breakdown
// (Fig. 10), noise sensitivity (Fig. 11) and learning curves (Fig. 12) —
// plus the parameter ablations of the companion technical report.
package harness

import (
	"fmt"

	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/events"
	"mlq/internal/geom"
	"mlq/internal/histogram"
	"mlq/internal/metrics"
	"mlq/internal/quadtree"
	"mlq/internal/synthetic"
	"mlq/internal/telemetry"
	"mlq/internal/workload"
)

// Method identifies one of the four compared cost-modeling methods.
type Method int

// The four methods of §5.1.
const (
	MLQE Method = iota // MLQ with eager insertion
	MLQL               // MLQ with lazy insertion
	SHH                // static equi-height histogram
	SHW                // static equi-width histogram
)

// String returns the paper's label.
func (m Method) String() string {
	switch m {
	case MLQE:
		return "MLQ-E"
	case MLQL:
		return "MLQ-L"
	case SHH:
		return "SH-H"
	case SHW:
		return "SH-W"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Methods returns all four methods in the paper's presentation order.
func Methods() []Method { return []Method{MLQE, MLQL, SHH, SHW} }

// SelfTuning reports whether the method learns from query feedback.
func (m Method) SelfTuning() bool { return m == MLQE || m == MLQL }

// Options carries the experiment parameters, defaulting to §5.1's values.
type Options struct {
	// MemoryLimit is the per-model budget in bytes. Default 1843 (1.8 KB).
	MemoryLimit int
	// Beta is MLQ's minimum prediction count: 1 for CPU experiments,
	// 10 for disk-IO experiments. Default 1.
	Beta int
	// Alpha is MLQ-L's threshold scale. Default 0.05.
	Alpha float64
	// Gamma is MLQ's compression fraction. Default 0.001 (0.1%).
	Gamma float64
	// Lambda is MLQ's maximum depth. Default 6.
	Lambda int
	// Queries is the test-workload length: the paper uses 5000 for
	// synthetic and 2500 for real UDFs. Default 5000.
	Queries int
	// TrainQueries is the SH a-priori training size. Zero means equal to
	// Queries (the paper trains SH on a same-distribution set).
	TrainQueries int
	// Policy selects MLQ's compression victim ordering (default: the
	// paper's SSEG; the alternatives exist for ablations).
	Policy quadtree.CompressionPolicy
	// Trials replicates accuracy experiments across independent seeds
	// and reports the mean (the paper reports single runs; replication
	// tightens the comparison). Default 1.
	Trials int
	// Seed drives all randomness.
	Seed int64

	// Telemetry, when set, receives live metrics from the experiment's
	// models, caches and feedback loops (scrapable mid-run — see
	// internal/telemetry). Nil disables all instrumentation; the
	// experiments' results are identical either way.
	Telemetry *telemetry.Registry
	// Tracer, when set, records the feedback-loop stages (predict, execute,
	// observe, compress, save) as spans. Nil disables tracing.
	Tracer *telemetry.Tracer
	// Events, when set, is the causal event spine + flight recorder the
	// experiments thread through their publishers and replica groups. Nil
	// disables recording; the experiments' results are identical either way.
	Events *events.Recorder
}

func (o Options) withDefaults() Options {
	if o.MemoryLimit == 0 {
		o.MemoryLimit = 1843
	}
	if o.Beta == 0 {
		o.Beta = 1
	}
	//lint:ignore floatguard exact zero is the documented unset-field sentinel
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	//lint:ignore floatguard exact zero is the documented unset-field sentinel
	if o.Gamma == 0 {
		o.Gamma = 0.001
	}
	if o.Lambda == 0 {
		o.Lambda = 6
	}
	if o.Queries == 0 {
		o.Queries = 5000
	}
	if o.TrainQueries == 0 {
		o.TrainQueries = o.Queries
	}
	if o.Trials == 0 {
		o.Trials = 1
	}
	return o
}

// replicate runs one experiment cell across opts.Trials independent seeds
// and returns the mean and standard deviation of the metric.
func replicate(opts Options, cell func(opts Options) (float64, error)) (mean, std float64, err error) {
	opts = opts.withDefaults()
	var w metrics.Welford
	for t := 0; t < opts.Trials; t++ {
		o := opts
		o.Seed = opts.Seed + int64(t)*104729 // distinct prime stride per trial
		v, err := cell(o)
		if err != nil {
			return 0, 0, err
		}
		w.Add(v)
	}
	return w.Mean(), w.StdDev(), nil
}

// mlqConfig builds the quadtree configuration for an MLQ method.
func (o Options) mlqConfig(m Method, region geom.Rect) quadtree.Config {
	strat := quadtree.Eager
	if m == MLQL {
		strat = quadtree.Lazy
	}
	return quadtree.Config{
		Region:      region,
		Strategy:    strat,
		Policy:      o.Policy,
		MaxDepth:    o.Lambda,
		Alpha:       o.Alpha,
		Beta:        o.Beta,
		Gamma:       o.Gamma,
		MemoryLimit: o.MemoryLimit,
	}
}

// NewModel constructs a method's model over the region. Static methods are
// trained a-priori on the supplied samples (ignored by the MLQ methods,
// which start empty and learn on-line — the paper's §5.1 protocol).
func NewModel(m Method, region geom.Rect, opts Options, training []histogram.Sample) (core.Model, error) {
	opts = opts.withDefaults()
	switch m {
	case MLQE, MLQL:
		return core.NewMLQ(opts.mlqConfig(m, region))
	case SHH:
		return histogram.Train(histogram.EquiHeight,
			histogram.Config{Region: region, MemoryLimit: opts.MemoryLimit}, training)
	case SHW:
		return histogram.Train(histogram.EquiWidth,
			histogram.Config{Region: region, MemoryLimit: opts.MemoryLimit}, training)
	default:
		return nil, fmt.Errorf("harness: unknown method %d", int(m))
	}
}

// instrumentModel attaches the model's quadtree (when it has one) to the
// options' telemetry registry and tracer under the given labels, and returns
// an ErrorTracker for its rolling NAE. With telemetry disabled everything is
// nil and the returned tracker is an inert nil.
func (o Options) instrumentModel(model core.Model, labels ...telemetry.Label) *telemetry.ErrorTracker {
	if o.Telemetry == nil && o.Tracer == nil {
		return nil
	}
	if mlq, ok := model.(*core.MLQ); ok {
		mlq.Tree().Instrument(o.Telemetry, o.Tracer, labels...)
	}
	return telemetry.NewErrorTracker(o.Telemetry, labels...)
}

// trainingFor collects the SH a-priori training set: the paper trains the
// static methods on a query set drawn from the same distribution as the
// test set (but an independent stream).
func trainingFor(m Method, kind dist.Kind, cost synthetic.CostFunc, opts Options) ([]histogram.Sample, error) {
	if m.SelfTuning() {
		return nil, nil
	}
	// Same centroid seed as the test stream (same distribution), fresh
	// point seed (an independent sample of it).
	src, err := dist.NewSourceSeeded(kind, cost.Region(), opts.TrainQueries, opts.Seed, opts.Seed+7919)
	if err != nil {
		return nil, err
	}
	return workload.CollectSamples(src, cost, opts.TrainQueries), nil
}
