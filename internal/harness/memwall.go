package harness

import (
	"fmt"
	"math"
	"math/rand"

	"mlq/internal/budget"
	"mlq/internal/buffercache"
	"mlq/internal/core"
	"mlq/internal/geom"
	"mlq/internal/pagestore"
	"mlq/internal/quadtree"
	"mlq/internal/telemetry"
)

// MemWallConfig parameterizes the global-memory-wall experiment.
type MemWallConfig struct {
	// TotalBytes is the wall: the one budget shared by the cost model and
	// the buffer cache. Default 32 KiB.
	TotalBytes int
	// PageSize is the simulated disk's page size. Default 512.
	PageSize int
	// Pages is the database size in pages. Default 2048 (a 1 MiB database,
	// so no feasible split of the wall caches the phase-A working set).
	Pages int
	// HotPages is the size of phase B's migrated hot set. Default 40
	// (20 KiB: only a cache-heavy split holds it).
	HotPages int
	// ReadsHot is how many hot pages each phase-B query touches. Default 6.
	ReadsHot int
	// Splits are the static model fractions of the wall the arbiter is
	// judged against. Default {0.25, 0.5, 0.75}.
	Splits []float64
	// CycleEvery is how many queries pass between arbitration cycles.
	// Default 10.
	CycleEvery int
	// StepBytes is the arbiter's per-cycle transfer bound. Default 8192.
	StepBytes int
	// MinQueries floors the workload length. The phase-A cost surface has
	// 32×32 cells: below a few thousand queries no feasible model can
	// resolve it, every split ties on phase A, and the cell comparison
	// measures noise. Default 5000 (the whole four-cell run stays under a
	// second). Default-scale and -quick runs both land here.
	MinQueries int
}

func (c MemWallConfig) withDefaults() MemWallConfig {
	if c.TotalBytes == 0 {
		c.TotalBytes = 32 << 10
	}
	if c.PageSize == 0 {
		c.PageSize = 512
	}
	if c.Pages == 0 {
		c.Pages = 2048
	}
	if c.HotPages == 0 {
		c.HotPages = 40
	}
	if c.ReadsHot == 0 {
		c.ReadsHot = 6
	}
	if len(c.Splits) == 0 {
		c.Splits = []float64{0.25, 0.5, 0.75}
	}
	if c.CycleEvery == 0 {
		c.CycleEvery = 10
	}
	if c.StepBytes == 0 {
		c.StepBytes = 8192
	}
	if c.MinQueries == 0 {
		c.MinQueries = 5000
	}
	return c
}

// MemWallRow is one contender's outcome over the full two-phase workload.
type MemWallRow struct {
	// Name is "static-25" style for fixed splits, "arbiter" for the wall.
	Name string
	// ModelStart/ModelEnd are the model's byte grant entering and leaving
	// the run; CacheStart/CacheEnd likewise in pages. Static rows end where
	// they start.
	ModelStart, ModelEnd int
	CacheStart, CacheEnd int
	// IOCost is the summed physical-read cost (buffercache meter units).
	IOCost float64
	// Mispredict is the summed |predicted − actual| execution cost, same
	// units (an unanswerable prediction charges the full actual).
	Mispredict float64
	// Moves/BytesMoved are the arbiter's transfer counters (zero for
	// static rows).
	Moves      int64
	BytesMoved int64
}

// Total is the row's figure of merit: IO plus misprediction cost.
func (r MemWallRow) Total() float64 { return r.IOCost + r.Mispredict }

// MemWall runs the global-memory-wall experiment: a migrating-hot-set
// workload where no static split of one budget between the cost model and
// the buffer cache is good twice.
//
// Phase A queries uniformly over a cost surface with fine spatial structure
// (a 32×32 grid of page-read counts) against a database far larger than any
// feasible cache — every byte is worth more in the model, which needs
// ~1.4k nodes to resolve the surface. Phase B migrates: queries land in a
// narrow band with a flat cost surface, but each touches a small hot set of
// pages — every byte is worth more in the cache, which serves the whole
// phase from memory once it holds the hot set. The same seeded workload
// runs under each static split and under the arbiter (starting at 50/50,
// cycling every CycleEvery queries), and the summed IO + misprediction
// cost is compared.
//
// MemWall errors if the arbiter does not beat every static split, if any
// cycle fails, or if arbitration leaks bytes (the grants must sum to the
// wall after every cycle). The arbiter's row is returned last.
func MemWall(cfg MemWallConfig, opts Options) ([]MemWallRow, error) {
	opts = opts.withDefaults()
	cfg = cfg.withDefaults()
	if opts.Queries < cfg.MinQueries {
		opts.Queries = cfg.MinQueries
	}

	var rows []MemWallRow
	for _, frac := range cfg.Splits {
		row, err := runMemWallCell(fmt.Sprintf("static-%d", int(frac*100+0.5)), frac, false, cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("memwall: %w", err)
		}
		rows = append(rows, row)
	}
	arb, err := runMemWallCell("arbiter", 0.5, true, cfg, opts)
	if err != nil {
		return nil, fmt.Errorf("memwall: %w", err)
	}
	rows = append(rows, arb)
	for _, r := range rows[:len(rows)-1] {
		if arb.Total() >= r.Total() {
			return nil, fmt.Errorf("memwall: arbiter total %.1f does not beat %s total %.1f",
				arb.Total(), r.Name, r.Total())
		}
	}
	return rows, nil
}

// memWallReads is the phase-A cost surface: how many pages the simulated
// UDF reads at point p — a 32×32 grid of values 1..8, fine enough that a
// depth-5 quadtree (1365 nodes) is needed to resolve it exactly.
func memWallReads(p geom.Point) int {
	gx := int(p[0] * 32)
	gy := int(p[1] * 32)
	return 1 + (gx*7+gy*13)%8
}

func runMemWallCell(name string, frac float64, arbitrated bool, cfg MemWallConfig, opts Options) (MemWallRow, error) {
	modelBytes := int(frac * float64(cfg.TotalBytes))
	cachePages := (cfg.TotalBytes - modelBytes) / cfg.PageSize
	row := MemWallRow{Name: name, ModelStart: modelBytes, CacheStart: cachePages}

	store, err := pagestore.New(cfg.PageSize)
	if err != nil {
		return row, err
	}
	payload := make([]byte, 8)
	for i := 0; i < cfg.Pages; i++ {
		id := store.Alloc()
		payload[0] = byte(i)
		if err := store.Write(id, payload); err != nil {
			return row, err
		}
	}
	cache, err := buffercache.New(store, cachePages)
	if err != nil {
		return row, err
	}
	mlq, err := core.NewMLQ(quadtree.Config{
		Region:      geom.UnitCube(2),
		MaxDepth:    6,
		MemoryLimit: modelBytes,
	})
	if err != nil {
		return row, err
	}
	pub, err := core.NewPublisher(mlq, core.PublisherConfig{Events: opts.Events})
	if err != nil {
		return row, err
	}
	defer pub.Close()

	var arb *budget.Arbiter
	if arbitrated {
		// Strong hysteresis: a move must promise double its price. The
		// phase-B cost surface is noisy while the cache is mid-migration
		// (miss counts fluctuate), which inflates the model's apparent
		// marginal value; without the margin the two holders trade the
		// same bytes back and forth. The reversal guard covers 5% of the
		// run's cycles, long enough that a stale bid (the model pricing
		// phase-A structure the workload no longer visits) decays before
		// it can claw back bytes the cache just won. The 8-page cache
		// floor keeps a live ghost window through the model-hungry phase,
		// so the cache can still bid when the hot set arrives.
		guard := opts.Queries / cfg.CycleEvery / 20
		arb, err = budget.New(budget.Config{StepBytes: cfg.StepBytes, Hysteresis: 1, ReversalGuard: guard},
			budget.NewModelHolder("model", pub, 0),
			budget.NewCacheHolder("cache", cache, 8))
		if err != nil {
			return row, err
		}
		if opts.Telemetry != nil {
			arb.Instrument(opts.Telemetry, telemetry.L("exp", "memwall"))
			pub.Instrument(opts.Telemetry, telemetry.L("exp", "memwall"))
			cache.Instrument(opts.Telemetry, telemetry.L("exp", "memwall"))
		}
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	half := opts.Queries / 2
	for q := 0; q < opts.Queries; q++ {
		phaseB := q >= half
		var p geom.Point
		if phaseB {
			// The migrated workload: a narrow band of the space...
			p = geom.Point{rng.Float64() * 0.125, rng.Float64()}
		} else {
			p = geom.Point{rng.Float64(), rng.Float64()}
		}
		pred, ok := pub.Predict(p)

		meter := cache.NewMeter()
		if phaseB {
			// ...whose UDF hammers a small hot set of pages, drawn at
			// random so evictions re-reference inside the ghost window and
			// the cache's capacity signal fires.
			for j := 0; j < cfg.ReadsHot; j++ {
				if _, err := cache.Get(pagestore.PageID(rng.Intn(cfg.HotPages))); err != nil {
					return row, err
				}
			}
		} else {
			// Phase A strides across the whole database: no feasible cache
			// helps, and the read count carries the fine cost structure the
			// model is for.
			k := memWallReads(p)
			for j := 0; j < k; j++ {
				if _, err := cache.Get(pagestore.PageID((q*13 + j*977) % cfg.Pages)); err != nil {
					return row, err
				}
			}
		}
		actual := meter.Cost()
		row.IOCost += actual
		if ok && core.ValidCost(pred) {
			row.Mispredict += math.Abs(pred - actual)
		} else {
			row.Mispredict += actual
		}
		if err := pub.Observe(p, actual); err != nil {
			return row, err
		}
		if err := pub.Flush(); err != nil {
			return row, err
		}
		if arb != nil && (q+1)%cfg.CycleEvery == 0 {
			if _, err := arb.Cycle(); err != nil {
				return row, fmt.Errorf("cycle at query %d: %w", q, err)
			}
			if got := arb.Stats().TotalBytes(); got != cfg.TotalBytes {
				return row, fmt.Errorf("query %d: grants sum to %d bytes, want the %d-byte wall",
					q, got, cfg.TotalBytes)
			}
		}
	}
	row.ModelEnd = pub.MemoryLimit()
	row.CacheEnd = cache.Capacity()
	if arb != nil {
		st := arb.Stats()
		row.Moves = st.Moves
		row.BytesMoved = st.BytesMoved
	}
	return row, nil
}
