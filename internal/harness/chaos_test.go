package harness

import (
	"testing"

	"mlq/internal/core"
)

// TestChaosSmall runs the whole chaos sweep on a tiny workload. The
// experiment self-checks its two contracts — rate-0 transparency against a
// nil-injector baseline, and bounded loss (valid NAE, valid predictions) at
// every rate — so the assertions here are about the sweep's shape and that
// the faults actually happened.
func TestChaosSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full substrates")
	}
	opts := Options{Seed: 1, Queries: 150}
	cfg := ChaosConfig{Rates: []float64{0, 0.3}, Saves: 3, Dir: t.TempDir()}
	cells, err := Chaos(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}

	clean, noisy := cells[0], cells[1]
	if clean.Rate != 0 || noisy.Rate != 0.3 {
		t.Fatalf("rates %g, %g", clean.Rate, noisy.Rate)
	}
	// The zero-rate cell already passed the exact-parity assertion inside
	// Chaos; it must also look like a clean run from the outside.
	if clean.ExecFailures != 0 || clean.Corrupted != 0 || clean.Degraded != 0 {
		t.Errorf("clean cell reported faults: %+v", clean)
	}
	if clean.Saves == 0 {
		t.Error("clean cell skipped the catalog save/load cycles")
	}
	if !core.ValidCost(clean.NAE) || clean.NAE == 0 {
		t.Errorf("clean NAE = %v", clean.NAE)
	}
	// At a 30% rate the injector must actually have done damage...
	if noisy.Corrupted == 0 || noisy.ExecFailures == 0 {
		t.Errorf("noisy cell saw no faults: %+v", noisy)
	}
	if noisy.Quarantined == 0 {
		t.Error("corrupted observations were never quarantined")
	}
	// ...and the hardened loop must have survived it with a usable answer.
	if !core.ValidCost(noisy.NAE) {
		t.Errorf("noisy NAE invalid: %v", noisy.NAE)
	}
	if noisy.Executions != clean.Executions {
		t.Errorf("execution counts diverged: %d vs %d", noisy.Executions, clean.Executions)
	}
}
