package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"mlq/internal/quadtree"
)

// Table is a simple aligned text table for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table to w with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		line(row)
	}
}

// f4 formats a float with four decimals.
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// pct formats a fraction as a percentage with four decimals.
func pct(v float64) string { return fmt.Sprintf("%.4f%%", v*100) }

// RenderFig8 prints Figure 8's rows; replicated runs show mean±std.
func RenderFig8(w io.Writer, rows []Fig8Row) {
	t := Table{
		Title:  "Figure 8: prediction accuracy (NAE) vs number of peaks, synthetic UDFs",
		Header: []string{"dist", "peaks", "MLQ-E", "MLQ-L", "SH-H", "SH-W"},
	}
	cell := func(r Fig8Row, m Method) string {
		if r.StdDev[m] > 0 {
			return fmt.Sprintf("%.4f±%.3f", r.NAE[m], r.StdDev[m])
		}
		return f4(r.NAE[m])
	}
	for _, r := range rows {
		t.AddRow(r.Dist.String(), fmt.Sprint(r.Peaks),
			cell(r, MLQE), cell(r, MLQL), cell(r, SHH), cell(r, SHW))
	}
	t.Fprint(w)
}

// RenderFig9 prints Figure 9's (or 11(a)'s) rows.
func RenderFig9(w io.Writer, title string, rows []Fig9Row) {
	t := Table{
		Title:  title,
		Header: []string{"udf", "dist", "MLQ-E", "MLQ-L", "SH-H", "SH-W"},
	}
	for _, r := range rows {
		t.AddRow(r.UDF, r.Dist.String(),
			f4(r.NAE[MLQE]), f4(r.NAE[MLQL]), f4(r.NAE[SHH]), f4(r.NAE[SHW]))
	}
	t.Fprint(w)
}

// RenderFig10 prints Figure 10's modeling-cost breakdowns.
func RenderFig10(w io.Writer, title string, rows []CostBreakdown) {
	t := Table{
		Title:  title,
		Header: []string{"workload", "method", "PC", "IC", "CC", "MUC", "compressions"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload, r.Method.String(),
			pct(r.PC), pct(r.IC), pct(r.CC), pct(r.MUC), fmt.Sprint(r.Compressions))
	}
	t.Fprint(w)
}

// RenderFig11b prints Figure 11(b)'s noise sweep.
func RenderFig11b(w io.Writer, rows []Fig11bRow) {
	t := Table{
		Title:  "Figure 11(b): prediction accuracy (NAE) vs noise probability, synthetic UDFs, beta=10",
		Header: []string{"noiseP", "MLQ-E", "MLQ-L", "SH-H", "SH-W"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.2f", r.NoiseP),
			f4(r.NAE[MLQE]), f4(r.NAE[MLQL]), f4(r.NAE[SHH]), f4(r.NAE[SHW]))
	}
	t.Fprint(w)
}

// RenderFig12 prints Figure 12's learning curves, one column per series.
func RenderFig12(w io.Writer, title string, series []Fig12Series) {
	if len(series) == 0 {
		return
	}
	header := []string{"queries"}
	for _, s := range series {
		header = append(header, fmt.Sprintf("%s/%s", s.Workload, s.Method))
	}
	t := Table{Title: title, Header: header}
	for i := 0; i < len(series[0].Points); i++ {
		row := []string{fmt.Sprint(series[0].Points[i].N)}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, f4(s.Points[i].NAE))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
}

// RenderAblation prints a parameter sweep.
func RenderAblation(w io.Writer, rows []AblationRow) {
	if len(rows) == 0 {
		return
	}
	workload := "uniform queries"
	switch rows[0].Param {
	case "policy":
		workload = "Gaussian-random queries"
	case "beta":
		workload = "uniform queries, 20% noise"
	}
	t := Table{
		Title:  fmt.Sprintf("Ablation: %s sweep (synthetic, %s)", rows[0].Param, workload),
		Header: []string{"value", "method", "NAE", "compressions"},
	}
	for _, r := range rows {
		value := fmt.Sprintf("%g", r.Value)
		if r.Param == "policy" {
			value = quadtree.CompressionPolicy(int(r.Value)).String()
		}
		t.AddRow(value, r.Method.String(), f4(r.NAE), fmt.Sprint(r.Compressions))
	}
	t.Fprint(w)
}

// RenderShift prints the workload-shift experiment: per-window error curves
// and before/after aggregates for every method.
func RenderShift(w io.Writer, series []ShiftSeries) {
	if len(series) == 0 {
		return
	}
	header := []string{"queries"}
	for _, s := range series {
		header = append(header, s.Method.String())
	}
	t := Table{Title: "Workload shift: NAE per window (clusters move at the midpoint)", Header: header}
	for i := 0; i < len(series[0].Points); i++ {
		row := []string{fmt.Sprint(series[0].Points[i].N)}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, f4(s.Points[i].NAE))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	agg := Table{Title: "\nAggregate NAE before/after the shift", Header: []string{"method", "before", "after"}}
	for _, s := range series {
		agg.AddRow(s.Method.String(), f4(s.Before), f4(s.After))
	}
	agg.Fprint(w)
}

// RenderNN prints the neural-network comparison.
func RenderNN(w io.Writer, kind string, rows []NNRow) {
	t := Table{
		Title:  fmt.Sprintf("Neural-network baseline (Boulos et al.) vs SH-H and MLQ-E (synthetic, %s)", kind),
		Header: []string{"method", "NAE", "train time", "run time"},
	}
	for _, r := range rows {
		train := "-"
		if r.TrainTime > 0 {
			train = r.TrainTime.Round(time.Millisecond).String()
		}
		t.AddRow(r.Name, f4(r.NAE), train, r.RunTime.Round(time.Millisecond).String())
	}
	t.Fprint(w)
}

// RenderLEO prints the LEO storage-efficiency comparison.
func RenderLEO(w io.Writer, kind string, rows []LEORow) {
	t := Table{
		Title:  fmt.Sprintf("LEO-style learning optimizer vs MLQ-E (synthetic, %s)", kind),
		Header: []string{"method", "NAE", "peak memory (bytes)"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, f4(r.NAE), fmt.Sprint(r.PeakMemory))
	}
	t.Fprint(w)
}

// RenderMemCurve prints the accuracy-vs-memory sweep.
func RenderMemCurve(w io.Writer, kind string, rows []MemCurveRow) {
	t := Table{
		Title:  fmt.Sprintf("Accuracy vs memory budget (synthetic, %s)", kind),
		Header: []string{"bytes", "MLQ-E", "MLQ-L", "SH-H", "SH-W"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.MemoryBytes),
			f4(r.NAE[MLQE]), f4(r.NAE[MLQL]), f4(r.NAE[SHH]), f4(r.NAE[SHW]))
	}
	t.Fprint(w)
}

// RenderMemWall prints the global-memory-wall experiment.
func RenderMemWall(w io.Writer, rows []MemWallRow) {
	t := Table{
		Title: "Global memory wall: one budget split between cost model and buffer cache\n" +
			"(migrating hot set; total = physical-read cost + |predicted-actual| cost)",
		Header: []string{"contender", "model-bytes", "cache-pages", "io-cost",
			"mispredict", "total", "moves", "bytes-moved"},
	}
	for _, r := range rows {
		mb := fmt.Sprint(r.ModelStart)
		cp := fmt.Sprint(r.CacheStart)
		if r.ModelEnd != r.ModelStart || r.CacheEnd != r.CacheStart {
			mb = fmt.Sprintf("%d>%d", r.ModelStart, r.ModelEnd)
			cp = fmt.Sprintf("%d>%d", r.CacheStart, r.CacheEnd)
		}
		t.AddRow(r.Name, mb, cp,
			fmt.Sprintf("%.1f", r.IOCost), fmt.Sprintf("%.1f", r.Mispredict),
			fmt.Sprintf("%.1f", r.Total()),
			fmt.Sprint(r.Moves), fmt.Sprint(r.BytesMoved))
	}
	t.Fprint(w)
}

// RenderCachePolicies prints the cache-policy IO-noise experiment.
func RenderCachePolicies(w io.Writer, rows []CachePolicyRow) {
	t := Table{
		Title:  "IO-cost prediction accuracy (NAE) by buffer-cache replacement policy (WIN, GAUSS-RAND, beta=10)",
		Header: []string{"policy", "MLQ-E", "SH-H"},
	}
	for _, r := range rows {
		t.AddRow(r.Policy.String(), f4(r.NAE[MLQE]), f4(r.NAE[SHH]))
	}
	t.Fprint(w)
}

// RenderChaosLatency prints the slow-disk resilience experiment.
func RenderChaosLatency(w io.Writer, rows []ChaosLatencyCell) {
	t := Table{
		Title: "Chaos latency: IO-cost accuracy vs disk degradation (SIMPLE + WIN;\n" +
			"injected slow reads + transient read faults, charged into observations via the retry policy)",
		Header: []string{"severity", "NAE", "execs", "failed", "slow-reads",
			"retries", "charged-units", "journaled", "replayed"},
	}
	for _, c := range rows {
		t.AddRow(
			fmt.Sprintf("%.0fx", c.Severity), f4(c.NAE),
			fmt.Sprintf("%d", c.Executions), fmt.Sprintf("%d", c.ExecFailures),
			fmt.Sprintf("%d", c.SlowReads), fmt.Sprintf("%d", c.Retries),
			fmt.Sprintf("%.1f", c.ChargedUnits),
			fmt.Sprintf("%d", c.Journaled), fmt.Sprintf("%d", c.Replayed),
		)
	}
	t.Fprint(w)
}

// RenderChaos prints the chaos experiment's degradation table.
func RenderChaos(w io.Writer, rows []ChaosCell) {
	t := Table{
		Title: "Chaos: accuracy degradation vs fault rate (SIMPLE + WIN, CPU cost;\n" +
			"faults: corrupted observations, UDF panics, page-read failures, torn catalog writes)",
		Header: []string{"rate", "NAE", "execs", "failed", "corrupted",
			"quarantined", "trips", "page-faults", "panics", "tears", "saves", "degraded-loads"},
	}
	for _, c := range rows {
		t.AddRow(
			fmt.Sprintf("%.2f", c.Rate), f4(c.NAE),
			fmt.Sprintf("%d", c.Executions), fmt.Sprintf("%d", c.ExecFailures),
			fmt.Sprintf("%d", c.Corrupted), fmt.Sprintf("%d", c.Quarantined),
			fmt.Sprintf("%d", c.BreakerTrips), fmt.Sprintf("%d", c.PageFaults),
			fmt.Sprintf("%d", c.Panics), fmt.Sprintf("%d", c.Tears),
			fmt.Sprintf("%d", c.Saves), fmt.Sprintf("%d", c.Degraded),
		)
	}
	t.Fprint(w)

	health := Table{
		Title: "\nPer-UDF fault handling (engine.Health: recovered panics and observation-guard state)",
		Header: []string{"rate", "udf", "exec-failures", "fed", "quarantined",
			"rejected", "skipped", "trips", "breaker"},
	}
	any := false
	for _, c := range rows {
		for _, h := range c.Health {
			any = true
			breaker := "closed"
			if h.Guard.Open {
				breaker = "OPEN"
			}
			health.AddRow(
				fmt.Sprintf("%.2f", c.Rate), h.UDF,
				fmt.Sprintf("%d", h.ExecFailures), fmt.Sprintf("%d", h.Guard.Fed),
				fmt.Sprintf("%d", h.Guard.Quarantined), fmt.Sprintf("%d", h.Guard.Rejected),
				fmt.Sprintf("%d", h.Guard.Skipped), fmt.Sprintf("%d", h.Guard.Trips),
				breaker,
			)
		}
	}
	if any {
		health.Fprint(w)
	}
}

// RenderConcurrency prints the concurrency experiment: prediction throughput
// of the mutex baseline and the snapshot publisher as reader parallelism
// grows, plus the publisher's staleness bound in practice. Throughputs are
// wall-clock measurements and vary with the machine; the speedup column is
// the figure of merit.
func RenderConcurrency(w io.Writer, rows []ConcurrencyRow) {
	t := Table{
		Title: "Concurrency: prediction throughput, N predictors + 1 observer\n" +
			"(mutex = core.Synchronized baseline; snapshot = core.Publisher epoch publishing)",
		Header: []string{"goroutines", "mutex-qps", "snapshot-qps", "speedup", "max-staleness", "epochs"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Goroutines),
			fmt.Sprintf("%.0f", r.MutexQPS),
			fmt.Sprintf("%.0f", r.SnapshotQPS),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%d", r.MaxStaleness),
			fmt.Sprintf("%d", r.FinalEpoch),
		)
	}
	t.Fprint(w)
}

// RenderChaosRepl prints the replication chaos experiment: per-scenario
// convergence and loss accounting for the replicated model fleet.
func RenderChaosRepl(w io.Writer, rows []ChaosReplCell) {
	t := Table{
		Title: "Chaos replication: journal-streaming followers, fenced failover, partition heal\n" +
			"(every scenario converged byte-identically; acked loss bounded by one batch)",
		Header: []string{"scenario", "NAE", "acked", "lost", "failovers", "fenced",
			"max-lag", "catchup", "dedup", "drop", "dup", "reorder", "cut"},
	}
	for _, c := range rows {
		t.AddRow(
			c.Scenario, f4(c.NAE),
			fmt.Sprintf("%d", c.Acked), fmt.Sprintf("%d", c.AckedLost),
			fmt.Sprintf("%d", c.Failovers), fmt.Sprintf("%d", c.FencedWrites),
			fmt.Sprintf("%d", c.MaxLag), fmt.Sprintf("%d", c.Catchup),
			fmt.Sprintf("%d", c.Duplicates), fmt.Sprintf("%d", c.Dropped),
			fmt.Sprintf("%d", c.Duplicated), fmt.Sprintf("%d", c.Reordered),
			fmt.Sprintf("%d", c.Partitioned),
		)
	}
	t.Fprint(w)
}

// RenderChaosNet prints the networked replication chaos experiment: the
// ChaosRepl fault stories over real loopback sockets, plus the socket
// layer's own accounting and the resumable-bootstrap scenario.
func RenderChaosNet(w io.Writer, rows []ChaosNetCell) {
	t := Table{
		Title: "Chaos replication over sockets: reconnect/backoff, heartbeat liveness, resumable bootstrap\n" +
			"(same convergence assertions as chaosrepl, carried by the TCP transport under socket-level chaos)",
		Header: []string{"scenario", "NAE", "acked", "lost", "failovers", "catchup",
			"drop", "cut", "reconn", "hb-miss", "dmg-frames", "boot-chunks", "boot-resumes"},
	}
	for _, c := range rows {
		t.AddRow(
			c.Scenario, f4(c.NAE),
			fmt.Sprintf("%d", c.Acked), fmt.Sprintf("%d", c.AckedLost),
			fmt.Sprintf("%d", c.Failovers), fmt.Sprintf("%d", c.Catchup),
			fmt.Sprintf("%d", c.Dropped), fmt.Sprintf("%d", c.Partitioned),
			fmt.Sprintf("%d", c.Reconnects), fmt.Sprintf("%d", c.HeartbeatsMissed),
			fmt.Sprintf("%d", c.FramesDamaged),
			fmt.Sprintf("%d", c.BootstrapChunks), fmt.Sprintf("%d", c.BootstrapResumes),
		)
	}
	t.Fprint(w)
}
