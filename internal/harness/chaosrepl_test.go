package harness

import (
	"bytes"
	"strings"
	"testing"

	"mlq/internal/telemetry"
)

// TestChaosReplAllScenarios runs the full scenario set at a reduced
// workload: the experiment's own assertions (byte-identical convergence,
// bounded acked loss, fencing, staleness) are the test.
func TestChaosReplAllScenarios(t *testing.T) {
	reg := telemetry.New()
	cells, err := ChaosRepl(ChaosReplConfig{}, Options{Seed: 1, Queries: 600, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	byName := map[string]ChaosReplCell{}
	for _, c := range cells {
		byName[c.Scenario] = c
	}
	clean := byName["clean"]
	if clean.Failovers != 0 || clean.AckedLost != 0 || clean.FencedWrites != 0 {
		t.Fatalf("clean cell reported fault activity: %+v", clean)
	}
	if kill := byName["kill-primary"]; kill.Failovers != 1 || kill.FencedWrites == 0 {
		t.Fatalf("kill-primary accounting: %+v", kill)
	}
	if ph := byName["partition-heal"]; ph.Catchup == 0 || ph.Partitioned == 0 {
		t.Fatalf("partition-heal accounting: %+v", ph)
	}
	if nc := byName["net-chaos"]; nc.Dropped == 0 || nc.Duplicates == 0 || nc.Failovers != 1 {
		t.Fatalf("net-chaos accounting: %+v", nc)
	}

	// The ISSUE-mandated replica telemetry series were published.
	var exp bytes.Buffer
	if err := reg.WritePrometheus(&exp); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"mlq_replica_lag_epochs",
		"mlq_replica_applied_records",
		"mlq_replica_failovers",
		"mlq_replica_fenced_writes",
		"mlq_replica_catchup_records",
	} {
		if !strings.Contains(exp.String(), name) {
			t.Fatalf("exposition missing %s", name)
		}
	}

	// The renderer formats every scenario row.
	var out bytes.Buffer
	RenderChaosRepl(&out, cells)
	for _, sc := range []string{"clean", "kill-primary", "partition-heal", "net-chaos"} {
		if !strings.Contains(out.String(), sc) {
			t.Fatalf("render missing scenario %s:\n%s", sc, out.String())
		}
	}
}

// TestChaosReplSingleScenarioQuick keeps a fast path for the CI smoke job.
func TestChaosReplSingleScenarioQuick(t *testing.T) {
	cells, err := ChaosRepl(ChaosReplConfig{Scenarios: []string{"kill-primary"}}, Options{Seed: 3, Queries: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Acked == 0 {
		t.Fatalf("cells = %+v", cells)
	}
}
