package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/geom"
	"mlq/internal/synthetic"
	"mlq/internal/telemetry"
)

// ConcurrencyRow is one goroutine-count step of the concurrency experiment:
// prediction throughput of the mutex baseline (core.Synchronized) and of the
// epoch/snapshot publisher (core.Publisher) under an identical workload —
// N predictor goroutines with one concurrent observer feeding the model —
// plus the worst snapshot staleness observed.
type ConcurrencyRow struct {
	Goroutines int
	// MutexQPS and SnapshotQPS are predictions per second, summed over all
	// predictor goroutines.
	MutexQPS    float64
	SnapshotQPS float64
	// Speedup is SnapshotQPS / MutexQPS.
	Speedup float64
	// MaxStaleness is the largest number of accepted-but-unpublished
	// observations any predictor saw (bounded by queue capacity + batch).
	MaxStaleness int64
	// FinalEpoch is the publisher's snapshot generation count at the end.
	FinalEpoch uint64
}

// concurrencyModel pre-trains one MLQ on the surface so both contenders
// start from the same realistic tree (compression pressure included).
func concurrencyModel(surface *synthetic.Surface, opts Options) (*core.MLQ, error) {
	m, err := core.NewMLQ(opts.mlqConfig(MLQE, surface.Region()))
	if err != nil {
		return nil, err
	}
	src := dist.NewUniform(surface.Region(), opts.Seed)
	for i := 0; i < opts.Queries; i++ {
		p := src.Next()
		if err := m.Observe(p, surface.Cost(p)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// measureThroughput runs n predictor goroutines, each issuing perG predictions
// against predict, while feed runs concurrently until the predictors finish.
// It returns the summed prediction throughput.
func measureThroughput(n, perG int, region geom.Rect, seed int64, predict func(geom.Point) (float64, bool), feed func(done <-chan struct{})) float64 {
	done := make(chan struct{})
	var feedWG sync.WaitGroup
	if feed != nil {
		feedWG.Add(1)
		go func() {
			defer feedWG.Done()
			feed(done)
		}()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			src := dist.NewUniform(region, seed)
			for i := 0; i < perG; i++ {
				predict(src.Next())
			}
		}(seed + int64(g)*7919)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(done)
	feedWG.Wait()
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(n*perG) / elapsed.Seconds()
}

// Concurrency measures how prediction throughput scales with reader
// parallelism under a live feedback loop, comparing the two concurrency
// models the core package offers: a mutex around the tree versus lock-free
// reads of a published snapshot with batched writes. The workload per cell is
// identical — only the synchronization differs — so the ratio isolates the
// cost of lock contention on the Predict hot path.
func Concurrency(counts []int, opts Options) ([]ConcurrencyRow, error) {
	opts = opts.withDefaults()
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	surface, err := synthetic.Generate(synthetic.Config{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	region := surface.Region()
	// Enough work per goroutine that scheduler noise averages out, scaled
	// down by -quick/-queries the same way the accuracy experiments are.
	perG := opts.Queries * 20

	var rows []ConcurrencyRow
	for _, n := range counts {
		if n <= 0 {
			return nil, fmt.Errorf("harness: goroutine count must be positive, got %d", n)
		}

		// Baseline: mutex-wrapped model, observer contends with readers.
		baseModel, err := concurrencyModel(surface, opts)
		if err != nil {
			return nil, err
		}
		locked := core.NewSynchronized(baseModel)
		feedSrc := dist.NewUniform(region, opts.Seed+13)
		// feedErr is written only by the feed goroutine and read after
		// measureThroughput returns (which waits for it), so no lock is needed.
		var feedErr error
		mutexQPS := measureThroughput(n, perG, region, opts.Seed+1, locked.Predict, func(done <-chan struct{}) {
			for {
				select {
				case <-done:
					return
				default:
				}
				p := feedSrc.Next()
				if err := locked.Observe(p, surface.Cost(p)); err != nil {
					feedErr = err
					return
				}
			}
		})
		if feedErr != nil {
			return nil, feedErr
		}

		// Contender: snapshot publisher, same pre-trained tree and workload.
		pubModel, err := concurrencyModel(surface, opts)
		if err != nil {
			return nil, err
		}
		pub, err := core.NewPublisher(pubModel, core.PublisherConfig{})
		if err != nil {
			return nil, err
		}
		if opts.Telemetry != nil {
			pub.Instrument(opts.Telemetry, telemetry.L("experiment", "concurrency"))
		}
		var maxStale atomic.Int64
		pubFeedSrc := dist.NewUniform(region, opts.Seed+13)
		snapshotQPS := measureThroughput(n, perG, region, opts.Seed+1, func(p geom.Point) (float64, bool) {
			s := pub.Staleness()
			for {
				cur := maxStale.Load()
				if s <= cur || maxStale.CompareAndSwap(cur, s) {
					break
				}
			}
			return pub.Predict(p)
		}, func(done <-chan struct{}) {
			for {
				select {
				case <-done:
					return
				default:
				}
				p := pubFeedSrc.Next()
				if err := pub.Observe(p, surface.Cost(p)); err != nil {
					feedErr = err
					return
				}
			}
		})
		if feedErr != nil {
			return nil, feedErr
		}
		if err := pub.Flush(); err != nil {
			return nil, err
		}
		epoch := pub.Epoch()
		if err := pub.Close(); err != nil {
			return nil, err
		}

		row := ConcurrencyRow{
			Goroutines:   n,
			MutexQPS:     mutexQPS,
			SnapshotQPS:  snapshotQPS,
			MaxStaleness: maxStale.Load(),
			FinalEpoch:   epoch,
		}
		if mutexQPS > 0 {
			row.Speedup = snapshotQPS / mutexQPS
		}
		rows = append(rows, row)
	}
	return rows, nil
}
