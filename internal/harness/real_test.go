package harness

import (
	"strings"
	"testing"

	"mlq/internal/dist"
	"mlq/internal/spatialdb"
	"mlq/internal/textdb"
	"mlq/internal/udf"
)

// testUDFs builds one text and one spatial UDF over small databases.
func testUDFs(t *testing.T) (text udf.UDF, spatial udf.UDF) {
	t.Helper()
	tdb, err := textdb.Generate(textdb.Config{
		NumDocs: 400, VocabSize: 300, MeanDocLen: 40,
		PageSize: 512, CachePages: 16, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := spatialdb.Generate(spatialdb.Config{
		Extent: 300, NumObjects: 1500, GridSize: 12,
		PageSize: 512, CachePages: 16, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tdb.UDFs()[0], sdb.UDFs()[1] // SIMPLE and WIN
}

func realOpts() Options {
	return Options{Queries: 400, TrainQueries: 400, Seed: 11}
}

func TestRunRealNAEAllMethods(t *testing.T) {
	text, spatial := testUDFs(t)
	for _, u := range []udf.UDF{text, spatial} {
		for _, m := range Methods() {
			nae, err := RunRealNAE(m, u, dist.KindUniform, CPUCost, realOpts())
			if err != nil {
				t.Fatalf("%s/%v: %v", u.Name(), m, err)
			}
			// CPU cost surfaces of the real UDFs are learnable: every
			// method must clearly beat the zero predictor.
			if nae <= 0 || nae >= 1 {
				t.Errorf("%s/%v: CPU NAE = %g, want in (0, 1)", u.Name(), m, nae)
			}
		}
	}
}

func TestRunRealNAEIOCost(t *testing.T) {
	_, spatial := testUDFs(t)
	nae, err := RunRealNAE(MLQE, spatial, dist.KindUniform, IOCost, realOpts())
	if err != nil {
		t.Fatal(err)
	}
	// IO is noisy; just require finite, positive, and far better than a
	// wild guess.
	if nae <= 0 || nae > 2 {
		t.Errorf("IO NAE = %g, want in (0, 2]", nae)
	}
}

func TestFig9GridSmall(t *testing.T) {
	text, _ := testUDFs(t)
	opts := realOpts()
	opts.Queries = 200
	opts.TrainQueries = 200
	rows, err := Fig9([]udf.UDF{text}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // 1 UDF x 3 distributions
		t.Fatalf("got %d rows", len(rows))
	}
	var sb strings.Builder
	RenderFig9(&sb, "Figure 9", rows)
	if !strings.Contains(sb.String(), "SIMPLE") {
		t.Error("render missing UDF name")
	}
}

func TestFig10RealShape(t *testing.T) {
	_, spatial := testUDFs(t)
	opts := realOpts()
	opts.Queries = 600
	rows, err := Fig10Real(spatial, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Workload != "WIN" {
			t.Errorf("workload %q", r.Workload)
		}
		if r.PC <= 0 || r.MUC <= 0 {
			t.Errorf("%v: empty breakdown %+v", r.Method, r)
		}
		// The paper's key claim: modeling overhead is a small fraction
		// of real UDF execution cost (PC ~0.02%, MUC <= 1.2%). Our
		// simulated UDFs are faster than Oracle's, so allow up to 20%.
		if r.PC > 0.2 || r.MUC > 0.5 {
			t.Errorf("%v: overhead too high: %+v", r.Method, r)
		}
	}
}

func TestFig11aGridSmall(t *testing.T) {
	_, spatial := testUDFs(t)
	opts := realOpts()
	opts.Queries = 200
	opts.TrainQueries = 200
	rows, err := Fig11a([]udf.UDF{spatial}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		for m, v := range r.NAE {
			if v < 0 {
				t.Errorf("%s/%v: negative NAE", r.UDF, m)
			}
		}
	}
}

func TestFig12RealCurves(t *testing.T) {
	text, _ := testUDFs(t)
	opts := realOpts()
	opts.Queries = 800
	series, err := Fig12Real(text, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("%v: empty curve", s.Method)
		}
		first := s.Points[0].NAE
		last := s.Points[len(s.Points)-1].NAE
		if last >= first {
			t.Errorf("%v: curve did not improve (%.4f -> %.4f)", s.Method, first, last)
		}
	}
}
