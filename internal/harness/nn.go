package harness

import (
	"fmt"
	"time"

	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/metrics"
	"mlq/internal/nncurve"
	"mlq/internal/synthetic"
	"mlq/internal/workload"
)

// NNRow is one method's result in the neural-network comparison.
type NNRow struct {
	Name string
	NAE  float64
	// TrainTime is the a-priori training cost (zero for the self-tuning
	// MLQ methods, which have none).
	TrainTime time.Duration
	// RunTime is the wall time of the predict/observe pass over the test
	// workload.
	RunTime time.Duration
}

// NNComparison quantifies the paper's §2.1 argument for excluding the
// neural-network curve-fitting approach of Boulos et al.: it compares NN,
// MLQ-E and SH-H on a synthetic workload at the same memory budget,
// reporting accuracy alongside training cost. The paper's claim is that NN
// is "very slow to train" and, like SH, cannot self-tune.
func NNComparison(kind dist.Kind, opts Options) ([]NNRow, error) {
	opts = opts.withDefaults()
	surface, err := synthetic.Generate(synthetic.Config{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	region := surface.Region()

	runTest := func(model core.Model) (float64, time.Duration, error) {
		src, err := dist.NewSourceSeeded(kind, region, opts.Queries, opts.Seed, opts.Seed+1)
		if err != nil {
			return 0, 0, err
		}
		stream, err := workload.New(src, surface, opts.Queries)
		if err != nil {
			return 0, 0, err
		}
		var nae metrics.NAE
		start := time.Now()
		for {
			q, ok := stream.Next()
			if !ok {
				break
			}
			pred, _ := model.Predict(q.Point)
			nae.Add(pred, q.True)
			if err := model.Observe(q.Point, q.Observed); err != nil {
				return 0, 0, err
			}
		}
		return nae.Value(), time.Since(start), nil
	}

	var rows []NNRow

	// Static methods share one a-priori training set.
	training, err := trainingFor(SHH, kind, surface, opts)
	if err != nil {
		return nil, err
	}

	nnStart := time.Now()
	nn, err := nncurve.Train(nncurve.Config{
		Region:      region,
		MemoryLimit: opts.MemoryLimit,
		Seed:        opts.Seed,
	}, training)
	if err != nil {
		return nil, fmt.Errorf("nn: %w", err)
	}
	nnTrain := time.Since(nnStart)
	nae, run, err := runTest(nn)
	if err != nil {
		return nil, err
	}
	rows = append(rows, NNRow{Name: "NN", NAE: nae, TrainTime: nnTrain, RunTime: run})

	shStart := time.Now()
	sh, err := NewModel(SHH, region, opts, training)
	if err != nil {
		return nil, err
	}
	shTrain := time.Since(shStart)
	nae, run, err = runTest(sh)
	if err != nil {
		return nil, err
	}
	rows = append(rows, NNRow{Name: "SH-H", NAE: nae, TrainTime: shTrain, RunTime: run})

	mlq, err := NewModel(MLQE, region, opts, nil)
	if err != nil {
		return nil, err
	}
	nae, run, err = runTest(mlq)
	if err != nil {
		return nil, err
	}
	rows = append(rows, NNRow{Name: "MLQ-E", NAE: nae, RunTime: run})

	return rows, nil
}
