package harness

import (
	"fmt"
	"time"

	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/histogram"
	"mlq/internal/metrics"
	"mlq/internal/udf"
)

// CostKind selects which execution-cost component an experiment models.
type CostKind int

// The two cost components of §3.
const (
	// CPUCost is the deterministic work-unit count (ec_CPU).
	CPUCost CostKind = iota
	// IOCost is the physical page-read count (ec_IO), noisy due to the
	// buffer cache.
	IOCost
)

// String names the component.
func (c CostKind) String() string {
	if c == IOCost {
		return "IO"
	}
	return "CPU"
}

// pick selects the component from a UDF execution's measured pair.
func (c CostKind) pick(cpu, io float64) float64 {
	if c == IOCost {
		return io
	}
	return cpu
}

// realTraining executes the UDF on an a-priori training workload and
// collects (point, cost) samples for the static methods — the paper's SH
// training protocol applied to real UDFs.
func realTraining(u udf.UDF, kind dist.Kind, ck CostKind, opts Options) ([]histogram.Sample, error) {
	src, err := dist.NewSourceSeeded(kind, u.Region(), opts.TrainQueries, opts.Seed, opts.Seed+7919)
	if err != nil {
		return nil, err
	}
	samples := make([]histogram.Sample, 0, opts.TrainQueries)
	for i := 0; i < opts.TrainQueries; i++ {
		p := src.Next()
		cpu, io, err := u.Execute(p)
		if err != nil {
			return nil, fmt.Errorf("harness: training %s: %w", u.Name(), err)
		}
		samples = append(samples, histogram.Sample{Point: p, Value: ck.pick(cpu, io)})
	}
	return samples, nil
}

// RunRealNAE runs one (method, UDF, distribution, cost component) cell of
// the real-UDF accuracy experiments: every test query is executed for real
// through the engine's buffer cache, predicted beforehand and fed back
// afterwards. Accuracy is the NAE against the measured cost.
func RunRealNAE(m Method, u udf.UDF, kind dist.Kind, ck CostKind, opts Options) (float64, error) {
	opts = opts.withDefaults()
	var training []histogram.Sample
	if !m.SelfTuning() {
		var err error
		training, err = realTraining(u, kind, ck, opts)
		if err != nil {
			return 0, err
		}
	}
	model, err := NewModel(m, u.Region(), opts, training)
	if err != nil {
		return 0, err
	}
	src, err := dist.NewSourceSeeded(kind, u.Region(), opts.Queries, opts.Seed, opts.Seed+1)
	if err != nil {
		return 0, err
	}
	var nae metrics.NAE
	for i := 0; i < opts.Queries; i++ {
		p := src.Next()
		pred, _ := model.Predict(p)
		cpu, io, err := u.Execute(p)
		if err != nil {
			return 0, fmt.Errorf("harness: executing %s: %w", u.Name(), err)
		}
		actual := ck.pick(cpu, io)
		nae.Add(pred, actual)
		if err := model.Observe(p, actual); err != nil {
			return 0, err
		}
	}
	return nae.Value(), nil
}

// Fig9Row is one group of Figure 9 (or 11(a) for IO): the NAE of every
// method for one real UDF under one query distribution.
type Fig9Row struct {
	UDF  string
	Dist dist.Kind
	NAE  map[Method]float64
}

// Fig9 reproduces Figure 9: prediction accuracy of the real UDFs' CPU cost
// across all query distributions and methods.
func Fig9(udfs []udf.UDF, opts Options) ([]Fig9Row, error) {
	return realAccuracyGrid(udfs, CPUCost, opts)
}

// Fig11a reproduces Figure 11(a): prediction accuracy of the real UDFs'
// disk-IO cost, whose noise comes from the buffer cache. The paper's IO
// experiments use β=10.
func Fig11a(udfs []udf.UDF, opts Options) ([]Fig9Row, error) {
	opts = opts.withDefaults()
	if opts.Beta == 1 {
		opts.Beta = 10
	}
	return realAccuracyGrid(udfs, IOCost, opts)
}

func realAccuracyGrid(udfs []udf.UDF, ck CostKind, opts Options) ([]Fig9Row, error) {
	opts = opts.withDefaults()
	var rows []Fig9Row
	for _, u := range udfs {
		for _, kind := range dist.Kinds() {
			row := Fig9Row{UDF: u.Name(), Dist: kind, NAE: make(map[Method]float64, 4)}
			for _, m := range Methods() {
				v, err := RunRealNAE(m, u, kind, ck, opts)
				if err != nil {
					return nil, fmt.Errorf("%s %v %v: %w", u.Name(), kind, m, err)
				}
				row.NAE[m] = v
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig10Real reproduces Figure 10(a): the modeling-cost breakdown of MLQ-E
// and MLQ-L on a real UDF (the paper shows WIN) under uniform queries,
// normalized by the UDF's actual total execution time.
func Fig10Real(u udf.UDF, opts Options) ([]CostBreakdown, error) {
	opts = opts.withDefaults()
	var out []CostBreakdown
	for _, m := range []Method{MLQE, MLQL} {
		model, err := NewModel(m, u.Region(), opts, nil)
		if err != nil {
			return nil, err
		}
		mlq := model.(*core.MLQ)
		src := dist.NewUniform(u.Region(), opts.Seed)
		var totalExec time.Duration
		for i := 0; i < opts.Queries; i++ {
			p := src.Next()
			mlq.Predict(p)
			start := time.Now()
			cpu, io, err := u.Execute(p)
			totalExec += time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("harness: executing %s: %w", u.Name(), err)
			}
			_ = io
			if err := mlq.Observe(p, cpu); err != nil {
				return nil, err
			}
		}
		out = append(out, breakdownFrom(u.Name(), m, mlq.Costs(), totalExec))
	}
	return out, nil
}

// Fig12Real reproduces the real-UDF panels of Figure 12: learning curves of
// MLQ-E and MLQ-L on one UDF's CPU cost under uniform queries.
func Fig12Real(u udf.UDF, windows int, opts Options) ([]Fig12Series, error) {
	opts = opts.withDefaults()
	if windows <= 0 {
		windows = 25
	}
	var out []Fig12Series
	for _, m := range []Method{MLQE, MLQL} {
		model, err := NewModel(m, u.Region(), opts, nil)
		if err != nil {
			return nil, err
		}
		curve, err := metrics.NewCurve(maxInt(opts.Queries/windows, 1))
		if err != nil {
			return nil, err
		}
		src := dist.NewUniform(u.Region(), opts.Seed)
		for i := 0; i < opts.Queries; i++ {
			p := src.Next()
			pred, _ := model.Predict(p)
			cpu, _, err := u.Execute(p)
			if err != nil {
				return nil, fmt.Errorf("harness: executing %s: %w", u.Name(), err)
			}
			curve.Add(pred, cpu)
			if err := model.Observe(p, cpu); err != nil {
				return nil, err
			}
		}
		curve.Flush()
		out = append(out, Fig12Series{Workload: u.Name(), Method: m, Points: curve.Points()})
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
