package harness

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/events"
	"mlq/internal/faults"
	"mlq/internal/geom"
	"mlq/internal/metrics"
	"mlq/internal/replica"
)

// chaosReplNetFaultP is the per-record probability of each network fault
// (drop, duplicate, reorder) in the net-chaos scenario.
const chaosReplNetFaultP = 0.05

// ChaosReplConfig parameterizes the replication chaos experiment.
type ChaosReplConfig struct {
	// Replicas is the group size including the primary. Default 3.
	Replicas int
	// Scenarios selects which fault stories run. Default all four:
	// clean, kill-primary, partition-heal, net-chaos.
	Scenarios []string
	// MaxBatch is the primary publisher's batch bound — and therefore the
	// hard ceiling on acknowledged observations a failover may lose, which
	// every scenario asserts. Default 16.
	MaxBatch int
	// InboxCapacity bounds follower stream inboxes; with MaxBatch it bounds
	// the follower staleness the clean scenario asserts. Default 1024.
	InboxCapacity int
	// Dir is the scratch directory for journals and checkpoints. Empty
	// means a fresh temp directory, removed afterwards.
	Dir string
}

func (c ChaosReplConfig) withDefaults() ChaosReplConfig {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = []string{"clean", "kill-primary", "partition-heal", "net-chaos"}
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.InboxCapacity <= 0 {
		c.InboxCapacity = 1024
	}
	return c
}

// ChaosReplCell is one scenario's outcome: the replication accounting that
// proves convergence was earned, not assumed.
type ChaosReplCell struct {
	Scenario string
	NAE      float64 // primary-side prediction accuracy over the workload

	Acked        uint64 // acknowledged observation high-water mark
	AckedLost    uint64 // acknowledged observations lost across failovers
	Failovers    int64
	FencedWrites int64  // writes rejected with ErrFencedTerm
	MaxLag       uint64 // max follower sequence lag sampled mid-run (reachable followers)

	Catchup    int64 // records recovered via journal catch-up / checkpoint resync
	Duplicates int64 // stream records deduplicated by followers

	Dropped, Duplicated, Reordered, Partitioned int64 // transport fault plane
}

// chaosReplCost is the deterministic synthetic cost surface the workload
// observes: nonlinear enough that the quadtree actually refines, cheap
// enough that the experiment measures replication, not UDF execution.
func chaosReplCost(p geom.Point) float64 {
	return 5 + 0.3*p[0]*p[0] + 1.7*p[1] + 0.02*p[0]*p[1]
}

// ChaosRepl runs the replicated-fleet chaos experiment: a primary streams
// the Figure-1 feedback loop's observations to followers while the harness
// kills primaries mid-stream, partitions and heals followers, and (in the
// net-chaos scenario) drops, duplicates and reorders the stream itself.
// Every scenario ends in Converge and asserts:
//
//   - byte-identical model serialization across every live replica;
//   - when no acknowledged observation was lost, bit-identity with a plain
//     single-Publisher run of the same workload (the replication layer is
//     transparent — the clean scenario's version of severity 0);
//   - acknowledged loss bounded by one publisher batch (MaxBatch);
//   - zero follower lag after convergence, and mid-run staleness within
//     the inbox + batch bound for reachable followers;
//   - no divergence hazards (failed record applies) anywhere.
func ChaosRepl(cfg ChaosReplConfig, opts Options) ([]ChaosReplCell, error) {
	opts = opts.withDefaults()
	cfg = cfg.withDefaults()

	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "mlq-chaosrepl-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	region, err := geom.NewRect(geom.Point{0, 0}, geom.Point{100, 100})
	if err != nil {
		return nil, err
	}

	// The transparency reference: the identical workload through one plain
	// Publisher, no replication anywhere near it.
	want, err := chaosReplReference(region, opts, cfg)
	if err != nil {
		return nil, fmt.Errorf("chaosrepl: reference run: %w", err)
	}

	var cells []ChaosReplCell
	for si, sc := range cfg.Scenarios {
		cell, err := runChaosReplScenario(sc, region, want, cfg, opts, filepath.Join(dir, fmt.Sprintf("s%d", si)))
		if err != nil {
			return nil, fmt.Errorf("chaosrepl: scenario %s: %w", sc, err)
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// chaosReplReference serializes the single-Publisher ground truth.
func chaosReplReference(region geom.Rect, opts Options, cfg ChaosReplConfig) ([]byte, error) {
	model, err := NewModel(MLQE, region, opts, nil)
	if err != nil {
		return nil, err
	}
	pub, err := core.NewPublisher(model.(*core.MLQ), core.PublisherConfig{MaxBatch: cfg.MaxBatch})
	if err != nil {
		return nil, err
	}
	src, err := dist.NewSourceSeeded(dist.KindUniform, region, opts.Queries, opts.Seed, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	for q := 0; q < opts.Queries; q++ {
		p := src.Next()
		if err := pub.Observe(p, chaosReplCost(p)); err != nil {
			return nil, err
		}
	}
	if err := pub.Flush(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := pub.Snapshot().WriteTo(&buf); err != nil {
		return nil, err
	}
	if err := pub.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// chaosDriver abstracts the transport plane a chaos scenario runs over, so
// the same fault stories and assertions drive both the in-process
// MemTransport (ChaosRepl) and real loopback sockets (ChaosNet).
type chaosDriver struct {
	// injector builds the scenario's fault plane; nil means no faults.
	injector func(sc string, opts Options) *faults.Injector
	// transport builds the scenario's transport over that fault plane.
	transport func(inj *faults.Injector, opts Options) replica.Transport
	// settle, when non-nil, runs after the group is built and before the
	// workload: socket planes wait for the stream links to establish, so
	// the fault schedule hits live connections instead of racing the lazy
	// dialers of an empty fleet.
	settle func(g *replica.Group) error
	// relaxCleanStaleness skips the clean scenario's mid-run staleness
	// bound: socket transports buffer in flight, so the inbox+batch bound
	// only models the in-process plane.
	relaxCleanStaleness bool
}

// memChaosDriver is the canonical in-process plane: record-level drop,
// duplicate and reorder faults inside MemTransport.
func memChaosDriver() chaosDriver {
	return chaosDriver{
		injector: func(sc string, opts Options) *faults.Injector {
			if sc != "net-chaos" {
				return nil
			}
			inj := faults.New(opts.Seed + 7919)
			inj.Enable(faults.ReplicaDrop, faults.SiteConfig{Probability: chaosReplNetFaultP})
			inj.Enable(faults.ReplicaDup, faults.SiteConfig{Probability: chaosReplNetFaultP})
			inj.Enable(faults.ReplicaReorder, faults.SiteConfig{Probability: chaosReplNetFaultP})
			return inj
		},
		transport: func(inj *faults.Injector, opts Options) replica.Transport {
			return replica.NewMemTransport(inj)
		},
	}
}

// runChaosReplScenario drives one fault story end to end on the in-process
// transport plane.
func runChaosReplScenario(sc string, region geom.Rect, want []byte, cfg ChaosReplConfig, opts Options, dir string) (ChaosReplCell, error) {
	return runChaosScenarioDriver(sc, region, want, cfg, opts, dir, memChaosDriver())
}

// runChaosScenarioDriver drives one fault story end to end over the plane
// the driver supplies.
func runChaosScenarioDriver(sc string, region geom.Rect, want []byte, cfg ChaosReplConfig, opts Options, dir string, drv chaosDriver) (ChaosReplCell, error) {
	cell := ChaosReplCell{Scenario: sc}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return cell, err
	}

	inj := drv.injector(sc, opts)

	mlqCfg := opts.mlqConfig(MLQE, region)
	g, err := replica.New(replica.Config{
		Replicas:      cfg.Replicas,
		Dir:           dir,
		NewModel:      func() (*core.MLQ, error) { return core.NewMLQ(mlqCfg) },
		Transport:     drv.transport(inj, opts),
		MaxBatch:      cfg.MaxBatch,
		InboxCapacity: cfg.InboxCapacity,
		Telemetry:     replica.NewGroupTelemetry(opts.Telemetry),
		Events:        opts.Events,
	})
	if err != nil {
		return cell, err
	}
	defer g.Close()
	if drv.settle != nil {
		if err := drv.settle(g); err != nil {
			return cell, fmt.Errorf("settle: %w", err)
		}
	}

	src, err := dist.NewSourceSeeded(dist.KindUniform, region, opts.Queries, opts.Seed, opts.Seed+1)
	if err != nil {
		return cell, err
	}

	// Scenario event schedule, by workload index. The partition victim is
	// always the last replica (never the initial primary r0).
	n := opts.Queries
	// Mark the scenario boundary on the spine: a dump decoded later shows
	// which fault story the surrounding events belong to.
	opts.Events.Emit(events.SubHarness, events.KindMark, 0, uint64(n), 0)
	victim := fmt.Sprintf("r%d", cfg.Replicas-1)
	var downed []string
	sched := map[int]func() error{}
	switch sc {
	case "clean":
	case "kill-primary":
		sched[n/2] = func() error {
			old := g.PrimaryID()
			stale := g.Handle()
			if _, err := g.Failover(); err != nil {
				return err
			}
			downed = append(downed, old)
			return expectFenced(stale)
		}
	case "partition-heal":
		sched[n/4] = func() error { g.Transport().Partition(victim); return nil }
		// The checkpoint compacts the journal while the victim is cut off,
		// so healing alone cannot repair it — only a checkpoint resync can.
		sched[n/2] = func() error { return g.Checkpoint() }
		sched[3*n/4] = func() error { g.Transport().Heal(victim); return nil }
	case "net-chaos":
		sched[n/3] = func() error { g.Transport().Partition(victim); return nil }
		sched[n/2] = func() error {
			old := g.PrimaryID()
			stale := g.Handle()
			if _, err := g.Failover(); err != nil {
				return err
			}
			downed = append(downed, old)
			return expectFenced(stale)
		}
		sched[2*n/3] = func() error { g.Transport().Heal(victim); return nil }
	default:
		return cell, fmt.Errorf("unknown scenario %q", sc)
	}

	var nae metrics.NAE
	h := g.Handle()
	for q := 0; q < n; q++ {
		if ev, ok := sched[q]; ok {
			if err := ev(); err != nil {
				return cell, err
			}
			h = g.Handle() // events may have moved the term
		}
		p := src.Next()
		actual := chaosReplCost(p)
		if pred, ok := g.Predict(g.PrimaryID(), p); ok {
			if !core.ValidCost(pred) {
				return cell, fmt.Errorf("primary predicted invalid %v", pred)
			}
			nae.Add(pred, actual)
		}
		if err := h.Observe(p, actual); err != nil {
			return cell, fmt.Errorf("observe %d: %w", q, err)
		}
		if q%64 == 0 {
			cell.MaxLag = maxUint64(cell.MaxLag, sampleFollowerLag(g))
		}
	}
	cell.NAE = nae.Value()

	// Resurrect every killed primary before the convergence check: the
	// rejoin path (checkpoint resync + journal suffix) is part of what the
	// scenario proves.
	for _, id := range downed {
		if err := g.Rejoin(id); err != nil {
			return cell, fmt.Errorf("rejoin %s: %w", id, err)
		}
	}
	if err := g.Converge(); err != nil {
		return cell, fmt.Errorf("converge: %w", err)
	}

	st := g.Stats()
	cell.Acked = st.Acked
	cell.AckedLost = st.AckedLost
	cell.Failovers = st.Failovers
	cell.FencedWrites = st.FencedWrites
	cell.Dropped = st.Transport.Dropped
	cell.Duplicated = st.Transport.Duplicated
	cell.Reordered = st.Transport.Reordered
	cell.Partitioned = st.Transport.Partitioned
	for _, rs := range st.Replicas {
		cell.Catchup += rs.Catchup
		cell.Duplicates += rs.Duplicates
	}

	// --- Assertions -----------------------------------------------------

	if st.AckedLost > uint64(cfg.MaxBatch) {
		return cell, fmt.Errorf("lost %d acknowledged observations, bound is one batch (%d)", st.AckedLost, cfg.MaxBatch)
	}
	if errs := g.ApplyErrors(); len(errs) != 0 {
		return cell, fmt.Errorf("divergence hazards recorded: %v", errs)
	}

	// Byte-identical convergence across every live replica — and, when
	// nothing acknowledged was lost, bit-identity with the plain
	// single-Publisher reference.
	var first []byte
	live := 0
	for _, id := range g.IDs() {
		b, err := g.ModelBytes(id)
		if err != nil {
			return cell, fmt.Errorf("%s did not come back: %w", id, err)
		}
		live++
		if first == nil {
			first = b
		} else if !bytes.Equal(first, b) {
			return cell, fmt.Errorf("%s diverged after heal (%d vs %d bytes)", id, len(b), len(first))
		}
	}
	if live != cfg.Replicas {
		return cell, fmt.Errorf("%d of %d replicas serving after heal", live, cfg.Replicas)
	}
	if st.AckedLost == 0 {
		if st.Acked != uint64(n) {
			return cell, fmt.Errorf("acked %d of %d workload observations with zero loss", st.Acked, n)
		}
		if !bytes.Equal(first, want) {
			return cell, fmt.Errorf("replicated fleet diverged from the single-Publisher reference — replication is not transparent")
		}
	}

	// Staleness: zero lag everywhere after convergence; bounded samples
	// mid-run in the undisturbed scenario.
	for _, rs := range st.Replicas {
		if rs.Role == replica.RoleFollower && rs.LagEpochs != 0 {
			return cell, fmt.Errorf("%s still lags %d epochs after converge", rs.ID, rs.LagEpochs)
		}
		if rs.Applied != st.Acked {
			return cell, fmt.Errorf("%s applied %d of %d acked after converge", rs.ID, rs.Applied, st.Acked)
		}
	}
	if sc == "clean" && !drv.relaxCleanStaleness && cell.MaxLag > uint64(cfg.InboxCapacity+cfg.MaxBatch) {
		return cell, fmt.Errorf("clean-run follower staleness %d exceeds inbox+batch bound %d", cell.MaxLag, cfg.InboxCapacity+cfg.MaxBatch)
	}

	// Scenario-specific accounting.
	switch sc {
	case "clean":
		if st.Failovers != 0 || st.FencedWrites != 0 || st.AckedLost != 0 {
			return cell, fmt.Errorf("clean scenario reported fault activity: %+v", st)
		}
	case "kill-primary", "net-chaos":
		if st.Failovers == 0 {
			return cell, fmt.Errorf("no failover recorded")
		}
		if st.FencedWrites == 0 {
			return cell, fmt.Errorf("stale handle was never fenced")
		}
		if cell.Catchup == 0 {
			return cell, fmt.Errorf("rejoin recovered no records")
		}
	case "partition-heal":
		if cell.Catchup == 0 {
			return cell, fmt.Errorf("healed partition recovered no records")
		}
	}
	return cell, nil
}

// expectFenced asserts a demoted lineage's handle reports ErrFencedTerm.
func expectFenced(h *replica.Handle) error {
	p := geom.Point{1, 1}
	err := h.Observe(p, chaosReplCost(p))
	if !errors.Is(err, replica.ErrFencedTerm) {
		return fmt.Errorf("stale handle observe returned %v, want ErrFencedTerm", err)
	}
	return nil
}

// sampleFollowerLag returns the largest acked-minus-applied gap over the
// reachable followers right now.
func sampleFollowerLag(g *replica.Group) uint64 {
	st := g.Stats()
	var max uint64
	for _, rs := range st.Replicas {
		if rs.Role != replica.RoleFollower || g.Transport().Cut(rs.ID) {
			continue
		}
		if st.Acked > rs.Applied {
			max = maxUint64(max, st.Acked-rs.Applied)
		}
	}
	return max
}

func maxUint64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
