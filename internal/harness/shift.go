package harness

import (
	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/metrics"
	"mlq/internal/synthetic"
	"mlq/internal/workload"
)

// ShiftSeries is one method's error curve across a workload shift.
type ShiftSeries struct {
	Method Method
	Points []metrics.CurvePoint
	// Before and After are the aggregate NAE on the pre-shift and
	// post-shift halves of the workload.
	Before, After float64
}

// Shift runs the experiment behind the paper's motivation for self-tuning
// (§1): all four methods face a workload whose query clusters move halfway
// through the run. The static methods are trained a-priori on the pre-shift
// distribution — all they can ever know — while the MLQ methods keep
// learning. windows controls the resolution of the returned error curves.
func Shift(windows int, opts Options) ([]ShiftSeries, error) {
	opts = opts.withDefaults()
	if windows <= 0 {
		windows = 16
	}
	surface, err := synthetic.Generate(synthetic.Config{NumPeaks: 100, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	region := surface.Region()
	n := opts.Queries

	newShifting := func(pointSeed int64) (dist.PointSource, error) {
		phase1, err := dist.NewSourceSeeded(dist.KindGaussianRandom, region, n, opts.Seed+100, pointSeed)
		if err != nil {
			return nil, err
		}
		phase2, err := dist.NewSourceSeeded(dist.KindGaussianRandom, region, n, opts.Seed+200, pointSeed+1)
		if err != nil {
			return nil, err
		}
		return workload.NewConcat([]dist.PointSource{phase1, phase2}, []int{n / 2, n - n/2})
	}

	// Static training: an independent sample of the PRE-shift phase only.
	trainSrc, err := dist.NewSourceSeeded(dist.KindGaussianRandom, region, n, opts.Seed+100, opts.Seed+7919)
	if err != nil {
		return nil, err
	}
	training := workload.CollectSamples(trainSrc, surface, opts.TrainQueries)

	var out []ShiftSeries
	for _, m := range Methods() {
		var model core.Model
		if m.SelfTuning() {
			model, err = NewModel(m, region, opts, nil)
		} else {
			model, err = NewModel(m, region, opts, training)
		}
		if err != nil {
			return nil, err
		}
		src, err := newShifting(opts.Seed + int64(m))
		if err != nil {
			return nil, err
		}
		curve, err := metrics.NewCurve(maxInt(n/windows, 1))
		if err != nil {
			return nil, err
		}
		var before, after metrics.NAE
		for i := 0; i < n; i++ {
			p := src.Next()
			pred, _ := model.Predict(p)
			actual := surface.Cost(p)
			curve.Add(pred, actual)
			if i < n/2 {
				before.Add(pred, actual)
			} else {
				after.Add(pred, actual)
			}
			if err := model.Observe(p, actual); err != nil {
				return nil, err
			}
		}
		curve.Flush()
		out = append(out, ShiftSeries{
			Method: m,
			Points: curve.Points(),
			Before: before.Value(),
			After:  after.Value(),
		})
	}
	return out, nil
}
