package harness

import (
	"mlq/internal/buffercache"
	"mlq/internal/dist"
	"mlq/internal/spatialdb"
)

// CachePolicyRow is one replacement policy's IO-cost modeling result.
type CachePolicyRow struct {
	Policy buffercache.Policy
	NAE    map[Method]float64
}

// CachePolicies measures how the buffer cache's replacement policy shapes
// the disk-IO cost noise the models face (Experiment 3's mechanism): the
// same WIN workload runs against databases differing only in cache policy,
// and the table reports IO-cost prediction accuracy (β=10) per method.
func CachePolicies(opts Options) ([]CachePolicyRow, error) {
	opts = opts.withDefaults()
	if opts.Beta == 1 {
		opts.Beta = 10
	}
	var rows []CachePolicyRow
	for _, policy := range []buffercache.Policy{buffercache.LRU, buffercache.FIFO, buffercache.Clock} {
		sdb, err := spatialdb.Generate(spatialdb.Config{
			Seed:        opts.Seed,
			CachePolicy: policy,
		})
		if err != nil {
			return nil, err
		}
		win := sdb.UDFs()[1]
		row := CachePolicyRow{Policy: policy, NAE: make(map[Method]float64, 2)}
		for _, m := range []Method{MLQE, SHH} {
			v, err := RunRealNAE(m, win, dist.KindGaussianRandom, IOCost, opts)
			if err != nil {
				return nil, err
			}
			row.NAE[m] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}
