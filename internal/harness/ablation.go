package harness

import (
	"fmt"

	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/metrics"
	"mlq/internal/quadtree"
	"mlq/internal/synthetic"
)

// AblationRow is one point of a one-at-a-time parameter sweep: the accuracy
// and compression behaviour of one MLQ method at one parameter value.
type AblationRow struct {
	Param        string
	Value        float64
	Method       Method
	NAE          float64
	Compressions int64
}

// AblationParams lists the sweepable MLQ parameters: the four tuning knobs
// of §4, the memory budget, and the compression-policy ablation that
// quantifies what the SSEG victim ordering buys over count-based and random
// eviction. The numeric sweeps reproduce the parameter study the paper
// defers to its technical report [18].
func AblationParams() []string {
	return []string{"alpha", "beta", "gamma", "lambda", "memory", "policy"}
}

// DefaultAblationValues returns a sensible sweep range for each parameter.
func DefaultAblationValues(param string) []float64 {
	switch param {
	case "alpha":
		return []float64{0.01, 0.05, 0.1, 0.2, 0.5}
	case "beta":
		return []float64{1, 2, 5, 10, 20}
	case "gamma":
		return []float64{0.001, 0.01, 0.05, 0.1, 0.25}
	case "lambda":
		return []float64{2, 4, 6, 8}
	case "memory":
		return []float64{512, 1024, 1843, 4096, 8192}
	case "policy":
		return []float64{
			float64(quadtree.CompressSSEG),
			float64(quadtree.CompressCount),
			float64(quadtree.CompressRandom),
		}
	default:
		return nil
	}
}

// Ablate sweeps one MLQ parameter over the synthetic workload, holding
// everything else at the paper's defaults. The β sweep runs under 20%
// observation noise, since β exists to absorb noise (§4.3). The policy
// sweep runs under the Gaussian-random distribution, because the SSEG
// ordering's rationale — frequently queried regions are likely to be
// queried again (§4.4) — only has bite on a skewed workload. All other
// sweeps use uniform queries, noise-free.
func Ablate(param string, values []float64, opts Options) ([]AblationRow, error) {
	opts = opts.withDefaults()
	if len(values) == 0 {
		values = DefaultAblationValues(param)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("harness: unknown ablation parameter %q (want one of %v)", param, AblationParams())
	}
	surface, err := synthetic.Generate(synthetic.Config{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	var cost synthetic.CostFunc = surface
	kind := dist.KindUniform
	if param == "beta" {
		if cost, err = synthetic.NewNoisy(surface, 0.2, opts.Seed+1); err != nil {
			return nil, err
		}
	}
	if param == "policy" {
		kind = dist.KindGaussianRandom
	}
	methods := []Method{MLQE, MLQL}
	if param == "alpha" {
		methods = []Method{MLQL} // alpha only affects lazy insertion
	}
	var rows []AblationRow
	for _, v := range values {
		o := opts
		switch param {
		case "alpha":
			o.Alpha = v
		case "beta":
			o.Beta = int(v)
		case "gamma":
			o.Gamma = v
		case "lambda":
			o.Lambda = int(v)
		case "memory":
			o.MemoryLimit = int(v)
		case "policy":
			o.Policy = quadtree.CompressionPolicy(int(v))
		default:
			return nil, fmt.Errorf("harness: unknown ablation parameter %q", param)
		}
		for _, m := range methods {
			nae, comps, err := runInstrumented(m, cost, kind, o)
			if err != nil {
				return nil, fmt.Errorf("ablate %s=%g %v: %w", param, v, m, err)
			}
			rows = append(rows, AblationRow{
				Param: param, Value: v, Method: m,
				NAE: nae, Compressions: comps,
			})
		}
	}
	return rows, nil
}

// runInstrumented is RunSyntheticNAE for MLQ methods, additionally
// reporting the compression count.
func runInstrumented(m Method, cost synthetic.CostFunc, kind dist.Kind, opts Options) (float64, int64, error) {
	model, err := NewModel(m, cost.Region(), opts, nil)
	if err != nil {
		return 0, 0, err
	}
	mlq, ok := model.(*core.MLQ)
	if !ok {
		return 0, 0, fmt.Errorf("harness: ablation needs an MLQ method, got %v", m)
	}
	src, err := dist.NewSourceSeeded(kind, cost.Region(), opts.Queries, opts.Seed, opts.Seed+1)
	if err != nil {
		return 0, 0, err
	}
	var nae metrics.NAE
	for i := 0; i < opts.Queries; i++ {
		p := src.Next()
		pred, _ := mlq.Predict(p)
		actual := cost.Cost(p)
		truth := actual
		if tc, isNoisy := cost.(*synthetic.Noisy); isNoisy {
			truth = tc.TrueCost(p)
		}
		nae.Add(pred, truth)
		if err := mlq.Observe(p, actual); err != nil {
			return 0, 0, err
		}
	}
	return nae.Value(), mlq.Costs().Compressions, nil
}
