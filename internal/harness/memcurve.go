package harness

import (
	"mlq/internal/dist"
	"mlq/internal/synthetic"
)

// MemCurveRow is one memory-budget step: every method's NAE at that budget.
type MemCurveRow struct {
	MemoryBytes int
	NAE         map[Method]float64
}

// MemCurve measures the accuracy-vs-memory trade-off of all four methods on
// the synthetic workload: the paper fixes 1.8 KB throughout (§5.1); this
// sweep shows where that budget sits on each method's curve and whether the
// methods' ranking is budget-sensitive.
func MemCurve(budgets []int, kind dist.Kind, opts Options) ([]MemCurveRow, error) {
	opts = opts.withDefaults()
	if len(budgets) == 0 {
		budgets = []int{512, 1024, 1843, 4096, 8192, 16384}
	}
	surface, err := synthetic.Generate(synthetic.Config{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	var rows []MemCurveRow
	for _, b := range budgets {
		o := opts
		o.MemoryLimit = b
		row := MemCurveRow{MemoryBytes: b, NAE: make(map[Method]float64, 4)}
		for _, m := range Methods() {
			mean, _, err := replicate(o, func(o Options) (float64, error) {
				return RunSyntheticNAE(m, surface, kind, o)
			})
			if err != nil {
				return nil, err
			}
			row.NAE[m] = mean
		}
		rows = append(rows, row)
	}
	return rows, nil
}
