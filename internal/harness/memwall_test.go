package harness

import "testing"

// TestMemWallQuick is the CI smoke: the arbiter must beat every static
// split, cycles must never fail, and the wall must not leak — MemWall
// enforces all three internally. (The 600-query request is floored to
// MinQueries; the experiment's cost surface needs the longer run, which
// still finishes in under a second.)
func TestMemWallQuick(t *testing.T) {
	rows, err := MemWall(MemWallConfig{}, Options{Seed: 1, Queries: 600})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-10s model %6d>%6d  cache %3d>%3d  io %8.1f  mispred %8.1f  total %8.1f  moves %d",
			r.Name, r.ModelStart, r.ModelEnd, r.CacheStart, r.CacheEnd,
			r.IOCost, r.Mispredict, r.Total(), r.Moves)
	}
	arb := rows[len(rows)-1]
	if arb.Name != "arbiter" {
		t.Fatalf("last row is %q, want the arbiter", arb.Name)
	}
	if arb.Moves == 0 {
		t.Error("arbiter made no moves on a migrating workload")
	}
	if arb.ModelEnd == arb.ModelStart && arb.CacheEnd == arb.CacheStart {
		t.Error("arbiter ended exactly where it started on a migrating workload")
	}
}
