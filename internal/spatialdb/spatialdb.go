// Package spatialdb is a miniature spatial database: a synthetic clustered
// map of rectangles (standing in for the paper's "urban areas of
// Pennsylvania" dataset), a grid index serialized onto disk pages, and the
// paper's three spatial-search UDFs — K-nearest-neighbors, window, and range
// search — executed through an LRU buffer cache with instrumented CPU and
// IO costs. See DESIGN.md §3 for the substitution rationale.
package spatialdb

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"time"

	"mlq/internal/buffercache"
	"mlq/internal/pagestore"
)

// Object is one rectangle on the map (an "urban area").
type Object struct {
	ID   uint32
	X, Y float64 // lower-left corner
	W, H float64 // extents
}

// objBytes is the on-page record size: id(4) + 4 float32 coordinates.
const objBytes = 20

// CenterX returns the rectangle's center X coordinate.
func (o Object) CenterX() float64 { return o.X + o.W/2 }

// CenterY returns the rectangle's center Y coordinate.
func (o Object) CenterY() float64 { return o.Y + o.H/2 }

// distTo returns the Euclidean distance from (x, y) to the rectangle
// (zero when the point lies inside it).
func (o Object) distTo(x, y float64) float64 {
	dx := math.Max(0, math.Max(o.X-x, x-(o.X+o.W)))
	dy := math.Max(0, math.Max(o.Y-y, y-(o.Y+o.H)))
	return math.Hypot(dx, dy)
}

// intersectsWindow reports whether the object overlaps the axis-aligned
// window [wx, wx+ww] x [wy, wy+wh].
func (o Object) intersectsWindow(wx, wy, ww, wh float64) bool {
	return o.X <= wx+ww && wx <= o.X+o.W && o.Y <= wy+wh && wy <= o.Y+o.H
}

// Config parameterizes map generation.
type Config struct {
	// Extent is the square map's side length. Default 1000.
	Extent float64
	// NumObjects is the number of rectangles. Default 20000.
	NumObjects int
	// NumClusters controls spatial skew. Default 12.
	NumClusters int
	// ClusterSigma is the cluster spread as a fraction of Extent.
	// Default 0.06.
	ClusterSigma float64
	// MaxSize is the largest rectangle extent. Default 8.
	MaxSize float64
	// GridSize is the index resolution (GridSize x GridSize cells).
	// Default 32.
	GridSize int
	// PageSize is the disk page size. Default pagestore.DefaultPageSize.
	PageSize int
	// CachePages is the buffer-cache capacity. Default 64.
	CachePages int
	// CachePolicy is the buffer-cache replacement policy (default LRU).
	CachePolicy buffercache.Policy
	// Seed drives map generation.
	Seed int64
}

func (c Config) withDefaults() Config {
	//lint:ignore floatguard exact zero is the documented unset-field sentinel
	if c.Extent == 0 {
		c.Extent = 1000
	}
	if c.NumObjects == 0 {
		c.NumObjects = 20000
	}
	if c.NumClusters == 0 {
		c.NumClusters = 12
	}
	//lint:ignore floatguard exact zero is the documented unset-field sentinel
	if c.ClusterSigma == 0 {
		c.ClusterSigma = 0.06
	}
	//lint:ignore floatguard exact zero is the documented unset-field sentinel
	if c.MaxSize == 0 {
		c.MaxSize = 8
	}
	if c.GridSize == 0 {
		c.GridSize = 32
	}
	if c.CachePages == 0 {
		c.CachePages = 64
	}
	return c
}

// ExecStats reports one UDF execution's measured costs.
type ExecStats struct {
	// CPU counts work units: objects examined plus cells visited.
	CPU float64
	// IO is the modeled IO cost: physical page reads (buffer-cache misses)
	// plus any retry/slow-disk latency the cache charged, in clean-read
	// equivalents. Equals the plain miss count on a healthy disk.
	IO float64
	// Wall is the real execution time.
	Wall time.Duration
}

// DB is a loaded spatial database.
type DB struct {
	cfg   Config
	store *pagestore.Store
	cache *buffercache.Cache

	objPages   []pagestore.PageID // object records, objPerPage per page
	objPerPage int
	nObjects   int

	grid      [][]pagestore.PageID // per cell: pages of object IDs
	cellCount []int32              // per cell: number of IDs
	idsPage   int                  // IDs per cell page
}

// Generate builds the clustered map, serializes objects and the grid index
// to simulated disk, and returns the ready-to-query database.
func Generate(cfg Config) (*DB, error) {
	cfg = cfg.withDefaults()
	if cfg.NumObjects < 1 || cfg.NumClusters < 1 || cfg.GridSize < 1 {
		return nil, fmt.Errorf("spatialdb: NumObjects, NumClusters, GridSize must be >= 1")
	}
	if cfg.Extent <= 0 || cfg.MaxSize <= 0 {
		return nil, fmt.Errorf("spatialdb: Extent and MaxSize must be positive")
	}
	store, err := pagestore.New(cfg.PageSize)
	if err != nil {
		return nil, err
	}
	cache, err := buffercache.NewWithPolicy(store, cfg.CachePages, cfg.CachePolicy)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Step 1: clustered rectangles.
	centers := make([][2]float64, cfg.NumClusters)
	for i := range centers {
		centers[i] = [2]float64{rng.Float64() * cfg.Extent, rng.Float64() * cfg.Extent}
	}
	objects := make([]Object, cfg.NumObjects)
	clamp := func(v float64) float64 {
		return math.Min(math.Max(v, 0), cfg.Extent-cfg.MaxSize)
	}
	for i := range objects {
		c := centers[rng.Intn(len(centers))]
		objects[i] = Object{
			ID: uint32(i),
			X:  clamp(c[0] + rng.NormFloat64()*cfg.ClusterSigma*cfg.Extent),
			Y:  clamp(c[1] + rng.NormFloat64()*cfg.ClusterSigma*cfg.Extent),
			W:  0.5 + rng.Float64()*(cfg.MaxSize-0.5),
			H:  0.5 + rng.Float64()*(cfg.MaxSize-0.5),
		}
	}

	db := &DB{
		cfg:        cfg,
		store:      store,
		cache:      cache,
		objPerPage: store.PageSize() / objBytes,
		nObjects:   cfg.NumObjects,
		idsPage:    store.PageSize() / 4,
	}

	// Step 2: object pages.
	buf := make([]byte, store.PageSize())
	for start := 0; start < len(objects); start += db.objPerPage {
		end := start + db.objPerPage
		if end > len(objects) {
			end = len(objects)
		}
		for i, o := range objects[start:end] {
			off := i * objBytes
			binary.LittleEndian.PutUint32(buf[off:], o.ID)
			binary.LittleEndian.PutUint32(buf[off+4:], math.Float32bits(float32(o.X)))
			binary.LittleEndian.PutUint32(buf[off+8:], math.Float32bits(float32(o.Y)))
			binary.LittleEndian.PutUint32(buf[off+12:], math.Float32bits(float32(o.W)))
			binary.LittleEndian.PutUint32(buf[off+16:], math.Float32bits(float32(o.H)))
		}
		id := store.Alloc()
		if err := store.Write(id, buf[:(end-start)*objBytes]); err != nil {
			return nil, err
		}
		db.objPages = append(db.objPages, id)
	}

	// Step 3: grid index — each object registered in every overlapping cell.
	g := cfg.GridSize
	cells := make([][]uint32, g*g)
	for _, o := range objects {
		x0, y0 := db.cellOf(o.X, o.Y)
		x1, y1 := db.cellOf(o.X+o.W, o.Y+o.H)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				idx := cy*g + cx
				cells[idx] = append(cells[idx], o.ID)
			}
		}
	}
	db.grid = make([][]pagestore.PageID, g*g)
	db.cellCount = make([]int32, g*g)
	for idx, ids := range cells {
		db.cellCount[idx] = int32(len(ids))
		for start := 0; start < len(ids); start += db.idsPage {
			end := start + db.idsPage
			if end > len(ids) {
				end = len(ids)
			}
			for i, oid := range ids[start:end] {
				binary.LittleEndian.PutUint32(buf[i*4:], oid)
			}
			pid := store.Alloc()
			if err := store.Write(pid, buf[:(end-start)*4]); err != nil {
				return nil, err
			}
			db.grid[idx] = append(db.grid[idx], pid)
		}
	}
	return db, nil
}

// cellOf maps a coordinate to grid cell indices, clamped to the grid.
func (db *DB) cellOf(x, y float64) (cx, cy int) {
	g := db.cfg.GridSize
	cw := db.cfg.Extent / float64(g)
	cx = int(x / cw)
	cy = int(y / cw)
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cx >= g {
		cx = g - 1
	}
	if cy >= g {
		cy = g - 1
	}
	return cx, cy
}

// NumObjects returns the number of rectangles on the map.
func (db *DB) NumObjects() int { return db.nObjects }

// Extent returns the map's side length.
func (db *DB) Extent() float64 { return db.cfg.Extent }

// Cache exposes the buffer cache (for experiment setup).
func (db *DB) Cache() *buffercache.Cache { return db.cache }

// Store exposes the underlying page store.
func (db *DB) Store() *pagestore.Store { return db.store }

// object fetches one object record by ID through the buffer cache.
func (db *DB) object(id uint32, stats *ExecStats) (Object, error) {
	page := int(id) / db.objPerPage
	if page >= len(db.objPages) {
		return Object{}, fmt.Errorf("spatialdb: object %d out of range", id)
	}
	data, err := db.cache.Get(db.objPages[page])
	if err != nil {
		return Object{}, err
	}
	off := (int(id) % db.objPerPage) * objBytes
	stats.CPU++
	return Object{
		ID: binary.LittleEndian.Uint32(data[off:]),
		X:  float64(math.Float32frombits(binary.LittleEndian.Uint32(data[off+4:]))),
		Y:  float64(math.Float32frombits(binary.LittleEndian.Uint32(data[off+8:]))),
		W:  float64(math.Float32frombits(binary.LittleEndian.Uint32(data[off+12:]))),
		H:  float64(math.Float32frombits(binary.LittleEndian.Uint32(data[off+16:]))),
	}, nil
}

// cellIDs fetches the object IDs registered in grid cell (cx, cy).
func (db *DB) cellIDs(cx, cy int, stats *ExecStats) ([]uint32, error) {
	idx := cy*db.cfg.GridSize + cx
	n := int(db.cellCount[idx])
	out := make([]uint32, 0, n)
	stats.CPU++
	for _, pid := range db.grid[idx] {
		data, err := db.cache.Get(pid)
		if err != nil {
			return nil, err
		}
		take := db.idsPage
		if n-len(out) < take {
			take = n - len(out)
		}
		for i := 0; i < take; i++ {
			out = append(out, binary.LittleEndian.Uint32(data[i*4:]))
		}
	}
	return out, nil
}

// run wraps a query body with IO metering and wall-clock timing.
func (db *DB) run(body func(stats *ExecStats) error) (ExecStats, error) {
	var stats ExecStats
	meter := db.cache.NewMeter()
	start := time.Now()
	err := body(&stats)
	stats.Wall = time.Since(start)
	stats.IO = meter.Cost()
	return stats, err
}

// Window returns the objects intersecting the window with lower-left corner
// (wx, wy) and extents (ww, wh) — the paper's window-search UDF.
func (db *DB) Window(wx, wy, ww, wh float64) ([]Object, ExecStats, error) {
	var out []Object
	stats, err := db.run(func(stats *ExecStats) error {
		x0, y0 := db.cellOf(wx, wy)
		x1, y1 := db.cellOf(wx+ww, wy+wh)
		seen := make(map[uint32]bool)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				ids, err := db.cellIDs(cx, cy, stats)
				if err != nil {
					return err
				}
				for _, id := range ids {
					if seen[id] {
						continue
					}
					seen[id] = true
					o, err := db.object(id, stats)
					if err != nil {
						return err
					}
					if o.intersectsWindow(wx, wy, ww, wh) {
						out = append(out, o)
					}
				}
			}
		}
		return nil
	})
	return out, stats, err
}

// Range returns the objects within distance r of the point (x, y) — the
// paper's range-search UDF.
func (db *DB) Range(x, y, r float64) ([]Object, ExecStats, error) {
	var out []Object
	stats, err := db.run(func(stats *ExecStats) error {
		if r < 0 {
			return fmt.Errorf("spatialdb: negative range %g", r)
		}
		x0, y0 := db.cellOf(x-r, y-r)
		x1, y1 := db.cellOf(x+r, y+r)
		seen := make(map[uint32]bool)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				ids, err := db.cellIDs(cx, cy, stats)
				if err != nil {
					return err
				}
				for _, id := range ids {
					if seen[id] {
						continue
					}
					seen[id] = true
					o, err := db.object(id, stats)
					if err != nil {
						return err
					}
					if o.distTo(x, y) <= r {
						out = append(out, o)
					}
				}
			}
		}
		return nil
	})
	return out, stats, err
}

// knnItem is a max-heap entry so the farthest of the current k is on top.
type knnItem struct {
	obj  Object
	dist float64
}

type knnHeap []knnItem

func (h knnHeap) Len() int            { return len(h) }
func (h knnHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h knnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x interface{}) { *h = append(*h, x.(knnItem)) }
func (h *knnHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// KNN returns the k objects nearest to (x, y) by rectangle distance,
// searched via expanding rings of grid cells — the paper's K-nearest-
// neighbors UDF. Results are ordered nearest first.
func (db *DB) KNN(x, y float64, k int) ([]Object, ExecStats, error) {
	var out []Object
	stats, err := db.run(func(stats *ExecStats) error {
		if k < 1 {
			return fmt.Errorf("spatialdb: k must be >= 1, got %d", k)
		}
		if k > db.nObjects {
			k = db.nObjects
		}
		g := db.cfg.GridSize
		cw := db.cfg.Extent / float64(g)
		cx, cy := db.cellOf(x, y)
		var h knnHeap
		seen := make(map[uint32]bool)
		examine := func(gx, gy int) error {
			ids, err := db.cellIDs(gx, gy, stats)
			if err != nil {
				return err
			}
			for _, id := range ids {
				if seen[id] {
					continue
				}
				seen[id] = true
				o, err := db.object(id, stats)
				if err != nil {
					return err
				}
				d := o.distTo(x, y)
				if len(h) < k {
					heap.Push(&h, knnItem{obj: o, dist: d})
				} else if d < h[0].dist {
					h[0] = knnItem{obj: o, dist: d}
					heap.Fix(&h, 0)
				}
			}
			return nil
		}
		for ring := 0; ring < g; ring++ {
			// Once we hold k candidates, stop when no object in this
			// ring can beat the current k-th distance: the ring's
			// cells are at least (ring-1) cell-widths away.
			if len(h) == k && float64(ring-1)*cw > h[0].dist {
				break
			}
			visited := false
			for gy := cy - ring; gy <= cy+ring; gy++ {
				if gy < 0 || gy >= g {
					continue
				}
				for gx := cx - ring; gx <= cx+ring; gx++ {
					if gx < 0 || gx >= g {
						continue
					}
					// Ring perimeter only.
					if gx != cx-ring && gx != cx+ring && gy != cy-ring && gy != cy+ring {
						continue
					}
					visited = true
					if err := examine(gx, gy); err != nil {
						return err
					}
				}
			}
			if !visited && ring > 0 {
				break // expanded past the whole grid
			}
		}
		out = make([]Object, len(h))
		for i := len(h) - 1; i >= 0; i-- {
			out[i] = heap.Pop(&h).(knnItem).obj
		}
		return nil
	})
	return out, stats, err
}
