package spatialdb

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mlq/internal/geom"
)

// smallMap builds a compact map for fast tests and returns the raw objects
// reconstructed from disk for brute-force checking.
func smallMap(t *testing.T) (*DB, []Object) {
	t.Helper()
	db, err := Generate(Config{
		Extent:     200,
		NumObjects: 800,
		GridSize:   8,
		PageSize:   256,
		CachePages: 16,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]Object, db.NumObjects())
	var stats ExecStats
	for i := range objs {
		o, err := db.object(uint32(i), &stats)
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = o
	}
	db.Cache().Invalidate()
	return db, objs
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{NumObjects: -1}); err == nil {
		t.Error("negative NumObjects accepted")
	}
	if _, err := Generate(Config{Extent: -5}); err == nil {
		t.Error("negative Extent accepted")
	}
	if _, err := Generate(Config{PageSize: 4}); err == nil {
		t.Error("tiny page size accepted")
	}
}

func TestObjectRoundTrip(t *testing.T) {
	db, objs := smallMap(t)
	if db.NumObjects() != 800 || len(objs) != 800 {
		t.Fatalf("NumObjects = %d", db.NumObjects())
	}
	for i, o := range objs {
		if o.ID != uint32(i) {
			t.Fatalf("object %d has ID %d", i, o.ID)
		}
		if o.X < 0 || o.Y < 0 || o.X+o.W > 200+1e-3 || o.Y+o.H > 200+1e-3 {
			t.Fatalf("object %d escapes the map: %+v", i, o)
		}
		if o.W < 0.5 || o.H < 0.5 {
			t.Fatalf("object %d degenerate: %+v", i, o)
		}
	}
	var stats ExecStats
	if _, err := db.object(100000, &stats); err == nil {
		t.Error("out-of-range object fetch accepted")
	}
}

func TestObjectDistTo(t *testing.T) {
	o := Object{X: 10, Y: 10, W: 4, H: 2}
	cases := []struct {
		x, y, want float64
	}{
		{12, 11, 0}, // inside
		{10, 10, 0}, // corner
		{8, 11, 2},  // left
		{17, 11, 3}, // right
		{12, 15, 3}, // above
		{7, 6, 5},   // diagonal: 3-4-5
		{17, 16, 5}, // opposite diagonal
		{12, 12, 0}, // top edge
	}
	for _, c := range cases {
		if got := o.distTo(c.x, c.y); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("distTo(%g,%g) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
}

func TestWindowMatchesBruteForce(t *testing.T) {
	db, objs := smallMap(t)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		wx := rng.Float64() * 180
		wy := rng.Float64() * 180
		ww := 1 + rng.Float64()*40
		wh := 1 + rng.Float64()*40
		got, stats, err := db.Window(wx, wy, ww, wh)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, o := range objs {
			if o.intersectsWindow(wx, wy, ww, wh) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: window found %d, brute force %d", trial, len(got), want)
		}
		if stats.CPU <= 0 {
			t.Error("no CPU work recorded")
		}
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	db, objs := smallMap(t)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		x := rng.Float64() * 200
		y := rng.Float64() * 200
		r := rng.Float64() * 30
		got, _, err := db.Range(x, y, r)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, o := range objs {
			if o.distTo(x, y) <= r {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: range found %d, brute force %d", trial, len(got), want)
		}
	}
	if _, _, err := db.Range(10, 10, -1); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	db, objs := smallMap(t)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		x := rng.Float64() * 200
		y := rng.Float64() * 200
		k := 1 + rng.Intn(20)
		got, _, err := db.KNN(x, y, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("trial %d: KNN returned %d of %d", trial, len(got), k)
		}
		dists := make([]float64, len(objs))
		for i, o := range objs {
			dists[i] = o.distTo(x, y)
		}
		sort.Float64s(dists)
		kth := dists[k-1]
		for i, o := range got {
			d := o.distTo(x, y)
			if d > kth+1e-9 {
				t.Fatalf("trial %d: result %d at distance %g beyond k-th %g", trial, i, d, kth)
			}
			if i > 0 && d < got[i-1].distTo(x, y)-1e-9 {
				t.Fatalf("trial %d: results not ordered nearest-first", trial)
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	db, _ := smallMap(t)
	if _, _, err := db.KNN(10, 10, 0); err == nil {
		t.Error("k=0 accepted")
	}
	// k larger than the dataset returns everything.
	got, _, err := db.KNN(10, 10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != db.NumObjects() {
		t.Errorf("k > N returned %d of %d", len(got), db.NumObjects())
	}
}

func TestKNNCostGrowsWithK(t *testing.T) {
	db, _ := smallMap(t)
	_, small, _ := db.KNN(100, 100, 1)
	_, large, _ := db.KNN(100, 100, 200)
	if large.CPU <= small.CPU {
		t.Errorf("CPU(k=200)=%g not above CPU(k=1)=%g", large.CPU, small.CPU)
	}
}

func TestWindowCostGrowsWithArea(t *testing.T) {
	db, _ := smallMap(t)
	_, small, _ := db.Window(50, 50, 5, 5)
	_, large, _ := db.Window(10, 10, 150, 150)
	if large.CPU <= small.CPU {
		t.Errorf("CPU(large window)=%g not above CPU(small)=%g", large.CPU, small.CPU)
	}
}

func TestClusteringCreatesCostSkew(t *testing.T) {
	// Cost at a cluster center must exceed cost in empty space for the
	// same window: the skew the cost model has to learn.
	db, objs := smallMap(t)
	// Find the densest and the emptiest 20x20 neighborhoods by brute force.
	density := func(x, y float64) int {
		n := 0
		for _, o := range objs {
			if o.intersectsWindow(x-10, y-10, 20, 20) {
				n++
			}
		}
		return n
	}
	bestX, bestY, bestN := 0.0, 0.0, -1
	worstX, worstY, worstN := 0.0, 0.0, 1<<30
	for x := 10.0; x < 200; x += 10 {
		for y := 10.0; y < 200; y += 10 {
			n := density(x, y)
			if n > bestN {
				bestX, bestY, bestN = x, y, n
			}
			if n < worstN {
				worstX, worstY, worstN = x, y, n
			}
		}
	}
	_, dense, _ := db.Window(bestX-10, bestY-10, 20, 20)
	_, sparse, _ := db.Window(worstX-10, worstY-10, 20, 20)
	if dense.CPU <= sparse.CPU {
		t.Errorf("dense-region CPU %g not above sparse-region CPU %g", dense.CPU, sparse.CPU)
	}
}

func TestSpatialUDFAdapters(t *testing.T) {
	db, _ := smallMap(t)
	udfs := db.UDFs()
	names := []string{"KNN", "WIN", "RANGE"}
	if len(udfs) != 3 {
		t.Fatalf("got %d UDFs", len(udfs))
	}
	rng := rand.New(rand.NewSource(5))
	for i, u := range udfs {
		if u.Name() != names[i] {
			t.Errorf("UDF %d name %q, want %q", i, u.Name(), names[i])
		}
		region := u.Region()
		if region.Dims() != 3 {
			t.Errorf("%s model space has %d dims, want 3", u.Name(), region.Dims())
		}
		for q := 0; q < 15; q++ {
			p := make(geom.Point, 3)
			for j := range p {
				p[j] = region.Lo[j] + rng.Float64()*(region.Hi[j]-region.Lo[j])
			}
			cpu, io, err := u.Execute(p)
			if err != nil {
				t.Fatalf("%s: execution failed: %v", u.Name(), err)
			}
			if cpu <= 0 || io < 0 {
				t.Fatalf("%s: suspicious costs (%g, %g) at %v", u.Name(), cpu, io, p)
			}
		}
	}
}

func TestIOCostNoise(t *testing.T) {
	// Same query repeated: first run cold, second warm -> different IO,
	// identical CPU. This is the paper's disk-cost noise.
	db, _ := smallMap(t)
	db.Cache().Invalidate()
	_, cold, _ := db.Window(95, 95, 10, 10)
	_, warm, _ := db.Window(95, 95, 10, 10)
	if cold.IO == 0 {
		t.Fatal("cold query did no IO")
	}
	if warm.IO >= cold.IO {
		t.Errorf("warm IO %g not below cold %g", warm.IO, cold.IO)
	}
	if cold.CPU != warm.CPU {
		t.Errorf("CPU not deterministic: %g vs %g", cold.CPU, warm.CPU)
	}
}
