package spatialdb

import (
	"fmt"
	"math"

	"mlq/internal/geom"
	"mlq/internal/udf"
)

// This file adapts the three spatial searches to the udf.UDF interface.
// Their model variables are the natural query arguments:
//
//	KNN    (x, y, k)      — query location and neighbor count
//	WIN    (x, y, area)   — window center and window area (square window)
//	RANGE  (x, y, r)      — circle center and radius
//
// Because the map is clustered, cost varies strongly with (x, y): queries in
// dense clusters examine many more objects than queries in empty space —
// the spatial skew that separates the cost-modeling methods in Fig. 9.

// modelSpace returns the model-variable rectangle [(0,0,1) .. (e,e,last)).
// It is valid by construction — the extent and the last upper bound are
// clamped above their lower bounds — so, unlike geom.NewRect, no error path
// exists and Region (which cannot return an error) may call it directly.
// Degenerate configurations (a sub-unit extent) get a clamped-but-valid
// region instead of the panic they used to get.
func modelSpace(e, last float64) geom.Rect {
	if e < 1 {
		e = 1
	}
	if last <= 1 {
		last = 2
	}
	return geom.Rect{Lo: geom.Point{0, 0, 1}, Hi: geom.Point{e, e, last}}
}

// knnUDF is the paper's K-nearest-neighbors UDF.
type knnUDF struct{ db *DB }

func (u knnUDF) Name() string { return "KNN" }

func (u knnUDF) Region() geom.Rect {
	return modelSpace(u.db.Extent(), 64)
}

func (u knnUDF) Execute(p geom.Point) (cpu, io float64, err error) {
	// The index is self-generated, so errors only surface when the page
	// store underneath fails (torn page, injected fault). They are wrapped,
	// not panicked: a failed page read is a failed UDF execution, never a
	// process crash.
	k := int(p[2])
	if k < 1 {
		k = 1
	}
	_, stats, err := u.db.KNN(p[0], p[1], k)
	if err != nil {
		return 0, 0, fmt.Errorf("spatialdb: KNN at %v: %w", p, err)
	}
	if err := udf.CheckCosts(stats.CPU, stats.IO); err != nil {
		return 0, 0, fmt.Errorf("spatialdb: KNN at %v: %w", p, err)
	}
	return stats.CPU, stats.IO, nil
}

// winUDF is the paper's window-search UDF.
type winUDF struct{ db *DB }

func (u winUDF) Name() string { return "WIN" }

func (u winUDF) Region() geom.Rect {
	e := u.db.Extent()
	return modelSpace(e, (e/4)*(e/4))
}

func (u winUDF) Execute(p geom.Point) (cpu, io float64, err error) {
	side := math.Sqrt(p[2])
	_, stats, err := u.db.Window(p[0]-side/2, p[1]-side/2, side, side)
	if err != nil {
		return 0, 0, fmt.Errorf("spatialdb: WIN at %v: %w", p, err)
	}
	if err := udf.CheckCosts(stats.CPU, stats.IO); err != nil {
		return 0, 0, fmt.Errorf("spatialdb: WIN at %v: %w", p, err)
	}
	return stats.CPU, stats.IO, nil
}

// rangeUDF is the paper's range-search UDF.
type rangeUDF struct{ db *DB }

func (u rangeUDF) Name() string { return "RANGE" }

func (u rangeUDF) Region() geom.Rect {
	e := u.db.Extent()
	return modelSpace(e, e/8)
}

func (u rangeUDF) Execute(p geom.Point) (cpu, io float64, err error) {
	_, stats, err := u.db.Range(p[0], p[1], p[2])
	if err != nil {
		return 0, 0, fmt.Errorf("spatialdb: RANGE at %v: %w", p, err)
	}
	if err := udf.CheckCosts(stats.CPU, stats.IO); err != nil {
		return 0, 0, fmt.Errorf("spatialdb: RANGE at %v: %w", p, err)
	}
	return stats.CPU, stats.IO, nil
}

// UDFs returns the three spatial UDFs bound to this database, in the
// paper's order: KNN, WIN, RANGE.
func (db *DB) UDFs() []udf.UDF {
	return []udf.UDF{knnUDF{db}, winUDF{db}, rangeUDF{db}}
}
