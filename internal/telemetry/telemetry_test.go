package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("mlq_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-3) // negative ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	c.Store(42)
	if got := c.Value(); got != 42 {
		t.Errorf("after Store, Value = %d, want 42", got)
	}
	// Same name+labels returns the same series.
	if c2 := r.Counter("mlq_test_ops_total", "ops"); c2.Value() != 42 {
		t.Errorf("re-registered counter = %d, want 42", c2.Value())
	}
}

func TestGaugeBasics(t *testing.T) {
	r := New()
	g := r.Gauge("mlq_test_depth", "depth")
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2.0 {
		t.Errorf("Value = %g, want 2", got)
	}
	g.SetInt(7)
	if got := g.Value(); got != 7.0 {
		t.Errorf("after SetInt, Value = %g, want 7", got)
	}
}

func TestNilSafety(t *testing.T) {
	// Every metric type handed out by a nil registry must be a no-op, and
	// so must direct nil receivers — this is the disabled-telemetry fast
	// path instrumented code relies on.
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "").Observe(1)
	r.GaugeFunc("d", "", func() float64 { return 1 })
	r.CounterFunc("e", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}

	var c *Counter
	c.Inc()
	c.Add(1)
	c.Store(1)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram has state")
	}
	var tr *Tracer
	sp := tr.Start("x")
	sp.End()
	tr.ObserveSpan("y", 1)
	tr.Event("z")
	var et *ErrorTracker
	et.Observe(1, 2)
}

func TestLabelCanonicalization(t *testing.T) {
	r := New()
	a := r.Counter("mlq_test_total", "", L("b", "2"), L("a", "1"))
	b := r.Counter("mlq_test_total", "", L("a", "1"), L("b", "2"))
	a.Inc()
	if b.Value() != 1 {
		t.Error("label order created distinct series")
	}
	// Empty keys are dropped.
	c := r.Counter("mlq_test_total", "", L("", "x"), L("a", "1"), L("b", "2"))
	if c.Value() != 1 {
		t.Error("empty label key created a distinct series")
	}
}

func TestKindConflict(t *testing.T) {
	r := New()
	r.Counter("mlq_test_taken", "a counter")
	g := r.Gauge("mlq_test_taken", "now a gauge?") // conflicting kind
	g.Set(9)                                       // detached but usable
	if g.Value() != 9 {
		t.Error("detached gauge unusable")
	}
	if got := r.conflicts.Load(); got != 1 {
		t.Errorf("conflicts = %d, want 1", got)
	}
	// The conflict counter is itself exposed.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mlq_telemetry_conflicts_total 1") {
		t.Errorf("conflict counter not exposed:\n%s", b.String())
	}
	// The detached series must not appear in the exposition.
	if strings.Contains(b.String(), "mlq_test_taken 9") {
		t.Error("detached metric leaked into exposition")
	}
}

func TestFuncReplacement(t *testing.T) {
	r := New()
	r.GaugeFunc("mlq_test_live", "", func() float64 { return 1 })
	r.GaugeFunc("mlq_test_live", "", func() float64 { return 2 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mlq_test_live 2") {
		t.Errorf("latest GaugeFunc generation not live:\n%s", b.String())
	}
}

func TestGaugeFuncVsGaugeConflict(t *testing.T) {
	r := New()
	r.Gauge("mlq_test_g", "")
	r.GaugeFunc("mlq_test_g", "", func() float64 { return 1 }) // fn vs value-backed
	if got := r.conflicts.Load(); got != 1 {
		t.Errorf("conflicts = %d, want 1", got)
	}
}

func TestErrorTracker(t *testing.T) {
	r := New()
	et := NewErrorTracker(r, L("model", "MLQ-E"))
	et.Observe(8, 10)  // err 2, |actual| 10
	et.Observe(11, 10) // err 1, |actual| 10
	et.Observe(math.NaN(), 10)
	et.Observe(1, math.Inf(1))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `mlq_model_nae{model="MLQ-E"} 0.15`) {
		t.Errorf("NAE gauge wrong:\n%s", out)
	}
	if !strings.Contains(out, `mlq_model_samples_total{model="MLQ-E"} 2`) {
		t.Errorf("sample counter wrong:\n%s", out)
	}
}
