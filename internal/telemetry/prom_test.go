package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden exposition file")

// goldenRegistry builds a registry with one metric of every shape —
// unlabeled, labeled, escaped, func-backed, histogram — with fixed values,
// so the rendered exposition is byte-stable.
func goldenRegistry() *Registry {
	r := New()
	r.Counter("mlq_quadtree_inserts_total", "data points inserted", L("model", "WIN")).Store(128)
	r.Counter("mlq_quadtree_inserts_total", "data points inserted", L("model", "SIMPLE")).Store(64)
	g := r.Gauge("mlq_quadtree_memory_utilization", "memory used / memory limit", L("model", "WIN"))
	g.Set(0.75)
	r.Gauge("mlq_engine_breaker_open", "breaker state").Set(1)
	// A label value exercising every escape: backslash, quote, newline.
	r.Counter("mlq_engine_evaluations_total", "UDF executions",
		L("udf", "we\\ird\"name\nhere")).Store(3)
	r.GaugeFunc("mlq_model_nae", "rolling NAE", func() float64 { return 0.125 }, L("model", "MLQ-E"))
	h := r.Histogram("mlq_trace_span_seconds", "stage durations", L("span", "compress"))
	for _, v := range []float64{0.001, 0.001, 0.004, 0.25, 1e12} { // 1e12 overflows
		h.Observe(v)
	}
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("exposition drifted from golden (re-run with -update if intended)\ngot:\n%s\nwant:\n%s", b.Bytes(), want)
	}
}

func TestPrometheusDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	r := goldenRegistry()
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of an unchanged registry differ")
	}
}

// TestHistogramCumulativity parses the rendered _bucket series and checks the
// text-format invariants: le values strictly increasing, cumulative counts
// non-decreasing, and the +Inf bucket equal to _count.
func TestHistogramCumulativity(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var les []float64
	var cums []int64
	var count int64 = -1
	sc := bufio.NewScanner(&b)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "mlq_trace_span_seconds_bucket"):
			le := line[strings.Index(line, `le="`)+4:]
			le = le[:strings.Index(le, `"`)]
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			if le == "+Inf" {
				les = append(les, positiveInf())
			} else {
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("parsing le %q: %v", le, err)
				}
				les = append(les, f)
			}
			cums = append(cums, v)
		case strings.HasPrefix(line, "mlq_trace_span_seconds_count"):
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			count = v
		}
	}
	if len(cums) < 2 {
		t.Fatalf("expected multiple buckets, got %d", len(cums))
	}
	for i := 1; i < len(cums); i++ {
		if les[i] <= les[i-1] {
			t.Errorf("le not increasing at %d: %v", i, les)
		}
		if cums[i] < cums[i-1] {
			t.Errorf("cumulative count decreased at %d: %v", i, cums)
		}
	}
	if count != 5 {
		t.Errorf("_count = %d, want 5", count)
	}
	if cums[len(cums)-1] != count {
		t.Errorf("+Inf bucket %d != _count %d", cums[len(cums)-1], count)
	}
}

func positiveInf() float64 {
	inf, _ := strconv.ParseFloat("+Inf", 64)
	return inf
}

// TestJSONGolden pins the full /metrics.json shape byte-for-byte, including
// the _meta scrape header: the timestamp comes from an injected FakeClock and
// the publisher epoch is the max across the mlq_publisher_epoch series.
func TestJSONGolden(t *testing.T) {
	r := goldenRegistry()
	fc := &FakeClock{}
	fc.Set(time.Unix(1700000000, 0))
	r.SetClock(fc)
	r.Gauge("mlq_publisher_epoch", "generation number", L("udf", "WIN")).Set(7)
	r.Gauge("mlq_publisher_epoch", "generation number", L("udf", "COVER")).Set(3)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("JSON exposition drifted from golden (re-run with -update if intended)\ngot:\n%s\nwant:\n%s", b.Bytes(), want)
	}
}

// TestJSONMeta checks the _meta semantics directly: the scrape timestamp
// tracks the registry clock, and the epoch is 0 when no publisher series
// exists.
func TestJSONMeta(t *testing.T) {
	r := New()
	fc := &FakeClock{}
	fc.Set(time.Unix(42, 0))
	r.SetClock(fc)
	decode := func() map[string]any {
		t.Helper()
		var b bytes.Buffer
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if err := json.Unmarshal(b.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		meta, ok := out["_meta"].(map[string]any)
		if !ok {
			t.Fatalf("no _meta object:\n%s", b.String())
		}
		return meta
	}
	meta := decode()
	if got := int64(meta["scraped_at_unix_nano"].(float64)); got != time.Unix(42, 0).UnixNano() {
		t.Errorf("scraped_at_unix_nano = %d, want %d", got, time.Unix(42, 0).UnixNano())
	}
	if got := meta["publisher_epoch"].(float64); got != 0 {
		t.Errorf("publisher_epoch = %g, want 0 with no publisher series", got)
	}
	fc.Advance(time.Second)
	r.Gauge("mlq_publisher_epoch", "generation number", L("udf", "a")).Set(12)
	meta = decode()
	if got := int64(meta["scraped_at_unix_nano"].(float64)); got != time.Unix(43, 0).UnixNano() {
		t.Errorf("scraped_at_unix_nano = %d after Advance, want %d", got, time.Unix(43, 0).UnixNano())
	}
	if got := meta["publisher_epoch"].(float64); got != 12 {
		t.Errorf("publisher_epoch = %g, want 12", got)
	}
}

func TestJSONExposition(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("JSON exposition does not parse: %v\n%s", err, b.String())
	}
	if v, ok := out[`mlq_quadtree_inserts_total{model="WIN"}`]; !ok || v.(float64) != 128 {
		t.Errorf("counter series missing or wrong: %v", v)
	}
	hv, ok := out[`mlq_trace_span_seconds{span="compress"}`]
	if !ok {
		t.Fatalf("histogram series missing:\n%s", b.String())
	}
	hist := hv.(map[string]any)
	if hist["count"].(float64) != 5 {
		t.Errorf("histogram count = %v, want 5", hist["count"])
	}
	// NaN/Inf scalars render as strings.
	r := New()
	r.Gauge("mlq_test_bad", "").Set(positiveInf())
	b.Reset()
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"mlq_test_bad": "+Inf"`) {
		t.Errorf("non-finite scalar not stringified:\n%s", b.String())
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:   "0",
		1.5: "1.5",
		-2:  "-2",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(positiveInf()); got != "+Inf" {
		t.Errorf("formatValue(+Inf) = %q", got)
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := escapeLabel("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("escapeLabel = %q", got)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := goldenRegistry()
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := r.WritePrometheus(&buf); err != nil {
			b.Fatal(err)
		}
	}
	_ = fmt.Sprint(buf.Len())
}
