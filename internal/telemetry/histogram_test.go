package telemetry

import (
	"math"
	"testing"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-3, 0},                     // negative clamps to the first bucket
		{upperBound(0), 0},          // 2^-30: closed upper bound of bucket 0
		{upperBound(0) * 1.0001, 1}, // just above it
		{1, 30 - 0},                 // 2^0: i with i+bucketMinExp == 0 → i = 30
		{1.5, 31},                   // (2^0, 2^1]
		{2, 31},                     // 2^1 exactly: closed upper bound
		{upperBound(numBuckets - 1), numBuckets - 1},
		{upperBound(numBuckets-1) * 2, numBuckets}, // overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's upper bound must land in its own bucket (closed bound).
	for i := 0; i < numBuckets; i++ {
		if got := bucketIndex(upperBound(i)); got != i {
			t.Errorf("bucketIndex(upperBound(%d)) = %d", i, got)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0.5, 1, 2, 4} {
		h.Observe(v)
	}
	h.Observe(math.NaN())   // dropped
	h.Observe(math.Inf(1))  // dropped
	h.Observe(math.Inf(-1)) // dropped
	if got := h.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	if got := h.Sum(); got != 7.5 {
		t.Errorf("Sum = %g, want 7.5", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(1) // all in the bucket with upper bound 1
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %g, want 1 (bucket upper bound)", got)
	}
	h.Observe(1e12) // way past the largest bound → overflow
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("p100 with overflow = %g, want +Inf", got)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 after one overflow = %g, want 1", got)
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	var h Histogram
	h.Observe(3)
	if h.Quantile(-1) != h.Quantile(0) {
		t.Error("p<0 not clamped")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Error("p>1 not clamped")
	}
}
