package telemetry

import (
	"math"
	"sync/atomic"
)

// Histogram bucket layout: numBuckets power-of-two buckets. Bucket i holds
// observations v with upperBound(i-1) < v <= upperBound(i), where
// upperBound(i) = 2^(i+bucketMinExp). Observations at or below the smallest
// bound land in bucket 0; observations above the largest bound land in the
// overflow bucket (rendered under le="+Inf" together with the total count).
//
// The span 2^-30 (~1 ns when observing seconds, ~1e-9 when observing
// unitless errors) to 2^+33 (~8.6e9) covers every signal this repository
// records with ~2x resolution, which is plenty for p95-style tail gauges.
const (
	numBuckets   = 64
	bucketMinExp = -30
)

// Histogram is a fixed-layout log-bucketed histogram. The zero value is
// usable; all methods are atomic and nil-safe. Quantiles are approximate:
// a quantile resolves to the upper bound of the bucket containing it, so the
// relative error is bounded by the 2x bucket width.
type Histogram struct {
	buckets  [numBuckets]atomic.Int64
	overflow atomic.Int64
	count    atomic.Int64
	sumBits  atomic.Uint64 // float64 bits, CAS-updated
}

// bucketIndex maps an observation to its bucket, or numBuckets for overflow.
func bucketIndex(v float64) int {
	if v <= upperBound(0) {
		return 0
	}
	// frexp: v = frac * 2^exp with frac in [0.5, 1) — so 2^(exp-1) < v <= 2^exp
	// for every non-power-of-two v, and v == 2^(exp-1) exactly otherwise.
	frac, exp := math.Frexp(v)
	//lint:ignore floatguard frexp returns exactly 0.5 for powers of two; the comparison routes them to the closed upper bound
	if frac == 0.5 {
		exp--
	}
	i := exp - bucketMinExp
	if i < 0 {
		return 0
	}
	if i >= numBuckets {
		return numBuckets
	}
	return i
}

// upperBound returns bucket i's inclusive upper bound 2^(i+bucketMinExp).
func upperBound(i int) float64 {
	return math.Ldexp(1, i+bucketMinExp)
}

// Observe records one value. NaN and Inf observations are dropped — the
// registry must never become the component that propagates a poisoned float.
// Negative values count toward the first bucket (log buckets have no
// negative range; the signals recorded here are durations and magnitudes).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if i := bucketIndex(v); i == numBuckets {
		h.overflow.Add(1)
	} else {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return bitsFloat(h.sumBits.Load())
}

// Quantile returns an approximation of the p-quantile (p in [0, 1]) of the
// observed values: the upper bound of the bucket the quantile falls in, or 0
// before any observation. Overflowed observations resolve to +Inf— callers
// exposing a tail gauge get an honest "off the scale" instead of a clamp.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return upperBound(i)
		}
	}
	return math.Inf(1)
}

// snapshot returns a consistent-enough copy for rendering: per-bucket
// counts, overflow, count and sum. Concurrent observers may land between the
// loads; exposition tolerates that (cumulative buckets are rendered from the
// same snapshot, so they are internally monotone).
func (h *Histogram) snapshot() (buckets [numBuckets]int64, overflow, count int64, sum float64) {
	if h == nil {
		return
	}
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	overflow = h.overflow.Load()
	sum = bitsFloat(h.sumBits.Load())
	// Derive the rendered total from the same bucket loads so that
	// sum(buckets)+overflow == count always holds within one exposition.
	count = overflow
	for _, b := range buckets {
		count += b
	}
	return buckets, overflow, count, sum
}

// floatBits and bitsFloat convert float64 values to the uint64 payload the
// atomic fields store.
func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
