package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer records the stages of the Figure-1 feedback loop — plan, predict,
// execute, observe, compress — as spans. Every finished span feeds a
// per-stage duration histogram (mlq_trace_span_seconds{span=...}) in the
// registry and, when a sink is configured, one JSONL line, so a chaos run
// produces a machine-readable timeline next to its human-readable tables.
//
// A nil *Tracer is fully inert: Start returns an inert Span, End and Event
// are no-ops. Tracer is safe for concurrent use.
type Tracer struct {
	clock Clock
	reg   *Registry

	mu   sync.Mutex
	sink io.Writer
	seq  int64
}

// NewTracer builds a tracer over the given registry (may be nil — spans then
// only reach the sink), clock (nil means the wall clock) and JSONL sink (may
// be nil — spans then only reach the registry histograms).
func NewTracer(reg *Registry, clock Clock, sink io.Writer) *Tracer {
	if clock == nil {
		clock = Wall
	}
	return &Tracer{clock: clock, reg: reg, sink: sink}
}

// Span is one in-flight traced stage. The zero value (from a nil tracer) is
// inert.
type Span struct {
	tr     *Tracer
	name   string
	labels []Label
	start  time.Time
}

// Start opens a span. Labels identify the subject (e.g. predicate="WIN").
func (t *Tracer) Start(name string, labels ...Label) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, labels: labels, start: t.clock.Now()}
}

// End closes the span, records its duration histogram and emits its JSONL
// line.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	s.tr.record(s.name, s.start, s.tr.clock.Now().Sub(s.start), s.labels)
}

// ObserveSpan records a stage whose duration was measured externally (e.g.
// the quadtree's compression stopwatch): the span is stamped as ending now.
func (t *Tracer) ObserveSpan(name string, d time.Duration, labels ...Label) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.record(name, t.clock.Now().Add(-d), d, labels)
}

// Event records an instantaneous point event (e.g. a breaker trip or a
// catalog save): a zero-duration JSONL line plus a counter
// mlq_trace_events_total{event=...}.
func (t *Tracer) Event(name string, labels ...Label) {
	if t == nil {
		return
	}
	t.reg.Counter("mlq_trace_events_total",
		"instantaneous trace events by name", append([]Label{{Key: "event", Value: name}}, labels...)...).Inc()
	t.emit(traceLine{Kind: "event", Name: name, StartUS: t.clock.Now().UnixMicro(), Labels: labelMap(labels)})
}

// record is the shared span completion path.
func (t *Tracer) record(name string, start time.Time, d time.Duration, labels []Label) {
	t.reg.Histogram("mlq_trace_span_seconds",
		"feedback-loop stage durations in seconds",
		append([]Label{{Key: "span", Value: name}}, labels...)...).Observe(d.Seconds())
	dur := d.Microseconds()
	t.emit(traceLine{Kind: "span", Name: name, StartUS: start.UnixMicro(), DurUS: &dur, Labels: labelMap(labels)})
}

// traceLine is one JSONL record. Field order is fixed by the struct; the
// Labels map is rendered with sorted keys by encoding/json — the whole line
// is deterministic under a FakeClock.
type traceLine struct {
	Seq     int64             `json:"seq"`
	Kind    string            `json:"kind"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   *int64            `json:"dur_us,omitempty"`
	Labels  map[string]string `json:"labels,omitempty"`
}

// emit serializes one line to the sink under the tracer lock; sequence
// numbers are assigned inside it so lines land in the file in seq order.
func (t *Tracer) emit(line traceLine) {
	if t.sink == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	line.Seq = t.seq
	b, err := json.Marshal(line)
	if err != nil {
		return // a label value that cannot marshal must not kill the run
	}
	b = append(b, '\n')
	_, _ = t.sink.Write(b) // sink errors must not propagate into the feedback loop
}

// labelMap converts labels for JSONL rendering; nil for none.
func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}
