package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// signature, label values escaped, histograms rendered with cumulative
// buckets plus _sum and _count. The ordering is deterministic so the output
// can be golden-tested and diffed between scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if err := writeFamily(w, f, f.sortedSeries(r)); err != nil {
			return err
		}
	}
	return nil
}

// writeFamily renders one family's HELP/TYPE header and every series.
func writeFamily(w io.Writer, f *family, views []seriesView) error {
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, v := range views {
		var err error
		if f.kind == kindHistogram {
			err = writeHistogram(w, f.name, v)
		} else {
			_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(v.labels, nil), formatValue(v.value()))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative non-empty buckets,
// the +Inf bucket, _sum and _count.
func writeHistogram(w io.Writer, name string, v seriesView) error {
	buckets, _, count, sum := v.hist.snapshot()
	var cum int64
	for i, b := range buckets {
		if b == 0 {
			continue
		}
		cum += b
		le := Label{Key: "le", Value: formatValue(upperBound(i))}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(v.labels, &le), cum); err != nil {
			return err
		}
	}
	le := Label{Key: "le", Value: "+Inf"}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(v.labels, &le), count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(v.labels, nil), formatValue(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(v.labels, nil), count)
	return err
}

// promLabels renders {k="v",...}, appending extra (the histogram le label)
// last, or an empty string for an unlabeled series.
func promLabels(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extra.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text format: backslash, double
// quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes HELP text: backslash and newline only.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value: shortest round-trip float, with the
// text format's spellings for the non-finite values.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
