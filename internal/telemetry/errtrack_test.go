package telemetry

import (
	"math"
	"testing"
)

// TestErrorTrackerRejectsNonFinite pins the poisoning boundary: no NaN or
// Inf on either side of a pair may reach any of the tracker's series — not
// the NAE accumulators, not the histogram, not the sample counter. The
// overflow case (finite inputs whose difference is +Inf) must be dropped too.
func TestErrorTrackerRejectsNonFinite(t *testing.T) {
	r := New()
	et := NewErrorTracker(r, L("model", "bound"))
	pairs := [][2]float64{
		{math.NaN(), 10},
		{10, math.NaN()},
		{math.Inf(1), 10},
		{10, math.Inf(-1)},
		{math.MaxFloat64, -math.MaxFloat64}, // finite inputs, |diff| overflows to +Inf
	}
	for _, p := range pairs {
		et.Observe(p[0], p[1])
	}
	if got := et.samples.Value(); got != 0 {
		t.Errorf("samples = %d after only invalid pairs, want 0", got)
	}
	if got := et.hist.Count(); got != 0 {
		t.Errorf("histogram count = %d, want 0", got)
	}
	if got := et.absErr.Value(); got != 0 {
		t.Errorf("abs error sum = %g, want 0", got)
	}
	if got := et.absActual.Value(); got != 0 {
		t.Errorf("abs actual sum = %g, want 0", got)
	}
}

// TestErrorTrackerSingleSampleP95 pins the one-observation quantile: every
// quantile of a single sample is that sample's bucket bound — finite, at
// least the error itself, and identical across p.
func TestErrorTrackerSingleSampleP95(t *testing.T) {
	r := New()
	et := NewErrorTracker(r, L("model", "single"))
	et.Observe(13, 10) // err 3, bucket (2, 4]
	p95 := et.hist.Quantile(0.95)
	if p95 != 4 {
		t.Errorf("single-sample p95 = %g, want bucket upper bound 4", p95)
	}
	if p50 := et.hist.Quantile(0.50); p50 != p95 {
		t.Errorf("single-sample p50 = %g != p95 = %g", p50, p95)
	}
	if p0 := et.hist.Quantile(0); p0 != p95 {
		t.Errorf("single-sample p0 = %g != p95 = %g (rank must clamp to 1)", p0, p95)
	}
}

// TestErrorTrackerBoundaryError pins the closed-upper-bound convention: an
// error landing exactly on a power of two belongs to the bucket it bounds,
// so the quantile reports that exact value, not the next bucket's bound.
func TestErrorTrackerBoundaryError(t *testing.T) {
	r := New()
	et := NewErrorTracker(r, L("model", "edge"))
	et.Observe(14, 10) // err exactly 4 = 2^2
	if got := et.hist.Quantile(1); got != 4 {
		t.Errorf("quantile of boundary error 4 = %g, want 4 (closed upper bound)", got)
	}
}

// TestErrorTrackerExactlyFullRank pins the rank arithmetic when the quantile
// rank lands exactly on a bucket's cumulative count: 19 of 20 samples in the
// low bucket means ceil(0.95*20) = 19 resolves to the low bucket — the one
// outlier must not drag p95 up — while p=1 (rank exactly total) reaches it.
func TestErrorTrackerExactlyFullRank(t *testing.T) {
	r := New()
	et := NewErrorTracker(r, L("model", "full"))
	for i := 0; i < 19; i++ {
		et.Observe(11, 10) // err 1
	}
	et.Observe(1010, 10) // err 1000, far bucket
	if got := et.hist.Quantile(0.95); got != 1 {
		t.Errorf("p95 = %g with rank exactly on the full low bucket, want 1", got)
	}
	if got := et.hist.Quantile(1); got != upperBound(bucketIndex(1000)) {
		t.Errorf("p100 = %g, want the outlier's bucket bound %g", got, upperBound(bucketIndex(1000)))
	}
	if got := et.samples.Value(); got != 20 {
		t.Errorf("samples = %d, want 20", got)
	}
}

// TestErrorTrackerNilSafe: the nil tracker is the disabled-telemetry path
// and must absorb observations silently.
func TestErrorTrackerNilSafe(t *testing.T) {
	var et *ErrorTracker
	et.Observe(1, 2) // must not panic
	if et := NewErrorTracker(nil); et != nil {
		t.Errorf("NewErrorTracker(nil) = %v, want nil", et)
	}
}
