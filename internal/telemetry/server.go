package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the exposition mux:
//
//	/metrics       Prometheus text format
//	/metrics.json  expvar-style JSON
//	/debug/pprof/  the standard runtime profiles
//
// Mount it on any server, or use Serve for the common case.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A client hanging up mid-scrape surfaces here; there is no one
		// to report it to and the next scrape starts fresh.
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a live exposition endpoint started with Serve.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Serve starts the exposition server on addr (e.g. "localhost:9090";
// ":0" picks a free port — read it back from Addr). The server runs until
// Close.
func Serve(addr string, r *Registry) (*Server, error) {
	if r == nil {
		return nil, fmt.Errorf("telemetry: registry is required")
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// Serve returns ErrServerClosed on Close; any earlier error just
		// ends exposition — the instrumented run itself must not die with it.
		_ = srv.Serve(lis)
	}()
	return &Server{lis: lis, srv: srv}, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:9090".
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// URL returns the scrape URL, e.g. "http://127.0.0.1:9090/metrics".
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr() + "/metrics"
}

// Close stops the server immediately.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
