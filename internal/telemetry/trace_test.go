package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerDeterministicJSONL(t *testing.T) {
	run := func() string {
		var clk FakeClock
		clk.Set(time.Unix(1000, 0))
		var buf bytes.Buffer
		tr := NewTracer(nil, &clk, &buf)

		sp := tr.Start("predict", L("udf", "WIN"))
		clk.Advance(250 * time.Microsecond)
		sp.End()

		tr.ObserveSpan("compress", 3*time.Millisecond, L("model", "MLQ-E"))
		tr.Event("breaker_trip", L("udf", "WIN"))
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("trace output not deterministic under FakeClock:\n%s\nvs\n%s", a, b)
	}

	lines := strings.Split(strings.TrimSpace(a), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), a)
	}
	var first traceLine
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Seq != 1 || first.Kind != "span" || first.Name != "predict" {
		t.Errorf("first line = %+v", first)
	}
	if first.DurUS == nil || *first.DurUS != 250 {
		t.Errorf("dur_us = %v, want 250", first.DurUS)
	}
	if first.StartUS != time.Unix(1000, 0).UnixMicro() {
		t.Errorf("start_us = %d", first.StartUS)
	}
	if first.Labels["udf"] != "WIN" {
		t.Errorf("labels = %v", first.Labels)
	}
	var second traceLine
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	// ObserveSpan back-dates the start so start+dur == now.
	if second.Seq != 2 || *second.DurUS != 3000 {
		t.Errorf("second line = %+v", second)
	}
	wantStart := time.Unix(1000, 0).Add(250*time.Microsecond - 3*time.Millisecond).UnixMicro()
	if second.StartUS != wantStart {
		t.Errorf("back-dated start_us = %d, want %d", second.StartUS, wantStart)
	}
	var third traceLine
	if err := json.Unmarshal([]byte(lines[2]), &third); err != nil {
		t.Fatal(err)
	}
	if third.Kind != "event" || third.DurUS != nil {
		t.Errorf("event line = %+v", third)
	}
}

func TestTracerFeedsRegistry(t *testing.T) {
	r := New()
	var clk FakeClock
	tr := NewTracer(r, &clk, nil) // no sink: registry only

	sp := tr.Start("observe", L("udf", "SIMPLE"))
	clk.Advance(2 * time.Millisecond)
	sp.End()
	tr.Event("catalog_save")

	h := r.Histogram("mlq_trace_span_seconds", "", L("span", "observe"), L("udf", "SIMPLE"))
	if h.Count() != 1 {
		t.Errorf("span histogram count = %d, want 1", h.Count())
	}
	if h.Sum() != 0.002 {
		t.Errorf("span histogram sum = %g, want 0.002", h.Sum())
	}
	c := r.Counter("mlq_trace_events_total", "", L("event", "catalog_save"))
	if c.Value() != 1 {
		t.Errorf("event counter = %d, want 1", c.Value())
	}
}

func TestObserveSpanClampsNegative(t *testing.T) {
	r := New()
	tr := NewTracer(r, &FakeClock{}, nil)
	tr.ObserveSpan("x", -5*time.Second)
	h := r.Histogram("mlq_trace_span_seconds", "", L("span", "x"))
	if h.Count() != 1 || h.Sum() != 0 {
		t.Errorf("negative duration not clamped: count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestTracerBadSinkSurvives(t *testing.T) {
	tr := NewTracer(nil, &FakeClock{}, failingWriter{})
	sp := tr.Start("x")
	sp.End() // must not panic or propagate the sink error
	tr.Event("y")
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink closed" }
