package telemetry

import (
	"sync"
	"time"
)

// Clock abstracts the tracer's time source so traced code stays
// deterministic under test: the engine, optimizer and quadtree never call
// time.Now themselves (the detertime analyzer enforces that), and the tracer
// only reaches the wall clock through this interface. Tests inject a
// FakeClock and replay identical timelines run after run.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// wallClock is the production Clock — the single wall-clock boundary of the
// telemetry layer.
type wallClock struct{}

// Now returns the wall-clock time.
func (wallClock) Now() time.Time {
	//lint:ignore detertime the telemetry layer's single wall-clock boundary; spans record when work happened, they never influence a decision
	return time.Now()
}

// Wall is the production clock.
var Wall Clock = wallClock{}

// FakeClock is a manually advanced Clock for deterministic tests. The zero
// value starts at the zero time; use Set/Advance to move it. Safe for
// concurrent use.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Set jumps the clock to t.
func (c *FakeClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = t
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
