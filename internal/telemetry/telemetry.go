// Package telemetry is the runtime observability layer of the MLQ engine:
// a concurrency-safe registry of counters, gauges and log-bucketed
// histograms, Prometheus-text and JSON exposition over HTTP (server.go), a
// span tracer for the Figure-1 feedback loop with an injected clock
// (trace.go, clock.go), and a rolling prediction-error tracker (errtrack.go).
//
// The package is stdlib-only, matching the repository's no-external-deps
// stance (see DESIGN.md §7), and every type is nil-safe: methods on a nil
// *Registry, *Counter, *Gauge, *Histogram, *Tracer or *ErrorTracker are
// no-ops, so instrumented code pays only a nil check when telemetry is
// disabled — the hot-path contract the Predict benchmarks enforce.
//
// Metric names follow the scheme mlq_<layer>_<signal> (DESIGN.md §8), e.g.
// mlq_quadtree_memory_utilization or mlq_engine_breaker_open. Series are
// identified by name plus a sorted label set; registering the same series
// twice returns the same metric, so instrumenting a fresh model generation
// under the labels of a previous one continues the same series.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value dimension of a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates the exposition type of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// Counter is a monotonically increasing metric. The zero value is usable;
// all methods are atomic and nil-safe.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is ignored — counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Store overwrites the counter with an absolute total. It exists for
// mirroring an already-monotonic source counter (e.g. a quadtree's lifetime
// insert count) into the registry from the goroutine that owns the source.
func (c *Counter) Store(total int64) {
	if c == nil {
		return
	}
	c.v.Store(total)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is usable; all
// methods are atomic and nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// SetInt overwrites the gauge with an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

// series is one registered time series of a family.
type series struct {
	labels []Label // sorted by key
	sig    string  // canonical label signature, the series' map key

	counter *Counter
	gauge   *Gauge
	fn      func() float64 // func-backed counter/gauge; must be race-safe
	hist    *Histogram
}

// family groups all series sharing one metric name.
type family struct {
	name string
	help string
	kind metricKind
	fn   bool // func-backed (fn series field instead of counter/gauge)

	series map[string]*series
}

// Registry holds metric families and renders them (prom.go, json.go). All
// methods are safe for concurrent use and nil-safe.
type Registry struct {
	mu        sync.Mutex
	families  map[string]*family
	conflicts atomic.Int64
	clock     Clock // nil means Wall; see SetClock
}

// SetClock replaces the clock stamping the JSON exposition's scrape metadata
// (default Wall). Tests inject a FakeClock so /metrics.json is byte-stable.
func (r *Registry) SetClock(c Clock) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = c
	r.mu.Unlock()
}

// now reads the registry's clock (Wall when unset).
func (r *Registry) now() time.Time {
	if r == nil {
		return Wall.Now()
	}
	r.mu.Lock()
	c := r.clock
	r.mu.Unlock()
	if c == nil {
		c = Wall
	}
	return c.Now()
}

// New returns an empty registry. Its only pre-registered series is
// mlq_telemetry_conflicts_total, counting registrations that clashed with an
// existing family of a different type (the offending caller receives a
// detached, still-usable metric instead of a panic).
func New() *Registry {
	r := &Registry{families: make(map[string]*family)}
	r.CounterFunc("mlq_telemetry_conflicts_total",
		"registrations rejected because the name was taken by another metric type",
		func() float64 { return float64(r.conflicts.Load()) })
	return r
}

// canonicalLabels sorts a copy of labels by key, dropping empties.
func canonicalLabels(labels []Label) []Label {
	out := make([]Label, 0, len(labels))
	for _, l := range labels {
		if l.Key != "" {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// signature renders the canonical series key, e.g. `predicate="WIN",model="cost"`.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// lookup finds or creates the family and series slot for one registration.
// It returns nil when the name is already claimed by a different metric kind
// (the conflict counter is incremented; the caller hands out a detached
// metric so instrumented code keeps working).
func (r *Registry) lookup(name, help string, kind metricKind, fn bool, labels []Label) *series {
	labels = canonicalLabels(labels)
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, fn: fn, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind || f.fn != fn {
		r.conflicts.Add(1)
		return nil
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: labels, sig: sig}
		switch {
		case fn:
			// fn filled in by caller (replaced on re-registration below).
		case kind == kindCounter:
			s.counter = &Counter{}
		case kind == kindGauge:
			s.gauge = &Gauge{}
		case kind == kindHistogram:
			s.hist = &Histogram{}
		}
		f.series[sig] = s
	}
	return s
}

// Counter returns the counter series name{labels...}, registering it on
// first use. Returns nil (a no-op counter) on a nil registry or a name
// conflict.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindCounter, false, labels)
	if s == nil {
		return &Counter{} // detached
	}
	return s.counter
}

// Gauge returns the gauge series name{labels...}, registering it on first
// use. Returns nil (a no-op gauge) on a nil registry or a name conflict.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindGauge, false, labels)
	if s == nil {
		return &Gauge{} // detached
	}
	return s.gauge
}

// GaugeFunc registers a pull-based gauge evaluated at exposition time. fn
// must be safe to call from the exposition goroutine (read atomics or take a
// lock). Re-registering the same series replaces the function — the newest
// generation of an object becomes the live view.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	if s := r.lookup(name, help, kindGauge, true, labels); s != nil {
		r.mu.Lock()
		s.fn = fn
		r.mu.Unlock()
	}
}

// CounterFunc registers a pull-based counter evaluated at exposition time;
// fn must be monotonic and race-safe. Re-registration replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	if s := r.lookup(name, help, kindCounter, true, labels); s != nil {
		r.mu.Lock()
		s.fn = fn
		r.mu.Unlock()
	}
}

// Histogram returns the log-bucketed histogram series name{labels...},
// registering it on first use. Returns nil (a no-op histogram) on a nil
// registry or a name conflict.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindHistogram, false, labels)
	if s == nil {
		return &Histogram{} // detached
	}
	return s.hist
}

// snapshot returns the families sorted by name, each with its series sorted
// by label signature — the stable iteration order both expositions use.
func (r *Registry) snapshot() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// seriesView is a render-time copy of one series: the metric pointers are
// immutable once created, and fn is copied under the registry lock so that
// exposition can invoke it lock-free (a func metric may itself consult other
// state; calling it under the registry mutex would invite deadlocks).
type seriesView struct {
	labels []Label
	sig    string

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// value resolves the series' scalar value (counters and gauges).
func (v seriesView) value() float64 {
	switch {
	case v.fn != nil:
		return v.fn()
	case v.counter != nil:
		return float64(v.counter.Value())
	case v.gauge != nil:
		return v.gauge.Value()
	default:
		return 0
	}
}

// sortedSeries returns render-time copies of a family's series sorted by
// signature. The copies are taken under the registry lock; reads of live
// metric values afterwards go through atomics, so rendering never blocks
// writers.
func (f *family) sortedSeries(r *Registry) []seriesView {
	r.mu.Lock()
	out := make([]seriesView, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, seriesView{
			labels: s.labels, sig: s.sig,
			counter: s.counter, gauge: s.gauge, fn: s.fn, hist: s.hist,
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].sig < out[j].sig })
	return out
}
