package telemetry

import (
	"encoding/json"
	"io"
	"math"
)

// jsonHistogram is the JSON exposition of one histogram series.
type jsonHistogram struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// jsonMeta is the scrape metadata under the "_meta" key: when the snapshot
// was taken and how fresh the feedback loop behind it is. PublisherEpoch is
// the highest mlq_publisher_epoch gauge in the registry (zero when no
// publisher is instrumented) — a scraper comparing two snapshots can tell
// "nothing changed" from "the loop is stalled" without parsing every series.
type jsonMeta struct {
	ScrapedAtUnixNano int64  `json:"scraped_at_unix_nano"`
	PublisherEpoch    uint64 `json:"publisher_epoch"`
}

// WriteJSON renders the registry as a single expvar-style JSON object keyed
// by the full series name (name{labels}): scalars for counters and gauges, a
// {count, sum, p50, p95, p99} summary for histograms. encoding/json sorts
// map keys, so the output is deterministic. Non-finite scalar values are
// rendered as strings ("+Inf", "NaN") since JSON has no spelling for them.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]any)
	meta := jsonMeta{ScrapedAtUnixNano: r.now().UnixNano()}
	for _, f := range r.snapshot() {
		for _, v := range f.sortedSeries(r) {
			key := f.name
			if v.sig != "" {
				key += "{" + v.sig + "}"
			}
			if f.name == "mlq_publisher_epoch" && f.kind != kindHistogram {
				if e := v.value(); e > float64(meta.PublisherEpoch) && !math.IsNaN(e) && !math.IsInf(e, 0) {
					meta.PublisherEpoch = uint64(e)
				}
			}
			if f.kind == kindHistogram {
				_, _, count, sum := v.hist.snapshot()
				out[key] = jsonHistogram{
					Count: count,
					Sum:   jsonSafe(sum),
					P50:   jsonSafe(v.hist.Quantile(0.50)),
					P95:   jsonSafe(v.hist.Quantile(0.95)),
					P99:   jsonSafe(v.hist.Quantile(0.99)),
				}
				continue
			}
			val := v.value()
			if math.IsNaN(val) || math.IsInf(val, 0) {
				out[key] = formatValue(val)
			} else {
				out[key] = val
			}
		}
	}
	out["_meta"] = meta
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// jsonSafe clamps non-finite values to 0 inside histogram summaries (an
// empty histogram's quantile is 0 already; an overflowed one reports +Inf,
// which JSON cannot carry — the Prometheus exposition keeps the real value).
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
