package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeAndScrape(t *testing.T) {
	r := New()
	r.Counter("mlq_test_served_total", "served").Store(7)

	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if !strings.HasPrefix(s.URL(), "http://127.0.0.1:") {
		t.Errorf("URL = %q", s.URL())
	}

	resp, err := http.Get(s.URL())
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "mlq_test_served_total 7") {
		t.Errorf("scrape missing counter:\n%s", body)
	}

	resp, err = http.Get("http://" + s.Addr() + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("JSON Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), `"mlq_test_served_total": 7`) {
		t.Errorf("JSON scrape missing counter:\n%s", body)
	}

	resp, err = http.Get("http://" + s.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}

	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := http.Get(s.URL()); err == nil {
		t.Error("server still reachable after Close")
	}
}

func TestServeRequiresRegistry(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Error("Serve(nil registry) did not fail")
	}
}

func TestNilServerAccessors(t *testing.T) {
	var s *Server
	if s.Addr() != "" || s.URL() != "" {
		t.Error("nil server has an address")
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}
