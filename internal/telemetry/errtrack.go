package telemetry

import (
	"math"
	"sync/atomic"
)

// ErrorTracker exports a model's live prediction accuracy: the rolling NAE
// of Eq. 10 (Σ|PC−AC| / Σ|AC|) as mlq_model_nae, the approximate p95 of the
// absolute error stream as mlq_model_abs_error_p95 (from the
// mlq_model_abs_error histogram), and a sample counter. It is the registry
// face of the internal/metrics accumulators: the harness feeds it the same
// (predicted, actual) pairs it feeds metrics.NAE, and the gauges answer
// scrapes concurrently via atomics.
//
// A nil *ErrorTracker is a no-op.
type ErrorTracker struct {
	absErr    floatAdder
	absActual floatAdder
	hist      *Histogram
	samples   *Counter
}

// NewErrorTracker registers the model-error series under the given labels
// (typically model="MLQ-E" or predicate="WIN") and returns the feed handle.
// Returns nil on a nil registry.
func NewErrorTracker(reg *Registry, labels ...Label) *ErrorTracker {
	if reg == nil {
		return nil
	}
	t := &ErrorTracker{
		hist:    reg.Histogram("mlq_model_abs_error", "absolute prediction error |predicted-actual|", labels...),
		samples: reg.Counter("mlq_model_samples_total", "prediction/actual pairs scored", labels...),
	}
	reg.GaugeFunc("mlq_model_nae", "rolling normalized absolute error (Eq. 10)",
		func() float64 {
			denom := t.absActual.Value()
			if denom <= 0 {
				return 0
			}
			return t.absErr.Value() / denom
		}, labels...)
	reg.GaugeFunc("mlq_model_abs_error_p95", "approximate p95 of the absolute prediction error",
		func() float64 { return t.hist.Quantile(0.95) }, labels...)
	return t
}

// Observe scores one prediction/actual pair. Non-finite pairs are dropped —
// the tracker reports on the feedback loop, it must not be poisoned by it.
func (t *ErrorTracker) Observe(predicted, actual float64) {
	if t == nil {
		return
	}
	e := math.Abs(predicted - actual)
	if math.IsNaN(e) || math.IsInf(e, 0) {
		return
	}
	t.absErr.Add(e)
	t.absActual.Add(math.Abs(actual))
	t.hist.Observe(e)
	t.samples.Inc()
}

// floatAdder is an atomic float64 accumulator.
type floatAdder struct {
	bits atomic.Uint64
}

// Add folds v in.
func (a *floatAdder) Add(v float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// Value returns the accumulated sum.
func (a *floatAdder) Value() float64 { return bitsFloat(a.bits.Load()) }
