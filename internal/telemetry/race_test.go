package telemetry

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRegistryHammer drives every registry mutation path from
// concurrent goroutines while scrapers render both expositions. Run under
// -race (the CI telemetry job does) this pins the concurrency contract:
// registration, publication and exposition never race.
func TestConcurrentRegistryHammer(t *testing.T) {
	r := New()
	var clk FakeClock
	tr := NewTracer(r, &clk, io.Discard)

	const (
		writers = 4
		iters   = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			labels := []Label{L("worker", string(rune('a'+w)))}
			for i := 0; i < iters; i++ {
				r.Counter("mlq_test_hammer_total", "h", labels...).Inc()
				r.Gauge("mlq_test_hammer_depth", "h", labels...).Set(float64(i))
				r.Histogram("mlq_test_hammer_seconds", "h", labels...).Observe(float64(i) * 1e-3)
				// Re-register the func series every iteration: the
				// latest-generation-wins path must not race rendering.
				v := float64(i)
				r.GaugeFunc("mlq_test_hammer_live", "h", func() float64 { return v }, labels...)
				sp := tr.Start("hammer", labels...)
				sp.End()
				et := NewErrorTracker(r, labels...)
				et.Observe(float64(i), float64(i+1))
			}
		}()
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				if err := r.WriteJSON(io.Discard); err != nil {
					t.Errorf("WriteJSON: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			clk.Advance(time.Microsecond)
		}
	}()
	wg.Wait()

	var total int64
	for w := 0; w < writers; w++ {
		total += r.Counter("mlq_test_hammer_total", "h", L("worker", string(rune('a'+w)))).Value()
	}
	if total != writers*iters {
		t.Errorf("hammer counter total = %d, want %d", total, writers*iters)
	}
}

// TestConcurrentHistogram checks the lock-free sum/count paths add up.
func TestConcurrentHistogram(t *testing.T) {
	var h Histogram
	const (
		goroutines = 8
		per        = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Errorf("Count = %d, want %d", got, goroutines*per)
	}
	if got := h.Sum(); got != goroutines*per*0.5 {
		t.Errorf("Sum = %g, want %g", got, float64(goroutines*per)*0.5)
	}
}
