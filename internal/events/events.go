// Package events is the causal event spine of the feedback loop: a
// lock-free, fixed-size, per-subsystem ring buffer of structured events that
// threads one causal ID through an observation's entire journey — minted at
// core.Publisher.Observe, carried through the batch drain, the journal
// frame, the replication transport's send and receive, the follower apply,
// and the epoch publish — so `mlqtool trace <id>` can reconstruct any
// record's end-to-end path and per-hop lag after the fact.
//
// On top of the rings sits a black-box flight recorder: fault sites (engine
// panic isolation, breaker opens, deadline censoring, journal truncation,
// replica failover) call Trigger, which freezes the last N events of every
// subsystem into a CRC-framed dump file that `mlqtool blackbox` decodes —
// the post-mortem for a chaos run without re-running it.
//
// The overhead contract mirrors the telemetry layer's: the prediction hot
// path emits nothing at all, and every emission site behind a nil *Recorder
// costs exactly one pointer check (all methods are nil-safe). Emission
// itself is lock-free — a fetch-add to claim a slot plus atomic word stores
// — so it is safe under any lock the instrumented subsystems hold. Time
// enters only through telemetry.Clock (detertime-clean: tests inject a
// FakeClock and replay identical event timelines), ordering comes from a
// logical clock that is total across subsystems, and causal IDs come from a
// seeded splitmix64 stream, so two runs with the same seed mint the same
// IDs.
package events

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mlq/internal/telemetry"
)

// Subsystem names one event ring. Every subsystem keeps its own ring so a
// chatty component (the replication stream) cannot evict the sparse,
// high-value events of a quiet one (a breaker open in the engine).
type Subsystem uint8

// The instrumented subsystems.
const (
	SubCore        Subsystem = iota // core.Publisher: accept, drain, publish
	SubJournal                      // observation journal: append, reset, torn tail
	SubReplica                      // replica fleet: send, receive, apply, failover
	SubEngine                       // query engine: panics, breakers, censoring
	SubBufferCache                  // buffer cache: retry exhaustion, deadlines
	SubHarness                      // experiment harness: run-level markers

	// NumSubsystems bounds the ring array; keep it last.
	NumSubsystems
)

// String names the subsystem for rendering.
func (s Subsystem) String() string {
	switch s {
	case SubCore:
		return "core"
	case SubJournal:
		return "journal"
	case SubReplica:
		return "replica"
	case SubEngine:
		return "engine"
	case SubBufferCache:
		return "buffercache"
	case SubHarness:
		return "harness"
	default:
		return fmt.Sprintf("Subsystem(%d)", int(s))
	}
}

// Kind classifies one event. The observation-journey kinds (Observe through
// EpochPublish) are the hops `mlqtool trace` reconstructs; the fault kinds
// are what the flight recorder dumps around.
type Kind uint8

const (
	// KindNone marks an empty ring slot; it never appears in a dump.
	KindNone Kind = iota

	// KindObserve: an observation was accepted by the publisher and the
	// causal ID minted for it assigned. A = accepted sequence.
	KindObserve
	// KindBatchDrain: the writer goroutine folded the observation into the
	// live tree as part of a batch.
	KindBatchDrain
	// KindJournalAppend: the observation's frame reached the crash-safety
	// journal. A = accepted sequence.
	KindJournalAppend
	// KindSend: the replication stream handed the record to the transport.
	// A = group sequence, actor = destination replica.
	KindSend
	// KindRecv: a follower took the record off its inbox. A = group
	// sequence, actor = receiving replica.
	KindRecv
	// KindApply: a follower folded the record into its model. A = group
	// sequence, actor = applying replica.
	KindApply
	// KindEpochPublish: a fresh snapshot was published. A = epoch,
	// B = sequence watermark the snapshot covers (every record with
	// sequence <= B is inside it), actor = publishing replica (0 = the
	// primary publisher itself).
	KindEpochPublish

	// KindJournalReset: a checkpoint truncated the journal. A = records
	// dropped (all of them covered by the durable save that preceded it).
	KindJournalReset
	// KindJournalTorn: replay cut a torn/corrupt tail. A = records
	// recovered, B = bytes cut.
	KindJournalTorn
	// KindPanic: a UDF execution panicked and was isolated. A = cumulative
	// recovered panics for the predicate.
	KindPanic
	// KindBreakerOpen: a Guard's circuit breaker opened. A = consecutive
	// rejections that tripped it.
	KindBreakerOpen
	// KindCensor: a deadline-aborted execution's observation was censored.
	KindCensor
	// KindRetryExhausted: a buffer-cache read failed after its full retry
	// budget. A = attempts.
	KindRetryExhausted
	// KindReadDeadline: a buffer-cache read was abandoned by its latency
	// deadline. A = attempts made before abandoning.
	KindReadDeadline
	// KindFailover: the replica group moved to a new term. A = old term,
	// B = new term.
	KindFailover
	// KindTrigger: the flight recorder fired. A = dump sequence number.
	KindTrigger
	// KindMark: a harness-level marker (scenario boundaries and the like).
	KindMark
	// KindResize: a live byte-budget change — a quadtree limit moved
	// through the publisher or a buffer cache changed capacity. A = old
	// budget, B = new budget (bytes for models, pages for caches).
	KindResize

	// KindConnUp: a network transport link came up. A = cumulative
	// reconnects on the link (0 for the first establishment), actor =
	// destination replica index + 1.
	KindConnUp
	// KindConnDown: a network transport link went down (peer reset, write
	// failure, liveness loss, or an administrative partition). A =
	// heartbeats missed on the link so far, actor = destination replica
	// index + 1.
	KindConnDown
	// KindBootstrap: a snapshot bootstrap transfer finished. A = chunks
	// received (including any re-received after a full resync), B =
	// mid-transfer resumes that continued from the last verified chunk.
	KindBootstrap
)

// String names the kind for rendering and for the hop-lag histogram label.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindObserve:
		return "observe"
	case KindBatchDrain:
		return "batch-drain"
	case KindJournalAppend:
		return "journal-append"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindApply:
		return "apply"
	case KindEpochPublish:
		return "epoch-publish"
	case KindJournalReset:
		return "journal-reset"
	case KindJournalTorn:
		return "journal-torn"
	case KindPanic:
		return "panic"
	case KindBreakerOpen:
		return "breaker-open"
	case KindCensor:
		return "censor"
	case KindRetryExhausted:
		return "retry-exhausted"
	case KindReadDeadline:
		return "read-deadline"
	case KindFailover:
		return "failover"
	case KindTrigger:
		return "trigger"
	case KindMark:
		return "mark"
	case KindResize:
		return "resize"
	case KindConnUp:
		return "conn-up"
	case KindConnDown:
		return "conn-down"
	case KindBootstrap:
		return "bootstrap"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one structured spine event. LC is the recorder-wide logical
// clock: it totally orders events across subsystems without consulting wall
// time, so a trace is reconstructible even when the clock is frozen (tests)
// or coarse. TS is the clock's reading at emission, used only for lag
// reporting, never for ordering. Cause is the causal ID minted at
// Publisher.Observe (0 = the event is not part of an observation's journey,
// e.g. a record recovered from the journal, whose frame does not carry the
// ID). Lag is the nanoseconds since the causal ID was minted, when known.
type Event struct {
	LC    uint64
	TS    int64
	Cause uint64
	Sub   Subsystem
	Kind  Kind
	Actor uint16 // replica index + 1; 0 = primary/unknown
	A, B  uint64
	Lag   int64 // ns since the cause was minted; 0 = unknown
}

// slotWords is the per-slot footprint in the ring's atomic word array:
//
//	[0] LC (commit check, written first after invalidation)
//	[1] TS
//	[2] Cause
//	[3] packed Sub | Kind | Actor
//	[4] A
//	[5] B
//	[6] Lag
//	[7] LC again (commit marker, written last)
//
// A reader accepts a slot only when words 0 and 7 agree and are nonzero;
// a writer overwriting a wrapped slot first zeroes word 7, so a concurrent
// reader can never stitch half an old event onto half a new one. Every
// access is atomic, so the scheme is race-detector-clean by construction.
const slotWords = 8

func packSKA(sub Subsystem, kind Kind, actor uint16) uint64 {
	return uint64(sub) | uint64(kind)<<8 | uint64(actor)<<16
}

func unpackSKA(w uint64) (Subsystem, Kind, uint16) {
	return Subsystem(w), Kind(w >> 8), uint16(w >> 16)
}

// ring is one subsystem's fixed-size event buffer.
type ring struct {
	words []atomic.Uint64 // cap * slotWords
	mask  uint64          // cap - 1 (cap is a power of two)
	head  atomic.Uint64   // next slot ordinal; slot = ordinal & mask
}

func newRing(capacity int) *ring {
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &ring{words: make([]atomic.Uint64, c*slotWords), mask: uint64(c - 1)}
}

// write claims the next slot and commits e into it, reporting whether an
// older event was overwritten.
func (r *ring) write(e Event) (overwrote bool) {
	ord := r.head.Add(1) - 1
	base := int(ord&r.mask) * slotWords
	overwrote = ord > r.mask // every wrapped ordinal evicts one event
	r.words[base+7].Store(0) // invalidate before touching the body
	r.words[base+0].Store(e.LC)
	r.words[base+1].Store(uint64(e.TS))
	r.words[base+2].Store(e.Cause)
	r.words[base+3].Store(packSKA(e.Sub, e.Kind, e.Actor))
	r.words[base+4].Store(e.A)
	r.words[base+5].Store(e.B)
	r.words[base+6].Store(uint64(e.Lag))
	r.words[base+7].Store(e.LC) // commit
	return overwrote
}

// snapshot collects every committed event currently in the ring. Events a
// writer is mid-overwrite on are skipped (their commit words disagree); the
// result is unsorted — callers order by LC.
func (r *ring) snapshot() []Event {
	n := int(r.mask + 1)
	out := make([]Event, 0, n)
	for slot := 0; slot < n; slot++ {
		base := slot * slotWords
		commit := r.words[base+7].Load()
		if commit == 0 {
			continue
		}
		var e Event
		e.LC = r.words[base+0].Load()
		e.TS = int64(r.words[base+1].Load())
		e.Cause = r.words[base+2].Load()
		e.Sub, e.Kind, e.Actor = unpackSKA(r.words[base+3].Load())
		e.A = r.words[base+4].Load()
		e.B = r.words[base+5].Load()
		e.Lag = int64(r.words[base+6].Load())
		if r.words[base+7].Load() != commit || r.words[base+0].Load() != commit {
			continue // overwritten while we read; the new event will be seen by the next dump
		}
		out = append(out, e)
	}
	return out
}

// DefaultRingSize is the per-subsystem event capacity when Config leaves it
// zero: enough to hold a full publisher batch cycle on every hop.
const DefaultRingSize = 1024

// DefaultMaxDumps bounds automatic flight-recorder dumps per Recorder: a
// fault storm (every censored row triggering) must not fill the disk.
const DefaultMaxDumps = 8

// Config assembles a Recorder. The zero value is usable: wall clock, seed 0,
// default ring size, automatic dumps disabled.
type Config struct {
	// Clock supplies event timestamps. Nil means telemetry.Wall; tests
	// inject a telemetry.FakeClock for deterministic timelines.
	Clock telemetry.Clock
	// Seed drives the causal-ID stream: same seed, same minted IDs.
	Seed uint64
	// RingSize is the per-subsystem event capacity, rounded up to a power
	// of two. Default DefaultRingSize.
	RingSize int
	// DumpDir, when non-empty, makes Trigger write black-box dump files
	// (blackbox-NNN-<reason>.mlqbb) there. Empty disables automatic dumps;
	// Trigger still emits its event and DumpTo still works.
	DumpDir string
	// MaxDumps bounds automatic dumps (default DefaultMaxDumps). Triggers
	// past the bound still emit events; they just stop writing files.
	MaxDumps int
}

// Recorder is the event spine: one ring per subsystem plus the causal-ID
// mint and the flight-recorder trigger. A nil *Recorder is a valid no-op —
// every method checks the receiver first, so instrumented code pays one
// pointer test when recording is off.
type Recorder struct {
	clock telemetry.Clock
	seed  uint64
	ids   atomic.Uint64 // causal-ID mint counter
	lc    atomic.Uint64 // logical clock, total across subsystems
	rings [NumSubsystems]*ring

	dumpMu   sync.Mutex // leaf lock: guards dump file IO and the dump counter
	dumpDir  string
	dumpMax  int
	dumpSeq  uint64
	dumpErrs atomic.Int64

	tel atomic.Pointer[recorderTelemetry]
}

// New builds a Recorder from cfg.
func New(cfg Config) *Recorder {
	if cfg.Clock == nil {
		cfg.Clock = telemetry.Wall
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.MaxDumps <= 0 {
		cfg.MaxDumps = DefaultMaxDumps
	}
	r := &Recorder{
		clock:   cfg.Clock,
		seed:    cfg.Seed,
		dumpDir: cfg.DumpDir,
		dumpMax: cfg.MaxDumps,
	}
	for i := range r.rings {
		r.rings[i] = newRing(cfg.RingSize)
	}
	return r
}

// splitmix64 is the causal-ID hash: a well-mixed bijection on uint64, so
// sequential mint counters become IDs that are unique, seeded, and wildly
// separated — easy to grep a log for without colliding with sequence
// numbers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// MintID issues the next causal ID from the seeded stream. IDs are never 0
// (0 means "no cause"). Nil-safe: a nil recorder mints 0, and every carrier
// treats 0 as "untraced".
func (r *Recorder) MintID() uint64 {
	if r == nil {
		return 0
	}
	id := splitmix64(r.seed ^ r.ids.Add(1))
	if id == 0 {
		id = 1 // splitmix64 is a bijection; exactly one counter value maps to 0
	}
	return id
}

// Now returns the recorder clock's reading in unix nanoseconds (0 on nil):
// the mint timestamp callers thread alongside the causal ID so later hops
// can report lag-since-mint.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return r.clock.Now().UnixNano()
}

// Emit records one event with no actor and no lag.
func (r *Recorder) Emit(sub Subsystem, kind Kind, cause, a, b uint64) {
	if r == nil {
		return
	}
	r.emit(sub, kind, cause, 0, a, b, 0)
}

// EmitActor records one event attributed to an actor (replica index + 1; 0
// is the primary) with both payload words and no lag — the shape of the
// epoch-publish watermark events traces join against.
func (r *Recorder) EmitActor(sub Subsystem, kind Kind, cause uint64, actor int, a, b uint64) {
	if r == nil {
		return
	}
	if actor < 0 || actor > 0xffff {
		actor = 0
	}
	r.emit(sub, kind, cause, uint16(actor), a, b, 0)
}

// EmitHop records one observation-journey hop: actor is the replica index
// (plus one; 0 for the primary), and mintNS — the Now() reading taken when
// the cause was minted — turns into the event's lag and feeds the per-hop
// lag histogram. mintNS <= 0 means the mint time is unknown (e.g. a record
// recovered from the journal) and no lag is recorded.
func (r *Recorder) EmitHop(sub Subsystem, kind Kind, cause uint64, mintNS int64, actor int, a uint64) {
	if r == nil {
		return
	}
	var lag int64
	if mintNS > 0 {
		if now := r.clock.Now().UnixNano(); now > mintNS {
			lag = now - mintNS
		}
	}
	if actor < 0 || actor > 0xffff {
		actor = 0
	}
	r.emit(sub, kind, cause, uint16(actor), a, 0, lag)
}

func (r *Recorder) emit(sub Subsystem, kind Kind, cause uint64, actor uint16, a, b uint64, lag int64) {
	if sub >= NumSubsystems {
		sub = SubHarness
	}
	e := Event{
		LC:    r.lc.Add(1),
		TS:    r.clock.Now().UnixNano(),
		Cause: cause,
		Sub:   sub,
		Kind:  kind,
		Actor: actor,
		A:     a,
		B:     b,
		Lag:   lag,
	}
	overwrote := r.rings[sub].write(e)
	if tel := r.tel.Load(); tel != nil {
		tel.emitted.Inc()
		if overwrote {
			tel.dropped.Inc()
		}
		if lag > 0 {
			if h := tel.hopLag[kind]; h != nil {
				h.Observe(float64(lag) / 1e9)
			}
		}
	}
}

// Snapshot collects every committed event across all subsystems, sorted by
// the logical clock. It is what DumpTo serializes and what in-process
// consumers (tests, the harness) trace against.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, rg := range r.rings {
		out = append(out, rg.snapshot()...)
	}
	sortEvents(out)
	return out
}

// sortEvents orders by logical clock (total and unique by construction).
func sortEvents(evts []Event) {
	// Insertion-friendly shapes dominate (per-ring snapshots are nearly
	// sorted already), but correctness matters more than cleverness here.
	for i := 1; i < len(evts); i++ {
		for j := i; j > 0 && evts[j].LC < evts[j-1].LC; j-- {
			evts[j], evts[j-1] = evts[j-1], evts[j]
		}
	}
}

// DumpErrors returns how many automatic dumps failed to write (counted,
// never fatal: the flight recorder must not take down the flight).
func (r *Recorder) DumpErrors() int64 {
	if r == nil {
		return 0
	}
	return r.dumpErrs.Load()
}

// recorderTelemetry mirrors the spine's health into a telemetry registry.
type recorderTelemetry struct {
	emitted   *telemetry.Counter
	dropped   *telemetry.Counter
	dumps     *telemetry.Counter
	dumpErrs  *telemetry.Counter
	triggered *telemetry.Counter
	hopLag    map[Kind]*telemetry.Histogram
}

// hopKinds are the observation-journey hops that get lag histograms: the
// replication-lag distributions a fleet dashboard alerts on.
var hopKinds = []Kind{KindObserve, KindBatchDrain, KindJournalAppend, KindSend, KindRecv, KindApply}

// Instrument registers the spine's metrics under mlq_events_*: emission and
// overwrite counters, flight-recorder accounting, and one
// mlq_events_hop_lag_seconds histogram per observation-journey hop — the
// replication-lag histograms (hop="send"/"recv"/"apply") among them. Safe to
// call on a live recorder; nil reg uninstalls.
func (r *Recorder) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	if r == nil {
		return
	}
	if reg == nil {
		r.tel.Store(nil)
		return
	}
	tel := &recorderTelemetry{
		emitted:   reg.Counter("mlq_events_emitted_total", "events recorded on the causal spine", labels...),
		dropped:   reg.Counter("mlq_events_dropped_total", "ring-buffer events overwritten before any dump saw them", labels...),
		dumps:     reg.Counter("mlq_events_dumps_total", "black-box flight-recorder dumps written", labels...),
		dumpErrs:  reg.Counter("mlq_events_dump_errors_total", "flight-recorder dumps that failed to write", labels...),
		triggered: reg.Counter("mlq_events_triggers_total", "flight-recorder trigger firings (dumped or not)", labels...),
		hopLag:    make(map[Kind]*telemetry.Histogram, len(hopKinds)),
	}
	for _, k := range hopKinds {
		kl := append(append([]telemetry.Label(nil), labels...), telemetry.L("hop", k.String()))
		tel.hopLag[k] = reg.Histogram("mlq_events_hop_lag_seconds", "lag from causal-ID mint to this hop", kl...)
	}
	r.tel.Store(tel)
}
