// Black-box dump format: how the flight recorder freezes the event spine
// to disk and how `mlqtool blackbox` reads it back.
//
// Layout (all little-endian), following the journal's framing discipline —
// a fixed header, then length+CRC framed records, so a torn tail is
// detectable and everything before it stays decodable:
//
//	magic   u32  "MLQB" (0x4d4c5142)
//	version u32  1
//	frames:
//	  len u32 | crc u32 (IEEE, over payload) | payload
//
// Frame 0 is the meta payload (dump sequence, trigger reason); every later
// frame is one Event. A reader that hits a bad CRC reports it and keeps the
// frames before it — a flight recorder that loses power mid-write must
// still yield the events that made it out.
package events

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// DumpMagic identifies a black-box dump file ("MLQB" little-endian).
const DumpMagic uint32 = 0x4d4c5142

// DumpVersion is the current dump format version.
const DumpVersion uint32 = 1

// eventFrameSize is the serialized Event payload: LC, TS, Cause, A, B, Lag
// (u64 each) + packed sub/kind/actor (u32).
const eventFrameSize = 6*8 + 4

// DumpMeta is frame 0 of a dump: which trigger fired and where this dump
// sits in the recorder's sequence.
type DumpMeta struct {
	Seq    uint64 // dump ordinal within the recorder, from 1
	Reason string // trigger reason, e.g. "failover" or "journal-torn"
}

// ErrDumpMagic reports a file that is not a black-box dump.
var ErrDumpMagic = errors.New("events: bad dump magic")

// ErrDumpVersion reports a dump written by a newer format.
var ErrDumpVersion = errors.New("events: unsupported dump version")

func putEvent(buf []byte, e Event) {
	binary.LittleEndian.PutUint64(buf[0:], e.LC)
	binary.LittleEndian.PutUint64(buf[8:], uint64(e.TS))
	binary.LittleEndian.PutUint64(buf[16:], e.Cause)
	binary.LittleEndian.PutUint64(buf[24:], e.A)
	binary.LittleEndian.PutUint64(buf[32:], e.B)
	binary.LittleEndian.PutUint64(buf[40:], uint64(e.Lag))
	binary.LittleEndian.PutUint32(buf[48:], uint32(packSKA(e.Sub, e.Kind, e.Actor)))
}

func getEvent(buf []byte) Event {
	var e Event
	e.LC = binary.LittleEndian.Uint64(buf[0:])
	e.TS = int64(binary.LittleEndian.Uint64(buf[8:]))
	e.Cause = binary.LittleEndian.Uint64(buf[16:])
	e.A = binary.LittleEndian.Uint64(buf[24:])
	e.B = binary.LittleEndian.Uint64(buf[32:])
	e.Lag = int64(binary.LittleEndian.Uint64(buf[40:]))
	e.Sub, e.Kind, e.Actor = unpackSKA(uint64(binary.LittleEndian.Uint32(buf[48:])))
	return e
}

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteDump serializes meta and events as a black-box dump.
func WriteDump(w io.Writer, meta DumpMeta, evts []Event) error {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], DumpMagic)
	binary.LittleEndian.PutUint32(hdr[4:], DumpVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	metaBuf := make([]byte, 8+len(meta.Reason))
	binary.LittleEndian.PutUint64(metaBuf[0:], meta.Seq)
	copy(metaBuf[8:], meta.Reason)
	if err := writeFrame(bw, metaBuf); err != nil {
		return err
	}
	frame := make([]byte, eventFrameSize)
	for _, e := range evts {
		putEvent(frame, e)
		if err := writeFrame(bw, frame); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxFrameLen rejects absurd frame lengths before allocating: no legal
// frame exceeds the meta reason bound by much, and an event frame is fixed.
const maxFrameLen = 1 << 16

// ReadDump decodes a black-box dump. Frames with CRC mismatches (and
// everything after the first one, which is unframeable) are dropped and
// counted in crcErrors; the events decoded before the damage are returned
// regardless, so a torn dump still yields its prefix. err is non-nil only
// for structural problems (bad magic, unsupported version, unreadable
// header).
func ReadDump(r io.Reader) (meta DumpMeta, evts []Event, crcErrors int, err error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err = io.ReadFull(br, hdr[:]); err != nil {
		return meta, nil, 0, fmt.Errorf("events: reading dump header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != DumpMagic {
		return meta, nil, 0, fmt.Errorf("%w: 0x%08x", ErrDumpMagic, m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != DumpVersion {
		return meta, nil, 0, fmt.Errorf("%w: %d", ErrDumpVersion, v)
	}
	first := true
	for {
		var fh [8]byte
		if _, e := io.ReadFull(br, fh[:]); e != nil {
			if e == io.EOF {
				return meta, evts, crcErrors, nil
			}
			// A torn frame header: count it as damage, keep the prefix.
			crcErrors++
			return meta, evts, crcErrors, nil
		}
		n := binary.LittleEndian.Uint32(fh[0:])
		want := binary.LittleEndian.Uint32(fh[4:])
		if n > maxFrameLen {
			crcErrors++
			return meta, evts, crcErrors, nil
		}
		payload := make([]byte, n)
		if _, e := io.ReadFull(br, payload); e != nil {
			crcErrors++
			return meta, evts, crcErrors, nil
		}
		if crc32.ChecksumIEEE(payload) != want {
			// Framing is length-prefixed, so one bad frame does not poison
			// the next — keep scanning, counting the damage.
			crcErrors++
			first = false
			continue
		}
		if first {
			first = false
			if len(payload) >= 8 {
				meta.Seq = binary.LittleEndian.Uint64(payload[0:])
				meta.Reason = string(payload[8:])
			}
			continue
		}
		if len(payload) == eventFrameSize {
			evts = append(evts, getEvent(payload))
		} else {
			crcErrors++
		}
	}
}

// ReadDumpFile decodes the dump at path.
func ReadDumpFile(path string) (DumpMeta, []Event, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return DumpMeta{}, nil, 0, err
	}
	defer f.Close()
	return ReadDump(f)
}

// DumpTo freezes the current spine (every subsystem's committed events,
// LC-sorted) into w under the given reason. Unlike Trigger it neither
// consumes the auto-dump budget nor emits an event — it is the explicit
// export path (mlqbench's final dump, tests).
func (r *Recorder) DumpTo(w io.Writer, reason string) error {
	if r == nil {
		return nil
	}
	r.dumpMu.Lock()
	r.dumpSeq++
	seq := r.dumpSeq
	r.dumpMu.Unlock()
	return WriteDump(w, DumpMeta{Seq: seq, Reason: reason}, r.Snapshot())
}

// sanitizeReason maps a trigger reason to a filename-safe token.
func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, c := range reason {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteRune('-')
		}
	}
	if b.Len() == 0 {
		return "trigger"
	}
	return b.String()
}

// Trigger fires the flight recorder: it emits a KindTrigger event on the
// harness ring and, when the recorder has a DumpDir and budget left, writes
// the full spine to blackbox-NNN-<reason>.mlqbb there. File names are
// sequence-numbered, not timestamped, so a deterministic run produces
// deterministic artifacts. Failures are counted (DumpErrors, telemetry) and
// swallowed: the recorder must never crash the flight it is recording.
func (r *Recorder) Trigger(reason string) {
	if r == nil {
		return
	}
	r.dumpMu.Lock()
	r.dumpSeq++
	seq := r.dumpSeq
	write := r.dumpDir != "" && seq <= uint64(r.dumpMax)
	r.dumpMu.Unlock()

	r.Emit(SubHarness, KindTrigger, 0, seq, 0)
	if tel := r.tel.Load(); tel != nil {
		tel.triggered.Inc()
	}
	if !write {
		return
	}

	name := fmt.Sprintf("blackbox-%03d-%s.mlqbb", seq, sanitizeReason(reason))
	path := filepath.Join(r.dumpDir, name)
	err := func() error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := WriteDump(f, DumpMeta{Seq: seq, Reason: reason}, r.Snapshot()); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}()
	tel := r.tel.Load()
	if err != nil {
		r.dumpErrs.Add(1)
		if tel != nil {
			tel.dumpErrs.Inc()
		}
		return
	}
	if tel != nil {
		tel.dumps.Inc()
	}
}
