package events

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestBuildTraceFullJourney drives the canonical observation journey —
// observe → batch drain → journal append → send → recv → apply → epoch
// publish — with an unrelated observation interleaved as noise, and checks
// the reconstruction end to end.
func TestBuildTraceFullJourney(t *testing.T) {
	clk := fakeClock()
	r := New(Config{Clock: clk, RingSize: 64, Seed: 11})

	noise := r.MintID()
	cause := r.MintID()
	mint := r.Now()

	r.EmitHop(SubCore, KindObserve, cause, mint, 0, 5)
	r.EmitHop(SubCore, KindObserve, noise, mint, 0, 6)
	clk.Advance(time.Millisecond)
	r.EmitHop(SubCore, KindBatchDrain, cause, mint, 0, 0)
	clk.Advance(time.Millisecond)
	r.EmitHop(SubJournal, KindJournalAppend, cause, mint, 0, 5)
	clk.Advance(time.Millisecond)
	r.EmitHop(SubReplica, KindSend, cause, mint, 2, 5)
	clk.Advance(2 * time.Millisecond)
	r.EmitHop(SubReplica, KindRecv, cause, mint, 2, 5)
	clk.Advance(time.Millisecond)
	r.EmitHop(SubReplica, KindApply, cause, mint, 2, 5)
	clk.Advance(time.Millisecond)
	// Epoch publish on the same actor (replica 1, stored as 2): covers the
	// batch, so it has cause 0 and joins by watermark (B=6 >= seq 5).
	r.EmitActor(SubReplica, KindEpochPublish, 0, 2, 9, 6)
	// An earlier-watermark publish on another actor must not join.
	r.EmitActor(SubReplica, KindEpochPublish, 0, 3, 9, 3)

	tr := BuildTrace(r.Snapshot(), cause)
	wantKinds := []Kind{KindObserve, KindBatchDrain, KindJournalAppend, KindSend, KindRecv, KindApply, KindEpochPublish}
	if len(tr.Hops) != len(wantKinds) {
		t.Fatalf("trace has %d hops, want %d: %+v", len(tr.Hops), len(wantKinds), tr.Hops)
	}
	for i, k := range wantKinds {
		if tr.Hops[i].Event.Kind != k {
			t.Fatalf("hop %d kind = %v, want %v", i, tr.Hops[i].Event.Kind, k)
		}
	}
	// Per-hop steps come from TS deltas.
	if tr.Hops[4].Step != 2*time.Millisecond {
		t.Fatalf("recv step = %v, want 2ms", tr.Hops[4].Step)
	}
	// Cumulative lag since mint reaches the apply hop.
	if got := tr.Hops[5].Event.Lag; got != int64(6*time.Millisecond) {
		t.Fatalf("apply lag = %v, want 6ms", time.Duration(got))
	}
	// The joined epoch publish is the right one.
	if e := tr.Hops[6].Event; e.Actor != 2 || e.B != 6 {
		t.Fatalf("joined epoch publish = %+v", e)
	}
	// The noise observation stays out.
	for _, h := range tr.Hops {
		if h.Event.Cause == noise {
			t.Fatal("noise cause leaked into trace")
		}
	}
}

func TestBuildTraceUnknownCause(t *testing.T) {
	r := New(Config{Clock: fakeClock(), RingSize: 8})
	r.Emit(SubCore, KindObserve, 123, 1, 0)
	tr := BuildTrace(r.Snapshot(), 999)
	if len(tr.Hops) != 0 {
		t.Fatalf("unknown cause produced %d hops", len(tr.Hops))
	}
	if tr = BuildTrace(r.Snapshot(), 0); len(tr.Hops) != 0 {
		t.Fatal("cause 0 must trace to nothing")
	}
}

func TestCausesOrderedByFirstAppearance(t *testing.T) {
	r := New(Config{Clock: fakeClock(), RingSize: 16})
	a, b := r.MintID(), r.MintID()
	r.Emit(SubCore, KindObserve, b, 1, 0)
	r.Emit(SubCore, KindObserve, a, 2, 0)
	r.Emit(SubJournal, KindJournalAppend, b, 1, 0)
	got := Causes(r.Snapshot())
	if len(got) != 2 || got[0] != b || got[1] != a {
		t.Fatalf("Causes = %x, want [%x %x]", got, b, a)
	}
}

func TestWriteTraceRendering(t *testing.T) {
	r := New(Config{Clock: fakeClock(), RingSize: 8})
	cause := r.MintID()
	r.EmitHop(SubCore, KindObserve, cause, r.Now(), 0, 5)
	tr := BuildTrace(r.Snapshot(), cause)
	var buf bytes.Buffer
	WriteTrace(&buf, tr)
	out := buf.String()
	for _, want := range []string{"1 hop(s)", "observe", "core", "seq=5", "primary"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	WriteTrace(&buf, Trace{Cause: 42})
	if !strings.Contains(buf.String(), "no events") {
		t.Fatalf("empty trace output: %s", buf.String())
	}
}

func TestWriteEventsRendering(t *testing.T) {
	var buf bytes.Buffer
	WriteEvents(&buf, sampleEvents(3))
	out := buf.String()
	if !strings.Contains(out, "subsystem") || len(strings.Split(out, "\n")) < 4 {
		t.Fatalf("events table too small:\n%s", out)
	}
}
