package events

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"mlq/internal/telemetry"
)

func fakeClock() *telemetry.FakeClock {
	c := &telemetry.FakeClock{}
	c.Set(time.Unix(1700000000, 0))
	return c
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if id := r.MintID(); id != 0 {
		t.Fatalf("nil MintID = %d, want 0", id)
	}
	if now := r.Now(); now != 0 {
		t.Fatalf("nil Now = %d, want 0", now)
	}
	r.Emit(SubCore, KindObserve, 1, 2, 3)
	r.EmitHop(SubReplica, KindApply, 1, 1, 0, 2)
	r.Trigger("nothing")
	r.Instrument(nil)
	if evts := r.Snapshot(); evts != nil {
		t.Fatalf("nil Snapshot = %v, want nil", evts)
	}
	if n := r.DumpErrors(); n != 0 {
		t.Fatalf("nil DumpErrors = %d, want 0", n)
	}
	if err := r.DumpTo(nil, "x"); err != nil {
		t.Fatalf("nil DumpTo: %v", err)
	}
}

func TestMintIDSeededDeterministic(t *testing.T) {
	a := New(Config{Clock: fakeClock(), Seed: 42})
	b := New(Config{Clock: fakeClock(), Seed: 42})
	c := New(Config{Clock: fakeClock(), Seed: 43})
	seen := map[uint64]bool{}
	var diverged bool
	for i := 0; i < 1000; i++ {
		ida, idb, idc := a.MintID(), b.MintID(), c.MintID()
		if ida != idb {
			t.Fatalf("mint %d: same seed diverged: %x vs %x", i, ida, idb)
		}
		if ida == 0 {
			t.Fatalf("mint %d: minted the reserved zero ID", i)
		}
		if seen[ida] {
			t.Fatalf("mint %d: duplicate ID %x", i, ida)
		}
		seen[ida] = true
		if ida != idc {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds minted identical streams")
	}
}

func TestEmitAndSnapshotOrdering(t *testing.T) {
	clk := fakeClock()
	r := New(Config{Clock: clk, RingSize: 16})
	r.Emit(SubCore, KindObserve, 7, 1, 0)
	clk.Advance(time.Millisecond)
	r.Emit(SubJournal, KindJournalAppend, 7, 1, 0)
	clk.Advance(time.Millisecond)
	r.Emit(SubReplica, KindApply, 7, 1, 0)

	evts := r.Snapshot()
	if len(evts) != 3 {
		t.Fatalf("snapshot has %d events, want 3", len(evts))
	}
	for i, want := range []Kind{KindObserve, KindJournalAppend, KindApply} {
		if evts[i].Kind != want {
			t.Fatalf("event %d kind = %v, want %v", i, evts[i].Kind, want)
		}
		if i > 0 && evts[i].LC <= evts[i-1].LC {
			t.Fatalf("logical clock not increasing: %d then %d", evts[i-1].LC, evts[i].LC)
		}
	}
	if evts[2].TS-evts[0].TS != int64(2*time.Millisecond) {
		t.Fatalf("timestamps span %dns, want 2ms", evts[2].TS-evts[0].TS)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := New(Config{Clock: fakeClock(), RingSize: 8})
	for i := uint64(1); i <= 20; i++ {
		r.Emit(SubCore, KindObserve, 0, i, 0)
	}
	evts := r.Snapshot()
	if len(evts) != 8 {
		t.Fatalf("snapshot has %d events, want ring size 8", len(evts))
	}
	for i, e := range evts {
		if want := uint64(13 + i); e.A != want {
			t.Fatalf("event %d A = %d, want %d (newest 8 retained)", i, e.A, want)
		}
	}
}

func TestEmitHopLag(t *testing.T) {
	clk := fakeClock()
	r := New(Config{Clock: clk, RingSize: 16})
	cause := r.MintID()
	mint := r.Now()
	clk.Advance(3 * time.Millisecond)
	r.EmitHop(SubReplica, KindApply, cause, mint, 2, 9)

	evts := r.Snapshot()
	if len(evts) != 1 {
		t.Fatalf("snapshot has %d events, want 1", len(evts))
	}
	e := evts[0]
	if e.Lag != int64(3*time.Millisecond) {
		t.Fatalf("lag = %dns, want 3ms", e.Lag)
	}
	if e.Actor != 2 || e.A != 9 || e.Cause != cause {
		t.Fatalf("hop fields = actor %d a %d cause %x", e.Actor, e.A, e.Cause)
	}

	// Unknown mint time (journal-recovered records): no lag recorded.
	r.EmitHop(SubReplica, KindApply, cause, 0, 2, 10)
	evts = r.Snapshot()
	if evts[1].Lag != 0 {
		t.Fatalf("lag with unknown mint = %d, want 0", evts[1].Lag)
	}
}

func promDump(t *testing.T, reg *telemetry.Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.Bytes()
}

func containsLine(prom []byte, line string) bool {
	for _, l := range strings.Split(string(prom), "\n") {
		if l == line {
			return true
		}
	}
	return false
}

func TestInstrumentCountersAndHistograms(t *testing.T) {
	clk := fakeClock()
	reg := telemetry.New()
	r := New(Config{Clock: clk, RingSize: 4})
	r.Instrument(reg)

	cause := r.MintID()
	mint := r.Now()
	clk.Advance(time.Millisecond)
	for i := 0; i < 6; i++ { // 4-slot ring: 2 overwrites
		r.EmitHop(SubCore, KindObserve, cause, mint, 0, uint64(i+1))
	}
	prom := promDump(t, reg)
	for _, want := range []string{
		"mlq_events_emitted_total 6",
		"mlq_events_dropped_total 2",
		`mlq_events_hop_lag_seconds_count{hop="observe"} 6`,
	} {
		if !containsLine(prom, want) {
			t.Fatalf("exposition missing %q:\n%s", want, prom)
		}
	}

	r.Instrument(nil) // uninstall: emission keeps working
	r.Emit(SubCore, KindObserve, 0, 0, 0)
}

func TestConcurrentEmitRaceClean(t *testing.T) {
	r := New(Config{Clock: fakeClock(), RingSize: 64})
	reg := telemetry.New()
	r.Instrument(reg)
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: exercises torn-slot skipping
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, e := range r.Snapshot() {
					if e.LC == 0 {
						t.Error("snapshot returned an uncommitted slot")
						return
					}
					// A committed slot must be internally consistent:
					// the A payload encodes the worker, B the iteration.
					if e.A >= workers || e.B >= perWorker {
						t.Errorf("torn event: A=%d B=%d", e.A, e.B)
						return
					}
				}
			}
		}
	}()
	var work sync.WaitGroup
	for w := 0; w < workers; w++ {
		work.Add(1)
		go func(w int) {
			defer work.Done()
			for i := 0; i < perWorker; i++ {
				r.Emit(Subsystem(w%int(NumSubsystems)), KindObserve, r.MintID(), uint64(w), uint64(i))
			}
		}(w)
	}
	work.Wait()
	close(stop)
	wg.Wait()

	evts := r.Snapshot()
	seen := map[uint64]bool{}
	for _, e := range evts {
		if seen[e.LC] {
			t.Fatalf("duplicate logical clock %d", e.LC)
		}
		seen[e.LC] = true
	}
}

func TestSubsystemAndKindStrings(t *testing.T) {
	for s := Subsystem(0); s < NumSubsystems; s++ {
		if s.String() == "" || s.String()[0] == 'S' {
			t.Fatalf("Subsystem(%d) has no name: %q", s, s.String())
		}
	}
	for k := KindNone; k <= KindResize; k++ {
		if k.String() == "" || k.String()[0] == 'K' {
			t.Fatalf("Kind(%d) has no name: %q", k, k.String())
		}
	}
}
