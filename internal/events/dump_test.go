package events

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func sampleEvents(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{
			LC:    uint64(i + 1),
			TS:    int64(1700000000e9) + int64(i)*int64(time.Millisecond),
			Cause: uint64(0xabc0 + i),
			Sub:   Subsystem(i % int(NumSubsystems)),
			Kind:  Kind(1 + i%int(KindMark)),
			Actor: uint16(i % 3),
			A:     uint64(i * 10),
			B:     uint64(i * 100),
			Lag:   int64(i) * int64(time.Microsecond),
		}
	}
	return out
}

func TestDumpRoundTrip(t *testing.T) {
	evts := sampleEvents(25)
	var buf bytes.Buffer
	meta := DumpMeta{Seq: 3, Reason: "failover"}
	if err := WriteDump(&buf, meta, evts); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	got, gotEvts, crcErrs, err := ReadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if crcErrs != 0 {
		t.Fatalf("crcErrors = %d, want 0", crcErrs)
	}
	if got != meta {
		t.Fatalf("meta = %+v, want %+v", got, meta)
	}
	if len(gotEvts) != len(evts) {
		t.Fatalf("decoded %d events, want %d", len(gotEvts), len(evts))
	}
	for i := range evts {
		if gotEvts[i] != evts[i] {
			t.Fatalf("event %d = %+v, want %+v", i, gotEvts[i], evts[i])
		}
	}
}

func TestDumpBadMagicAndVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDump(&buf, DumpMeta{Seq: 1}, nil); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	bad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(bad[0:], 0xdeadbeef)
	if _, _, _, err := ReadDump(bytes.NewReader(bad)); !errors.Is(err, ErrDumpMagic) {
		t.Fatalf("bad magic error = %v, want ErrDumpMagic", err)
	}

	bad = append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(bad[4:], 99)
	if _, _, _, err := ReadDump(bytes.NewReader(bad)); !errors.Is(err, ErrDumpVersion) {
		t.Fatalf("bad version error = %v, want ErrDumpVersion", err)
	}
}

func TestDumpCorruptFrameCountedNotFatal(t *testing.T) {
	evts := sampleEvents(5)
	var buf bytes.Buffer
	if err := WriteDump(&buf, DumpMeta{Seq: 1, Reason: "x"}, evts); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one byte inside the third event's payload (header 8, meta frame
	// 8+8+1, then two full event frames).
	metaFrame := 8 + 8 + 1
	evtFrame := 8 + eventFrameSize
	off := 8 + metaFrame + 2*evtFrame + 8 + 10
	raw[off] ^= 0xff

	meta, got, crcErrs, err := ReadDump(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if meta.Reason != "x" {
		t.Fatalf("meta reason = %q", meta.Reason)
	}
	if crcErrs != 1 {
		t.Fatalf("crcErrors = %d, want 1", crcErrs)
	}
	if len(got) != 4 {
		t.Fatalf("decoded %d events, want 4 (one corrupt frame skipped)", len(got))
	}
	// Framing is length-prefixed: the frames after the corrupt one survive.
	if got[2].LC != evts[3].LC || got[3].LC != evts[4].LC {
		t.Fatalf("post-corruption frames wrong: %d, %d", got[2].LC, got[3].LC)
	}
}

func TestDumpTruncatedTailKeepsPrefix(t *testing.T) {
	evts := sampleEvents(4)
	var buf bytes.Buffer
	if err := WriteDump(&buf, DumpMeta{Seq: 1}, evts); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-10] // tear mid-frame

	_, got, crcErrs, err := ReadDump(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadDump on torn file: %v", err)
	}
	if crcErrs != 1 {
		t.Fatalf("crcErrors = %d, want 1 (the torn tail)", crcErrs)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d events, want the 3 intact ones", len(got))
	}
}

func TestTriggerWritesDecodableDump(t *testing.T) {
	dir := t.TempDir()
	clk := fakeClock()
	r := New(Config{Clock: clk, RingSize: 32, DumpDir: dir, MaxDumps: 2, Seed: 7})

	cause := r.MintID()
	mint := r.Now()
	r.EmitHop(SubCore, KindObserve, cause, mint, 0, 1)
	clk.Advance(time.Millisecond)
	r.EmitHop(SubJournal, KindJournalAppend, cause, mint, 0, 1)
	r.Trigger("breaker open!")

	files, err := filepath.Glob(filepath.Join(dir, "blackbox-*.mlqbb"))
	if err != nil || len(files) != 1 {
		t.Fatalf("dump files = %v (err %v), want exactly one", files, err)
	}
	if want := filepath.Join(dir, "blackbox-001-breaker-open-.mlqbb"); files[0] != want {
		t.Fatalf("dump name = %s, want %s", files[0], want)
	}
	meta, evts, crcErrs, err := ReadDumpFile(files[0])
	if err != nil || crcErrs != 0 {
		t.Fatalf("decode: err %v, crcErrors %d", err, crcErrs)
	}
	if meta.Seq != 1 || meta.Reason != "breaker open!" {
		t.Fatalf("meta = %+v", meta)
	}
	// The dump holds the two hops plus the trigger marker itself.
	if len(evts) != 3 {
		t.Fatalf("dump has %d events, want 3", len(evts))
	}
	if evts[2].Kind != KindTrigger {
		t.Fatalf("last event kind = %v, want trigger", evts[2].Kind)
	}

	// Budget: MaxDumps caps automatic files, triggers past it still count.
	r.Trigger("again")
	r.Trigger("past budget")
	files, _ = filepath.Glob(filepath.Join(dir, "blackbox-*.mlqbb"))
	if len(files) != 2 {
		t.Fatalf("dump files after budget = %d, want 2", len(files))
	}
}

func TestTriggerWithoutDumpDir(t *testing.T) {
	r := New(Config{Clock: fakeClock(), RingSize: 8})
	r.Trigger("no dir configured")
	if n := r.DumpErrors(); n != 0 {
		t.Fatalf("DumpErrors = %d, want 0", n)
	}
	evts := r.Snapshot()
	if len(evts) != 1 || evts[0].Kind != KindTrigger {
		t.Fatalf("trigger event missing: %+v", evts)
	}
}

func TestTriggerDumpErrorCounted(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(Config{Clock: fakeClock(), RingSize: 8, DumpDir: filepath.Join(bad, "sub")})
	r.Trigger("doomed")
	if n := r.DumpErrors(); n != 1 {
		t.Fatalf("DumpErrors = %d, want 1", n)
	}
}

func TestDumpToExplicitExport(t *testing.T) {
	r := New(Config{Clock: fakeClock(), RingSize: 8})
	r.Emit(SubHarness, KindMark, 0, 1, 0)
	var buf bytes.Buffer
	if err := r.DumpTo(&buf, "final"); err != nil {
		t.Fatalf("DumpTo: %v", err)
	}
	meta, evts, crcErrs, err := ReadDump(&buf)
	if err != nil || crcErrs != 0 {
		t.Fatalf("decode: %v / %d", err, crcErrs)
	}
	if meta.Reason != "final" || len(evts) != 1 {
		t.Fatalf("meta %+v, %d events", meta, len(evts))
	}
}
