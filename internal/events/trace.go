// Trace reconstruction: given the spine's events (live snapshot or decoded
// dump), rebuild one observation's end-to-end journey from its causal ID.
package events

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Hop is one step of a reconstructed journey.
type Hop struct {
	Event Event
	// Step is the time since the previous hop in the trace (0 for the
	// first); Event.Lag carries the cumulative lag since mint when the
	// emitting site knew it.
	Step time.Duration
}

// Trace is one causal ID's reconstructed journey.
type Trace struct {
	Cause uint64
	Hops  []Hop
}

// epochKinds marks the join-only hop: epoch publishes cover whole batches,
// so they carry cause 0 and are attached to a trace by watermark instead.
func isEpochPublish(e Event) bool { return e.Kind == KindEpochPublish }

// BuildTrace filters evts (any order) down to the journey of cause: every
// event stamped with the ID, ordered by logical clock, plus — per actor that
// applied or accepted the record — the first epoch publish whose sequence
// watermark covers the record's sequence, which is the moment the
// observation became visible to readers on that replica. Returns the
// zero Trace (no hops) when the ID appears nowhere.
func BuildTrace(evts []Event, cause uint64) Trace {
	tr := Trace{Cause: cause}
	if cause == 0 {
		return tr
	}
	// seqByActor: the record's sequence as seen by each actor, taken from
	// the stamped hops (A carries the sequence on observe/journal/
	// send/recv/apply events).
	seqByActor := map[uint16]uint64{}
	lastLCByActor := map[uint16]uint64{}
	var hops []Event
	for _, e := range evts {
		if e.Cause != cause {
			continue
		}
		hops = append(hops, e)
		if e.A > 0 {
			seqByActor[e.Actor] = e.A
			if e.LC > lastLCByActor[e.Actor] {
				lastLCByActor[e.Actor] = e.LC
			}
		}
	}
	if len(hops) == 0 {
		return tr
	}
	// Join the epoch-publish hop per actor: the earliest publish after the
	// actor's last stamped hop whose watermark (B) covers the sequence.
	joined := map[uint16]bool{}
	sorted := append([]Event(nil), evts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].LC < sorted[j].LC })
	for _, e := range sorted {
		if !isEpochPublish(e) || joined[e.Actor] {
			continue
		}
		seq, ok := seqByActor[e.Actor]
		if !ok || e.B < seq || e.LC <= lastLCByActor[e.Actor] {
			continue
		}
		joined[e.Actor] = true
		hops = append(hops, e)
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i].LC < hops[j].LC })
	tr.Hops = make([]Hop, len(hops))
	for i, e := range hops {
		var step time.Duration
		if i > 0 && e.TS > hops[i-1].TS {
			step = time.Duration(e.TS - hops[i-1].TS)
		}
		tr.Hops[i] = Hop{Event: e, Step: step}
	}
	return tr
}

// Causes lists every distinct nonzero causal ID in evts, ordered by the
// logical clock of its first appearance — what `mlqtool trace` prints when
// invoked without an ID.
func Causes(evts []Event) []uint64 {
	firstLC := map[uint64]uint64{}
	for _, e := range evts {
		if e.Cause == 0 {
			continue
		}
		if lc, ok := firstLC[e.Cause]; !ok || e.LC < lc {
			firstLC[e.Cause] = e.LC
		}
	}
	out := make([]uint64, 0, len(firstLC))
	for c := range firstLC {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return firstLC[out[i]] < firstLC[out[j]] })
	return out
}

// actorName renders the event's actor for humans: replicas are stored as
// index+1 so that 0 can mean "the primary publisher / not a replica".
func actorName(a uint16) string {
	if a == 0 {
		return "primary"
	}
	return fmt.Sprintf("r%d", a-1)
}

// WriteTrace renders tr as the table `mlqtool trace` prints: one row per
// hop with the subsystem, kind, actor, payload and both lag figures.
func WriteTrace(w io.Writer, tr Trace) {
	if len(tr.Hops) == 0 {
		fmt.Fprintf(w, "cause %016x: no events\n", tr.Cause)
		return
	}
	fmt.Fprintf(w, "cause %016x: %d hop(s)\n", tr.Cause, len(tr.Hops))
	fmt.Fprintf(w, "  %-4s %-12s %-14s %-8s %12s %12s  %s\n",
		"lc", "subsystem", "hop", "actor", "step", "since-mint", "detail")
	for _, h := range tr.Hops {
		e := h.Event
		sinceMint := "-"
		if e.Lag > 0 {
			sinceMint = time.Duration(e.Lag).String()
		}
		step := "-"
		if h.Step > 0 {
			step = h.Step.String()
		}
		detail := ""
		switch e.Kind {
		case KindObserve, KindJournalAppend, KindSend, KindRecv, KindApply:
			detail = fmt.Sprintf("seq=%d", e.A)
		case KindEpochPublish:
			detail = fmt.Sprintf("epoch=%d watermark=%d", e.A, e.B)
		}
		fmt.Fprintf(w, "  %-4d %-12s %-14s %-8s %12s %12s  %s\n",
			e.LC, e.Sub, e.Kind, actorName(e.Actor), step, sinceMint, detail)
	}
}

// WriteEvents renders evts as the flat table `mlqtool blackbox` prints.
func WriteEvents(w io.Writer, evts []Event) {
	fmt.Fprintf(w, "  %-6s %-12s %-16s %-8s %-18s %12s %12s\n",
		"lc", "subsystem", "kind", "actor", "cause", "a", "b")
	for _, e := range evts {
		cause := "-"
		if e.Cause != 0 {
			cause = fmt.Sprintf("%016x", e.Cause)
		}
		fmt.Fprintf(w, "  %-6d %-12s %-16s %-8s %-18s %12d %12d\n",
			e.LC, e.Sub, e.Kind, actorName(e.Actor), cause, e.A, e.B)
	}
}
