// Package workload streams UDF executions against a cost surface: each query
// is a point drawn from one of the paper's query distributions together with
// the observed (possibly noisy) cost and the noise-free ground-truth cost.
// It also collects a-priori training sets for the static SH baselines — the
// paper trains SH "with a set of queries that has the same distribution as
// the set of queries used for testing" (§5.1).
package workload

import (
	"fmt"

	"mlq/internal/dist"
	"mlq/internal/geom"
	"mlq/internal/histogram"
	"mlq/internal/synthetic"
)

// Query is one simulated UDF execution.
type Query struct {
	// Point is the location in model-variable space.
	Point geom.Point
	// Observed is the cost the execution engine measured; it is what the
	// model receives as feedback and may include noise.
	Observed float64
	// True is the noise-free ground-truth cost used for scoring.
	True float64
}

// trueCoster is implemented by cost functions (synthetic.Noisy) that can
// reveal their uncorrupted value for scoring.
type trueCoster interface {
	TrueCost(geom.Point) float64
}

// Stream produces a fixed-length sequence of queries.
type Stream struct {
	src  dist.PointSource
	cost synthetic.CostFunc
	n    int
	i    int
}

// New returns a stream of n queries drawn from src against the cost surface.
func New(src dist.PointSource, cost synthetic.CostFunc, n int) (*Stream, error) {
	if src == nil || cost == nil {
		return nil, fmt.Errorf("workload: source and cost function are required")
	}
	if n < 0 {
		return nil, fmt.Errorf("workload: n must be >= 0, got %d", n)
	}
	return &Stream{src: src, cost: cost, n: n}, nil
}

// Next returns the next query; ok is false once the stream is exhausted.
func (s *Stream) Next() (q Query, ok bool) {
	if s.i >= s.n {
		return Query{}, false
	}
	s.i++
	p := s.src.Next()
	q = Query{Point: p, Observed: s.cost.Cost(p)}
	if tc, isNoisy := s.cost.(trueCoster); isNoisy {
		q.True = tc.TrueCost(p)
	} else {
		q.True = q.Observed
	}
	return q, true
}

// Remaining returns how many queries are left.
func (s *Stream) Remaining() int { return s.n - s.i }

// Len returns the stream's total length.
func (s *Stream) Len() int { return s.n }

// CollectSamples draws n training samples from src against the cost surface,
// in the format the histogram baselines train on. Samples carry the observed
// (noisy) cost, exactly like the feedback MLQ receives.
func CollectSamples(src dist.PointSource, cost synthetic.CostFunc, n int) []histogram.Sample {
	out := make([]histogram.Sample, 0, n)
	for i := 0; i < n; i++ {
		p := src.Next()
		out = append(out, histogram.Sample{Point: p, Value: cost.Cost(p)})
	}
	return out
}

// Concat chains point sources one after another, switching to the next
// source after its quota of queries. It models a workload whose distribution
// shifts over time — the scenario where self-tuning models shine and static
// ones degrade (§1).
type Concat struct {
	srcs   []dist.PointSource
	quotas []int
	cur    int
	used   int
}

// NewConcat builds a chained source. Each source i serves quotas[i] queries;
// the final source also serves any overflow.
func NewConcat(srcs []dist.PointSource, quotas []int) (*Concat, error) {
	if len(srcs) == 0 || len(srcs) != len(quotas) {
		return nil, fmt.Errorf("workload: need equal, non-zero numbers of sources and quotas (got %d, %d)", len(srcs), len(quotas))
	}
	for i, q := range quotas {
		if q <= 0 {
			return nil, fmt.Errorf("workload: quota %d must be > 0, got %d", i, q)
		}
	}
	return &Concat{srcs: srcs, quotas: quotas}, nil
}

// Next implements dist.PointSource.
func (c *Concat) Next() geom.Point {
	for c.cur < len(c.srcs)-1 && c.used >= c.quotas[c.cur] {
		c.cur++
		c.used = 0
	}
	c.used++
	return c.srcs[c.cur].Next()
}

// Name implements dist.PointSource.
func (c *Concat) Name() string {
	return fmt.Sprintf("CONCAT(%s)", c.srcs[c.cur].Name())
}

var _ dist.PointSource = (*Concat)(nil)
