package workload

import (
	"testing"

	"mlq/internal/dist"
	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/synthetic"
)

func testSurface(t *testing.T) *synthetic.Surface {
	t.Helper()
	s, err := synthetic.Generate(synthetic.Config{Seed: 1, NumPeaks: 10})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	s := testSurface(t)
	src := dist.NewUniform(s.Region(), 1)
	if _, err := New(nil, s, 10); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New(src, nil, 10); err == nil {
		t.Error("nil cost accepted")
	}
	if _, err := New(src, s, -1); err == nil {
		t.Error("negative n accepted")
	}
}

func TestStreamLength(t *testing.T) {
	s := testSurface(t)
	st, err := New(dist.NewUniform(s.Region(), 2), s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 100 || st.Remaining() != 100 {
		t.Errorf("Len=%d Remaining=%d", st.Len(), st.Remaining())
	}
	count := 0
	for {
		q, ok := st.Next()
		if !ok {
			break
		}
		count++
		if q.Observed != q.True {
			t.Error("noise-free stream must have Observed == True")
		}
		if !s.Region().Contains(q.Point) {
			t.Errorf("query point %v outside region", q.Point)
		}
	}
	if count != 100 {
		t.Errorf("drained %d queries, want 100", count)
	}
	if st.Remaining() != 0 {
		t.Errorf("Remaining = %d after drain", st.Remaining())
	}
	if _, ok := st.Next(); ok {
		t.Error("exhausted stream yielded a query")
	}
}

func TestStreamExposesTrueCostUnderNoise(t *testing.T) {
	s := testSurface(t)
	noisy, err := synthetic.NewNoisy(s, 1, 3) // always corrupt
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(dist.NewUniform(s.Region(), 2), noisy, 200)
	if err != nil {
		t.Fatal(err)
	}
	diffs, nonzero := 0, 0
	for {
		q, ok := st.Next()
		if !ok {
			break
		}
		if q.True != s.Cost(q.Point) {
			t.Fatal("True must be the uncorrupted surface cost")
		}
		if q.True == 0 {
			continue // scale-preserving noise cannot corrupt zero costs
		}
		nonzero++
		if q.Observed != q.True {
			diffs++
		}
	}
	if nonzero == 0 {
		t.Fatal("workload never hit a nonzero-cost region")
	}
	if diffs < nonzero*9/10 {
		t.Errorf("only %d/%d nonzero observations corrupted at p=1", diffs, nonzero)
	}
}

func TestCollectSamples(t *testing.T) {
	s := testSurface(t)
	samples := CollectSamples(dist.NewUniform(s.Region(), 4), s, 50)
	if len(samples) != 50 {
		t.Fatalf("got %d samples", len(samples))
	}
	for _, smp := range samples {
		if smp.Value != s.Cost(smp.Point) {
			t.Fatal("sample value does not match surface")
		}
	}
}

func TestConcatValidation(t *testing.T) {
	s := testSurface(t)
	u := dist.NewUniform(s.Region(), 1)
	if _, err := NewConcat(nil, nil); err == nil {
		t.Error("empty concat accepted")
	}
	if _, err := NewConcat([]dist.PointSource{u}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewConcat([]dist.PointSource{u}, []int{0}); err == nil {
		t.Error("zero quota accepted")
	}
}

func TestConcatSwitchesSources(t *testing.T) {
	// Two "sources" pinned to opposite corners via tiny Gaussian spread.
	region := geomtest.MustRect(geom.Point{0, 0}, geom.Point{100, 100})
	a, _ := dist.NewGaussianRandom(region, 1, 1e-9, 1)
	b, _ := dist.NewGaussianRandom(region, 1, 1e-9, 2)
	c, err := NewConcat([]dist.PointSource{a, b}, []int{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	first := c.Next()
	for i := 0; i < 4; i++ {
		p := c.Next()
		if geom.Dist(p, first) > 1e-3 {
			t.Fatal("first batch not from first source")
		}
	}
	sixth := c.Next()
	if geom.Dist(sixth, first) < 1e-3 {
		t.Error("concat did not switch sources after quota")
	}
	// Overflow beyond all quotas keeps using the last source.
	for i := 0; i < 10; i++ {
		p := c.Next()
		if geom.Dist(p, sixth) > 1e-3 {
			t.Fatal("overflow queries not from last source")
		}
	}
	if c.Name() == "" {
		t.Error("Name must be non-empty")
	}
}
