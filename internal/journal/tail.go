package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
)

// ErrNoRecord reports that the stream holds no complete, valid record at the
// current position. For a tail-follow reader this is the steady state, not a
// failure: the writer may still be mid-append (a frame header without its
// payload, a payload without its final bytes, a CRC that does not match the
// bytes written so far), so the reader keeps its position and asks again
// after the tail grows. Permanent damage is indistinguishable from an
// in-progress append by looking at the bytes alone; callers that know the
// journal is quiescent (a crash recovery, a post-barrier catch-up) treat a
// persistent ErrNoRecord as the end of the valid prefix — exactly Replay's
// torn-tail semantics, delivered incrementally.
var ErrNoRecord = fmt.Errorf("journal: no complete record at the tail")

// ErrRotated reports a TailReader whose underlying file was replaced by a
// checkpoint (Reset) after the reader opened it. The reader's inode is
// frozen; the caller reopens at the path to follow the new journal, after
// deciding what the rotation means (for replica catch-up: the records it was
// streaming are now covered by a durable checkpoint).
var ErrRotated = fmt.Errorf("journal: file was rotated by a checkpoint")

// TailDecoder incrementally decodes the record stream of a journal,
// byte-chunk by byte-chunk, with the same framing discipline as Replay: it
// emits exactly the valid record prefix and never advances past a frame that
// is incomplete or damaged. Feed it bytes in any fragmentation — it buffers
// the unconsumed tail. The zero value expects the stream to begin with the
// journal header; a decoder for a headerless record stream is not provided
// (a journal always has one).
type TailDecoder struct {
	buf       []byte
	headerOK  bool
	headerErr error
	records   int
}

// Feed appends bytes to the undecoded tail.
func (d *TailDecoder) Feed(p []byte) { d.buf = append(d.buf, p...) }

// Records returns how many records the decoder has emitted.
func (d *TailDecoder) Records() int { return d.records }

// Buffered returns how many undecoded bytes the decoder is holding.
func (d *TailDecoder) Buffered() int { return len(d.buf) }

// Next decodes the next record from the buffered bytes. It returns
// ErrNoRecord when the buffer does not (yet) hold one complete valid frame —
// feed more bytes and retry. A header that was never a journal's is a
// permanent error, returned on this and every later call.
func (d *TailDecoder) Next() (Record, error) {
	if d.headerErr != nil {
		return Record{}, d.headerErr
	}
	if !d.headerOK {
		if len(d.buf) < headerSize {
			return Record{}, ErrNoRecord
		}
		if m := binary.LittleEndian.Uint32(d.buf[0:4]); m != magic {
			d.headerErr = fmt.Errorf("journal: bad magic %#x", m)
			return Record{}, d.headerErr
		}
		if v := binary.LittleEndian.Uint32(d.buf[4:8]); v != version {
			d.headerErr = fmt.Errorf("journal: unsupported version %d", v)
			return Record{}, d.headerErr
		}
		d.buf = d.buf[headerSize:]
		d.headerOK = true
	}
	if len(d.buf) < 8 {
		return Record{}, ErrNoRecord
	}
	size := binary.LittleEndian.Uint32(d.buf[0:4])
	sum := binary.LittleEndian.Uint32(d.buf[4:8])
	if size < 1+8+8 || size > uint32(recordSize(MaxDims)-8) {
		// An implausible frame size can never complete into a valid record;
		// but it is also what a torn frame header looks like mid-write, so
		// the decoder holds position rather than condemning the stream.
		return Record{}, ErrNoRecord
	}
	if int(size) > len(d.buf)-8 {
		return Record{}, ErrNoRecord
	}
	payload := d.buf[8 : 8+size]
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, ErrNoRecord
	}
	dims := int(payload[0])
	if dims == 0 || uint32(1+8*dims+8) != size {
		return Record{}, ErrNoRecord
	}
	rec := Record{Point: make([]float64, dims)}
	for i := 0; i < dims; i++ {
		rec.Point[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[1+8*i:]))
	}
	rec.Value = math.Float64frombits(binary.LittleEndian.Uint64(payload[1+8*dims:]))
	d.buf = d.buf[8+size:]
	d.records++
	return rec, nil
}

// TailReader streams records from a journal file as they are appended: a
// follower replica (or any log consumer) opens the primary's journal and
// calls Next repeatedly, getting ErrNoRecord whenever it has consumed
// everything durable so far. The reader holds its own file descriptor, so it
// never perturbs the writer; a checkpoint (Reset) rotates the file under the
// path, which Next reports as ErrRotated once the frozen old inode is fully
// consumed.
type TailReader struct {
	f    *os.File
	path string
	dec  TailDecoder
	rbuf []byte
}

// OpenTail opens a tail-follow reader on the journal at path.
func OpenTail(path string) (*TailReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: opening %s for tailing: %w", path, err)
	}
	return &TailReader{f: f, path: path, rbuf: make([]byte, 32*1024)}, nil
}

// Close releases the reader's file descriptor.
func (t *TailReader) Close() error { return t.f.Close() }

// Rotated reports whether the path no longer names the inode this reader is
// consuming — i.e. a checkpoint replaced the journal after OpenTail.
func (t *TailReader) Rotated() bool {
	cur, err := os.Stat(t.path)
	if err != nil {
		return true // the path is gone entirely; the inode is certainly stale
	}
	mine, err := t.f.Stat()
	if err != nil {
		return true
	}
	return !os.SameFile(cur, mine)
}

// Next returns the next record. ErrNoRecord means the reader has consumed
// every complete record written so far — retry after the journal grows.
// ErrRotated means the file was checkpointed away and its frozen tail is
// fully consumed: reopen at the path to follow the successor journal.
func (t *TailReader) Next() (Record, error) {
	if rec, err := t.dec.Next(); err == nil {
		return rec, nil
	} else if err != ErrNoRecord {
		return Record{}, err
	}
	// Buffer exhausted: pull whatever the file has grown by.
	grew := false
	for {
		n, err := t.f.Read(t.rbuf)
		if n > 0 {
			t.dec.Feed(t.rbuf[:n])
			grew = true
		}
		if err != nil || n == 0 {
			break // EOF or a read error: decode what we have
		}
	}
	if grew {
		if rec, err := t.dec.Next(); err == nil {
			return rec, nil
		} else if err != ErrNoRecord {
			return Record{}, err
		}
	}
	if t.Rotated() {
		return Record{}, ErrRotated
	}
	return Record{}, ErrNoRecord
}

// SkipRecords consumes and discards n records, positioning the reader for a
// suffix read (replica catch-up skips the records it already applied). It
// returns how many records were actually skipped — fewer than n when the
// journal does not (yet) hold that many.
func (t *TailReader) SkipRecords(n int) (int, error) {
	skipped := 0
	for skipped < n {
		_, err := t.Next()
		if err == ErrNoRecord || err == ErrRotated {
			return skipped, err
		}
		if err != nil {
			return skipped, err
		}
		skipped++
	}
	return skipped, nil
}
