// Package journal is a bounded, CRC-framed, append-only observation journal:
// the crash-safety net under an asynchronous feedback loop. A core.Publisher
// acknowledges an observation as soon as it is queued, long before the writer
// goroutine folds it into a published (let alone persisted) snapshot — so a
// crash between acknowledgement and the next catalog save would silently lose
// learning. The journal closes that window: every accepted observation is
// appended here first, the file is truncated at each checkpoint (after the
// model state it covers has been made durable), and on restart Replay
// recovers the tail of observations the last save missed.
//
// The on-disk format reuses the catalog's framing discipline (magic + version
// header, then self-describing CRC32-checked records) so damage is contained:
// a torn tail or a flipped bit costs the damaged record and everything after
// it, never the valid prefix — Replay returns what survived and how much was
// cut, and it never fails on damage alone.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"syscall"

	"mlq/internal/events"
)

const (
	magic   = 0x4d4c514a // "MLQJ"
	version = 1

	headerSize = 8

	// MaxDims bounds one record's point dimensionality; anything larger in a
	// stream is damage, not data.
	MaxDims = 255
	// DefaultMaxRecords bounds the journal when Create is given no limit.
	DefaultMaxRecords = 1 << 16
)

// ErrFull reports an Append refused because the journal holds MaxRecords
// records. The caller's remedy is a checkpoint (persist the model, then
// Reset); callers that cannot checkpoint degrade to unjournaled operation and
// should count the refusals.
var ErrFull = fmt.Errorf("journal: record limit reached (checkpoint and Reset to continue)")

// Record is one journaled observation: the model point and the observed cost.
type Record struct {
	Point []float64
	Value float64
}

// recordSize returns the framed size of a record with the given
// dimensionality: u32 length + u32 CRC + u8 dims + point + value.
func recordSize(dims int) int { return 4 + 4 + 1 + 8*dims + 8 }

// Journal is an open journal file accepting appends. It is not safe for
// concurrent use; the Publisher serializes appends on its Observe path.
type Journal struct {
	f       *os.File
	path    string
	records int
	max     int
	sync    bool
	ev      *events.Recorder
}

// Option configures Create.
type Option func(*Journal)

// WithMaxRecords bounds the journal at n records (default DefaultMaxRecords).
func WithMaxRecords(n int) Option {
	return func(j *Journal) {
		if n > 0 {
			j.max = n
		}
	}
}

// WithEvents attaches the causal event spine: each successful Reset emits a
// journal-reset event carrying the number of records the checkpoint dropped.
// Append-level hops stay with the Publisher, which knows each observation's
// causal ID; the journal only reports its own lifecycle.
func WithEvents(rec *events.Recorder) Option {
	return func(j *Journal) { j.ev = rec }
}

// WithSync makes every Append fsync, trading throughput for power-loss
// durability. Without it an append survives process death immediately (the
// write reaches the OS before Append returns) but a machine crash can lose
// the OS-buffered tail.
func WithSync() Option {
	return func(j *Journal) { j.sync = true }
}

// Create opens a fresh journal at path, truncating whatever was there: the
// caller replays any prior journal *before* creating the new one. The parent
// directory is fsynced so the new directory entry is durable immediately — a
// crash right after Create cannot leave a journal that appends succeeded
// against but that never existed on disk.
func Create(path string, opts ...Option) (*Journal, error) {
	j := &Journal{path: path, max: DefaultMaxRecords}
	for _, o := range opts {
		o(j)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", path, err)
	}
	j.f = f
	if err := j.writeHeader(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := syncDir(path); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return j, nil
}

// syncDir fsyncs the directory containing path, making the directory entry
// (a create, a rename) itself durable. Filesystems that refuse to fsync a
// directory opened read-only (EINVAL on some network mounts) are tolerated:
// on those the rename durability is whatever the mount provides.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("journal: opening parent dir of %s: %w", path, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("journal: syncing parent dir of %s: %w", path, err)
	}
	return nil
}

func (j *Journal) writeHeader() error {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	if _, err := j.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("journal: writing header: %w", err)
	}
	return nil
}

// Append logs one observation. The frame is issued as a single write so a
// crash tears at most the final record, which Replay's CRC then cuts.
func (j *Journal) Append(point []float64, value float64) error {
	if j.records >= j.max {
		return ErrFull
	}
	if len(point) == 0 || len(point) > MaxDims {
		return fmt.Errorf("journal: point has %d dims, want 1..%d", len(point), MaxDims)
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("journal: value must be finite, got %g", value)
	}
	payload := make([]byte, 1+8*len(point)+8)
	payload[0] = byte(len(point))
	for i, v := range point {
		binary.LittleEndian.PutUint64(payload[1+8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint64(payload[1+8*len(point):], math.Float64bits(value))
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: appending record: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: syncing append: %w", err)
		}
	}
	j.records++
	return nil
}

// Len returns the number of records appended since Create or the last Reset.
func (j *Journal) Len() int { return j.records }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Reset is the checkpoint: it replaces the journal with an empty one. Call
// it only after the model state covering the journaled observations has been
// made durable (e.g. catalog.SaveFile succeeded) — the records are
// unrecoverable afterwards.
//
// The replacement is truncate-and-recreate, not truncate-in-place: a fresh
// header-only file is written beside the journal, fsynced, renamed over the
// path, and the parent directory is fsynced. The directory fsync is the
// durability point — without it a crash immediately after a checkpoint could
// resurrect the old directory entry, replaying observations the durable
// model already contains (double-applied learning). Recreating also gives
// concurrent tail readers (journal streaming, replica catch-up) a frozen
// file: a reader holding the old inode sees a stable byte stream to its
// final record and detects the rotation via TailReader.Rotated, instead of
// racing a truncation under its read offset.
func (j *Journal) Reset() error {
	tmp := j.path + ".reset"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating %s: %w", tmp, err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: writing header to %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: syncing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: renaming %s over %s: %w", tmp, j.path, err)
	}
	if err := syncDir(j.path); err != nil {
		f.Close()
		return err
	}
	old := j.f
	j.f = f
	dropped := j.records
	j.records = 0
	// A checkpoint truncation is healthy (everything dropped is covered by
	// the durable save that preceded it), so it gets a spine event but no
	// flight-recorder dump.
	j.ev.Emit(events.SubJournal, events.KindJournalReset, 0, uint64(dropped), 0)
	if err := old.Close(); err != nil {
		return fmt.Errorf("journal: closing pre-checkpoint file of %s: %w", j.path, err)
	}
	return nil
}

// Close syncs and closes the file. The journal is left on disk: a clean
// shutdown checkpoints (Reset) first, a crash leaves the records for Replay.
func (j *Journal) Close() error {
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("journal: syncing on close: %w", err)
	}
	return j.f.Close()
}

// Replay decodes a journal stream, recovering the valid record prefix.
// Damage — a truncated tail, a flipped bit, an implausible frame — ends the
// replay at the last intact record: the prefix and the number of bytes cut
// are returned with a nil error, because a torn tail is the expected shape of
// a crash, not a failure. Only an unreadable stream or a header that was
// never a journal returns an error.
func Replay(r io.Reader) (recs []Record, truncated int64, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: reading stream: %w", err)
	}
	if len(data) < headerSize {
		return nil, 0, fmt.Errorf("journal: stream too short for header (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != magic {
		return nil, 0, fmt.Errorf("journal: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != version {
		return nil, 0, fmt.Errorf("journal: unsupported version %d", v)
	}
	rest := data[headerSize:]
	for len(rest) > 0 {
		if len(rest) < 8 {
			break // torn mid-frame-header
		}
		size := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if size < 1+8+8 || size > uint32(recordSize(MaxDims)-8) || int(size) > len(rest)-8 {
			break // implausible or torn frame
		}
		payload := rest[8 : 8+size]
		if crc32.ChecksumIEEE(payload) != sum {
			break // flipped bit
		}
		dims := int(payload[0])
		if dims == 0 || uint32(1+8*dims+8) != size {
			break // frame passed CRC but describes an impossible record
		}
		rec := Record{Point: make([]float64, dims)}
		for i := 0; i < dims; i++ {
			rec.Point[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[1+8*i:]))
		}
		rec.Value = math.Float64frombits(binary.LittleEndian.Uint64(payload[1+8*dims:]))
		recs = append(recs, rec)
		rest = rest[8+size:]
	}
	return recs, int64(len(rest)), nil
}

// ReplayFile replays the journal at path. A missing file replays empty (no
// journal simply means nothing to recover); any other open error propagates.
func ReplayFile(path string) (recs []Record, truncated int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	defer f.Close()
	return Replay(f)
}
