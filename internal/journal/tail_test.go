package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestTailReaderFollowsAppends(t *testing.T) {
	j := tmpJournal(t)
	tr, err := OpenTail(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if _, err := tr.Next(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("empty journal: got err %v, want ErrNoRecord", err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append([]float64{float64(i), 0.5}, float64(i*i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		rec, err := tr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Point[0] != float64(i) || rec.Value != float64(i*i) {
			t.Fatalf("record %d: got %+v", i, rec)
		}
	}
	if _, err := tr.Next(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("caught-up tail: got err %v, want ErrNoRecord", err)
	}
	// The tail grows; the same reader picks the new record up.
	if err := j.Append([]float64{9, 9}, 81); err != nil {
		t.Fatal(err)
	}
	rec, err := tr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Value != 81 {
		t.Fatalf("followed record: got %+v", rec)
	}
}

func TestTailReaderSkipRecords(t *testing.T) {
	j := tmpJournal(t)
	for i := 0; i < 10; i++ {
		if err := j.Append([]float64{float64(i)}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := OpenTail(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if n, err := tr.SkipRecords(7); err != nil || n != 7 {
		t.Fatalf("SkipRecords = %d, %v", n, err)
	}
	rec, err := tr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Value != 7 {
		t.Fatalf("after skip: got value %g, want 7", rec.Value)
	}
	// Skipping past the end reports how far it got and ErrNoRecord.
	if n, err := tr.SkipRecords(10); !errors.Is(err, ErrNoRecord) || n != 2 {
		t.Fatalf("over-skip = %d, %v; want 2, ErrNoRecord", n, err)
	}
}

func TestTailReaderIgnoresTornTailUntilComplete(t *testing.T) {
	j := tmpJournal(t)
	if err := j.Append([]float64{0.1}, 1); err != nil {
		t.Fatal(err)
	}
	// Write half a frame by hand: the reader must hold position, then emit
	// the record once the second half lands.
	full := filepath.Join(t.TempDir(), "frame.journal")
	j2, err := Create(full)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append([]float64{0.9}, 9); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	frame, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	frame = frame[headerSize:]

	f, err := os.OpenFile(j.Path(), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}

	tr, err := OpenTail(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if rec, err := tr.Next(); err != nil || rec.Value != 1 {
		t.Fatalf("first record: %+v, %v", rec, err)
	}
	if _, err := tr.Next(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("half frame: got err %v, want ErrNoRecord", err)
	}
	if _, err := f.Write(frame[len(frame)/2:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rec, err := tr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Value != 9 {
		t.Fatalf("completed frame: got %+v", rec)
	}
}

func TestTailReaderDetectsRotation(t *testing.T) {
	j := tmpJournal(t)
	for i := 0; i < 3; i++ {
		if err := j.Append([]float64{float64(i)}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := OpenTail(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.SkipRecords(2); err != nil {
		t.Fatal(err)
	}
	// Checkpoint rotates the file. The reader finishes the frozen inode
	// (one record left), then reports the rotation.
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	if rec, err := tr.Next(); err != nil || rec.Value != 2 {
		t.Fatalf("frozen tail after rotation: %+v, %v", rec, err)
	}
	if _, err := tr.Next(); !errors.Is(err, ErrRotated) {
		t.Fatalf("got err %v, want ErrRotated", err)
	}
	// Reopening at the path follows the successor journal.
	tr2, err := OpenTail(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if err := j.Append([]float64{5}, 5); err != nil {
		t.Fatal(err)
	}
	if rec, err := tr2.Next(); err != nil || rec.Value != 5 {
		t.Fatalf("successor journal: %+v, %v", rec, err)
	}
}

// TestCheckpointKillWindow covers the crash window immediately after a
// checkpoint: once Reset returns, the pre-checkpoint records must be gone
// from the path no matter when the process dies — a replay must see the
// empty successor journal, never a resurrected pre-checkpoint file (which
// would double-apply observations the durable model already contains).
func TestCheckpointKillWindow(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obs.journal")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := j.Append([]float64{float64(i) / 8}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	// Kill: no Close. The path must already hold the empty successor.
	recs, cut, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || cut != 0 {
		t.Fatalf("after checkpoint kill: replayed %d records (%d cut), want 0", len(recs), cut)
	}
	// No stray temp file may survive the rename.
	if _, err := os.Stat(path + ".reset"); !os.IsNotExist(err) {
		t.Fatalf("reset temp file left behind: %v", err)
	}
	// The journal keeps working after its own checkpoint: appends land in
	// the successor file and replay cleanly.
	if err := j.Append([]float64{0.5}, 42); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, cut, err = ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || cut != 0 || recs[0].Value != 42 {
		t.Fatalf("post-checkpoint appends: got %d records (%d cut) %+v", len(recs), cut, recs)
	}
}
