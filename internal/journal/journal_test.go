package journal

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func tmpJournal(t *testing.T, opts ...Option) *Journal {
	t.Helper()
	j, err := Create(filepath.Join(t.TempDir(), "obs.journal"), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestAppendReplayRoundTrip(t *testing.T) {
	j := tmpJournal(t)
	want := []Record{
		{Point: []float64{0.1, 0.2}, Value: 3},
		{Point: []float64{0.5}, Value: 0},
		{Point: []float64{0.9, 0.8, 0.7}, Value: 1e6},
	}
	for _, r := range want {
		if err := j.Append(r.Point, r.Value); err != nil {
			t.Fatal(err)
		}
	}
	if j.Len() != len(want) {
		t.Fatalf("Len %d, want %d", j.Len(), len(want))
	}
	got, cut, err := ReplayFile(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	if cut != 0 {
		t.Fatalf("clean journal reported %d truncated bytes", cut)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Value != want[i].Value || len(got[i].Point) != len(want[i].Point) {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
		for d := range want[i].Point {
			if got[i].Point[d] != want[i].Point[d] {
				t.Fatalf("record %d dim %d: got %g, want %g", i, d, got[i].Point[d], want[i].Point[d])
			}
		}
	}
}

func TestAppendValidation(t *testing.T) {
	j := tmpJournal(t)
	if err := j.Append(nil, 1); err == nil {
		t.Fatal("empty point accepted")
	}
	if err := j.Append(make([]float64, MaxDims+1), 1); err == nil {
		t.Fatal("oversized point accepted")
	}
	if err := j.Append([]float64{0.5}, math.NaN()); err == nil {
		t.Fatal("NaN value accepted")
	}
	if err := j.Append([]float64{0.5}, math.Inf(1)); err == nil {
		t.Fatal("Inf value accepted")
	}
	if j.Len() != 0 {
		t.Fatalf("rejected appends counted: Len %d", j.Len())
	}
}

func TestBoundedAppend(t *testing.T) {
	j := tmpJournal(t, WithMaxRecords(3))
	for i := 0; i < 3; i++ {
		if err := j.Append([]float64{float64(i)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append([]float64{9}, 1); !errors.Is(err, ErrFull) {
		t.Fatalf("over-limit append: err %v, want ErrFull", err)
	}
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("Len %d after Reset, want 0", j.Len())
	}
	if err := j.Append([]float64{1}, 2); err != nil {
		t.Fatalf("append after Reset: %v", err)
	}
	got, _, err := ReplayFile(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value != 2 {
		t.Fatalf("replay after Reset: %+v, want the single post-Reset record", got)
	}
}

func TestReplayTruncatedTail(t *testing.T) {
	j := tmpJournal(t)
	for i := 0; i < 5; i++ {
		if err := j.Append([]float64{float64(i) / 10, 0.5}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	// Cut the stream at every possible byte length: the replay must recover
	// exactly the records whose frames survived intact, never panic, and
	// never invent a record.
	frame := recordSize(2)
	for cut := len(data); cut >= headerSize; cut-- {
		got, _, err := Replay(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantRecs := (cut - headerSize) / frame
		if len(got) != wantRecs {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), wantRecs)
		}
		for i, r := range got {
			if r.Value != float64(i) {
				t.Fatalf("cut %d: record %d has value %g, want %d", cut, i, r.Value, i)
			}
		}
	}
}

func TestReplayBitFlip(t *testing.T) {
	j := tmpJournal(t)
	for i := 0; i < 4; i++ {
		if err := j.Append([]float64{0.5}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the third record's payload: replay keeps the two
	// records before it and cuts the rest.
	off := headerSize + 2*recordSize(1) + 10
	data[off] ^= 1 << 5
	got, cut, err := Replay(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("recovered %d records past a bit flip, want 2", len(got))
	}
	if cut == 0 {
		t.Fatal("bit flip reported no truncation")
	}
}

func TestReplayRejectsForeignStreams(t *testing.T) {
	if _, _, err := Replay(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, _, err := Replay(bytes.NewReader([]byte("not a journal at all"))); err == nil {
		t.Fatal("garbage header accepted")
	}
}

func TestReplayFileMissingIsEmpty(t *testing.T) {
	got, cut, err := ReplayFile(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil || len(got) != 0 || cut != 0 {
		t.Fatalf("missing file: got %d records, cut %d, err %v; want empty, nil", len(got), cut, err)
	}
}
