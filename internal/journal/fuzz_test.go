package journal

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the journal decoder, mirroring the
// catalog fuzz harness: Replay must never panic, every record it recovers
// must be structurally sound, and on any prefix of a valid journal it must
// recover a prefix of the original records.
func FuzzReplay(f *testing.F) {
	j, err := Create(filepath.Join(f.TempDir(), "seed.journal"))
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := j.Append([]float64{float64(i) / 20, 0.25, 0.75}, float64(i*i)); err != nil {
			f.Fatal(err)
		}
	}
	j.Close()
	valid, err := os.ReadFile(j.Path())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, cut, err := Replay(bytes.NewReader(data))
		if err != nil {
			return
		}
		if cut < 0 || cut > int64(len(data)) {
			t.Fatalf("truncated byte count %d outside stream of %d bytes", cut, len(data))
		}
		consumed := headerSize
		for _, r := range recs {
			if len(r.Point) == 0 || len(r.Point) > MaxDims {
				t.Fatalf("recovered record with %d dims", len(r.Point))
			}
			consumed += recordSize(len(r.Point))
		}
		if consumed+int(cut) != len(data) {
			t.Fatalf("accounting: %d consumed + %d cut != %d stream bytes", consumed, cut, len(data))
		}
		// Any recovered float must round-trip through a fresh journal: the
		// decoder and encoder agree on the format.
		if len(recs) > 0 {
			j2, err := Create(filepath.Join(t.TempDir(), "rt.journal"))
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			for _, r := range recs {
				finite := !math.IsNaN(r.Value) && !math.IsInf(r.Value, 0)
				if err := j2.Append(r.Point, r.Value); err != nil && finite {
					t.Fatalf("re-appending recovered record: %v", err)
				}
			}
		}
	})
}
