package journal

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the journal decoder, mirroring the
// catalog fuzz harness: Replay must never panic, every record it recovers
// must be structurally sound, and on any prefix of a valid journal it must
// recover a prefix of the original records.
func FuzzReplay(f *testing.F) {
	j, err := Create(filepath.Join(f.TempDir(), "seed.journal"))
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := j.Append([]float64{float64(i) / 20, 0.25, 0.75}, float64(i*i)); err != nil {
			f.Fatal(err)
		}
	}
	j.Close()
	valid, err := os.ReadFile(j.Path())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, cut, err := Replay(bytes.NewReader(data))
		if err != nil {
			return
		}
		if cut < 0 || cut > int64(len(data)) {
			t.Fatalf("truncated byte count %d outside stream of %d bytes", cut, len(data))
		}
		consumed := headerSize
		for _, r := range recs {
			if len(r.Point) == 0 || len(r.Point) > MaxDims {
				t.Fatalf("recovered record with %d dims", len(r.Point))
			}
			consumed += recordSize(len(r.Point))
		}
		if consumed+int(cut) != len(data) {
			t.Fatalf("accounting: %d consumed + %d cut != %d stream bytes", consumed, cut, len(data))
		}
		// Any recovered float must round-trip through a fresh journal: the
		// decoder and encoder agree on the format.
		if len(recs) > 0 {
			j2, err := Create(filepath.Join(t.TempDir(), "rt.journal"))
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			for _, r := range recs {
				finite := !math.IsNaN(r.Value) && !math.IsInf(r.Value, 0)
				if err := j2.Append(r.Point, r.Value); err != nil && finite {
					t.Fatalf("re-appending recovered record: %v", err)
				}
			}
		}
	})
}

// FuzzTailFollow feeds arbitrary bytes to the incremental tail decoder in
// arbitrary fragmentation: it must never panic, and the records it emits
// must be a prefix of what the batch Replay decoder recovers from the same
// stream — truncated or duplicated frames and flipped bits cost records,
// never correctness. (A prefix, not equality: Replay condemns an implausible
// frame size as permanent damage, while the tail decoder must hold position
// on it — mid-append, the same bytes are a frame whose header is still being
// written.)
func FuzzTailFollow(f *testing.F) {
	j, err := Create(filepath.Join(f.TempDir(), "seed.journal"))
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := j.Append([]float64{float64(i) / 12, 0.5}, float64(i)); err != nil {
			f.Fatal(err)
		}
	}
	j.Close()
	valid, err := os.ReadFile(j.Path())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid, uint8(7))
	f.Add(valid[:len(valid)-3], uint8(1))
	f.Add(append(append([]byte{}, valid...), valid[headerSize:]...), uint8(16))
	f.Add([]byte{}, uint8(3))

	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		step := int(chunk)%64 + 1
		var dec TailDecoder
		var got []Record
		for off := 0; off < len(data); off += step {
			end := off + step
			if end > len(data) {
				end = len(data)
			}
			dec.Feed(data[off:end])
			for {
				rec, err := dec.Next()
				if err != nil {
					if err == ErrNoRecord {
						break
					}
					// Permanent header error: nothing more ever comes out.
					if _, err2 := dec.Next(); err2 == nil {
						t.Fatal("decoder emitted a record after a permanent error")
					}
					return
				}
				if len(rec.Point) == 0 || len(rec.Point) > MaxDims {
					t.Fatalf("tail decoder emitted a record with %d dims", len(rec.Point))
				}
				got = append(got, rec)
			}
		}
		want, _, err := Replay(bytes.NewReader(data))
		if err != nil {
			// Replay rejected the stream outright (bad header); the tail
			// decoder must not have produced records from it either.
			if len(got) != 0 {
				t.Fatalf("tail decoder emitted %d records from a stream Replay rejects", len(got))
			}
			return
		}
		if len(got) > len(want) {
			t.Fatalf("tail decoder emitted %d records, Replay only %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Value != want[i].Value && !(math.IsNaN(got[i].Value) && math.IsNaN(want[i].Value)) {
				t.Fatalf("record %d value: tail %v, replay %v", i, got[i].Value, want[i].Value)
			}
			if len(got[i].Point) != len(want[i].Point) {
				t.Fatalf("record %d dims: tail %d, replay %d", i, len(got[i].Point), len(want[i].Point))
			}
			for d := range got[i].Point {
				if got[i].Point[d] != want[i].Point[d] && !(math.IsNaN(got[i].Point[d]) && math.IsNaN(want[i].Point[d])) {
					t.Fatalf("record %d dim %d: tail %v, replay %v", i, d, got[i].Point[d], want[i].Point[d])
				}
			}
		}
	})
}
