// Package dist provides the seeded random distributions used throughout the
// evaluation: a Zipf sampler for peak heights and vocabulary frequencies, and
// the three query-point distributions of the paper's §5.1 (uniform,
// Gaussian-random, Gaussian-sequential).
//
// Everything in this package is deterministic given a seed, which makes the
// reproduced experiments repeatable run-to-run.
package dist

import (
	"fmt"
	"math"
	"math/rand"

	"mlq/internal/geom"
)

// Zipf ranks values 1..N with probability proportional to 1/rank^s.
// Rank 1 is the most probable / the tallest peak.
type Zipf struct {
	n       int
	s       float64
	weights []float64 // cumulative, normalized
}

// NewZipf returns a Zipf distribution over ranks 1..n with exponent s.
// The paper uses s = 1 (its "Zipf parameter z").
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: Zipf needs n > 0, got %d", n)
	}
	if s < 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("dist: Zipf needs s >= 0, got %g", s)
	}
	z := &Zipf{n: n, s: s, weights: make([]float64, n)}
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		z.weights[i] = total
	}
	for i := range z.weights {
		z.weights[i] /= total
	}
	return z, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Weight returns the probability mass of the given rank (1-based).
func (z *Zipf) Weight(rank int) float64 {
	if rank < 1 || rank > z.n {
		return 0
	}
	if rank == 1 {
		return z.weights[0]
	}
	return z.weights[rank-1] - z.weights[rank-2]
}

// Sample draws a rank in 1..N.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.weights[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Height returns the cost height assigned to the peak of the given rank,
// scaled so rank 1 has height max: max / rank^s.
func (z *Zipf) Height(rank int, max float64) float64 {
	return max / math.Pow(float64(rank), z.s)
}

// PointSource generates a stream of query points inside a region. The three
// implementations correspond to the paper's query distributions.
type PointSource interface {
	// Next returns the next query point. Points always lie inside the
	// region the source was constructed with.
	Next() geom.Point
	// Name returns the distribution's short name as used in the paper's
	// figures ("UNIFORM", "GAUSS-RAND", "GAUSS-SEQ").
	Name() string
}

// Uniform generates points uniformly over the region.
type Uniform struct {
	region geom.Rect
	rng    *rand.Rand
}

// NewUniform returns a uniform point source over region.
func NewUniform(region geom.Rect, seed int64) *Uniform {
	return &Uniform{region: region.Clone(), rng: rand.New(rand.NewSource(seed))}
}

// Next implements PointSource.
func (u *Uniform) Next() geom.Point {
	p := make(geom.Point, u.region.Dims())
	for i := range p {
		p[i] = u.region.Lo[i] + u.rng.Float64()*(u.region.Hi[i]-u.region.Lo[i])
	}
	return u.region.Clamp(p)
}

// Name implements PointSource.
func (u *Uniform) Name() string { return "UNIFORM" }

// gaussianAround draws a point from an isotropic Gaussian centred at c with
// per-dimension standard deviation sigma (expressed as a fraction of the
// dimension's range), clamped into the region.
func gaussianAround(rng *rand.Rand, region geom.Rect, c geom.Point, sigma float64) geom.Point {
	p := make(geom.Point, region.Dims())
	for i := range p {
		scale := region.Hi[i] - region.Lo[i]
		p[i] = c[i] + rng.NormFloat64()*sigma*scale
	}
	return region.Clamp(p)
}

// randomCentroids draws c uniform centroids inside the region.
func randomCentroids(rng *rand.Rand, region geom.Rect, c int) []geom.Point {
	cs := make([]geom.Point, c)
	for i := range cs {
		p := make(geom.Point, region.Dims())
		for j := range p {
			p[j] = region.Lo[j] + rng.Float64()*(region.Hi[j]-region.Lo[j])
		}
		cs[i] = p
	}
	return cs
}

// GaussianRandom implements the paper's "Gaussian-random" distribution:
// c uniform centroids are fixed up front; each query picks a centroid at
// random and samples a Gaussian around it.
//
// The centroid layout and the per-query draws are seeded independently, so a
// static model can be trained on an independent sample of the *same*
// distribution (same centroids, fresh points) — the paper's SH training
// protocol.
type GaussianRandom struct {
	region    geom.Rect
	centroids []geom.Point
	sigma     float64
	rng       *rand.Rand
}

// NewGaussianRandom returns a Gaussian-random source with c centroids and the
// given fractional standard deviation (the paper uses c=3, sigma=0.05).
// The single seed drives both the centroid layout and the point draws; use
// NewGaussianRandomSeeded to separate them.
func NewGaussianRandom(region geom.Rect, c int, sigma float64, seed int64) (*GaussianRandom, error) {
	return NewGaussianRandomSeeded(region, c, sigma, seed, seed)
}

// NewGaussianRandomSeeded is NewGaussianRandom with the centroid layout and
// the point draws seeded independently.
func NewGaussianRandomSeeded(region geom.Rect, c int, sigma float64, centroidSeed, pointSeed int64) (*GaussianRandom, error) {
	if c <= 0 {
		return nil, fmt.Errorf("dist: GaussianRandom needs c > 0, got %d", c)
	}
	return &GaussianRandom{
		region:    region.Clone(),
		centroids: randomCentroids(rand.New(rand.NewSource(centroidSeed)), region, c),
		sigma:     sigma,
		rng:       rand.New(rand.NewSource(pointSeed)),
	}, nil
}

// Next implements PointSource.
func (g *GaussianRandom) Next() geom.Point {
	c := g.centroids[g.rng.Intn(len(g.centroids))]
	return gaussianAround(g.rng, g.region, c, g.sigma)
}

// Name implements PointSource.
func (g *GaussianRandom) Name() string { return "GAUSS-RAND" }

// GaussianSequential implements the paper's "Gaussian-sequential"
// distribution: queries are generated in c consecutive batches, each batch
// clustered around one freshly drawn centroid. This is the workload that
// shifts over time and therefore stresses self-tuning the most.
type GaussianSequential struct {
	region      geom.Rect
	sigma       float64
	centroidRng *rand.Rand
	pointRng    *rand.Rand
	perBatch    int
	emitted     int
	centroid    geom.Point
}

// NewGaussianSequential returns a Gaussian-sequential source that switches to
// a new uniform-random centroid every n/c queries (the paper uses c=3,
// sigma=0.05, n=5000 synthetic / 2500 real). The single seed drives both the
// centroid walk and the point draws; use NewGaussianSequentialSeeded to
// separate them.
func NewGaussianSequential(region geom.Rect, c, n int, sigma float64, seed int64) (*GaussianSequential, error) {
	return NewGaussianSequentialSeeded(region, c, n, sigma, seed, seed+1)
}

// NewGaussianSequentialSeeded is NewGaussianSequential with the centroid walk
// and the point draws seeded independently, so a training stream can follow
// the same sequence of hot regions as a test stream without replaying its
// exact points.
func NewGaussianSequentialSeeded(region geom.Rect, c, n int, sigma float64, centroidSeed, pointSeed int64) (*GaussianSequential, error) {
	if c <= 0 || n <= 0 {
		return nil, fmt.Errorf("dist: GaussianSequential needs c > 0 and n > 0, got c=%d n=%d", c, n)
	}
	perBatch := n / c
	if perBatch == 0 {
		perBatch = 1
	}
	return &GaussianSequential{
		region:      region.Clone(),
		sigma:       sigma,
		centroidRng: rand.New(rand.NewSource(centroidSeed)),
		pointRng:    rand.New(rand.NewSource(pointSeed)),
		perBatch:    perBatch,
	}, nil
}

// Next implements PointSource.
func (g *GaussianSequential) Next() geom.Point {
	if g.centroid == nil || g.emitted%g.perBatch == 0 {
		g.centroid = randomCentroids(g.centroidRng, g.region, 1)[0]
	}
	g.emitted++
	return gaussianAround(g.pointRng, g.region, g.centroid, g.sigma)
}

// Name implements PointSource.
func (g *GaussianSequential) Name() string { return "GAUSS-SEQ" }

// Kind names one of the three query distributions.
type Kind int

// The three query-point distributions of §5.1.
const (
	KindUniform Kind = iota
	KindGaussianRandom
	KindGaussianSequential
)

// String returns the figure label for the distribution.
func (k Kind) String() string {
	switch k {
	case KindUniform:
		return "UNIFORM"
	case KindGaussianRandom:
		return "GAUSS-RAND"
	case KindGaussianSequential:
		return "GAUSS-SEQ"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all three distributions in the order the paper's figures use.
func Kinds() []Kind {
	return []Kind{KindUniform, KindGaussianRandom, KindGaussianSequential}
}

// NewSource constructs the named distribution with the paper's defaults
// (c=3 centroids, sigma=0.05) over the region; n is the planned number of
// queries (used by Gaussian-sequential to size its batches).
func NewSource(k Kind, region geom.Rect, n int, seed int64) (PointSource, error) {
	return NewSourceSeeded(k, region, n, seed, seed+1)
}

// NewSourceSeeded is NewSource with the distribution's shape (centroid
// layout / walk) and its point draws seeded independently. Two sources
// sharing a centroidSeed but differing in pointSeed sample the same
// distribution independently — how the paper trains its static baselines on
// "a set of queries that has the same distribution as the set used for
// testing" (§5.1).
func NewSourceSeeded(k Kind, region geom.Rect, n int, centroidSeed, pointSeed int64) (PointSource, error) {
	switch k {
	case KindUniform:
		return NewUniform(region, pointSeed), nil
	case KindGaussianRandom:
		return NewGaussianRandomSeeded(region, 3, 0.05, centroidSeed, pointSeed)
	case KindGaussianSequential:
		return NewGaussianSequentialSeeded(region, 3, n, 0.05, centroidSeed, pointSeed)
	default:
		return nil, fmt.Errorf("dist: unknown distribution kind %d", int(k))
	}
}
