package dist

import (
	"math"
	"math/rand"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
)

func TestNewZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0, 1) should fail")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("NewZipf(10, -1) should fail")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Error("NewZipf(10, NaN) should fail")
	}
}

func TestZipfWeightsSumToOne(t *testing.T) {
	z, err := NewZipf(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for r := 1; r <= z.N(); r++ {
		sum += z.Weight(r)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g, want 1", sum)
	}
	if z.Weight(0) != 0 || z.Weight(51) != 0 {
		t.Error("out-of-range ranks must have zero weight")
	}
}

func TestZipfMonotoneWeights(t *testing.T) {
	z, _ := NewZipf(20, 1)
	for r := 2; r <= 20; r++ {
		if z.Weight(r) > z.Weight(r-1)+1e-15 {
			t.Fatalf("weight(%d)=%g > weight(%d)=%g", r, z.Weight(r), r-1, z.Weight(r-1))
		}
	}
}

func TestZipfSampleDistribution(t *testing.T) {
	z, _ := NewZipf(10, 1)
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 11)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	for r := 1; r <= 10; r++ {
		got := float64(counts[r]) / n
		want := z.Weight(r)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: empirical %g, want %g", r, got, want)
		}
	}
}

func TestZipfHeight(t *testing.T) {
	z, _ := NewZipf(10, 1)
	if h := z.Height(1, 10000); h != 10000 {
		t.Errorf("Height(1) = %g, want 10000", h)
	}
	if h := z.Height(2, 10000); h != 5000 {
		t.Errorf("Height(2) = %g, want 5000 with s=1", h)
	}
}

func TestZipfZeroExponentIsUniform(t *testing.T) {
	z, _ := NewZipf(4, 0)
	for r := 1; r <= 4; r++ {
		if math.Abs(z.Weight(r)-0.25) > 1e-12 {
			t.Errorf("s=0 weight(%d) = %g, want 0.25", r, z.Weight(r))
		}
	}
}

func region4() geom.Rect {
	return geomtest.MustRect(geom.Point{0, 0, 0, 0}, geom.Point{1000, 1000, 1000, 1000})
}

func TestUniformInRegion(t *testing.T) {
	r := region4()
	u := NewUniform(r, 1)
	for i := 0; i < 1000; i++ {
		p := u.Next()
		if !r.Contains(p) {
			t.Fatalf("uniform point %v escaped region", p)
		}
	}
	if u.Name() != "UNIFORM" {
		t.Errorf("Name = %q", u.Name())
	}
}

func TestUniformCoversSpace(t *testing.T) {
	r := geomtest.MustRect(geom.Point{0}, geom.Point{1})
	u := NewUniform(r, 2)
	var lowHalf int
	const n = 10000
	for i := 0; i < n; i++ {
		if u.Next()[0] < 0.5 {
			lowHalf++
		}
	}
	frac := float64(lowHalf) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("lower-half fraction %g, want ~0.5", frac)
	}
}

func TestGaussianRandomClustering(t *testing.T) {
	r := region4()
	g, err := NewGaussianRandom(r, 3, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "GAUSS-RAND" {
		t.Errorf("Name = %q", g.Name())
	}
	// Every point must be near one of the three centroids.
	for i := 0; i < 2000; i++ {
		p := g.Next()
		if !r.Contains(p) {
			t.Fatalf("point %v escaped region", p)
		}
		nearest := math.Inf(1)
		for _, c := range g.centroids {
			if d := geom.Dist(p, c); d < nearest {
				nearest = d
			}
		}
		// 0.05 sigma on a 1000-range: 6 sigma in 4-d is 600, generous bound.
		if nearest > 600 {
			t.Fatalf("point %v is %g away from all centroids", p, nearest)
		}
	}
}

func TestGaussianRandomValidation(t *testing.T) {
	if _, err := NewGaussianRandom(region4(), 0, 0.05, 1); err == nil {
		t.Error("c=0 should fail")
	}
}

func TestGaussianSequentialBatches(t *testing.T) {
	r := region4()
	const n, c = 900, 3
	g, err := NewGaussianSequential(r, c, n, 0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "GAUSS-SEQ" {
		t.Errorf("Name = %q", g.Name())
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = g.Next()
		if !r.Contains(pts[i]) {
			t.Fatalf("point %v escaped region", pts[i])
		}
	}
	// Within a batch, points cluster; the batch means should differ between
	// batches with overwhelming probability.
	mean := func(ps []geom.Point) geom.Point {
		m := make(geom.Point, len(ps[0]))
		for _, p := range ps {
			for i, v := range p {
				m[i] += v
			}
		}
		for i := range m {
			m[i] /= float64(len(ps))
		}
		return m
	}
	m0 := mean(pts[:300])
	m1 := mean(pts[300:600])
	m2 := mean(pts[600:])
	if geom.Dist(m0, m1) < 1 && geom.Dist(m1, m2) < 1 {
		t.Error("batch means nearly identical; centroids did not move")
	}
	// Spread within a batch should be small relative to the region.
	var spread float64
	for _, p := range pts[:300] {
		spread += geom.Dist(p, m0)
	}
	spread /= 300
	if spread > 250 {
		t.Errorf("average within-batch spread %g too large for sigma=0.05", spread)
	}
}

func TestGaussianSequentialValidation(t *testing.T) {
	if _, err := NewGaussianSequential(region4(), 0, 100, 0.05, 1); err == nil {
		t.Error("c=0 should fail")
	}
	if _, err := NewGaussianSequential(region4(), 3, 0, 0.05, 1); err == nil {
		t.Error("n=0 should fail")
	}
	// c > n degenerates to one point per batch but must not panic.
	g, err := NewGaussianSequential(region4(), 10, 5, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		g.Next()
	}
}

func TestNewSourceAllKinds(t *testing.T) {
	r := region4()
	for _, k := range Kinds() {
		src, err := NewSource(k, r, 100, 9)
		if err != nil {
			t.Fatalf("NewSource(%v): %v", k, err)
		}
		if src.Name() != k.String() {
			t.Errorf("kind %v: source name %q", k, src.Name())
		}
		for i := 0; i < 50; i++ {
			if p := src.Next(); !r.Contains(p) {
				t.Fatalf("kind %v emitted out-of-region point %v", k, p)
			}
		}
	}
	if _, err := NewSource(Kind(99), r, 100, 9); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestDeterminism(t *testing.T) {
	r := region4()
	for _, k := range Kinds() {
		a, _ := NewSource(k, r, 100, 42)
		b, _ := NewSource(k, r, 100, 42)
		for i := 0; i < 100; i++ {
			pa, pb := a.Next(), b.Next()
			for j := range pa {
				if pa[j] != pb[j] {
					t.Fatalf("kind %v not deterministic at query %d", k, i)
				}
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unexpected: %q", Kind(99).String())
	}
}

func TestSeededSourcesShareDistribution(t *testing.T) {
	r := region4()
	// Same centroid seed, different point seeds: same hot regions,
	// different points.
	for _, k := range []Kind{KindGaussianRandom, KindGaussianSequential} {
		a, err := NewSourceSeeded(k, r, 300, 7, 100)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSourceSeeded(k, r, 300, 7, 200)
		if err != nil {
			t.Fatal(err)
		}
		var meanDist, identical float64
		for i := 0; i < 300; i++ {
			pa, pb := a.Next(), b.Next()
			d := geom.Dist(pa, pb)
			meanDist += d
			if d == 0 {
				identical++
			}
		}
		meanDist /= 300
		// Points differ (independent draws) but stay near the shared
		// centroids (sigma=0.05 on a 1000 range -> same-centroid pairs
		// are typically within ~200; different GAUSS-RAND centroids
		// would average >400 apart).
		if identical > 10 {
			t.Errorf("%v: %g identical points; point seeds not independent", k, identical)
		}
		if k == KindGaussianSequential && meanDist > 300 {
			t.Errorf("%v: mean pairwise distance %g; centroid walks diverged", k, meanDist)
		}
	}
}
