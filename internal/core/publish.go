package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"mlq/internal/geom"
	"mlq/internal/quadtree"
	"mlq/internal/telemetry"
)

// Publisher turns a single-threaded MLQ tree into a concurrency-safe Model
// using epoch/snapshot publishing instead of a lock:
//
//   - Predict loads the current immutable quadtree.Snapshot through one
//     atomic pointer read and descends it with zero locks — any number of
//     optimizer threads predict in parallel and never contend with learning;
//   - Observe enqueues the observation on a bounded channel and returns; a
//     single writer goroutine drains the queue in batches, applies each batch
//     to the live tree, and publishes a fresh snapshot (a new epoch) when the
//     batch is done.
//
// The price is bounded staleness: a prediction may miss observations that
// are still queued or inside the writer's current batch — at most
// QueueCapacity + MaxBatch of them, and Staleness() reports the live value.
// This batched-Observe design deviates from the paper, whose feedback loop
// is synchronous and single-threaded (§5's experiments interleave exactly
// one Predict with one Observe); the serial path remains available by using
// MLQ directly (or Synchronized, kept as the lock-based baseline), and the
// two converge to the identical tree because the writer applies observations
// in arrival order — batching changes latency, never ordering. See DESIGN.md
// §9.
type Publisher struct {
	cur atomic.Pointer[epochState]

	// queue carries observations to the writer goroutine; stop tells
	// Observe the publisher is closed.
	queue chan observation
	stop  chan struct{}

	submitted atomic.Int64 // observations accepted by Observe
	applied   atomic.Int64 // observations folded into a published snapshot

	region   geom.Rect // frozen copy for synchronous Observe validation
	name     string
	maxBatch int

	writerDone chan struct{}
	flushReq   chan flushRequest
	closeOnce  sync.Once
	closeErr   error

	errMu       sync.Mutex
	deferredErr error // first unreported writer-side insert failure

	tel *publisherTelemetry // nil unless Instrument was called
}

var _ Model = (*Publisher)(nil)

// epochState is one published generation: the snapshot plus its epoch number.
type epochState struct {
	snap  *quadtree.Snapshot
	epoch uint64
}

type observation struct {
	p      geom.Point
	actual float64
}

type flushRequest struct {
	target int64 // apply at least this many observations before replying
	done   chan error
}

// PublisherConfig tunes the writer side of a Publisher. The zero value is
// usable.
type PublisherConfig struct {
	// QueueCapacity bounds the ingest queue. Observe blocks once the queue
	// is full, which is what bounds staleness. Default 1024.
	QueueCapacity int
	// MaxBatch bounds how many queued observations the writer folds into
	// the tree before it must publish a fresh snapshot. Default 64.
	MaxBatch int
}

func (c PublisherConfig) withDefaults() PublisherConfig {
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	return c
}

// NewPublisher wraps the MLQ model and starts the writer goroutine. The
// Publisher takes ownership of the model's tree: the caller must not touch
// m (or its tree) again except through the Publisher. Close releases the
// writer goroutine and hands the tree back.
func NewPublisher(m *MLQ, cfg PublisherConfig) (*Publisher, error) {
	if m == nil {
		return nil, fmt.Errorf("core: NewPublisher requires a model")
	}
	cfg = cfg.withDefaults()
	pub := &Publisher{
		queue:      make(chan observation, cfg.QueueCapacity),
		stop:       make(chan struct{}),
		region:     m.tree.Config().Region.Clone(),
		name:       m.Name(),
		maxBatch:   cfg.MaxBatch,
		writerDone: make(chan struct{}),
		flushReq:   make(chan flushRequest),
	}
	pub.cur.Store(&epochState{snap: m.tree.Snapshot(), epoch: 0})
	go pub.writer(m)
	return pub, nil
}

// Predict implements Model against the current snapshot: one atomic load,
// no locks, no contention with the writer.
func (pub *Publisher) Predict(p geom.Point) (float64, bool) {
	return pub.cur.Load().snap.Predict(p)
}

// PredictBeta predicts against the current snapshot with an explicit β.
func (pub *Publisher) PredictBeta(p geom.Point, beta int) (float64, bool) {
	return pub.cur.Load().snap.PredictBeta(p, beta)
}

// Observe implements Model: it validates the observation synchronously
// (dimension and finiteness errors are the caller's, not the writer's) and
// enqueues it for the writer goroutine. Observe blocks only when the queue
// is full; it returns an error without enqueuing once Close has begun.
func (pub *Publisher) Observe(p geom.Point, actual float64) error {
	if len(p) != pub.region.Dims() {
		return fmt.Errorf("core: observation has %d dims, model has %d", len(p), pub.region.Dims())
	}
	if math.IsNaN(actual) || math.IsInf(actual, 0) {
		return fmt.Errorf("core: cost value must be finite, got %g", actual)
	}
	// Copy the point: the caller may reuse its backing array after Observe
	// returns, but the writer reads it asynchronously.
	o := observation{p: append(geom.Point(nil), p...), actual: actual}
	select {
	case <-pub.stop:
		return fmt.Errorf("core: publisher is closed")
	default:
	}
	select {
	case pub.queue <- o:
		pub.submitted.Add(1)
		if pub.tel != nil {
			pub.tel.submitted.Inc()
		}
		return nil
	case <-pub.stop:
		return fmt.Errorf("core: publisher is closed")
	}
}

// Name implements Model.
func (pub *Publisher) Name() string { return pub.name }

// Snapshot returns the current published snapshot. Callers may hold it as
// long as they like; it never changes.
func (pub *Publisher) Snapshot() *quadtree.Snapshot { return pub.cur.Load().snap }

// Epoch returns the current snapshot's generation number. It starts at 0
// (the empty or freshly wrapped tree) and increases by exactly 1 per
// published batch, so readers can detect and order refreshes.
func (pub *Publisher) Epoch() uint64 { return pub.cur.Load().epoch }

// Staleness returns how many accepted observations are not yet reflected in
// the published snapshot (queued or mid-batch). It is bounded above by
// QueueCapacity + MaxBatch.
func (pub *Publisher) Staleness() int64 {
	s := pub.submitted.Load() - pub.applied.Load()
	if s < 0 {
		// Observe increments submitted after its enqueue succeeds, so a
		// batch can be counted as applied before its submissions are; the
		// window is benign but must not read as negative staleness.
		return 0
	}
	return s
}

// Flush blocks until every observation accepted before the call is applied
// and published, then returns the writer's first insert error since the
// previous Flush (nil in normal operation). It is the barrier the serial
// experiments and the catalog use to get a loss-free snapshot.
func (pub *Publisher) Flush() error {
	target := pub.submitted.Load()
	req := flushRequest{target: target, done: make(chan error, 1)}
	select {
	case pub.flushReq <- req:
		return <-req.done
	case <-pub.writerDone:
		return fmt.Errorf("core: publisher is closed")
	}
}

// Close drains the queue, publishes a final snapshot, stops the writer
// goroutine and returns the writer's first unreported insert error. Close is
// idempotent; Observe calls racing with it either enqueue in time for the
// final batch or report the publisher closed.
func (pub *Publisher) Close() error {
	pub.closeOnce.Do(func() {
		close(pub.stop)
		<-pub.writerDone
		pub.closeErr = pub.drainErr()
	})
	return pub.closeErr
}

// writer is the single goroutine that owns the tree after NewPublisher.
func (pub *Publisher) writer(m *MLQ) {
	defer close(pub.writerDone)
	var epoch uint64
	batch := make([]observation, 0, pub.maxBatch)

	apply := func() {
		if len(batch) == 0 {
			return
		}
		for _, o := range batch {
			if err := m.Observe(o.p, o.actual); err != nil {
				// Validation already ran in Observe, so this is a tree-level
				// failure; record it for Flush/Close rather than dying.
				pub.recordErr(err)
			}
		}
		epoch++
		pub.cur.Store(&epochState{snap: m.tree.Snapshot(), epoch: epoch})
		pub.applied.Add(int64(len(batch)))
		if pub.tel != nil {
			pub.tel.publish(pub, len(batch))
		}
		batch = batch[:0]
	}

	// fill appends queued observations without blocking, up to maxBatch.
	fill := func() {
		for len(batch) < pub.maxBatch {
			select {
			case o := <-pub.queue:
				batch = append(batch, o)
			default:
				return
			}
		}
	}

	// drain applies everything currently in the queue (Observe enqueues
	// before it increments submitted, so once submitted reads N the queue
	// already held all N) and returns when nothing accepted remains unapplied.
	drain := func() {
		for {
			fill()
			if len(batch) == 0 && pub.applied.Load() >= pub.submitted.Load() {
				return
			}
			apply()
		}
	}

	for {
		select {
		case o := <-pub.queue:
			batch = append(batch, o)
			fill()
			apply()
		case req := <-pub.flushReq:
			// Everything accepted before the Flush call is already in the
			// queue (see drain), so non-blocking fills reach the target.
			for pub.applied.Load() < req.target {
				fill()
				apply()
			}
			req.done <- pub.drainErr()
		case <-pub.stop:
			// Final drain: everything accepted before Close is applied and
			// published, so no acknowledged observation is lost.
			drain()
			return
		}
	}
}

func (pub *Publisher) recordErr(err error) {
	pub.errMu.Lock()
	if pub.deferredErr == nil {
		pub.deferredErr = err
	}
	pub.errMu.Unlock()
	if pub.tel != nil {
		pub.tel.writerErrs.Inc()
	}
}

func (pub *Publisher) drainErr() error {
	pub.errMu.Lock()
	defer pub.errMu.Unlock()
	err := pub.deferredErr
	pub.deferredErr = nil
	return err
}

// publisherTelemetry mirrors the publisher's feedback-loop health into a
// telemetry registry.
type publisherTelemetry struct {
	epoch      *telemetry.Gauge
	staleness  *telemetry.Gauge
	queueDepth *telemetry.Gauge
	nodes      *telemetry.Gauge

	submitted  *telemetry.Counter
	appliedC   *telemetry.Counter
	batches    *telemetry.Counter
	writerErrs *telemetry.Counter
}

// Instrument registers the publisher's metrics under mlq_publisher_* with
// the given labels. Gauges are published by the writer goroutine at every
// epoch; the queue-depth gauge is sampled at the same points.
func (pub *Publisher) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	if reg == nil {
		pub.tel = nil
		return
	}
	pub.tel = &publisherTelemetry{
		epoch:      reg.Gauge("mlq_publisher_epoch", "generation number of the published snapshot", labels...),
		staleness:  reg.Gauge("mlq_publisher_staleness", "accepted observations not yet in the published snapshot", labels...),
		queueDepth: reg.Gauge("mlq_publisher_queue_depth", "observations waiting in the ingest queue", labels...),
		nodes:      reg.Gauge("mlq_publisher_snapshot_nodes", "node count of the published snapshot", labels...),

		submitted:  reg.Counter("mlq_publisher_observations_total", "observations accepted by Observe", labels...),
		appliedC:   reg.Counter("mlq_publisher_applied_total", "observations folded into published snapshots", labels...),
		batches:    reg.Counter("mlq_publisher_batches_total", "batches applied and published", labels...),
		writerErrs: reg.Counter("mlq_publisher_writer_errors_total", "tree-level insert failures on the writer goroutine", labels...),
	}
}

// publish pushes the post-batch state into the registered metrics. Called
// from the writer goroutine only.
func (tel *publisherTelemetry) publish(pub *Publisher, batchLen int) {
	st := pub.cur.Load()
	tel.epoch.SetInt(int64(st.epoch))
	tel.staleness.SetInt(pub.Staleness())
	tel.queueDepth.SetInt(int64(len(pub.queue)))
	tel.nodes.SetInt(int64(st.snap.NodeCount()))
	tel.appliedC.Add(int64(batchLen))
	tel.batches.Inc()
}
