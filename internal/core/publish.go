package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mlq/internal/events"
	"mlq/internal/geom"
	"mlq/internal/journal"
	"mlq/internal/quadtree"
	"mlq/internal/telemetry"
)

// Typed Publisher errors, so callers can distinguish backpressure outcomes
// from validation failures with errors.Is and react per policy.
var (
	// ErrPublisherClosed reports an Observe or Flush against a Publisher
	// whose Close has begun. The observation was not accepted.
	ErrPublisherClosed = errors.New("core: publisher is closed")
	// ErrQueueFull reports an Observe shed by the Reject overflow policy
	// because the ingest queue was at capacity. The observation was not
	// accepted; the caller may retry, downsample, or drop.
	ErrQueueFull = errors.New("core: publisher queue is full")
	// ErrObserveTimeout reports a blocking Observe abandoned by the
	// per-Observe deadline before queue space appeared. The observation was
	// not accepted.
	ErrObserveTimeout = errors.New("core: observe deadline exceeded")
)

// OverflowPolicy decides what Observe does when the ingest queue is full.
// The choice trades the three things a saturated feedback loop can sacrifice:
// caller latency (Block), oldest data (DropOldest), or newest data (Reject).
type OverflowPolicy int

const (
	// OverflowBlock makes Observe wait for queue space (bounded by the
	// per-Observe deadline, if one is configured). No observation is lost;
	// staleness stays <= QueueCapacity + MaxBatch. The default.
	OverflowBlock OverflowPolicy = iota
	// OverflowDropOldest evicts the oldest queued observation to admit the
	// new one. Observe never blocks; the model prefers fresh feedback and
	// Stats().Dropped counts the sacrifice.
	OverflowDropOldest
	// OverflowReject sheds the new observation with ErrQueueFull. Observe
	// never blocks and the queue's contents are never sacrificed; the
	// caller decides what to do with the rejected observation.
	OverflowReject
)

// String names the policy for flags and telemetry.
func (p OverflowPolicy) String() string {
	switch p {
	case OverflowBlock:
		return "block"
	case OverflowDropOldest:
		return "drop-oldest"
	case OverflowReject:
		return "reject"
	default:
		return fmt.Sprintf("OverflowPolicy(%d)", int(p))
	}
}

// Publisher turns a single-threaded MLQ tree into a concurrency-safe Model
// using epoch/snapshot publishing instead of a lock:
//
//   - Predict loads the current immutable quadtree.Snapshot through one
//     atomic pointer read and descends it with zero locks — any number of
//     optimizer threads predict in parallel and never contend with learning;
//   - Observe enqueues the observation on a bounded channel and returns; a
//     single writer goroutine drains the queue in batches, applies each batch
//     to the live tree, and publishes a fresh snapshot (a new epoch) when the
//     batch is done.
//
// The price is bounded staleness: a prediction may miss observations that
// are still queued or inside the writer's current batch — at most
// QueueCapacity + MaxBatch of them, and Staleness() reports the live value.
// This batched-Observe design deviates from the paper, whose feedback loop
// is synchronous and single-threaded (§5's experiments interleave exactly
// one Predict with one Observe); the serial path remains available by using
// MLQ directly (or Synchronized, kept as the lock-based baseline), and the
// two converge to the identical tree because the writer applies observations
// in arrival order — batching changes latency, never ordering. See DESIGN.md
// §9.
type Publisher struct {
	cur atomic.Pointer[epochState]

	// queue carries observations to the writer goroutine; stop tells
	// Observe the publisher is closed.
	queue chan observation
	stop  chan struct{}

	submitted atomic.Int64 // observations accepted by Observe
	applied   atomic.Int64 // observations folded into a published snapshot
	dropped   atomic.Int64 // accepted observations evicted by DropOldest
	rejected  atomic.Int64 // observations shed by Reject (never accepted)
	timeouts  atomic.Int64 // blocking Observes abandoned by the deadline

	region   geom.Rect // frozen copy for synchronous Observe validation
	name     string
	maxBatch int

	overflow   OverflowPolicy
	obsTimeout time.Duration // bounds a blocking Observe; 0 = wait forever

	// jmu serializes the accepted-observation pipeline across observers:
	// sequence assignment, the journal append, and the subscriber fan-out
	// happen as one critical section, so every consumer of the accepted
	// stream (the journal, replication subscribers) sees the identical
	// order. With a single ingress (or externally serialized Observes) that
	// order is also the writer's apply order; concurrent unserialized
	// observers may be applied in a different interleaving than they were
	// journaled, which batching preserves but replication fences out by
	// serializing at the group boundary (see internal/replica).
	jmu         sync.Mutex
	seq         uint64        // accepted-observation sequence, 1-based
	subs        []*subscriber // accepted-observation fan-out hooks
	journal     *journal.Journal
	journaled   atomic.Int64 // records appended to the journal
	journalErrs atomic.Int64 // appends that failed (journal full or IO error)

	events *events.Recorder // causal event spine; nil = recording off

	onPublish atomic.Pointer[func(epoch uint64, applied int64)]

	admit chan struct{} // test-only writer gate; nil in production

	writerDone chan struct{}
	flushReq   chan flushRequest
	resizeReq  chan resizeRequest
	resizes    atomic.Int64 // budget changes applied by the writer
	closeOnce  sync.Once
	closeErr   error

	errMu       sync.Mutex
	deferredErr error // first unreported writer-side insert failure

	// tel is swapped atomically: Instrument may be called after the writer
	// goroutine is already running (the harness instruments a live
	// publisher), so the hot paths load it instead of reading a plain field.
	tel atomic.Pointer[publisherTelemetry] // nil unless Instrument was called
}

var _ Model = (*Publisher)(nil)

// epochState is one published generation: the snapshot plus its epoch number.
type epochState struct {
	snap  *quadtree.Snapshot
	epoch uint64
}

type observation struct {
	p      geom.Point
	actual float64
	// cause is the causal ID minted for this observation's journey on the
	// event spine (0 when no recorder is installed); mint is the recorder
	// clock's reading at the mint, so every later hop can report lag.
	cause uint64
	mint  int64
}

type flushRequest struct {
	target int64 // apply at least this many observations before replying
	done   chan error
}

type resizeRequest struct {
	limit int // new live memory budget for the tree, in bytes
	done  chan error
}

// PublisherConfig tunes the writer side of a Publisher. The zero value is
// usable.
type PublisherConfig struct {
	// QueueCapacity bounds the ingest queue. Observe blocks once the queue
	// is full, which is what bounds staleness. Default 1024.
	QueueCapacity int
	// MaxBatch bounds how many queued observations the writer folds into
	// the tree before it must publish a fresh snapshot. Default 64.
	MaxBatch int
	// Overflow selects what Observe does when the queue is full. Default
	// OverflowBlock (the pre-policy behavior).
	Overflow OverflowPolicy
	// ObserveTimeout bounds how long a blocking Observe (OverflowBlock)
	// waits for queue space before failing with ErrObserveTimeout. Zero
	// means wait until space appears or the publisher closes. The timer is
	// armed only on the full-queue path, so an unsaturated loop never
	// touches the clock.
	ObserveTimeout time.Duration
	// Journal, when non-nil, receives every accepted observation before it
	// is applied, making the feedback loop crash-safe: after a kill,
	// ReplayJournal feeds the surviving prefix into a fresh model. Append
	// failures degrade gracefully (counted, never fatal). The caller owns
	// the journal's lifecycle; Close does not close it.
	Journal *journal.Journal
	// Events, when non-nil, is the causal event spine: Observe mints a
	// causal ID per accepted observation and the publisher emits a hop
	// event at acceptance, journal append, batch drain, and epoch publish.
	// Nil keeps every emission site at a single pointer check.
	Events *events.Recorder
}

func (c PublisherConfig) withDefaults() PublisherConfig {
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	return c
}

// NewPublisher wraps the MLQ model and starts the writer goroutine. The
// Publisher takes ownership of the model's tree: the caller must not touch
// m (or its tree) again except through the Publisher. Close releases the
// writer goroutine and hands the tree back.
func NewPublisher(m *MLQ, cfg PublisherConfig) (*Publisher, error) {
	return newPublisherGated(m, cfg, nil)
}

// newPublisherGated is the test seam behind NewPublisher: when admit is
// non-nil the writer consumes one token from it per loop iteration, letting
// tests hold the queue saturated deterministically while they probe the
// overflow policies. Production always passes nil.
func newPublisherGated(m *MLQ, cfg PublisherConfig, admit chan struct{}) (*Publisher, error) {
	if m == nil {
		return nil, fmt.Errorf("core: NewPublisher requires a model")
	}
	switch cfg.Overflow {
	case OverflowBlock, OverflowDropOldest, OverflowReject:
	default:
		return nil, fmt.Errorf("core: unknown overflow policy %d", int(cfg.Overflow))
	}
	cfg = cfg.withDefaults()
	pub := &Publisher{
		queue:      make(chan observation, cfg.QueueCapacity),
		stop:       make(chan struct{}),
		region:     m.tree.Config().Region.Clone(),
		name:       m.Name(),
		maxBatch:   cfg.MaxBatch,
		overflow:   cfg.Overflow,
		obsTimeout: cfg.ObserveTimeout,
		journal:    cfg.Journal,
		events:     cfg.Events,
		writerDone: make(chan struct{}),
		flushReq:   make(chan flushRequest),
		resizeReq:  make(chan resizeRequest),
		admit:      admit,
	}
	pub.cur.Store(&epochState{snap: m.tree.Snapshot(), epoch: 0})
	go pub.writer(m)
	return pub, nil
}

// Predict implements Model against the current snapshot: one atomic load,
// no locks, no contention with the writer.
func (pub *Publisher) Predict(p geom.Point) (float64, bool) {
	return pub.cur.Load().snap.Predict(p)
}

// PredictBeta predicts against the current snapshot with an explicit β.
func (pub *Publisher) PredictBeta(p geom.Point, beta int) (float64, bool) {
	return pub.cur.Load().snap.PredictBeta(p, beta)
}

// Observe implements Model: it validates the observation synchronously
// (dimension and finiteness errors are the caller's, not the writer's) and
// enqueues it for the writer goroutine. What happens when the queue is full
// depends on the configured OverflowPolicy; Observe returns
// ErrPublisherClosed without enqueuing once Close has begun.
func (pub *Publisher) Observe(p geom.Point, actual float64) error {
	if len(p) != pub.region.Dims() {
		return fmt.Errorf("core: observation has %d dims, model has %d", len(p), pub.region.Dims())
	}
	if math.IsNaN(actual) || math.IsInf(actual, 0) {
		return fmt.Errorf("core: cost value must be finite, got %g", actual)
	}
	// Copy the point: the caller may reuse its backing array after Observe
	// returns, but the writer reads it asynchronously. The causal ID minted
	// here is the thread `mlqtool trace` follows through every later hop;
	// with no recorder both fields stay zero at the cost of one nil check.
	o := observation{
		p:      append(geom.Point(nil), p...),
		actual: actual,
		cause:  pub.events.MintID(),
		mint:   pub.events.Now(),
	}
	select {
	case <-pub.stop:
		return ErrPublisherClosed
	default:
	}

	switch pub.overflow {
	case OverflowReject:
		select {
		case pub.queue <- o:
		default:
			pub.rejected.Add(1)
			if tel := pub.tel.Load(); tel != nil {
				tel.rejected.Inc()
			}
			return ErrQueueFull
		}
	case OverflowDropOldest:
		for enqueued := false; !enqueued; {
			select {
			case pub.queue <- o:
				enqueued = true
			default:
				// Full: evict the oldest queued observation and try again.
				// The inner select races the eviction against the writer
				// freeing a slot itself, so we never evict more than needed.
				select {
				case <-pub.queue:
					pub.dropped.Add(1)
					if tel := pub.tel.Load(); tel != nil {
						tel.dropped.Inc()
					}
				case pub.queue <- o:
					enqueued = true
				case <-pub.stop:
					return ErrPublisherClosed
				}
			}
		}
	default: // OverflowBlock
		if err := pub.blockingEnqueue(o); err != nil {
			return err
		}
	}

	pub.accepted(o)
	return nil
}

// blockingEnqueue waits for queue space, bounded by the per-Observe deadline
// when one is configured. The fast path (queue has room) never arms a timer.
func (pub *Publisher) blockingEnqueue(o observation) error {
	select {
	case pub.queue <- o:
		return nil
	default:
	}
	if pub.obsTimeout <= 0 {
		select {
		case pub.queue <- o:
			return nil
		case <-pub.stop:
			return ErrPublisherClosed
		}
	}
	timer := time.NewTimer(pub.obsTimeout)
	defer timer.Stop()
	select {
	case pub.queue <- o:
		return nil
	case <-timer.C:
		pub.timeouts.Add(1)
		if tel := pub.tel.Load(); tel != nil {
			tel.timeouts.Inc()
		}
		return fmt.Errorf("%w: queue full for %v", ErrObserveTimeout, pub.obsTimeout)
	case <-pub.stop:
		return ErrPublisherClosed
	}
}

// Accepted describes one observation the publisher accepted, as delivered
// to Subscribe callbacks: the 1-based sequence number that totals the
// accepted stream, the publisher's copy of the point, and the observation's
// identity on the causal event spine (zero when no recorder is installed),
// which replication carries across the wire so a follower's hops land on
// the same trace.
type Accepted struct {
	Seq    uint64
	Point  geom.Point
	Value  float64
	Cause  uint64 // causal ID minted at Observe; 0 = untraced
	MintNS int64  // recorder clock reading at the mint; 0 = unknown
}

// subscriber is one registered accepted-observation hook.
type subscriber struct {
	fn func(acc Accepted)
}

// accepted performs the post-enqueue bookkeeping for an accepted
// observation: counters, telemetry, the crash-safety journal, the
// subscriber fan-out, and the observe/journal hops on the event spine.
// Sequence assignment, journal append and fan-out share one critical
// section (see jmu) so all consumers agree on the order.
func (pub *Publisher) accepted(o observation) {
	pub.submitted.Add(1)
	if tel := pub.tel.Load(); tel != nil {
		tel.submitted.Inc()
	}
	pub.jmu.Lock()
	pub.seq++
	seq := pub.seq
	var jerr error
	if pub.journal != nil {
		jerr = pub.journal.Append(o.p, o.actual)
	}
	acc := Accepted{Seq: seq, Point: o.p, Value: o.actual, Cause: o.cause, MintNS: o.mint}
	for _, s := range pub.subs {
		s.fn(acc)
	}
	pub.jmu.Unlock()
	pub.events.EmitHop(events.SubCore, events.KindObserve, o.cause, o.mint, 0, seq)
	if pub.journal == nil {
		return
	}
	if jerr != nil {
		// Journaling degrades gracefully: a full or failing journal costs
		// crash-safety for this observation, never liveness of the loop.
		pub.journalErrs.Add(1)
		if tel := pub.tel.Load(); tel != nil {
			tel.journalErrs.Inc()
		}
		return
	}
	pub.journaled.Add(1)
	if tel := pub.tel.Load(); tel != nil {
		tel.journaled.Inc()
	}
	pub.events.EmitHop(events.SubJournal, events.KindJournalAppend, o.cause, o.mint, 0, seq)
}

// Subscribe registers fn to be called synchronously for every observation
// the publisher accepts from now on. The callback runs on the observer's
// goroutine inside the accepted-observation critical section — after the
// observation is enqueued and journaled, before Observe returns — so
// callbacks for seq n and n+1 never race each other and arrive in sequence
// order. Keep callbacks fast and non-blocking (hand off to a queue;
// replication streams do): a slow subscriber backpressures every Observe.
// Accepted.Point is the publisher's own copy and must not be mutated.
// The returned cancel removes the subscription; it is safe to call twice.
func (pub *Publisher) Subscribe(fn func(acc Accepted)) (cancel func()) {
	s := &subscriber{fn: fn}
	pub.jmu.Lock()
	pub.subs = append(pub.subs, s)
	pub.jmu.Unlock()
	return func() {
		pub.jmu.Lock()
		for i, cur := range pub.subs {
			if cur == s {
				pub.subs = append(pub.subs[:i], pub.subs[i+1:]...)
				break
			}
		}
		pub.jmu.Unlock()
	}
}

// AcceptedSeq returns the sequence number of the most recently accepted
// observation (0 before any). It is the high-water mark a replication
// follower measures its lag against.
func (pub *Publisher) AcceptedSeq() uint64 {
	pub.jmu.Lock()
	defer pub.jmu.Unlock()
	return pub.seq
}

// OnPublish registers fn to be called from the writer goroutine immediately
// after each snapshot publish, with the new epoch and the cumulative count
// of observations applied through it. Replication uses it to stream epoch
// watermarks so followers can report their staleness in epochs. Install it
// before the first Observe; passing nil removes the hook.
func (pub *Publisher) OnPublish(fn func(epoch uint64, applied int64)) {
	if fn == nil {
		pub.onPublish.Store(nil)
		return
	}
	pub.onPublish.Store(&fn)
}

// Name implements Model.
func (pub *Publisher) Name() string { return pub.name }

// Snapshot returns the current published snapshot. Callers may hold it as
// long as they like; it never changes.
func (pub *Publisher) Snapshot() *quadtree.Snapshot { return pub.cur.Load().snap }

// Epoch returns the current snapshot's generation number. It starts at 0
// (the empty or freshly wrapped tree) and increases by exactly 1 per
// published batch, so readers can detect and order refreshes.
func (pub *Publisher) Epoch() uint64 { return pub.cur.Load().epoch }

// Staleness returns how many accepted observations are not yet reflected in
// the published snapshot (queued or mid-batch). It is bounded above by
// QueueCapacity + MaxBatch. Observations evicted by DropOldest stopped
// being pending the moment they were dropped, so they do not count.
func (pub *Publisher) Staleness() int64 {
	s := pub.submitted.Load() - pub.applied.Load() - pub.dropped.Load()
	if s < 0 {
		// Observe increments submitted after its enqueue succeeds, so a
		// batch can be counted as applied before its submissions are; the
		// window is benign but must not read as negative staleness.
		return 0
	}
	return s
}

// PublisherStats is a point-in-time snapshot of the publisher's acceptance
// and loss accounting. Submitted = Applied + Dropped + pending; Rejected and
// Timeouts count observations that were never accepted.
type PublisherStats struct {
	Submitted     int64 // observations accepted by Observe
	Applied       int64 // folded into a published snapshot
	Dropped       int64 // accepted, then evicted by OverflowDropOldest
	Rejected      int64 // shed by OverflowReject (not accepted)
	Timeouts      int64 // blocking Observes abandoned by the deadline (not accepted)
	Journaled     int64 // accepted observations persisted to the journal
	JournalErrors int64 // journal appends that failed (full or IO error)
}

// Stats returns the publisher's cumulative acceptance/loss counters.
func (pub *Publisher) Stats() PublisherStats {
	return PublisherStats{
		Submitted:     pub.submitted.Load(),
		Applied:       pub.applied.Load(),
		Dropped:       pub.dropped.Load(),
		Rejected:      pub.rejected.Load(),
		Timeouts:      pub.timeouts.Load(),
		Journaled:     pub.journaled.Load(),
		JournalErrors: pub.journalErrs.Load(),
	}
}

// Flush blocks until every observation accepted before the call is applied
// and published, then returns the writer's first insert error since the
// previous Flush (nil in normal operation). It is the barrier the serial
// experiments and the catalog use to get a loss-free snapshot. After Close,
// Flush always reports ErrPublisherClosed — never a stale drained writer
// error, which belongs to the Close that performed the final drain.
func (pub *Publisher) Flush() error {
	select {
	case <-pub.writerDone:
		// The writer is gone: the queue was drained by Close, and Close's
		// return value owns any deferred writer error. Reporting it again
		// here (or worse, stealing it before Close reads it) would hand a
		// stale error to a caller whose observations were never accepted.
		return ErrPublisherClosed
	default:
	}
	target := pub.submitted.Load()
	req := flushRequest{target: target, done: make(chan error, 1)}
	select {
	case pub.flushReq <- req:
		return <-req.done
	case <-pub.writerDone:
		return ErrPublisherClosed
	}
}

// Resize routes a live memory-budget change through the writer goroutine,
// as a command alongside the batched observes: the writer applies (and
// publishes) any batch in flight first, moves the tree's limit — shrinking
// compresses down to the new budget, growing raises the ceiling — and then
// publishes the post-resize tree under its own fresh epoch. No published
// snapshot ever mixes state from both sides of a budget change, and epochs
// stay strictly monotonic across resizes and batches alike. Blocks until
// the change is published; returns the tree's validation error for budgets
// below one node, or ErrPublisherClosed after Close has begun.
func (pub *Publisher) Resize(newLimit int) error {
	req := resizeRequest{limit: newLimit, done: make(chan error, 1)}
	select {
	case pub.resizeReq <- req:
		// The writer holds the request and always replies exactly once,
		// even when Close races in behind it.
		return <-req.done
	case <-pub.writerDone:
		return ErrPublisherClosed
	}
}

// MemoryLimit returns the live memory budget of the published snapshot —
// the limit the most recent batch or resize was published under.
func (pub *Publisher) MemoryLimit() int { return pub.cur.Load().snap.MemoryLimit() }

// Resizes returns how many budget changes the writer has applied.
func (pub *Publisher) Resizes() int64 { return pub.resizes.Load() }

// Checkpoint flushes the publisher, then truncates the journal: every
// journaled observation is now reflected in the published snapshot, so a
// durable save of the model (e.g. catalog.SaveFile of Snapshot) supersedes
// the journal's contents. Call it right after such a save to keep the
// journal's bounded capacity from filling with already-persisted history.
func (pub *Publisher) Checkpoint() error {
	if err := pub.Flush(); err != nil {
		return err
	}
	if pub.journal == nil {
		return nil
	}
	pub.jmu.Lock()
	err := pub.journal.Reset()
	pub.jmu.Unlock()
	return err
}

// Close drains the queue, publishes a final snapshot, stops the writer
// goroutine and returns the writer's first unreported insert error. Close is
// idempotent; Observe calls racing with it either enqueue in time for the
// final batch or report the publisher closed.
func (pub *Publisher) Close() error {
	pub.closeOnce.Do(func() {
		close(pub.stop)
		<-pub.writerDone
		pub.closeErr = pub.drainErr()
	})
	return pub.closeErr
}

// writer is the single goroutine that owns the tree after NewPublisher.
func (pub *Publisher) writer(m *MLQ) {
	defer close(pub.writerDone)
	var epoch uint64
	batch := make([]observation, 0, pub.maxBatch)

	apply := func() {
		if len(batch) == 0 {
			return
		}
		for _, o := range batch {
			if err := m.Observe(o.p, o.actual); err != nil {
				// Validation already ran in Observe, so this is a tree-level
				// failure; record it for Flush/Close rather than dying.
				pub.recordErr(err)
			}
			pub.events.EmitHop(events.SubCore, events.KindBatchDrain, o.cause, o.mint, 0, 0)
		}
		epoch++
		pub.cur.Store(&epochState{snap: m.tree.Snapshot(), epoch: epoch})
		applied := pub.applied.Add(int64(len(batch)))
		// The epoch-publish hop covers the whole batch, so it carries no
		// single causal ID; traces join it by the applied watermark — the
		// accepted-sequence high-water mark this snapshot reflects (exact
		// under ordered ingress, which replication guarantees).
		pub.events.Emit(events.SubCore, events.KindEpochPublish, 0, epoch, uint64(applied))
		if fn := pub.onPublish.Load(); fn != nil {
			(*fn)(epoch, applied)
		}
		if tel := pub.tel.Load(); tel != nil {
			tel.publish(pub, len(batch))
		}
		batch = batch[:0]
	}

	// fill appends queued observations without blocking, up to maxBatch.
	fill := func() {
		for len(batch) < pub.maxBatch {
			select {
			case o := <-pub.queue:
				batch = append(batch, o)
			default:
				return
			}
		}
	}

	// drain applies everything currently in the queue (Observe enqueues
	// before it increments submitted, so once submitted reads N the queue
	// already held all N) and returns when nothing accepted remains unapplied.
	drain := func() {
		for {
			fill()
			if len(batch) == 0 && pub.applied.Load()+pub.dropped.Load() >= pub.submitted.Load() {
				return
			}
			apply()
		}
	}

	for {
		if pub.admit != nil {
			// Test gate: hold the writer here until the test feeds a token,
			// keeping the queue deterministically saturated. Close still
			// drains — shutdown must not depend on the gate.
			select {
			case <-pub.admit:
			case <-pub.stop:
				drain()
				return
			}
		}
		select {
		case o := <-pub.queue:
			batch = append(batch, o)
			fill()
			apply()
		case req := <-pub.flushReq:
			// Everything accepted before the Flush call is already in the
			// queue (see drain), so non-blocking fills reach the target.
			// Dropped observations count toward it: they were accepted and
			// are resolved, just not by applying.
			for pub.applied.Load()+pub.dropped.Load() < req.target {
				fill()
				apply()
			}
			//lint:ignore chanowner req.done is a cap-1 reply slot created by Flush for exactly one reply; the send can never block
			req.done <- pub.drainErr()
		case req := <-pub.resizeReq:
			// A budget change is a command in the same stream as batched
			// observes: any batch in flight publishes under its own epoch
			// first (a no-op in the steady state, where the batch is empty
			// between selects), then the resized tree gets a fresh epoch of
			// its own — no snapshot straddles the change.
			apply()
			old := m.tree.MemoryLimit()
			err := m.Resize(req.limit)
			if err == nil {
				pub.resizes.Add(1)
				epoch++
				pub.cur.Store(&epochState{snap: m.tree.Snapshot(), epoch: epoch})
				pub.events.Emit(events.SubCore, events.KindResize, 0, uint64(old), uint64(req.limit))
				if fn := pub.onPublish.Load(); fn != nil {
					(*fn)(epoch, pub.applied.Load())
				}
				if tel := pub.tel.Load(); tel != nil {
					tel.refresh(pub)
					tel.resizes.Inc()
				}
			}
			//lint:ignore chanowner req.done is a cap-1 reply slot created by Resize for exactly one reply; the send can never block
			req.done <- err
		case <-pub.stop:
			// Final drain: everything accepted before Close is applied and
			// published, so no acknowledged observation is lost.
			drain()
			return
		}
	}
}

func (pub *Publisher) recordErr(err error) {
	pub.errMu.Lock()
	if pub.deferredErr == nil {
		pub.deferredErr = err
	}
	pub.errMu.Unlock()
	if tel := pub.tel.Load(); tel != nil {
		tel.writerErrs.Inc()
	}
}

func (pub *Publisher) drainErr() error {
	pub.errMu.Lock()
	defer pub.errMu.Unlock()
	err := pub.deferredErr
	pub.deferredErr = nil
	return err
}

// ReplayJournal feeds a crash-safety journal's surviving records into m in
// order, returning how many were applied and how many trailing bytes were
// cut as a torn/corrupt tail (expected after a kill — not an error). A
// missing file replays zero records. Records the model rejects (wrong
// dimensionality — a foreign journal) abort the replay with an error. Call
// it on the fresh MLQ before wrapping it in a Publisher.
func ReplayJournal(m *MLQ, path string) (applied int, truncated int64, err error) {
	return ReplayJournalEvents(m, path, nil)
}

// ReplayJournalEvents is ReplayJournal with the event spine attached: a
// torn tail — the journal-truncation fault — emits a journal-torn event and
// fires the flight recorder, so the post-kill dump shows what the loop was
// doing when the tail was lost. rec may be nil.
func ReplayJournalEvents(m *MLQ, path string, rec *events.Recorder) (applied int, truncated int64, err error) {
	recs, truncated, err := journal.ReplayFile(path)
	if err != nil {
		return 0, truncated, err
	}
	for _, r := range recs {
		if err := m.Observe(geom.Point(r.Point), r.Value); err != nil {
			return applied, truncated, fmt.Errorf("core: journal replay at record %d: %w", applied, err)
		}
		applied++
	}
	if truncated > 0 {
		rec.Emit(events.SubJournal, events.KindJournalTorn, 0, uint64(applied), uint64(truncated))
		rec.Trigger("journal-torn")
	}
	return applied, truncated, nil
}

// publisherTelemetry mirrors the publisher's feedback-loop health into a
// telemetry registry.
type publisherTelemetry struct {
	epoch      *telemetry.Gauge
	staleness  *telemetry.Gauge
	queueDepth *telemetry.Gauge
	nodes      *telemetry.Gauge

	submitted  *telemetry.Counter
	appliedC   *telemetry.Counter
	batches    *telemetry.Counter
	writerErrs *telemetry.Counter
	resizes    *telemetry.Counter

	dropped     *telemetry.Counter
	rejected    *telemetry.Counter
	timeouts    *telemetry.Counter
	journaled   *telemetry.Counter
	journalErrs *telemetry.Counter
}

// Instrument registers the publisher's metrics under mlq_publisher_* with
// the given labels. Gauges are published by the writer goroutine at every
// epoch; the queue-depth gauge is sampled at the same points.
func (pub *Publisher) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	if reg == nil {
		pub.tel.Store(nil)
		return
	}
	pub.tel.Store(&publisherTelemetry{
		epoch:      reg.Gauge("mlq_publisher_epoch", "generation number of the published snapshot", labels...),
		staleness:  reg.Gauge("mlq_publisher_staleness", "accepted observations not yet in the published snapshot", labels...),
		queueDepth: reg.Gauge("mlq_publisher_queue_depth", "observations waiting in the ingest queue", labels...),
		nodes:      reg.Gauge("mlq_publisher_snapshot_nodes", "node count of the published snapshot", labels...),

		submitted:  reg.Counter("mlq_publisher_observations_total", "observations accepted by Observe", labels...),
		appliedC:   reg.Counter("mlq_publisher_applied_total", "observations folded into published snapshots", labels...),
		batches:    reg.Counter("mlq_publisher_batches_total", "batches applied and published", labels...),
		writerErrs: reg.Counter("mlq_publisher_writer_errors_total", "tree-level insert failures on the writer goroutine", labels...),
		resizes:    reg.Counter("mlq_publisher_resizes_total", "budget changes applied through the writer goroutine", labels...),

		dropped:     reg.Counter("mlq_publisher_dropped_total", "accepted observations evicted by the drop-oldest overflow policy", labels...),
		rejected:    reg.Counter("mlq_publisher_rejected_total", "observations shed by the reject overflow policy", labels...),
		timeouts:    reg.Counter("mlq_publisher_observe_timeouts_total", "blocking Observes abandoned by the per-Observe deadline", labels...),
		journaled:   reg.Counter("mlq_publisher_journaled_total", "accepted observations persisted to the crash-safety journal", labels...),
		journalErrs: reg.Counter("mlq_publisher_journal_errors_total", "journal appends that failed (journal full or IO error)", labels...),
	})
}

// publish pushes the post-batch state into the registered metrics. Called
// from the writer goroutine only.
func (tel *publisherTelemetry) publish(pub *Publisher, batchLen int) {
	tel.refresh(pub)
	tel.appliedC.Add(int64(batchLen))
	tel.batches.Inc()
}

// refresh re-publishes the gauges without counting a batch: the resize
// command publishes an epoch that applied no observations. Called from the
// writer goroutine only.
func (tel *publisherTelemetry) refresh(pub *Publisher) {
	st := pub.cur.Load()
	tel.epoch.SetInt(int64(st.epoch))
	tel.staleness.SetInt(pub.Staleness())
	tel.queueDepth.SetInt(int64(len(pub.queue)))
	tel.nodes.SetInt(int64(st.snap.NodeCount()))
}
