package core

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/quadtree"
)

func publisherModel(t *testing.T) *MLQ {
	t.Helper()
	m, err := NewMLQ(quadtree.Config{
		Region:      geom.UnitCube(2),
		MaxDepth:    5,
		MemoryLimit: 60 * quadtree.DefaultNodeBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPublisherObserveValidation(t *testing.T) {
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Observe(geom.Point{0.5}, 1); err == nil {
		t.Error("dimension mismatch not rejected")
	}
	if err := pub.Observe(geom.Point{0.5, 0.5}, math.NaN()); err == nil {
		t.Error("NaN not rejected")
	}
	if err := pub.Observe(geom.Point{0.5, 0.5}, math.Inf(1)); err == nil {
		t.Error("Inf not rejected")
	}
}

func TestPublisherFlushMakesObservationsVisible(t *testing.T) {
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if _, ok := pub.Predict(geom.Point{0.5, 0.5}); ok {
		t.Fatal("empty model must predict ok=false")
	}
	for i := 0; i < 100; i++ {
		if err := pub.Observe(geom.Point{0.5, 0.5}, 42); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	if pub.Staleness() != 0 {
		t.Errorf("staleness %d after Flush, want 0", pub.Staleness())
	}
	v, ok := pub.Predict(geom.Point{0.5, 0.5})
	if !ok || v != 42 {
		t.Errorf("Predict = %g, %v after flush; want 42, true", v, ok)
	}
	if pub.Epoch() == 0 {
		t.Error("epoch still 0 after a published batch")
	}
	if pub.Snapshot().Inserts() != 100 {
		t.Errorf("snapshot inserts %d, want 100", pub.Snapshot().Inserts())
	}
}

func TestPublisherCloseDrainsAndRejects(t *testing.T) {
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := pub.Observe(geom.Point{0.25, 0.75}, 7); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pub.Close(); err != nil {
		t.Errorf("second Close returned %v, want nil (idempotent)", err)
	}
	if pub.Snapshot().Inserts() != 50 {
		t.Errorf("final snapshot has %d inserts, want all 50 drained", pub.Snapshot().Inserts())
	}
	if err := pub.Observe(geom.Point{0.25, 0.75}, 7); err == nil {
		t.Error("Observe after Close must error")
	}
	if err := pub.Flush(); err == nil {
		t.Error("Flush after Close must error")
	}
}

// The central correctness claim of the batched-Observe deviation: batching
// changes latency, never ordering, so the publisher's tree converges to the
// exact tree serial Observe builds — proven on serialized bytes.
func TestPublisherConvergesToSerialObserve(t *testing.T) {
	cfg := quadtree.Config{
		Region:      geom.UnitCube(2),
		Strategy:    quadtree.Lazy,
		MaxDepth:    6,
		MemoryLimit: 48 * quadtree.DefaultNodeBytes,
	}
	serial, err := NewMLQ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batchedModel, err := NewMLQ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(batchedModel, PublisherConfig{QueueCapacity: 32, MaxBatch: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 4000; i++ {
		p := geom.Point{rng.Float64(), rng.Float64()}
		v := rng.Float64() * 1000
		if err := serial.Observe(p, v); err != nil {
			t.Fatal(err)
		}
		if err := pub.Observe(p, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if _, err := serial.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Snapshot().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("batched tree (%d bytes) differs from serial tree (%d bytes)", b.Len(), a.Len())
	}
}

// The -race hammer: many predictors against one observer. Asserts the three
// published guarantees — predictions are never torn (always finite, in the
// observed value range), epochs are monotonic per reader, and staleness
// never exceeds QueueCapacity + MaxBatch.
func TestPublisherHammer(t *testing.T) {
	const (
		queueCap   = 64
		maxBatch   = 16
		predictors = 6
		inserts    = 5000
	)
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{QueueCapacity: queueCap, MaxBatch: maxBatch})
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, predictors+1)

	for g := 0; g < predictors; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var lastEpoch uint64
			for !stop.Load() {
				p := geom.Point{rng.Float64(), rng.Float64()}
				if v, ok := pub.Predict(p); ok {
					// Observed values lie in [0, 1000); any prediction is a
					// weighted average of them, so an out-of-range or
					// non-finite value can only come from a torn read.
					if math.IsNaN(v) || v < 0 || v >= 1000 {
						errs <- "torn or out-of-range prediction"
						return
					}
				}
				e := pub.Epoch()
				if e < lastEpoch {
					errs <- "epoch went backwards"
					return
				}
				lastEpoch = e
				if s := pub.Staleness(); s > queueCap+maxBatch {
					errs <- "staleness exceeded queue capacity + batch size"
					return
				}
			}
		}(int64(g + 1))
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < inserts; i++ {
		p := geom.Point{rng.Float64(), rng.Float64()}
		if err := pub.Observe(p, rng.Float64()*1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	if got := pub.Snapshot().Inserts(); got != inserts {
		t.Errorf("final snapshot has %d inserts, want %d", got, inserts)
	}
}

func TestPublisherConcurrentObservers(t *testing.T) {
	// The Model contract allows any goroutine to call Observe; concurrent
	// observers must all be accepted and drained (ordering across goroutines
	// is unspecified, totals are not).
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{QueueCapacity: 16, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const per = 500
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				pub.Observe(geom.Point{rng.Float64(), rng.Float64()}, rng.Float64())
			}
		}(int64(g))
	}
	wg.Wait()
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	if got := pub.Snapshot().Inserts(); got != 4*per {
		t.Errorf("drained %d observations, want %d", got, 4*per)
	}
}
