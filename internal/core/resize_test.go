package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/quadtree"
)

func TestPublisherResizeThroughWriter(t *testing.T) {
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		if err := pub.Observe(geom.Point{rng.Float64(), rng.Float64()}, rng.Float64()*100); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	before := pub.Snapshot()
	shrunk := 20 * quadtree.DefaultNodeBytes
	if err := pub.Resize(shrunk); err != nil {
		t.Fatal(err)
	}
	snap := pub.Snapshot()
	if snap.MemoryLimit() != shrunk {
		t.Errorf("snapshot limit %d, want %d", snap.MemoryLimit(), shrunk)
	}
	if snap.MemoryUsed() > shrunk {
		t.Errorf("snapshot memory %d over new limit %d", snap.MemoryUsed(), shrunk)
	}
	if pub.MemoryLimit() != shrunk {
		t.Errorf("publisher limit %d, want %d", pub.MemoryLimit(), shrunk)
	}
	if pub.Resizes() != 1 {
		t.Errorf("resizes = %d, want 1", pub.Resizes())
	}
	// The pre-resize snapshot is immutable: still consistent with the old
	// budget, untouched by the shrink.
	if before.MemoryLimit() != 60*quadtree.DefaultNodeBytes {
		t.Error("published snapshot mutated by a later resize")
	}

	if err := pub.Resize(quadtree.DefaultNodeBytes - 1); err == nil {
		t.Error("below-floor resize accepted")
	}
	if pub.Resizes() != 1 {
		t.Error("failed resize counted")
	}
}

// TestPublisherResizeEpochsMonotonic interleaves observes, flushes and
// resizes and requires every published snapshot to be internally consistent
// (memory within its own limit) with strictly increasing epochs — the
// "snapshots never straddle a budget change" guarantee.
func TestPublisherResizeEpochsMonotonic(t *testing.T) {
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	var mu sync.Mutex
	var epochs []uint64
	pub.OnPublish(func(epoch uint64, applied int64) {
		mu.Lock()
		epochs = append(epochs, epoch)
		mu.Unlock()
	})

	rng := rand.New(rand.NewSource(2))
	limits := []int{30, 90, 15, 60}
	for round, lim := range limits {
		for i := 0; i < 200; i++ {
			if err := pub.Observe(geom.Point{rng.Float64(), rng.Float64()}, rng.Float64()*50); err != nil {
				t.Fatal(err)
			}
		}
		if err := pub.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := pub.Resize(lim * quadtree.DefaultNodeBytes); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		snap := pub.Snapshot()
		if snap.MemoryUsed() > snap.MemoryLimit() {
			t.Fatalf("round %d: snapshot straddles the change: used %d limit %d",
				round, snap.MemoryUsed(), snap.MemoryLimit())
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(epochs); i++ {
		if epochs[i] != epochs[i-1]+1 {
			t.Fatalf("epochs not strictly monotonic at %d: %d then %d", i, epochs[i-1], epochs[i])
		}
	}
}

func TestPublisherResizeConcurrentWithPredict(t *testing.T) {
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				pub.Predict(geom.Point{rng.Float64(), rng.Float64()})
			}
		}(int64(g))
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		if err := pub.Observe(geom.Point{rng.Float64(), rng.Float64()}, rng.Float64()*100); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			lim := (20 + rng.Intn(100)) * quadtree.DefaultNodeBytes
			if err := pub.Resize(lim); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPublisherResizeAfterClose(t *testing.T) {
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pub.Resize(100 * quadtree.DefaultNodeBytes); !errors.Is(err, ErrPublisherClosed) {
		t.Errorf("Resize after Close = %v, want ErrPublisherClosed", err)
	}
}

func TestMLQResize(t *testing.T) {
	m := publisherModel(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		if err := m.Observe(geom.Point{rng.Float64(), rng.Float64()}, rng.Float64()*10); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Resize(10 * quadtree.DefaultNodeBytes); err != nil {
		t.Fatal(err)
	}
	if m.MemoryUsed() > 10*quadtree.DefaultNodeBytes || m.MemoryLimit() != 10*quadtree.DefaultNodeBytes {
		t.Errorf("used=%d limit=%d after MLQ.Resize", m.MemoryUsed(), m.MemoryLimit())
	}
}
