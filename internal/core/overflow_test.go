package core

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mlq/internal/geom"
	"mlq/internal/journal"
)

// gatedPublisher builds a publisher whose writer is parked on an admit gate:
// until the returned release func is called the writer consumes nothing, so
// the queue saturates deterministically.
func gatedPublisher(t *testing.T, cfg PublisherConfig) (*Publisher, func()) {
	t.Helper()
	gate := make(chan struct{})
	pub, err := newPublisherGated(publisherModel(t), cfg, gate)
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(func() { release(); pub.Close() })
	return pub, release
}

func TestPublisherCloseIdempotentObserveTyped(t *testing.T) {
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Observe(geom.Point{0.5, 0.5}, 1); err != nil {
		t.Fatal(err)
	}

	// Concurrent Closes must all return the same answer without panicking
	// (double close of the stop channel was the historical hazard).
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = pub.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Close %d returned %v", i, err)
		}
	}
	if err := pub.Close(); err != nil {
		t.Fatalf("repeat Close returned %v", err)
	}

	if err := pub.Observe(geom.Point{0.5, 0.5}, 2); !errors.Is(err, ErrPublisherClosed) {
		t.Fatalf("Observe after Close: err %v, want ErrPublisherClosed", err)
	}
	if err := pub.Flush(); !errors.Is(err, ErrPublisherClosed) {
		t.Fatalf("Flush after Close: err %v, want ErrPublisherClosed", err)
	}
	// Prediction against the last published snapshot must keep working.
	if _, ok := pub.Predict(geom.Point{0.5, 0.5}); !ok {
		t.Fatal("Predict stopped working after Close")
	}
}

func TestPublisherOverflowPolicies(t *testing.T) {
	const capacity = 4
	cases := []struct {
		name     string
		cfg      PublisherConfig
		overflow int // Observes beyond capacity
		check    func(t *testing.T, pub *Publisher, overflowErrs []error)
	}{
		{
			name:     "block-times-out",
			cfg:      PublisherConfig{QueueCapacity: capacity, Overflow: OverflowBlock, ObserveTimeout: 20 * time.Millisecond},
			overflow: 2,
			check: func(t *testing.T, pub *Publisher, overflowErrs []error) {
				for i, err := range overflowErrs {
					if !errors.Is(err, ErrObserveTimeout) {
						t.Fatalf("overflow Observe %d: err %v, want ErrObserveTimeout", i, err)
					}
				}
				st := pub.Stats()
				if st.Submitted != capacity || st.Timeouts != 2 || st.Dropped != 0 || st.Rejected != 0 {
					t.Fatalf("stats %+v, want 4 submitted / 2 timeouts", st)
				}
			},
		},
		{
			name:     "drop-oldest-sheds-head",
			cfg:      PublisherConfig{QueueCapacity: capacity, Overflow: OverflowDropOldest},
			overflow: 3,
			check: func(t *testing.T, pub *Publisher, overflowErrs []error) {
				for i, err := range overflowErrs {
					if err != nil {
						t.Fatalf("DropOldest Observe %d must not fail: %v", i, err)
					}
				}
				st := pub.Stats()
				if st.Submitted != capacity+3 || st.Dropped != 3 || st.Timeouts != 0 || st.Rejected != 0 {
					t.Fatalf("stats %+v, want 7 submitted / 3 dropped", st)
				}
				// Staleness counts pending only: 7 accepted - 3 dropped = 4.
				if got := pub.Staleness(); got != capacity {
					t.Fatalf("staleness %d, want %d", got, capacity)
				}
			},
		},
		{
			name:     "reject-sheds-tail",
			cfg:      PublisherConfig{QueueCapacity: capacity, Overflow: OverflowReject},
			overflow: 3,
			check: func(t *testing.T, pub *Publisher, overflowErrs []error) {
				for i, err := range overflowErrs {
					if !errors.Is(err, ErrQueueFull) {
						t.Fatalf("overflow Observe %d: err %v, want ErrQueueFull", i, err)
					}
				}
				st := pub.Stats()
				if st.Submitted != capacity || st.Rejected != 3 || st.Dropped != 0 || st.Timeouts != 0 {
					t.Fatalf("stats %+v, want 4 submitted / 3 rejected", st)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pub, release := gatedPublisher(t, tc.cfg)
			p := geom.Point{0.5, 0.5}
			for i := 0; i < capacity; i++ {
				if err := pub.Observe(p, float64(i)); err != nil {
					t.Fatalf("Observe %d within capacity failed: %v", i, err)
				}
			}
			overflowErrs := make([]error, tc.overflow)
			for i := range overflowErrs {
				overflowErrs[i] = pub.Observe(p, float64(capacity+i))
			}
			tc.check(t, pub, overflowErrs)

			// Release the writer: everything still pending must apply, the
			// loss accounting must balance, and staleness must hit zero.
			release()
			if err := pub.Flush(); err != nil {
				t.Fatalf("Flush after release: %v", err)
			}
			st := pub.Stats()
			if st.Applied+st.Dropped != st.Submitted {
				t.Fatalf("accounting broken: %+v (applied+dropped != submitted)", st)
			}
			if got := pub.Staleness(); got != 0 {
				t.Fatalf("staleness %d after Flush, want 0", got)
			}
			if got := pub.Snapshot().Inserts(); got != st.Applied {
				t.Fatalf("snapshot inserts %d, want %d applied", got, st.Applied)
			}
		})
	}
}

// TestPublisherOverflowHammer saturates a tiny queue from several goroutines
// under each non-blocking policy while readers predict, then checks the loss
// accounting balances exactly. Run with -race to exercise the eviction path's
// channel races.
func TestPublisherOverflowHammer(t *testing.T) {
	for _, policy := range []OverflowPolicy{OverflowDropOldest, OverflowReject} {
		t.Run(policy.String(), func(t *testing.T) {
			pub, err := NewPublisher(publisherModel(t), PublisherConfig{
				QueueCapacity: 8, MaxBatch: 4, Overflow: policy,
			})
			if err != nil {
				t.Fatal(err)
			}
			const goroutines, perG = 4, 500
			var wg sync.WaitGroup
			rejected := make([]int64, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					for i := 0; i < perG; i++ {
						p := geom.Point{rng.Float64(), rng.Float64()}
						err := pub.Observe(p, rng.Float64()*100)
						switch {
						case err == nil:
						case errors.Is(err, ErrQueueFull):
							rejected[g]++
						default:
							t.Errorf("goroutine %d: unexpected Observe error %v", g, err)
							return
						}
						pub.Predict(p)
					}
				}(g)
			}
			wg.Wait()
			if err := pub.Flush(); err != nil {
				t.Fatal(err)
			}
			st := pub.Stats()
			var totalRejected int64
			for _, r := range rejected {
				totalRejected += r
			}
			if st.Rejected != totalRejected {
				t.Fatalf("stats rejected %d, callers saw %d", st.Rejected, totalRejected)
			}
			if st.Submitted+st.Rejected != goroutines*perG {
				t.Fatalf("stats %+v: submitted+rejected != %d attempts", st, goroutines*perG)
			}
			if st.Applied+st.Dropped != st.Submitted {
				t.Fatalf("accounting broken after hammer: %+v", st)
			}
			if policy == OverflowDropOldest && st.Rejected != 0 {
				t.Fatalf("DropOldest rejected %d observations", st.Rejected)
			}
			if err := pub.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPublisherJournalReplayAfterKill simulates a crash: observations flow
// through a journaled publisher, the process "dies" without Close, the tail
// of the journal is torn, and a fresh model replays what survived. The
// recovered model must be byte-identical to a clean model fed the same
// prefix, and the loss must stay within the documented MaxBatch bound.
func TestPublisherJournalReplayAfterKill(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "observations.mlqj")
	jn, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const n, maxBatch = 137, 16
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{
		MaxBatch: maxBatch, Journal: jn,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	points := make([]geom.Point, n)
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		points[i] = geom.Point{rng.Float64(), rng.Float64()}
		values[i] = rng.Float64() * 50
		if err := pub.Observe(points[i], values[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	// Kill: no Close, no journal Close. Tear the last frame as an unsynced
	// page cache would.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := f.Stat()
	if err := f.Truncate(info.Size() - 5); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered := publisherModel(t)
	applied, truncated, err := ReplayJournal(recovered, path)
	if err != nil {
		t.Fatal(err)
	}
	if truncated == 0 {
		t.Fatal("torn tail not reported")
	}
	if lost := n - applied; lost < 1 || lost > maxBatch {
		t.Fatalf("lost %d observations, want 1..%d (at most one batch)", lost, maxBatch)
	}

	clean := publisherModel(t)
	for i := 0; i < applied; i++ {
		if err := clean.Observe(points[i], values[i]); err != nil {
			t.Fatal(err)
		}
	}
	var recBytes, cleanBytes bytesBuffer
	if _, err := recovered.WriteTo(&recBytes); err != nil {
		t.Fatal(err)
	}
	if _, err := clean.WriteTo(&cleanBytes); err != nil {
		t.Fatal(err)
	}
	if !recBytes.Equal(&cleanBytes) {
		t.Fatal("replayed model differs from a clean run over the same prefix")
	}
}

// bytesBuffer is a minimal io.Writer collecting bytes for comparison.
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *bytesBuffer) Equal(o *bytesBuffer) bool   { return string(w.b) == string(o.b) }

func TestPublisherCheckpointTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "observations.mlqj")
	jn, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{Journal: jn})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for i := 0; i < 20; i++ {
		if err := pub.Observe(geom.Point{0.25, 0.75}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if jn.Len() != 0 {
		t.Fatalf("journal holds %d records after Checkpoint, want 0", jn.Len())
	}
	if pub.Staleness() != 0 {
		t.Fatalf("staleness %d after Checkpoint, want 0", pub.Staleness())
	}
	// Post-checkpoint observations land in the (now empty) journal, so a
	// replay only re-applies what the checkpointed snapshot lacks.
	for i := 0; i < 5; i++ {
		if err := pub.Observe(geom.Point{0.25, 0.75}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	if jn.Len() != 5 {
		t.Fatalf("journal holds %d records, want the 5 post-checkpoint ones", jn.Len())
	}
	st := pub.Stats()
	if st.Journaled != 25 || st.JournalErrors != 0 {
		t.Fatalf("stats %+v, want 25 journaled / 0 errors", st)
	}
}

// TestPublisherJournalFullDegradesGracefully proves a journal at capacity
// costs crash-safety, never liveness: Observe keeps succeeding and the
// overflow is counted.
func TestPublisherJournalFullDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	jn, err := journal.Create(filepath.Join(dir, "bounded.mlqj"), journal.WithMaxRecords(3))
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{Journal: jn})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for i := 0; i < 10; i++ {
		if err := pub.Observe(geom.Point{0.5, 0.5}, float64(i)); err != nil {
			t.Fatalf("Observe %d failed after journal filled: %v", i, err)
		}
	}
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	st := pub.Stats()
	if st.Journaled != 3 || st.JournalErrors != 7 {
		t.Fatalf("stats %+v, want 3 journaled / 7 journal errors", st)
	}
	if st.Applied != 10 {
		t.Fatalf("applied %d, want all 10 despite the full journal", st.Applied)
	}
}
