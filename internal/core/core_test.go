package core

import (
	"bytes"
	"sync"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/histogram"
	"mlq/internal/quadtree"
)

func newTestMLQ(t *testing.T, strat quadtree.Strategy) *MLQ {
	t.Helper()
	m, err := NewMLQ(quadtree.Config{
		Region:      geomtest.MustRect(geom.Point{0, 0}, geom.Point{100, 100}),
		Strategy:    strat,
		MemoryLimit: 50 * quadtree.DefaultNodeBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMLQImplementsFeedbackLoop(t *testing.T) {
	m := newTestMLQ(t, quadtree.Eager)
	if _, ok := m.Predict(geom.Point{50, 50}); ok {
		t.Error("untrained model must report ok=false")
	}
	if err := m.Observe(geom.Point{50, 50}, 123); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Predict(geom.Point{50, 50})
	if !ok || got != 123 {
		t.Errorf("Predict = %g, %v; want 123, true", got, ok)
	}
	if m.Name() != "MLQ-E" {
		t.Errorf("Name = %q", m.Name())
	}
	if newTestMLQ(t, quadtree.Lazy).Name() != "MLQ-L" {
		t.Error("lazy name wrong")
	}
}

func TestNewMLQPropagatesConfigErrors(t *testing.T) {
	if _, err := NewMLQ(quadtree.Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestCostsAccounting(t *testing.T) {
	m := newTestMLQ(t, quadtree.Eager)
	for i := 0; i < 500; i++ {
		p := geom.Point{float64(i % 100), float64((i * 7) % 100)}
		m.Predict(p)
		if err := m.Observe(p, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := m.Costs()
	if c.Predictions != 500 || c.Inserts != 500 {
		t.Errorf("counters: %+v", c)
	}
	if c.PredictTime <= 0 || c.InsertTime <= 0 {
		t.Errorf("times not recorded: %+v", c)
	}
	if c.Compressions == 0 || c.CompressTime <= 0 {
		t.Errorf("expected compressions under a 50-node budget: %+v", c)
	}
	if c.APC() <= 0 || c.AUC() <= 0 {
		t.Error("APC/AUC must be positive")
	}
	if c.UpdateTime() != c.InsertTime+c.CompressTime {
		t.Error("MUC must equal IC + CC")
	}
}

func TestCostsZeroDenominator(t *testing.T) {
	var c Costs
	if c.APC() != 0 || c.AUC() != 0 {
		t.Error("zero predictions must yield zero APC/AUC, not panic")
	}
}

func TestPredictBetaOverride(t *testing.T) {
	m := newTestMLQ(t, quadtree.Eager)
	m.Observe(geom.Point{10, 10}, 100)
	m.Observe(geom.Point{12, 12}, 200)
	got, _ := m.PredictBeta(geom.Point{10, 10}, 2)
	if got != 150 {
		t.Errorf("PredictBeta(2) = %g, want pooled 150", got)
	}
}

func TestMLQSerializationRoundTrip(t *testing.T) {
	m := newTestMLQ(t, quadtree.Lazy)
	for i := 0; i < 300; i++ {
		m.Observe(geom.Point{float64(i % 100), float64((i * 13) % 100)}, float64(i))
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMLQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "MLQ-L" {
		t.Errorf("Name after reload = %q", got.Name())
	}
	p := geom.Point{42, 42}
	v1, _ := m.Predict(p)
	v2, _ := got.Predict(p)
	if v1 != v2 {
		t.Errorf("prediction diverged after reload: %g vs %g", v1, v2)
	}
}

func TestReadMLQRejectsGarbage(t *testing.T) {
	if _, err := ReadMLQ(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestHistogramSatisfiesModel(t *testing.T) {
	h, err := histogram.Train(histogram.EquiWidth, histogram.Config{
		Region: geomtest.MustRect(geom.Point{0}, geom.Point{10}),
	}, []histogram.Sample{{Point: geom.Point{1}, Value: 5}})
	if err != nil {
		t.Fatal(err)
	}
	var m Model = h
	if got, ok := m.Predict(geom.Point{1}); !ok || got != 5 {
		t.Errorf("histogram via Model = %g, %v", got, ok)
	}
	if m.Name() != "SH-W" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestEstimatorTransform(t *testing.T) {
	// UDF(start, end) modeled by elapsed = end - start, the paper's §3
	// example of a transformation T.
	m, err := NewMLQ(quadtree.Config{
		Region:      geomtest.MustRect(geom.Point{0}, geom.Point{1000}),
		MemoryLimit: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := func(args []float64) geom.Point {
		return geom.Point{args[1] - args[0]}
	}
	e := NewEstimator(m, elapsed)
	if err := e.Feedback([]float64{100, 200}, 77); err != nil {
		t.Fatal(err)
	}
	// A different call with the same elapsed time maps to the same point.
	got, ok := e.Estimate(500, 600)
	if !ok || got != 77 {
		t.Errorf("Estimate = %g, %v; want 77, true", got, ok)
	}
	if e.Model() != Model(m) {
		t.Error("Model accessor broken")
	}
}

func TestEstimatorNilTransform(t *testing.T) {
	m := newTestMLQ(t, quadtree.Eager)
	e := NewEstimator(m, nil)
	if err := e.Feedback([]float64{5, 5}, 9); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.Estimate(5, 5); got != 9 {
		t.Errorf("Estimate = %g, want 9", got)
	}
}

func TestDualEstimator(t *testing.T) {
	cpu := newTestMLQ(t, quadtree.Eager)
	io := newTestMLQ(t, quadtree.Eager)
	d := NewDualEstimator(cpu, io, nil)
	if err := d.Feedback([]float64{10, 10}, 5, 50); err != nil {
		t.Fatal(err)
	}
	c, i, cok, iok := d.Estimate(10, 10)
	if !cok || !iok || c != 5 || i != 50 {
		t.Errorf("Estimate = (%g, %g, %v, %v)", c, i, cok, iok)
	}
}

func TestDualEstimatorPropagatesErrors(t *testing.T) {
	cpu := newTestMLQ(t, quadtree.Eager)
	io := newTestMLQ(t, quadtree.Eager)
	d := NewDualEstimator(cpu, io, nil)
	if err := d.Feedback([]float64{1}, 1, 1); err == nil {
		t.Error("dimension mismatch not propagated")
	}
}

func TestSynchronizedConcurrentUse(t *testing.T) {
	s := NewSynchronized(newTestMLQ(t, quadtree.Eager))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := geom.Point{float64((g*31 + i) % 100), float64(i % 100)}
				s.Predict(p)
				if err := s.Observe(p, float64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Name() != "MLQ-E" {
		t.Errorf("Name = %q", s.Name())
	}
	inner, ok := s.Unwrap().(*MLQ)
	if !ok {
		t.Fatal("Unwrap lost the inner type")
	}
	if inner.Tree().Inserts() != 1600 {
		t.Errorf("inserts = %d, want 1600", inner.Tree().Inserts())
	}
	if err := inner.Tree().Validate(); err != nil {
		t.Error(err)
	}
}
