package core

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/journal"
)

// TestPublisherSubscribeStreamsAcceptedOrder checks the replication hook's
// contract: every accepted observation is delivered exactly once, with a
// contiguous 1-based sequence, in the same order the journal records it.
func TestPublisherSubscribeStreamsAcceptedOrder(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "obs.mlqj")
	jn, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{Journal: jn})
	if err != nil {
		t.Fatal(err)
	}
	type got struct {
		seq uint64
		p   geom.Point
		v   float64
	}
	var streamed []got
	cancel := pub.Subscribe(func(acc Accepted) {
		streamed = append(streamed, got{acc.Seq, acc.Point, acc.Value})
	})
	const n = 50
	for i := 0; i < n; i++ {
		p := geom.Point{float64(i%10) / 10, float64(i%7) / 7}
		if err := pub.Observe(p, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != n {
		t.Fatalf("streamed %d observations, want %d", len(streamed), n)
	}
	for i, g := range streamed {
		if g.seq != uint64(i+1) {
			t.Fatalf("observation %d carried seq %d, want %d", i, g.seq, i+1)
		}
		if g.v != float64(i) {
			t.Fatalf("observation %d out of order: value %g", i, g.v)
		}
	}
	if pub.AcceptedSeq() != n {
		t.Fatalf("AcceptedSeq = %d, want %d", pub.AcceptedSeq(), n)
	}
	// The journal saw the identical stream in the identical order.
	recs, cut, err := journal.ReplayFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 0 || len(recs) != n {
		t.Fatalf("journal: %d records, %d cut", len(recs), cut)
	}
	for i, r := range recs {
		if r.Value != streamed[i].v {
			t.Fatalf("journal record %d value %g, subscriber saw %g", i, r.Value, streamed[i].v)
		}
	}
	cancel()
	cancel() // idempotent
}

func TestPublisherSubscribeCancelStopsDelivery(t *testing.T) {
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	var mu sync.Mutex
	var count int
	cancel := pub.Subscribe(func(Accepted) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if err := pub.Observe(geom.Point{0.1, 0.1}, 1); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := pub.Observe(geom.Point{0.2, 0.2}, 2); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("delivered %d observations, want 1 (cancel must stop the stream)", count)
	}
}

func TestPublisherOnPublishReportsEpochWatermarks(t *testing.T) {
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	type mark struct {
		epoch   uint64
		applied int64
	}
	var marks []mark
	pub.OnPublish(func(epoch uint64, applied int64) {
		mu.Lock()
		marks = append(marks, mark{epoch, applied})
		mu.Unlock()
	})
	const n = 17
	for i := 0; i < n; i++ {
		if err := pub.Observe(geom.Point{float64(i%5) / 5, 0.5}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(marks) == 0 {
		t.Fatal("no publish marks delivered")
	}
	var lastEpoch uint64
	var lastApplied int64
	for i, m := range marks {
		if m.epoch != lastEpoch+1 {
			t.Fatalf("mark %d: epoch %d after %d, want contiguous", i, m.epoch, lastEpoch)
		}
		if m.applied <= lastApplied {
			t.Fatalf("mark %d: applied %d not monotonic after %d", i, m.applied, lastApplied)
		}
		lastEpoch, lastApplied = m.epoch, m.applied
	}
	if lastApplied != n {
		t.Fatalf("final mark applied %d, want %d", lastApplied, n)
	}
}

// TestPublisherFlushAfterCloseTyped pins the satellite fix: once Close has
// completed, Flush (and Checkpoint, which starts with one) must report the
// typed ErrPublisherClosed — never a stale writer error drained by Close.
func TestPublisherFlushAfterCloseTyped(t *testing.T) {
	jn, err := journal.Create(filepath.Join(t.TempDir(), "obs.mlqj"))
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	pub, err := NewPublisher(publisherModel(t), PublisherConfig{Journal: jn})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Observe(geom.Point{0.3, 0.3}, 1); err != nil {
		t.Fatal(err)
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := pub.Flush(); !errors.Is(err, ErrPublisherClosed) {
			t.Fatalf("Flush #%d after Close: got %v, want ErrPublisherClosed", i, err)
		}
	}
	if err := pub.Checkpoint(); !errors.Is(err, ErrPublisherClosed) {
		t.Fatalf("Checkpoint after Close: got %v, want ErrPublisherClosed", err)
	}
	// The journal was not truncated by the failed Checkpoint: the record is
	// still there for replay.
	recs, _, err := journal.ReplayFile(jn.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("journal holds %d records after refused checkpoint, want 1", len(recs))
	}
}
