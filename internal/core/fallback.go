package core

import (
	"fmt"
	"math"
	"strings"

	"mlq/internal/geom"
)

// ValidCost reports whether v is usable as an observed or predicted UDF
// execution cost: finite and non-negative. NaN, ±Inf and negative values are
// the corruptions a hardened feedback loop must quarantine rather than feed
// into a model (they would poison every block average on their insertion
// path).
func ValidCost(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// Fallback is a graceful-degradation chain of cost models: Predict walks the
// members in order and returns the first usable answer (ok and ValidCost),
// bottoming out at a constant prior so it *always* answers — an optimizer
// built on a Fallback never loses cost-based planning entirely, it only
// degrades in fidelity (self-tuning MLQ → static histogram → constant).
//
// Observe routes to the first member only, which by convention is the
// self-tuning one; static members keep their a-priori training. Invalid
// observations are rejected with an error before reaching the member, so a
// Fallback is safe to feed unvalidated measurements.
//
// Fallback is not safe for concurrent use; wrap it in Synchronized.
type Fallback struct {
	members  []Model
	prior    float64
	answered []int64 // per-member Predict answers
	priorAns int64   // Predicts that bottomed out at the prior
	rejected int64   // invalid observations refused
}

var _ Model = (*Fallback)(nil)

// NewFallback builds the chain. The prior must itself be a valid cost; the
// member list may be empty (a pure constant model). Nil members are skipped.
func NewFallback(prior float64, members ...Model) (*Fallback, error) {
	if !ValidCost(prior) {
		return nil, fmt.Errorf("core: fallback prior %g is not a valid cost", prior)
	}
	kept := make([]Model, 0, len(members))
	for _, m := range members {
		if m != nil {
			kept = append(kept, m)
		}
	}
	return &Fallback{
		members:  kept,
		prior:    prior,
		answered: make([]int64, len(kept)),
	}, nil
}

// Predict implements Model. ok is always true: some level of the chain
// answers every query.
func (f *Fallback) Predict(p geom.Point) (float64, bool) {
	for i, m := range f.members {
		if v, ok := m.Predict(p); ok && ValidCost(v) {
			f.answered[i]++
			return v, true
		}
	}
	f.priorAns++
	return f.prior, true
}

// Observe implements Model: the sample is validated, then routed to the
// first (self-tuning) member. A chain with no members absorbs observations
// silently.
func (f *Fallback) Observe(p geom.Point, actual float64) error {
	if !ValidCost(actual) {
		f.rejected++
		return fmt.Errorf("core: fallback rejects invalid observed cost %g", actual)
	}
	if len(f.members) == 0 {
		return nil
	}
	return f.members[0].Observe(p, actual)
}

// Name implements Model, e.g. "FB(MLQ-E→SH-H→prior)".
func (f *Fallback) Name() string {
	var b strings.Builder
	b.WriteString("FB(")
	for _, m := range f.members {
		b.WriteString(m.Name())
		b.WriteString("→")
	}
	b.WriteString("prior)")
	return b.String()
}

// FallbackStats reports how often each level of the chain answered.
type FallbackStats struct {
	// Answered[i] counts predictions answered by member i, in chain order.
	Answered []int64
	// Prior counts predictions that bottomed out at the constant prior.
	Prior int64
	// Rejected counts invalid observations refused by Observe.
	Rejected int64
}

// Stats returns the chain's degradation counters.
func (f *Fallback) Stats() FallbackStats {
	out := FallbackStats{
		Answered: make([]int64, len(f.answered)),
		Prior:    f.priorAns,
		Rejected: f.rejected,
	}
	copy(out.Answered, f.answered)
	return out
}

// Members returns the chain's members in order (e.g. for catalog
// persistence of the individual models).
func (f *Fallback) Members() []Model { return f.members }
