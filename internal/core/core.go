// Package core defines the UDF cost-modeling API of the paper's Figure 1:
// a Model interface shared by the self-tuning MLQ methods and the static SH
// baselines, an instrumented MLQ implementation that tracks the paper's
// prediction and model-update costs (APC, AUC), an Estimator that binds a
// model to a UDF's argument-to-model-variable transformation T, and a
// DualEstimator that maintains the paper's separate CPU and disk-IO models.
package core

import (
	"fmt"
	"io"
	"sync"
	"time"

	"mlq/internal/geom"
	"mlq/internal/quadtree"
)

// Model is a UDF execution-cost model. A query optimizer calls Predict to
// estimate the cost of executing a UDF at a point in model-variable space;
// the execution engine calls Observe with the actual cost afterwards
// (the query feedback loop of Fig. 1). Static models ignore Observe.
type Model interface {
	// Predict estimates the cost at p. ok is false when the model has no
	// information at all (e.g. an untrained, empty model).
	Predict(p geom.Point) (value float64, ok bool)
	// Observe feeds back the actual cost of an execution at p.
	Observe(p geom.Point, actual float64) error
	// Name identifies the method ("MLQ-E", "MLQ-L", "SH-H", "SH-W").
	Name() string
}

// MLQ is the paper's memory-limited-quadtree cost model with the
// instrumentation needed by Experiment 2: it accumulates wall time spent in
// prediction, insertion and compression so APC and AUC (Eq. 1, 2) can be
// reported. MLQ is not safe for concurrent use; see Synchronized.
type MLQ struct {
	tree *quadtree.Tree

	predTime    time.Duration
	predCount   int64
	updateTime  time.Duration // insertion including in-line compression
	updateCount int64
}

var _ Model = (*MLQ)(nil)

// NewMLQ builds an empty MLQ model. The quadtree.Config carries the paper's
// parameters: Strategy (MLQ-E or MLQ-L), λ, α, β, γ, and the memory limit.
func NewMLQ(cfg quadtree.Config) (*MLQ, error) {
	t, err := quadtree.New(cfg)
	if err != nil {
		return nil, err
	}
	return &MLQ{tree: t}, nil
}

// NewMLQFrom wraps an existing tree (e.g. one deserialized from a catalog).
func NewMLQFrom(t *quadtree.Tree) *MLQ { return &MLQ{tree: t} }

// Predict implements Model using the tree's configured β.
func (m *MLQ) Predict(p geom.Point) (float64, bool) {
	start := time.Now()
	v, ok := m.tree.Predict(p)
	m.predTime += time.Since(start)
	m.predCount++
	return v, ok
}

// PredictBeta predicts with an explicit β, overriding the configured one.
func (m *MLQ) PredictBeta(p geom.Point, beta int) (float64, bool) {
	start := time.Now()
	v, ok := m.tree.PredictBeta(p, beta)
	m.predTime += time.Since(start)
	m.predCount++
	return v, ok
}

// Observe implements Model: it inserts the observed execution as a new data
// point, compressing if the memory limit is exceeded.
func (m *MLQ) Observe(p geom.Point, actual float64) error {
	start := time.Now()
	err := m.tree.Insert(p, actual)
	m.updateTime += time.Since(start)
	m.updateCount++
	return err
}

// Name implements Model ("MLQ-E" or "MLQ-L").
func (m *MLQ) Name() string { return m.tree.Config().Strategy.String() }

// Tree exposes the underlying quadtree for inspection and serialization.
func (m *MLQ) Tree() *quadtree.Tree { return m.tree }

// MemoryUsed returns the model's current memory charge in bytes.
func (m *MLQ) MemoryUsed() int { return m.tree.MemoryUsed() }

// MemoryLimit returns the model's live memory budget in bytes.
func (m *MLQ) MemoryLimit() int { return m.tree.MemoryLimit() }

// Resize moves the model's live memory budget (see quadtree.Tree.Resize):
// shrinking compresses the tree down to the new limit, growing raises the
// ceiling. Resize time is deliberately not charged to the update-cost
// accounting — it is budget stewardship, not feedback.
func (m *MLQ) Resize(newLimit int) error { return m.tree.Resize(newLimit) }

// Snapshot returns an immutable copy of the model's tree, the consistent
// read a budget arbiter prices marginals against.
func (m *MLQ) Snapshot() *quadtree.Snapshot { return m.tree.Snapshot() }

// WriteTo persists the model's tree. It implements io.WriterTo.
func (m *MLQ) WriteTo(w io.Writer) (int64, error) { return m.tree.WriteTo(w) }

// ReadMLQ loads a model previously persisted with WriteTo.
func ReadMLQ(r io.Reader) (*MLQ, error) {
	t, err := quadtree.Read(r)
	if err != nil {
		return nil, err
	}
	return NewMLQFrom(t), nil
}

// Costs is the paper's modeling-cost breakdown (Experiment 2, Fig. 10):
// cumulative wall time spent predicting (PC), inserting (IC) and
// compressing (CC), plus the counter denominators.
type Costs struct {
	PredictTime  time.Duration // PC
	InsertTime   time.Duration // IC (excludes compression)
	CompressTime time.Duration // CC
	Predictions  int64
	Inserts      int64
	Compressions int64
}

// UpdateTime returns the model-update cost MUC = IC + CC.
func (c Costs) UpdateTime() time.Duration { return c.InsertTime + c.CompressTime }

// APC returns the average prediction cost (Eq. 1).
func (c Costs) APC() time.Duration {
	if c.Predictions == 0 {
		return 0
	}
	return c.PredictTime / time.Duration(c.Predictions)
}

// AUC returns the average model-update cost (Eq. 2): total insertion plus
// compression time normalized by the number of predictions.
func (c Costs) AUC() time.Duration {
	if c.Predictions == 0 {
		return 0
	}
	return c.UpdateTime() / time.Duration(c.Predictions)
}

// Costs returns the model's accumulated cost breakdown.
func (m *MLQ) Costs() Costs {
	cc := m.tree.CompressTime()
	ic := m.updateTime - cc
	if ic < 0 {
		ic = 0
	}
	return Costs{
		PredictTime:  m.predTime,
		InsertTime:   ic,
		CompressTime: cc,
		Predictions:  m.predCount,
		Inserts:      m.updateCount,
		Compressions: m.tree.Compressions(),
	}
}

// Transform is the paper's optional transformation T: it maps a UDF's input
// arguments to the (usually lower-dimensional) model variables. A nil
// Transform uses the arguments directly.
type Transform func(args []float64) geom.Point

// Estimator binds a cost model to a UDF via its transformation, giving the
// optimizer a call-shaped API: estimate from raw arguments, feed back from
// raw arguments.
type Estimator struct {
	model     Model
	transform Transform
}

// NewEstimator returns an estimator over model; transform may be nil.
func NewEstimator(model Model, transform Transform) *Estimator {
	return &Estimator{model: model, transform: transform}
}

// point applies the transformation.
func (e *Estimator) point(args []float64) geom.Point {
	if e.transform == nil {
		return geom.Point(args)
	}
	return e.transform(args)
}

// Estimate predicts the execution cost of the UDF called with args.
func (e *Estimator) Estimate(args ...float64) (float64, bool) {
	return e.model.Predict(e.point(args))
}

// Feedback records the actual cost of the UDF called with args.
func (e *Estimator) Feedback(args []float64, actual float64) error {
	return e.model.Observe(e.point(args), actual)
}

// Model returns the wrapped model.
func (e *Estimator) Model() Model { return e.model }

// DualEstimator keeps the paper's two models per UDF — one for CPU cost and
// one for disk-IO cost — typically configured with different β values
// (β=1 for CPU, β=10 for the noisier IO cost; §5.1).
type DualEstimator struct {
	CPU *Estimator
	IO  *Estimator
}

// NewDualEstimator pairs CPU and IO models under one transformation.
func NewDualEstimator(cpu, io Model, transform Transform) *DualEstimator {
	return &DualEstimator{
		CPU: NewEstimator(cpu, transform),
		IO:  NewEstimator(io, transform),
	}
}

// Estimate predicts both cost components. Either ok flag may be false for
// untrained models.
func (d *DualEstimator) Estimate(args ...float64) (cpu, io float64, cpuOK, ioOK bool) {
	cpu, cpuOK = d.CPU.Estimate(args...)
	io, ioOK = d.IO.Estimate(args...)
	return cpu, io, cpuOK, ioOK
}

// Feedback records both actual cost components.
func (d *DualEstimator) Feedback(args []float64, cpu, io float64) error {
	if err := d.CPU.Feedback(args, cpu); err != nil {
		return fmt.Errorf("core: cpu model: %w", err)
	}
	if err := d.IO.Feedback(args, io); err != nil {
		return fmt.Errorf("core: io model: %w", err)
	}
	return nil
}

// Synchronized wraps a model with a mutex so concurrent optimizer threads
// can share it. The paper's setting is single-threaded; this wrapper exists
// for use inside a real multi-session DBMS.
type Synchronized struct {
	mu sync.Mutex
	m  Model
}

var _ Model = (*Synchronized)(nil)

// NewSynchronized wraps m.
func NewSynchronized(m Model) *Synchronized { return &Synchronized{m: m} }

// Predict implements Model.
func (s *Synchronized) Predict(p geom.Point) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Predict(p)
}

// Observe implements Model.
func (s *Synchronized) Observe(p geom.Point, actual float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Observe(p, actual)
}

// Name implements Model.
func (s *Synchronized) Name() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Name()
}

// Unwrap returns the inner model.
func (s *Synchronized) Unwrap() Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m
}
