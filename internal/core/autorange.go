package core

import (
	"fmt"
	"math/rand"

	"mlq/internal/geom"
	"mlq/internal/quadtree"
)

// AutoRange handles ordinal input arguments whose ranges are not known in
// advance — the second extension the paper defers to future work (§3: "we
// assume the input arguments are ordinal and their ranges are given").
//
// It wraps an MLQ model with a grow-on-demand region: observations are kept
// in a fixed-size reservoir sample, and when a point lands outside the
// current region the region is expanded (with slack, so expansions are
// O(log range) rather than per-point) and the model is rebuilt over the new
// region by replaying the reservoir. Between expansions it behaves exactly
// like the wrapped MLQ.
type AutoRange struct {
	cfg       quadtree.Config
	model     *MLQ
	reservoir []obs
	seen      int64
	rebuilds  int64
	rng       *rand.Rand
}

type obs struct {
	p geom.Point
	v float64
}

var _ Model = (*AutoRange)(nil)

// NewAutoRange wraps an MLQ configuration whose Region is only an initial
// guess. reservoirSize bounds the memory spent remembering observations for
// replay (a few hundred is plenty); seed drives reservoir sampling.
func NewAutoRange(cfg quadtree.Config, reservoirSize int, seed int64) (*AutoRange, error) {
	if reservoirSize < 1 {
		return nil, fmt.Errorf("core: reservoirSize must be >= 1, got %d", reservoirSize)
	}
	m, err := NewMLQ(cfg)
	if err != nil {
		return nil, err
	}
	return &AutoRange{
		cfg:       m.Tree().Config(),
		model:     m,
		reservoir: make([]obs, 0, reservoirSize),
		rng:       rand.New(rand.NewSource(seed)),
	}, nil
}

// Predict implements Model. Points outside the current region are clamped
// onto it, like the underlying MLQ.
func (a *AutoRange) Predict(p geom.Point) (float64, bool) { return a.model.Predict(p) }

// Name implements Model.
func (a *AutoRange) Name() string { return a.model.Name() + "+autorange" }

// Observe implements Model: it grows the region if needed, then feeds the
// observation to the wrapped model and the reservoir.
func (a *AutoRange) Observe(p geom.Point, actual float64) error {
	if len(p) != a.cfg.Region.Dims() {
		return fmt.Errorf("core: point has %d dims, model has %d", len(p), a.cfg.Region.Dims())
	}
	if !a.cfg.Region.Contains(p) {
		if err := a.expandTo(p); err != nil {
			return err
		}
	}
	if err := a.model.Observe(p, actual); err != nil {
		return err
	}
	a.sample(obs{p: p.Clone(), v: actual})
	return nil
}

// sample implements reservoir sampling (algorithm R).
func (a *AutoRange) sample(o obs) {
	a.seen++
	if len(a.reservoir) < cap(a.reservoir) {
		a.reservoir = append(a.reservoir, o)
		return
	}
	if j := a.rng.Int63n(a.seen); int(j) < len(a.reservoir) {
		a.reservoir[j] = o
	}
}

// expandTo grows the region to cover p with 25% slack on every violated
// side, then rebuilds the model over the new region, replaying the
// reservoir so accumulated knowledge survives (at reservoir resolution).
func (a *AutoRange) expandTo(p geom.Point) error {
	lo := a.cfg.Region.Lo.Clone()
	hi := a.cfg.Region.Hi.Clone()
	for i := range p {
		span := hi[i] - lo[i]
		if p[i] < lo[i] {
			lo[i] = p[i] - 0.25*(span+(lo[i]-p[i]))
		}
		if p[i] >= hi[i] {
			hi[i] = p[i] + 0.25*(span+(p[i]-hi[i]))
			if hi[i] <= p[i] { // degenerate span guard
				hi[i] = p[i] + 1
			}
		}
	}
	region, err := geom.NewRect(lo, hi)
	if err != nil {
		return fmt.Errorf("core: expanding region: %w", err)
	}
	cfg := a.cfg
	cfg.Region = region
	m, err := NewMLQ(cfg)
	if err != nil {
		return err
	}
	for _, o := range a.reservoir {
		if err := m.Observe(o.p, o.v); err != nil {
			return err
		}
	}
	a.cfg = cfg
	a.model = m
	a.rebuilds++
	return nil
}

// Region returns the current (possibly expanded) region.
func (a *AutoRange) Region() geom.Rect { return a.cfg.Region.Clone() }

// Rebuilds returns how many region expansions have occurred.
func (a *AutoRange) Rebuilds() int64 { return a.rebuilds }

// Model returns the current wrapped MLQ (replaced on every rebuild).
func (a *AutoRange) Model() *MLQ { return a.model }
