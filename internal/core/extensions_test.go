package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/quadtree"
)

func smallFactory(t *testing.T) func() (Model, error) {
	t.Helper()
	return func() (Model, error) {
		return NewMLQ(quadtree.Config{
			Region:      geomtest.MustRect(geom.Point{0}, geom.Point{100}),
			MemoryLimit: 40 * quadtree.DefaultNodeBytes,
		})
	}
}

func TestNewCategoricalValidation(t *testing.T) {
	if _, err := NewCategorical(nil, 4); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := NewCategorical(smallFactory(t), 0); err == nil {
		t.Error("zero cap accepted")
	}
}

func TestCategoricalSeparatesCategories(t *testing.T) {
	c, err := NewCategorical(smallFactory(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Same ordinal point, wildly different costs per category — the case
	// a single ordinal model cannot represent.
	p := geom.Point{50}
	if err := c.Observe("jpeg", p, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe("tiff", p, 1000); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Predict("jpeg", p); !ok || v != 10 {
		t.Errorf("jpeg = %g, %v; want 10", v, ok)
	}
	if v, ok := c.Predict("tiff", p); !ok || v != 1000 {
		t.Errorf("tiff = %g, %v; want 1000", v, ok)
	}
	if _, ok := c.Predict("png", p); ok {
		t.Error("unseen category predicted without any model")
	}
	cats := c.Categories()
	if len(cats) != 2 || cats[0] != "jpeg" || cats[1] != "tiff" {
		t.Errorf("Categories = %v", cats)
	}
}

func TestCategoricalOverflowSharing(t *testing.T) {
	c, err := NewCategorical(smallFactory(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Point{10}
	for i, cat := range []string{"a", "b", "c", "d"} {
		if err := c.Observe(cat, p, float64(100*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Materialized() != 2 {
		t.Errorf("materialized %d models, want 2", c.Materialized())
	}
	if !c.HasOverflow() {
		t.Fatal("overflow model not created")
	}
	// "c" and "d" share the overflow model: prediction is their pooled
	// average (300+400)/2.
	if v, _ := c.Predict("c", p); v != 350 {
		t.Errorf("overflow predict = %g, want pooled 350", v)
	}
	// Unseen categories also route to the overflow model once it exists.
	if v, ok := c.Predict("zzz", p); !ok || v != 350 {
		t.Errorf("unseen category = %g, %v; want 350, true", v, ok)
	}
	// Capped categories keep their dedicated models.
	if v, _ := c.Predict("a", p); v != 100 {
		t.Errorf("dedicated model polluted: a = %g", v)
	}
}

func TestCategoricalFactoryErrorPropagates(t *testing.T) {
	bad := func() (Model, error) { return nil, fmt.Errorf("boom") }
	c, err := NewCategorical(bad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Observe("x", geom.Point{1}, 1); err == nil {
		t.Error("factory error swallowed")
	}
}

func autoRangeCfg() quadtree.Config {
	return quadtree.Config{
		Region:      geomtest.MustRect(geom.Point{0, 0}, geom.Point{10, 10}),
		MemoryLimit: 1 << 16,
	}
}

func TestNewAutoRangeValidation(t *testing.T) {
	if _, err := NewAutoRange(autoRangeCfg(), 0, 1); err == nil {
		t.Error("zero reservoir accepted")
	}
	if _, err := NewAutoRange(quadtree.Config{}, 10, 1); err == nil {
		t.Error("invalid inner config accepted")
	}
}

func TestAutoRangeExpandsAndRetainsKnowledge(t *testing.T) {
	a, err := NewAutoRange(autoRangeCfg(), 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Train inside the initial region.
	for i := 0; i < 200; i++ {
		p := geom.Point{float64(i % 10), float64((i * 3) % 10)}
		if err := a.Observe(p, 5); err != nil {
			t.Fatal(err)
		}
	}
	if a.Rebuilds() != 0 {
		t.Fatalf("rebuilt %d times inside the initial region", a.Rebuilds())
	}
	// A far-outside point triggers expansion.
	if err := a.Observe(geom.Point{500, 500}, 90); err != nil {
		t.Fatal(err)
	}
	if a.Rebuilds() != 1 {
		t.Fatalf("Rebuilds = %d, want 1", a.Rebuilds())
	}
	r := a.Region()
	if !r.Contains(geom.Point{500, 500}) {
		t.Fatalf("expanded region %v does not contain the new point", r)
	}
	if !r.Contains(geom.Point{5, 5}) {
		t.Fatalf("expanded region %v dropped the original space", r)
	}
	// Old knowledge survives the rebuild via the reservoir: the original
	// hot region still predicts ~5, not the new point's 90.
	if v, ok := a.Predict(geom.Point{5, 5}); !ok || v > 20 {
		t.Errorf("old region prediction = %g, %v; want ~5", v, ok)
	}
	if a.Name() == "" || a.Model() == nil {
		t.Error("accessors broken")
	}
}

func TestAutoRangeNegativeDirectionAndDims(t *testing.T) {
	a, err := NewAutoRange(autoRangeCfg(), 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(geom.Point{1}, 1); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := a.Observe(geom.Point{-100, 5}, 7); err != nil {
		t.Fatal(err)
	}
	if !a.Region().Contains(geom.Point{-100, 5}) {
		t.Error("region did not grow downward")
	}
	if v, ok := a.Predict(geom.Point{-100, 5}); !ok || v != 7 {
		t.Errorf("prediction after downward growth = %g, %v", v, ok)
	}
}

func TestAutoRangeExpansionCountLogarithmic(t *testing.T) {
	// Feeding points that double in magnitude must trigger O(log range)
	// rebuilds thanks to the 25% slack, not one per point.
	a, err := NewAutoRange(autoRangeCfg(), 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		mag := float64(uint(1) << uint(i%20))
		p := geom.Point{rng.Float64() * mag, rng.Float64() * mag}
		if err := a.Observe(p, mag); err != nil {
			t.Fatal(err)
		}
	}
	if a.Rebuilds() > 120 {
		t.Errorf("rebuilt %d times over 2000 observations; slack not working", a.Rebuilds())
	}
	if err := a.Model().Tree().Validate(); err != nil {
		t.Error(err)
	}
}
