package core_test

import (
	"fmt"

	"mlq/internal/core"
	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/quadtree"
)

// ExampleEstimator shows a transformation T mapping UDF arguments to model
// variables (§3): a UDF over (start, end) modeled by elapsed = end − start.
func ExampleEstimator() {
	model, err := core.NewMLQ(quadtree.Config{
		Region:      geomtest.MustRect(geom.Point{0}, geom.Point{1000}),
		MemoryLimit: 1843,
	})
	if err != nil {
		panic(err)
	}
	elapsed := func(args []float64) geom.Point { return geom.Point{args[1] - args[0]} }
	est := core.NewEstimator(model, elapsed)

	// Feedback from one execution: process(100, 350) took 25 cost units.
	if err := est.Feedback([]float64{100, 350}, 25); err != nil {
		panic(err)
	}
	// A different call with the same elapsed time maps to the same model
	// point, so the knowledge transfers.
	cost, ok := est.Estimate(500, 750)
	fmt.Printf("%.0f %v\n", cost, ok)
	// Output: 25 true
}

// ExampleDualEstimator models CPU and disk IO separately, with the paper's
// recommended β values (β=1 for CPU, β=10 for noisy IO).
func ExampleDualEstimator() {
	mk := func(beta int) core.Model {
		m, err := core.NewMLQ(quadtree.Config{
			Region:      geomtest.MustRect(geom.Point{0}, geom.Point{100}),
			Beta:        beta,
			MemoryLimit: 1843,
		})
		if err != nil {
			panic(err)
		}
		return m
	}
	dual := core.NewDualEstimator(mk(1), mk(10), nil)
	if err := dual.Feedback([]float64{42}, 7, 120); err != nil {
		panic(err)
	}
	cpu, io, _, _ := dual.Estimate(42)
	fmt.Printf("cpu=%.0f io=%.0f\n", cpu, io)
	// Output: cpu=7 io=120
}
