package core

import (
	"fmt"
	"sort"

	"mlq/internal/geom"
)

// Categorical models a UDF that takes nominal (categorical) input arguments
// alongside ordinal ones — the extension the paper defers to future work
// (§3: "we assume the input arguments are ordinal ... while leaving it to
// future work to incorporate nominal arguments"). It maintains one
// sub-model per distinct category value; since nominal values have no
// spatial order, giving each its own quadtree is the natural lifting of the
// MLQ approach.
//
// The number of materialized sub-models is capped. Categories beyond the
// cap share a single overflow model, so memory stays bounded at
// (maxCategories + 1) x the per-model budget however many distinct values
// appear.
type Categorical struct {
	factory       func() (Model, error)
	models        map[string]Model
	overflow      Model
	maxCategories int
	observed      map[string]int64
}

// NewCategorical builds a categorical model family. factory constructs one
// sub-model (typically a small NewMLQ closure); maxCategories caps the
// number of per-category models materialized before values fall into the
// shared overflow model.
func NewCategorical(factory func() (Model, error), maxCategories int) (*Categorical, error) {
	if factory == nil {
		return nil, fmt.Errorf("core: Categorical requires a model factory")
	}
	if maxCategories < 1 {
		return nil, fmt.Errorf("core: maxCategories must be >= 1, got %d", maxCategories)
	}
	return &Categorical{
		factory:       factory,
		models:        make(map[string]Model),
		maxCategories: maxCategories,
		observed:      make(map[string]int64),
	}, nil
}

// modelFor returns the sub-model for a category, materializing it on first
// use or routing to the overflow model when the cap is reached.
func (c *Categorical) modelFor(category string) (Model, error) {
	if m, ok := c.models[category]; ok {
		return m, nil
	}
	if len(c.models) < c.maxCategories {
		m, err := c.factory()
		if err != nil {
			return nil, err
		}
		c.models[category] = m
		return m, nil
	}
	if c.overflow == nil {
		m, err := c.factory()
		if err != nil {
			return nil, err
		}
		c.overflow = m
	}
	return c.overflow, nil
}

// Predict estimates the cost of executing the UDF with the given nominal
// category and ordinal point. ok is false when no data has been seen for
// the category's model.
func (c *Categorical) Predict(category string, p geom.Point) (float64, bool) {
	m, ok := c.models[category]
	if !ok {
		m = c.overflow
	}
	if m == nil {
		return 0, false
	}
	return m.Predict(p)
}

// Observe feeds back the actual cost of an execution with the given nominal
// category and ordinal point.
func (c *Categorical) Observe(category string, p geom.Point, actual float64) error {
	m, err := c.modelFor(category)
	if err != nil {
		return err
	}
	c.observed[category]++
	return m.Observe(p, actual)
}

// Categories returns the distinct category values observed so far, sorted.
func (c *Categorical) Categories() []string {
	out := make([]string, 0, len(c.observed))
	for k := range c.observed {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Materialized returns how many per-category models exist (excluding the
// overflow model).
func (c *Categorical) Materialized() int { return len(c.models) }

// HasOverflow reports whether the shared overflow model has been created.
func (c *Categorical) HasOverflow() bool { return c.overflow != nil }
