package core

import (
	"math"
	"sync"
	"testing"

	"mlq/internal/faults"
	"mlq/internal/geom"
	"mlq/internal/histogram"
	"mlq/internal/quadtree"
)

func fallbackMLQ(t *testing.T) *MLQ {
	t.Helper()
	m, err := NewMLQ(quadtree.Config{Region: geom.UnitCube(2), MemoryLimit: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func trainedHist(t *testing.T, value float64) *histogram.Histogram {
	t.Helper()
	samples := []histogram.Sample{
		{Point: geom.Point{0.25, 0.25}, Value: value},
		{Point: geom.Point{0.75, 0.75}, Value: value},
	}
	h, err := histogram.Train(histogram.EquiWidth,
		histogram.Config{Region: geom.UnitCube(2), MemoryLimit: 1843}, samples)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestValidCost(t *testing.T) {
	for _, v := range []float64{0, 1, 1e12} {
		if !ValidCost(v) {
			t.Errorf("ValidCost(%g) = false", v)
		}
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, -1e-9} {
		if ValidCost(v) {
			t.Errorf("ValidCost(%g) = true", v)
		}
	}
}

func TestNewFallbackValidation(t *testing.T) {
	if _, err := NewFallback(math.NaN()); err == nil {
		t.Error("NaN prior accepted")
	}
	if _, err := NewFallback(-1); err == nil {
		t.Error("negative prior accepted")
	}
	fb, err := NewFallback(3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb.Members()) != 0 {
		t.Error("nil members not skipped")
	}
}

func TestFallbackAlwaysAnswers(t *testing.T) {
	// Untrained MLQ, untrained... everything: the prior must answer.
	fb, err := NewFallback(7.5, fallbackMLQ(t))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := fb.Predict(geom.Point{0.5, 0.5})
	if !ok || v != 7.5 {
		t.Fatalf("untrained chain answered (%g, %v), want prior 7.5", v, ok)
	}
	if s := fb.Stats(); s.Prior != 1 {
		t.Errorf("prior answers = %d, want 1", s.Prior)
	}
}

func TestFallbackChainOrder(t *testing.T) {
	mlq := fallbackMLQ(t)
	hist := trainedHist(t, 100)
	fb, err := NewFallback(5, mlq, hist)
	if err != nil {
		t.Fatal(err)
	}
	// MLQ untrained → the static histogram answers.
	if v, _ := fb.Predict(geom.Point{0.5, 0.5}); v != 100 {
		t.Fatalf("static level answered %g, want 100", v)
	}
	// Train the self-tuning member through the chain; it takes over.
	for i := 0; i < 50; i++ {
		p := geom.Point{float64(i%10) / 10, float64(i%7) / 7}
		if err := fb.Observe(p, 20); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := fb.Predict(geom.Point{0.5, 0.5}); v != 20 {
		t.Fatalf("self-tuning level answered %g, want 20", v)
	}
	s := fb.Stats()
	if s.Answered[0] == 0 || s.Answered[1] == 0 {
		t.Errorf("chain levels unused: %+v", s)
	}
	// Observations must not have reached the static member.
	if v, _ := hist.Predict(geom.Point{0.5, 0.5}); v != 100 {
		t.Errorf("static member drifted to %g", v)
	}
}

func TestFallbackRejectsInvalidObservations(t *testing.T) {
	mlq := fallbackMLQ(t)
	fb, err := NewFallback(1, mlq)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), -4} {
		if err := fb.Observe(geom.Point{0.5, 0.5}, v); err == nil {
			t.Errorf("Observe(%g) accepted", v)
		}
	}
	if s := fb.Stats(); s.Rejected != 3 {
		t.Errorf("Rejected = %d, want 3", s.Rejected)
	}
	// Nothing reached the MLQ member.
	if n := mlq.Costs().Inserts; n != 0 {
		t.Errorf("invalid observations reached the model: %d inserts", n)
	}
}

func TestFallbackName(t *testing.T) {
	fb, _ := NewFallback(1, fallbackMLQ(t), trainedHist(t, 1))
	if got := fb.Name(); got != "FB(MLQ-E→SH-W→prior)" {
		t.Errorf("Name = %q", got)
	}
}

// TestSynchronizedFallbackUnderFaultFire hammers a Synchronized Fallback
// with concurrent Predict/Observe while a fault injector corrupts a fraction
// of the observed costs. Run under -race. The model must stay consistent:
// no data race, every prediction valid, corrupted observations rejected
// rather than absorbed.
func TestSynchronizedFallbackUnderFaultFire(t *testing.T) {
	mlq := fallbackMLQ(t)
	fb, err := NewFallback(2, mlq, trainedHist(t, 50))
	if err != nil {
		t.Fatal(err)
	}
	m := NewSynchronized(fb)

	const goroutines = 8
	const iters = 2000
	var rejected int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			inj := faults.New(int64(g + 1))
			inj.Enable(faults.ObserveCost, faults.SiteConfig{Probability: 0.25})
			var myRejected int64
			for i := 0; i < iters; i++ {
				p := geom.Point{float64(i%13) / 13, float64((i*g)%17) / 17}
				if v, ok := m.Predict(p); !ok || !ValidCost(v) {
					t.Errorf("invalid prediction (%g, %v)", v, ok)
					return
				}
				obs, _ := inj.MaybeCorruptCost(10 + float64(i%5))
				if err := m.Observe(p, obs); err != nil {
					myRejected++
				}
			}
			mu.Lock()
			rejected += myRejected
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	if rejected == 0 {
		t.Error("no corrupted observation was rejected — quarantine inactive")
	}
	// ~25% of observations are corrupted; 3 of the 4 corruption kinds are
	// invalid (outliers are valid-but-wrong), so roughly 3/16 get rejected.
	total := int64(goroutines * iters)
	if rejected > total/2 {
		t.Errorf("rejected %d of %d — far more than the corruption rate", rejected, total)
	}
	// The surviving model still predicts sanely everywhere.
	for _, p := range []geom.Point{{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.9}} {
		v, ok := m.Predict(p)
		if !ok || !ValidCost(v) {
			t.Fatalf("post-hammer prediction invalid at %v: (%g, %v)", p, v, ok)
		}
	}
}
