// Package nncurve implements the neural-network curve-fitting UDF cost
// model of Boulos et al. (Trans. IPSJ 1997), the other prior approach the
// paper discusses (§2.1). It is a small multi-layer perceptron trained by
// stochastic gradient descent on an a-priori sample of UDF executions —
// static, like the SH baselines.
//
// The paper excludes it from its comparison because "neural networks
// techniques are complex to implement and very slow to train"; having a
// real implementation lets the harness quantify that claim (training time
// vs accuracy against MLQ and SH at the same memory budget — a parameter is
// charged 8 bytes, so 1.8 KB buys roughly a 4-16-8-1 network).
package nncurve

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mlq/internal/geom"
	"mlq/internal/histogram"
)

// Config parameterizes network construction and training.
type Config struct {
	// Region is the input domain, used to normalize inputs to [-1, 1].
	Region geom.Rect
	// Hidden lists the hidden-layer widths. Default {16, 8}.
	Hidden []int
	// LearningRate for SGD. Default 0.02.
	LearningRate float64
	// Momentum for SGD. Default 0.9.
	Momentum float64
	// Epochs over the training set. Default 200.
	Epochs int
	// MemoryLimit in bytes; each weight costs 8. Zero disables the
	// check. The harness passes the paper's 1843.
	MemoryLimit int
	// Seed drives weight initialization and sample shuffling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Hidden == nil {
		c.Hidden = []int{16, 8}
	}
	//lint:ignore floatguard exact zero is the documented unset-field sentinel
	if c.LearningRate == 0 {
		c.LearningRate = 0.02
	}
	//lint:ignore floatguard exact zero is the documented unset-field sentinel
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.Epochs == 0 {
		c.Epochs = 200
	}
	return c
}

// layer is one fully connected layer: out = act(W·in + b).
type layer struct {
	in, out   int
	w         []float64 // out x in, row-major
	b         []float64
	vw, vb    []float64 // momentum buffers
	hiddenAct bool      // tanh for hidden layers, identity for output
}

// Network is a trained feed-forward cost model. It satisfies core.Model;
// Observe is a no-op because the approach is static.
type Network struct {
	cfg      Config
	layers   []*layer
	outScale float64 // costs are trained as y/outScale
	trained  bool
	trainDur time.Duration
}

// Params returns the total number of weights and biases.
func (n *Network) Params() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.w) + len(l.b)
	}
	return total
}

// MemoryUsed returns the model's memory charge (8 bytes per parameter).
func (n *Network) MemoryUsed() int { return n.Params() * 8 }

// TrainingTime returns how long Train spent fitting the network.
func (n *Network) TrainingTime() time.Duration { return n.trainDur }

// newNetwork builds the layer stack with small random weights.
func newNetwork(cfg Config, rng *rand.Rand) *Network {
	sizes := append([]int{cfg.Region.Dims()}, cfg.Hidden...)
	sizes = append(sizes, 1)
	n := &Network{cfg: cfg, outScale: 1}
	for i := 0; i+1 < len(sizes); i++ {
		l := &layer{
			in:        sizes[i],
			out:       sizes[i+1],
			w:         make([]float64, sizes[i+1]*sizes[i]),
			b:         make([]float64, sizes[i+1]),
			vw:        make([]float64, sizes[i+1]*sizes[i]),
			vb:        make([]float64, sizes[i+1]),
			hiddenAct: i+2 < len(sizes),
		}
		scale := math.Sqrt(2 / float64(l.in))
		for j := range l.w {
			l.w[j] = rng.NormFloat64() * scale
		}
		n.layers = append(n.layers, l)
	}
	return n
}

// normalize maps a clamped input point to [-1, 1] per dimension.
func (n *Network) normalize(p geom.Point) []float64 {
	p = n.cfg.Region.Clamp(p)
	x := make([]float64, len(p))
	for i := range p {
		lo, hi := n.cfg.Region.Lo[i], n.cfg.Region.Hi[i]
		x[i] = 2*(p[i]-lo)/(hi-lo) - 1
	}
	return x
}

// forward runs the network, returning every layer's activations (index 0 is
// the input) for use by backprop.
func (n *Network) forward(x []float64) [][]float64 {
	acts := make([][]float64, 0, len(n.layers)+1)
	acts = append(acts, x)
	cur := x
	for _, l := range n.layers {
		next := make([]float64, l.out)
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, v := range cur {
				sum += row[i] * v
			}
			if l.hiddenAct {
				sum = math.Tanh(sum)
			}
			next[o] = sum
		}
		acts = append(acts, next)
		cur = next
	}
	return acts
}

// step performs one SGD update toward target y (already output-scaled).
func (n *Network) step(x []float64, y float64) {
	acts := n.forward(x)
	// Output delta (squared error, linear output).
	pred := acts[len(acts)-1][0]
	delta := []float64{pred - y}
	// Backward pass.
	for li := len(n.layers) - 1; li >= 0; li-- {
		l := n.layers[li]
		in := acts[li]
		var prevDelta []float64
		if li > 0 {
			prevDelta = make([]float64, l.in)
			for o := 0; o < l.out; o++ {
				row := l.w[o*l.in : (o+1)*l.in]
				for i := range prevDelta {
					prevDelta[i] += delta[o] * row[i]
				}
			}
			// Derivative of the previous layer's tanh.
			for i := range prevDelta {
				a := in[i]
				prevDelta[i] *= 1 - a*a
			}
		}
		lr := n.cfg.LearningRate
		for o := 0; o < l.out; o++ {
			g := delta[o]
			row := l.w[o*l.in : (o+1)*l.in]
			vrow := l.vw[o*l.in : (o+1)*l.in]
			for i, v := range in {
				vrow[i] = n.cfg.Momentum*vrow[i] - lr*g*v
				row[i] += vrow[i]
			}
			l.vb[o] = n.cfg.Momentum*l.vb[o] - lr*g
			l.b[o] += l.vb[o]
		}
		delta = prevDelta
	}
}

// Train fits a network to the a-priori samples (the Boulos protocol).
func Train(cfg Config, samples []histogram.Sample) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.Region.Dims() == 0 {
		return nil, fmt.Errorf("nncurve: Config.Region must be set")
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("nncurve: training requires at least one sample")
	}
	for _, h := range cfg.Hidden {
		if h < 1 {
			return nil, fmt.Errorf("nncurve: hidden widths must be >= 1, got %v", cfg.Hidden)
		}
	}
	if cfg.Epochs < 1 || cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("nncurve: Epochs must be >= 1 and LearningRate > 0")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := newNetwork(cfg, rng)
	if cfg.MemoryLimit > 0 && n.MemoryUsed() > cfg.MemoryLimit {
		return nil, fmt.Errorf("nncurve: network needs %d bytes, limit is %d (shrink Hidden)",
			n.MemoryUsed(), cfg.MemoryLimit)
	}

	// Output normalization: train on y / max|y|.
	for _, s := range samples {
		if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			return nil, fmt.Errorf("nncurve: sample value must be finite, got %g", s.Value)
		}
		if a := math.Abs(s.Value); a > n.outScale {
			n.outScale = a
		}
	}
	xs := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		if len(s.Point) != cfg.Region.Dims() {
			return nil, fmt.Errorf("nncurve: sample %d has %d dims, region has %d",
				i, len(s.Point), cfg.Region.Dims())
		}
		xs[i] = n.normalize(s.Point)
		ys[i] = s.Value / n.outScale
	}

	start := time.Now()
	order := rng.Perm(len(xs))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			n.step(xs[i], ys[i])
		}
	}
	n.trainDur = time.Since(start)
	n.trained = true
	return n, nil
}

// Predict implements core.Model.
func (n *Network) Predict(p geom.Point) (float64, bool) {
	if !n.trained {
		return 0, false
	}
	acts := n.forward(n.normalize(p))
	v := acts[len(acts)-1][0] * n.outScale
	if math.IsNaN(v) || math.IsInf(v, 0) {
		// A diverged training run can drive weights to Inf; report
		// "untrained" rather than hand the optimizer a non-finite cost.
		return 0, false
	}
	return v, true
}

// Observe implements core.Model as a no-op: the curve-fitting approach is
// static and "does not adapt to changing query distributions" (§2.1).
func (n *Network) Observe(geom.Point, float64) error { return nil }

// Name implements core.Model.
func (n *Network) Name() string { return "NN" }
