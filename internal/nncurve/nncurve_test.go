package nncurve

import (
	"math"
	"math/rand"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/histogram"
)

func region1() geom.Rect { return geomtest.MustRect(geom.Point{0}, geom.Point{100}) }

func samplesFor(f func(geom.Point) float64, region geom.Rect, n int, seed int64) []histogram.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]histogram.Sample, n)
	for i := range out {
		p := make(geom.Point, region.Dims())
		for j := range p {
			p[j] = region.Lo[j] + rng.Float64()*(region.Hi[j]-region.Lo[j])
		}
		out[i] = histogram.Sample{Point: p, Value: f(p)}
	}
	return out
}

func nae(t *testing.T, n *Network, f func(geom.Point) float64, region geom.Rect, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var absErr, total float64
	for i := 0; i < 500; i++ {
		p := make(geom.Point, region.Dims())
		for j := range p {
			p[j] = region.Lo[j] + rng.Float64()*(region.Hi[j]-region.Lo[j])
		}
		pred, ok := n.Predict(p)
		if !ok {
			t.Fatal("trained network refused to predict")
		}
		absErr += math.Abs(pred - f(p))
		total += math.Abs(f(p))
	}
	return absErr / total
}

func TestTrainValidation(t *testing.T) {
	good := samplesFor(func(p geom.Point) float64 { return p[0] }, region1(), 10, 1)
	if _, err := Train(Config{}, good); err == nil {
		t.Error("missing region accepted")
	}
	if _, err := Train(Config{Region: region1()}, nil); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train(Config{Region: region1(), Hidden: []int{0}}, good); err == nil {
		t.Error("zero-width hidden layer accepted")
	}
	if _, err := Train(Config{Region: region1(), Epochs: -1}, good); err == nil {
		t.Error("negative epochs accepted")
	}
	bad := []histogram.Sample{{Point: geom.Point{1, 2}, Value: 1}}
	if _, err := Train(Config{Region: region1()}, bad); err == nil {
		t.Error("dimension-mismatched sample accepted")
	}
	nan := []histogram.Sample{{Point: geom.Point{1}, Value: math.NaN()}}
	if _, err := Train(Config{Region: region1()}, nan); err == nil {
		t.Error("NaN sample accepted")
	}
}

func TestMemoryLimitEnforced(t *testing.T) {
	good := samplesFor(func(p geom.Point) float64 { return p[0] }, region1(), 10, 1)
	if _, err := Train(Config{Region: region1(), Hidden: []int{500, 500}, MemoryLimit: 1843}, good); err == nil {
		t.Error("oversized network accepted under memory limit")
	}
	// The paper-budget network must fit.
	n, err := Train(Config{Region: region1(), Hidden: []int{16, 8}, MemoryLimit: 1843, Epochs: 1}, good)
	if err != nil {
		t.Fatal(err)
	}
	if n.MemoryUsed() > 1843 {
		t.Errorf("memory %d over limit", n.MemoryUsed())
	}
	if n.Params() != 16*1+16+16*8+8+8*1+1 {
		t.Errorf("param count %d unexpected", n.Params())
	}
}

func TestLearnsLinearFunction(t *testing.T) {
	f := func(p geom.Point) float64 { return 3*p[0] + 10 }
	n, err := Train(Config{Region: region1(), Seed: 1}, samplesFor(f, region1(), 600, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := nae(t, n, f, region1(), 3); got > 0.05 {
		t.Errorf("NAE on linear function = %g, want < 0.05", got)
	}
	if n.TrainingTime() <= 0 {
		t.Error("training time not recorded")
	}
}

func TestLearnsNonlinearSurface(t *testing.T) {
	region := geomtest.MustRect(geom.Point{0, 0}, geom.Point{10, 10})
	f := func(p geom.Point) float64 { return p[0]*p[1] + 5 }
	n, err := Train(Config{Region: region, Seed: 4, Epochs: 400}, samplesFor(f, region, 1200, 5))
	if err != nil {
		t.Fatal(err)
	}
	if got := nae(t, n, f, region, 6); got > 0.15 {
		t.Errorf("NAE on x*y surface = %g, want < 0.15", got)
	}
}

func TestDeterministicTraining(t *testing.T) {
	f := func(p geom.Point) float64 { return p[0] * 2 }
	s := samplesFor(f, region1(), 200, 7)
	a, err := Train(Config{Region: region1(), Seed: 9, Epochs: 20}, s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(Config{Region: region1(), Seed: 9, Epochs: 20}, s)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x < 100; x += 7 {
		va, _ := a.Predict(geom.Point{x})
		vb, _ := b.Predict(geom.Point{x})
		if va != vb {
			t.Fatal("same seed produced different networks")
		}
	}
}

func TestObserveIsNoOp(t *testing.T) {
	f := func(p geom.Point) float64 { return p[0] }
	n, err := Train(Config{Region: region1(), Seed: 1, Epochs: 10}, samplesFor(f, region1(), 100, 2))
	if err != nil {
		t.Fatal(err)
	}
	before, _ := n.Predict(geom.Point{50})
	for i := 0; i < 100; i++ {
		if err := n.Observe(geom.Point{50}, 99999); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := n.Predict(geom.Point{50})
	if before != after {
		t.Error("static network changed after Observe")
	}
	if n.Name() != "NN" {
		t.Errorf("Name = %q", n.Name())
	}
}

func TestUntrainedNetworkRefuses(t *testing.T) {
	n := newNetwork(Config{Region: region1()}.withDefaults(), rand.New(rand.NewSource(1)))
	if _, ok := n.Predict(geom.Point{5}); ok {
		t.Error("untrained network predicted")
	}
}

func TestPredictClampsOutOfRange(t *testing.T) {
	f := func(p geom.Point) float64 { return p[0] }
	n, err := Train(Config{Region: region1(), Seed: 1}, samplesFor(f, region1(), 400, 2))
	if err != nil {
		t.Fatal(err)
	}
	// 5000 clamps to just below 100, so its prediction must match the
	// near-boundary prediction (small tolerance: the clamped coordinate
	// is not exactly 99.99).
	inside, _ := n.Predict(geom.Point{99.99})
	outside, _ := n.Predict(geom.Point{5000})
	if math.Abs(inside-outside) > 0.1 {
		t.Errorf("out-of-range prediction %g differs from boundary %g", outside, inside)
	}
	farOut, _ := n.Predict(geom.Point{1e12})
	if farOut != outside {
		t.Error("all over-range inputs must clamp to the same boundary prediction")
	}
}
