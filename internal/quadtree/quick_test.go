package quadtree

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mlq/internal/geom"
)

// opSeq is a randomly generated sequence of observations for quick.Check
// properties: each element is a (point in [0,1)^2, value) pair.
type opSeq []struct {
	X, Y float64
	V    float64
}

// Generate implements quick.Generator with coordinates in [0,1) and values
// in a bounded range, so properties hold up to float tolerance.
func (opSeq) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(size*4+1)
	s := make(opSeq, n)
	for i := range s {
		s[i].X = r.Float64()
		s[i].Y = r.Float64()
		s[i].V = r.Float64()*2000 - 1000
	}
	return reflect.ValueOf(s)
}

func (s opSeq) apply(t *Tree) bool {
	for _, op := range s {
		if err := t.Insert(geom.Point{op.X, op.Y}, op.V); err != nil {
			return false
		}
	}
	return true
}

// Property: after any observation sequence, under any strategy and a tight
// memory limit, the tree validates, respects its budget, and predicts a
// value inside the observed value range (every prediction is an average of
// a subset of inserted values).
func TestQuickInvariantsHold(t *testing.T) {
	cfgFor := func(strat Strategy) Config {
		return Config{
			Region:      geom.UnitCube(2),
			Strategy:    strat,
			MemoryLimit: 30 * DefaultNodeBytes,
		}
	}
	prop := func(s opSeq, lazy bool) bool {
		strat := Eager
		if lazy {
			strat = Lazy
		}
		tr, err := New(cfgFor(strat))
		if err != nil {
			return false
		}
		if !s.apply(tr) {
			return false
		}
		if tr.Validate() != nil {
			return false
		}
		if tr.MemoryUsed() > tr.Config().MemoryLimit {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, op := range s {
			lo = math.Min(lo, op.V)
			hi = math.Max(hi, op.V)
		}
		for _, op := range s {
			v, ok := tr.PredictBeta(geom.Point{op.X, op.Y}, 1)
			if !ok {
				return false
			}
			if v < lo-1e-6 || v > hi+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the root summary is exactly the running sum/count/sum-of-squares
// of everything inserted, regardless of compression.
func TestQuickRootSummaryExact(t *testing.T) {
	prop := func(s opSeq) bool {
		tr, err := New(Config{
			Region:      geom.UnitCube(2),
			MemoryLimit: 10 * DefaultNodeBytes,
		})
		if err != nil {
			return false
		}
		var sum, ss float64
		for _, op := range s {
			if tr.Insert(geom.Point{op.X, op.Y}, op.V) != nil {
				return false
			}
			sum += op.V
			ss += op.V * op.V
		}
		return tr.a.nodes[0].count == int64(len(s)) &&
			approxEq(tr.a.nodes[0].sum, sum, 1e-9) &&
			approxEq(tr.a.nodes[0].ss, ss, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: serialization is lossless — WriteTo followed by Read reproduces
// node counts, thresholds, and every prediction.
func TestQuickSerializationLossless(t *testing.T) {
	prop := func(s opSeq, lazy bool) bool {
		strat := Eager
		if lazy {
			strat = Lazy
		}
		tr, err := New(Config{
			Region:      geom.UnitCube(2),
			Strategy:    strat,
			MemoryLimit: 25 * DefaultNodeBytes,
		})
		if err != nil || !s.apply(tr) {
			return false
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.NodeCount() != tr.NodeCount() || got.Threshold() != tr.Threshold() {
			return false
		}
		for _, op := range s {
			a, aok := tr.PredictBeta(geom.Point{op.X, op.Y}, 2)
			b, bok := got.PredictBeta(geom.Point{op.X, op.Y}, 2)
			if a != b || aok != bok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Clone equals the original everywhere and shares no state.
func TestQuickCloneEquivalent(t *testing.T) {
	prop := func(s opSeq) bool {
		tr, err := New(Config{
			Region:      geom.UnitCube(2),
			MemoryLimit: 25 * DefaultNodeBytes,
		})
		if err != nil || !s.apply(tr) {
			return false
		}
		cl := tr.Clone()
		for _, op := range s {
			a, aok := tr.PredictBeta(geom.Point{op.X, op.Y}, 1)
			b, bok := cl.PredictBeta(geom.Point{op.X, op.Y}, 1)
			if a != b || aok != bok {
				return false
			}
		}
		// Diverge the original; the clone's root must not move.
		beforeCount := cl.a.nodes[0].count
		tr.Insert(geom.Point{0.5, 0.5}, 1)
		return cl.a.nodes[0].count == beforeCount && cl.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
