package quadtree

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
)

func buildTrained(t *testing.T, seed int64) *Tree {
	t.Helper()
	tr := mustTree(t, Config{
		Region:      geomtest.MustRect(geom.Point{0, 0, 0}, geom.Point{10, 10, 10}),
		Strategy:    Lazy,
		MaxDepth:    5,
		MemoryLimit: 60 * DefaultNodeBytes,
	})
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 1500; i++ {
		p := geom.Point{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		if err := tr.Insert(p, rng.Float64()*500); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestSerializeRoundTrip(t *testing.T) {
	tr := buildTrained(t, 41)
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer holds %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeCount() != tr.NodeCount() {
		t.Errorf("node count %d, want %d", got.NodeCount(), tr.NodeCount())
	}
	if got.Inserts() != tr.Inserts() || got.Compressions() != tr.Compressions() {
		t.Error("lifetime counters lost in round trip")
	}
	if got.Threshold() != tr.Threshold() {
		t.Errorf("threshold %g, want %g", got.Threshold(), tr.Threshold())
	}
	// Structure and summaries must be byte-identical.
	var a, b strings.Builder
	tr.Dump(&a)
	got.Dump(&b)
	if a.String() != b.String() {
		t.Error("decoded tree structure differs from original")
	}
	// Predictions must agree everywhere.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		p := geom.Point{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		v1, ok1 := tr.PredictBeta(p, 3)
		v2, ok2 := got.PredictBeta(p, 3)
		if v1 != v2 || ok1 != ok2 {
			t.Fatalf("prediction diverged at %v: (%g,%v) vs (%g,%v)", p, v1, ok1, v2, ok2)
		}
	}
	// The decoded tree must keep learning correctly.
	if err := got.Insert(geom.Point{5, 5, 5}, 42); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeEmptyTree(t *testing.T) {
	tr := mustTree(t, unitCfg(2))
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeCount() != 1 {
		t.Errorf("node count %d, want 1", got.NodeCount())
	}
	if _, ok := got.Predict(geom.Point{0.5, 0.5}); ok {
		t.Error("empty decoded tree must report ok=false")
	}
}

func TestReadRejectsCorruptInput(t *testing.T) {
	tr := buildTrained(t, 43)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] ^= 0xff
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[4] = 99
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Error("bad version accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 5, 20, len(good) / 2, len(good) - 3} {
			if _, err := Read(bytes.NewReader(good[:cut])); err == nil {
				t.Errorf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("zero dims", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[8], b[9], b[10], b[11] = 0, 0, 0, 0
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Error("zero dims accepted")
		}
	})
}
