package quadtree

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
)

// The golden artifacts under testdata/ were serialized by the pre-arena
// (pointer-linked) implementation via a one-shot generator (cmd/gengolden, removed after use) and are committed
// permanently. These tests prove the arena refactor's central compatibility
// claim: the same insert sequence emits byte-identical frames, and frames
// written before the refactor still decode. If one of them fails, the
// slot-order-equals-creation-order invariant (see arena.go) has been broken
// — do not regenerate the artifacts to make it pass.

// goldenLCG is the deterministic generator the golden generator used; duplicated
// here (not imported) so the test workload can never drift.
type goldenLCG uint64

func (l *goldenLCG) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(uint64(*l)>>11) / float64(uint64(1)<<53)
}

// goldenEagerTree mirrors the golden generator's buildEager exactly: a 3-d eager
// tree under heavy compression pressure (dozens of passes over 2000 inserts).
func goldenEagerTree(t *testing.T) *Tree {
	t.Helper()
	tr := mustTree(t, Config{
		Region:      geomtest.MustRect(geom.Point{0, 0, 0}, geom.Point{8, 8, 8}),
		Strategy:    Eager,
		MaxDepth:    4,
		MemoryLimit: 64 * DefaultNodeBytes,
	})
	r := goldenLCG(0x9E3779B97F4A7C15)
	for i := 0; i < 2000; i++ {
		p := geom.Point{r.next() * 8, r.next() * 8, r.next() * 8}
		if err := tr.Insert(p, r.next()*100); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// goldenLazyTree mirrors the golden generator's buildLazy exactly: a 2-d lazy tree
// under the count compression policy.
func goldenLazyTree(t *testing.T) *Tree {
	t.Helper()
	tr := mustTree(t, Config{
		Region:      geomtest.MustRect(geom.Point{0, 0}, geom.Point{100, 100}),
		Strategy:    Lazy,
		MaxDepth:    6,
		Beta:        10,
		Policy:      CompressCount,
		MemoryLimit: 48 * DefaultNodeBytes,
	})
	r := goldenLCG(0x0123456789ABCDEF)
	for i := 0; i < 1500; i++ {
		p := geom.Point{r.next() * 100, r.next() * 100}
		if err := tr.Insert(p, r.next()*50); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func goldenBytes(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGoldenSerializationCompat(t *testing.T) {
	cases := []struct {
		name  string
		file  string
		build func(*testing.T) *Tree
	}{
		{"eager", "prearena_eager.bin", goldenEagerTree},
		{"lazy", "prearena_lazy.bin", goldenLazyTree},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := goldenBytes(t, c.file)
			tr := c.build(t)
			var buf bytes.Buffer
			if _, err := tr.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("arena tree serialized to %d bytes differing from the %d-byte pre-arena golden frame",
					buf.Len(), len(want))
			}
			// A snapshot of the same tree must emit the identical frame too.
			var sbuf bytes.Buffer
			if _, err := tr.Snapshot().WriteTo(&sbuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sbuf.Bytes(), want) {
				t.Fatal("snapshot serialization differs from the golden frame")
			}
		})
	}
}

func TestGoldenFramesStillDecode(t *testing.T) {
	for _, file := range []string{"prearena_eager.bin", "prearena_lazy.bin"} {
		t.Run(file, func(t *testing.T) {
			raw := goldenBytes(t, file)
			tr, err := Read(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("pre-arena frame no longer decodes: %v", err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			// Round-trip: decoding reconstructs creation order, so
			// re-encoding must reproduce the original bytes.
			var buf bytes.Buffer
			if _, err := tr.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), raw) {
				t.Fatal("decode/encode round-trip altered the frame")
			}
		})
	}
}
