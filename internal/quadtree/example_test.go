package quadtree_test

import (
	"fmt"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/quadtree"
)

// Example demonstrates the basic feedback loop: insert observed UDF costs,
// predict, and stay within the memory budget.
func Example() {
	tree, err := quadtree.New(quadtree.Config{
		Region:      geomtest.MustRect(geom.Point{0, 0}, geom.Point{100, 100}),
		Strategy:    quadtree.Lazy,
		MemoryLimit: 1843, // the paper's 1.8 KB
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 5000; i++ {
		x, y := float64(i%100), float64((i*37)%100)
		if err := tree.Insert(geom.Point{x, y}, x+y); err != nil {
			panic(err)
		}
	}
	pred, _ := tree.Predict(geom.Point{30, 40})
	fmt.Printf("prediction near 70: %t\n", pred > 40 && pred < 100)
	fmt.Printf("within budget: %t\n", tree.MemoryUsed() <= 1843)
	// Output:
	// prediction near 70: true
	// within budget: true
}

// ExampleTree_PredictBeta shows the β parameter absorbing noise by averaging
// over more data points (§4.3).
func ExampleTree_PredictBeta() {
	tree, _ := quadtree.New(quadtree.Config{
		Region:      geomtest.MustRect(geom.Point{0}, geom.Point{10}),
		MaxDepth:    2,
		MemoryLimit: 1 << 16,
	})
	// Three observations in the depth-2 cell [0, 2.5), one outlier in the
	// neighboring cell [2.5, 5) — both under the depth-1 cell [0, 5).
	tree.Insert(geom.Point{1.0}, 10)
	tree.Insert(geom.Point{1.1}, 10)
	tree.Insert(geom.Point{1.2}, 10)
	tree.Insert(geom.Point{4.0}, 90)

	v1, _ := tree.PredictBeta(geom.Point{1.1}, 1) // deepest cell: clean 10s
	v4, _ := tree.PredictBeta(geom.Point{1.1}, 4) // needs 4 points: pools the outlier
	fmt.Printf("beta=1: %.0f\n", v1)
	fmt.Printf("beta=4: %.0f\n", v4)
	// Output:
	// beta=1: 10
	// beta=4: 30
}
