package quadtree

import "fmt"

// Merge folds another tree's knowledge into this one. Because nodes hold
// only additive summaries (sum, count, sum of squares), merging is exact:
// the result represents the union of both trees' observations, as if every
// data point had been inserted into one tree — up to each tree's own prior
// compression. After the structural merge the tree compresses itself back
// under its memory limit.
//
// Merge enables parallel model training: shard a workload across goroutines
// or machines, train independent trees, and merge them. Both trees must
// share the same region and dimensionality; other configuration (strategy,
// λ, memory) follows the receiver. The other tree is not modified.
func (t *Tree) Merge(other *Tree) error {
	if other == nil {
		return fmt.Errorf("quadtree: cannot merge a nil tree")
	}
	a, b := t.cfg.Region, other.cfg.Region
	if a.Dims() != b.Dims() {
		return fmt.Errorf("quadtree: merge dimensionality mismatch: %d vs %d", a.Dims(), b.Dims())
	}
	for i := range a.Lo {
		//lint:ignore floatguard merging requires bit-identical regions; epsilon-close regions are different trees
		if a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] {
			return fmt.Errorf("quadtree: merge region mismatch at dimension %d", i)
		}
	}
	t.mergeNode(0, &other.a, 0, 0)
	t.inserts += other.inserts
	if t.MemoryUsed() > t.cfg.MemoryLimit {
		t.compress()
	}
	return nil
}

// mergeNode adds src's summaries into dst recursively, deep-copying any
// subtree dst lacks (respecting the receiver's MaxDepth: deeper source
// nodes fold into the deepest kept ancestor implicitly, since ancestors
// already carry their descendants' points in their own summaries). Source
// children are visited in creation order so the copied nodes are created in
// the same order an insert-by-insert replay would have produced.
func (t *Tree) mergeNode(dst int32, src *arena, srcN int32, depth int) {
	sn := src.nodes[srcN]
	d := &t.a.nodes[dst]
	d.sum += sn.sum
	d.ss += sn.ss
	d.count += sn.count
	var scratch []kidRef
	scratch = src.creationOrder(srcN, scratch)
	for _, c := range scratch {
		if depth >= t.cfg.MaxDepth {
			break
		}
		child := t.a.child(dst, c.idx)
		if child < 0 {
			child = t.a.addChild(dst, c.idx)
			t.nodeCount++
		}
		t.mergeNode(child, src, c.ref, depth+1)
	}
}
