package quadtree

import "fmt"

// Merge folds another tree's knowledge into this one. Because nodes hold
// only additive summaries (sum, count, sum of squares), merging is exact:
// the result represents the union of both trees' observations, as if every
// data point had been inserted into one tree — up to each tree's own prior
// compression. After the structural merge the tree compresses itself back
// under its memory limit.
//
// Merge enables parallel model training: shard a workload across goroutines
// or machines, train independent trees, and merge them. Both trees must
// share the same region and dimensionality; other configuration (strategy,
// λ, memory) follows the receiver. The other tree is not modified.
func (t *Tree) Merge(other *Tree) error {
	if other == nil {
		return fmt.Errorf("quadtree: cannot merge a nil tree")
	}
	a, b := t.cfg.Region, other.cfg.Region
	if a.Dims() != b.Dims() {
		return fmt.Errorf("quadtree: merge dimensionality mismatch: %d vs %d", a.Dims(), b.Dims())
	}
	for i := range a.Lo {
		//lint:ignore floatguard merging requires bit-identical regions; epsilon-close regions are different trees
		if a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] {
			return fmt.Errorf("quadtree: merge region mismatch at dimension %d", i)
		}
	}
	t.mergeNode(t.root, other.root, 0)
	t.inserts += other.inserts
	if t.MemoryUsed() > t.cfg.MemoryLimit {
		t.compress()
	}
	return nil
}

// mergeNode adds src's summaries into dst recursively, deep-copying any
// subtree dst lacks (respecting the receiver's MaxDepth: deeper source
// nodes fold into the deepest kept ancestor implicitly, since ancestors
// already carry their descendants' points in their own summaries).
func (t *Tree) mergeNode(dst, src *node, depth int) {
	dst.sum += src.sum
	dst.ss += src.ss
	dst.count += src.count
	for _, c := range src.kids {
		if depth >= t.cfg.MaxDepth {
			break
		}
		child := dst.child(c.idx)
		if child == nil {
			child = &node{parent: dst}
			dst.kids = append(dst.kids, childEntry{idx: c.idx, n: child})
			t.nodeCount++
		}
		t.mergeNode(child, c.n, depth+1)
	}
}
