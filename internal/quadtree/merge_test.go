package quadtree

import (
	"math/rand"
	"strings"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
)

func TestMergeValidation(t *testing.T) {
	a := mustTree(t, unitCfg(2))
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
	b := mustTree(t, unitCfg(3))
	if err := a.Merge(b); err == nil {
		t.Error("dimension mismatch accepted")
	}
	c := mustTree(t, Config{
		Region:      geomtest.MustRect(geom.Point{0, 0}, geom.Point{2, 2}),
		MemoryLimit: 1 << 20,
	})
	if err := a.Merge(c); err == nil {
		t.Error("region mismatch accepted")
	}
}

// Property: merging two uncompressed trees equals inserting the union of
// observations into one tree — node for node.
func TestMergeEqualsSequentialInsertion(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		cfg := Config{Region: geom.UnitCube(2), MaxDepth: 4, MemoryLimit: 1 << 20}
		a := mustTree(t, cfg)
		b := mustTree(t, cfg)
		ref := mustTree(t, cfg)
		for i := 0; i < 300; i++ {
			p := geom.Point{rng.Float64(), rng.Float64()}
			v := rng.Float64() * 100
			ref.Insert(p, v)
			if i%2 == 0 {
				a.Insert(p, v)
			} else {
				b.Insert(p, v)
			}
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		if a.Inserts() != ref.Inserts() {
			t.Fatalf("inserts %d, want %d", a.Inserts(), ref.Inserts())
		}
		if a.NodeCount() != ref.NodeCount() {
			t.Fatalf("trial %d: node count %d, sequential tree has %d", trial, a.NodeCount(), ref.NodeCount())
		}
		// Node-for-node equivalence, insensitive to child slice order and
		// to float summation order (merge adds partial sums).
		mergedBlocks := blockIndex(a)
		ref.Walk(func(b Block) bool {
			got, ok := mergedBlocks[b.Region.String()]
			if !ok {
				t.Fatalf("trial %d: merged tree lacks block %v", trial, b.Region)
			}
			if got.Count != b.Count || !approxEq(got.Sum, b.Sum, 1e-9) || !approxEq(got.SumSquares, b.SumSquares, 1e-9) {
				t.Fatalf("trial %d: block %v summaries differ: %+v vs %+v", trial, b.Region, got, b)
			}
			return true
		})
	}
}

func TestMergeRespectsMemoryLimit(t *testing.T) {
	big := Config{Region: geom.UnitCube(2), MaxDepth: 6, MemoryLimit: 1 << 20}
	small := Config{Region: geom.UnitCube(2), MaxDepth: 6, MemoryLimit: 40 * DefaultNodeBytes}
	dst := mustTree(t, small)
	src := mustTree(t, big)
	rng := rand.New(rand.NewSource(72))
	for i := 0; i < 2000; i++ {
		p := geom.Point{rng.Float64(), rng.Float64()}
		v := rng.Float64() * 100
		dst.Insert(p, v)
		src.Insert(geom.Point{rng.Float64(), rng.Float64()}, rng.Float64()*100)
	}
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if dst.MemoryUsed() > dst.Config().MemoryLimit {
		t.Fatalf("merged tree at %d bytes exceeds limit %d", dst.MemoryUsed(), dst.Config().MemoryLimit)
	}
	if err := dst.Validate(); err != nil {
		t.Fatal(err)
	}
	if dst.Inserts() != 4000 {
		t.Errorf("inserts %d, want 4000", dst.Inserts())
	}
}

func TestMergeRespectsReceiverDepth(t *testing.T) {
	shallow := mustTree(t, Config{Region: geom.UnitCube(1), MaxDepth: 2, MemoryLimit: 1 << 20})
	deep := mustTree(t, Config{Region: geom.UnitCube(1), MaxDepth: 6, MemoryLimit: 1 << 20})
	deep.Insert(geom.Point{0.01}, 5)
	if err := shallow.Merge(deep); err != nil {
		t.Fatal(err)
	}
	if got := shallow.Stats().MaxDepth; got > 2 {
		t.Errorf("merged depth %d exceeds receiver MaxDepth 2", got)
	}
	// The point's value still lands in the root and depth-1/2 summaries.
	if v, ok := shallow.Predict(geom.Point{0.01}); !ok || v != 5 {
		t.Errorf("prediction after depth-limited merge = %g, %v", v, ok)
	}
	if err := shallow.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeDoesNotMutateSource(t *testing.T) {
	cfg := Config{Region: geom.UnitCube(1), MaxDepth: 3, MemoryLimit: 1 << 20}
	dst, src := mustTree(t, cfg), mustTree(t, cfg)
	src.Insert(geom.Point{0.3}, 9)
	var before strings.Builder
	src.Dump(&before)
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	// Mutate dst afterwards; src must stay untouched either way.
	dst.Insert(geom.Point{0.3}, 100)
	var after strings.Builder
	src.Dump(&after)
	if before.String() != after.String() {
		t.Error("Merge or subsequent inserts mutated the source tree")
	}
	if err := src.Validate(); err != nil {
		t.Error(err)
	}
}

// Parallel-training scenario: four shards trained independently then merged
// predict (approximately) like one tree trained on everything.
func TestMergeParallelTraining(t *testing.T) {
	cfg := Config{Region: geomtest.MustRect(geom.Point{0, 0}, geom.Point{100, 100}), MemoryLimit: 1 << 20, MaxDepth: 4}
	shards := make([]*Tree, 4)
	for i := range shards {
		shards[i] = mustTree(t, cfg)
	}
	ref := mustTree(t, cfg)
	rng := rand.New(rand.NewSource(73))
	cost := func(p geom.Point) float64 { return p[0] + 2*p[1] }
	for i := 0; i < 4000; i++ {
		p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		shards[i%4].Insert(p, cost(p))
		ref.Insert(p, cost(p))
	}
	merged := shards[0]
	for _, s := range shards[1:] {
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		a, _ := merged.PredictBeta(p, 1)
		b, _ := ref.PredictBeta(p, 1)
		if !approxEq(a, b, 1e-9) { // summation order differs by design
			t.Fatalf("merged prediction %g != reference %g at %v", a, b, p)
		}
	}
}

// blockIndex maps region strings to blocks for order-insensitive comparison.
func blockIndex(t *Tree) map[string]Block {
	out := make(map[string]Block)
	t.Walk(func(b Block) bool {
		out[b.Region.String()] = b
		return true
	})
	return out
}
