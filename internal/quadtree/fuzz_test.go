package quadtree

import (
	"bytes"
	"testing"

	"mlq/internal/geom"
)

// FuzzRead feeds arbitrary bytes to the tree decoder: it must never panic,
// and anything it accepts must be a valid tree. Run with `go test -fuzz
// FuzzRead ./internal/quadtree` for continuous fuzzing; the seed corpus
// (valid trees plus junk) runs under plain `go test`.
func FuzzRead(f *testing.F) {
	tr, err := New(Config{Region: geom.UnitCube(2), MemoryLimit: 50 * DefaultNodeBytes})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		tr.Insert(geom.Point{float64(i%17) / 17, float64(i%13) / 13}, float64(i%101))
	}
	var valid bytes.Buffer
	if _, err := tr.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("TQLM backwards magic"))
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if vErr := got.Validate(); vErr != nil {
			t.Fatalf("Read accepted an invalid tree: %v", vErr)
		}
		// The decoded tree must survive a use cycle.
		p := got.Config().Region.Center()
		got.PredictBeta(p, 1)
		if err := got.Insert(p, 1); err != nil {
			t.Fatalf("decoded tree rejects inserts: %v", err)
		}
	})
}
