package quadtree

import (
	"math"
	"math/rand"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
)

// smallCfg returns a config whose memory limit forces frequent compression.
func smallCfg(strategy Strategy) Config {
	return Config{
		Region:      geomtest.MustRect(geom.Point{0, 0}, geom.Point{1000, 1000}),
		Strategy:    strategy,
		MaxDepth:    6,
		MemoryLimit: 40 * DefaultNodeBytes,
	}
}

func TestMemoryLimitEnforced(t *testing.T) {
	for _, strat := range []Strategy{Eager, Lazy} {
		t.Run(strat.String(), func(t *testing.T) {
			tr := mustTree(t, smallCfg(strat))
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 3000; i++ {
				p := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
				if err := tr.Insert(p, rng.Float64()*10000); err != nil {
					t.Fatal(err)
				}
				if tr.MemoryUsed() > tr.Config().MemoryLimit {
					t.Fatalf("insert %d left memory at %d, limit %d",
						i, tr.MemoryUsed(), tr.Config().MemoryLimit)
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if tr.Compressions() == 0 {
				t.Error("expected at least one compression")
			}
			if tr.RemovedNodes() == 0 {
				t.Error("expected removed nodes")
			}
			if tr.CompressTime() <= 0 {
				t.Error("compression time not recorded")
			}
			// Predictions must still work after heavy compression.
			if _, ok := tr.Predict(geom.Point{500, 500}); !ok {
				t.Error("prediction failed after compression")
			}
		})
	}
}

func TestCompressNeverRemovesRoot(t *testing.T) {
	tr := mustTree(t, Config{
		Region:      geom.UnitCube(2),
		MaxDepth:    4,
		MemoryLimit: DefaultNodeBytes, // room for the root only
	})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		tr.Insert(geom.Point{rng.Float64(), rng.Float64()}, rng.Float64())
	}
	if tr.NodeCount() != 1 {
		t.Errorf("node count %d, want 1 (root only fits)", tr.NodeCount())
	}
	if tr.a.nodes[0].count != 200 {
		t.Errorf("root count %d, want 200 (summaries survive compression)", tr.a.nodes[0].count)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompressRemovesLowestSSEGFirst(t *testing.T) {
	// Build: root with two leaf children. Left child's average equals the
	// root's (SSEG 0); right child's differs a lot. A single-node
	// compression must remove the left child.
	tr := mustTree(t, Config{Region: geom.UnitCube(1), MaxDepth: 1, MemoryLimit: 1 << 20})
	tr.Insert(geom.Point{0.1}, 100) // left
	tr.Insert(geom.Point{0.9}, 300) // right
	tr.Insert(geom.Point{0.2}, 300) // left again -> left avg 200 = root avg
	// left: count 2 avg 200; right: count 1 avg 300; root avg 700/3≈233.
	// SSEG(left) = 2*(233.3-200)^2 ≈ 2222; SSEG(right) = 1*(233.3-300)^2 ≈ 4444.
	// So left goes first.
	tr.cfg.Gamma = 1e-9 // free the minimum (one node)
	before := tr.TSSENC()
	tr.Compress()
	after := tr.TSSENC()
	if tr.NodeCount() != 2 {
		t.Fatalf("node count %d after compression, want 2", tr.NodeCount())
	}
	if got, _ := tr.PredictBeta(geom.Point{0.9}, 1); got != 300 {
		t.Errorf("right leaf removed instead of left: predict(0.9) = %g, want 300", got)
	}
	if got, _ := tr.PredictBeta(geom.Point{0.1}, 1); !approxEq(got, 700.0/3, 1e-9) {
		t.Errorf("left query should fall back to root avg, got %g", got)
	}
	if after < before-1e-9 {
		t.Errorf("TSSENC decreased from %g to %g; leaf removal can only grow it", before, after)
	}
}

func TestCompressCascadesToParents(t *testing.T) {
	// A deep single chain: removing the deepest leaf makes its parent a
	// leaf, which must enter the queue, so a large gamma collapses the
	// whole chain in one pass.
	tr := mustTree(t, Config{Region: geom.UnitCube(1), MaxDepth: 5, MemoryLimit: 1 << 20, Gamma: 1})
	tr.Insert(geom.Point{0.01}, 5)
	if tr.NodeCount() != 6 {
		t.Fatalf("setup: node count %d, want 6", tr.NodeCount())
	}
	tr.Compress()
	if tr.NodeCount() != 1 {
		t.Errorf("node count %d after gamma=1 compression, want 1", tr.NodeCount())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLazyThresholdSetAfterCompression(t *testing.T) {
	tr := mustTree(t, smallCfg(Lazy))
	rng := rand.New(rand.NewSource(17))
	if tr.Threshold() != 0 {
		t.Fatal("lazy threshold must start at 0")
	}
	for i := 0; i < 2000; i++ {
		tr.Insert(geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}, rng.Float64()*10000)
	}
	if tr.Compressions() == 0 {
		t.Fatal("setup: no compression happened")
	}
	if tr.Threshold() <= 0 {
		t.Error("lazy threshold must be positive after compression with noisy data")
	}
	want := tr.Config().Alpha * tr.a.sse(0)
	// The threshold was snapshotted at the last compression; root SSE has
	// moved since, so only check it is in a plausible range.
	if tr.Threshold() > want*10 {
		t.Errorf("threshold %g wildly exceeds alpha*SSE(root) = %g", tr.Threshold(), want)
	}
}

func TestEagerThresholdAlwaysZero(t *testing.T) {
	tr := mustTree(t, smallCfg(Eager))
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		tr.Insert(geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}, rng.Float64()*10000)
	}
	if tr.Threshold() != 0 {
		t.Errorf("eager threshold = %g, want 0", tr.Threshold())
	}
}

func TestLazyCompressesLessOftenThanEager(t *testing.T) {
	// The paper's Experiment 2 headline: MLQ-L delays reaching the memory
	// limit and therefore compresses less frequently than MLQ-E.
	mk := func(s Strategy) *Tree { return mustTree(t, smallCfg(s)) }
	eager, lazy := mk(Eager), mk(Lazy)
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 5000; i++ {
		p := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		v := rng.Float64() * 10000
		eager.Insert(p, v)
		lazy.Insert(p, v)
	}
	if lazy.Compressions() >= eager.Compressions() {
		t.Errorf("lazy compressed %d times, eager %d; expected lazy < eager",
			lazy.Compressions(), eager.Compressions())
	}
}

func TestCompressionPreservesRootSummary(t *testing.T) {
	tr := mustTree(t, smallCfg(Eager))
	rng := rand.New(rand.NewSource(31))
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		v := rng.Float64() * 100
		sum += v
		tr.Insert(geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}, v)
	}
	if tr.a.nodes[0].count != n {
		t.Errorf("root count %d, want %d", tr.a.nodes[0].count, n)
	}
	if !approxEq(tr.a.nodes[0].sum, sum, 1e-6) {
		t.Errorf("root sum %g, want %g", tr.a.nodes[0].sum, sum)
	}
}

func TestCompressOnEmptyTree(t *testing.T) {
	tr := mustTree(t, unitCfg(2))
	tr.Compress() // must not panic
	if tr.NodeCount() != 1 {
		t.Errorf("node count %d, want 1", tr.NodeCount())
	}
	if tr.Compressions() != 1 {
		t.Errorf("compressions %d, want 1", tr.Compressions())
	}
}

func TestSSEGRootInfinite(t *testing.T) {
	tr := mustTree(t, unitCfg(1))
	tr.Insert(geom.Point{0.5}, 1)
	if !math.IsInf(tr.a.sseg(0), 1) {
		t.Error("root SSEG must be +Inf so it is never a removal candidate")
	}
}

func TestCompressionPolicyString(t *testing.T) {
	if CompressSSEG.String() != "sseg" || CompressCount.String() != "count" || CompressRandom.String() != "random" {
		t.Error("policy names wrong")
	}
	if CompressionPolicy(9).String() == "" {
		t.Error("unknown policy must render")
	}
}

func TestCompressionPolicyValidation(t *testing.T) {
	cfg := smallCfg(Eager)
	cfg.Policy = CompressionPolicy(9)
	if _, err := New(cfg); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestCompressCountPolicyRemovesSmallLeavesFirst(t *testing.T) {
	cfg := Config{Region: geom.UnitCube(1), MaxDepth: 1, MemoryLimit: 1 << 20,
		Policy: CompressCount, Gamma: 1e-9}
	tr := mustTree(t, cfg)
	// Left leaf: 1 point whose avg equals the root's (SSEG 0 under the
	// paper's policy). Right leaf: 3 points far from the root average.
	tr.Insert(geom.Point{0.9}, 100)
	tr.Insert(geom.Point{0.9}, 100)
	tr.Insert(geom.Point{0.9}, 100)
	tr.Insert(geom.Point{0.1}, 100)
	tr.Compress()
	// Count policy removes the 1-point left leaf even though both have
	// SSEG 0; what matters is that the 3-point leaf survives.
	if tr.NodeCount() != 2 {
		t.Fatalf("node count %d, want 2", tr.NodeCount())
	}
	if got, _ := tr.PredictBeta(geom.Point{0.9}, 1); got != 100 {
		t.Error("large leaf was removed under count policy")
	}
	if _, depth, _ := tr.PredictDepth(geom.Point{0.1}, 1); depth != 0 {
		t.Error("small leaf survived under count policy")
	}
}

func TestCompressRandomPolicyStillEnforcesLimit(t *testing.T) {
	cfg := smallCfg(Eager)
	cfg.Policy = CompressRandom
	tr := mustTree(t, cfg)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 2000; i++ {
		p := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		if err := tr.Insert(p, rng.Float64()*10000); err != nil {
			t.Fatal(err)
		}
		if tr.MemoryUsed() > tr.Config().MemoryLimit {
			t.Fatalf("memory over limit under random policy at insert %d", i)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The design-choice ablation: on a skewed workload the SSEG ordering must
// not lose to random eviction in prediction accuracy.
func TestSSEGPolicyBeatsRandomEviction(t *testing.T) {
	run := func(policy CompressionPolicy) float64 {
		cfg := smallCfg(Eager)
		cfg.Policy = policy
		tr := mustTree(t, cfg)
		rng := rand.New(rand.NewSource(55))
		cost := func(p geom.Point) float64 {
			if p[0] < 100 && p[1] < 100 {
				return 5000 + p[0]*10 // hot, high-variance corner
			}
			return 10
		}
		var absErr, total float64
		for i := 0; i < 6000; i++ {
			var p geom.Point
			if i%2 == 0 {
				p = geom.Point{rng.Float64() * 100, rng.Float64() * 100}
			} else {
				p = geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
			}
			actual := cost(p)
			if pred, ok := tr.Predict(p); ok {
				d := pred - actual
				if d < 0 {
					d = -d
				}
				absErr += d
				total += actual
			}
			tr.Insert(p, actual)
		}
		return absErr / total
	}
	sseg, random := run(CompressSSEG), run(CompressRandom)
	if sseg > random*1.05 {
		t.Errorf("SSEG policy NAE %.4f worse than random eviction %.4f", sseg, random)
	}
}
