package quadtree

import (
	"fmt"
	"math"
	"sort"
)

// MemoryLimit returns the live memory budget in bytes. It starts at
// Config.MemoryLimit and moves with every successful Resize; all invariant
// checks, serialization and snapshots follow this value, not the one the
// tree was constructed with.
func (t *Tree) MemoryLimit() int { return t.cfg.MemoryLimit }

// Resizes returns how many times Resize changed the live limit. Like the
// eager/deferred insert counters it is a process-lifetime diagnostic and is
// not serialized.
func (t *Tree) Resizes() int64 { return t.resizes }

// Resize moves the live memory budget to newLimit bytes. Shrinking drains
// the SSEG compression queue — the ordinary Fig. 6 pass, evicting cheapest
// leaves first — until MemoryUsed() <= newLimit; the root is never evicted,
// so the floor is one node (NodeBytes). Growing just raises the ceiling:
// splits that compression kept trimming can proceed on subsequent inserts.
//
// Resizing to the current limit is a guaranteed no-op: no counters move, no
// compression runs, and the tree's serialized form is bit-identical before
// and after the call.
func (t *Tree) Resize(newLimit int) error {
	if newLimit < t.cfg.NodeBytes {
		return fmt.Errorf("quadtree: Resize limit %d cannot hold even the root node (%d bytes)", newLimit, t.cfg.NodeBytes)
	}
	if newLimit == t.cfg.MemoryLimit {
		return nil
	}
	t.cfg.MemoryLimit = newLimit
	t.resizes++
	if t.MemoryUsed() > newLimit {
		t.compress()
	}
	if t.tel != nil {
		t.tel.publish(t)
	}
	return nil
}

// MarginalSSEG returns the SSEG (Eq. 9) and point count of the compression
// queue's cheapest removable leaf — the node the next eviction would take
// and therefore the tree's marginal holding: what the last NodeBytes of
// budget are currently buying. ok is false when only the root remains.
func (t *Tree) MarginalSSEG() (sseg float64, count int64, ok bool) {
	return arenaMarginalSSEG(&t.a)
}

// MarginalSSEG is Tree.MarginalSSEG against the frozen arena.
func (s *Snapshot) MarginalSSEG() (sseg float64, count int64, ok bool) {
	return arenaMarginalSSEG(&s.a)
}

// ShrinkLoss estimates the accuracy price of freeing the given number of
// bytes: compression would evict the ceil(bytes/NodeBytes) cheapest leaves
// in ascending SSEG order, and each evicted leaf b makes queries landing in
// b fall back to its parent's average — an expected absolute-error increase
// of sqrt(SSEG(b)·C(b))/N per query, where N is the tree's total insert
// count (the leaf's points are C(b) of N, and its average sits
// sqrt(SSEG(b)/C(b)) away from the parent's). The returned value is that
// sum over the evicted set: estimated extra absolute prediction error per
// query, in the cost units the tree observes.
//
// The estimate prices leaves only — parents that would join the queue
// mid-pass are not re-queued — so it is a lower bound on the true drain,
// which is exactly what a marginal-value comparison wants. Zero when the
// tree has no removable leaves or no inserts yet.
func (t *Tree) ShrinkLoss(bytes int) float64 {
	return arenaShrinkLoss(&t.a, t.cfg.NodeBytes, t.inserts, bytes)
}

// ShrinkLoss is Tree.ShrinkLoss against the frozen arena.
func (s *Snapshot) ShrinkLoss(bytes int) float64 {
	return arenaShrinkLoss(&s.a, s.cfg.NodeBytes, s.inserts, bytes)
}

// removableLeaves collects the (sseg, count) pairs of every non-root leaf.
// Outside a compression pass the arena is compacted — every slot is live —
// so a flat scan visits exactly the tree's nodes in creation order.
func removableLeaves(a *arena) []heapItem {
	leaves := make([]heapItem, 0, len(a.nodes))
	for i := range a.nodes {
		if i == 0 || a.nodes[i].parent == deadParent || !a.isLeaf(int32(i)) {
			continue
		}
		leaves = append(leaves, heapItem{ref: int32(i), sseg: a.sseg(int32(i))})
	}
	return leaves
}

func arenaMarginalSSEG(a *arena) (sseg float64, count int64, ok bool) {
	best := int32(-1)
	bestKey := math.Inf(1)
	for _, it := range removableLeaves(a) {
		if it.sseg < bestKey {
			best, bestKey = it.ref, it.sseg
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return bestKey, a.nodes[best].count, true
}

func arenaShrinkLoss(a *arena, nodeBytes int, inserts int64, bytes int) float64 {
	if inserts <= 0 || bytes <= 0 {
		return 0
	}
	leaves := removableLeaves(a)
	if len(leaves) == 0 {
		return 0
	}
	// Ascending SSEG with slot-order tie-break: the same victims, in the
	// same order, the compression heap would pop first.
	sort.Slice(leaves, func(i, j int) bool {
		if leaves[i].sseg != leaves[j].sseg { //lint:ignore floatguard exact key equality only routes the deterministic slot-order tie-break
			return leaves[i].sseg < leaves[j].sseg
		}
		return leaves[i].ref < leaves[j].ref
	})
	k := (bytes + nodeBytes - 1) / nodeBytes
	if k > len(leaves) {
		k = len(leaves)
	}
	var loss float64
	for _, it := range leaves[:k] {
		loss += math.Sqrt(it.sseg*float64(a.nodes[it.ref].count)) / float64(inserts)
	}
	return loss
}
