package quadtree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mlq/internal/geom"
)

// Serialization lets a trained cost model be persisted in the catalog and
// reloaded at optimizer startup, so the model's knowledge survives restarts.
// The format is a compact private binary encoding (little-endian), versioned
// so it can evolve.
//
// The frame layout is unchanged from the pre-arena implementation: a header,
// the region bounds, then the nodes depth-first with each node's children
// written in creation order. Because the arena keeps slot order equal to
// creation order (see arena.go), a tree built by the same insert sequence
// emits byte-identical frames to the pointer-linked implementation, and
// pre-arena catalogs load unchanged — Read records children in file order,
// which reconstructs creation order exactly.

const (
	serialMagic   = 0x4d4c5154 // "MLQT"
	serialVersion = 1
)

// WriteTo serializes the tree. It implements io.WriterTo.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	return writeArena(w, &t.a, t.cfg, t.thSSE, t.inserts, t.compressions, t.removedNodes)
}

// writeArena is the shared encoder behind Tree.WriteTo and Snapshot.WriteTo.
// It only reads the arena, so concurrent use on an immutable snapshot is
// safe; the creation-order scratch is local for the same reason.
func writeArena(w io.Writer, a *arena, cfg Config, thSSE float64, inserts, compressions, removedNodes int64) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	d := cfg.Region.Dims()
	if err := write(
		uint32(serialMagic), uint32(serialVersion), uint32(d),
		uint32(cfg.Strategy), uint32(cfg.Policy), uint32(cfg.MaxDepth), uint32(cfg.Beta),
		cfg.Alpha, cfg.Gamma,
		uint64(cfg.MemoryLimit), uint64(cfg.NodeBytes),
		thSSE, inserts, compressions, removedNodes,
	); err != nil {
		return cw.n, err
	}
	for i := 0; i < d; i++ {
		if err := write(cfg.Region.Lo[i], cfg.Region.Hi[i]); err != nil {
			return cw.n, err
		}
	}
	var scratch []kidRef
	var rec func(n int32) error
	rec = func(n int32) error {
		nd := &a.nodes[n]
		if err := write(nd.sum, nd.ss, nd.count, uint32(nd.kidLen)); err != nil {
			return err
		}
		base := len(scratch)
		scratch = a.creationOrder(n, scratch)
		for i := base; i < len(scratch); i++ {
			c := scratch[i]
			if err := write(c.idx); err != nil {
				return err
			}
			if err := rec(c.ref); err != nil {
				return err
			}
		}
		scratch = scratch[:base]
		return nil
	}
	if err := rec(0); err != nil {
		return cw.n, err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// Read deserializes a tree previously written with WriteTo.
func Read(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	read := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	var magic, version, dims, strategy, policy, maxDepth, beta uint32
	var alpha, gamma, thSSE float64
	var memLimit, nodeBytes uint64
	var inserts, compressions, removed int64
	if err := read(&magic, &version, &dims, &strategy, &policy, &maxDepth, &beta,
		&alpha, &gamma, &memLimit, &nodeBytes,
		&thSSE, &inserts, &compressions, &removed); err != nil {
		return nil, fmt.Errorf("quadtree: reading header: %w", err)
	}
	if magic != serialMagic {
		return nil, fmt.Errorf("quadtree: bad magic %#x", magic)
	}
	if version != serialVersion {
		return nil, fmt.Errorf("quadtree: unsupported version %d", version)
	}
	if dims == 0 || dims > 20 {
		return nil, fmt.Errorf("quadtree: corrupt dimension count %d", dims)
	}
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for i := range lo {
		if err := read(&lo[i], &hi[i]); err != nil {
			return nil, fmt.Errorf("quadtree: reading region: %w", err)
		}
	}
	region, err := geom.NewRect(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("quadtree: corrupt region: %w", err)
	}
	t, err := New(Config{
		Region:      region,
		Strategy:    Strategy(strategy),
		Policy:      CompressionPolicy(policy),
		MaxDepth:    int(maxDepth),
		Alpha:       alpha,
		Beta:        int(beta),
		Gamma:       gamma,
		MemoryLimit: int(memLimit),
		NodeBytes:   int(nodeBytes),
	})
	if err != nil {
		return nil, err
	}
	t.thSSE = thSSE
	t.inserts = inserts
	t.compressions = compressions
	t.removedNodes = removed

	// Decode depth-first into the arena. Children are allocated in file
	// order, so slot order reproduces the writer's creation order; spans
	// are maintained index-sorted by addChild as always.
	var rec func(n int32, depth int) error
	rec = func(n int32, depth int) error {
		var kids uint32
		nd := &t.a.nodes[n]
		if err := read(&nd.sum, &nd.ss, &nd.count, &kids); err != nil {
			return fmt.Errorf("quadtree: reading node: %w", err)
		}
		if kids > t.childCapacity {
			return fmt.Errorf("quadtree: node claims %d children, capacity %d", kids, t.childCapacity)
		}
		for i := uint32(0); i < kids; i++ {
			if depth+1 > int(maxDepth) {
				return fmt.Errorf("quadtree: node deeper than MaxDepth %d", maxDepth)
			}
			var idx uint32
			if err := read(&idx); err != nil {
				return fmt.Errorf("quadtree: reading child index: %w", err)
			}
			child := t.a.addChild(n, idx)
			t.nodeCount++
			if err := rec(child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return nil, err
	}
	t.a.compactKids()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("quadtree: decoded tree invalid: %w", err)
	}
	return t, nil
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
