package quadtree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mlq/internal/geom"
)

// Serialization lets a trained cost model be persisted in the catalog and
// reloaded at optimizer startup, so the model's knowledge survives restarts.
// The format is a compact private binary encoding (little-endian), versioned
// so it can evolve.

const (
	serialMagic   = 0x4d4c5154 // "MLQT"
	serialVersion = 1
)

// WriteTo serializes the tree. It implements io.WriterTo.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	d := t.cfg.Region.Dims()
	if err := write(
		uint32(serialMagic), uint32(serialVersion), uint32(d),
		uint32(t.cfg.Strategy), uint32(t.cfg.Policy), uint32(t.cfg.MaxDepth), uint32(t.cfg.Beta),
		t.cfg.Alpha, t.cfg.Gamma,
		uint64(t.cfg.MemoryLimit), uint64(t.cfg.NodeBytes),
		t.thSSE, t.inserts, t.compressions, t.removedNodes,
	); err != nil {
		return cw.n, err
	}
	for i := 0; i < d; i++ {
		if err := write(t.cfg.Region.Lo[i], t.cfg.Region.Hi[i]); err != nil {
			return cw.n, err
		}
	}
	var rec func(n *node) error
	rec = func(n *node) error {
		if err := write(n.sum, n.ss, n.count, uint32(len(n.kids))); err != nil {
			return err
		}
		for _, c := range n.kids {
			if err := write(c.idx); err != nil {
				return err
			}
			if err := rec(c.n); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.root); err != nil {
		return cw.n, err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// Read deserializes a tree previously written with WriteTo.
func Read(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	read := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	var magic, version, dims, strategy, policy, maxDepth, beta uint32
	var alpha, gamma, thSSE float64
	var memLimit, nodeBytes uint64
	var inserts, compressions, removed int64
	if err := read(&magic, &version, &dims, &strategy, &policy, &maxDepth, &beta,
		&alpha, &gamma, &memLimit, &nodeBytes,
		&thSSE, &inserts, &compressions, &removed); err != nil {
		return nil, fmt.Errorf("quadtree: reading header: %w", err)
	}
	if magic != serialMagic {
		return nil, fmt.Errorf("quadtree: bad magic %#x", magic)
	}
	if version != serialVersion {
		return nil, fmt.Errorf("quadtree: unsupported version %d", version)
	}
	if dims == 0 || dims > 20 {
		return nil, fmt.Errorf("quadtree: corrupt dimension count %d", dims)
	}
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for i := range lo {
		if err := read(&lo[i], &hi[i]); err != nil {
			return nil, fmt.Errorf("quadtree: reading region: %w", err)
		}
	}
	region, err := geom.NewRect(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("quadtree: corrupt region: %w", err)
	}
	t, err := New(Config{
		Region:      region,
		Strategy:    Strategy(strategy),
		Policy:      CompressionPolicy(policy),
		MaxDepth:    int(maxDepth),
		Alpha:       alpha,
		Beta:        int(beta),
		Gamma:       gamma,
		MemoryLimit: int(memLimit),
		NodeBytes:   int(nodeBytes),
	})
	if err != nil {
		return nil, err
	}
	t.thSSE = thSSE
	t.inserts = inserts
	t.compressions = compressions
	t.removedNodes = removed

	t.nodeCount = 0
	var rec func(parent *node, depth int) (*node, error)
	rec = func(parent *node, depth int) (*node, error) {
		if depth > int(maxDepth) {
			return nil, fmt.Errorf("quadtree: node deeper than MaxDepth %d", maxDepth)
		}
		n := &node{parent: parent}
		var kids uint32
		if err := read(&n.sum, &n.ss, &n.count, &kids); err != nil {
			return nil, fmt.Errorf("quadtree: reading node: %w", err)
		}
		if kids > t.childCapacity {
			return nil, fmt.Errorf("quadtree: node claims %d children, capacity %d", kids, t.childCapacity)
		}
		t.nodeCount++
		for i := uint32(0); i < kids; i++ {
			var idx uint32
			if err := read(&idx); err != nil {
				return nil, fmt.Errorf("quadtree: reading child index: %w", err)
			}
			child, err := rec(n, depth+1)
			if err != nil {
				return nil, err
			}
			n.kids = append(n.kids, childEntry{idx: idx, n: child})
		}
		return n, nil
	}
	root, err := rec(nil, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("quadtree: decoded tree invalid: %w", err)
	}
	return t, nil
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
